/**
 * @file
 * Native codegen backend (rtl/cgen) tests: the JIT-compiled kernels
 * must be bit-identical to the *generic* (unlowered) interpreter — so
 * a bug shared by the whole lowered pipeline cannot mask itself — on
 * directed designs, on random netlists biased toward >64-bit values
 * and colliding memory write ports, and when attached to the
 * ShardSet-based parallel engine. The fallback contract is tested by
 * pointing the backend at a compiler that does not exist: the engine
 * must warn, keep simulating on the interpreter, and stay correct.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "designs/designs.hh"
#include "random_netlist.hh"
#include "rtl/cgen.hh"
#include "rtl/interp.hh"
#include "x86/parallel.hh"

using namespace parendi;
using parendi::testing::randomNetlist;
using rtl::CgenInterpreter;
using rtl::CgenOptions;
using rtl::Interpreter;
using rtl::Netlist;

namespace {

/** A throwaway cache dir per test, so cached objects from other tests
 *  (or prior runs) can never mask the behaviour under test. */
std::string
freshBuildDir(const std::string &tag)
{
    std::string dir = ::testing::TempDir() + "parendi-cgen-" + tag;
    std::filesystem::remove_all(dir);
    return dir;
}

void
compareEngines(const core::SimEngine &a, const core::SimEngine &b,
               const char *what)
{
    const Netlist &nl = a.netlist();
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r) {
        const std::string &name = nl.reg(r).name;
        ASSERT_EQ(a.peekRegister(name), b.peekRegister(name))
            << what << ": reg " << name;
    }
    for (rtl::PortId o = 0; o < nl.numOutputs(); ++o) {
        const std::string &name = nl.output(o).name;
        ASSERT_EQ(a.peek(name), b.peek(name))
            << what << ": output " << name;
    }
    for (rtl::MemId m = 0; m < nl.numMemories(); ++m) {
        const rtl::Memory &mem = nl.mem(m);
        for (uint32_t e = 0; e < mem.depth; ++e)
            ASSERT_EQ(a.peekMemory(mem.name, e),
                      b.peekMemory(mem.name, e))
                << what << ": " << mem.name << "[" << e << "]";
    }
}

/** Lock-step differential: native cgen vs the fully generic
 *  interpreter, with periodic full-state comparison. */
void
checkCgenEquivalence(const Netlist &nl, int cycles, int checkEvery,
                     const CgenOptions &copt = CgenOptions{})
{
    Interpreter generic(nl, rtl::LowerOptions::none());
    CgenInterpreter cg(nl, rtl::LowerOptions{}, copt);
    ASSERT_TRUE(cg.native()) << "JIT unavailable in test environment";
    for (int c = 0; c < cycles; ++c) {
        generic.step();
        cg.step();
        if (c % checkEvery != checkEvery - 1 && c != cycles - 1)
            continue;
        compareEngines(cg, generic, "cgen vs generic");
    }
}

} // namespace

TEST(Cgen, EmitSourceIsDeterministic)
{
    Netlist nl = designs::makePico(designs::defaultCoreConfig());
    rtl::ProgramBuilder builder(nl);
    builder.addAll();
    rtl::EvalProgram prog = builder.build();
    rtl::lowerProgram(prog);

    std::string s1 = rtl::cgenEmitSource({&prog});
    std::string s2 = rtl::cgenEmitSource({&prog});
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(rtl::cgenHash(s1), rtl::cgenHash(s2));
    // Every program entry point is present.
    EXPECT_NE(s1.find("parendi_eval_0"), std::string::npos);
}

TEST(Cgen, PicoMatchesGenericInterpreter)
{
    CgenOptions copt;
    copt.buildDir = freshBuildDir("pico");
    checkCgenEquivalence(
        designs::makePico(designs::defaultCoreConfig()), 50, 10, copt);
}

TEST(Cgen, BitcoinMatchesGenericInterpreter)
{
    checkCgenEquivalence(designs::makeBitcoin({2, 16}), 40, 10);
}

TEST(Cgen, VtaMatchesGenericInterpreter)
{
    checkCgenEquivalence(designs::makeVta({4, 4, 16}), 40, 10);
}

class CgenFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CgenFuzz, MatchesGenericInterpreter)
{
    checkCgenEquivalence(randomNetlist(GetParam()), 30, 10);
}

TEST_P(CgenFuzz, MatchesOnWideAndMemoryHeavyCircuits)
{
    // Bias toward multi-word (>64-bit) values and colliding write
    // ports: the generic-tier emitter paths and the saturating wide
    // address/shift reads only show up here.
    uint64_t seed = GetParam();
    if (seed % 2)
        return; // subsample: one JIT compile per seed
    parendi::testing::RandomNetlistConfig cfg;
    cfg.maxWidth = 192;
    cfg.memories = 4;
    cfg.registers = 16;
    cfg.combNodes = 160;
    checkCgenEquivalence(randomNetlist(seed ^ 0x90e7ull, cfg), 25, 8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CgenFuzz,
                         ::testing::Range<uint64_t>(1, 9));

TEST(Cgen, ParallelEngineRunsNativeShardKernels)
{
    Netlist nl = randomNetlist(7);
    Interpreter ref(nl, rtl::LowerOptions::none());
    // Pin the partition width: the default clamp to hardware
    // concurrency could leave a single shard on small CI hosts.
    rtl::ParConfig pcfg;
    pcfg.maxWorkers = 4;
    rtl::ParallelInterpreter par(nl, 4, rtl::LowerOptions{}, pcfg);
    ASSERT_GE(par.numShards(), 2u);

    // All shard programs compile into one module; every shard must go
    // native (a partial attach would be a silent perf lie).
    size_t attached = par.enableNativeKernels();
    ASSERT_EQ(attached, par.numShards());
    EXPECT_TRUE(par.native());

    for (int c = 0; c < 30; ++c) {
        ref.step();
        par.step();
        if (c % 10 == 9 || c == 29)
            compareEngines(par, ref, "par+cgen vs generic");
    }
}

TEST(Cgen, FallsBackWhenCompilerIsBroken)
{
    Netlist nl = designs::makeBitcoin({2, 16});
    CgenOptions copt;
    copt.cxx = "/nonexistent/parendi-no-such-compiler";
    // A fresh build dir: a cached .so from a healthy run must not be
    // able to mask the broken toolchain.
    copt.buildDir = freshBuildDir("broken-cxx");

    CgenInterpreter cg(nl, rtl::LowerOptions{}, copt);
    EXPECT_FALSE(cg.native());

    // The fallback is not a stub: simulation continues, bit-identical
    // to the reference interpreter.
    Interpreter ref(nl);
    cg.step(20);
    ref.step(20);
    compareEngines(cg, ref, "fallback vs reference");
}

TEST(Cgen, FallsBackWhenEnvCompilerIsBroken)
{
    // CXX resolution order is PARENDI_CXX, CXX, then "c++": a broken
    // PARENDI_CXX must win (so users can see their override is used)
    // and must degrade to the interpreter, not crash.
    ASSERT_EQ(setenv("PARENDI_CXX", "/nonexistent/parendi-bad-cxx", 1),
              0);
    Netlist nl = randomNetlist(3);
    CgenOptions copt;
    copt.buildDir = freshBuildDir("broken-env");
    CgenInterpreter cg(nl, rtl::LowerOptions{}, copt);
    unsetenv("PARENDI_CXX");
    EXPECT_FALSE(cg.native());

    Interpreter ref(nl);
    cg.step(15);
    ref.step(15);
    compareEngines(cg, ref, "env fallback vs reference");
}

TEST(Cgen, CacheReusesCompiledObject)
{
    Netlist nl = designs::makeBitcoin({2, 16});
    rtl::ProgramBuilder builder(nl);
    builder.addAll();
    rtl::EvalProgram prog = builder.build();
    rtl::lowerProgram(prog);

    CgenOptions copt;
    copt.buildDir = freshBuildDir("cache");

    auto first = rtl::CgenModule::compile({&prog}, copt);
    ASSERT_NE(first, nullptr);
    auto stamp =
        std::filesystem::last_write_time(first->objectPath());

    auto second = rtl::CgenModule::compile({&prog}, copt);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->objectPath(), first->objectPath());
    // The second load came from the cache: the object was not rebuilt.
    EXPECT_EQ(std::filesystem::last_write_time(second->objectPath()),
              stamp);
}

TEST(Cgen, GangLaneCountChangesCacheKey)
{
    // Gang and scalar builds of one design must never collide in the
    // artifact cache: the lane count (and SoA layout version) is part
    // of the compile-cache key.
    Netlist nl = designs::makeBitcoin({2, 16});
    rtl::ProgramBuilder builder(nl);
    builder.addAll();
    rtl::EvalProgram prog = builder.build();
    rtl::lowerProgram(prog);

    CgenOptions copt;
    copt.buildDir = freshBuildDir("gang-key");
    auto scalar = rtl::CgenModule::compile({&prog}, copt);
    ASSERT_NE(scalar, nullptr);
    copt.lanes = 8;
    auto gang = rtl::CgenModule::compile({&prog}, copt);
    ASSERT_NE(gang, nullptr);
    EXPECT_NE(gang->objectPath(), scalar->objectPath());

    // And the key is stable: recompiling the gang hits its cache.
    auto again = rtl::CgenModule::compile({&prog}, copt);
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(again->objectPath(), gang->objectPath());
}

TEST(Cgen, GangEmissionAtOneLaneIsScalarEmission)
{
    // lanes == 1 must emit byte-identical source to the pre-gang
    // scalar emitter, so single-replica runs keep the proven codegen.
    Netlist nl = designs::makePico(designs::defaultCoreConfig());
    rtl::ProgramBuilder builder(nl);
    builder.addAll();
    rtl::EvalProgram prog = builder.build();
    rtl::lowerProgram(prog);

    EXPECT_EQ(rtl::cgenEmitSource({&prog}, 1),
              rtl::cgenEmitSource({&prog}));
    std::string gang = rtl::cgenEmitSource({&prog}, 4);
    EXPECT_NE(gang, rtl::cgenEmitSource({&prog}));
    // The gang TU carries the lane-loop machinery.
    EXPECT_NE(gang.find("PG_SIMD"), std::string::npos);
}

TEST(Cgen, NativeStateSurvivesResetAndCheckpoint)
{
    // reset() and restore() reallocate memory images; the kernel ABI
    // memory-pointer table must be refreshed or the native kernels
    // read freed memory.
    Netlist nl = randomNetlist(11);
    Interpreter ref(nl);
    CgenInterpreter cg(nl);
    ASSERT_TRUE(cg.native());

    cg.step(10);
    ref.step(10);
    cg.reset();
    ref.reset();
    cg.step(10);
    ref.step(10);
    compareEngines(cg, ref, "after reset");

    std::stringstream ckpt;
    cg.save(ckpt);
    cg.step(5);
    cg.restore(ckpt);
    ref.step(0);
    compareEngines(cg, ref, "after restore");
    cg.step(7);
    ref.step(7);
    compareEngines(cg, ref, "after restore + step");
}
