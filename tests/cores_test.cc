/**
 * @file
 * Differential tests of the pico (multicycle) and rocket (pipelined)
 * RTL cores against the IsaSim golden model: canned programs plus a
 * parameterized sweep of random programs. After the core halts, the
 * complete architectural state (16 registers + data RAM + pc) must
 * match the ISA-level simulation exactly.
 */

#include <gtest/gtest.h>

#include "designs/cores.hh"
#include "designs/isa.hh"
#include "rtl/interp.hh"

using namespace parendi;
using namespace parendi::designs;
using rtl::Interpreter;
using rtl::Netlist;

namespace {

constexpr uint32_t kRomDepth = 64;
constexpr uint32_t kRamDepth = 64;

CoreConfig
configFor(std::vector<uint32_t> prog)
{
    CoreConfig cfg;
    cfg.romDepth = kRomDepth;
    cfg.ramDepth = kRamDepth;
    cfg.program = std::move(prog);
    return cfg;
}

/** Pad the program to ROM depth with HALTs like the RTL does. */
std::vector<uint32_t>
paddedRom(const std::vector<uint32_t> &prog)
{
    std::vector<uint32_t> rom = prog;
    while (rom.size() < kRomDepth)
        rom.push_back(asmHalt());
    return rom;
}

/** Run the RTL to the halt state (bounded), then compare all
 *  architectural state with the golden model. */
void
compareWithGolden(const Netlist &nl, const std::vector<uint32_t> &prog,
                  uint64_t max_cycles)
{
    Interpreter rtl_sim(nl);
    IsaSim gold(paddedRom(prog), kRamDepth);
    gold.run(1000000);
    ASSERT_TRUE(gold.halted()) << "golden model did not halt";

    uint64_t cycles = 0;
    while (rtl_sim.peek("halted").isZero() && cycles < max_cycles) {
        rtl_sim.step();
        ++cycles;
    }
    ASSERT_LT(cycles, max_cycles) << "RTL did not halt";

    // Let any in-flight writeback settle (pipeline drain).
    rtl_sim.step(8);

    EXPECT_EQ(rtl_sim.peek("pc").toUint64(), gold.pc());
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(rtl_sim.peekRegister("x" + std::to_string(i))
                      .toUint64(),
                  gold.reg(i))
            << "x" << i;
    for (uint32_t i = 0; i < kRamDepth; ++i)
        EXPECT_EQ(rtl_sim.peekMemory("ram", i).toUint64(), gold.ram(i))
            << "ram[" << i << "]";
}

} // namespace

// ---- pico ---------------------------------------------------------------

TEST(Pico, SumProgram)
{
    auto prog = programSum(10);
    compareWithGolden(makePico(configFor(prog)), prog, 100000);
}

TEST(Pico, MemoryProgram)
{
    auto prog = programMemory();
    compareWithGolden(makePico(configFor(prog)), prog, 200000);
}

TEST(Pico, TakesFourCyclesPerInstruction)
{
    auto prog = programSum(3);
    Interpreter sim(makePico(configFor(prog)));
    IsaSim gold(paddedRom(prog), kRamDepth);
    uint64_t instrs = gold.run(1000);
    uint64_t cycles = 0;
    while (sim.peek("halted").isZero() && cycles < 10000) {
        sim.step();
        ++cycles;
    }
    // 4 cycles per instruction (halted latches at the HALT's WB, the
    // 4th cycle of the instrs-th instruction).
    EXPECT_EQ(cycles, 4 * instrs);
}

TEST(Pico, ChurnMatchesGoldenStepwise)
{
    // A non-halting program: compare RAM snapshots periodically.
    auto prog = programChurn();
    Interpreter sim(makePico(configFor(prog)));
    IsaSim gold(paddedRom(prog), kRamDepth);
    for (int chunk = 0; chunk < 5; ++chunk) {
        sim.step(4 * 200);
        gold.run(200);
        for (uint32_t i = 0; i < kRamDepth; ++i)
            EXPECT_EQ(sim.peekMemory("ram", i).toUint64(), gold.ram(i))
                << "chunk " << chunk << " ram[" << i << "]";
    }
}

class PicoRandom : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PicoRandom, MatchesGolden)
{
    auto prog = programRandom(GetParam(), 40);
    compareWithGolden(makePico(configFor(prog)), prog, 100000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PicoRandom,
                         ::testing::Range<uint64_t>(1, 21));

// ---- rocket -------------------------------------------------------------

TEST(Rocket, SumProgram)
{
    auto prog = programSum(10);
    compareWithGolden(makeRocket(configFor(prog)), prog, 100000);
}

TEST(Rocket, MemoryProgram)
{
    auto prog = programMemory();
    compareWithGolden(makeRocket(configFor(prog)), prog, 200000);
}

TEST(Rocket, WithMultiplierMatchesGolden)
{
    auto prog = programMemory();
    compareWithGolden(makeRocket(configFor(prog), true), prog, 200000);
}

TEST(Rocket, FasterThanPico)
{
    // The pipeline should beat 4 cycles per instruction on a long
    // straight-line-ish workload.
    auto prog = programSum(50);
    Interpreter rocket(makeRocket(configFor(prog)));
    IsaSim gold(paddedRom(prog), kRamDepth);
    uint64_t instrs = gold.run(100000);
    uint64_t cycles = 0;
    while (rocket.peek("halted").isZero() && cycles < 100000) {
        rocket.step();
        ++cycles;
    }
    EXPECT_LT(cycles, 4 * instrs) << "pipeline slower than multicycle";
}

TEST(Rocket, HazardStress)
{
    // Back-to-back dependencies, load-use, branches into dependent
    // code: the classic pipeline hazard corners.
    std::vector<uint32_t> prog = {
        asmAddi(1, 0, 7),
        asmAdd(2, 1, 1),     // RAW on r1 (ALU-use)
        asmAdd(3, 2, 1),     // RAW on r2
        asmSw(0, 3, 5),      // ram[5] = r3
        asmLw(4, 0, 5),      // load
        asmAdd(5, 4, 4),     // load-use hazard
        asmBne(5, 0, 2),     // taken branch
        asmAddi(6, 0, 99),   // squashed
        asmAddi(7, 5, 1),    // branch target
        asmSub(8, 7, 5),     // RAW right after redirect
        asmHalt(),
    };
    compareWithGolden(makeRocket(configFor(prog)), prog, 10000);
}

class RocketRandom : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RocketRandom, MatchesGolden)
{
    auto prog = programRandom(GetParam(), 40);
    compareWithGolden(makeRocket(configFor(prog)), prog, 100000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RocketRandom,
                         ::testing::Range<uint64_t>(1, 21));

class RocketMulRandom : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RocketMulRandom, MatchesGolden)
{
    auto prog = programRandom(GetParam() + 100, 40);
    compareWithGolden(makeRocket(configFor(prog), true), prog, 100000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RocketMulRandom,
                         ::testing::Range<uint64_t>(1, 6));
