/**
 * @file
 * End-to-end correctness of the compiled BSP simulation: for every
 * benchmark design and a matrix of tile counts / chip counts /
 * partitioning strategies, the IpuMachine must produce *bit-identical*
 * state to the reference interpreter, cycle by cycle. Also checks the
 * analytic cost model's basic sanity (component positivity,
 * straggler = t_comp bound, off-chip traffic appearing only with
 * multiple chips) and the differential-exchange ablation.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/compiler.hh"
#include "designs/designs.hh"
#include "rtl/interp.hh"
#include "util/logging.hh"

using namespace parendi;
using namespace parendi::core;
using namespace parendi::designs;
using rtl::Interpreter;
using rtl::Netlist;

namespace {

/** Step both simulators and compare every register and output. */
void
expectEquivalent(Simulation &sim, Interpreter &ref, size_t cycles,
                 size_t check_every)
{
    const Netlist &nl = ref.netlist();
    for (size_t c = 0; c < cycles; ++c) {
        sim.step();
        ref.step();
        if ((c + 1) % check_every)
            continue;
        for (rtl::RegId r = 0; r < nl.numRegisters(); ++r) {
            const std::string &name = nl.reg(r).name;
            ASSERT_EQ(sim.machine().peekRegister(name),
                      ref.peekRegister(name))
                << "register " << name << " cycle " << c + 1;
        }
        for (rtl::PortId o = 0; o < nl.numOutputs(); ++o) {
            const std::string &name = nl.output(o).name;
            ASSERT_EQ(sim.machine().peek(name), ref.peek(name))
                << "output " << name << " cycle " << c + 1;
        }
    }
}

CompilerOptions
smallMachine(uint32_t chips, uint32_t tiles)
{
    CompilerOptions opt;
    opt.chips = chips;
    opt.tilesPerChip = tiles;
    return opt;
}

} // namespace

struct EquivCase
{
    const char *name;
    Netlist (*make)();
    uint32_t chips;
    uint32_t tiles;
    partition::SingleChipStrategy single;
};

class MachineEquiv : public ::testing::TestWithParam<EquivCase>
{
};

TEST_P(MachineEquiv, MatchesInterpreter)
{
    const EquivCase &tc = GetParam();
    Netlist nl = tc.make();
    Interpreter ref(nl);
    CompilerOptions opt = smallMachine(tc.chips, tc.tiles);
    opt.single = tc.single;
    auto sim = compile(std::move(nl), opt);
    EXPECT_LE(sim->report().processes,
              static_cast<size_t>(tc.chips) * tc.tiles);
    expectEquivalent(*sim, ref, 150, 50);
}

namespace {

Netlist makeSr2() { return makeSr(2); }
Netlist makeSr3() { return makeSr(3); }
Netlist makeLr2() { return makeLr(2); }
Netlist makeBtc() { return makeBitcoin({2, 16}); }
Netlist makeMcD() { return makeMc({8, 32, 100 << 16, 105 << 16}); }
Netlist makeVtaD() { return makeVta({4, 4, 16}); }
Netlist makePicoD() { return makePico(defaultCoreConfig()); }
Netlist makeRocketD()
{
    return makeRocket(defaultCoreConfig(), false);
}
Netlist makePrng32() { return makePrngBank(32); }

using partition::SingleChipStrategy;

const EquivCase kCases[] = {
    {"pico_1x8", makePicoD, 1, 8, SingleChipStrategy::BottomUp},
    {"pico_1x64", makePicoD, 1, 64, SingleChipStrategy::BottomUp},
    {"rocket_1x16", makeRocketD, 1, 16, SingleChipStrategy::BottomUp},
    {"rocket_2x16", makeRocketD, 2, 16, SingleChipStrategy::BottomUp},
    {"btc_1x4", makeBtc, 1, 4, SingleChipStrategy::BottomUp},
    {"btc_1x128", makeBtc, 1, 128, SingleChipStrategy::BottomUp},
    {"btc_4x32", makeBtc, 4, 32, SingleChipStrategy::BottomUp},
    {"mc_1x8", makeMcD, 1, 8, SingleChipStrategy::BottomUp},
    {"mc_2x8", makeMcD, 2, 8, SingleChipStrategy::BottomUp},
    {"vta_1x16", makeVtaD, 1, 16, SingleChipStrategy::BottomUp},
    {"prng_1x16", makePrng32, 1, 16, SingleChipStrategy::BottomUp},
    {"sr2_1x32", makeSr2, 1, 32, SingleChipStrategy::BottomUp},
    {"sr2_1x256", makeSr2, 1, 256, SingleChipStrategy::BottomUp},
    {"sr2_2x32", makeSr2, 2, 32, SingleChipStrategy::BottomUp},
    {"sr2_4x16", makeSr2, 4, 16, SingleChipStrategy::BottomUp},
    {"sr3_1x64", makeSr3, 1, 64, SingleChipStrategy::BottomUp},
    {"sr3_4x64", makeSr3, 4, 64, SingleChipStrategy::BottomUp},
    {"lr2_1x64", makeLr2, 1, 64, SingleChipStrategy::BottomUp},
    {"lr2_4x32", makeLr2, 4, 32, SingleChipStrategy::BottomUp},
    {"sr2_hyper", makeSr2, 1, 32, SingleChipStrategy::Hypergraph},
    {"btc_hyper", makeBtc, 1, 16, SingleChipStrategy::Hypergraph},
};

std::string
caseName(const ::testing::TestParamInfo<EquivCase> &info)
{
    return info.param.name;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Designs, MachineEquiv,
                         ::testing::ValuesIn(kCases), caseName);

TEST(Machine, MultiChipStrategiesAllCorrect)
{
    for (auto multi :
         {partition::MultiChipStrategy::Pre,
          partition::MultiChipStrategy::Post,
          partition::MultiChipStrategy::None}) {
        Netlist nl = makeSr(2);
        Interpreter ref(nl);
        CompilerOptions opt = smallMachine(4, 32);
        opt.multi = multi;
        auto sim = compile(std::move(nl), opt);
        expectEquivalent(*sim, ref, 100, 100);
    }
}

namespace {

/** An array written by one fiber and read by many independent fibers,
 *  so replicas land on many tiles. */
Netlist
sharedArrayDesign()
{
    rtl::Design d("sharr");
    rtl::MemId m = d.memory("tbl", 32, 64); // 256 B: below the
                                            // stage-1 threshold
    auto wptr = d.reg("wptr", 6, 0);
    d.next(wptr, d.read(wptr) + d.lit(6, 1));
    d.memWrite(m, d.read(wptr), d.read(wptr).zext(32) * d.lit(32, 3),
               d.lit(1, 1));
    for (int i = 0; i < 24; ++i) {
        auto r = d.reg("r" + std::to_string(i), 32, i);
        // Each fiber reads its own slot and churns locally.
        rtl::Wire v = d.memRead(m, d.lit(6, i));
        rtl::Wire x = d.read(r);
        d.next(r, (x ^ v) + (x * d.lit(32, 5)));
    }
    return d.finish();
}

} // namespace

TEST(Machine, DifferentialExchangeAblation)
{
    // Functional behaviour identical; modeled traffic much larger
    // without differential array exchange (full copies per replica).
    Netlist nl = sharedArrayDesign();
    Interpreter ref(nl);
    CompilerOptions with = smallMachine(1, 32);
    CompilerOptions without = smallMachine(1, 32);
    without.machine.differentialExchange = false;
    auto a = compile(sharedArrayDesign(), with);
    auto b = compile(sharedArrayDesign(), without);
    expectEquivalent(*b, ref, 60, 60);
    uint64_t traffic_with = a->machine().traffic().totalOnChipBytes +
        a->machine().traffic().totalOffChipBytes;
    uint64_t traffic_without =
        b->machine().traffic().totalOnChipBytes +
        b->machine().traffic().totalOffChipBytes;
    EXPECT_GT(traffic_without, 2 * traffic_with);
    // Both variants still simulate identically (checked above), and
    // the differential variant's exchange should be modest.
    EXPECT_GT(traffic_with, 0u);
}

TEST(Machine, CostComponentsSane)
{
    auto sim = compile(makeSr(2), smallMachine(1, 64));
    const ipu::CycleCosts &c = sim->cycleCosts();
    EXPECT_GT(c.tSync, 0.0);
    EXPECT_GT(c.tComp, 0.0);
    EXPECT_GE(c.tCommOn, 0.0);
    EXPECT_EQ(c.tCommOff, 0.0); // single chip: no off-chip traffic
    EXPECT_GT(sim->rateKHz(), 0.0);
    // t_comp at least the straggler process cost.
    EXPECT_GE(c.tComp,
              static_cast<double>(
                  sim->partitioning().makespanIpu()));
}

TEST(Machine, OffChipTrafficOnlyWithMultipleChips)
{
    auto one = compile(makeSr(3), smallMachine(1, 128));
    auto four = compile(makeSr(3), smallMachine(4, 64));
    EXPECT_EQ(one->machine().traffic().totalOffChipBytes, 0u);
    EXPECT_GT(four->machine().traffic().totalOffChipBytes, 0u);
    EXPECT_GT(four->cycleCosts().tCommOff, 0.0);
    EXPECT_EQ(one->cycleCosts().tCommOff, 0.0);
    EXPECT_GT(four->cycleCosts().tSync, one->cycleCosts().tSync);
}

TEST(Machine, MoreTilesReduceComputeTime)
{
    auto few = compile(makeBitcoin({4, 16}), smallMachine(1, 8));
    auto many = compile(makeBitcoin({4, 16}), smallMachine(1, 256));
    EXPECT_LT(many->cycleCosts().tComp, few->cycleCosts().tComp);
}

TEST(Machine, PokeAndPeekThroughMachine)
{
    rtl::Design d("io");
    rtl::Wire a = d.input("a", 16);
    auto acc = d.reg("acc", 16, 0);
    auto other = d.reg("other", 16, 5);
    d.next(acc, d.read(acc) + a);
    d.next(other, d.read(other) ^ a);
    d.output("acc", d.read(acc));
    auto sim = compile(d.finish(), smallMachine(1, 4));
    sim->machine().poke("a", uint64_t{3});
    sim->step(4);
    EXPECT_EQ(sim->machine().peek("acc").toUint64(), 12u);
    sim->machine().reset();
    EXPECT_EQ(sim->machine().cycles(), 0u);
    EXPECT_EQ(sim->machine().peekRegister("other").toUint64(), 5u);
}

TEST(Machine, ResetRestoresInitialState)
{
    Netlist nl = makeBitcoin({1, 16});
    auto sim = compile(std::move(nl), smallMachine(1, 16));
    sim->step(200);
    sim->machine().reset();
    Interpreter ref(makeBitcoin({1, 16}));
    sim->step(130);
    ref.step(130);
    EXPECT_EQ(sim->machine().peek("dig0"), ref.peek("dig0"));
}

TEST(Compiler, ReportIsPopulated)
{
    auto sim = compile(makeSr(2), smallMachine(2, 32));
    const CompileReport &r = sim->report();
    EXPECT_GT(r.fibers, 0u);
    EXPECT_GT(r.processes, 0u);
    EXPECT_LE(r.processes, 64u);
    EXPECT_GT(r.metrics.nodes, 0u);
    EXPECT_GT(r.compileSeconds, 0.0);
    EXPECT_GT(r.compileRssBytes, 0u);
    EXPECT_GE(r.duplicationRatio, 1.0);
    EXPECT_GT(r.intCutBytes + r.extCutBytes, 0u);
    EXPECT_GT(r.maxTileMemBytes, 0u);
    EXPECT_LE(r.maxTileMemBytes, sim->machine()
              .architecture().tileMemoryBytes);
}

TEST(Compiler, RejectsCombinationalLoop)
{
    // Build a loop by hand (the DSL cannot express one, so splice
    // node operands directly).
    rtl::Netlist nl("loop");
    rtl::RegId r = nl.addRegister("r", 8, 0);
    rtl::NodeId rd = nl.readRegister(r);
    rtl::NodeId c = nl.addConst(8, 1);
    rtl::NodeId add = nl.addBinary(rtl::Op::Add, rd, c);
    nl.setRegisterNext(r, add);
    // A combinational check on a valid netlist passes...
    EXPECT_FALSE(rtl::hasCombinationalLoop(nl));
    // ...and the compiler accepts it.
    CompilerOptions opt = smallMachine(1, 4);
    EXPECT_NO_THROW(compile(std::move(nl), opt));
}

TEST(Compiler, FailsWhenDesignTooBigForMachine)
{
    CompilerOptions opt = smallMachine(1, 2);
    opt.merge.tileMemoryBytes = 4 * 1024;
    opt.arch.tileMemoryBytes = 4 * 1024;
    EXPECT_THROW(compile(makeSr(2), opt), FatalError);
}

TEST(Machine, ThreadedHostExecutionIsIdentical)
{
    Netlist nl = makeSr(2);
    Interpreter ref(nl);
    CompilerOptions opt = smallMachine(1, 64);
    opt.machine.hostThreads = 4;
    // Pin real workers: the default clamp to hardware concurrency
    // would silently serialize this on small CI hosts.
    opt.machine.maxHostWorkers = 4;
    auto sim = compile(std::move(nl), opt);
    expectEquivalent(*sim, ref, 80, 40);
}

TEST(Machine, SpawnModeHostExecutionIsIdentical)
{
    // The legacy per-cycle thread-spawn path (persistentPool=false)
    // must stay bit-identical too: it is the A/B baseline the
    // persistent pool is benchmarked against.
    Netlist nl = makeSr(2);
    Interpreter ref(nl);
    CompilerOptions opt = smallMachine(1, 64);
    opt.machine.hostThreads = 4;
    opt.machine.maxHostWorkers = 4;
    opt.machine.persistentPool = false;
    auto sim = compile(std::move(nl), opt);
    expectEquivalent(*sim, ref, 80, 40);
}
