/**
 * @file
 * Unit/property tests for the IPU architecture cost models: the
 * barrier, the on-/off-chip exchange curves (paper §4.1/§4.2
 * behaviours must hold by construction), and the rate conversion.
 */

#include <gtest/gtest.h>

#include "ipu/exchange.hh"

using namespace parendi::ipu;

TEST(Barrier, GrowsSlowlyWithTiles)
{
    IpuArch arch;
    double b64 = arch.barrierCycles(64, 1);
    double b1472 = arch.barrierCycles(1472, 1);
    EXPECT_GT(b1472, b64);
    // "a few hundred IPU cycles".
    EXPECT_LT(b1472, 600.0);
    EXPECT_GT(b1472, 100.0);
    // Logarithmic, not linear: 23x tiles, far less than 2x cost.
    EXPECT_LT(b1472 / b64, 2.0);
}

TEST(Barrier, CrossChipCostsMore)
{
    IpuArch arch;
    EXPECT_GT(arch.barrierCycles(2944, 2),
              arch.barrierCycles(1472, 1));
    EXPECT_GT(arch.barrierCycles(5888, 4),
              arch.barrierCycles(2944, 2));
}

TEST(Exchange, OnChipDependsOnBytesNotTiles)
{
    IpuArch arch;
    // Fix per-tile bytes, grow tiles: near-flat (paper Fig. 5 left).
    double c64 = pairwiseExchangeCycles(arch, 64, 256, false);
    double c736 = pairwiseExchangeCycles(arch, 736, 256, false);
    EXPECT_LT(c736 / c64, 1.3);
    // Fix tiles, grow bytes: strong growth.
    double b4 = pairwiseExchangeCycles(arch, 368, 4, false);
    double b2048 = pairwiseExchangeCycles(arch, 368, 2048, false);
    EXPECT_GT(b2048 / b4, 3.0);
}

TEST(Exchange, OffChipDependsOnProduct)
{
    IpuArch arch;
    double base = pairwiseExchangeCycles(arch, 64, 64, true);
    double more_tiles = pairwiseExchangeCycles(arch, 736, 64, true);
    double more_bytes = pairwiseExchangeCycles(arch, 64, 736, true);
    EXPECT_GT(more_tiles, 1.15 * base); // grows with m ...
    EXPECT_GT(more_bytes, 1.15 * base); // ... and with b
    // Doubling both roughly doubles the volume-dominated part.
    double both = pairwiseExchangeCycles(arch, 736, 512, true);
    EXPECT_GT(both, pairwiseExchangeCycles(arch, 736, 256, true));
}

TEST(Exchange, OffChipIsMuchSlowerThanOnChip)
{
    IpuArch arch;
    for (uint32_t b : {16u, 256u, 2048u})
        EXPECT_GT(pairwiseExchangeCycles(arch, 368, b, true),
                  2 * pairwiseExchangeCycles(arch, 368, b, false));
}

TEST(Exchange, ZeroTrafficIsFree)
{
    IpuArch arch;
    EXPECT_EQ(onChipExchangeCycles(arch, 0, 0), 0.0);
    EXPECT_EQ(offChipExchangeCycles(arch, 0), 0.0);
    ExchangeTraffic t;
    EXPECT_EQ(exchangeCycles(arch, t), 0.0);
}

TEST(Exchange, CongestionKicksInNearFabricLimit)
{
    IpuArch arch;
    // Same per-tile max, hugely different aggregate volume.
    double quiet = onChipExchangeCycles(arch, 1024, 1024);
    double busy = onChipExchangeCycles(
        arch, 1024, static_cast<uint64_t>(
            arch.onChipFabricBytesPerCycle * 1024));
    EXPECT_GT(busy, quiet);
}

TEST(Exchange, TrafficSummaryAddsComponents)
{
    IpuArch arch;
    ExchangeTraffic t;
    t.maxTileOnChipBytes = 512;
    t.totalOnChipBytes = 512 * 100;
    t.totalOffChipBytes = 4096;
    t.chips = 2;
    double total = exchangeCycles(arch, t);
    double on = onChipExchangeCycles(arch, 512, 512 * 100 / 2);
    double off = offChipExchangeCycles(arch, 4096);
    EXPECT_DOUBLE_EQ(total, on + off);
}

TEST(Arch, RateConversion)
{
    IpuArch arch;
    // 1325 cycles at 1.325 GHz = 1 us per RTL cycle = 1000 kHz.
    EXPECT_NEAR(arch.rateKHz(1325.0), 1000.0, 1e-6);
}

TEST(Arch, DefaultsMatchPaperHardware)
{
    IpuArch arch;
    EXPECT_EQ(arch.tilesPerChip, 1472u);
    EXPECT_EQ(arch.maxChips, 4u);
    EXPECT_EQ(arch.tileMemoryBytes, 624u * 1024);
    // 6200 B/cycle at 1.325 GHz ~ 7.7 TiB/s measured on-chip BW.
    EXPECT_NEAR(arch.onChipFabricBytesPerCycle * arch.clockGHz,
                7.7 * 1100, 800); // GiB/s within slack
    // 87 B/cycle at 1.325 GHz ~ 107 GiB/s measured off-chip BW.
    EXPECT_NEAR(arch.offChipBytesPerCycle * arch.clockGHz * 1e9 /
                    (1024.0 * 1024 * 1024),
                107.0, 10.0);
}
