/**
 * @file
 * Functional tests for the benchmark design generators: the bitcoin
 * miner against a software SHA-256d, the PRNG bank against software
 * xorshift32, the Monte Carlo engine's bookkeeping, the VTA GEMM
 * datapath against a software MAC model, and the mesh NoC's flit
 * conservation invariant.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "designs/designs.hh"
#include "rtl/analysis.hh"
#include "rtl/interp.hh"
#include "util/logging.hh"
#include "util/rng.hh"

using namespace parendi;
using namespace parendi::designs;
using rtl::Interpreter;
using rtl::Netlist;

namespace {

// ---- Software SHA-256 (compression only, matching the RTL) ------------

const std::array<uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

const std::array<uint32_t, 8> kIv = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

uint32_t
ror(uint32_t x, int n)
{
    return (x >> n) | (x << (32 - n));
}

std::array<uint32_t, 8>
sha256Compress(const std::array<uint32_t, 16> &block)
{
    uint32_t w[64];
    for (int i = 0; i < 16; ++i)
        w[i] = block[i];
    for (int i = 16; i < 64; ++i) {
        uint32_t s0 = ror(w[i - 15], 7) ^ ror(w[i - 15], 18) ^
            (w[i - 15] >> 3);
        uint32_t s1 = ror(w[i - 2], 17) ^ ror(w[i - 2], 19) ^
            (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::array<uint32_t, 8> h = kIv;
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
        uint32_t s1 = ror(e, 6) ^ ror(e, 11) ^ ror(e, 25);
        uint32_t ch = (e & f) ^ (~e & g);
        uint32_t t1 = hh + s1 + ch + kK[i] + w[i];
        uint32_t s0 = ror(a, 2) ^ ror(a, 13) ^ ror(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t t2 = s0 + maj;
        hh = g; g = f; f = e; e = d + t1;
        d = c; c = b; b = a; a = t1 + t2;
    }
    return {h[0] + a, h[1] + b, h[2] + c, h[3] + d,
            h[4] + e, h[5] + f, h[6] + g, h[7] + hh};
}

/** The fixed header used by the miner RTL (word 3 = nonce). */
std::array<uint32_t, 16>
minerHeader(uint32_t nonce)
{
    std::array<uint32_t, 16> h = {
        0x02000000, 0x17975b97, 0xc18ed1f7, nonce,
        0x8a97295a, 0x2247e5a0, 0xb3c4f126, 0xe9d4a713,
        0x80000000, 0x00000000, 0x00000000, 0x00000000,
        0x00000000, 0x00000000, 0x00000000, 0x00000200};
    return h;
}

/** SHA-256d exactly as the miner computes it. */
std::array<uint32_t, 8>
minerSha256d(uint32_t nonce)
{
    std::array<uint32_t, 8> first = sha256Compress(minerHeader(nonce));
    std::array<uint32_t, 16> second = {};
    for (int i = 0; i < 8; ++i)
        second[i] = first[i];
    second[8] = 0x80000000;
    second[15] = 256;
    return sha256Compress(second);
}

} // namespace

TEST(Prng, MatchesSoftwareXorshift)
{
    Interpreter sim(makePrngBank(8));
    uint32_t sw = 0x9e3779b9u ^ 1u; // generator 0's seed
    for (int i = 0; i < 200; ++i) {
        sim.step();
        sw = xorshift32(sw);
        ASSERT_EQ(sim.peek("sample").toUint64(), sw) << "cycle " << i;
    }
}

TEST(Prng, GeneratorsAreIndependentFibers)
{
    Netlist nl = makePrngBank(16);
    // Every register's cone must read only itself.
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r) {
        auto cone = rtl::backwardCone(nl, nl.reg(r).next);
        for (rtl::NodeId id : cone) {
            if (nl.node(id).op == rtl::Op::RegRead) {
                EXPECT_EQ(nl.node(id).aux, r);
            }
        }
    }
}

TEST(Bitcoin, FirstDoubleHashMatchesSoftware)
{
    // One engine, nonce starts at 0. The second compression finishes
    // at cycle 130 (two 65-cycle passes).
    Interpreter sim(makeBitcoin({1, 16}));
    sim.step(130);
    auto expect = minerSha256d(0);
    EXPECT_EQ(sim.peek("dig0").toUint64(), expect[0]);
    // found = top 16 bits of digest[0] zero.
    EXPECT_EQ(sim.peek("found").toUint64(),
              static_cast<uint64_t>((expect[0] >> 16) == 0));
    // The nonce advances for the next attempt.
    EXPECT_EQ(sim.peek("nonce0").toUint64(), 1u);
}

TEST(Bitcoin, SecondNonceAlsoMatches)
{
    Interpreter sim(makeBitcoin({1, 16}));
    sim.step(260);
    auto expect = minerSha256d(1);
    EXPECT_EQ(sim.peek("dig0").toUint64(), expect[0]);
    EXPECT_EQ(sim.peek("nonce0").toUint64(), 2u);
}

TEST(Bitcoin, EnginesSearchDisjointNonces)
{
    // Engine e starts at nonce e; after one attempt it moves to e+1.
    Interpreter sim(makeBitcoin({3, 16}));
    sim.step(130);
    EXPECT_EQ(sim.peekRegister("e0_nonce").toUint64(), 1u);
    EXPECT_EQ(sim.peekRegister("e1_nonce").toUint64(), 2u);
    EXPECT_EQ(sim.peekRegister("e2_nonce").toUint64(), 3u);
    EXPECT_EQ(sim.peekRegister("e1_dig0").toUint64(),
              minerSha256d(1)[0]);
}

TEST(Mc, CountsPathsAndAccumulates)
{
    McConfig cfg;
    cfg.lanes = 4;
    cfg.stepsPerPath = 16;
    Interpreter sim(makeMc(cfg));
    sim.step(16 * 3); // three complete paths
    EXPECT_EQ(sim.peek("paths").toUint64(), 3u);
    // The payoff sum must equal the sum of lane accumulators.
    uint64_t sum = 0;
    for (uint32_t lane = 0; lane < cfg.lanes; ++lane)
        sum += sim.peekRegister("l" + std::to_string(lane) + "_acc")
                   .toUint64();
    EXPECT_EQ(sim.peek("payoff_sum").toUint64(), sum & 0xffffffffu);
}

TEST(Mc, PriceResetsEachPath)
{
    McConfig cfg;
    cfg.lanes = 2;
    cfg.stepsPerPath = 8;
    Interpreter sim(makeMc(cfg));
    sim.step(8); // exactly one path: price reloaded to spot
    EXPECT_EQ(sim.peekRegister("l0_price").toUint64(), cfg.spot);
    sim.step(3);
    EXPECT_NE(sim.peekRegister("l0_price").toUint64(), cfg.spot);
}

TEST(Vta, MacGridMatchesSoftware)
{
    VtaConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.bufDepth = 8;
    Interpreter sim(makeVta(cfg));
    const Netlist &nl = sim.netlist();

    // Mirror the generator's pseudo-random images.
    Rng rng(0x7a7a5eed);
    std::vector<std::vector<uint32_t>> act(cfg.rows);
    for (uint32_t r = 0; r < cfg.rows; ++r)
        for (uint32_t i = 0; i < cfg.bufDepth; ++i)
            act[r].push_back(
                static_cast<uint32_t>(rng.below(1 << 16)));
    std::vector<std::vector<uint32_t>> w(cfg.rows);
    for (uint32_t r = 0; r < cfg.rows; ++r)
        for (uint32_t c = 0; c < cfg.cols; ++c)
            w[r].push_back(static_cast<uint32_t>(rng.below(1 << 16)));

    // Software model: act register delays the SRAM read by 1 cycle;
    // accumulators clear when the address wraps.
    uint32_t n_cyc = 2 * cfg.bufDepth + 3;
    std::vector<std::vector<uint64_t>> acc(
        cfg.rows, std::vector<uint64_t>(cfg.cols, 0));
    std::vector<uint32_t> areg(cfg.rows, 0);
    uint32_t addr = 0;
    for (uint32_t t = 0; t < n_cyc; ++t) {
        bool wrap = addr == cfg.bufDepth - 1;
        for (uint32_t r = 0; r < cfg.rows; ++r)
            for (uint32_t c = 0; c < cfg.cols; ++c)
                acc[r][c] = wrap
                    ? 0
                    : (acc[r][c] + uint64_t{areg[r]} * w[r][c]) &
                        0xffffffffu;
        for (uint32_t r = 0; r < cfg.rows; ++r)
            areg[r] = act[r][addr];
        addr = (addr + 1) % cfg.bufDepth;
    }
    sim.step(n_cyc);
    for (uint32_t r = 0; r < cfg.rows; ++r)
        for (uint32_t c = 0; c < cfg.cols; ++c) {
            std::string name = "pe" + std::to_string(r) + "_" +
                std::to_string(c) + "_acc";
            EXPECT_EQ(sim.peekRegister(name).toUint64(), acc[r][c])
                << name;
        }
    (void)nl;
}

TEST(Vta, DrainWritesResultBuffer)
{
    VtaConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.bufDepth = 8;
    Interpreter sim(makeVta(cfg));
    sim.step(cfg.bufDepth + 1);
    // After one wrap, rbuf[0] holds the drained column sum.
    EXPECT_NE(sim.peekMemory("rbuf", 0).toUint64(), 0u);
}

class MeshParam
    : public ::testing::TestWithParam<std::pair<uint32_t, MeshCore>>
{
};

TEST_P(MeshParam, FlitConservation)
{
    auto [n, kind] = GetParam();
    MeshConfig cfg;
    cfg.n = n;
    cfg.core = kind;
    cfg.injectPeriod = 4;
    Netlist nl = makeMesh(cfg);
    Interpreter sim(std::move(nl));
    const Netlist &net = sim.netlist();

    for (int epoch = 0; epoch < 4; ++epoch) {
        sim.step(50);
        uint64_t tx = sim.peek("tx_total").toUint64();
        uint64_t rx = sim.peek("rx_total").toUint64();
        // Count in-flight flits in both FIFO entries of every port.
        uint64_t inflight = 0;
        static const char *ports[5] = {"bn", "be", "bs", "bw", "bl"};
        for (uint32_t y = 0; y < n; ++y)
            for (uint32_t x = 0; x < n; ++x)
                for (const char *p : ports)
                    for (const char *e : {"0", "1"}) {
                        std::string name = "n" + std::to_string(x) +
                            "_" + std::to_string(y) + "_" + p + e;
                        inflight +=
                            sim.peekRegister(name).bit(0) ? 1 : 0;
                    }
        EXPECT_EQ(tx, rx + inflight) << "epoch " << epoch;
        EXPECT_GT(tx, 0u) << "no traffic injected";
    }
    (void)net;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MeshParam,
    ::testing::Values(std::make_pair(2u, MeshCore::Small),
                      std::make_pair(3u, MeshCore::Small),
                      std::make_pair(4u, MeshCore::Small),
                      std::make_pair(2u, MeshCore::Large),
                      std::make_pair(3u, MeshCore::Large)));

TEST(Mesh, DeliversToAllNodes)
{
    MeshConfig cfg;
    cfg.n = 3;
    cfg.injectPeriod = 4;
    Interpreter sim(makeMesh(cfg));
    sim.step(600);
    // Round-robin destinations: every node must have received flits.
    for (uint32_t y = 0; y < 3; ++y)
        for (uint32_t x = 0; x < 3; ++x) {
            std::string name = "n" + std::to_string(x) + "_" +
                std::to_string(y) + "_rx";
            EXPECT_GT(sim.peekRegister(name).toUint64(), 0u) << name;
        }
}

TEST(Mesh, UncoreNodesBounceReplies)
{
    MeshConfig cfg;
    cfg.n = 3;
    cfg.injectPeriod = 4;
    Interpreter sim(makeMesh(cfg));
    sim.step(400);
    // The responders must have injected replies.
    for (auto [x, y] : {std::pair{0u, 0u}, {1u, 0u}, {0u, 1u}}) {
        std::string name = "n" + std::to_string(x) + "_" +
            std::to_string(y) + "_tx";
        EXPECT_GT(sim.peekRegister(name).toUint64(), 0u) << name;
    }
}

TEST(Mesh, RejectsBadSizes)
{
    MeshConfig cfg;
    cfg.n = 1;
    EXPECT_THROW(makeMesh(cfg), FatalError);
    cfg.n = 16;
    EXPECT_THROW(makeMesh(cfg), FatalError);
}

TEST(Designs, SizesGrowWithMesh)
{
    auto nodes = [](Netlist nl) {
        return rtl::computeMetrics(nl).nodes;
    };
    size_t sr2 = nodes(makeSr(2));
    size_t sr3 = nodes(makeSr(3));
    size_t lr2 = nodes(makeLr(2));
    EXPECT_GT(sr3, 2 * sr2 - sr2 / 2); // roughly quadratic growth
    EXPECT_GT(lr2, sr2);               // large cores are larger
}
