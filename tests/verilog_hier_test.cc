/**
 * @file
 * Tests for hierarchical Verilog: module instantiation flattened at
 * elaboration — port binding, prefixed internal names, nested and
 * repeated instances, clock threading, and error cases.
 */

#include <gtest/gtest.h>

#include "frontend/verilog.hh"
#include "rtl/interp.hh"
#include "util/logging.hh"

using namespace parendi;
using frontend::parseVerilog;
using rtl::Interpreter;
using rtl::Netlist;

TEST(VerilogHier, TwoCountersViaInstances)
{
    Netlist nl = parseVerilog(R"(
module counter(input clk, input [7:0] step, output [7:0] value);
  reg [7:0] cnt = 0;
  assign value = cnt;
  always @(posedge clk) cnt <= cnt + step;
endmodule

module top(input clk, output [7:0] a, output [7:0] b);
  wire [7:0] va;
  wire [7:0] vb;
  counter c1(.clk(clk), .step(8'd1), .value(va));
  counter c2(.clk(clk), .step(8'd3), .value(vb));
  assign a = va;
  assign b = vb;
endmodule
)");
    EXPECT_EQ(nl.name(), "top");
    // Instance-prefixed registers exist.
    EXPECT_NE(nl.findRegister("c1__cnt"), nl.numRegisters());
    EXPECT_NE(nl.findRegister("c2__cnt"), nl.numRegisters());
    Interpreter sim(std::move(nl));
    sim.step(5);
    EXPECT_EQ(sim.peek("a").toUint64(), 5u);
    EXPECT_EQ(sim.peek("b").toUint64(), 15u);
}

TEST(VerilogHier, ExpressionsAsInputBindings)
{
    Netlist nl = parseVerilog(R"(
module adder(input clk, input [15:0] x, input [15:0] y,
             output [15:0] s);
  assign s = x + y;
endmodule

module top(input clk, input [15:0] p, output [15:0] q);
  wire [15:0] r;
  adder a(.clk(clk), .x(p * 16'd2), .y(p ^ 16'hff), .s(r));
  assign q = r;
endmodule
)");
    Interpreter sim(std::move(nl));
    sim.poke("p", uint64_t{100});
    EXPECT_EQ(sim.peek("q").toUint64(),
              ((100u * 2) + (100u ^ 0xff)) & 0xffff);
}

TEST(VerilogHier, NestedInstances)
{
    Netlist nl = parseVerilog(R"(
module bit_inv(input clk, input [3:0] d, output [3:0] y);
  assign y = ~d;
endmodule

module stage(input clk, input [3:0] d, output [3:0] y);
  wire [3:0] mid;
  bit_inv inv(.clk(clk), .d(d), .y(mid));
  reg [3:0] lat = 0;
  assign y = lat;
  always @(posedge clk) lat <= mid;
endmodule

module top(input clk, input [3:0] in, output [3:0] out);
  wire [3:0] w;
  stage s0(.clk(clk), .d(in), .y(w));
  assign out = w;
endmodule
)");
    // Nested prefix: s0__inv__... nothing to check by name for the
    // wire, but the register is s0__lat.
    EXPECT_NE(nl.findRegister("s0__lat"), nl.numRegisters());
    Interpreter sim(std::move(nl));
    sim.poke("in", uint64_t{0b1010});
    sim.step();
    EXPECT_EQ(sim.peek("out").toUint64(), 0b0101u);
}

TEST(VerilogHier, ChildWithMemoryAndCase)
{
    Netlist nl = parseVerilog(R"(
module scratch(input clk, input [1:0] mode, input [7:0] din,
               output reg [7:0] acc);
  reg [7:0] buf_mem [0:3];
  always @(posedge clk) begin
    case (mode)
      2'd0: acc <= din;
      2'd1: acc <= acc + din;
      2'd2: begin
        buf_mem[din[1:0]] <= acc;
        acc <= buf_mem[din[1:0]];
      end
      default: acc <= 8'd0;
    endcase
  end
endmodule

module top(input clk, input [1:0] m, input [7:0] d,
           output [7:0] out);
  wire [7:0] o;
  scratch s(.clk(clk), .mode(m), .din(d), .acc(o));
  assign out = o;
endmodule
)");
    EXPECT_NE(nl.findMemory("s__buf_mem"), nl.numMemories());
    Interpreter sim(std::move(nl));
    sim.poke("m", uint64_t{0});
    sim.poke("d", uint64_t{42});
    sim.step();
    EXPECT_EQ(sim.peek("out").toUint64(), 42u);
    sim.poke("m", uint64_t{1});
    sim.poke("d", uint64_t{8});
    sim.step();
    EXPECT_EQ(sim.peek("out").toUint64(), 50u);
}

TEST(VerilogHier, RippleOfInstances)
{
    // A 4-stage pipeline built from four instances of one module.
    Netlist nl = parseVerilog(R"(
module dff(input clk, input [7:0] d, output [7:0] q);
  reg [7:0] r = 0;
  assign q = r;
  always @(posedge clk) r <= d;
endmodule

module top(input clk, input [7:0] in, output [7:0] out);
  wire [7:0] w1;
  wire [7:0] w2;
  wire [7:0] w3;
  wire [7:0] w4;
  dff d1(.clk(clk), .d(in), .q(w1));
  dff d2(.clk(clk), .d(w1), .q(w2));
  dff d3(.clk(clk), .d(w2), .q(w3));
  dff d4(.clk(clk), .d(w3), .q(w4));
  assign out = w4;
endmodule
)");
    Interpreter sim(std::move(nl));
    sim.poke("in", uint64_t{0x7e});
    sim.step(3);
    EXPECT_EQ(sim.peek("out").toUint64(), 0u); // not yet through
    sim.step(1);
    EXPECT_EQ(sim.peek("out").toUint64(), 0x7eu);
}

TEST(VerilogHier, Errors)
{
    // Unbound input.
    EXPECT_THROW(parseVerilog(R"(
module child(input clk, input [7:0] d, output [7:0] q);
  assign q = d;
endmodule
module top(input clk, output [7:0] o);
  wire [7:0] w;
  child c(.clk(clk), .q(w));
  assign o = w;
endmodule
)"),
                 FatalError);
    // Unknown module.
    EXPECT_THROW(parseVerilog(R"(
module top(input clk, output [7:0] o);
  wire [7:0] w;
  ghost g(.clk(clk), .q(w));
  assign o = w;
endmodule
)"),
                 FatalError);
    // Unknown port.
    EXPECT_THROW(parseVerilog(R"(
module child(input clk, input [7:0] d, output [7:0] q);
  assign q = d;
endmodule
module top(input clk, input [7:0] i, output [7:0] o);
  wire [7:0] w;
  child c(.clk(clk), .d(i), .nope(w), .q(w));
  assign o = w;
endmodule
)"),
                 FatalError);
    // Instantiation cycle.
    EXPECT_THROW(parseVerilog(R"(
module a(input clk, output [7:0] q);
  wire [7:0] w;
  b inner(.clk(clk), .q(w));
  assign q = w;
endmodule
module b(input clk, output [7:0] q);
  wire [7:0] w;
  a inner(.clk(clk), .q(w));
  assign q = w;
endmodule
)"),
                 FatalError);
    // Output bound to an expression.
    EXPECT_THROW(parseVerilog(R"(
module child(input clk, output [7:0] q);
  assign q = 8'd1;
endmodule
module top(input clk, output [7:0] o);
  wire [7:0] w;
  child c(.clk(clk), .q(w + 8'd1));
  assign o = w;
endmodule
)"),
                 FatalError);
    // Duplicate module definition.
    EXPECT_THROW(parseVerilog(R"(
module m(input clk, output o);
  assign o = 1'd1;
endmodule
module m(input clk, output o);
  assign o = 1'd0;
endmodule
)"),
                 FatalError);
}

TEST(VerilogHier, IndexedInputNeedsPlainBinding)
{
    // The child bit-selects its input, so the binding must be a
    // plain signal...
    EXPECT_THROW(parseVerilog(R"(
module taps(input clk, input [7:0] d, output t);
  assign t = d[3];
endmodule
module top(input clk, input [7:0] x, output o);
  wire t;
  taps u(.clk(clk), .d(x + 8'd1), .t(t));
  assign o = t;
endmodule
)"),
                 FatalError);
    // ...and with a plain binding it works.
    Netlist nl = parseVerilog(R"(
module taps(input clk, input [7:0] d, output t);
  assign t = d[3];
endmodule
module top(input clk, input [7:0] x, output o);
  wire t;
  taps u(.clk(clk), .d(x), .t(t));
  assign o = t;
endmodule
)");
    Interpreter sim(std::move(nl));
    sim.poke("x", uint64_t{0b1000});
    EXPECT_EQ(sim.peek("o").toUint64(), 1u);
}
