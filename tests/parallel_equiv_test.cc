/**
 * @file
 * Multithreaded differential fuzz for the BSP host runtime: the
 * persistent-pool IpuMachine and the ParallelInterpreter must be
 * bit-identical to the reference interpreter at every tested thread
 * count, over random netlists whose colliding write ports make any
 * ordering bug in the parallel commit phase observable. Also checks
 * the host-facing extras (poke, reset, checkpoint) of the new engine
 * and the BspPool itself.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <vector>

#include "core/compiler.hh"
#include "core/engine.hh"
#include "random_netlist.hh"
#include "rtl/interp.hh"
#include "util/bsp_pool.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "x86/parallel.hh"

using namespace parendi;
using parendi::testing::randomNetlist;
using parendi::testing::RandomNetlistConfig;
using rtl::Interpreter;
using rtl::Netlist;
using rtl::ParallelInterpreter;

namespace {

/** Random netlists with extra memories -> more colliding ports. */
RandomNetlistConfig
collidingConfig()
{
    RandomNetlistConfig cfg;
    cfg.registers = 16;
    cfg.memories = 4;
    cfg.combNodes = 150;
    return cfg;
}

void
compareAllState(core::SimEngine &sim, Interpreter &ref,
                const char *what)
{
    const Netlist &nl = ref.netlist();
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r) {
        const std::string &name = nl.reg(r).name;
        ASSERT_EQ(sim.peekRegister(name), ref.peekRegister(name))
            << what << ": reg " << name;
    }
    for (rtl::PortId o = 0; o < nl.numOutputs(); ++o) {
        const std::string &name = nl.output(o).name;
        ASSERT_EQ(sim.peek(name), ref.peek(name))
            << what << ": output " << name;
    }
    for (rtl::MemId m = 0; m < nl.numMemories(); ++m) {
        const rtl::Memory &mem = nl.mem(m);
        for (uint32_t e = 0; e < mem.depth; ++e)
            ASSERT_EQ(sim.peekMemory(mem.name, e),
                      ref.peekMemory(mem.name, e))
                << what << ": " << mem.name << "[" << e << "]";
    }
}

} // namespace

class ParallelEquiv : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ParallelEquiv, ParallelInterpreterMatchesReference)
{
    uint64_t seed = GetParam();
    Netlist nl = randomNetlist(seed, collidingConfig());
    Interpreter ref(nl);
    ref.step(40);
    for (uint32_t threads : {1u, 2u, 8u}) {
        ParallelInterpreter par(nl, threads);
        par.step(40);
        compareAllState(par, ref, "par");
    }
}

TEST_P(ParallelEquiv, PooledMachineMatchesReference)
{
    uint64_t seed = GetParam();
    if (seed % 2) // subsample: compile is the slow part
        return;
    Netlist nl = randomNetlist(seed, collidingConfig());
    Interpreter ref(nl);
    ref.step(40);
    for (uint32_t threads : {1u, 2u, 8u}) {
        core::CompilerOptions opt;
        opt.tilesPerChip = 24;
        opt.machine.hostThreads = threads;
        auto sim = core::compile(Netlist(nl), opt);
        sim->step(40);
        compareAllState(sim->machine(), ref, "ipu");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEquiv,
                         ::testing::Range<uint64_t>(1, 13));

TEST(ParallelInterpreter, PokeResetAndCheckpoint)
{
    rtl::Design d("io");
    rtl::Wire a = d.input("a", 16);
    auto acc = d.reg("acc", 16, 0);
    auto other = d.reg("other", 16, 5);
    d.next(acc, d.read(acc) + a);
    d.next(other, d.read(other) ^ a);
    d.output("acc", d.read(acc));
    Netlist nl = d.finish();

    ParallelInterpreter sim(nl, 2);
    sim.poke("a", uint64_t{3});
    sim.step(4);
    EXPECT_EQ(sim.peek("acc").toUint64(), 12u);

    std::stringstream snap;
    sim.save(snap);
    sim.step(2);
    EXPECT_EQ(sim.peek("acc").toUint64(), 18u);
    sim.restore(snap);
    EXPECT_EQ(sim.cycles(), 4u);
    EXPECT_EQ(sim.peek("acc").toUint64(), 12u);

    sim.reset();
    EXPECT_EQ(sim.cycles(), 0u);
    EXPECT_EQ(sim.peekRegister("other").toUint64(), 5u);
}

TEST(ParallelInterpreter, ShardCountClampsToFibers)
{
    // 2 sinks -> at most 2 shards no matter how many threads.
    rtl::Design d("tiny");
    auto r = d.reg("r", 8, 1);
    d.next(r, d.read(r) + d.lit(8, 1));
    d.output("o", d.read(r));
    ParallelInterpreter sim(d.finish(), 16);
    EXPECT_LE(sim.numShards(), 2u);
    sim.step(3);
    EXPECT_EQ(sim.peekRegister("r").toUint64(), 4u);
}

TEST(ParallelEquiv, EngineFactoryBuildsEveryKind)
{
    Netlist nl = randomNetlist(7);
    Interpreter ref(nl);
    ref.step(20);
    for (const char *name : {"interp", "event", "ipu", "par"}) {
        core::EngineOptions opt;
        opt.kind = core::parseEngineKind(name);
        opt.threads = 2;
        auto engine = core::makeEngine(Netlist(nl), opt);
        ASSERT_STREQ(engine->engineName(), name);
        engine->step(20);
        EXPECT_EQ(engine->cycles(), 20u);
        for (rtl::PortId o = 0; o < nl.numOutputs(); ++o) {
            const std::string &out = nl.output(o).name;
            ASSERT_EQ(engine->peek(out), ref.peek(out))
                << name << ": " << out;
        }
    }
    EXPECT_THROW(core::parseEngineKind("verilator"), FatalError);
}

TEST(BspPool, ForEachCoversEveryIndexExactlyOnce)
{
    for (uint32_t threads : {1u, 2u, 3u, 8u}) {
        util::BspPool pool(threads);
        for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{64}}) {
            std::vector<std::atomic<uint32_t>> hits(n);
            pool.forEach(n, [&](size_t b, size_t e) {
                for (size_t i = b; i < e; ++i)
                    hits[i].fetch_add(1);
            });
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(hits[i].load(), 1u)
                    << "threads=" << threads << " n=" << n
                    << " i=" << i;
        }
    }
}

TEST(BspPool, ManySuperstepsKeepWorkersInLockstep)
{
    util::BspPool pool(4);
    std::atomic<uint64_t> sum{0};
    constexpr int kSteps = 500;
    for (int s = 0; s < kSteps; ++s)
        pool.run([&](uint32_t worker) { sum.fetch_add(worker + 1); });
    // Each superstep runs every worker exactly once: 1+2+3+4 = 10.
    EXPECT_EQ(sum.load(), uint64_t{10} * kSteps);
}
