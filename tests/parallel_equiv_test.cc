/**
 * @file
 * Multithreaded differential fuzz for the BSP host runtime: the
 * persistent-pool IpuMachine and the ParallelInterpreter must be
 * bit-identical to the reference interpreter at every tested thread
 * count, over random netlists whose colliding write ports make any
 * ordering bug in the parallel commit phase observable. Also checks
 * the host-facing extras (poke, reset, checkpoint) of the new engine
 * and the BspPool itself.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "core/compiler.hh"
#include "core/engine.hh"
#include "random_netlist.hh"
#include "rtl/interp.hh"
#include "util/bsp_pool.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "x86/parallel.hh"

using namespace parendi;
using parendi::testing::randomNetlist;
using parendi::testing::RandomNetlistConfig;
using rtl::Interpreter;
using rtl::Netlist;
using rtl::ParallelInterpreter;

namespace {

/** Random netlists with extra memories -> more colliding ports. */
RandomNetlistConfig
collidingConfig()
{
    RandomNetlistConfig cfg;
    cfg.registers = 16;
    cfg.memories = 4;
    cfg.combNodes = 150;
    return cfg;
}

void
compareAllState(core::SimEngine &sim, Interpreter &ref,
                const char *what)
{
    const Netlist &nl = ref.netlist();
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r) {
        const std::string &name = nl.reg(r).name;
        ASSERT_EQ(sim.peekRegister(name), ref.peekRegister(name))
            << what << ": reg " << name;
    }
    for (rtl::PortId o = 0; o < nl.numOutputs(); ++o) {
        const std::string &name = nl.output(o).name;
        ASSERT_EQ(sim.peek(name), ref.peek(name))
            << what << ": output " << name;
    }
    for (rtl::MemId m = 0; m < nl.numMemories(); ++m) {
        const rtl::Memory &mem = nl.mem(m);
        for (uint32_t e = 0; e < mem.depth; ++e)
            ASSERT_EQ(sim.peekMemory(mem.name, e),
                      ref.peekMemory(mem.name, e))
                << what << ": " << mem.name << "[" << e << "]";
    }
}

} // namespace

class ParallelEquiv : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ParallelEquiv, ParallelInterpreterMatchesReference)
{
    uint64_t seed = GetParam();
    Netlist nl = randomNetlist(seed, collidingConfig());
    Interpreter ref(nl);
    ref.step(40);
    for (uint32_t threads : {1u, 2u, 8u}) {
        // Pin real shards/workers: the default clamp to hardware
        // concurrency would serialize this on small CI hosts.
        rtl::ParConfig pcfg;
        pcfg.maxWorkers = threads;
        ParallelInterpreter par(nl, threads, rtl::LowerOptions{},
                                pcfg);
        par.step(40);
        compareAllState(par, ref, "par");
    }
}

TEST_P(ParallelEquiv, PooledMachineMatchesReference)
{
    uint64_t seed = GetParam();
    if (seed % 2) // subsample: compile is the slow part
        return;
    Netlist nl = randomNetlist(seed, collidingConfig());
    Interpreter ref(nl);
    ref.step(40);
    for (uint32_t threads : {1u, 2u, 8u}) {
        core::CompilerOptions opt;
        opt.tilesPerChip = 24;
        opt.machine.hostThreads = threads;
        opt.machine.maxHostWorkers = threads;
        auto sim = core::compile(Netlist(nl), opt);
        sim->step(40);
        compareAllState(sim->machine(), ref, "ipu");
    }
}

TEST_P(ParallelEquiv, FusedMatchesPhasedAcrossBatchShapes)
{
    // The fused single-barrier superstep must stay bit-identical to
    // the 4-barrier phased sequence over colliding write ports, odd
    // and even batch lengths (the publish-buffer parity flips), and
    // mid-run reset and checkpoint intrusions (which invalidate the
    // publish buffers).
    uint64_t seed = GetParam();
    Netlist nl = randomNetlist(seed, collidingConfig());
    for (uint32_t threads : {1u, 2u, 8u}) {
        Interpreter ref(nl);
        rtl::ParConfig fcfg;
        fcfg.maxWorkers = threads;
        fcfg.batch = 3; // step(n) splits into odd-length batches
        rtl::ParConfig pcfg;
        pcfg.fused = false;
        pcfg.maxWorkers = threads;
        ParallelInterpreter fused(nl, threads, rtl::LowerOptions{},
                                  fcfg);
        ParallelInterpreter phased(nl, threads, rtl::LowerOptions{},
                                   pcfg);
        ASSERT_TRUE(fused.fused());
        ASSERT_FALSE(phased.fused());

        for (size_t batch : {size_t{1}, size_t{3}, size_t{16}}) {
            ref.step(batch);
            fused.step(batch);
            phased.step(batch);
            compareAllState(fused, ref, "fused");
            compareAllState(phased, ref, "phased");
        }

        // Checkpoint round-trip mid-run: restore must re-publish
        // before the next fused batch.
        std::stringstream snap;
        fused.save(snap);
        fused.step(5);
        fused.restore(snap);
        ref.step(5);
        fused.step(5);
        phased.step(5);
        compareAllState(fused, ref, "fused after restore");

        // Reset mid-run, then another odd/even batch mix.
        ref.reset();
        fused.reset();
        phased.reset();
        ref.step(7);
        fused.step(7);
        phased.step(7);
        compareAllState(fused, ref, "fused after reset");
        compareAllState(phased, ref, "phased after reset");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEquiv,
                         ::testing::Range<uint64_t>(1, 13));

TEST(ParallelInterpreter, PokeResetAndCheckpoint)
{
    rtl::Design d("io");
    rtl::Wire a = d.input("a", 16);
    auto acc = d.reg("acc", 16, 0);
    auto other = d.reg("other", 16, 5);
    d.next(acc, d.read(acc) + a);
    d.next(other, d.read(other) ^ a);
    d.output("acc", d.read(acc));
    Netlist nl = d.finish();

    rtl::ParConfig pcfg;
    pcfg.maxWorkers = 2;
    ParallelInterpreter sim(nl, 2, rtl::LowerOptions{}, pcfg);
    sim.poke("a", uint64_t{3});
    sim.step(4);
    EXPECT_EQ(sim.peek("acc").toUint64(), 12u);

    std::stringstream snap;
    sim.save(snap);
    sim.step(2);
    EXPECT_EQ(sim.peek("acc").toUint64(), 18u);
    sim.restore(snap);
    EXPECT_EQ(sim.cycles(), 4u);
    EXPECT_EQ(sim.peek("acc").toUint64(), 12u);

    sim.reset();
    EXPECT_EQ(sim.cycles(), 0u);
    EXPECT_EQ(sim.peekRegister("other").toUint64(), 5u);
}

TEST(ParallelInterpreter, ShardCountClampsToFibers)
{
    // 2 sinks -> at most 2 shards no matter how many threads.
    rtl::Design d("tiny");
    auto r = d.reg("r", 8, 1);
    d.next(r, d.read(r) + d.lit(8, 1));
    d.output("o", d.read(r));
    ParallelInterpreter sim(d.finish(), 16);
    EXPECT_LE(sim.numShards(), 2u);
    sim.step(3);
    EXPECT_EQ(sim.peekRegister("r").toUint64(), 4u);
}

TEST(ParallelEquiv, EngineFactoryBuildsEveryKind)
{
    Netlist nl = randomNetlist(7);
    Interpreter ref(nl);
    ref.step(20);
    for (const char *name : {"interp", "event", "ipu", "par"}) {
        core::EngineOptions opt;
        opt.kind = core::parseEngineKind(name);
        opt.threads = 2;
        auto engine = core::makeEngine(Netlist(nl), opt);
        ASSERT_STREQ(engine->engineName(), name);
        engine->step(20);
        EXPECT_EQ(engine->cycles(), 20u);
        for (rtl::PortId o = 0; o < nl.numOutputs(); ++o) {
            const std::string &out = nl.output(o).name;
            ASSERT_EQ(engine->peek(out), ref.peek(out))
                << name << ": " << out;
        }
    }
    EXPECT_THROW(core::parseEngineKind("verilator"), FatalError);
}

TEST(BspPool, ForEachCoversEveryIndexExactlyOnce)
{
    for (uint32_t threads : {1u, 2u, 3u, 8u}) {
        util::BspPool pool(threads);
        for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{64}}) {
            std::vector<std::atomic<uint32_t>> hits(n);
            pool.forEach(n, [&](size_t b, size_t e) {
                for (size_t i = b; i < e; ++i)
                    hits[i].fetch_add(1);
            });
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(hits[i].load(), 1u)
                    << "threads=" << threads << " n=" << n
                    << " i=" << i;
        }
    }
}

TEST(BspPool, ManySuperstepsKeepWorkersInLockstep)
{
    util::BspPool pool(4);
    std::atomic<uint64_t> sum{0};
    constexpr int kSteps = 500;
    for (int s = 0; s < kSteps; ++s)
        pool.run([&](uint32_t worker) { sum.fetch_add(worker + 1); });
    // Each superstep runs every worker exactly once: 1+2+3+4 = 10.
    EXPECT_EQ(sum.load(), uint64_t{10} * kSteps);
}

TEST(ParallelInterpreter, PokeBetweenFusedBatchesIsVisible)
{
    // A poke between fused batches rewrites input replicas behind the
    // publish buffers' back; the next batch must see the new value on
    // every shard (pubValid_ invalidation), at odd and even batch
    // lengths so both buffer parities are exercised.
    rtl::Design d("pokes");
    rtl::Wire a = d.input("a", 16);
    auto acc = d.reg("acc", 16, 0);
    d.next(acc, d.read(acc) + a);
    d.output("acc", d.read(acc));
    Netlist nl = d.finish();

    rtl::ParConfig pcfg;
    pcfg.maxWorkers = 2;
    ParallelInterpreter sim(nl, 2, rtl::LowerOptions{}, pcfg);
    uint64_t expect = 0;
    uint64_t value = 1;
    for (size_t batch : {size_t{1}, size_t{3}, size_t{16},
                         size_t{4}}) {
        sim.poke("a", value);
        sim.step(batch);
        expect += value * batch;
        ASSERT_EQ(sim.peek("acc").toUint64(), expect & 0xffff)
            << "batch " << batch;
        value += 3;
    }
}

TEST(SpinBarrier, ReleasesEveryPartyEachGeneration)
{
    constexpr uint32_t kParties = 4;
    constexpr int kRounds = 300;
    util::SpinBarrier bar(kParties);
    std::atomic<uint32_t> arrived{0};
    std::vector<std::thread> threads;
    threads.reserve(kParties);
    for (uint32_t p = 0; p < kParties; ++p) {
        threads.emplace_back([&]() {
            for (int r = 0; r < kRounds; ++r) {
                arrived.fetch_add(1);
                bar.arriveAndWait();
                // All parties of round r incremented before anyone
                // passes the barrier (later rounds may have started).
                ASSERT_GE(arrived.load(),
                          kParties * static_cast<uint32_t>(r + 1));
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(bar.generations(), static_cast<uint64_t>(kRounds));
    EXPECT_EQ(arrived.load(), kParties * kRounds);
}

TEST(SpinBarrier, AdaptiveBudgetStaysBoundedAndTracksWaits)
{
    util::SpinBarrier bar(1);
    const uint32_t initial = bar.spinBudget();
    EXPECT_GT(initial, 0u);
    // Long observed waits saturate the budget at its upper bound;
    // near-zero waits pull it back to the lower bound. Both bounds
    // must hold no matter how extreme the inputs.
    for (int i = 0; i < 64; ++i)
        bar.observeWaitNs(50'000'000);
    const uint32_t high = bar.spinBudget();
    EXPECT_GE(high, initial);
    for (int i = 0; i < 64; ++i)
        bar.observeWaitNs(0);
    const uint32_t low = bar.spinBudget();
    EXPECT_LE(low, high);
    EXPECT_GT(low, 0u);
    // A single party never blocks; generations still advance.
    bar.arriveAndWait();
    bar.arriveAndWait();
    EXPECT_EQ(bar.generations(), 2u);
}

namespace {

/** Counts pool-epoch wait pairs (one per worker per run()). */
struct EpochCounter final : util::BspWaitObserver
{
    std::atomic<uint32_t> begins{0};
    std::atomic<uint32_t> ends{0};
    void epochWaitBegin(uint32_t) override { begins.fetch_add(1); }
    void epochWaitEnd(uint32_t) override { ends.fetch_add(1); }
};

} // namespace

TEST(BspPool, BatchDispatchCrossesInnerBarriersInOneEpoch)
{
    // The multi-cycle batch shape: one pool.run() dispatch whose
    // workers separate k inner cycles with a SpinBarrier. The pool's
    // own epoch machinery (and its wait observer) must fire once per
    // dispatch, not once per inner cycle — that is the entire point
    // of batching.
    constexpr uint32_t kWorkers = 3;
    constexpr uint32_t kBatches = 4;
    constexpr int kInner = 17;
    util::BspPool pool(kWorkers);
    EpochCounter obs;
    pool.setWaitObserver(&obs);
    util::SpinBarrier inner(kWorkers);
    std::vector<uint64_t> perWorker(kWorkers, 0);
    for (uint32_t b = 0; b < kBatches; ++b)
        pool.run([&](uint32_t w) {
            for (int c = 0; c < kInner; ++c) {
                perWorker[w] += 1;
                inner.arriveAndWait();
            }
        });
    for (uint32_t w = 0; w < kWorkers; ++w)
        EXPECT_EQ(perWorker[w],
                  static_cast<uint64_t>(kBatches) * kInner);
    // Every inner cycle crossed the in-dispatch barrier...
    EXPECT_EQ(inner.generations(),
              static_cast<uint64_t>(kBatches) * kInner);
    // ...while the pool's epoch machinery fired one wait pair per
    // worker per *dispatch* (give or take the workers still entering
    // their next wait when run() returns) — never per inner cycle.
    EXPECT_GE(obs.ends.load(), kBatches);
    EXPECT_LE(obs.begins.load(), (kBatches + 1) * kWorkers);
    EXPECT_LT(obs.begins.load(), kBatches * kInner);
    pool.setWaitObserver(nullptr);
}
