/**
 * @file
 * Unit tests for the BitVec value type.
 */

#include <gtest/gtest.h>

#include "rtl/bitvec.hh"
#include "util/logging.hh"

using namespace parendi;
using namespace parendi::rtl;

TEST(BitVec, ConstructionNormalizes)
{
    BitVec v(5, 0xff);
    EXPECT_EQ(v.toUint64(), 0x1fu);
    EXPECT_EQ(v.width(), 5u);
    EXPECT_EQ(v.numWords(), 1u);
}

TEST(BitVec, WideConstruction)
{
    BitVec v(130, {~0ull, ~0ull, ~0ull});
    EXPECT_EQ(v.numWords(), 3u);
    EXPECT_EQ(v.word(0), ~0ull);
    EXPECT_EQ(v.word(1), ~0ull);
    EXPECT_EQ(v.word(2), 3ull); // normalized to 2 bits
}

TEST(BitVec, BitAccess)
{
    BitVec v(70, 0);
    v.setBit(0, true);
    v.setBit(69, true);
    EXPECT_TRUE(v.bit(0));
    EXPECT_TRUE(v.bit(69));
    EXPECT_FALSE(v.bit(35));
    v.setBit(69, false);
    EXPECT_FALSE(v.bit(69));
}

TEST(BitVec, IsZeroAndEquality)
{
    EXPECT_TRUE(BitVec(64, 0).isZero());
    EXPECT_FALSE(BitVec(64, 1).isZero());
    EXPECT_EQ(BitVec(32, 5), BitVec(32, 5));
    EXPECT_NE(BitVec(32, 5), BitVec(33, 5));
    EXPECT_NE(BitVec(32, 5), BitVec(32, 6));
}

TEST(BitVec, HexRoundTrip)
{
    BitVec v(100, {0x0123456789abcdefull, 0xfedcba98ull});
    BitVec w = BitVec::fromHex(100, v.toHex());
    EXPECT_EQ(v, w);
}

TEST(BitVec, HexLeadingZeros)
{
    EXPECT_EQ(BitVec(32, 0).toHex(), "0");
    EXPECT_EQ(BitVec(32, 0xab).toHex(), "ab");
    EXPECT_EQ(BitVec::fromHex(32, "00ab"), BitVec(32, 0xab));
}

TEST(BitVec, FromHexUppercase)
{
    EXPECT_EQ(BitVec::fromHex(16, "AbCd"), BitVec(16, 0xabcd));
}

TEST(BitVec, FromHexBadDigit)
{
    EXPECT_THROW(BitVec::fromHex(16, "12g4"), FatalError);
}

TEST(BitVec, FromHexTruncatesToWidth)
{
    EXPECT_EQ(BitVec::fromHex(8, "1ff"), BitVec(8, 0xff));
}

TEST(BitVec, WidthLimit)
{
    EXPECT_THROW(BitVec(kMaxWidth + 1, 0), FatalError);
    EXPECT_NO_THROW(BitVec(kMaxWidth, 0));
}

TEST(BitVec, HexCrossesWordBoundary)
{
    // A nibble straddling bit 62..65.
    BitVec v = BitVec::fromHex(68, "fedcba98765432100");
    EXPECT_EQ(v.word(0), 0xedcba98765432100ull);
    EXPECT_EQ(v.word(1), 0xfull);
}
