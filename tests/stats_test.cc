/**
 * @file
 * Tests for the simulation statistics/reporting module.
 */

#include <gtest/gtest.h>

#include "core/stats.hh"
#include "designs/designs.hh"

using namespace parendi;
using namespace parendi::core;

TEST(Stats, LoadStatsAreOrdered)
{
    auto sim = compile(designs::makeSr(3), CompilerOptions{});
    LoadStats s = computeLoadStats(*sim);
    EXPECT_GT(s.tiles, 0u);
    EXPECT_LE(s.minLoad, s.p50);
    EXPECT_LE(s.p50, s.p90);
    EXPECT_LE(s.p90, s.maxLoad);
    EXPECT_GE(s.imbalance, 1.0);
    EXPECT_GT(s.mean, 0.0);
}

TEST(Stats, MaxLoadIsTheModeledStraggler)
{
    auto sim = compile(designs::makeBitcoin({2, 16}),
                       CompilerOptions{});
    LoadStats s = computeLoadStats(*sim);
    // t_comp = straggler + per-tile loop overhead.
    double overhead =
        sim->machine().architecture().tileLoopOverhead;
    EXPECT_DOUBLE_EQ(sim->cycleCosts().tComp,
                     static_cast<double>(s.maxLoad) + overhead);
}

TEST(Stats, LoadsMatchPartitioning)
{
    auto sim = compile(designs::makeSr(2), CompilerOptions{});
    auto loads = tileLoads(*sim);
    EXPECT_EQ(loads.size(), sim->partitioning().processes.size());
    EXPECT_EQ(loads.size(), sim->machine().tilesUsed());
}

TEST(Stats, ReportMentionsAllSections)
{
    auto sim = compile(designs::makeMc({8, 16, 100 << 16, 105 << 16}),
                       CompilerOptions{});
    std::string rep = describeSimulation(*sim);
    for (const char *needle :
         {"== design ==", "== partitioning ==", "== tile loads",
          "== exchange ==", "== modeled cycle budget ==",
          "straggler", "kHz"})
        EXPECT_NE(rep.find(needle), std::string::npos) << needle;
}
