/**
 * @file
 * A random netlist generator for property/fuzz tests: produces
 * well-formed designs with random-width registers, memories with
 * multiple ports, and a random mix of every combinational operator,
 * so the interpreter-vs-machine equivalence tests explore circuit
 * shapes no hand-written design would.
 */

#ifndef PARENDI_TESTS_RANDOM_NETLIST_HH
#define PARENDI_TESTS_RANDOM_NETLIST_HH

#include <vector>

#include "rtl/dsl.hh"
#include "util/rng.hh"

namespace parendi::testing {

struct RandomNetlistConfig
{
    uint32_t registers = 12;
    uint32_t memories = 2;
    uint32_t combNodes = 120;
    uint32_t outputs = 3;
    uint16_t maxWidth = 96;
    /** Input ports mixed into the combinational pool (0 keeps the
     *  historical netlists for a given seed byte-identical). Tests
     *  that drive per-lane stimuli (gang simulation) need inputs. */
    uint32_t inputs = 0;
};

inline rtl::Netlist
randomNetlist(uint64_t seed, const RandomNetlistConfig &cfg =
                                 RandomNetlistConfig{})
{
    using namespace rtl;
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 12345);
    Design d("fuzz" + std::to_string(seed));

    auto rand_width = [&]() -> uint16_t {
        // Bias toward interesting widths: 1, word-boundary and odd.
        switch (rng.below(6)) {
          case 0: return 1;
          case 1: return 32;
          case 2: return 64;
          case 3: return 65;
          default:
            return static_cast<uint16_t>(1 + rng.below(cfg.maxWidth));
        }
    };

    std::vector<RegId> regs;
    std::vector<Wire> pool; // every value created so far
    for (uint32_t i = 0; i < cfg.registers; ++i) {
        uint16_t w = rand_width();
        RegId r = d.reg("r" + std::to_string(i), w, rng.next());
        regs.push_back(r);
        pool.push_back(d.read(r));
    }
    std::vector<MemId> mems;
    for (uint32_t i = 0; i < cfg.memories; ++i) {
        uint16_t w = rand_width();
        uint32_t depth = 4u << rng.below(4); // 4..32 entries
        mems.push_back(
            d.memory("m" + std::to_string(i), w, depth));
    }
    pool.push_back(d.lit(32, rng.next()));
    pool.push_back(d.lit(1, 1));
    for (uint32_t i = 0; i < cfg.inputs; ++i)
        pool.push_back(d.input("in" + std::to_string(i), rand_width()));

    auto pick = [&]() { return pool[rng.below(pool.size())]; };
    auto pick_w = [&](uint16_t w) { return pick().resize(w); };

    for (uint32_t i = 0; i < cfg.combNodes; ++i) {
        Wire a = pick();
        Wire out;
        switch (rng.below(14)) {
          case 0: out = a + pick_w(a.width()); break;
          case 1: out = a - pick_w(a.width()); break;
          case 2: out = a & pick_w(a.width()); break;
          case 3: out = a | pick_w(a.width()); break;
          case 4: out = a ^ pick_w(a.width()); break;
          case 5:
            out = a.width() <= 64 ? a * pick_w(a.width()) : ~a;
            break;
          case 6: out = a << pick_w(8); break;
          case 7: out = a >> pick_w(8); break;
          case 8: out = a.sra(pick_w(8)); break;
          case 9: out = d.mux(pick_w(1), a, pick_w(a.width())); break;
          case 10: {
            uint16_t w2 = static_cast<uint16_t>(
                1 + rng.below(std::min<uint32_t>(
                    a.width() + 32, rtl::kMaxWidth - a.width())));
            out = a.concat(pick_w(w2));
            break;
          }
          case 11: {
            uint16_t sw = static_cast<uint16_t>(
                1 + rng.below(a.width()));
            uint32_t lsb = static_cast<uint32_t>(
                rng.below(a.width() - sw + 1));
            out = a.slice(lsb, sw);
            break;
          }
          case 12:
            out = rng.below(2) ? a.ult(pick_w(a.width()))
                               : a.slt(pick_w(a.width()));
            break;
          default: {
            MemId m = mems[rng.below(mems.size())];
            out = d.memRead(m, pick_w(8));
            break;
          }
        }
        pool.push_back(out);
    }

    // Drive every register and add some memory write ports.
    for (RegId r : regs)
        d.next(r, pick_w(d.netlist().reg(r).width));
    for (MemId m : mems) {
        // Up to three ports, and about half of them reuse one shared
        // address wire so several enabled ports hit the same entry in
        // the same cycle. MemWrite ports commit in creation order
        // (netlist.hh), i.e. the last enabled port wins; generating
        // collisions on purpose keeps every engine honest about that.
        uint32_t ports = 1 + rng.below(3);
        Wire shared_addr = pick_w(8);
        for (uint32_t p = 0; p < ports; ++p) {
            Wire addr = rng.below(2) ? shared_addr : pick_w(8);
            // Constant-true enables guarantee the collision actually
            // fires instead of depending on a random 1-bit wire.
            Wire en = rng.below(4) == 0 ? d.lit(1, 1) : pick_w(1);
            d.memWrite(m, addr, pick_w(d.netlist().mem(m).width), en);
        }
    }
    for (uint32_t i = 0; i < cfg.outputs; ++i)
        d.output("o" + std::to_string(i), pick());
    return d.finish();
}

} // namespace parendi::testing

#endif // PARENDI_TESTS_RANDOM_NETLIST_HH
