/**
 * @file
 * End-to-end tests of the serving layer: a real Server on an
 * ephemeral loopback port driven through serve::Client. Covers the
 * whole protocol surface, error paths, checkpoint/restore over the
 * wire, and the acceptance-critical multi-session differential: K
 * concurrent sessions stepped in interleaved batches must be
 * bit-identical to K sequential single-engine runs.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "designs/designs.hh"
#include "frontend/pnl.hh"
#include "rtl/interp.hh"
#include "rtl/opt.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "serve/session.hh"
#include "util/logging.hh"

using namespace parendi;

namespace {

const char *kCounterPnl = R"(
pnl 1
design counter
reg cnt 32 0
%en = input en 1
%c  = regread cnt
%one = const 32 1
%sum = add %c %one
%nxt = mux %en %sum %c
regnext cnt %nxt
output value %c
)";

/** The design zoo of the test host. */
rtl::Netlist
resolveTestDesign(const std::string &spec)
{
    rtl::Netlist nl;
    if (spec == "counter")
        nl = frontend::parsePnl(kCounterPnl);
    else if (spec == "pico")
        nl = designs::makePico(designs::defaultCoreConfig());
    else if (spec == "bitcoin")
        nl = designs::makeBitcoin({1, 16});
    else if (spec == "sr2")
        nl = designs::makeSr(2);
    else if (spec == "sr4")
        nl = designs::makeSr(4);
    else
        fatal("unknown test design %s", spec.c_str());
    return rtl::optimize(std::move(nl));
}

/** A manager + server on an ephemeral port, plus one connected
 *  client, torn down in order. */
struct ServeFixture
{
    explicit ServeFixture(uint64_t quantum = 256,
                          uint32_t poolThreads = 2)
    {
        serve::ManagerOptions mopt;
        mopt.poolThreads = poolThreads;
        mopt.quantumCycles = quantum;
        mopt.resolveDesign = resolveTestDesign;
        manager = std::make_unique<serve::SessionManager>(
            std::move(mopt));
        server = std::make_unique<serve::Server>(*manager, 0);
        server->start();
        EXPECT_TRUE(client.connect(server->port()));
    }

    ~ServeFixture()
    {
        client.disconnect();
        server->stop();
    }

    std::unique_ptr<serve::SessionManager> manager;
    std::unique_ptr<serve::Server> server;
    serve::Client client;
};

} // namespace

TEST(Serve, CreateStepPeekDestroy)
{
    ServeFixture fx;
    uint64_t id = fx.client.createSession("counter", "interp");
    ASSERT_NE(id, 0u) << fx.client.lastError();

    ASSERT_TRUE(fx.client.poke(id, "en", rtl::BitVec(1, uint64_t{1})));
    uint64_t cycles = 0;
    ASSERT_TRUE(fx.client.step(id, 10, &cycles));
    EXPECT_EQ(cycles, 10u);

    rtl::BitVec value;
    ASSERT_TRUE(fx.client.peek(id, "value", &value));
    EXPECT_EQ(value.toUint64(), 10u);
    rtl::BitVec reg;
    ASSERT_TRUE(fx.client.peekRegister(id, "cnt", &reg));
    EXPECT_EQ(reg.toUint64(), 10u);

    // Gating the enable freezes the counter — pokes take effect.
    ASSERT_TRUE(fx.client.poke(id, "en", rtl::BitVec(1, uint64_t{0})));
    ASSERT_TRUE(fx.client.step(id, 7, &cycles));
    EXPECT_EQ(cycles, 17u);
    ASSERT_TRUE(fx.client.peek(id, "value", &value));
    EXPECT_EQ(value.toUint64(), 10u);

    EXPECT_TRUE(fx.client.destroySession(id));
    EXPECT_EQ(fx.manager->numSessions(), 0u);
    EXPECT_FALSE(fx.client.step(id, 1));
}

TEST(Serve, ErrorsAreReportedNotFatal)
{
    ServeFixture fx;
    EXPECT_EQ(fx.client.createSession("nonsense-design"), 0u);
    EXPECT_NE(fx.client.lastError().find("nonsense-design"),
              std::string::npos);

    EXPECT_EQ(fx.client.createSession("counter", "warp-drive"), 0u);
    EXPECT_NE(fx.client.lastError().find("warp-drive"),
              std::string::npos);

    EXPECT_FALSE(fx.client.step(999, 1));
    EXPECT_FALSE(fx.client.poke(999, "en", rtl::BitVec(1, uint64_t{1})));

    // The connection survives every error.
    EXPECT_NE(fx.client.createSession("counter", "interp"), 0u);
}

TEST(Serve, CheckpointRestoreOverTheWire)
{
    ServeFixture fx;
    uint64_t id = fx.client.createSession("sr4", "par", 2);
    ASSERT_NE(id, 0u) << fx.client.lastError();

    ASSERT_TRUE(fx.client.step(id, 150));
    std::string blob;
    ASSERT_TRUE(fx.client.checkpoint(id, &blob));
    ASSERT_FALSE(blob.empty());

    uint64_t cycles = 0;
    ASSERT_TRUE(fx.client.step(id, 80, &cycles));
    EXPECT_EQ(cycles, 230u);
    rtl::BitVec later;
    ASSERT_TRUE(fx.client.peek(id, "tx_total", &later));

    // Rewind and replay: bit-identical continuation.
    ASSERT_TRUE(fx.client.restore(id, blob));
    ASSERT_TRUE(fx.client.step(id, 80, &cycles));
    EXPECT_EQ(cycles, 230u);
    rtl::BitVec replay;
    ASSERT_TRUE(fx.client.peek(id, "tx_total", &replay));
    EXPECT_EQ(replay, later);

    // A blob from a different design is rejected with a clear error,
    // and the session keeps running.
    uint64_t other = fx.client.createSession("counter", "interp");
    ASSERT_NE(other, 0u);
    EXPECT_FALSE(fx.client.restore(other, blob));
    EXPECT_NE(fx.client.lastError().find("different design"),
              std::string::npos);
    EXPECT_TRUE(fx.client.step(other, 5));
}

TEST(Serve, MultiSessionDifferential)
{
    // K concurrent sessions (a pico core and a bitcoin miner among
    // them), each driven by its own client thread in interleaved
    // odd-sized batches through the shared-pool DRR scheduler, must
    // land bit-identical to a sequential single-engine run.
    const struct
    {
        const char *design;
        const char *engine;
        uint64_t total;
        uint64_t batch;
    } plan[] = {
        {"pico", "par", 600, 37},
        {"bitcoin", "par", 400, 53},
        {"pico", "interp", 600, 101},
        {"sr4", "par", 900, 64},
    };
    const size_t K = sizeof(plan) / sizeof(plan[0]);

    ServeFixture fx(/*quantum=*/128);
    std::vector<uint64_t> ids(K);
    for (size_t i = 0; i < K; ++i) {
        ids[i] = fx.client.createSession(plan[i].design,
                                         plan[i].engine, 2);
        ASSERT_NE(ids[i], 0u) << fx.client.lastError();
    }

    std::vector<std::thread> drivers;
    std::vector<bool> ok(K, false);
    for (size_t i = 0; i < K; ++i) {
        drivers.emplace_back([&, i] {
            serve::Client c;
            if (!c.connect(fx.server->port()))
                return;
            uint64_t done = 0;
            while (done < plan[i].total) {
                uint64_t n =
                    std::min(plan[i].batch, plan[i].total - done);
                if (!c.step(ids[i], n))
                    return;
                done += n;
            }
            ok[i] = true;
        });
    }
    for (auto &t : drivers)
        t.join();
    for (size_t i = 0; i < K; ++i)
        ASSERT_TRUE(ok[i]) << "driver " << i << " failed";

    // Compare every register of every session against a sequential
    // reference interpreter run of the same design and cycle count.
    for (size_t i = 0; i < K; ++i) {
        rtl::Netlist nl = resolveTestDesign(plan[i].design);
        rtl::Interpreter ref(nl);
        ref.step(plan[i].total);
        const rtl::Netlist &rn = ref.netlist();
        for (rtl::RegId r = 0; r < rn.numRegisters(); ++r) {
            rtl::BitVec got;
            ASSERT_TRUE(fx.client.peekRegister(
                ids[i], rn.reg(r).name, &got));
            ASSERT_EQ(got, ref.peekRegister(rn.reg(r).name))
                << plan[i].design << " register " << rn.reg(r).name;
        }
    }
}

TEST(Serve, SmallSessionIsNotStarvedByBulkSession)
{
    ServeFixture fx(/*quantum=*/256);
    // The bulk design is deliberately expensive per cycle (an sr ring)
    // so its 100k-cycle request occupies the scheduler for a while;
    // the small session is a one-register counter.
    uint64_t bulk = fx.client.createSession("sr2", "interp");
    uint64_t small = fx.client.createSession("counter", "interp");
    ASSERT_NE(bulk, 0u);
    ASSERT_NE(small, 0u);

    const uint64_t bulkTotal = 100000;
    std::thread bulkDriver([&] {
        serve::Client c;
        ASSERT_TRUE(c.connect(fx.server->port()));
        ASSERT_TRUE(c.step(bulk, bulkTotal));
    });
    // Wait until the bulk request is actually running.
    while (fx.manager->completedCycles(bulk) == 0)
        std::this_thread::yield();

    // 20 small interactive steps complete while the bulk session is
    // still grinding — DRR interleaves them instead of queueing them
    // behind the million-cycle request.
    for (int i = 0; i < 20; ++i)
        ASSERT_TRUE(fx.client.step(small, 10));
    EXPECT_EQ(fx.manager->completedCycles(small), 200u);
    EXPECT_LT(fx.manager->completedCycles(bulk), bulkTotal);

    bulkDriver.join();
    EXPECT_EQ(fx.manager->completedCycles(bulk), bulkTotal);
}

TEST(Serve, StatsAndArtifactWarmStart)
{
    ServeFixture fx;
    // Two par+cgen sessions of the same design: the second must be
    // served from the artifact store (hit or warm start — never a
    // second compile of the same key).
    bool native1 = false, native2 = false;
    uint64_t a = fx.client.createSession("counter", "par", 2, true, 0,
                                         1, &native1);
    ASSERT_NE(a, 0u) << fx.client.lastError();
    uint64_t b = fx.client.createSession("counter", "par", 2, true, 0,
                                         1, &native2);
    ASSERT_NE(b, 0u) << fx.client.lastError();

    std::vector<std::pair<std::string, uint64_t>> stats;
    ASSERT_TRUE(fx.client.stats(&stats));
    auto value = [&](const std::string &name) -> uint64_t {
        for (const auto &[n, v] : stats)
            if (n == name)
                return v;
        return 0;
    };
    EXPECT_EQ(value("sessions_created"), 2u);
    if (native1) {
        // Toolchain available: the second session warm-started.
        EXPECT_TRUE(native2);
        EXPECT_GE(value(serve::kArtifactHits) +
                      value(serve::kArtifactWarmStarts),
                  1u);
        EXPECT_LE(value(serve::kArtifactMisses), 1u);
    }

    // Both sessions still simulate correctly (native or fallback).
    ASSERT_TRUE(fx.client.poke(a, "en", rtl::BitVec(1, uint64_t{1})));
    ASSERT_TRUE(fx.client.step(a, 5));
    rtl::BitVec v;
    ASSERT_TRUE(fx.client.peek(a, "value", &v));
    EXPECT_EQ(v.toUint64(), 5u);
}

TEST(Serve, GangSessionBillsLaneCycles)
{
    ServeFixture fx;
    // A gang session (replicas=4) runs four design instances per
    // scheduled cycle: the host bills serve_lane_cycles_executed at
    // 4x serve_cycles_executed — the aggregate-lane-throughput metric.
    uint64_t id = fx.client.createSession("counter", "interp", 0,
                                          false, 0, 4);
    ASSERT_NE(id, 0u) << fx.client.lastError();

    // Scalar pokes broadcast to every lane; scalar peeks read lane 0.
    ASSERT_TRUE(fx.client.poke(id, "en", rtl::BitVec(1, uint64_t{1})));
    uint64_t cycles = 0;
    ASSERT_TRUE(fx.client.step(id, 25, &cycles));
    EXPECT_EQ(cycles, 25u);
    rtl::BitVec value;
    ASSERT_TRUE(fx.client.peek(id, "value", &value));
    EXPECT_EQ(value.toUint64(), 25u);

    std::vector<std::pair<std::string, uint64_t>> stats;
    ASSERT_TRUE(fx.client.stats(&stats));
    auto value_of = [&](const std::string &name) -> uint64_t {
        for (const auto &[n, v] : stats)
            if (n == name)
                return v;
        return 0;
    };
    EXPECT_EQ(value_of("serve_cycles_executed"), 25u);
    EXPECT_EQ(value_of("serve_lane_cycles_executed"), 100u);

    // Checkpoints round-trip every lane through the wire.
    std::string blob;
    ASSERT_TRUE(fx.client.checkpoint(id, &blob));
    ASSERT_TRUE(fx.client.step(id, 5));
    ASSERT_TRUE(fx.client.restore(id, blob));
    ASSERT_TRUE(fx.client.peek(id, "value", &value));
    EXPECT_EQ(value.toUint64(), 25u);
    EXPECT_TRUE(fx.client.destroySession(id));
}

TEST(Serve, ShutdownReleasesServeForever)
{
    serve::ManagerOptions mopt;
    mopt.poolThreads = 2;
    mopt.resolveDesign = resolveTestDesign;
    serve::SessionManager manager(std::move(mopt));
    serve::Server server(manager, 0);
    std::thread host([&] { server.serveForever(); });

    serve::Client client;
    ASSERT_TRUE(client.connect(server.port()));
    EXPECT_TRUE(client.shutdownServer());
    host.join();
    EXPECT_TRUE(server.shutdownRequested());
}
