/**
 * @file
 * Tests for the reference interpreter: cycle semantics of registers
 * and memories, poke/peek, reset, and memory write-port ordering.
 */

#include <gtest/gtest.h>

#include "rtl/dsl.hh"
#include "rtl/interp.hh"
#include "util/logging.hh"
#include "util/rng.hh"

using namespace parendi;
using namespace parendi::rtl;

TEST(Interp, CounterCounts)
{
    Design d("counter");
    auto cnt = d.reg("cnt", 32, 7);
    d.next(cnt, d.read(cnt) + d.lit(32, 1));
    d.output("v", d.read(cnt));
    Netlist nl = d.finish();
    Interpreter in(nl);
    EXPECT_EQ(in.peek("v").toUint64(), 7u); // initial value visible
    in.step(3);
    EXPECT_EQ(in.peek("v").toUint64(), 10u);
    EXPECT_EQ(in.cycles(), 3u);
    in.reset();
    EXPECT_EQ(in.peek("v").toUint64(), 7u);
    EXPECT_EQ(in.cycles(), 0u);
}

TEST(Interp, RegisterReadsOldValueWithinCycle)
{
    // Two registers swap every cycle: classic test that reads see the
    // beginning-of-cycle value.
    Design d("swap");
    auto a = d.reg("a", 8, 1);
    auto b = d.reg("b", 8, 2);
    d.next(a, d.read(b));
    d.next(b, d.read(a));
    Netlist nl = d.finish();
    Interpreter in(nl);
    in.step();
    EXPECT_EQ(in.peekRegister("a").toUint64(), 2u);
    EXPECT_EQ(in.peekRegister("b").toUint64(), 1u);
    in.step();
    EXPECT_EQ(in.peekRegister("a").toUint64(), 1u);
    EXPECT_EQ(in.peekRegister("b").toUint64(), 2u);
}

TEST(Interp, MemoryWriteVisibleNextCycle)
{
    Design d("m");
    auto cyc = d.reg("cyc", 8, 0);
    d.next(cyc, d.read(cyc) + d.lit(8, 1));
    MemId m = d.memory("ram", 16, 4);
    Wire addr = d.lit(2, 1);
    // Write 0x1234 to ram[1] in cycle 0 only.
    Wire en = d.read(cyc) == d.lit(8, 0);
    d.memWrite(m, addr, d.lit(16, 0x1234), en);
    d.output("val", d.memRead(m, addr));
    Netlist nl = d.finish();
    Interpreter in(nl);
    EXPECT_EQ(in.peek("val").toUint64(), 0u); // before the edge
    in.step();
    EXPECT_EQ(in.peek("val").toUint64(), 0x1234u);
    in.step(3);
    EXPECT_EQ(in.peek("val").toUint64(), 0x1234u);
}

TEST(Interp, WritePortOrdering)
{
    // Two write ports to the same address in the same cycle: the
    // later-declared port wins.
    Design d("ports");
    auto once = d.reg("once", 1, 1);
    d.next(once, d.lit(1, 0));
    MemId m = d.memory("ram", 8, 2);
    Wire en = d.read(once);
    d.memWrite(m, d.lit(1, 0), d.lit(8, 0xaa), en);
    d.memWrite(m, d.lit(1, 0), d.lit(8, 0xbb), en);
    d.output("v", d.memRead(m, d.lit(1, 0)));
    Netlist nl = d.finish();
    Interpreter in(nl);
    in.step();
    EXPECT_EQ(in.peek("v").toUint64(), 0xbbu);
}

TEST(Interp, OutOfRangeMemAccessIsSafe)
{
    Design d("oob");
    auto once = d.reg("once", 1, 1);
    d.next(once, d.lit(1, 0));
    MemId m = d.memory("ram", 8, 3); // depth 3: addresses 0..2
    Wire bad = d.lit(4, 7);
    d.memWrite(m, bad, d.lit(8, 0xff), d.read(once));
    d.output("v", d.memRead(m, bad));
    Netlist nl = d.finish();
    Interpreter in(nl);
    EXPECT_EQ(in.peek("v").toUint64(), 0u); // OOB read -> 0
    in.step(2);                             // OOB write dropped
    EXPECT_EQ(in.peek("v").toUint64(), 0u);
}

TEST(Interp, MemoryInitImage)
{
    Design d("mi");
    auto r = d.reg("r", 1, 0);
    d.next(r, d.read(r));
    MemId m = d.memory("rom", 32, 4);
    d.netlist().initMemory(m, {BitVec(32, 10), BitVec(32, 20),
                               BitVec(32, 30), BitVec(32, 40)});
    d.output("v2", d.memRead(m, d.lit(2, 2)));
    Netlist nl = d.finish();
    Interpreter in(nl);
    EXPECT_EQ(in.peek("v2").toUint64(), 30u);
    EXPECT_EQ(in.peekMemory("rom", 3).toUint64(), 40u);
}

TEST(Interp, PokeErrors)
{
    Design d("p");
    auto r = d.reg("r", 4, 0);
    d.next(r, d.read(r));
    d.input("in", 8);
    d.output("o", d.read(r));
    Netlist nl = d.finish();
    Interpreter in(nl);
    EXPECT_THROW(in.poke("nope", uint64_t{0}), FatalError);
    EXPECT_THROW(in.poke("in", BitVec(4, 0)), FatalError); // width
    EXPECT_THROW(in.peek("nope"), FatalError);
    EXPECT_THROW(in.peekRegister("nope"), FatalError);
    EXPECT_THROW(in.peekMemory("nope", 0), FatalError);
}

TEST(Interp, InputDrivesCombinationalPath)
{
    Design d("io");
    Wire a = d.input("a", 16);
    Wire b = d.input("b", 16);
    auto acc = d.reg("acc", 16, 0);
    d.next(acc, d.read(acc) + (a ^ b));
    d.output("sum", a + b);
    d.output("acc", d.read(acc));
    Netlist nl = d.finish();
    Interpreter in(nl);
    in.poke("a", uint64_t{10});
    in.poke("b", uint64_t{32});
    EXPECT_EQ(in.peek("sum").toUint64(), 42u);
    in.step();
    EXPECT_EQ(in.peek("acc").toUint64(), 10u ^ 32u);
}

TEST(Interp, LongRunIsStable)
{
    // A xorshift register must match the software model over many
    // cycles (catches any state aliasing in the slot layout).
    Design d("xs");
    auto s = d.reg("s", 32, 0xdeadbeef);
    Wire x = d.read(s);
    x = x ^ x.shl(13);
    x = x ^ x.shr(17);
    x = x ^ x.shl(5);
    d.next(s, x);
    Netlist nl = d.finish();
    Interpreter in(nl);
    uint32_t sw = 0xdeadbeef;
    for (int i = 0; i < 1000; ++i) {
        in.step();
        sw = xorshift32(sw);
    }
    EXPECT_EQ(in.peekRegister("s").toUint64(), sw);
}
