/**
 * @file
 * Unit tests for the utility layer: DenseBitset algebra, the RNG,
 * the table printer, logging/error behaviour, and the BspPool
 * barrier-wait observer hooks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "util/bitset.hh"
#include "util/bsp_pool.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace parendi;

TEST(DenseBitset, SetResetTest)
{
    DenseBitset b(130);
    EXPECT_TRUE(b.empty());
    b.set(0);
    b.set(64);
    b.set(129);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(64));
    EXPECT_TRUE(b.test(129));
    EXPECT_FALSE(b.test(1));
    EXPECT_EQ(b.count(), 3u);
    b.reset(64);
    EXPECT_FALSE(b.test(64));
    EXPECT_EQ(b.count(), 2u);
}

TEST(DenseBitset, UnionIntersection)
{
    DenseBitset a(200), b(200);
    for (size_t i = 0; i < 200; i += 3)
        a.set(i);
    for (size_t i = 0; i < 200; i += 5)
        b.set(i);
    size_t expect_inter = 0, expect_union = 0;
    for (size_t i = 0; i < 200; ++i) {
        bool in_a = i % 3 == 0, in_b = i % 5 == 0;
        expect_inter += in_a && in_b;
        expect_union += in_a || in_b;
    }
    EXPECT_EQ(a.intersectCount(b), expect_inter);
    EXPECT_EQ(a.unionCount(b), expect_union);
    DenseBitset u = a;
    u |= b;
    EXPECT_EQ(u.count(), expect_union);
    DenseBitset i2 = a;
    i2 &= b;
    EXPECT_EQ(i2.count(), expect_inter);
}

TEST(DenseBitset, WeightedOperations)
{
    DenseBitset a(64), b(64);
    std::vector<uint64_t> w(64);
    for (size_t i = 0; i < 64; ++i)
        w[i] = i + 1;
    a.set(3);
    a.set(10);
    b.set(10);
    b.set(20);
    EXPECT_EQ(a.totalWeight(w), 4u + 11u);
    EXPECT_EQ(a.intersectWeight(b, w), 11u);
    // The submodular identity used by the partitioner:
    DenseBitset u = a;
    u |= b;
    EXPECT_EQ(u.totalWeight(w),
              a.totalWeight(w) + b.totalWeight(w) -
                  a.intersectWeight(b, w));
}

TEST(DenseBitset, ForEachIsOrdered)
{
    DenseBitset a(128);
    a.set(127);
    a.set(5);
    a.set(63);
    std::vector<size_t> seen;
    a.forEach([&](size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, (std::vector<size_t>{5, 63, 127}));
}

TEST(Rng, DeterministicAndBounded)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(a.below(17), 17u);
        double u = a.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, Xorshift32KnownSequence)
{
    // First values of xorshift32 from seed 1 (Marsaglia).
    uint32_t x = 1;
    x = xorshift32(x);
    EXPECT_EQ(x, 270369u);
    x = xorshift32(x);
    EXPECT_EQ(x, 67634689u);
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    Table t({"name", "value"});
    t.row().cell("a").cell(uint64_t{1});
    t.row().cell("bee").cell(2.5, 1);
    EXPECT_EQ(t.rowCount(), 2u);
    std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("bee"), std::string::npos);
    EXPECT_NE(s.find("2.5"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, HandlesRaggedRows)
{
    Table t({"a", "b", "c"});
    t.row().cell("only");
    EXPECT_NO_THROW(t.str());
}

TEST(Logging, FatalThrowsPanicless)
{
    EXPECT_THROW(fatal("test error %d", 42), FatalError);
    try {
        fatal("code %d", 7);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("code 7"),
                  std::string::npos);
    }
}

TEST(Logging, QuietSuppressesInform)
{
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    inform("this should not print");
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
}

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("%s-%03d", "x", 7), "x-007");
}

namespace {

struct CountingObserver : util::BspWaitObserver
{
    static constexpr uint32_t kMaxWorkers = 16;
    std::atomic<uint64_t> begins[kMaxWorkers] = {};
    std::atomic<uint64_t> ends[kMaxWorkers] = {};

    void
    epochWaitBegin(uint32_t worker) override
    {
        begins[worker].fetch_add(1, std::memory_order_relaxed);
    }

    void
    epochWaitEnd(uint32_t worker) override
    {
        ends[worker].fetch_add(1, std::memory_order_relaxed);
    }
};

} // namespace

TEST(BspPool, WaitObserverFiresOncePerEpochPerWorker)
{
    constexpr uint32_t kWorkers = 4;
    CountingObserver obs;
    {
        util::BspPool pool(kWorkers);
        pool.setWaitObserver(&obs);
        // Warm-up epoch: workers may have started waiting for it
        // before the observer was installed, so whether it is counted
        // for workers 1..N-1 is indeterminate. Every later wait begins
        // with the observer in place.
        pool.run([](uint32_t) {});
        uint64_t base[kWorkers];
        for (uint32_t w = 0; w < kWorkers; ++w)
            base[w] = obs.ends[w].load();

        constexpr uint64_t kRuns = 10;
        for (uint64_t i = 0; i < kRuns; ++i)
            pool.run([](uint32_t) {});

        // Worker 0 (the caller) completes its arrival wait inside each
        // run(); workers 1..N-1 complete their release wait for epoch
        // k during run k. Either way: exactly one pair per epoch.
        for (uint32_t w = 0; w < kWorkers; ++w)
            EXPECT_EQ(obs.ends[w].load() - base[w], kRuns)
                << "worker " << w;
    }
    // Destruction releases one final stop epoch: one extra pair for
    // each spawned worker, none for the caller. Begin/End must balance
    // once the pool is gone.
    for (uint32_t w = 0; w < kWorkers; ++w)
        EXPECT_EQ(obs.begins[w].load(), obs.ends[w].load())
            << "worker " << w;
}

TEST(BspPool, WaitObserverFastPathStillPairs)
{
    // threads <= 1: run() degenerates to a plain call with no barrier,
    // so no hooks fire — but the call must still work with an
    // observer installed.
    CountingObserver obs;
    util::BspPool pool(1);
    pool.setWaitObserver(&obs);
    int calls = 0;
    pool.run([&](uint32_t w) {
        EXPECT_EQ(w, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(obs.begins[0].load(), 0u);
    EXPECT_EQ(obs.ends[0].load(), 0u);
}

TEST(BspPool, ForEachReportsWorkerAndCoversRange)
{
    constexpr uint32_t kWorkers = 3;
    util::BspPool pool(kWorkers);
    constexpr size_t kN = 20;
    std::atomic<uint32_t> covered[kN] = {};
    std::atomic<uint32_t> bad_worker{0};
    pool.forEach(kN, [&](uint32_t worker, size_t begin, size_t end) {
        if (worker >= kWorkers)
            bad_worker.fetch_add(1);
        for (size_t i = begin; i < end; ++i)
            covered[i].fetch_add(1);
    });
    EXPECT_EQ(bad_worker.load(), 0u);
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(covered[i].load(), 1u) << "index " << i;
}
