/**
 * @file
 * Unit tests for the utility layer: DenseBitset algebra, the RNG,
 * the table printer, and logging/error behaviour.
 */

#include <gtest/gtest.h>

#include "util/bitset.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace parendi;

TEST(DenseBitset, SetResetTest)
{
    DenseBitset b(130);
    EXPECT_TRUE(b.empty());
    b.set(0);
    b.set(64);
    b.set(129);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(64));
    EXPECT_TRUE(b.test(129));
    EXPECT_FALSE(b.test(1));
    EXPECT_EQ(b.count(), 3u);
    b.reset(64);
    EXPECT_FALSE(b.test(64));
    EXPECT_EQ(b.count(), 2u);
}

TEST(DenseBitset, UnionIntersection)
{
    DenseBitset a(200), b(200);
    for (size_t i = 0; i < 200; i += 3)
        a.set(i);
    for (size_t i = 0; i < 200; i += 5)
        b.set(i);
    size_t expect_inter = 0, expect_union = 0;
    for (size_t i = 0; i < 200; ++i) {
        bool in_a = i % 3 == 0, in_b = i % 5 == 0;
        expect_inter += in_a && in_b;
        expect_union += in_a || in_b;
    }
    EXPECT_EQ(a.intersectCount(b), expect_inter);
    EXPECT_EQ(a.unionCount(b), expect_union);
    DenseBitset u = a;
    u |= b;
    EXPECT_EQ(u.count(), expect_union);
    DenseBitset i2 = a;
    i2 &= b;
    EXPECT_EQ(i2.count(), expect_inter);
}

TEST(DenseBitset, WeightedOperations)
{
    DenseBitset a(64), b(64);
    std::vector<uint64_t> w(64);
    for (size_t i = 0; i < 64; ++i)
        w[i] = i + 1;
    a.set(3);
    a.set(10);
    b.set(10);
    b.set(20);
    EXPECT_EQ(a.totalWeight(w), 4u + 11u);
    EXPECT_EQ(a.intersectWeight(b, w), 11u);
    // The submodular identity used by the partitioner:
    DenseBitset u = a;
    u |= b;
    EXPECT_EQ(u.totalWeight(w),
              a.totalWeight(w) + b.totalWeight(w) -
                  a.intersectWeight(b, w));
}

TEST(DenseBitset, ForEachIsOrdered)
{
    DenseBitset a(128);
    a.set(127);
    a.set(5);
    a.set(63);
    std::vector<size_t> seen;
    a.forEach([&](size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, (std::vector<size_t>{5, 63, 127}));
}

TEST(Rng, DeterministicAndBounded)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(a.below(17), 17u);
        double u = a.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, Xorshift32KnownSequence)
{
    // First values of xorshift32 from seed 1 (Marsaglia).
    uint32_t x = 1;
    x = xorshift32(x);
    EXPECT_EQ(x, 270369u);
    x = xorshift32(x);
    EXPECT_EQ(x, 67634689u);
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    Table t({"name", "value"});
    t.row().cell("a").cell(uint64_t{1});
    t.row().cell("bee").cell(2.5, 1);
    EXPECT_EQ(t.rowCount(), 2u);
    std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("bee"), std::string::npos);
    EXPECT_NE(s.find("2.5"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, HandlesRaggedRows)
{
    Table t({"a", "b", "c"});
    t.row().cell("only");
    EXPECT_NO_THROW(t.str());
}

TEST(Logging, FatalThrowsPanicless)
{
    EXPECT_THROW(fatal("test error %d", 42), FatalError);
    try {
        fatal("code %d", 7);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("code 7"),
                  std::string::npos);
    }
}

TEST(Logging, QuietSuppressesInform)
{
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    inform("this should not print");
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
}

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("%s-%03d", "x", 7), "x-007");
}
