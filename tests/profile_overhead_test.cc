/**
 * @file
 * Profiling overhead guard: the whole point of sampled timestamping is
 * that leaving --profile on costs almost nothing in steady state. This
 * test runs the pico core on the reference interpreter with profiling
 * off and with `--profile-every 64`, takes the minimum of several
 * repeated wall-time measurements of each (the minimum is the
 * noise-robust statistic on a shared, single-core CI box), and asserts
 * the profiled run is within 5% of the unprofiled one.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

#include "designs/cores.hh"
#include "obs/profiler.hh"
#include "rtl/interp.hh"

using namespace parendi;

namespace {

/** Best-of-N wall seconds for stepping @p sim by @p cycles. */
double
minStepSeconds(rtl::Interpreter &sim, uint64_t cycles, int reps)
{
    using clock = std::chrono::steady_clock;
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        auto t0 = clock::now();
        sim.step(cycles);
        double secs =
            std::chrono::duration<double>(clock::now() - t0).count();
        best = std::min(best, secs);
    }
    return best;
}

} // namespace

TEST(ProfileOverhead, SampledProfilingStaysUnderFivePercent)
{
    constexpr uint64_t kCycles = 3000;
    constexpr int kReps = 9;

    rtl::Interpreter plain(
        designs::makePico(designs::defaultCoreConfig()));
    rtl::Interpreter profiled(
        designs::makePico(designs::defaultCoreConfig()));
    obs::ProfileOptions popt;
    popt.sampleEvery = 64;
    ASSERT_TRUE(profiled.enableProfiling(popt));

    // Warm both engines (first steps touch cold state; the profiled
    // engine also calibrates the tick clock on attach).
    plain.step(kCycles);
    profiled.step(kCycles);

    // Interleave the measurements so slow phases of a shared host hit
    // both configurations alike.
    double base = 1e30, prof = 1e30;
    for (int r = 0; r < kReps; ++r) {
        base = std::min(base, minStepSeconds(plain, kCycles, 1));
        prof = std::min(prof, minStepSeconds(profiled, kCycles, 1));
    }

    ASSERT_GT(base, 0.0);
    double overhead = prof / base - 1.0;
    RecordProperty("overhead_percent",
                   static_cast<int>(overhead * 100));
    EXPECT_LT(overhead, 0.05)
        << "profiled " << prof << "s vs unprofiled " << base
        << "s over " << kCycles << " cycles";

    // The profiler really was live: every cycle counted, one in 64
    // sampled.
    const obs::SuperstepProfiler &p = *profiled.profiler();
    EXPECT_EQ(p.cyclesSeen(), kCycles * (kReps + 1));
    EXPECT_EQ(p.cyclesSampled(), kCycles * (kReps + 1) / 64 + 1);
}
