/**
 * @file
 * Unit tests for the Netlist IR: builder width rules, structural
 * checks, analyses (topological order, loop detection, cones,
 * metrics).
 */

#include <gtest/gtest.h>

#include "rtl/analysis.hh"
#include "rtl/dsl.hh"
#include "util/logging.hh"

using namespace parendi;
using namespace parendi::rtl;

TEST(Netlist, WidthRulesEnforced)
{
    Netlist nl("t");
    NodeId a = nl.addConst(8, 1);
    NodeId b = nl.addConst(16, 1);
    EXPECT_THROW(nl.addBinary(Op::Add, a, b), FatalError);
    EXPECT_THROW(nl.addBinary(Op::Eq, a, b), FatalError);
    NodeId sel = nl.addConst(2, 1);
    NodeId c8 = nl.addConst(8, 2);
    EXPECT_THROW(nl.addMux(sel, a, c8), FatalError);
    EXPECT_THROW(nl.addSlice(a, 4, 8), FatalError);
    EXPECT_THROW(nl.addExtend(Op::ZExt, a, 4), FatalError);
    // Shifts allow mismatched operand widths.
    EXPECT_NO_THROW(nl.addBinary(Op::Shl, a, b));
}

TEST(Netlist, RegisterRules)
{
    Netlist nl("t");
    RegId r = nl.addRegister("r", 8, 0x5);
    NodeId v = nl.addConst(8, 1);
    nl.setRegisterNext(r, v);
    EXPECT_THROW(nl.setRegisterNext(r, v), FatalError); // double drive
    NodeId wide = nl.addConst(16, 1);
    RegId r2 = nl.addRegister("r2", 8, 0);
    EXPECT_THROW(nl.setRegisterNext(r2, wide), FatalError);
}

TEST(Netlist, UndrivenRegisterFailsCheck)
{
    Netlist nl("t");
    nl.addRegister("r", 8, 0);
    EXPECT_THROW(nl.check(), FatalError);
}

TEST(Netlist, RegReadIsUnique)
{
    Netlist nl("t");
    RegId r = nl.addRegister("r", 8, 0);
    EXPECT_EQ(nl.readRegister(r), nl.readRegister(r));
}

TEST(Netlist, MemoryRules)
{
    Netlist nl("t");
    MemId m = nl.addMemory("m", 32, 16);
    NodeId addr = nl.addConst(4, 3);
    NodeId data8 = nl.addConst(8, 1);
    NodeId en = nl.addConst(1, 1);
    EXPECT_THROW(nl.writeMemory(m, addr, data8, en), FatalError);
    NodeId data = nl.addConst(32, 1);
    NodeId en2 = nl.addConst(2, 1);
    EXPECT_THROW(nl.writeMemory(m, addr, data, en2), FatalError);
    EXPECT_NO_THROW(nl.writeMemory(m, addr, data, en));
    EXPECT_EQ(nl.mem(m).writePorts.size(), 1u);
    EXPECT_EQ(nl.mem(m).sizeBytes(), 16u * 8);
    EXPECT_THROW(nl.addMemory("z", 8, 0), FatalError);
}

TEST(Netlist, FindByName)
{
    Design d("t");
    d.reg("alpha", 8);
    auto r = d.reg("beta", 8);
    d.next(r, d.lit(8, 0));
    d.netlist().setRegisterNext(d.netlist().findRegister("alpha"),
                                d.lit(8, 1).id());
    d.input("in0", 4);
    d.output("out0", d.lit(9, 0));
    d.memory("m0", 8, 4);
    const Netlist &nl = d.netlist();
    EXPECT_EQ(nl.findRegister("beta"), 1u);
    EXPECT_EQ(nl.findRegister("nope"), nl.numRegisters());
    EXPECT_EQ(nl.findInput("in0"), 0u);
    EXPECT_EQ(nl.findOutput("out0"), 0u);
    EXPECT_EQ(nl.findMemory("m0"), 0u);
}

TEST(Analysis, TopoOrderRespectsOperands)
{
    Design d("t");
    auto r = d.reg("r", 8);
    Wire x = d.read(r);
    d.next(r, (x + d.lit(8, 1)) ^ x.shl(2));
    Netlist nl = d.finish();
    std::vector<NodeId> order = topoOrder(nl);
    EXPECT_EQ(order.size(), nl.numNodes());
    std::vector<size_t> pos(nl.numNodes());
    for (size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = i;
    for (NodeId id = 0; id < nl.numNodes(); ++id)
        for (int i = 0; i < opArity(nl.node(id).op); ++i)
            EXPECT_LT(pos[nl.node(id).operands[i]], pos[id]);
}

TEST(Analysis, ConstructionOrderIsTopological)
{
    // The builder API cannot reference a node before it exists, a
    // property the tile-program builder relies on.
    Design d("t");
    auto r = d.reg("r", 16);
    d.next(r, d.read(r) * d.lit(16, 3) + d.lit(16, 7));
    Netlist nl = d.finish();
    for (NodeId id = 0; id < nl.numNodes(); ++id)
        for (int i = 0; i < opArity(nl.node(id).op); ++i)
            EXPECT_LT(nl.node(id).operands[i], id);
}

TEST(Analysis, BackwardConeStopsAtRegisters)
{
    Design d("t");
    auto a = d.reg("a", 8);
    auto b = d.reg("b", 8);
    Wire av = d.read(a), bv = d.read(b);
    d.next(a, av + d.lit(8, 1));      // fiber A: small
    d.next(b, (av ^ bv) + d.lit(8, 3)); // fiber B: reads both
    Netlist nl = d.finish();
    NodeId sink_b = nl.reg(1).next;
    std::vector<NodeId> cone = backwardCone(nl, sink_b);
    // The cone must contain the RegReads but not fiber A's adder.
    NodeId a_next_val = nl.node(nl.reg(0).next).operands[0];
    EXPECT_EQ(std::count(cone.begin(), cone.end(), a_next_val), 0);
    EXPECT_EQ(std::count(cone.begin(), cone.end(), nl.reg(0).read), 1);
    EXPECT_EQ(std::count(cone.begin(), cone.end(), nl.reg(1).read), 1);
}

TEST(Analysis, Metrics)
{
    Design d("t");
    auto r = d.reg("r", 12);
    d.next(r, d.read(r) + d.lit(12, 1));
    d.memory("m", 32, 8);
    d.output("o", d.read(r));
    Netlist nl = d.netlist();
    NetlistMetrics m = computeMetrics(nl);
    EXPECT_EQ(m.registers, 1u);
    EXPECT_EQ(m.regBits, 12u);
    EXPECT_EQ(m.memories, 1u);
    EXPECT_EQ(m.memBytes, 8u * 8);
    EXPECT_EQ(m.sinks, 2u);
    EXPECT_FALSE(describe(nl).empty());
}

TEST(Analysis, NoLoopInWellFormedDesign)
{
    Design d("t");
    auto r = d.reg("r", 8);
    d.next(r, d.read(r) + d.lit(8, 1));
    EXPECT_FALSE(hasCombinationalLoop(d.netlist()));
}
