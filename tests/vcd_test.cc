/**
 * @file
 * Tests for the VCD waveform writer: header structure, delta
 * encoding, identifier generation, and the interpreter tracer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "rtl/dsl.hh"
#include "rtl/vcd.hh"
#include "util/logging.hh"

using namespace parendi;
using namespace parendi::rtl;

TEST(Vcd, HeaderDeclaresSignals)
{
    std::ostringstream out;
    VcdWriter w(out);
    w.addSignal("clk_counter", 8);
    w.addSignal("flag", 1);
    w.writeHeader("mydesign");
    std::string s = out.str();
    EXPECT_NE(s.find("$timescale"), std::string::npos);
    EXPECT_NE(s.find("$scope module mydesign"), std::string::npos);
    EXPECT_NE(s.find("$var wire 8 ! clk_counter [7:0] $end"),
              std::string::npos);
    EXPECT_NE(s.find("$var wire 1 \" flag $end"), std::string::npos);
    EXPECT_NE(s.find("$enddefinitions"), std::string::npos);
}

TEST(Vcd, DeltasOnly)
{
    std::ostringstream out;
    VcdWriter w(out);
    w.addSignal("a", 4);
    w.addSignal("b", 1);
    w.writeHeader("t");
    size_t header_len = out.str().size();
    w.sample(0, {BitVec(4, 5), BitVec(1, 0)});
    w.sample(1, {BitVec(4, 5), BitVec(1, 1)}); // only b changes
    w.sample(2, {BitVec(4, 5), BitVec(1, 1)}); // nothing changes
    std::string body = out.str().substr(header_len);
    EXPECT_NE(body.find("#0\nb101 !\n0\""), std::string::npos);
    EXPECT_NE(body.find("#1\n1\""), std::string::npos);
    // Timestep 2 emitted nothing at all.
    EXPECT_EQ(body.find("#2"), std::string::npos);
    // 'a' dumped exactly once.
    size_t first = body.find("b101 !");
    EXPECT_EQ(body.find("b101 !", first + 1), std::string::npos);
}

TEST(Vcd, ErrorsOnMisuse)
{
    std::ostringstream out;
    VcdWriter w(out);
    w.addSignal("a", 4);
    EXPECT_THROW(w.sample(0, {BitVec(4, 0)}), FatalError);
    w.writeHeader("t");
    EXPECT_THROW(w.addSignal("late", 1), FatalError);
    EXPECT_THROW(w.sample(0, {}), FatalError);
}

TEST(Vcd, ManySignalIdsAreUnique)
{
    std::ostringstream out;
    VcdWriter w(out);
    for (int i = 0; i < 200; ++i)
        w.addSignal("s" + std::to_string(i), 1);
    w.writeHeader("wide");
    // All 200 single-bit dumps must be distinguishable: dump all 1s
    // and count lines.
    std::vector<BitVec> vals(200, BitVec(1, 1));
    size_t before = out.str().size();
    w.sample(0, vals);
    std::string body = out.str().substr(before);
    size_t lines = std::count(body.begin(), body.end(), '\n');
    EXPECT_EQ(lines, 201u); // #0 plus one line per signal
}

TEST(Vcd, TracerFollowsInterpreter)
{
    Design d("trace");
    auto cnt = d.reg("cnt", 4, 0);
    d.next(cnt, d.read(cnt) + d.lit(4, 1));
    d.output("v", d.read(cnt));
    Interpreter sim(d.finish());

    std::ostringstream out;
    InterpreterTracer tracer(sim, out);
    tracer.step(3);
    std::string s = out.str();
    // Signals cnt and v both declared.
    EXPECT_NE(s.find("cnt"), std::string::npos);
    EXPECT_NE(s.find("$var wire 4"), std::string::npos);
    // Time 0 (initial) through 3 present.
    EXPECT_NE(s.find("#0"), std::string::npos);
    EXPECT_NE(s.find("#1"), std::string::npos);
    EXPECT_NE(s.find("#3"), std::string::npos);
    // Counter value 3 = b11 dumped at the end.
    EXPECT_NE(s.find("b11"), std::string::npos);
    EXPECT_EQ(sim.cycles(), 3u);
}
