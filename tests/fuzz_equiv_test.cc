/**
 * @file
 * Fuzzing the whole stack: random netlists are compiled for random
 * machine shapes and must simulate bit-identically to the reference
 * interpreter; they must also survive a PNL round trip and behave
 * identically afterwards.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "frontend/pnl.hh"
#include "random_netlist.hh"
#include "rtl/interp.hh"
#include "util/rng.hh"

using namespace parendi;
using parendi::testing::randomNetlist;
using rtl::Interpreter;
using rtl::Netlist;

namespace {

void
compareAllState(core::Simulation &sim, Interpreter &ref)
{
    const Netlist &nl = ref.netlist();
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r) {
        const std::string &name = nl.reg(r).name;
        ASSERT_EQ(sim.machine().peekRegister(name),
                  ref.peekRegister(name)) << name;
    }
    for (rtl::PortId o = 0; o < nl.numOutputs(); ++o) {
        const std::string &name = nl.output(o).name;
        ASSERT_EQ(sim.machine().peek(name), ref.peek(name)) << name;
    }
    for (rtl::MemId m = 0; m < nl.numMemories(); ++m) {
        const rtl::Memory &mem = nl.mem(m);
        for (uint32_t e = 0; e < mem.depth; ++e)
            ASSERT_EQ(sim.machine().peekMemory(mem.name, e),
                      ref.peekMemory(mem.name, e))
                << mem.name << "[" << e << "]";
    }
}

} // namespace

class FuzzEquiv : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzEquiv, MachineMatchesInterpreter)
{
    uint64_t seed = GetParam();
    Netlist nl = randomNetlist(seed);
    Interpreter ref(nl);

    Rng rng(seed ^ 0x51ed);
    core::CompilerOptions opt;
    opt.chips = 1u + static_cast<uint32_t>(rng.below(4));
    opt.tilesPerChip = 2u + static_cast<uint32_t>(rng.below(32));
    auto sim = core::compile(std::move(nl), opt);

    for (int c = 0; c < 30; ++c) {
        sim->step();
        ref.step();
    }
    compareAllState(*sim, ref);
}

TEST_P(FuzzEquiv, SurvivesPnlRoundTrip)
{
    uint64_t seed = GetParam();
    Netlist nl = randomNetlist(seed);
    Netlist reparsed = frontend::parsePnl(frontend::writePnl(nl));
    Interpreter a(std::move(nl));
    Interpreter b(std::move(reparsed));
    a.step(25);
    b.step(25);
    const Netlist &na = a.netlist();
    for (rtl::RegId r = 0; r < na.numRegisters(); ++r)
        ASSERT_EQ(a.peekRegister(na.reg(r).name),
                  b.peekRegister(na.reg(r).name));
}

TEST_P(FuzzEquiv, HypergraphStrategyMatches)
{
    uint64_t seed = GetParam();
    if (seed % 3) // subsample: the H strategy is the slow path
        return;
    Netlist nl = randomNetlist(seed);
    Interpreter ref(nl);
    core::CompilerOptions opt;
    opt.single = partition::SingleChipStrategy::Hypergraph;
    opt.tilesPerChip = 16;
    auto sim = core::compile(std::move(nl), opt);
    sim->step(20);
    ref.step(20);
    compareAllState(*sim, ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquiv,
                         ::testing::Range<uint64_t>(1, 25));

TEST(FuzzEquiv, LargerCircuitsAndLongerRuns)
{
    parendi::testing::RandomNetlistConfig cfg;
    cfg.registers = 40;
    cfg.combNodes = 500;
    cfg.memories = 4;
    for (uint64_t seed : {101ull, 202ull}) {
        Netlist nl = randomNetlist(seed, cfg);
        Interpreter ref(nl);
        core::CompilerOptions opt;
        opt.chips = 2;
        opt.tilesPerChip = 24;
        auto sim = core::compile(std::move(nl), opt);
        sim->step(200);
        ref.step(200);
        compareAllState(*sim, ref);
    }
}
