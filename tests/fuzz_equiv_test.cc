/**
 * @file
 * Fuzzing the whole stack: random netlists are compiled for random
 * machine shapes and must simulate bit-identically to the reference
 * interpreter; they must also survive a PNL round trip and behave
 * identically afterwards.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "frontend/pnl.hh"
#include "random_netlist.hh"
#include "rtl/event.hh"
#include "rtl/interp.hh"
#include "util/rng.hh"

using namespace parendi;
using parendi::testing::randomNetlist;
using rtl::Interpreter;
using rtl::Netlist;

namespace {

void
compareAllState(core::Simulation &sim, Interpreter &ref)
{
    const Netlist &nl = ref.netlist();
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r) {
        const std::string &name = nl.reg(r).name;
        ASSERT_EQ(sim.machine().peekRegister(name),
                  ref.peekRegister(name)) << name;
    }
    for (rtl::PortId o = 0; o < nl.numOutputs(); ++o) {
        const std::string &name = nl.output(o).name;
        ASSERT_EQ(sim.machine().peek(name), ref.peek(name)) << name;
    }
    for (rtl::MemId m = 0; m < nl.numMemories(); ++m) {
        const rtl::Memory &mem = nl.mem(m);
        for (uint32_t e = 0; e < mem.depth; ++e)
            ASSERT_EQ(sim.machine().peekMemory(mem.name, e),
                      ref.peekMemory(mem.name, e))
                << mem.name << "[" << e << "]";
    }
}

void
compareInterpreters(Interpreter &a, Interpreter &b, const char *what)
{
    const Netlist &nl = a.netlist();
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r) {
        const std::string &name = nl.reg(r).name;
        ASSERT_EQ(a.peekRegister(name), b.peekRegister(name))
            << what << ": reg " << name;
    }
    for (rtl::PortId o = 0; o < nl.numOutputs(); ++o) {
        const std::string &name = nl.output(o).name;
        ASSERT_EQ(a.peek(name), b.peek(name))
            << what << ": output " << name;
    }
    for (rtl::MemId m = 0; m < nl.numMemories(); ++m) {
        const rtl::Memory &mem = nl.mem(m);
        for (uint32_t e = 0; e < mem.depth; ++e)
            ASSERT_EQ(a.peekMemory(mem.name, e),
                      b.peekMemory(mem.name, e))
                << what << ": " << mem.name << "[" << e << "]";
    }
}

/**
 * Three-way differential for the lowering pass: the fused interpreter,
 * the specialized-but-unfused interpreter, and the fully generic one
 * must agree bit-for-bit, and the event-driven engine (a second,
 * independently derived evaluator running the generic program) must
 * agree on registers and outputs.
 */
void
checkLoweringEquivalence(const Netlist &nl, int cycles, int checkEvery)
{
    Interpreter fused(nl);                                // default: full
    rtl::LowerOptions specOnly;
    specOnly.fuse = false;
    Interpreter specialized(nl, specOnly);
    Interpreter generic(nl, rtl::LowerOptions::none());
    rtl::EventInterpreter event(nl);

    ASSERT_TRUE(fused.program().lowered);
    ASSERT_FALSE(generic.program().lowered);

    for (int c = 0; c < cycles; ++c) {
        fused.step();
        specialized.step();
        generic.step();
        event.step();
        if (c % checkEvery != checkEvery - 1 && c != cycles - 1)
            continue;
        compareInterpreters(fused, generic, "fused vs generic");
        compareInterpreters(fused, specialized, "fused vs specialized");
        for (rtl::RegId r = 0; r < nl.numRegisters(); ++r) {
            const std::string &name = nl.reg(r).name;
            ASSERT_EQ(fused.peekRegister(name), event.peekRegister(name))
                << "event witness: reg " << name << " cycle " << c;
        }
        for (rtl::PortId o = 0; o < nl.numOutputs(); ++o) {
            const std::string &name = nl.output(o).name;
            ASSERT_EQ(fused.peek(name), event.peek(name))
                << "event witness: output " << name << " cycle " << c;
        }
    }
}

} // namespace

class FuzzEquiv : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzEquiv, MachineMatchesInterpreter)
{
    uint64_t seed = GetParam();
    Netlist nl = randomNetlist(seed);
    Interpreter ref(nl);

    Rng rng(seed ^ 0x51ed);
    core::CompilerOptions opt;
    opt.chips = 1u + static_cast<uint32_t>(rng.below(4));
    opt.tilesPerChip = 2u + static_cast<uint32_t>(rng.below(32));
    auto sim = core::compile(std::move(nl), opt);

    for (int c = 0; c < 30; ++c) {
        sim->step();
        ref.step();
    }
    compareAllState(*sim, ref);
}

TEST_P(FuzzEquiv, SurvivesPnlRoundTrip)
{
    uint64_t seed = GetParam();
    Netlist nl = randomNetlist(seed);
    Netlist reparsed = frontend::parsePnl(frontend::writePnl(nl));
    Interpreter a(std::move(nl));
    Interpreter b(std::move(reparsed));
    a.step(25);
    b.step(25);
    const Netlist &na = a.netlist();
    for (rtl::RegId r = 0; r < na.numRegisters(); ++r)
        ASSERT_EQ(a.peekRegister(na.reg(r).name),
                  b.peekRegister(na.reg(r).name));
}

TEST_P(FuzzEquiv, HypergraphStrategyMatches)
{
    uint64_t seed = GetParam();
    if (seed % 3) // subsample: the H strategy is the slow path
        return;
    Netlist nl = randomNetlist(seed);
    Interpreter ref(nl);
    core::CompilerOptions opt;
    opt.single = partition::SingleChipStrategy::Hypergraph;
    opt.tilesPerChip = 16;
    auto sim = core::compile(std::move(nl), opt);
    sim->step(20);
    ref.step(20);
    compareAllState(*sim, ref);
}

TEST_P(FuzzEquiv, LoweredMatchesGenericAndEventWitness)
{
    uint64_t seed = GetParam();
    checkLoweringEquivalence(randomNetlist(seed), 40, 8);
}

TEST_P(FuzzEquiv, LoweredMatchesOnWideAndMemoryHeavyCircuits)
{
    uint64_t seed = GetParam();
    if (seed % 2) // subsample: these circuits are bigger
        return;
    parendi::testing::RandomNetlistConfig cfg;
    cfg.maxWidth = 192;   // bias toward multi-word (>64-bit) values
    cfg.memories = 4;     // more colliding write ports
    cfg.registers = 16;
    cfg.combNodes = 160;
    checkLoweringEquivalence(randomNetlist(seed ^ 0x51deull, cfg), 30, 10);
}

TEST_P(FuzzEquiv, MachineMatchesUnfusedInterpreter)
{
    // The partitioned machine lowers its tile programs by default;
    // check it against the *generic* interpreter so a bug common to
    // all lowered programs cannot mask itself.
    uint64_t seed = GetParam();
    if (seed % 3 != 1) // subsample: compile is the slow part
        return;
    Netlist nl = randomNetlist(seed);
    Interpreter ref(nl, rtl::LowerOptions::none());
    core::CompilerOptions opt;
    opt.tilesPerChip = 12;
    auto sim = core::compile(std::move(nl), opt);
    sim->step(25);
    ref.step(25);
    compareAllState(*sim, ref);
}

TEST_P(FuzzEquiv, MachineUnloweredMatchesFusedInterpreter)
{
    // And the transpose: an unlowered machine against the fused
    // interpreter.
    uint64_t seed = GetParam();
    if (seed % 3 != 2) // subsample
        return;
    Netlist nl = randomNetlist(seed);
    Interpreter ref(nl);
    core::CompilerOptions opt;
    opt.tilesPerChip = 12;
    opt.lower = rtl::LowerOptions::none();
    auto sim = core::compile(std::move(nl), opt);
    sim->step(25);
    ref.step(25);
    compareAllState(*sim, ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquiv,
                         ::testing::Range<uint64_t>(1, 25));

TEST(FuzzEquiv, LargerCircuitsAndLongerRuns)
{
    parendi::testing::RandomNetlistConfig cfg;
    cfg.registers = 40;
    cfg.combNodes = 500;
    cfg.memories = 4;
    for (uint64_t seed : {101ull, 202ull}) {
        Netlist nl = randomNetlist(seed, cfg);
        Interpreter ref(nl);
        core::CompilerOptions opt;
        opt.chips = 2;
        opt.tilesPerChip = 24;
        auto sim = core::compile(std::move(nl), opt);
        sim->step(200);
        ref.step(200);
        compareAllState(*sim, ref);
    }
}
