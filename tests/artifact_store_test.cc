/**
 * @file
 * serve::ArtifactStore unit tests: hit/miss/warm-start accounting,
 * LRU eviction order under a byte budget, single-flight compilation
 * under concurrent misses, and recovery from failed builds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <unistd.h>

#include "obs/counters.hh"
#include "serve/artifact.hh"

using namespace parendi;
using serve::ArtifactStore;

namespace fs = std::filesystem;

namespace {

/** A fresh store directory per test, removed on destruction. */
struct TempDir
{
    TempDir()
    {
        path = (fs::temp_directory_path() /
                ("parendi-artifact-test-" +
                 std::to_string(::getpid()) + "-" +
                 std::to_string(counter++)))
                   .string();
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    static inline int counter = 0;
    std::string path;
};

/** A builder that writes @p bytes of filler and counts invocations. */
auto
filler(size_t bytes, std::atomic<int> *builds = nullptr)
{
    return [bytes, builds](const std::string &objectPath) {
        if (builds)
            builds->fetch_add(1);
        std::ofstream f(objectPath, std::ios::binary);
        std::string blob(bytes, 'x');
        f.write(blob.data(), static_cast<std::streamsize>(blob.size()));
        return f.good();
    };
}

uint64_t
counterValue(obs::Counters &counters, const char *name)
{
    return counters.get(name).value();
}

} // namespace

TEST(ArtifactStore, MissThenHit)
{
    TempDir dir;
    obs::Counters counters;
    ArtifactStore::Options opt;
    opt.dir = dir.path;
    ArtifactStore store(opt, counters);

    std::atomic<int> builds{0};
    std::string p1 = store.acquire(42, filler(100, &builds));
    ASSERT_FALSE(p1.empty());
    EXPECT_TRUE(fs::exists(p1));
    EXPECT_EQ(builds.load(), 1);
    EXPECT_EQ(counterValue(counters, serve::kArtifactMisses), 1u);
    EXPECT_EQ(counterValue(counters, serve::kArtifactHits), 0u);

    // Second acquire of the same key: no build, one hit.
    std::string p2 = store.acquire(42, filler(100, &builds));
    EXPECT_EQ(p2, p1);
    EXPECT_EQ(builds.load(), 1);
    EXPECT_EQ(counterValue(counters, serve::kArtifactHits), 1u);
    EXPECT_EQ(store.bytesResident(), 100u);
}

TEST(ArtifactStore, WarmStartFromDisk)
{
    TempDir dir;
    ArtifactStore::Options opt;
    opt.dir = dir.path;
    {
        obs::Counters counters;
        ArtifactStore first(opt, counters);
        ASSERT_FALSE(first.acquire(7, filler(64)).empty());
    }

    // A new store over the same directory adopts the on-disk object
    // without invoking the builder — the cross-process warm start.
    obs::Counters counters;
    ArtifactStore second(opt, counters);
    std::atomic<int> builds{0};
    std::string p = second.acquire(7, filler(64, &builds));
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(builds.load(), 0);
    EXPECT_EQ(counterValue(counters, serve::kArtifactWarmStarts), 1u);
    EXPECT_EQ(counterValue(counters, serve::kArtifactMisses), 0u);
}

TEST(ArtifactStore, EvictsLeastRecentlyUsed)
{
    TempDir dir;
    obs::Counters counters;
    ArtifactStore::Options opt;
    opt.dir = dir.path;
    opt.byteBudget = 3000;
    ArtifactStore store(opt, counters);

    std::string p1 = store.acquire(1, filler(1000));
    std::string p2 = store.acquire(2, filler(1000));
    std::string p3 = store.acquire(3, filler(1000));
    EXPECT_EQ(store.entries(), 3u);
    EXPECT_EQ(store.bytesResident(), 3000u);

    // Touch key 1 so key 2 becomes the LRU entry, then push the store
    // over budget: exactly key 2 must be evicted (and deleted).
    store.acquire(1, filler(1000));
    std::string p4 = store.acquire(4, filler(1000));
    EXPECT_EQ(counterValue(counters, serve::kArtifactEvictions), 1u);
    EXPECT_TRUE(store.contains(1));
    EXPECT_FALSE(store.contains(2));
    EXPECT_TRUE(store.contains(3));
    EXPECT_TRUE(store.contains(4));
    EXPECT_FALSE(fs::exists(p2));
    EXPECT_TRUE(fs::exists(p1));
    EXPECT_EQ(store.bytesResident(), 3000u);
}

TEST(ArtifactStore, NeverEvictsTheEntryJustAcquired)
{
    TempDir dir;
    obs::Counters counters;
    ArtifactStore::Options opt;
    opt.dir = dir.path;
    opt.byteBudget = 100;    // smaller than any artifact
    ArtifactStore store(opt, counters);

    // An over-budget artifact stays resident (there is nothing else
    // to evict and the store never evicts what it just returned).
    std::string p = store.acquire(9, filler(500));
    ASSERT_FALSE(p.empty());
    EXPECT_TRUE(fs::exists(p));
    EXPECT_TRUE(store.contains(9));

    // The next key evicts it.
    store.acquire(10, filler(500));
    EXPECT_FALSE(store.contains(9));
    EXPECT_TRUE(store.contains(10));
}

TEST(ArtifactStore, SingleFlightCompilation)
{
    TempDir dir;
    obs::Counters counters;
    ArtifactStore::Options opt;
    opt.dir = dir.path;
    ArtifactStore store(opt, counters);

    std::mutex m;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;
    std::atomic<int> builds{0};

    // A builder that blocks until the test releases it, so the second
    // acquire provably overlaps the first one's compile.
    auto slowBuild = [&](const std::string &objectPath) {
        builds.fetch_add(1);
        {
            std::unique_lock<std::mutex> lk(m);
            entered = true;
            cv.notify_all();
            cv.wait(lk, [&] { return release; });
        }
        std::ofstream f(objectPath, std::ios::binary);
        f << "native code";
        return f.good();
    };

    std::string pathA, pathB;
    std::thread a([&] { pathA = store.acquire(5, slowBuild); });
    {
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [&] { return entered; });
    }
    std::thread b([&] { pathB = store.acquire(5, slowBuild); });
    // Give b time to reach the in-flight wait, then let a finish.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    {
        std::lock_guard<std::mutex> lk(m);
        release = true;
    }
    cv.notify_all();
    a.join();
    b.join();

    EXPECT_EQ(builds.load(), 1);    // one compile for two requesters
    EXPECT_EQ(pathA, pathB);
    EXPECT_FALSE(pathA.empty());
    EXPECT_EQ(counterValue(counters, serve::kArtifactMisses), 1u);
    EXPECT_EQ(counterValue(counters, serve::kArtifactHits), 1u);
}

TEST(ArtifactStore, FailedBuildIsRetriable)
{
    TempDir dir;
    obs::Counters counters;
    ArtifactStore::Options opt;
    opt.dir = dir.path;
    ArtifactStore store(opt, counters);

    EXPECT_TRUE(
        store.acquire(3, [](const std::string &) { return false; })
            .empty());
    EXPECT_EQ(store.entries(), 0u);

    // The failure is not cached: the next acquire builds again.
    std::atomic<int> builds{0};
    std::string p = store.acquire(3, filler(32, &builds));
    EXPECT_FALSE(p.empty());
    EXPECT_EQ(builds.load(), 1);
}
