/**
 * @file
 * Tests for fiber extraction and the submodular cost machinery:
 * cone/cost invariants, the shared-node universe, and the identity
 * τ(f_i ∪ f_j) = t_i + t_j − τ(f_i ∩ f_j).
 */

#include <gtest/gtest.h>

#include "designs/designs.hh"
#include "fiber/fiber.hh"
#include "partition/process.hh"
#include "rtl/analysis.hh"
#include "rtl/dsl.hh"

using namespace parendi;
using namespace parendi::fiber;
using namespace parendi::rtl;
using partition::Process;

namespace {

/** Two registers sharing a sizable common cone, plus one independent. */
Netlist
sharedConeDesign()
{
    Design d("shared");
    auto a = d.reg("a", 32, 1);
    auto b = d.reg("b", 32, 2);
    auto c = d.reg("c", 32, 3);
    Wire av = d.read(a), bv = d.read(b), cv = d.read(c);
    // The shared subexpression (paper Fig. 3's a3).
    Wire common = (av * bv) + (av ^ bv);
    d.next(a, common + d.lit(32, 1));
    d.next(b, common ^ d.lit(32, 7));
    d.next(c, cv + d.lit(32, 1)); // independent fiber
    return d.finish();
}

} // namespace

TEST(Fiber, OneFiberPerSink)
{
    Netlist nl = sharedConeDesign();
    FiberSet fs(nl);
    EXPECT_EQ(fs.size(), nl.sinks().size());
    EXPECT_EQ(fs.size(), 3u);
}

TEST(Fiber, SharedUniverseContainsCommonNodes)
{
    Netlist nl = sharedConeDesign();
    FiberSet fs(nl);
    // Fibers 0 and 1 share the `common` cone; fiber 2 shares nothing.
    EXPECT_GT(fs.numShared(), 0u);
    EXPECT_GT(fs[0].shared.intersectCount(fs[1].shared), 0u);
    EXPECT_EQ(fs[0].shared.intersectCount(fs[2].shared), 0u);
    EXPECT_TRUE(fs[2].shared.empty());
}

TEST(Fiber, TotalEqualsExclusivePlusShared)
{
    Netlist nl = sharedConeDesign();
    FiberSet fs(nl);
    for (size_t i = 0; i < fs.size(); ++i) {
        uint64_t shared_w = fs[i].shared.totalWeight(fs.sharedIpu());
        EXPECT_EQ(fs[i].totalIpu, fs[i].exclIpu + shared_w) << i;
    }
}

TEST(Fiber, SubmodularIdentity)
{
    Netlist nl = sharedConeDesign();
    FiberSet fs(nl);
    Process p0 = Process::fromFiber(fs, 0);
    Process p1 = Process::fromFiber(fs, 1);
    Process m = Process::merged(fs, p0, p1);
    uint64_t overlap =
        p0.shared.intersectWeight(p1.shared, fs.sharedIpu());
    EXPECT_EQ(m.ipuCost, p0.ipuCost + p1.ipuCost - overlap);
    EXPECT_EQ(m.ipuCost, partition::mergedIpuCost(fs, p0, p1));
    EXPECT_LT(m.ipuCost, p0.ipuCost + p1.ipuCost); // real overlap
}

TEST(Fiber, MergedMemBytesMatchesMaterialized)
{
    Netlist nl = designs::makeSr(2);
    FiberSet fs(nl);
    for (uint32_t i = 0; i + 1 < std::min<size_t>(fs.size(), 20);
         i += 2) {
        Process a = Process::fromFiber(fs, i);
        Process b = Process::fromFiber(fs, i + 1);
        Process m = Process::merged(fs, a, b);
        EXPECT_EQ(partition::mergedMemBytes(fs, a, b), m.memBytes(fs))
            << i;
    }
}

TEST(Fiber, RegsReadMatchCone)
{
    Netlist nl = sharedConeDesign();
    FiberSet fs(nl);
    EXPECT_EQ(fs[0].regsRead, (std::vector<RegId>{0, 1}));
    EXPECT_EQ(fs[1].regsRead, (std::vector<RegId>{0, 1}));
    EXPECT_EQ(fs[2].regsRead, (std::vector<RegId>{2}));
}

TEST(Fiber, WriterMapAndStraggler)
{
    Netlist nl = sharedConeDesign();
    FiberSet fs(nl);
    for (RegId r = 0; r < nl.numRegisters(); ++r) {
        uint32_t w = fs.writerOfReg(r);
        ASSERT_LT(w, fs.size());
        EXPECT_EQ(fs[w].kind, SinkKind::Register);
        EXPECT_EQ(fs[w].target, r);
    }
    uint64_t straggler = fs.maxFiberIpu();
    for (size_t i = 0; i < fs.size(); ++i)
        EXPECT_LE(fs[i].totalIpu, straggler);
    EXPECT_GT(straggler, 0u);
}

TEST(Fiber, RegBytesGranularity)
{
    Design d("w");
    auto a = d.reg("a", 1, 0);
    auto b = d.reg("b", 33, 0);
    auto c = d.reg("c", 64, 0);
    d.next(a, d.read(a));
    d.next(b, d.read(b));
    d.next(c, d.read(c));
    Netlist nl = d.finish();
    FiberSet fs(nl);
    EXPECT_EQ(fs.regBytes(0), 4u);   // 1 bit -> one 4-byte granule
    EXPECT_EQ(fs.regBytes(1), 8u);   // 33 bits -> two granules
    EXPECT_EQ(fs.regBytes(2), 8u);
}

TEST(Fiber, MemoryWriteFibersTrackArrays)
{
    Netlist nl = designs::makePico(designs::defaultCoreConfig());
    FiberSet fs(nl);
    const Netlist &n2 = fs.netlist();
    bool found_ram_writer = false;
    for (size_t i = 0; i < fs.size(); ++i) {
        if (fs[i].kind != SinkKind::MemoryWrite)
            continue;
        found_ram_writer = true;
        // The write fiber must list the array among its memsUsed.
        EXPECT_TRUE(std::binary_search(fs[i].memsUsed.begin(),
                                       fs[i].memsUsed.end(),
                                       fs[i].target));
    }
    EXPECT_TRUE(found_ram_writer);
    (void)n2;
}

TEST(Fiber, CostModelScalesWithWidth)
{
    CostModel cm;
    Design d("w");
    Wire a = d.input("a", 32);
    Wire b = d.input("b", 32);
    Wire wide_a = d.input("wa", 256);
    Wire wide_b = d.input("wb", 256);
    Wire n1 = a + b;
    Wire n2 = wide_a + wide_b;
    Wire m1 = a * b;
    d.output("o1", n1);
    d.output("o2", n2);
    d.output("o3", m1);
    const Netlist &nl = d.netlist();
    NodeCost narrow = cm.nodeCost(nl, n1.id());
    NodeCost wide = cm.nodeCost(nl, n2.id());
    NodeCost mul = cm.nodeCost(nl, m1.id());
    EXPECT_GT(wide.ipuCycles, narrow.ipuCycles);
    EXPECT_GT(wide.x86Instrs, narrow.x86Instrs);
    EXPECT_GT(mul.ipuCycles, narrow.ipuCycles); // mul is pricier
    // Sources are free.
    EXPECT_EQ(cm.nodeCost(nl, a.id()).ipuCycles, 0u);
}
