/**
 * @file
 * Unit tests for the obs/ telemetry subsystem: the lock-free counter
 * registry (concurrent adds must be exact and TSan-clean), the
 * preallocated sample rings (wraparound keeps the newest window), the
 * report aggregation (the measured t_comp/t_comm/t_sync split must sum
 * to the sampled wall time by construction), and the Chrome
 * trace-event export (strict B/E nesting per thread).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "designs/cores.hh"
#include "obs/counters.hh"
#include "obs/profiler.hh"
#include "obs/report.hh"
#include "obs/trace.hh"
#include "x86/parallel.hh"

using namespace parendi;

TEST(Counters, ConcurrentAddsAreExact)
{
    obs::Counters regs;
    obs::Counter &shared = regs.get("shared");
    constexpr int kThreads = 8;
    constexpr uint64_t kAdds = 50000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&regs, &shared, t]() {
            // Every thread hammers the shared counter and also
            // registers/bumps its own — registration under contention
            // must hand out stable addresses.
            obs::Counter &mine =
                regs.get("thread_" + std::to_string(t));
            for (uint64_t i = 0; i < kAdds; ++i) {
                shared.add(1);
                mine.add(2);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(shared.value(), kThreads * kAdds);
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(regs.get("thread_" + std::to_string(t)).value(),
                  2 * kAdds);
    EXPECT_EQ(regs.size(), size_t{kThreads} + 1);
}

TEST(Counters, ReferencesStayValidAcrossGrowth)
{
    obs::Counters regs;
    obs::Counter &first = regs.get("first");
    first.add(7);
    // Force many registrations; the deque-backed registry must not
    // move existing counters.
    for (int i = 0; i < 1000; ++i)
        regs.get("c" + std::to_string(i)).add(1);
    EXPECT_EQ(first.value(), 7u);
    EXPECT_EQ(&first, &regs.get("first"));
}

TEST(SampleRing, WraparoundKeepsNewest)
{
    obs::SampleRing ring(8);
    EXPECT_EQ(ring.capacity(), 8u);
    for (uint64_t i = 0; i < 20; ++i) {
        obs::Sample s;
        s.t0 = i;
        s.t1 = i + 1;
        s.cycle = i;
        ring.push(s);
        ring.notePushed();
    }
    EXPECT_EQ(ring.size(), 8u);
    EXPECT_EQ(ring.pushed(), 20u);
    // Oldest-first: cycles 12..19 survive.
    for (size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring.at(i).cycle, 12 + i) << "slot " << i;
}

namespace {

/** Drive the pico core on the parallel engine with profiling on. */
std::unique_ptr<rtl::ParallelInterpreter>
profiledPico(uint32_t threads, uint64_t cycles, uint64_t sample_every)
{
    // Pin real workers so multi-worker attribution (t_sync vs
    // overhead) is exercised regardless of the host's core count.
    rtl::ParConfig pcfg;
    pcfg.maxWorkers = threads;
    auto sim = std::make_unique<rtl::ParallelInterpreter>(
        designs::makePico(designs::defaultCoreConfig()), threads,
        rtl::LowerOptions{}, pcfg);
    obs::ProfileOptions popt;
    popt.sampleEvery = sample_every;
    EXPECT_TRUE(sim->enableProfiling(popt));
    sim->step(cycles);
    return sim;
}

} // namespace

TEST(Report, MeasuredSplitSumsToSampledWall)
{
    auto sim = profiledPico(2, 128, 1);
    obs::ProfileReport rep = obs::buildReport(*sim->profiler());
    EXPECT_EQ(rep.cyclesTotal, 128u);
    EXPECT_GT(rep.cyclesSampled, 0u);
    EXPECT_GT(rep.sampledWallSec, 0.0);
    // The residual of the sampled cycle span lands in t_sync (multi
    // worker) or overhead (single worker), so the four terms sum to
    // the measured wall time by construction.
    double sum = rep.tCompSec + rep.tCommSec + rep.tSyncSec +
        rep.overheadSec;
    EXPECT_NEAR(sum, rep.sampledWallSec, 1e-6 * rep.sampledWallSec);
    // The residual must land in exactly one bucket, keyed on whether
    // a barrier exists at all: a single-worker engine reporting
    // nonzero t_sync would be misattribution by definition.
    if (rep.workers <= 1)
        EXPECT_EQ(rep.tSyncSec, 0.0);
    else
        EXPECT_EQ(rep.overheadSec, 0.0);
    // Every superstep and counter shows up.
    EXPECT_GT(rep.tCompSec, 0.0);
    EXPECT_EQ(rep.workerWorkSec.size(), rep.workers);
    bool found_instrs = false;
    for (const auto &[name, value] : rep.counters)
        if (name == obs::kInstrsRetired) {
            found_instrs = true;
            EXPECT_GT(value, 0u);
        }
    EXPECT_TRUE(found_instrs);
    std::string text = obs::formatReport(rep);
    EXPECT_NE(text.find("measured r_cycle decomposition"),
              std::string::npos);
    EXPECT_NE(text.find("per-shard eval stragglers"),
              std::string::npos);
    EXPECT_NE(text.find(obs::kCyclesSimulated), std::string::npos);
}

TEST(Report, SamplingCadenceIsHonored)
{
    auto sim = profiledPico(1, 256, 16);
    const obs::SuperstepProfiler &prof = *sim->profiler();
    EXPECT_EQ(prof.cyclesSeen(), 256u);
    EXPECT_EQ(prof.cyclesSampled(), 256u / 16);
    obs::ProfileReport rep = obs::buildReport(prof);
    EXPECT_EQ(rep.cyclesSampled, 256u / 16);
}

TEST(Report, ModeledVsMeasuredShowsBothColumns)
{
    auto sim = profiledPico(2, 64, 1);
    obs::ProfileReport rep = obs::buildReport(*sim->profiler());
    obs::ModeledSplit m;
    m.source = "toy model";
    m.unit = "toy cyc";
    m.comp = 60;
    m.comm = 25;
    m.sync = 15;
    m.rateKHz = 10;
    std::string text = obs::formatModeledVsMeasured(m, rep);
    EXPECT_NE(text.find("toy model"), std::string::npos);
    EXPECT_NE(text.find("modeled"), std::string::npos);
    EXPECT_NE(text.find("measured"), std::string::npos);
    for (const char *row : {"t_comp", "t_comm", "t_sync", "total"})
        EXPECT_NE(text.find(row), std::string::npos) << row;
}

TEST(ChromeTrace, EventsNestPerThread)
{
    auto sim = profiledPico(2, 64, 1);
    std::ostringstream out;
    obs::writeChromeTrace(*sim->profiler(), out);
    std::string json = out.str();
    ASSERT_FALSE(json.empty());
    // Object form of the trace-event format.
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

    // Line-oriented structural check: per tid, B events push and E
    // events pop — the stack must never underflow and must be empty
    // at the end (strict nesting, the invariant chrome://tracing
    // relies on).
    std::map<int, int> depth;
    size_t events = 0, cycles_spans = 0;
    std::istringstream lines(json);
    std::string line;
    auto field = [&line](const std::string &key) -> std::string {
        size_t at = line.find("\"" + key + "\":");
        if (at == std::string::npos)
            return "";
        at = line.find_first_not_of(": ", at + key.size() + 3);
        size_t end = line.find_first_of(",}", at);
        std::string v = line.substr(at, end - at);
        if (!v.empty() && v.front() == '"')
            v = v.substr(1, v.size() - 2);
        return v;
    };
    while (std::getline(lines, line)) {
        std::string ph = field("ph");
        if (ph != "B" && ph != "E")
            continue;
        ++events;
        int tid = std::stoi(field("tid"));
        if (ph == "B") {
            ++depth[tid];
            if (field("name") == "cycle") {
                ++cycles_spans;
                EXPECT_EQ(tid, 0);  // only worker 0 carries cycles
            }
        } else {
            --depth[tid];
            EXPECT_GE(depth[tid], 0) << "E without B on tid " << tid;
        }
    }
    EXPECT_GT(events, 0u);
    EXPECT_GT(cycles_spans, 0u);
    for (const auto &[tid, d] : depth)
        EXPECT_EQ(d, 0) << "unclosed span on tid " << tid;
}
