/**
 * @file
 * Activity-guarded evaluation tests. The dirty-bit sweep must be an
 * invisible optimization: every engine with activity on must stay
 * bit-identical to the always-eval baseline under random pokes,
 * resets and mid-run checkpoint/restore — the classic failure mode is
 * a stale skip, where a group whose inputs DID change is not re-run
 * and downstream logic keeps a value from a previous cycle. The
 * directed hazard tests aim straight at that: registers that return
 * to an earlier value (A->B->A, so only the memcmp in the latch can
 * tell the second edge happened) and inputs re-poked with both equal
 * and distinct values. The telemetry loop (CostProfile persistence,
 * measured-cost repartitioning, in-run rebalance) is covered at the
 * engine API level.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "obs/costprofile.hh"
#include "random_netlist.hh"
#include "rtl/cgen.hh"
#include "rtl/dsl.hh"
#include "rtl/interp.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "x86/parallel.hh"

using namespace parendi;
using parendi::testing::randomNetlist;
using parendi::testing::RandomNetlistConfig;
using rtl::BitVec;
using rtl::CgenInterpreter;
using rtl::Interpreter;
using rtl::Netlist;
using rtl::ParallelInterpreter;

namespace {

/** Random netlists with inputs so the fuzz can poke, and extra
 *  memories so commit-port seeding is exercised. */
RandomNetlistConfig
fuzzConfig()
{
    RandomNetlistConfig cfg;
    cfg.registers = 16;
    cfg.memories = 4;
    cfg.combNodes = 150;
    cfg.inputs = 3;
    return cfg;
}

void
compareAllState(core::SimEngine &sim, core::SimEngine &ref,
                const Netlist &nl, const char *what)
{
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r) {
        const std::string &name = nl.reg(r).name;
        ASSERT_EQ(sim.peekRegister(name), ref.peekRegister(name))
            << what << ": reg " << name;
    }
    for (rtl::PortId o = 0; o < nl.numOutputs(); ++o) {
        const std::string &name = nl.output(o).name;
        ASSERT_EQ(sim.peek(name), ref.peek(name))
            << what << ": output " << name;
    }
    for (rtl::MemId m = 0; m < nl.numMemories(); ++m) {
        const rtl::Memory &mem = nl.mem(m);
        for (uint32_t e = 0; e < mem.depth; ++e)
            ASSERT_EQ(sim.peekMemory(mem.name, e),
                      ref.peekMemory(mem.name, e))
                << what << ": " << mem.name << "[" << e << "]";
    }
}

/**
 * Drive @p act (activity on) and @p ref (always-eval) through the
 * same stimulus: random pokes — deliberately re-poking the same value
 * sometimes, so unchanged-input skips are exercised alongside changed
 * ones — short step bursts, a mid-run reset and a checkpoint/restore
 * round-trip on the activity engine, comparing all state after every
 * segment.
 */
void
differentialRun(core::SimEngine &act, core::SimEngine &ref,
                const Netlist &nl, uint64_t seed, const char *what)
{
    Rng rng(seed ^ 0xac71f17e5ull);
    for (int segment = 0; segment < 12; ++segment) {
        // Poke a random subset of inputs; half the time repeat the
        // last value (an unchanged poke must not dirty the readers,
        // and must not corrupt anything either).
        for (rtl::PortId i = 0; i < nl.numInputs(); ++i) {
            if (rng.below(3) == 0)
                continue;
            uint64_t v = rng.below(2) ? rng.next() : 0;
            BitVec bv(nl.input(i).width, v);
            act.poke(nl.input(i).name, bv);
            ref.poke(nl.input(i).name, bv);
        }
        size_t n = 1 + rng.below(7);
        act.step(n);
        ref.step(n);
        compareAllState(act, ref, nl, what);

        if (segment == 4) {
            // Checkpoint/restore mid-run: the restored state must
            // conservatively re-dirty everything (a stale dirty map
            // from before the restore would skip groups whose inputs
            // changed across the restore).
            std::stringstream ckpt;
            ASSERT_TRUE(act.saveState(ckpt)) << what;
            act.step(3);
            ASSERT_TRUE(act.restoreState(ckpt)) << what;
            act.step(2);
            ref.step(2);
            compareAllState(act, ref, nl, what);
        }
        if (segment == 8) {
            act.reset();
            ref.reset();
            compareAllState(act, ref, nl, what);
        }
    }
}

} // namespace

class ActivityFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ActivityFuzz, InterpMatchesAlwaysEval)
{
    Netlist nl = randomNetlist(GetParam(), fuzzConfig());
    Interpreter ref(nl);
    Interpreter act(nl);
    ASSERT_TRUE(act.setActivity(true));
    ASSERT_TRUE(act.activityEnabled());
    ASSERT_FALSE(ref.activityEnabled());
    differentialRun(act, ref, nl, GetParam(), "interp");
}

TEST_P(ActivityFuzz, CgenMatchesAlwaysEval)
{
    uint64_t seed = GetParam();
    if (seed % 2) // subsample: the compile is the slow part
        return;
    Netlist nl = randomNetlist(seed, fuzzConfig());
    Interpreter ref(nl);
    CgenInterpreter act(nl);
    ASSERT_TRUE(act.setActivity(true));
    differentialRun(act, ref, nl, seed, "cgen");
}

TEST_P(ActivityFuzz, ParMatchesAlwaysEval)
{
    uint64_t seed = GetParam();
    Netlist nl = randomNetlist(seed, fuzzConfig());
    for (uint32_t threads : {1u, 8u}) {
        Interpreter ref(nl);
        // Pin real shards/workers: the default clamp to hardware
        // concurrency would collapse this to one shard on small CI
        // hosts, and cross-shard exchange seeding is the part under
        // test.
        rtl::ParConfig pcfg;
        pcfg.maxWorkers = threads;
        ParallelInterpreter act(nl, threads, rtl::LowerOptions{},
                                pcfg);
        ASSERT_TRUE(act.setActivity(true));
        differentialRun(act, ref, nl, seed ^ threads, "par");
    }
}

TEST_P(ActivityFuzz, GangMatchesAlwaysEval)
{
    // Gang semantics: one dirty map guards all lanes, so a group is
    // live when ANY lane's inputs changed. Drive distinct per-lane
    // stimuli and compare every lane against an always-eval gang.
    uint64_t seed = GetParam();
    if (seed % 2 == 0) // subsample for balance with the cgen half
        return;
    constexpr uint32_t R = 8;
    Netlist nl = randomNetlist(seed, fuzzConfig());
    Interpreter ref(nl, rtl::LowerOptions{}, R);
    Interpreter act(nl, rtl::LowerOptions{}, R);
    ASSERT_TRUE(act.setActivity(true));
    Rng rng(seed * 77 + 5);
    for (int segment = 0; segment < 8; ++segment) {
        for (rtl::PortId i = 0; i < nl.numInputs(); ++i) {
            // Mix broadcast pokes with per-lane ones, and leave some
            // lanes unchanged so lane-OR'd dirtiness is exercised.
            if (rng.below(4) == 0) {
                BitVec bv(nl.input(i).width, rng.next());
                act.poke(nl.input(i).name, bv);
                ref.poke(nl.input(i).name, bv);
                continue;
            }
            for (uint32_t l = 0; l < R; ++l) {
                if (rng.below(2))
                    continue;
                BitVec bv(nl.input(i).width, rng.next());
                act.pokeLane(nl.input(i).name, bv, l);
                ref.pokeLane(nl.input(i).name, bv, l);
            }
        }
        size_t n = 1 + rng.below(5);
        act.step(n);
        ref.step(n);
        for (uint32_t l = 0; l < R; ++l) {
            for (rtl::RegId r = 0; r < nl.numRegisters(); ++r) {
                const std::string &name = nl.reg(r).name;
                ASSERT_EQ(act.peekRegisterLane(name, l),
                          ref.peekRegisterLane(name, l))
                    << "gang lane " << l << " reg " << name;
            }
            for (rtl::PortId o = 0; o < nl.numOutputs(); ++o) {
                const std::string &name = nl.output(o).name;
                ASSERT_EQ(act.peekLane(name, l),
                          ref.peekLane(name, l))
                    << "gang lane " << l << " output " << name;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ActivityFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

namespace {

/**
 * The stale-skip hazard design: a register `r` latches the input, a
 * heavy combinational cone of `r` feeds the output. The A->B->A
 * stimulus makes the second edge visible ONLY to the latch's value
 * compare — after it, `r` holds exactly the value it had two cycles
 * earlier, so an engine whose dirtiness tracked "r was written" vs
 * "r changed" incorrectly would serve a stale cone output.
 */
Netlist
hazardDesign()
{
    using namespace rtl;
    Design d("hazard");
    Wire in = d.input("in", 32);
    RegId r = d.reg("r", 32, 0);
    d.next(r, in);
    Wire x = d.read(r);
    for (int i = 0; i < 6; ++i) {
        x = x ^ x.shl(13);
        x = x ^ x.shr(17);
        x = x * d.lit(32, 0x9e3779b9u + 2 * i);
    }
    d.output("digest", x);
    d.output("raw", d.read(r));
    return d.finish();
}

} // namespace

TEST(ActivityHazard, AbaRegisterReDirtiesReaders)
{
    Netlist nl = hazardDesign();
    Interpreter ref(nl);
    Interpreter act(nl);
    ASSERT_TRUE(act.setActivity(true));

    auto both = [&](uint64_t v, size_t n) {
        act.poke("in", v);
        ref.poke("in", v);
        act.step(n);
        ref.step(n);
        ASSERT_EQ(act.peek("digest"), ref.peek("digest"))
            << "after poke " << v;
        ASSERT_EQ(act.peekRegister("r"), ref.peekRegister("r"));
    };

    both(5, 1);  // A
    both(7, 1);  // B
    both(5, 1);  // back to A: r changes 7->5, cone must re-run
    BitVec digestA = act.peek("digest");
    both(5, 3);  // steady state: skips every cycle, value must hold
    ASSERT_EQ(act.peek("digest"), digestA);
    both(7, 1);  // and wake up again
    ASSERT_NE(act.peek("digest"), digestA);
}

TEST(ActivityHazard, AbaSurvivesCgenAndPar)
{
    Netlist nl = hazardDesign();
    Interpreter ref(nl);
    CgenInterpreter cg(nl);
    ASSERT_TRUE(cg.setActivity(true));
    rtl::ParConfig pcfg;
    pcfg.maxWorkers = 4;
    ParallelInterpreter par(nl, 4, rtl::LowerOptions{}, pcfg);
    ASSERT_TRUE(par.setActivity(true));

    const uint64_t pattern[] = {5, 7, 5, 5, 9, 5, 9, 9, 5};
    for (uint64_t v : pattern) {
        for (core::SimEngine *e : std::vector<core::SimEngine *>{
                 &ref, &cg, &par}) {
            e->poke("in", v);
            e->step(1);
        }
        ASSERT_EQ(cg.peek("digest"), ref.peek("digest")) << v;
        ASSERT_EQ(par.peek("digest"), ref.peek("digest")) << v;
    }
}

TEST(CostProfile, RoundTripAndLookup)
{
    obs::CostProfile p;
    p.set("reg:ctr", 12.5);
    p.set("reg:u0", 4096);
    p.set("out:digest", 88);
    EXPECT_DOUBLE_EQ(p.total(), 12.5 + 4096 + 88);
    EXPECT_DOUBLE_EQ(p.lookup("reg:u0", 1.0), 4096);
    EXPECT_DOUBLE_EQ(p.lookup("reg:never-seen", 7.0), 7.0);

    std::string path = ::testing::TempDir() + "activity_cp.txt";
    ASSERT_TRUE(p.save(path));
    obs::CostProfile q;
    ASSERT_TRUE(q.load(path));
    EXPECT_EQ(q.size(), p.size());
    EXPECT_DOUBLE_EQ(q.lookup("reg:ctr", 0), 12.5);
    EXPECT_DOUBLE_EQ(q.lookup("out:digest", 0), 88);
    std::remove(path.c_str());
}

TEST(CostProfile, LoadRejectsMissingAndMalformed)
{
    obs::CostProfile p;
    EXPECT_FALSE(p.load("/nonexistent/parendi-cost-profile.txt"));

    std::string path = ::testing::TempDir() + "activity_cp_bad.txt";
    {
        std::ofstream out(path);
        out << "# comment lines are fine\n"
            << "reg:ok 3.0\n"
            << "this-line-has-no-cost\n";
    }
    EXPECT_FALSE(p.load(path));
    std::remove(path.c_str());
}

TEST(Repartition, MeasuredCostsCloseTheLoop)
{
    // The full telemetry loop at API level: profile a run, collect
    // per-fiber measured costs, feed them to a fresh engine's
    // partitioner, and require bit-identity throughout. Keys must be
    // the stable design-name form so the profile survives
    // recompilation.
    Netlist nl = randomNetlist(11, fuzzConfig());
    Interpreter ref(nl);

    rtl::ParConfig pcfg;
    pcfg.maxWorkers = 4;
    ParallelInterpreter prof(nl, 4, rtl::LowerOptions{}, pcfg);
    obs::ProfileOptions popt;
    popt.sampleEvery = 1; // every cycle: short runs must sample
    ASSERT_TRUE(prof.enableProfiling(popt));
    prof.step(200);
    ref.step(200);
    compareAllState(prof, ref, nl, "profiled");

    obs::CostProfile measured;
    ASSERT_TRUE(prof.collectCostProfile(measured));
    ASSERT_FALSE(measured.empty());
    bool sawReg = false, sawStable = true;
    for (const auto &[key, cost] : measured.cost) {
        EXPECT_GT(cost, 0) << key;
        if (key.rfind("reg:", 0) == 0)
            sawReg = true;
        else if (key.rfind("memw:", 0) != 0 &&
                 key.rfind("out:", 0) != 0)
            sawStable = false;
    }
    EXPECT_TRUE(sawReg);
    EXPECT_TRUE(sawStable) << "unexpected cost-profile key form";

    // Second engine partitions on the measured costs; same answers.
    rtl::ParConfig mcfg;
    mcfg.maxWorkers = 4;
    mcfg.costIn = &measured;
    ParallelInterpreter repart(nl, 4, rtl::LowerOptions{}, mcfg);
    repart.step(200);
    compareAllState(repart, ref, nl, "repartitioned");
}

TEST(Repartition, InRunRebalancePreservesState)
{
    // rebalanceNow() tears the shard set down mid-run and rebuilds it
    // on measured weights; architectural state, activity guards and
    // subsequent stepping must be unaffected.
    Netlist nl = randomNetlist(13, fuzzConfig());
    Interpreter ref(nl);

    rtl::ParConfig pcfg;
    pcfg.maxWorkers = 4;
    ParallelInterpreter par(nl, 4, rtl::LowerOptions{}, pcfg);
    ASSERT_TRUE(par.setActivity(true));
    obs::ProfileOptions popt;
    popt.sampleEvery = 1;
    ASSERT_TRUE(par.enableProfiling(popt));

    par.step(120);
    ref.step(120);
    compareAllState(par, ref, nl, "before rebalance");

    EXPECT_EQ(par.rebalances(), 0u);
    ASSERT_TRUE(par.rebalanceNow());
    EXPECT_EQ(par.rebalances(), 1u);
    EXPECT_TRUE(par.activityEnabled());
    compareAllState(par, ref, nl, "after rebalance");

    par.step(120);
    ref.step(120);
    compareAllState(par, ref, nl, "stepping after rebalance");
}
