/**
 * @file
 * Compressed waveform tests (src/ckpt/wave.hh): wave2vcd must expand
 * to a VCD byte-identical to what the EngineTracer writes on the same
 * run, the stream must beat the raw VCD by the documented margin, and
 * corrupt streams must be rejected.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "ckpt/wave.hh"
#include "designs/designs.hh"
#include "random_netlist.hh"
#include "rtl/interp.hh"
#include "rtl/vcd.hh"
#include "util/logging.hh"

using namespace parendi;
using parendi::testing::randomNetlist;
using rtl::Interpreter;
using rtl::Netlist;

namespace {

/** Run @p cycles on two engines of @p nl — one VCD-traced, one
 *  wave-traced — and return {vcd text, wave bytes}. */
std::pair<std::string, std::string>
traceBoth(const Netlist &nl, size_t cycles)
{
    std::stringstream vcd;
    {
        Interpreter sim(nl);
        rtl::EngineTracer tracer(sim, vcd);
        tracer.step(cycles);
    }
    std::stringstream wave;
    {
        Interpreter sim(nl);
        ckpt::WaveTracer tracer(sim, wave);
        tracer.step(cycles);
    }
    return {vcd.str(), wave.str()};
}

} // namespace

TEST(Wave, Wave2VcdIsByteIdentical)
{
    for (uint64_t seed : {3u, 17u}) {
        Netlist nl = randomNetlist(seed);
        auto [vcd, wave] = traceBoth(nl, 150);
        std::stringstream in(wave), out;
        uint64_t samples = ckpt::waveToVcd(in, out);
        EXPECT_GT(samples, 0u);
        EXPECT_EQ(out.str(), vcd) << "seed " << seed;
    }
}

TEST(Wave, Wave2VcdIsByteIdenticalOnPico)
{
    Netlist nl = designs::makePico(designs::defaultCoreConfig());
    auto [vcd, wave] = traceBoth(nl, 400);
    std::stringstream in(wave), out;
    uint64_t samples = ckpt::waveToVcd(in, out);
    EXPECT_EQ(samples, 401u); // time 0 + one per cycle
    EXPECT_EQ(out.str(), vcd);
}

TEST(Wave, CompressedAtMostQuarterOfVcdOnPico)
{
    // Acceptance: the compressed wave is at most 25% of the raw VCD
    // bytes on pico.
    Netlist nl = designs::makePico(designs::defaultCoreConfig());
    auto [vcd, wave] = traceBoth(nl, 1000);
    EXPECT_LE(wave.size() * 4, vcd.size())
        << "wave " << wave.size() << "B vs vcd " << vcd.size() << "B";
}

TEST(Wave, StillSignalsCostNothing)
{
    // A design stepped zero times records exactly one sample (the
    // dump-all at time 0); a second identical sample writes nothing.
    std::stringstream out;
    ckpt::WaveWriter w(out);
    w.addSignal("a", 8);
    w.addSignal("b", 64);
    w.writeHeader("still", 0x1234);
    std::vector<rtl::BitVec> vals = {rtl::BitVec(8, uint64_t{5}),
                                     rtl::BitVec(64, uint64_t{7})};
    w.sample(0, vals);
    size_t afterFirst = out.str().size();
    w.sample(1, vals); // no changes: nothing written
    EXPECT_EQ(out.str().size(), afterFirst);
    vals[0] = rtl::BitVec(8, uint64_t{6});
    w.sample(2, vals); // one real change
    EXPECT_GT(out.str().size(), afterFirst);
}

TEST(Wave, RejectsCorruptAndTruncatedStreams)
{
    Netlist nl = designs::makeSr(2);
    auto [vcd, wave] = traceBoth(nl, 50);
    (void)vcd;

    // Bad magic.
    {
        std::string bad = wave;
        bad[0] ^= 0xff;
        std::stringstream in(bad), out;
        EXPECT_THROW(ckpt::waveToVcd(in, out), FatalError);
    }
    // Truncated mid-sample: the final sample's payload is cut short.
    {
        std::stringstream in(wave.substr(0, wave.size() - 2)), out;
        EXPECT_THROW(ckpt::waveToVcd(in, out), FatalError);
    }
    // Corrupt a payload byte: the decoder must fail loudly (a flipped
    // signal-id gap walks off the signal table) or, at worst, decode
    // different values — never crash. We flip a byte in the first
    // sample's payload, which corrupts an id gap or value with high
    // probability; accept either a FatalError or a clean (but
    // different) VCD.
    {
        std::string bad = wave;
        bad[bad.size() / 2] ^= 0x3c;
        std::stringstream in(bad), out;
        try {
            ckpt::waveToVcd(in, out);
        } catch (const FatalError &) {
            // expected path
        }
    }
}
