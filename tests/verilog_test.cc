/**
 * @file
 * Tests for the Verilog-subset frontend: lexing/parsing, width
 * rules, always-block semantics (last-wins, if/else, case priority,
 * memory ports), error reporting, and end-to-end equivalence of a
 * Verilog design compiled onto the IPU machine.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "frontend/verilog.hh"
#include "rtl/interp.hh"
#include "util/logging.hh"

using namespace parendi;
using frontend::parseVerilog;
using rtl::Interpreter;
using rtl::Netlist;

TEST(Verilog, CounterWithEnable)
{
    Netlist nl = parseVerilog(R"(
module counter(input clk, input en, output [31:0] value);
  reg [31:0] cnt = 7;
  assign value = cnt;
  always @(posedge clk)
    if (en) cnt <= cnt + 32'd1;
endmodule
)");
    EXPECT_EQ(nl.name(), "counter");
    Interpreter sim(std::move(nl));
    EXPECT_EQ(sim.peek("value").toUint64(), 7u);
    sim.poke("en", uint64_t{1});
    sim.step(5);
    EXPECT_EQ(sim.peek("value").toUint64(), 12u);
    sim.poke("en", uint64_t{0});
    sim.step(5);
    EXPECT_EQ(sim.peek("value").toUint64(), 12u);
}

TEST(Verilog, LiteralFormats)
{
    Netlist nl = parseVerilog(R"(
module lits(input clk, output [63:0] y);
  wire [63:0] a = {16'hbeef, 16'd48879, 16'b1011111011101111, 16'o137357};
  assign y = a;
endmodule
)");
    Interpreter sim(std::move(nl));
    EXPECT_EQ(sim.peek("y").toUint64(), 0xbeefbeefbeefbeefull);
}

TEST(Verilog, OperatorSemantics)
{
    Netlist nl = parseVerilog(R"(
module ops(input clk, input [7:0] a, input [7:0] b,
           output [7:0] sum, output [7:0] shifted, output eq,
           output [7:0] cond, output red, output [7:0] inv,
           output [7:0] sra);
  assign sum = a + b;
  assign shifted = a << 2;
  assign eq = a == b;
  assign cond = a < b ? a : b;
  assign red = ^a;
  assign inv = ~a;
  assign sra = a >>> 1;
endmodule
)");
    Interpreter sim(std::move(nl));
    sim.poke("a", uint64_t{0x96});
    sim.poke("b", uint64_t{0x34});
    EXPECT_EQ(sim.peek("sum").toUint64(), (0x96u + 0x34u) & 0xff);
    EXPECT_EQ(sim.peek("shifted").toUint64(), (0x96u << 2) & 0xff);
    EXPECT_EQ(sim.peek("eq").toUint64(), 0u);
    EXPECT_EQ(sim.peek("cond").toUint64(), 0x34u); // min(a,b)
    EXPECT_EQ(sim.peek("red").toUint64(),
              static_cast<uint64_t>(__builtin_popcount(0x96) & 1));
    EXPECT_EQ(sim.peek("inv").toUint64(), (~0x96u) & 0xff);
    // >>> of 0x96 (sign bit set): arithmetic shift fills with 1.
    EXPECT_EQ(sim.peek("sra").toUint64(), 0xcbu);
}

TEST(Verilog, WidthBalancingAndResize)
{
    Netlist nl = parseVerilog(R"(
module widths(input clk, input [3:0] small, input [15:0] big,
              output [15:0] y, output [3:0] trunc);
  assign y = small + big;    // small zero-extends to 16
  assign trunc = big;        // RHS truncates to LHS width
endmodule
)");
    Interpreter sim(std::move(nl));
    sim.poke("small", uint64_t{0xf});
    sim.poke("big", uint64_t{0xabcd});
    EXPECT_EQ(sim.peek("y").toUint64(), (0xfu + 0xabcdu) & 0xffff);
    EXPECT_EQ(sim.peek("trunc").toUint64(), 0xdu);
}

TEST(Verilog, LastAssignmentWins)
{
    Netlist nl = parseVerilog(R"(
module lastwins(input clk, input sel, output reg [7:0] r);
  always @(posedge clk) begin
    r <= 8'd1;
    if (sel)
      r <= 8'd2;
  end
endmodule
)");
    Interpreter sim(std::move(nl));
    sim.poke("sel", uint64_t{0});
    sim.step();
    EXPECT_EQ(sim.peek("r").toUint64(), 1u);
    sim.poke("sel", uint64_t{1});
    sim.step();
    EXPECT_EQ(sim.peek("r").toUint64(), 2u);
}

TEST(Verilog, NonBlockingReadsOldValues)
{
    Netlist nl = parseVerilog(R"(
module swap(input clk, output [7:0] ya, output [7:0] yb);
  reg [7:0] a = 1;
  reg [7:0] b = 2;
  assign ya = a;
  assign yb = b;
  always @(posedge clk) begin
    a <= b;
    b <= a;
  end
endmodule
)");
    Interpreter sim(std::move(nl));
    sim.step();
    EXPECT_EQ(sim.peek("ya").toUint64(), 2u);
    EXPECT_EQ(sim.peek("yb").toUint64(), 1u);
}

TEST(Verilog, CaseWithPriorityAndDefault)
{
    Netlist nl = parseVerilog(R"(
module fsm(input clk, output reg [7:0] out);
  reg [1:0] state = 0;
  always @(posedge clk) begin
    state <= state + 2'd1;
    case (state)
      2'd0: out <= 8'd10;
      2'd1, 2'd2: out <= 8'd20;
      default: out <= 8'd30;
    endcase
  end
endmodule
)");
    Interpreter sim(std::move(nl));
    sim.step();
    EXPECT_EQ(sim.peek("out").toUint64(), 10u);
    sim.step();
    EXPECT_EQ(sim.peek("out").toUint64(), 20u);
    sim.step();
    EXPECT_EQ(sim.peek("out").toUint64(), 20u);
    sim.step();
    EXPECT_EQ(sim.peek("out").toUint64(), 30u);
    sim.step();
    EXPECT_EQ(sim.peek("out").toUint64(), 10u); // state wrapped
}

TEST(Verilog, MemoryReadWrite)
{
    Netlist nl = parseVerilog(R"(
module memo(input clk, input [3:0] waddr, input [3:0] raddr,
            input [15:0] wdata, input wen, output [15:0] rdata);
  reg [15:0] store [0:15];
  assign rdata = store[raddr];
  always @(posedge clk)
    if (wen)
      store[waddr] <= wdata;
endmodule
)");
    Interpreter sim(std::move(nl));
    sim.poke("waddr", uint64_t{5});
    sim.poke("wdata", uint64_t{0xfeed});
    sim.poke("wen", uint64_t{1});
    sim.step();
    sim.poke("wen", uint64_t{0});
    sim.poke("raddr", uint64_t{5});
    EXPECT_EQ(sim.peek("rdata").toUint64(), 0xfeedu);
    EXPECT_EQ(sim.peekMemory("store", 5).toUint64(), 0xfeedu);
}

TEST(Verilog, ConcatRangesReplication)
{
    Netlist nl = parseVerilog(R"(
module bits(input clk, input [7:0] a,
            output [15:0] cat, output [3:0] hi, output b3,
            output [7:0] rep);
  assign cat = {a, 8'h5a};
  assign hi = a[7:4];
  assign b3 = a[3];
  assign rep = {4{a[1:0]}};
endmodule
)");
    Interpreter sim(std::move(nl));
    sim.poke("a", uint64_t{0xc9});
    EXPECT_EQ(sim.peek("cat").toUint64(), 0xc95au);
    EXPECT_EQ(sim.peek("hi").toUint64(), 0xcu);
    EXPECT_EQ(sim.peek("b3").toUint64(), 1u);
    EXPECT_EQ(sim.peek("rep").toUint64(), 0x55u); // 01 x4
}

TEST(Verilog, WiresResolveOutOfOrder)
{
    // w2 is used before its definition appears.
    Netlist nl = parseVerilog(R"(
module order(input clk, input [7:0] a, output [7:0] y);
  wire [7:0] w1 = w2 + 8'd1;
  wire [7:0] w2 = a ^ 8'h0f;
  assign y = w1;
endmodule
)");
    Interpreter sim(std::move(nl));
    sim.poke("a", uint64_t{0x30});
    EXPECT_EQ(sim.peek("y").toUint64(), (0x30u ^ 0x0f) + 1);
}

TEST(Verilog, Errors)
{
    // Combinational loop.
    EXPECT_THROW(parseVerilog(R"(
module loop(input clk, output [7:0] y);
  wire [7:0] a = b + 8'd1;
  wire [7:0] b = a;
  assign y = a;
endmodule
)"),
                 FatalError);
    // Two clock domains.
    EXPECT_THROW(parseVerilog(R"(
module twoclk(input c1, input c2, output reg [7:0] r);
  reg [7:0] q = 0;
  always @(posedge c1) r <= 8'd1;
  always @(posedge c2) q <= 8'd2;
endmodule
)"),
                 FatalError);
    // Register written from two blocks.
    EXPECT_THROW(parseVerilog(R"(
module dual(input clk, output reg [7:0] r);
  always @(posedge clk) r <= 8'd1;
  always @(posedge clk) r <= 8'd2;
endmodule
)"),
                 FatalError);
    // Undeclared identifier.
    EXPECT_THROW(parseVerilog(R"(
module undef(input clk, output [7:0] y);
  assign y = nope;
endmodule
)"),
                 FatalError);
    // Signal driven twice.
    EXPECT_THROW(parseVerilog(R"(
module twice(input clk, input [7:0] a, output [7:0] y);
  assign y = a;
  assign y = a + 8'd1;
endmodule
)"),
                 FatalError);
    // Syntax error.
    EXPECT_THROW(parseVerilog("module m(; endmodule"), FatalError);
    // Clock used in an expression (clk is the posedge clock here).
    EXPECT_THROW(parseVerilog(R"(
module ck(input clk, output [7:0] y);
  reg [7:0] r = 0;
  assign y = {7'd0, clk};
  always @(posedge clk) r <= r + 8'd1;
endmodule
)"),
                 FatalError);
}

TEST(Verilog, GrayCounterMatchesHandBuiltReference)
{
    Netlist nl = parseVerilog(R"(
module gray(input clk, output [7:0] code);
  reg [7:0] cnt = 0;
  assign code = cnt ^ (cnt >> 1);
  always @(posedge clk) cnt <= cnt + 8'd1;
endmodule
)");
    Interpreter sim(std::move(nl));
    uint32_t cnt = 0;
    for (int i = 0; i < 300; ++i) {
        EXPECT_EQ(sim.peek("code").toUint64(),
                  (cnt ^ (cnt >> 1)) & 0xff);
        sim.step();
        cnt = (cnt + 1) & 0xff;
    }
}

TEST(Verilog, CompilesOntoIpuMachine)
{
    const char *src = R"(
module lfsr_bank(input clk, output [15:0] tap);
  reg [15:0] l0 = 16'hace1;
  reg [15:0] l1 = 16'h1234;
  reg [15:0] l2 = 16'hbeef;
  wire fb0 = l0[0] ^ l0[2] ^ l0[3] ^ l0[5];
  wire fb1 = l1[0] ^ l1[2] ^ l1[3] ^ l1[5];
  wire fb2 = l2[0] ^ l2[2] ^ l2[3] ^ l2[5];
  assign tap = l0 ^ l1 ^ l2;
  always @(posedge clk) begin
    l0 <= {fb0, l0[15:1]};
    l1 <= {fb1, l1[15:1]};
    l2 <= {fb2, l2[15:1]};
  end
endmodule
)";
    Netlist nl = parseVerilog(src);
    Interpreter ref(nl);
    core::CompilerOptions opt;
    opt.tilesPerChip = 4;
    auto sim = core::compile(std::move(nl), opt);
    for (int i = 0; i < 64; ++i) {
        sim->step();
        ref.step();
        ASSERT_EQ(sim->machine().peek("tap"), ref.peek("tap"))
            << "cycle " << i;
    }
}

TEST(Verilog, FileNotFound)
{
    EXPECT_THROW(frontend::parseVerilogFile("/no/such.v"),
                 FatalError);
}
