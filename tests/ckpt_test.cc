/**
 * @file
 * Tests for the snapshot/replay subsystem (src/ckpt): the bitstream
 * coder, the v2 compressed snapshot format, delta chains, the
 * deterministic input journal, cross-engine portability, corruption
 * rejection, and v0/v1/v2 cross-version compatibility.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/bitstream.hh"
#include "ckpt/journal.hh"
#include "ckpt/snapshot.hh"
#include "core/engine.hh"
#include "core/session.hh"
#include "designs/designs.hh"
#include "random_netlist.hh"
#include "rtl/cgen.hh"
#include "rtl/interp.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "x86/parallel.hh"

using namespace parendi;
using parendi::testing::randomNetlist;
using parendi::testing::RandomNetlistConfig;
using rtl::BitVec;
using rtl::Interpreter;
using rtl::Netlist;

// ---- Bitstream ----------------------------------------------------------

TEST(Bitstream, UegRoundTrip)
{
    std::vector<uint64_t> vals = {0,      1,          2,
                                  7,      8,          255,
                                  256,    1u << 20,   (1ull << 32) - 1,
                                  12345,  0xdeadbeef, 42};
    ckpt::BitWriter w;
    for (uint64_t v : vals)
        w.writeUEG(v);
    w.alignByte();
    ckpt::BitReader r(w.bytes().data(), w.bytes().size());
    for (uint64_t v : vals)
        EXPECT_EQ(r.readUEG(), v);
    EXPECT_FALSE(r.overran());
}

TEST(Bitstream, MixedBitsRoundTrip)
{
    ckpt::BitWriter w;
    w.writeBits(0x5ull, 3);
    w.writeBit(true);
    w.writeBits(0xdeadbeefcafef00dull, 64);
    w.writeUEG(777);
    w.writeBits(0x1ffull, 9);
    w.alignByte();
    ckpt::BitReader r(w.bytes().data(), w.bytes().size());
    EXPECT_EQ(r.readBits(3), 0x5u);
    EXPECT_TRUE(r.readBit());
    EXPECT_EQ(r.readBits(64), 0xdeadbeefcafef00dull);
    EXPECT_EQ(r.readUEG(), 777u);
    EXPECT_EQ(r.readBits(9), 0x1ffu);
    EXPECT_FALSE(r.overran());
}

TEST(Bitstream, CodeWordsRoundTripSparseAndDense)
{
    Rng rng(0xc0ffee);
    for (int trial = 0; trial < 50; ++trial) {
        size_t n = 1 + rng.below(200);
        std::vector<uint64_t> words(n, 0);
        // Mostly zero (the XOR-delta shape), a few dense words.
        for (size_t i = 0; i < n; ++i) {
            switch (rng.below(8)) {
              case 0: words[i] = rng.next(); break;       // dense
              case 1: words[i] = rng.below(1000); break;  // small
              default: break;                             // zero
            }
        }
        ckpt::BitWriter w;
        ckpt::codeWords(w, words.data(), n);
        w.alignByte();
        std::vector<uint64_t> back(n, 0xffffffffffffffffull);
        ckpt::BitReader r(w.bytes().data(), w.bytes().size());
        ckpt::decodeWords(r, back.data(), n);
        ASSERT_FALSE(r.overran()) << "trial " << trial;
        ASSERT_EQ(back, words) << "trial " << trial;
    }
}

TEST(Bitstream, ReaderDetectsTruncation)
{
    ckpt::BitWriter w;
    for (int i = 0; i < 100; ++i)
        w.writeBits(0xffffffffffffffffull, 64);
    w.alignByte();
    // Half the bytes are gone: reading all 100 words must trip the
    // sticky overran flag, never crash.
    ckpt::BitReader r(w.bytes().data(), w.bytes().size() / 2);
    for (int i = 0; i < 100; ++i)
        r.readBits(64);
    EXPECT_TRUE(r.overran());
}

// ---- Snapshot format ----------------------------------------------------

namespace {

/** All register values of @p e, concatenated (a cheap state digest
 *  for equality checks between two engines of the same design). */
std::string
regsDigest(const core::SimEngine &e)
{
    std::string out;
    const Netlist &nl = e.netlist();
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r)
        out += e.peekRegister(nl.reg(r).name).toHex() + ";";
    return out;
}

} // namespace

TEST(Snapshot, PackUnpackRoundTrip)
{
    Interpreter sim(designs::makeSr(2));
    sim.step(64);
    core::ArchState st;
    ASSERT_TRUE(sim.exportArch(st));

    ckpt::PackedImage img = ckpt::packArchState(st);
    core::ArchState back;
    ckpt::shapeArchState(sim.netlist(), 1, back);
    ckpt::unpackArchState(img, back);
    back.cycles = st.cycles;

    ASSERT_EQ(back.regs.size(), st.regs.size());
    for (size_t i = 0; i < st.regs.size(); ++i)
        EXPECT_EQ(back.regs[i], st.regs[i]) << "reg " << i;
    ASSERT_EQ(back.mems.size(), st.mems.size());
    for (size_t i = 0; i < st.mems.size(); ++i)
        EXPECT_EQ(back.mems[i], st.mems[i]) << "mem " << i;
    ASSERT_EQ(back.inputs.size(), st.inputs.size());
    for (size_t i = 0; i < st.inputs.size(); ++i)
        EXPECT_EQ(back.inputs[i], st.inputs[i]) << "input " << i;
}

TEST(Snapshot, V2RoundTripIsBitIdentical)
{
    Interpreter sim(designs::makeBitcoin({2, 16}));
    sim.step(100);
    uint64_t fnv = ckpt::archStateFnv(sim);

    std::stringstream snap;
    core::saveCheckpoint(sim, snap);
    sim.step(50); // diverge
    EXPECT_NE(ckpt::archStateFnv(sim), fnv);

    core::restoreCheckpoint(sim, snap);
    EXPECT_EQ(sim.cycles(), 100u);
    EXPECT_EQ(ckpt::archStateFnv(sim), fnv);
}

TEST(Snapshot, DeltaChainRestoresAnyRecord)
{
    Netlist nl = randomNetlist(7);
    Interpreter sim(nl);
    Interpreter ref(nl);

    std::stringstream snap;
    ckpt::SnapshotWriter writer(snap, sim.netlist());
    std::vector<uint64_t> fnvs;
    writer.write(sim); // record 0: cycle 0
    fnvs.push_back(ckpt::archStateFnv(sim));
    for (int k = 0; k < 6; ++k) {
        sim.step(25);
        writer.write(sim);
        fnvs.push_back(ckpt::archStateFnv(sim));
    }
    ASSERT_EQ(writer.records(), 7u);

    // Restore every record of the chain into a fresh engine and check
    // the digest; continue from record 3 and it must match the
    // uninterrupted reference.
    for (size_t k = 0; k < fnvs.size(); ++k) {
        Interpreter fresh(nl);
        std::stringstream in(snap.str());
        EXPECT_EQ(ckpt::restoreSnapshotChain(
                      in, fresh, static_cast<int64_t>(k)),
                  k + 1);
        EXPECT_EQ(fresh.cycles(), k * 25);
        EXPECT_EQ(ckpt::archStateFnv(fresh), fnvs[k]) << "record " << k;
    }

    Interpreter resumed(nl);
    std::stringstream in(snap.str());
    ckpt::restoreSnapshotChain(in, resumed, 3);
    resumed.step(200 - 75);
    ref.step(200);
    EXPECT_EQ(regsDigest(resumed), regsDigest(ref));
    EXPECT_EQ(ckpt::archStateFnv(resumed), ckpt::archStateFnv(ref));
}

TEST(Snapshot, PortableAcrossEngines)
{
    Netlist nl = randomNetlist(21);

    // Save from par@8...
    rtl::ParallelInterpreter par(nl, 8);
    par.step(120);
    std::stringstream snap;
    core::saveCheckpoint(par, snap);
    uint64_t fnv = ckpt::archStateFnv(par);

    // ...restore into interp, cgen, and par@3 — all bit-identical,
    // before and after further stepping.
    std::vector<std::unique_ptr<core::SimEngine>> targets;
    targets.push_back(std::make_unique<Interpreter>(nl));
    targets.push_back(std::make_unique<rtl::CgenInterpreter>(nl));
    targets.push_back(
        std::make_unique<rtl::ParallelInterpreter>(nl, 3));
    par.step(40);
    for (auto &t : targets) {
        std::stringstream in(snap.str());
        core::restoreCheckpoint(*t, in);
        EXPECT_EQ(t->cycles(), 120u) << t->engineName();
        EXPECT_EQ(ckpt::archStateFnv(*t), fnv) << t->engineName();
        t->step(40);
        EXPECT_EQ(ckpt::archStateFnv(*t), ckpt::archStateFnv(par))
            << t->engineName();
    }
}

TEST(Snapshot, GangLanesRoundTrip)
{
    RandomNetlistConfig cfg;
    cfg.inputs = 2;
    Netlist nl = randomNetlist(33, cfg);

    Interpreter gang(nl, rtl::LowerOptions{}, 4);
    for (uint32_t l = 0; l < 4; ++l)
        gang.pokeLane(nl.input(0).name,
                      BitVec(nl.input(0).width, 0xa0 + l), l);
    gang.step(60);
    std::stringstream snap;
    core::saveCheckpoint(gang, snap);
    uint64_t fnv = ckpt::archStateFnv(gang);

    // A 4-lane par gang imports the 4-lane snapshot.
    rtl::ParConfig pcfg;
    pcfg.replicas = 4;
    rtl::ParallelInterpreter par(nl, 4, rtl::LowerOptions{}, pcfg);
    std::stringstream in(snap.str());
    core::restoreCheckpoint(par, in);
    EXPECT_EQ(ckpt::archStateFnv(par), fnv);
    gang.step(30);
    par.step(30);
    EXPECT_EQ(ckpt::archStateFnv(par), ckpt::archStateFnv(gang));

    // A scalar engine must reject the 4-lane snapshot.
    Interpreter scalar(nl);
    std::stringstream in2(snap.str());
    EXPECT_THROW(core::restoreCheckpoint(scalar, in2), FatalError);
}

TEST(Snapshot, CompressedSmallerThanRawBlob)
{
    // Acceptance: a v2 snapshot is at most half the raw v1 engine
    // blob on pico.
    Interpreter sim(designs::makePico(designs::defaultCoreConfig()));
    sim.step(500);
    std::stringstream v1, v2;
    core::saveCheckpointV1(sim, v1);
    core::saveCheckpoint(sim, v2);
    EXPECT_LE(v2.str().size() * 2, v1.str().size())
        << "v2 " << v2.str().size() << "B vs v1 " << v1.str().size()
        << "B";
}

TEST(Snapshot, RejectsCorruptTruncatedAndReordered)
{
    Interpreter sim(designs::makeSr(2));
    std::stringstream snap;
    ckpt::SnapshotWriter writer(snap, sim.netlist());
    writer.write(sim);
    sim.step(30);
    writer.write(sim);
    std::string blob = snap.str();

    // Flip one payload byte near the end.
    {
        std::string bad = blob;
        bad[bad.size() - 3] ^= 0x40;
        Interpreter fresh(designs::makeSr(2));
        std::stringstream in(bad);
        EXPECT_THROW(ckpt::restoreSnapshotChain(in, fresh), FatalError);
    }
    // Truncate mid-record.
    {
        Interpreter fresh(designs::makeSr(2));
        std::stringstream in(blob.substr(0, blob.size() - 7));
        EXPECT_THROW(ckpt::restoreSnapshotChain(in, fresh), FatalError);
    }
    // Ask for a record past the end of the chain.
    {
        Interpreter fresh(designs::makeSr(2));
        std::stringstream in(blob);
        EXPECT_THROW(ckpt::restoreSnapshotChain(in, fresh, 5),
                     FatalError);
    }
    // A delta record without its keyframe (drop record 0): the chain
    // must be rejected, not resolved against a zero base.
    {
        // Record 0 spans from the end of the 20-byte envelope to the
        // start of record 1; find record 1 by replaying the writer.
        std::stringstream firstOnly;
        Interpreter again(designs::makeSr(2));
        ckpt::SnapshotWriter w2(firstOnly, again.netlist());
        w2.write(again);
        size_t rec1At = firstOnly.str().size();
        std::string headless = blob.substr(0, 20) + blob.substr(rec1At);
        Interpreter fresh(designs::makeSr(2));
        std::stringstream in(headless);
        EXPECT_THROW(ckpt::restoreSnapshotChain(in, fresh), FatalError);
    }
}

// ---- Cross-version compatibility ---------------------------------------

TEST(CrossVersion, V0V1V2AllRestore)
{
    Netlist nl = designs::makeSr(2);
    Interpreter src(nl);
    src.step(80);
    std::string digest = regsDigest(src);

    std::stringstream v0, v1, v2;
    src.save(v0); // headerless raw blob
    core::saveCheckpointV1(src, v1);
    core::saveCheckpoint(src, v2);

    // v2 is the current default writer.
    {
        std::string blob = v2.str();
        uint32_t ver = 0;
        ASSERT_GE(blob.size(), 12u);
        memcpy(&ver, blob.data() + 8, sizeof(ver));
        EXPECT_EQ(ver, 2u);
    }

    for (std::stringstream *snap : {&v0, &v1, &v2}) {
        Interpreter dst(nl);
        core::restoreCheckpoint(dst, *snap);
        EXPECT_EQ(dst.cycles(), 80u);
        EXPECT_EQ(regsDigest(dst), digest);
        dst.step(25);
    }
}

// ---- Journal & deterministic replay -------------------------------------

namespace {

/** Drive a deterministic but non-trivial stimulus through a session:
 *  pokes, uneven steps, a mid-run reset, and periodic checkpoints into
 *  @p snaps. Every engine must end bit-identical after this. */
void
driveScript(core::SessionHandle &s, const Netlist &nl,
            std::ostream *snaps)
{
    std::unique_ptr<ckpt::SnapshotWriter> writer;
    if (snaps)
        writer = std::make_unique<ckpt::SnapshotWriter>(*snaps, nl);
    auto snapshot = [&]() {
        if (!writer)
            return;
        writer->write(s.engine());
        if (s.journal())
            s.journal()->recordSnapshot(writer->records() - 1,
                                        s.cycles());
    };
    uint32_t lanes = s.engine().replicas();
    snapshot(); // snapshot 0 at cycle 0
    s.step(17);
    if (nl.numInputs() > 0) {
        s.poke(nl.input(0).name, BitVec(nl.input(0).width, 0x5a5a));
        for (uint32_t l = 0; l < lanes; ++l)
            s.pokeLane(nl.input(0).name,
                       BitVec(nl.input(0).width, 0x100 + l), l);
    }
    s.step(40);
    snapshot(); // snapshot 1
    s.reset();
    s.step(23);
    if (nl.numInputs() > 1)
        s.poke(nl.input(1).name, BitVec(nl.input(1).width, 7));
    s.step(60);
    snapshot(); // snapshot 2 (after the reset)
    s.step(11);
}

} // namespace

TEST(Journal, ReplayIsBitIdenticalOnEveryEngine)
{
    RandomNetlistConfig cfg;
    cfg.inputs = 2;
    Netlist nl = randomNetlist(55, cfg);
    const uint32_t lanes = 8;

    auto makeGang = [&](const char *kind)
        -> std::unique_ptr<core::SimEngine> {
        if (std::string(kind) == "interp")
            return std::make_unique<Interpreter>(
                nl, rtl::LowerOptions{}, lanes);
        if (std::string(kind) == "cgen") {
            rtl::CgenOptions copt;
            copt.lanes = lanes;
            return std::make_unique<rtl::CgenInterpreter>(
                nl, rtl::LowerOptions{}, copt);
        }
        rtl::ParConfig pcfg;
        pcfg.replicas = lanes;
        return std::make_unique<rtl::ParallelInterpreter>(
            nl, 8, rtl::LowerOptions{}, pcfg);
    };

    // Record the run on the reference interpreter gang.
    std::stringstream journal, snaps;
    core::SessionHandle rec(makeGang("interp"), "fuzz55");
    ckpt::JournalWriter jw(journal, nl);
    rec.attachJournal(&jw);
    driveScript(rec, nl, &snaps);
    uint64_t finalFnv = ckpt::archStateFnv(rec.engine());

    // Replay from scratch on every engine kind: par@8 exercises the
    // 8-thread BSP path, cgen the generated kernels, all at gang R=8.
    for (const char *kind : {"interp", "cgen", "par"}) {
        auto engine = makeGang(kind);
        std::stringstream in(journal.str());
        ckpt::replayJournal(in, *engine);
        EXPECT_EQ(ckpt::archStateFnv(*engine), finalFnv)
            << kind << " replay-from-scratch";
    }

    // Restore snapshot k, replay the tail: identical final state —
    // including k=1, which resumes from *before* the reset, and k=2
    // after it.
    for (int64_t k = 0; k < 3; ++k) {
        for (const char *kind : {"interp", "par"}) {
            auto engine = makeGang(kind);
            std::stringstream sin(snaps.str());
            ckpt::restoreSnapshotChain(sin, *engine, k);
            std::stringstream jin(journal.str());
            ckpt::replayJournal(jin, *engine, k);
            EXPECT_EQ(ckpt::archStateFnv(*engine), finalFnv)
                << kind << " resume from snapshot " << k;
        }
    }
}

TEST(Journal, GoldenReplayChecksum)
{
    // The pico stimulus below must hash to the same value on every
    // platform and forever — the journal format, the packing order,
    // and the engines are all deterministic by construction. If this
    // value changes, a format or semantics change leaked in.
    Netlist nl = designs::makePico(designs::defaultCoreConfig());
    core::SessionHandle s(std::make_unique<Interpreter>(nl), "pico");
    std::stringstream journal;
    ckpt::JournalWriter jw(journal, nl);
    s.attachJournal(&jw);
    s.step(97);
    s.reset();
    s.step(201);

    uint64_t fnv = ckpt::archStateFnv(s.engine());
    Interpreter replayed(nl);
    std::stringstream in(journal.str());
    ckpt::replayJournal(in, replayed);
    EXPECT_EQ(ckpt::archStateFnv(replayed), fnv);
    // Golden digest (see above): update only with a format bump.
    EXPECT_EQ(fnv, 0xb09cf765b4858192ull);
}

TEST(Journal, RejectsWrongDesignAndCorruptStreams)
{
    Netlist nl = designs::makeSr(2);
    std::stringstream journal;
    ckpt::JournalWriter jw(journal, nl);
    jw.recordStep(10);

    // Wrong design.
    {
        Interpreter other(designs::makeSr(4));
        std::stringstream in(journal.str());
        EXPECT_THROW(ckpt::replayJournal(in, other), FatalError);
    }
    // Truncated mid-record.
    {
        std::string blob = journal.str();
        Interpreter eng(nl);
        std::stringstream in(blob.substr(0, blob.size() - 3));
        EXPECT_THROW(ckpt::replayJournal(in, eng), FatalError);
    }
    // Resume from a snapshot marker that is not in the journal.
    {
        Interpreter eng(nl);
        std::stringstream in(journal.str());
        EXPECT_THROW(ckpt::replayJournal(in, eng, 4), FatalError);
    }
}

// ---- Fuzz: interrupted == uninterrupted ---------------------------------

namespace {

struct FuzzCase
{
    uint64_t seed;
    const char *kind;
    uint32_t threads;
    uint32_t lanes;
};

class CkptFuzz : public ::testing::TestWithParam<FuzzCase>
{
};

} // namespace

TEST_P(CkptFuzz, SaveRestoreRunMatchesUninterrupted)
{
    const FuzzCase &fc = GetParam();
    RandomNetlistConfig cfg;
    cfg.inputs = 1;
    Netlist nl = randomNetlist(fc.seed, cfg);

    auto make = [&]() -> std::unique_ptr<core::SimEngine> {
        if (std::string(fc.kind) == "interp")
            return std::make_unique<Interpreter>(
                nl, rtl::LowerOptions{}, fc.lanes);
        if (std::string(fc.kind) == "cgen") {
            rtl::CgenOptions copt;
            copt.lanes = fc.lanes;
            return std::make_unique<rtl::CgenInterpreter>(
                nl, rtl::LowerOptions{}, copt);
        }
        rtl::ParConfig pcfg;
        pcfg.replicas = fc.lanes;
        return std::make_unique<rtl::ParallelInterpreter>(
            nl, fc.threads, rtl::LowerOptions{}, pcfg);
    };

    Rng rng(fc.seed ^ 0xabcdef);
    uint64_t before = 1 + rng.below(120);
    uint64_t after = 1 + rng.below(120);

    // Uninterrupted reference.
    auto ref = make();
    ref->step(before + after);

    // Interrupted: run, save, restore into a *fresh* engine, run on.
    auto a = make();
    a->step(before);
    std::stringstream snap;
    core::saveCheckpoint(*a, snap);
    auto b = make();
    core::restoreCheckpoint(*b, snap);
    b->step(after);

    EXPECT_EQ(ckpt::archStateFnv(*b), ckpt::archStateFnv(*ref))
        << fc.kind << " t" << fc.threads << " R" << fc.lanes
        << " seed " << fc.seed;
}

INSTANTIATE_TEST_SUITE_P(
    EnginesThreadsReplicas, CkptFuzz,
    ::testing::Values(FuzzCase{101, "interp", 0, 1},
                      FuzzCase{102, "interp", 0, 4},
                      FuzzCase{103, "cgen", 0, 1},
                      FuzzCase{104, "cgen", 0, 8},
                      FuzzCase{105, "par", 2, 1},
                      FuzzCase{106, "par", 8, 1},
                      FuzzCase{107, "par", 4, 4},
                      FuzzCase{108, "par", 8, 8}));
