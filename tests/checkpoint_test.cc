/**
 * @file
 * Checkpoint/restore tests: save mid-simulation, continue, restore,
 * and re-run — the continuation must be bit-identical; corrupted and
 * mismatched checkpoints must be rejected.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "core/compiler.hh"
#include "core/session.hh"
#include "designs/designs.hh"
#include "random_netlist.hh"
#include "rtl/interp.hh"
#include "util/logging.hh"

using namespace parendi;
using parendi::testing::randomNetlist;
using rtl::Interpreter;
using rtl::Netlist;

TEST(Checkpoint, InterpreterRoundTrip)
{
    Interpreter sim(designs::makeBitcoin({1, 16}));
    sim.step(77);
    std::stringstream snap;
    sim.save(snap);
    uint64_t cyc = sim.cycles();

    sim.step(53); // diverge
    rtl::BitVec later = sim.peekRegister("e0_a");

    std::stringstream snap2(snap.str());
    sim.restore(snap2);
    EXPECT_EQ(sim.cycles(), cyc);
    sim.step(53); // replay
    EXPECT_EQ(sim.peekRegister("e0_a"), later);
}

TEST(Checkpoint, RestoreIntoFreshInterpreter)
{
    Interpreter a(designs::makeSr(2));
    a.step(120);
    std::stringstream snap;
    a.save(snap);

    Interpreter b(designs::makeSr(2));
    b.restore(snap);
    EXPECT_EQ(b.cycles(), 120u);
    a.step(40);
    b.step(40);
    EXPECT_EQ(a.peek("tx_total"), b.peek("tx_total"));
    EXPECT_EQ(a.peek("rx_total"), b.peek("rx_total"));
}

TEST(Checkpoint, MachineRoundTrip)
{
    core::CompilerOptions opt;
    opt.chips = 2;
    opt.tilesPerChip = 24;
    auto sim = core::compile(designs::makeSr(2), opt);
    sim->step(60);
    std::stringstream snap;
    sim->machine().save(snap);
    sim->step(25);
    rtl::BitVec later = sim->machine().peek("rx_total");

    sim->machine().restore(snap);
    EXPECT_EQ(sim->machine().cycles(), 60u);
    sim->step(25);
    EXPECT_EQ(sim->machine().peek("rx_total"), later);
}

TEST(Checkpoint, MachineAgreesWithInterpreterAfterRestore)
{
    Netlist nl = randomNetlist(99);
    Interpreter ref(nl);
    core::CompilerOptions opt;
    opt.tilesPerChip = 12;
    auto sim = core::compile(std::move(nl), opt);
    sim->step(30);
    ref.step(30);
    std::stringstream snap;
    sim->machine().save(snap);
    sim->machine().restore(snap);
    sim->step(30);
    ref.step(30);
    const Netlist &n2 = ref.netlist();
    for (rtl::RegId r = 0; r < n2.numRegisters(); ++r)
        ASSERT_EQ(sim->machine().peekRegister(n2.reg(r).name),
                  ref.peekRegister(n2.reg(r).name));
}

TEST(Checkpoint, RejectsCorruptAndMismatched)
{
    Interpreter a(designs::makePrngBank(4));
    std::stringstream snap;
    a.save(snap);

    // Truncated stream.
    std::string full = snap.str();
    std::stringstream trunc(full.substr(0, full.size() / 2));
    EXPECT_THROW(a.restore(trunc), FatalError);

    // A checkpoint from a different design.
    Interpreter b(designs::makePrngBank(16));
    std::stringstream snap_a(full);
    EXPECT_THROW(b.restore(snap_a), FatalError);
}

// ---- Versioned checkpoint envelope (core/session.hh) ----

TEST(CheckpointEnvelope, HeaderedRoundTrip)
{
    Interpreter sim(designs::makeSr(2));
    sim.step(90);
    std::stringstream snap;
    core::saveCheckpoint(sim, snap);

    // The envelope leads with the magic, version and design hash.
    std::string blob = snap.str();
    ASSERT_GE(blob.size(), 20u);
    uint64_t magic;
    std::memcpy(&magic, blob.data(), sizeof(magic));
    EXPECT_EQ(magic, core::kCheckpointMagic);
    uint32_t version;
    std::memcpy(&version, blob.data() + 8, sizeof(version));
    EXPECT_EQ(version, core::kCheckpointVersion);
    uint64_t hash;
    std::memcpy(&hash, blob.data() + 12, sizeof(hash));
    EXPECT_EQ(hash, rtl::netlistHash(sim.netlist()));

    sim.step(33);
    rtl::BitVec later = sim.peek("tx_total");
    std::stringstream snap2(blob);
    core::restoreCheckpoint(sim, snap2);
    EXPECT_EQ(sim.cycles(), 90u);
    sim.step(33);
    EXPECT_EQ(sim.peek("tx_total"), later);
}

TEST(CheckpointEnvelope, AcceptsHeaderlessV0Blob)
{
    // A raw engine blob (the pre-envelope format) restores through
    // restoreCheckpoint via the rewind fallback.
    Interpreter a(designs::makeSr(2));
    a.step(55);
    std::stringstream raw;
    a.save(raw);

    Interpreter b(designs::makeSr(2));
    core::restoreCheckpoint(b, raw);
    EXPECT_EQ(b.cycles(), 55u);
    a.step(20);
    b.step(20);
    EXPECT_EQ(a.peek("tx_total"), b.peek("tx_total"));
}

TEST(CheckpointEnvelope, RejectsWrongDesignWithClearError)
{
    Interpreter a(designs::makeSr(2));
    std::stringstream snap;
    core::saveCheckpoint(a, snap);

    Interpreter b(designs::makeSr(4));
    std::stringstream snap2(snap.str());
    try {
        core::restoreCheckpoint(b, snap2);
        FAIL() << "mismatched design must be rejected";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("different design"),
                  std::string::npos);
    }
}

TEST(CheckpointEnvelope, RejectsUnknownVersion)
{
    Interpreter a(designs::makeSr(2));
    std::stringstream snap;
    core::saveCheckpoint(a, snap);
    std::string blob = snap.str();
    uint32_t future = core::kCheckpointVersion + 7;
    std::memcpy(blob.data() + 8, &future, sizeof(future));

    std::stringstream snap2(blob);
    try {
        core::restoreCheckpoint(a, snap2);
        FAIL() << "future version must be rejected";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST(CheckpointEnvelope, SessionHandleFacade)
{
    core::SessionHandle session(
        std::make_unique<Interpreter>(designs::makeSr(2)), "sr2");
    EXPECT_EQ(session.designName(), "sr2");
    EXPECT_EQ(session.designHash(),
              rtl::netlistHash(session.engine().netlist()));

    session.step(42);
    EXPECT_EQ(session.cycles(), 42u);
    std::stringstream snap;
    session.checkpoint(snap);
    session.step(13);
    rtl::BitVec later = session.engine().peek("rx_total");
    session.restore(snap);
    EXPECT_EQ(session.cycles(), 42u);
    session.step(13);
    EXPECT_EQ(session.engine().peek("rx_total"), later);
}
