/**
 * @file
 * Checkpoint/restore tests: save mid-simulation, continue, restore,
 * and re-run — the continuation must be bit-identical; corrupted and
 * mismatched checkpoints must be rejected.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/compiler.hh"
#include "designs/designs.hh"
#include "random_netlist.hh"
#include "rtl/interp.hh"
#include "util/logging.hh"

using namespace parendi;
using parendi::testing::randomNetlist;
using rtl::Interpreter;
using rtl::Netlist;

TEST(Checkpoint, InterpreterRoundTrip)
{
    Interpreter sim(designs::makeBitcoin({1, 16}));
    sim.step(77);
    std::stringstream snap;
    sim.save(snap);
    uint64_t cyc = sim.cycles();

    sim.step(53); // diverge
    rtl::BitVec later = sim.peekRegister("e0_a");

    std::stringstream snap2(snap.str());
    sim.restore(snap2);
    EXPECT_EQ(sim.cycles(), cyc);
    sim.step(53); // replay
    EXPECT_EQ(sim.peekRegister("e0_a"), later);
}

TEST(Checkpoint, RestoreIntoFreshInterpreter)
{
    Interpreter a(designs::makeSr(2));
    a.step(120);
    std::stringstream snap;
    a.save(snap);

    Interpreter b(designs::makeSr(2));
    b.restore(snap);
    EXPECT_EQ(b.cycles(), 120u);
    a.step(40);
    b.step(40);
    EXPECT_EQ(a.peek("tx_total"), b.peek("tx_total"));
    EXPECT_EQ(a.peek("rx_total"), b.peek("rx_total"));
}

TEST(Checkpoint, MachineRoundTrip)
{
    core::CompilerOptions opt;
    opt.chips = 2;
    opt.tilesPerChip = 24;
    auto sim = core::compile(designs::makeSr(2), opt);
    sim->step(60);
    std::stringstream snap;
    sim->machine().save(snap);
    sim->step(25);
    rtl::BitVec later = sim->machine().peek("rx_total");

    sim->machine().restore(snap);
    EXPECT_EQ(sim->machine().cycles(), 60u);
    sim->step(25);
    EXPECT_EQ(sim->machine().peek("rx_total"), later);
}

TEST(Checkpoint, MachineAgreesWithInterpreterAfterRestore)
{
    Netlist nl = randomNetlist(99);
    Interpreter ref(nl);
    core::CompilerOptions opt;
    opt.tilesPerChip = 12;
    auto sim = core::compile(std::move(nl), opt);
    sim->step(30);
    ref.step(30);
    std::stringstream snap;
    sim->machine().save(snap);
    sim->machine().restore(snap);
    sim->step(30);
    ref.step(30);
    const Netlist &n2 = ref.netlist();
    for (rtl::RegId r = 0; r < n2.numRegisters(); ++r)
        ASSERT_EQ(sim->machine().peekRegister(n2.reg(r).name),
                  ref.peekRegister(n2.reg(r).name));
}

TEST(Checkpoint, RejectsCorruptAndMismatched)
{
    Interpreter a(designs::makePrngBank(4));
    std::stringstream snap;
    a.save(snap);

    // Truncated stream.
    std::string full = snap.str();
    std::stringstream trunc(full.substr(0, full.size() / 2));
    EXPECT_THROW(a.restore(trunc), FatalError);

    // A checkpoint from a different design.
    Interpreter b(designs::makePrngBank(16));
    std::stringstream snap_a(full);
    EXPECT_THROW(b.restore(snap_a), FatalError);
}
