/**
 * @file
 * Sanity tests for the Verilator-on-x86 performance model: the
 * qualitative behaviours the paper measures (sync collapse on small
 * designs, cache-capacity superlinearity, chiplet/socket boundary
 * penalties) must emerge from the model.
 */

#include <gtest/gtest.h>

#include "designs/designs.hh"
#include "fiber/fiber.hh"
#include "util/logging.hh"
#include "x86/model.hh"

using namespace parendi;
using namespace parendi::x86;
using fiber::FiberSet;

namespace {

DesignProfile
profileOf(rtl::Netlist nl)
{
    FiberSet fs(nl);
    return profileDesign(fs);
}

} // namespace

TEST(X86Arch, MachineShapes)
{
    X86Arch ix3 = X86Arch::ix3();
    X86Arch ae4 = X86Arch::ae4();
    EXPECT_EQ(ix3.totalCores(), 56u);
    EXPECT_EQ(ae4.totalCores(), 128u);
    EXPECT_EQ(ix3.coresPerChiplet, ix3.coresPerSocket); // monolithic
    EXPECT_LT(ae4.coresPerChiplet, ae4.coresPerSocket); // chiplets
}

TEST(X86Model, SingleThreadHasNoParallelCosts)
{
    DesignProfile p = profileOf(designs::makeSr(2));
    X86Perf perf = modelVerilator(X86Arch::ix3(), p, 1);
    EXPECT_EQ(perf.tSyncNs, 0.0);
    EXPECT_EQ(perf.tCommNs, 0.0);
    EXPECT_GT(perf.tCompNs, 0.0);
    EXPECT_GT(perf.rateKHz(), 0.0);
}

TEST(X86Model, SyncGrowsWithThreads)
{
    DesignProfile p = profileOf(designs::makeSr(2));
    X86Arch arch = X86Arch::ix3();
    double prev = 0;
    for (uint32_t t : {2u, 8u, 32u, 56u}) {
        X86Perf perf = modelVerilator(arch, p, t);
        EXPECT_GT(perf.tSyncNs, prev);
        prev = perf.tSyncNs;
    }
}

TEST(X86Model, SmallDesignsStopScaling)
{
    // Paper Fig. 8: for a tiny design the sync cost swamps the gains.
    DesignProfile tiny = profileOf(designs::makePrngBank(64));
    X86Arch arch = X86Arch::ix3();
    double t1 = modelVerilator(arch, tiny, 1).totalNs();
    double t32 = modelVerilator(arch, tiny, 32).totalNs();
    EXPECT_GT(t32, t1) << "a 64-PRNG bank must not profit from 32 "
                          "threads";
    BestThreads best = bestVerilator(arch, tiny);
    EXPECT_LE(best.threads, 4u);
}

TEST(X86Model, LargeDesignsScaleWell)
{
    DesignProfile big = profileOf(designs::makeSr(6));
    X86Arch arch = X86Arch::ix3();
    double t1 = modelVerilator(arch, big, 1).totalNs();
    BestThreads best = bestVerilator(arch, big);
    EXPECT_GE(best.threads, 8u);
    EXPECT_GT(t1 / best.perf.totalNs(), 4.0);
}

TEST(X86Model, CacheFactorShrinksWithThreads)
{
    // Per-thread working sets shrink with more threads, producing the
    // (super)linear region of paper Fig. 10.
    DesignProfile big = profileOf(designs::makeSr(6));
    X86Arch arch = X86Arch::ae4();
    double f1 = modelVerilator(arch, big, 1).cacheFactor;
    double f16 = modelVerilator(arch, big, 16).cacheFactor;
    EXPECT_GT(f1, f16);
    EXPECT_GE(f16, 1.0);
}

TEST(X86Model, SuperlinearRegionExists)
{
    // Some thread count must beat perfect scaling vs 1 thread for a
    // design whose working set exceeds one core's caches.
    DesignProfile big = profileOf(designs::makeSr(8));
    X86Arch arch = X86Arch::ae4();
    double t1 = modelVerilator(arch, big, 1).totalNs();
    bool superlinear = false;
    for (uint32_t t = 2; t <= 16; t += 2) {
        double sp = t1 / modelVerilator(arch, big, t).totalNs();
        if (sp > t)
            superlinear = true;
    }
    EXPECT_TRUE(superlinear);
}

TEST(X86Model, BoundaryCrossingRaisesCommCost)
{
    DesignProfile big = profileOf(designs::makeSr(5));
    // ae4: staying inside one 8-core chiplet is cheap; spilling into
    // a second chiplet raises the per-line cost.
    X86Arch ae4 = X86Arch::ae4();
    X86Perf in_chiplet = modelVerilator(ae4, big, 8);
    X86Perf across = modelVerilator(ae4, big, 10);
    double per_line_in =
        in_chiplet.tCommNs * 8 / (1.0 - 1.0 / 8.0);
    double per_line_across =
        across.tCommNs * 10 / (1.0 - 1.0 / 10.0);
    EXPECT_GT(per_line_across, per_line_in);

    // ix3: crossing the socket at >28 threads.
    X86Arch ix3 = X86Arch::ix3();
    X86Perf in_socket = modelVerilator(ix3, big, 28);
    X86Perf cross_socket = modelVerilator(ix3, big, 30);
    double norm_in = in_socket.tCommNs * 28;
    double norm_cross = cross_socket.tCommNs * 30;
    EXPECT_GT(norm_cross, 1.5 * norm_in);
}

TEST(X86Model, ProfileCountsAreConsistent)
{
    rtl::Netlist nl = designs::makeBitcoin({2, 16});
    FiberSet fs(nl);
    DesignProfile p = profileDesign(fs);
    EXPECT_GT(p.totalInstrs, 0u);
    EXPECT_GT(p.codeBytes, 0u);
    EXPECT_GT(p.dataBytes, 0u);
    EXPECT_GT(p.commBytes, 0u);
    // Dedup'd total is at most the sum over fibers.
    uint64_t sum = 0;
    for (size_t i = 0; i < fs.size(); ++i)
        sum += fs[i].totalX86;
    EXPECT_LE(p.totalInstrs, sum);
    EXPECT_GE(p.maxFiberInstrs, 1u);
}

TEST(X86Model, LoweredProfileShrinksComputeTerms)
{
    rtl::Netlist nl = designs::makeBitcoin({2, 16});
    FiberSet fs(nl);
    DesignProfile generic = profileDesign(fs);
    DesignProfile lowered = profileDesign(fs, rtl::LowerOptions{});
    EXPECT_GT(lowered.evalInstrs, 0u);
    EXPECT_LT(lowered.loweredInstrs, lowered.evalInstrs)
        << "fusion found nothing to fuse in bitcoin";
    EXPECT_LT(lowered.totalInstrs, generic.totalInstrs);
    EXPECT_LT(lowered.codeBytes, generic.codeBytes);
    // Data/traffic terms describe state, not code: unchanged.
    EXPECT_EQ(lowered.dataBytes, generic.dataBytes);
    EXPECT_EQ(lowered.commBytes, generic.commBytes);

    // A no-op lowering must leave the profile untouched.
    DesignProfile nop = profileDesign(fs, rtl::LowerOptions::none());
    EXPECT_EQ(nop.totalInstrs, generic.totalInstrs);
    EXPECT_EQ(nop.evalInstrs, nop.loweredInstrs);
}

TEST(X86Model, RejectsBadThreadCounts)
{
    DesignProfile p = profileOf(designs::makePrngBank(4));
    EXPECT_THROW(modelVerilator(X86Arch::ix3(), p, 0), FatalError);
    EXPECT_THROW(modelVerilator(X86Arch::ix3(), p, 57), FatalError);
}
