/**
 * @file
 * An end-to-end "bring your own SoC in Verilog" test: a token-ring
 * SoC is described hierarchically in Verilog (a worker module
 * instantiated N times, connected in a ring), parsed, optimized,
 * partitioned, and executed on the simulated IPU — checked cycle by
 * cycle against the reference interpreter and against an analytic
 * model of the ring.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/compiler.hh"
#include "frontend/verilog.hh"
#include "rtl/interp.hh"

using namespace parendi;
using frontend::parseVerilog;
using rtl::Interpreter;
using rtl::Netlist;

namespace {

/** Generate Verilog for an N-node token ring of accumulators. Each
 *  node adds its id to the token when it holds it and forwards it. */
std::string
ringVerilog(unsigned n)
{
    std::ostringstream v;
    v << R"(
module worker(input clk, input [15:0] tok_in, input vld_in,
              input [7:0] my_id, output [15:0] tok_out,
              output vld_out, output [31:0] work_count);
  reg [15:0] tok = 0;
  reg vld = 0;
  reg [31:0] count = 0;
  assign tok_out = tok;
  assign vld_out = vld;
  assign work_count = count;
  always @(posedge clk) begin
    vld <= vld_in;
    tok <= tok_in + {8'd0, my_id};
    if (vld_in)
      count <= count + 32'd1;
  end
endmodule

module top(input clk, output [15:0] token, output [31:0] total);
)";
    // A generator node injects a valid token once at startup.
    v << "  reg started = 0;\n";
    v << "  always @(posedge clk) started <= 1'd1;\n";
    for (unsigned i = 0; i < n; ++i) {
        v << "  wire [15:0] t" << i << ";\n";
        v << "  wire v" << i << ";\n";
        v << "  wire [31:0] c" << i << ";\n";
    }
    for (unsigned i = 0; i < n; ++i) {
        unsigned prev = (i + n - 1) % n;
        v << "  worker w" << i << "(.clk(clk), ";
        if (i == 0) {
            // Node 0 receives from the tail, with the startup pulse
            // ORed into valid.
            v << ".tok_in(t" << prev << "), .vld_in(v" << prev
              << " | !started), ";
        } else {
            v << ".tok_in(t" << prev << "), .vld_in(v" << prev
              << "), ";
        }
        v << ".my_id(8'd" << (i + 1) << "), .tok_out(t" << i
          << "), .vld_out(v" << i << "), .work_count(c" << i
          << "));\n";
    }
    v << "  assign token = t" << (n - 1) << ";\n";
    v << "  assign total = ";
    for (unsigned i = 0; i < n; ++i)
        v << (i ? " + " : "") << "c" << i;
    v << ";\n";
    v << "endmodule\n";
    return v.str();
}

} // namespace

class VerilogSoc : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(VerilogSoc, RingCompilesAndRunsOnIpu)
{
    unsigned n = GetParam();
    Netlist nl = parseVerilog(ringVerilog(n));
    EXPECT_EQ(nl.numRegisters(), 3 * n + 1);

    Interpreter ref(nl);
    core::CompilerOptions opt;
    opt.chips = n >= 6 ? 2 : 1;
    opt.tilesPerChip = 16;
    auto sim = core::compile(std::move(nl), opt);

    uint64_t cycles = 6 * n;
    for (uint64_t c = 0; c < cycles; ++c) {
        sim->step();
        ref.step();
        ASSERT_EQ(sim->machine().peek("token"), ref.peek("token"))
            << "cycle " << c;
        ASSERT_EQ(sim->machine().peek("total"), ref.peek("total"));
    }

    // Analytic check: the startup pulse is high until `started`
    // latches, so a burst of valid tokens circulates; each node's
    // count grows by one per lap of each token in the burst. At
    // minimum, after k laps the total is >= n (every node worked).
    EXPECT_GE(sim->machine().peek("total").toUint64(),
              static_cast<uint64_t>(n));
    // The token accumulates node ids as it travels: it is never zero
    // once the ring is warm.
    EXPECT_GT(sim->machine().peek("token").toUint64(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Rings, VerilogSoc,
                         ::testing::Values(2u, 4u, 8u, 12u));

TEST(VerilogSoc, ScalesToManyInstances)
{
    // 32 workers: exercises the flattener at a realistic scale.
    Netlist nl = parseVerilog(ringVerilog(32));
    EXPECT_EQ(nl.numRegisters(), 97u);
    core::CompilerOptions opt;
    opt.tilesPerChip = 64;
    auto sim = core::compile(std::move(nl), opt);
    EXPECT_GT(sim->report().fibers, 96u);
    sim->step(100);
    EXPECT_GT(sim->machine().peek("total").toUint64(), 0u);
}
