/**
 * @file
 * Golden-checksum regression for the design generators: every
 * generator in src/designs/ is simulated for a fixed number of cycles
 * and an FNV-1a digest of all architectural state (registers, outputs,
 * memories) is compared against a locked constant. The digest is
 * computed with both the fused and the fully generic interpreter, so
 * this doubles as an end-to-end differential for the lowering stage —
 * and it pins the generators themselves: an accidental change to any
 * design's behaviour shows up as a checksum mismatch even if every
 * engine still agrees with every other engine.
 *
 * If a change is *intentional*, regenerate the constants:
 *   ./build/tests/golden_checksum_test --gtest_also_run_disabled_tests \
 *       --gtest_filter='*PrintChecksums*'
 * and paste the printed table below.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "designs/designs.hh"
#include "rtl/cgen.hh"
#include "rtl/interp.hh"

using namespace parendi;
using rtl::BitVec;
using rtl::Interpreter;
using rtl::Netlist;

namespace {

constexpr int kCycles = 64;

void
fnv(uint64_t &h, uint64_t v)
{
    // 64-bit FNV-1a, one byte at a time so word boundaries matter.
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
}

void
fnvBits(uint64_t &h, const BitVec &v)
{
    fnv(h, v.width());
    for (uint64_t w : v.words())
        fnv(h, w);
}

uint64_t
stateChecksum(const Interpreter &in)
{
    uint64_t h = 0xcbf29ce484222325ull;
    const Netlist &nl = in.netlist();
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r)
        fnvBits(h, in.peekRegister(nl.reg(r).name));
    for (rtl::PortId o = 0; o < nl.numOutputs(); ++o)
        fnvBits(h, in.peek(nl.output(o).name));
    for (rtl::MemId m = 0; m < nl.numMemories(); ++m)
        for (uint32_t e = 0; e < nl.mem(m).depth; ++e)
            fnvBits(h, in.peekMemory(nl.mem(m).name, e));
    return h;
}

uint64_t
runChecksum(Netlist nl, const rtl::LowerOptions &lower)
{
    Interpreter in(std::move(nl), lower);
    in.step(kCycles);
    return stateChecksum(in);
}

struct GoldenCase
{
    const char *name;
    Netlist (*make)();
    uint64_t checksum;
};

Netlist mkPrng() { return designs::makePrngBank(8); }
Netlist mkPico() { return designs::makePico(designs::defaultCoreConfig()); }
Netlist mkRocket() { return designs::makeRocket(designs::defaultCoreConfig()); }
Netlist mkBitcoin() { return designs::makeBitcoin({2, 16}); }
Netlist mkMc() { return designs::makeMc({8, 16, 100 << 16, 105 << 16}); }
Netlist mkVta() { return designs::makeVta({4, 4, 16}); }
Netlist mkSr2() { return designs::makeSr(2); }
Netlist mkLr2() { return designs::makeLr(2); }

// Locked digests of every generator after kCycles cycles. These are
// load-bearing constants: regenerate only for an intentional design
// change (see the file comment).
const GoldenCase kGolden[] = {
    {"prng", mkPrng, 0x1adbfd743283df17ull},
    {"pico", mkPico, 0x5edad94a04f31f50ull},
    {"rocket", mkRocket, 0xb6392d936379d6aeull},
    {"bitcoin", mkBitcoin, 0x62c55e4cf2923964ull},
    {"mc", mkMc, 0xd2f35656f12e1f5full},
    {"vta", mkVta, 0x4a06737291df9594ull},
    {"sr2", mkSr2, 0x3ea0bf0f8c240ea4ull},
    {"lr2", mkLr2, 0x221ea09d5372ae40ull},
};

} // namespace

class GoldenChecksum : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenChecksum, FusedInterpreterMatchesLockedValue)
{
    const GoldenCase &c = GetParam();
    uint64_t got = runChecksum(c.make(), rtl::LowerOptions{});
    EXPECT_EQ(got, c.checksum)
        << c.name << ": fused checksum 0x" << std::hex << got;
}

TEST_P(GoldenChecksum, GenericInterpreterMatchesLockedValue)
{
    const GoldenCase &c = GetParam();
    uint64_t got = runChecksum(c.make(), rtl::LowerOptions::none());
    EXPECT_EQ(got, c.checksum)
        << c.name << ": generic checksum 0x" << std::hex << got;
}

TEST_P(GoldenChecksum, CgenEngineMatchesLockedValue)
{
    // The JIT-compiled engine must reproduce the same locked digest as
    // both interpreters. (Native execution is asserted so a silently
    // broken toolchain cannot pass by falling back.)
    const GoldenCase &c = GetParam();
    rtl::CgenInterpreter in(c.make());
    ASSERT_TRUE(in.native()) << c.name << ": JIT unavailable";
    in.step(kCycles);
    uint64_t got = stateChecksum(in);
    EXPECT_EQ(got, c.checksum)
        << c.name << ": cgen checksum 0x" << std::hex << got;
}

INSTANTIATE_TEST_SUITE_P(Designs, GoldenChecksum,
                         ::testing::ValuesIn(kGolden),
                         [](const ::testing::TestParamInfo<GoldenCase> &i) {
                             return std::string(i.param.name);
                         });

// Regeneration helper, excluded from normal runs (see file comment).
TEST(GoldenChecksumTool, DISABLED_PrintChecksums)
{
    for (const GoldenCase &c : kGolden)
        std::printf("    {\"%s\", mk?, 0x%016llxull},\n", c.name,
                    static_cast<unsigned long long>(
                        runChecksum(c.make(), rtl::LowerOptions{})));
}
