/**
 * @file
 * Tests for the PNL textual frontend: parsing, error reporting, and
 * the serialize/parse round trip preserving simulation behaviour.
 */

#include <gtest/gtest.h>

#include "designs/designs.hh"
#include "frontend/pnl.hh"
#include "rtl/dsl.hh"
#include "rtl/interp.hh"
#include "util/logging.hh"

using namespace parendi;
using namespace parendi::rtl;
using parendi::frontend::parsePnl;
using parendi::frontend::writePnl;

namespace {

const char *kCounter = R"(
pnl 1
design counter
reg cnt 32 0
%en = input en 1
%c  = regread cnt
%one = const 32 1
%sum = add %c %one
%nxt = mux %en %sum %c
regnext cnt %nxt
output value %c
)";

} // namespace

TEST(Pnl, ParsesCounter)
{
    Netlist nl = parsePnl(kCounter);
    EXPECT_EQ(nl.name(), "counter");
    ASSERT_EQ(nl.numRegisters(), 1u);
    EXPECT_EQ(nl.reg(0).name, "cnt");
    Interpreter in(nl);
    in.poke("en", uint64_t{1});
    in.step(5);
    EXPECT_EQ(in.peek("value").toUint64(), 5u);
    in.poke("en", uint64_t{0});
    in.step(5);
    EXPECT_EQ(in.peek("value").toUint64(), 5u);
}

TEST(Pnl, MemoryAndInit)
{
    const char *text = R"(
pnl 1
design memo
mem tbl 16 8
meminit tbl 2 beef
reg idx 3 0
%i = regread idx
%one = const 3 1
%nx = add %i %one
regnext idx %nx
%val = memread tbl %i
output val %val
)";
    Netlist nl = parsePnl(text);
    Interpreter in(nl);
    in.step(2); // idx now 2
    EXPECT_EQ(in.peek("val").toUint64(), 0xbeefu);
}

TEST(Pnl, Errors)
{
    EXPECT_THROW(parsePnl(""), FatalError);
    EXPECT_THROW(parsePnl("pnl 2\n"), FatalError);
    EXPECT_THROW(parsePnl("pnl 1\n%a = bogus %b\n"), FatalError);
    EXPECT_THROW(parsePnl("pnl 1\n%a = add %x %y\n"), FatalError);
    EXPECT_THROW(parsePnl("pnl 1\nreg r 8 0\nregnext q %v\n"),
                 FatalError);
    EXPECT_THROW(parsePnl("pnl 1\n%a = const 8 1\n%a = const 8 2\n"),
                 FatalError);
    // Undriven register fails final check.
    EXPECT_THROW(parsePnl("pnl 1\nreg r 8 0\n"), FatalError);
}

TEST(Pnl, RoundTripPreservesBehaviour)
{
    Netlist nl = parsePnl(kCounter);
    std::string text = writePnl(nl);
    Netlist nl2 = parsePnl(text);
    Interpreter a(nl), b(nl2);
    a.poke("en", uint64_t{1});
    b.poke("en", uint64_t{1});
    a.step(7);
    b.step(7);
    EXPECT_EQ(a.peek("value"), b.peek("value"));
}

TEST(Pnl, RoundTripRealDesign)
{
    // Serialize a nontrivial generated design and re-simulate it.
    Netlist nl = designs::makeBitcoin({1, 16});
    std::string text = writePnl(nl);
    Netlist nl2 = parsePnl(text);
    EXPECT_EQ(nl2.numRegisters(), nl.numRegisters());
    Interpreter a(nl), b(nl2);
    a.step(140);
    b.step(140);
    EXPECT_EQ(a.peek("dig0"), b.peek("dig0"));
    EXPECT_EQ(a.peek("nonce0"), b.peek("nonce0"));
}

TEST(Pnl, FileRoundTrip)
{
    Netlist nl = parsePnl(kCounter);
    std::string path = ::testing::TempDir() + "/counter.pnl";
    frontend::writePnlFile(nl, path);
    Netlist nl2 = frontend::parsePnlFile(path);
    EXPECT_EQ(nl2.name(), "counter");
    EXPECT_THROW(frontend::parsePnlFile("/no/such/file.pnl"),
                 FatalError);
}
