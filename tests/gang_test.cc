/**
 * @file
 * Gang simulation (--replicas N) tests: an R-lane engine must behave
 * as R fully independent instances of the design. Every lane is
 * differentially fuzzed against its own scalar reference interpreter
 * under distinct per-lane stimuli (random netlists with colliding
 * write ports included), lane writes must never leak into other lanes,
 * the scalar API must keep broadcast/lane-0 semantics, and gang state
 * must survive reset and checkpoint/restore. Covered engines: the
 * gang interpreter (the gather/scatter correctness path), the
 * lane-vectorized cgen kernels, and the sharded parallel engine.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "designs/designs.hh"
#include "random_netlist.hh"
#include "rtl/cgen.hh"
#include "rtl/interp.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "x86/parallel.hh"

using namespace parendi;
using parendi::testing::randomNetlist;
using parendi::testing::RandomNetlistConfig;
using rtl::BitVec;
using rtl::CgenInterpreter;
using rtl::CgenOptions;
using rtl::Interpreter;
using rtl::Netlist;

namespace {

RandomNetlistConfig
gangFuzzConfig()
{
    // Inputs for per-lane stimuli; wide values and several memories so
    // the multi-word strided paths and colliding write ports are hit.
    RandomNetlistConfig cfg;
    cfg.inputs = 4;
    cfg.maxWidth = 160;
    cfg.memories = 3;
    return cfg;
}

/** Compare one lane of @p gang against a scalar reference engine:
 *  every register, output and memory entry. */
void
compareLane(const core::SimEngine &gang, const core::SimEngine &ref,
            uint32_t lane, const char *what)
{
    const Netlist &nl = gang.netlist();
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r) {
        const std::string &name = nl.reg(r).name;
        ASSERT_EQ(gang.peekRegisterLane(name, lane),
                  ref.peekRegister(name))
            << what << ": lane " << lane << " reg " << name;
    }
    for (rtl::PortId o = 0; o < nl.numOutputs(); ++o) {
        const std::string &name = nl.output(o).name;
        ASSERT_EQ(gang.peekLane(name, lane), ref.peek(name))
            << what << ": lane " << lane << " output " << name;
    }
    for (rtl::MemId m = 0; m < nl.numMemories(); ++m) {
        const rtl::Memory &mem = nl.mem(m);
        for (uint32_t e = 0; e < mem.depth; ++e)
            ASSERT_EQ(gang.peekMemoryLane(mem.name, e, lane),
                      ref.peekMemory(mem.name, e))
                << what << ": lane " << lane << " " << mem.name << "["
                << e << "]";
    }
}

/**
 * The core differential: step @p gang (R lanes) in lock-step with R
 * independent reference interpreters, driving DISTINCT per-lane input
 * values each poke round, and require every lane bit-identical to its
 * own reference at every checkpoint.
 */
void
checkLaneIsolation(const Netlist &nl, core::SimEngine &gang,
                   int cycles, int checkEvery, uint64_t seed,
                   const char *what)
{
    const uint32_t lanes = gang.replicas();
    std::vector<std::unique_ptr<Interpreter>> refs;
    for (uint32_t l = 0; l < lanes; ++l)
        refs.push_back(std::make_unique<Interpreter>(
            nl, rtl::LowerOptions::none()));

    Rng rng(seed);
    for (int c = 0; c < cycles; ++c) {
        if (c % 3 == 0 && nl.numInputs() > 0) {
            // One input, a different value per lane.
            rtl::PortId in = static_cast<rtl::PortId>(
                rng.below(nl.numInputs()));
            const std::string &name = nl.input(in).name;
            uint16_t w = nl.input(in).width;
            for (uint32_t l = 0; l < lanes; ++l) {
                BitVec v(w, rng.next() + l * 0x9e37ull);
                gang.pokeLane(name, v, l);
                refs[l]->poke(name, v);
            }
        }
        gang.step(1);
        for (uint32_t l = 0; l < lanes; ++l)
            refs[l]->step(1);
        if (c % checkEvery != checkEvery - 1 && c != cycles - 1)
            continue;
        for (uint32_t l = 0; l < lanes; ++l)
            compareLane(gang, *refs[l], l, what);
    }
}

} // namespace

// -- Per-lane differential fuzz ------------------------------------------

class GangFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(GangFuzz, InterpreterLanesMatchIndependentReferences)
{
    Netlist nl = randomNetlist(GetParam(), gangFuzzConfig());
    Interpreter gang(nl, rtl::LowerOptions{}, 4);
    checkLaneIsolation(nl, gang, 24, 8, GetParam() * 31 + 7,
                       "gang interp");
}

TEST_P(GangFuzz, CgenLanesMatchIndependentReferences)
{
    uint64_t seed = GetParam();
    if (seed % 2)
        return; // subsample: one JIT compile per seed
    Netlist nl = randomNetlist(seed, gangFuzzConfig());
    CgenOptions copt;
    copt.lanes = 4;
    CgenInterpreter gang(nl, rtl::LowerOptions{}, copt);
    ASSERT_TRUE(gang.native()) << "JIT unavailable in test environment";
    ASSERT_EQ(gang.replicas(), 4u);
    checkLaneIsolation(nl, gang, 24, 8, seed * 131 + 3, "gang cgen");
}

INSTANTIATE_TEST_SUITE_P(Seeds, GangFuzz,
                         ::testing::Range<uint64_t>(1, 7));

TEST(Gang, ParallelEngineLanesMatchIndependentReferences)
{
    Netlist nl = randomNetlist(5, gangFuzzConfig());
    rtl::ParConfig pcfg;
    pcfg.maxWorkers = 4;
    pcfg.replicas = 4;
    rtl::ParallelInterpreter gang(nl, 4, rtl::LowerOptions{}, pcfg);
    ASSERT_GE(gang.numShards(), 2u);
    ASSERT_EQ(gang.replicas(), 4u);
    checkLaneIsolation(nl, gang, 24, 8, 0xabcdef, "gang par");
}

TEST(Gang, ParallelEngineWithNativeKernelsLanesMatch)
{
    Netlist nl = randomNetlist(9, gangFuzzConfig());
    rtl::ParConfig pcfg;
    pcfg.maxWorkers = 4;
    pcfg.replicas = 4;
    rtl::ParallelInterpreter gang(nl, 4, rtl::LowerOptions{}, pcfg);
    ASSERT_EQ(gang.enableNativeKernels(), gang.numShards());
    checkLaneIsolation(nl, gang, 24, 8, 0x5eed5, "gang par-cgen");
}

// -- Lane isolation under targeted writes --------------------------------

TEST(Gang, PokeOneLaneDoesNotDisturbOthers)
{
    Netlist nl = randomNetlist(2, gangFuzzConfig());
    Interpreter gang(nl, rtl::LowerOptions{}, 8);
    gang.step(5);

    // Snapshot every lane's observable state.
    const std::string in = nl.input(0).name;
    std::vector<std::vector<BitVec>> before(8);
    for (uint32_t l = 0; l < 8; ++l) {
        for (rtl::PortId o = 0; o < nl.numOutputs(); ++o)
            before[l].push_back(gang.peekLane(nl.output(o).name, l));
        for (rtl::RegId r = 0; r < nl.numRegisters(); ++r)
            before[l].push_back(
                gang.peekRegisterLane(nl.reg(r).name, l));
    }

    // Poke only lane 3; without a clock edge, no other lane's state
    // or outputs may move.
    gang.pokeLane(in, BitVec(nl.input(0).width, 0x1234abcdull), 3);
    for (uint32_t l = 0; l < 8; ++l) {
        if (l == 3)
            continue;
        size_t k = 0;
        for (rtl::PortId o = 0; o < nl.numOutputs(); ++o)
            ASSERT_EQ(gang.peekLane(nl.output(o).name, l),
                      before[l][k++])
                << "lane " << l << " output moved on a lane-3 poke";
        for (rtl::RegId r = 0; r < nl.numRegisters(); ++r)
            ASSERT_EQ(gang.peekRegisterLane(nl.reg(r).name, l),
                      before[l][k++])
                << "lane " << l << " reg moved on a lane-3 poke";
    }
}

TEST(Gang, ScalarPokeBroadcastsAndScalarPeekReadsLaneZero)
{
    // Under identical (scalar) stimuli a gang run must reproduce the
    // scalar run bit-for-bit in EVERY lane — existing harnesses keep
    // working unchanged on gang engines.
    Netlist nl = randomNetlist(4, gangFuzzConfig());
    Interpreter scalar(nl);
    Interpreter gang(nl, rtl::LowerOptions{}, 4);
    const std::string in = nl.input(0).name;
    Rng rng(77);
    for (int c = 0; c < 20; ++c) {
        BitVec v(nl.input(0).width, rng.next());
        scalar.poke(in, v);
        gang.poke(in, v); // broadcast
        scalar.step(1);
        gang.step(1);
    }
    for (rtl::PortId o = 0; o < nl.numOutputs(); ++o) {
        const std::string &name = nl.output(o).name;
        BitVec expect = scalar.peek(name);
        EXPECT_EQ(gang.peek(name), expect) << name; // lane-0 read
        for (uint32_t l = 0; l < 4; ++l)
            EXPECT_EQ(gang.peekLane(name, l), expect)
                << name << " lane " << l;
    }
}

TEST(Gang, LaneIndexOutOfRangeIsFatal)
{
    Netlist nl = randomNetlist(1, gangFuzzConfig());
    Interpreter gang(nl, rtl::LowerOptions{}, 2);
    EXPECT_THROW(gang.peekLane(nl.output(0).name, 2), FatalError);
    EXPECT_THROW(
        gang.pokeLane(nl.input(0).name, BitVec(nl.input(0).width, 1), 5),
        FatalError);
}

// -- Reset and checkpoint survival ---------------------------------------

TEST(Gang, StateSurvivesResetAndCheckpoint)
{
    Netlist nl = randomNetlist(6, gangFuzzConfig());
    Interpreter gang(nl, rtl::LowerOptions{}, 4);
    const std::string in = nl.input(0).name;

    // Diverge the lanes, checkpoint, run on, restore: every lane must
    // come back to its own diverged state.
    for (uint32_t l = 0; l < 4; ++l)
        gang.pokeLane(in, BitVec(nl.input(0).width, 0x100 + l), l);
    gang.step(10);

    std::vector<BitVec> at10;
    for (uint32_t l = 0; l < 4; ++l)
        for (rtl::PortId o = 0; o < nl.numOutputs(); ++o)
            at10.push_back(gang.peekLane(nl.output(o).name, l));

    std::stringstream ckpt;
    gang.save(ckpt);
    gang.step(9);
    gang.restore(ckpt);
    size_t k = 0;
    for (uint32_t l = 0; l < 4; ++l)
        for (rtl::PortId o = 0; o < nl.numOutputs(); ++o)
            ASSERT_EQ(gang.peekLane(nl.output(o).name, l), at10[k++])
                << "lane " << l << " after restore";

    // reset() must take every lane back to the common initial state.
    gang.reset();
    Interpreter fresh(nl, rtl::LowerOptions{}, 4);
    for (uint32_t l = 0; l < 4; ++l)
        for (rtl::PortId o = 0; o < nl.numOutputs(); ++o)
            ASSERT_EQ(gang.peekLane(nl.output(o).name, l),
                      fresh.peekLane(nl.output(o).name, l))
                << "lane " << l << " after reset";
}

TEST(Gang, CgenStateSurvivesResetAndCheckpoint)
{
    Netlist nl = randomNetlist(8, gangFuzzConfig());
    CgenOptions copt;
    copt.lanes = 4;
    CgenInterpreter gang(nl, rtl::LowerOptions{}, copt);
    ASSERT_TRUE(gang.native());
    const std::string in = nl.input(0).name;

    for (uint32_t l = 0; l < 4; ++l)
        gang.pokeLane(in, BitVec(nl.input(0).width, 0xbeef + l), l);
    gang.step(8);

    std::stringstream ckpt;
    gang.save(ckpt);
    std::vector<BitVec> snap;
    for (uint32_t l = 0; l < 4; ++l)
        for (rtl::RegId r = 0; r < nl.numRegisters(); ++r)
            snap.push_back(gang.peekRegisterLane(nl.reg(r).name, l));

    gang.step(6);
    gang.restore(ckpt);
    size_t k = 0;
    for (uint32_t l = 0; l < 4; ++l)
        for (rtl::RegId r = 0; r < nl.numRegisters(); ++r)
            ASSERT_EQ(gang.peekRegisterLane(nl.reg(r).name, l),
                      snap[k++])
                << "lane " << l << " after restore";

    // The native kernels must keep running correctly after the
    // restore reallocated lane storage.
    Interpreter ref(nl, rtl::LowerOptions::none(), 4);
    // Mirror the diverged pokes and history in the reference gang.
    for (uint32_t l = 0; l < 4; ++l)
        ref.pokeLane(in, BitVec(nl.input(0).width, 0xbeef + l), l);
    ref.step(8);
    gang.step(5);
    ref.step(5);
    for (uint32_t l = 0; l < 4; ++l)
        for (rtl::RegId r = 0; r < nl.numRegisters(); ++r)
            ASSERT_EQ(gang.peekRegisterLane(nl.reg(r).name, l),
                      ref.peekRegisterLane(nl.reg(r).name, l))
                << "lane " << l << " after restore + step";
}

TEST(Gang, ParallelCheckpointRoundTripsAllLanes)
{
    Netlist nl = randomNetlist(10, gangFuzzConfig());
    rtl::ParConfig pcfg;
    pcfg.maxWorkers = 4;
    pcfg.replicas = 4;
    rtl::ParallelInterpreter gang(nl, 4, rtl::LowerOptions{}, pcfg);
    const std::string in = nl.input(0).name;
    for (uint32_t l = 0; l < 4; ++l)
        gang.pokeLane(in, BitVec(nl.input(0).width, 0x40 + l), l);
    gang.step(7);

    std::stringstream ckpt;
    gang.save(ckpt);
    std::vector<BitVec> snap;
    for (uint32_t l = 0; l < 4; ++l)
        for (rtl::PortId o = 0; o < nl.numOutputs(); ++o)
            snap.push_back(gang.peekLane(nl.output(o).name, l));
    gang.step(4);
    gang.restore(ckpt);
    size_t k = 0;
    for (uint32_t l = 0; l < 4; ++l)
        for (rtl::PortId o = 0; o < nl.numOutputs(); ++o)
            ASSERT_EQ(gang.peekLane(nl.output(o).name, l), snap[k++])
                << "lane " << l << " after restore";
}

// -- Directed design sanity ----------------------------------------------

TEST(Gang, PicoGangMatchesScalarInEveryLane)
{
    Netlist nl = designs::makePico(designs::defaultCoreConfig());
    Interpreter scalar(nl);
    CgenOptions copt;
    copt.lanes = 8;
    CgenInterpreter gang(nl, rtl::LowerOptions{}, copt);
    ASSERT_TRUE(gang.native());
    scalar.step(300);
    gang.step(300);
    for (uint32_t l = 0; l < 8; ++l) {
        ASSERT_EQ(gang.peekLane("pc", l), scalar.peek("pc"))
            << "lane " << l;
        ASSERT_EQ(gang.peekLane("probe", l), scalar.peek("probe"))
            << "lane " << l;
    }
}

