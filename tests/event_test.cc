/**
 * @file
 * Tests for the event-driven interpreter: exact agreement with the
 * full-cycle interpreter on every design (differential testing of
 * two independently derived evaluation strategies), plus activity
 * accounting sanity — the basis of the paper's §3 argument.
 */

#include <gtest/gtest.h>

#include "designs/designs.hh"
#include "random_netlist.hh"
#include "rtl/event.hh"
#include "rtl/interp.hh"

using namespace parendi;
using namespace parendi::rtl;
using parendi::testing::randomNetlist;

namespace {

void
expectSameState(EventInterpreter &ev, Interpreter &full)
{
    const Netlist &nl = full.netlist();
    for (RegId r = 0; r < nl.numRegisters(); ++r)
        ASSERT_EQ(ev.peekRegister(nl.reg(r).name),
                  full.peekRegister(nl.reg(r).name))
            << nl.reg(r).name;
    for (PortId o = 0; o < nl.numOutputs(); ++o)
        ASSERT_EQ(ev.peek(nl.output(o).name),
                  full.peek(nl.output(o).name));
}

} // namespace

TEST(Event, CounterAgrees)
{
    Design d("c");
    auto cnt = d.reg("cnt", 32, 0);
    d.next(cnt, d.read(cnt) + d.lit(32, 1));
    d.output("v", d.read(cnt));
    Netlist nl = d.finish();
    Interpreter full(nl);
    EventInterpreter ev(std::move(nl));
    ev.step(100);
    full.step(100);
    expectSameState(ev, full);
}

TEST(Event, QuietDesignDoesAlmostNoWork)
{
    // A register that stops changing: after it saturates, activity
    // must drop to ~zero.
    Design d("sat");
    auto r = d.reg("r", 8, 250);
    Wire v = d.read(r);
    Wire top = v == d.lit(8, 255);
    d.next(r, d.mux(top, v, v + d.lit(8, 1)));
    d.output("o", v * v);
    Netlist nl = d.finish();
    EventInterpreter ev(std::move(nl));
    ev.step(5); // reaches 255
    uint64_t active_phase = ev.evaluatedNodes();
    ev.step(100); // saturated: nothing changes
    EXPECT_EQ(ev.evaluatedNodes(), active_phase);
    EXPECT_LT(ev.activityFactor(), 0.2);
}

TEST(Event, BusyDesignApproachesFullActivity)
{
    // A xorshift PRNG flips most bits every cycle.
    Netlist nl = designs::makePrngBank(4);
    EventInterpreter ev(std::move(nl));
    ev.step(50);
    EXPECT_GT(ev.activityFactor(), 0.8);
}

struct EventDesignCase
{
    const char *name;
    Netlist (*make)();
};

class EventDesigns : public ::testing::TestWithParam<EventDesignCase>
{
};

TEST_P(EventDesigns, AgreesWithFullCycle)
{
    Netlist nl = GetParam().make();
    Interpreter full(nl);
    EventInterpreter ev(std::move(nl));
    for (int chunk = 0; chunk < 4; ++chunk) {
        ev.step(60);
        full.step(60);
        expectSameState(ev, full);
    }
    EXPECT_GT(ev.activityFactor(), 0.0);
    EXPECT_LE(ev.activityFactor(), 1.0);
}

namespace {

Netlist makePicoE()
{
    return designs::makePico(designs::defaultCoreConfig());
}
Netlist makeRocketE()
{
    return designs::makeRocket(designs::defaultCoreConfig());
}
Netlist makeBtcE() { return designs::makeBitcoin({1, 16}); }
Netlist makeMcE() { return designs::makeMc({4, 16, 100 << 16,
                                            105 << 16}); }
Netlist makeVtaE() { return designs::makeVta({2, 2, 8}); }
Netlist makeSr2E() { return designs::makeSr(2); }

const EventDesignCase kEventCases[] = {
    {"pico", makePicoE},   {"rocket", makeRocketE},
    {"bitcoin", makeBtcE}, {"mc", makeMcE},
    {"vta", makeVtaE},     {"sr2", makeSr2E},
};

std::string
eventCaseName(const ::testing::TestParamInfo<EventDesignCase> &info)
{
    return info.param.name;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Designs, EventDesigns,
                         ::testing::ValuesIn(kEventCases),
                         eventCaseName);

class EventFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(EventFuzz, RandomNetlistsAgree)
{
    Netlist nl = randomNetlist(GetParam());
    Interpreter full(nl);
    EventInterpreter ev(std::move(nl));
    ev.step(50);
    full.step(50);
    expectSameState(ev, full);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventFuzz,
                         ::testing::Range<uint64_t>(1, 16));
