/**
 * @file
 * Tests for the partitioning stack: LPT scheduling, the multilevel
 * hypergraph partitioner, the 4-stage bottom-up merge, and the
 * single-/multi-chip strategies. Invariants checked: completeness
 * (every fiber in exactly one process), balance, memory limits,
 * stage-3 straggler preservation, and strategy orderings from the
 * paper (Pre beats None, partitioned beats oblivious cut).
 */

#include <gtest/gtest.h>

#include "designs/designs.hh"
#include "partition/hypergraph.hh"
#include "partition/makespan.hh"
#include "partition/merge.hh"
#include "partition/strategy.hh"
#include "util/logging.hh"
#include "util/rng.hh"

using namespace parendi;
using namespace parendi::partition;
using fiber::FiberSet;

// ---- LPT ---------------------------------------------------------------

TEST(Lpt, BalancesKnownCase)
{
    // Classic LPT example: jobs {7,6,5,4,3,2} on 3 machines -> 9.
    Schedule s = lptSchedule({7, 6, 5, 4, 3, 2}, 3);
    EXPECT_EQ(s.makespan, 9u);
}

TEST(Lpt, SingleBinSumsEverything)
{
    Schedule s = lptSchedule({5, 1, 9}, 1);
    EXPECT_EQ(s.makespan, 15u);
}

TEST(Lpt, WithinFourThirdsOfLowerBound)
{
    Rng rng(42);
    for (int iter = 0; iter < 10; ++iter) {
        std::vector<uint64_t> costs;
        for (int i = 0; i < 200; ++i)
            costs.push_back(1 + rng.below(1000));
        for (uint32_t bins : {2u, 7u, 16u, 64u}) {
            Schedule s = lptSchedule(costs, bins);
            uint64_t lb = makespanLowerBound(costs, bins);
            EXPECT_LE(s.makespan, (4 * lb) / 3 + 1);
            EXPECT_GE(s.makespan, lb);
        }
    }
}

TEST(Lpt, AssignsEveryItem)
{
    Schedule s = lptSchedule({3, 0, 5, 0}, 2);
    EXPECT_EQ(s.binOf.size(), 4u);
    for (uint32_t b : s.binOf)
        EXPECT_LT(b, 2u);
    EXPECT_THROW(lptSchedule({1}, 0), FatalError);
}

// ---- Hypergraph ----------------------------------------------------------

namespace {

/** Two dense clusters joined by a single light edge. */
Hypergraph
twoClusters(uint32_t per_side)
{
    Hypergraph hg;
    for (uint32_t i = 0; i < 2 * per_side; ++i)
        hg.addNode(10);
    Rng rng(7);
    for (uint32_t side = 0; side < 2; ++side) {
        uint32_t base = side * per_side;
        for (uint32_t e = 0; e < per_side * 3; ++e) {
            std::vector<uint32_t> pins;
            for (int p = 0; p < 3; ++p)
                pins.push_back(base + static_cast<uint32_t>(
                    rng.below(per_side)));
            hg.addEdge(20, pins);
        }
    }
    hg.addEdge(1, {0, per_side}); // the only cross edge
    hg.buildIncidence();
    return hg;
}

} // namespace

TEST(Hypergraph, FindsTheObviousCut)
{
    Hypergraph hg = twoClusters(32);
    HgOptions opt;
    opt.k = 2;
    std::vector<uint32_t> part = partitionHypergraph(hg, opt);
    EXPECT_LE(cutCost(hg, part), 25u); // ideally 1; allow slack
    // Balance: each side within (1+eps) of half.
    uint64_t w0 = 0, w1 = 0;
    for (size_t v = 0; v < hg.numNodes(); ++v)
        (part[v] ? w1 : w0) += hg.nodeWeight[v];
    uint64_t limit = static_cast<uint64_t>(
        hg.totalNodeWeight() / 2 * (1 + opt.epsilon)) + 1;
    EXPECT_LE(w0, limit);
    EXPECT_LE(w1, limit);
}

TEST(Hypergraph, RespectsBalanceForLargeK)
{
    Hypergraph hg;
    Rng rng(3);
    for (int i = 0; i < 300; ++i)
        hg.addNode(1 + rng.below(5));
    for (int e = 0; e < 600; ++e) {
        std::vector<uint32_t> pins;
        for (int p = 0; p < 2 + static_cast<int>(rng.below(3)); ++p)
            pins.push_back(static_cast<uint32_t>(rng.below(300)));
        hg.addEdge(1 + rng.below(4), pins);
    }
    hg.buildIncidence();
    HgOptions opt;
    opt.k = 24;
    opt.epsilon = 0.30;
    std::vector<uint32_t> part = partitionHypergraph(hg, opt);
    std::vector<uint64_t> pw(opt.k, 0);
    for (size_t v = 0; v < hg.numNodes(); ++v) {
        ASSERT_LT(part[v], opt.k);
        pw[part[v]] += hg.nodeWeight[v];
    }
    // LPT initial partition plus gain-only moves keeps balance.
    uint64_t limit = static_cast<uint64_t>(
        static_cast<double>(hg.totalNodeWeight()) / opt.k *
        (1 + opt.epsilon)) + 1;
    for (uint64_t w : pw)
        EXPECT_LE(w, limit);
}

TEST(Hypergraph, ConnectivityCostSanity)
{
    Hypergraph hg;
    for (int i = 0; i < 4; ++i)
        hg.addNode(1);
    hg.addEdge(5, {0, 1, 2, 3});
    hg.buildIncidence();
    EXPECT_EQ(connectivityCost(hg, {0, 0, 0, 0}, 2), 0u);
    EXPECT_EQ(connectivityCost(hg, {0, 0, 1, 1}, 2), 5u);
    EXPECT_EQ(connectivityCost(hg, {0, 1, 2, 3}, 4), 15u);
    EXPECT_EQ(cutCost(hg, {0, 0, 0, 0}), 0u);
    EXPECT_EQ(cutCost(hg, {0, 1, 0, 0}), 5u);
}

TEST(Hypergraph, EdgeCases)
{
    Hypergraph hg;
    EXPECT_TRUE(partitionHypergraph(hg, HgOptions{}).empty());
    hg.addNode(3);
    hg.buildIncidence();
    HgOptions one;
    one.k = 1;
    EXPECT_EQ(partitionHypergraph(hg, one), std::vector<uint32_t>{0});
    // Single-pin edges are dropped.
    Hypergraph hg2;
    hg2.addNode(1);
    EXPECT_FALSE(hg2.addEdge(1, {0, 0, 0}));
}

// ---- Bottom-up merge -----------------------------------------------------

namespace {

struct Decomposed
{
    rtl::Netlist nl;
    std::unique_ptr<FiberSet> fs;

    explicit Decomposed(rtl::Netlist n) : nl(std::move(n))
    {
        fs = std::make_unique<FiberSet>(nl);
    }
};

} // namespace

TEST(Merge, Stage1MergesLargeArraySharers)
{
    // A big array (>= threshold) read by several fibers.
    rtl::Design d("bigarr");
    rtl::MemId big = d.memory("big", 64, 4096); // 32 KiB
    auto idx = d.reg("idx", 12, 0);
    d.next(idx, d.read(idx) + d.lit(12, 1));
    for (int i = 0; i < 4; ++i) {
        auto r = d.reg("r" + std::to_string(i), 64, 0);
        d.next(r, d.read(r) ^ d.memRead(big, d.read(idx)));
    }
    Decomposed dec(d.finish());

    MergeOptions opt;
    opt.largeArrayBytes = 16 * 1024; // the array qualifies
    auto procs = initialProcesses(*dec.fs, opt);
    // The 4 reader fibers + idx writer... readers collapse into one.
    size_t readers_merged = 0;
    for (const auto &p : procs)
        if (p.fibers.size() >= 4)
            ++readers_merged;
    EXPECT_EQ(readers_merged, 1u);

    // With a higher threshold nothing merges.
    MergeOptions lax;
    lax.largeArrayBytes = 1024 * 1024;
    EXPECT_EQ(initialProcesses(*dec.fs, lax).size(), dec.fs->size());
}

TEST(Merge, ReachesTargetAndStaysComplete)
{
    Decomposed dec(designs::makeSr(2));
    for (uint32_t target : {4u, 16u, 64u}) {
        MergeStats stats;
        Partitioning p =
            bottomUpPartition(*dec.fs, 1, target, MergeOptions{},
                              &stats);
        p.checkComplete(*dec.fs); // panics on violation
        EXPECT_LE(p.processes.size(), target);
        EXPECT_GE(stats.finalMakespanIpu, stats.stragglerIpu);
    }
}

TEST(Merge, MoreTilesNeverWorseMakespan)
{
    Decomposed dec(designs::makeBitcoin({4, 16}));
    uint64_t prev = UINT64_MAX;
    for (uint32_t target : {8u, 32u, 128u}) {
        Partitioning p = bottomUpPartition(*dec.fs, 1, target);
        EXPECT_LE(p.makespanIpu(), prev) << target;
        prev = p.makespanIpu();
    }
}

TEST(Merge, RespectsMemoryLimit)
{
    Decomposed dec(designs::makeSr(2));
    MergeOptions opt;
    Partitioning p = bottomUpPartition(*dec.fs, 1, 32, opt);
    for (const Process &proc : p.processes)
        EXPECT_LE(proc.memBytes(*dec.fs), opt.tileMemoryBytes);
}

TEST(Merge, FailsWhenDesignCannotFit)
{
    Decomposed dec(designs::makeSr(3));
    MergeOptions opt;
    opt.tileMemoryBytes = 2 * 1024; // absurdly small tiles
    EXPECT_THROW(bottomUpPartition(*dec.fs, 1, 1, opt), FatalError);
}

TEST(Merge, SingletonPassThrough)
{
    // If fibers <= tiles, nothing merges (one fiber per tile is
    // optimal, paper §4.3).
    Decomposed dec(designs::makePrngBank(12));
    Partitioning p = bottomUpPartition(*dec.fs, 1, 64);
    EXPECT_EQ(p.processes.size(), dec.fs->size());
}

// ---- Strategies ----------------------------------------------------------

TEST(Strategy, HypergraphAlternativeIsComplete)
{
    Decomposed dec(designs::makeSr(2));
    PartitionOptions opt;
    opt.single = SingleChipStrategy::Hypergraph;
    opt.tilesPerChip = 32;
    Partitioning p = partitionDesign(*dec.fs, opt);
    p.checkComplete(*dec.fs);
    EXPECT_LE(p.processes.size(), 32u);
}

TEST(Strategy, MultiChipAssignsAllChips)
{
    Decomposed dec(designs::makeSr(3));
    for (auto multi : {MultiChipStrategy::Pre, MultiChipStrategy::Post,
                       MultiChipStrategy::None}) {
        PartitionOptions opt;
        opt.chips = 2;
        opt.tilesPerChip = 32;
        opt.multi = multi;
        Partitioning p = partitionDesign(*dec.fs, opt);
        p.checkComplete(*dec.fs);
        std::vector<size_t> per_chip(2, 0);
        for (const Process &proc : p.processes) {
            ASSERT_GE(proc.chip, 0);
            ASSERT_LT(proc.chip, 2);
            ++per_chip[proc.chip];
        }
        EXPECT_GT(per_chip[0], 0u) << static_cast<int>(multi);
        EXPECT_GT(per_chip[1], 0u) << static_cast<int>(multi);
        EXPECT_LE(per_chip[0], 32u);
        EXPECT_LE(per_chip[1], 32u);
    }
}

TEST(Strategy, PartitionedCutBeatsOblivious)
{
    // Paper Fig. 16: Pre (and Post) should produce a smaller off-chip
    // cut than chip-oblivious None.
    Decomposed dec(designs::makeSr(4));
    auto cut_for = [&](MultiChipStrategy multi) {
        PartitionOptions opt;
        opt.chips = 4;
        opt.tilesPerChip = 64;
        opt.multi = multi;
        Partitioning p = partitionDesign(*dec.fs, opt);
        return offChipCutBytes(*dec.fs, p.processes);
    };
    uint64_t pre = cut_for(MultiChipStrategy::Pre);
    uint64_t none = cut_for(MultiChipStrategy::None);
    EXPECT_LT(pre, none);
}

TEST(Strategy, DuplicationRatioAtLeastOne)
{
    Decomposed dec(designs::makeSr(2));
    Partitioning p = bottomUpPartition(*dec.fs, 1, 64);
    EXPECT_GE(p.duplicationRatio(*dec.fs), 1.0);
}
