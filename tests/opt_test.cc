/**
 * @file
 * Tests for the netlist optimizer: each pass individually (folding,
 * identities, CSE, DCE), preservation of architectural state and
 * memory write-port order, and fuzzed behavioural equivalence
 * (optimized vs original under the interpreter).
 */

#include <gtest/gtest.h>

#include "random_netlist.hh"
#include "rtl/analysis.hh"
#include "rtl/dsl.hh"
#include "rtl/interp.hh"
#include "rtl/opt.hh"

using namespace parendi;
using namespace parendi::rtl;
using parendi::testing::randomNetlist;

TEST(FoldConstant, MatchesKernelSemantics)
{
    EXPECT_EQ(foldConstant(Op::Add, 8, 0,
                           {BitVec(8, 200), BitVec(8, 100)}),
              BitVec(8, 44)); // wraps
    EXPECT_EQ(foldConstant(Op::Mul, 16, 0,
                           {BitVec(16, 300), BitVec(16, 300)}),
              BitVec(16, 90000 & 0xffff));
    EXPECT_EQ(foldConstant(Op::Slt, 1, 0,
                           {BitVec(8, 0xff), BitVec(8, 1)}),
              BitVec(1, 1)); // -1 < 1 signed
    EXPECT_EQ(foldConstant(Op::Slice, 4, 8,
                           {BitVec(16, 0xabcd)}),
              BitVec(4, 0xb));
    EXPECT_EQ(foldConstant(Op::Concat, 16, 0,
                           {BitVec(8, 0xab), BitVec(8, 0xcd)}),
              BitVec(16, 0xabcd));
}

namespace {

/** Count nodes with a given op. */
size_t
countOp(const Netlist &nl, Op op)
{
    size_t n = 0;
    for (NodeId id = 0; id < nl.numNodes(); ++id)
        n += nl.node(id).op == op;
    return n;
}

} // namespace

TEST(Optimize, FoldsConstantExpressions)
{
    Design d("f");
    auto r = d.reg("r", 32);
    // (3 + 4) * 2 should become the constant 14.
    Wire k = (d.lit(32, 3) + d.lit(32, 4)) * d.lit(32, 2);
    d.next(r, d.read(r) + k);
    Netlist before = d.finish();
    OptStats stats;
    Netlist after = optimize(before, &stats);
    EXPECT_GT(stats.folded, 0u);
    EXPECT_EQ(countOp(after, Op::Mul), 0u);
    EXPECT_EQ(countOp(after, Op::Add), 1u); // only r + 14 remains
    Interpreter sim(std::move(after));
    sim.step(3);
    EXPECT_EQ(sim.peekRegister("r").toUint64(), 42u);
}

TEST(Optimize, AppliesIdentities)
{
    Design d("i");
    auto r = d.reg("r", 16);
    Wire x = d.read(r);
    Wire zero = d.lit(16, 0);
    Wire ones = d.lit(16, 0xffff);
    // All of these should reduce to x (or constants).
    Wire e = ((x + zero) & ones) | zero;
    e = d.mux(d.lit(1, 1), e, x * zero);
    d.next(r, e + d.lit(16, 1));
    Netlist before = d.finish();
    OptStats stats;
    Netlist after = optimize(before, &stats);
    EXPECT_GT(stats.identities, 0u);
    EXPECT_EQ(countOp(after, Op::Mux), 0u);
    EXPECT_EQ(countOp(after, Op::And), 0u);
    EXPECT_EQ(countOp(after, Op::Or), 0u);
    Interpreter sim(std::move(after));
    sim.step(5);
    EXPECT_EQ(sim.peekRegister("r").toUint64(), 5u);
}

TEST(Optimize, EliminatesCommonSubexpressions)
{
    Design d("c");
    auto a = d.reg("a", 32);
    auto b = d.reg("b", 32);
    Wire av = d.read(a), bv = d.read(b);
    // The same subexpression written twice.
    d.next(a, (av * bv) + av);
    d.next(b, (av * bv) + bv);
    Netlist before = d.finish();
    OptStats stats;
    Netlist after = optimize(before, &stats);
    EXPECT_EQ(countOp(after, Op::Mul), 1u);
    EXPECT_GT(stats.csed, 0u);
}

TEST(Optimize, RemovesDeadCode)
{
    Design d("dce");
    auto r = d.reg("r", 8);
    Wire x = d.read(r);
    d.next(r, x + d.lit(8, 1));
    // A dangling expression tree feeding nothing.
    Wire dead = (x * x) ^ (x + x);
    (void)dead;
    Netlist before = d.finish();
    OptStats stats;
    Netlist after = optimize(before, &stats);
    EXPECT_GT(stats.dead, 0u);
    EXPECT_EQ(countOp(after, Op::Mul), 0u);
    EXPECT_LT(after.numNodes(), before.numNodes());
}

TEST(Optimize, PreservesArchitecturalState)
{
    Netlist before = randomNetlist(7);
    Netlist after = optimize(before);
    EXPECT_EQ(after.numRegisters(), before.numRegisters());
    EXPECT_EQ(after.numMemories(), before.numMemories());
    EXPECT_EQ(after.numOutputs(), before.numOutputs());
    EXPECT_EQ(after.numInputs(), before.numInputs());
    for (RegId r = 0; r < before.numRegisters(); ++r) {
        EXPECT_EQ(after.reg(r).name, before.reg(r).name);
        EXPECT_EQ(after.reg(r).init, before.reg(r).init);
    }
    for (MemId m = 0; m < before.numMemories(); ++m)
        EXPECT_EQ(after.mem(m).writePorts.size(),
                  before.mem(m).writePorts.size());
}

TEST(Optimize, PreservesWritePortOrder)
{
    Design d("ports");
    auto once = d.reg("once", 1, 1);
    d.next(once, d.lit(1, 0));
    MemId m = d.memory("ram", 8, 2);
    Wire en = d.read(once);
    d.memWrite(m, d.lit(1, 0), d.lit(8, 0xaa), en);
    d.memWrite(m, d.lit(1, 0), d.lit(8, 0xbb), en);
    Netlist after = optimize(d.finish());
    Interpreter sim(std::move(after));
    sim.step();
    EXPECT_EQ(sim.peekMemory("ram", 0).toUint64(), 0xbbu);
}

TEST(Optimize, IsIdempotent)
{
    Netlist a = optimize(randomNetlist(13));
    size_t first = a.numNodes();
    Netlist b = optimize(a);
    // A second run should find little or nothing new.
    EXPECT_LE(b.numNodes(), first);
    EXPECT_GE(b.numNodes(), first - first / 20);
}

class OptFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(OptFuzz, OptimizedBehavesIdentically)
{
    Netlist original = randomNetlist(GetParam());
    Netlist optimized = optimize(original);
    EXPECT_LE(optimized.numNodes(), original.numNodes());
    Interpreter a(std::move(original));
    Interpreter b(std::move(optimized));
    for (int cycle = 0; cycle < 40; ++cycle) {
        a.step();
        b.step();
    }
    const Netlist &nl = a.netlist();
    for (RegId r = 0; r < nl.numRegisters(); ++r)
        ASSERT_EQ(a.peekRegister(nl.reg(r).name),
                  b.peekRegister(nl.reg(r).name))
            << nl.reg(r).name;
    for (PortId o = 0; o < nl.numOutputs(); ++o)
        ASSERT_EQ(a.peek(nl.output(o).name),
                  b.peek(nl.output(o).name));
    for (MemId m = 0; m < nl.numMemories(); ++m)
        for (uint32_t e = 0; e < nl.mem(m).depth; ++e)
            ASSERT_EQ(a.peekMemory(nl.mem(m).name, e),
                      b.peekMemory(nl.mem(m).name, e));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptFuzz,
                         ::testing::Range<uint64_t>(1, 31));

TEST(Optimize, ShrinksRealDesigns)
{
    for (uint64_t seed : {1ull}) {
        (void)seed;
    }
    Design d("lit_heavy");
    auto r = d.reg("r", 32);
    Wire acc = d.read(r);
    // Many duplicate literals: the DSL creates a node per lit().
    for (int i = 0; i < 20; ++i)
        acc = acc + d.lit(32, 1);
    d.next(r, acc);
    Netlist before = d.finish();
    OptStats stats;
    Netlist after = optimize(before, &stats);
    EXPECT_LT(after.numNodes(), before.numNodes());
    // All twenty `1` literals collapse to one constant node.
    EXPECT_EQ(countOp(after, Op::Const), 1u);
}
