/**
 * @file
 * Parameterized invariant sweeps over the partitioning stack: for a
 * matrix of (design, tile target, chip count, seed), the partitioner
 * must keep every structural invariant — completeness, tile budget,
 * per-tile memory, the stage-3 straggler bound when reachable, and
 * cost-accounting consistency between the merged process and a
 * freshly materialized one.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "designs/designs.hh"
#include "partition/merge.hh"
#include "partition/strategy.hh"
#include "util/logging.hh"

using namespace parendi;
using namespace parendi::partition;
using fiber::FiberSet;

namespace {

rtl::Netlist
designByIndex(int which)
{
    switch (which) {
      case 0: return designs::makeSr(2);
      case 1: return designs::makeSr(3);
      case 2: return designs::makeLr(2);
      case 3: return designs::makeBitcoin({3, 16});
      case 4: return designs::makeMc({16, 32, 100 << 16, 105 << 16});
      default: return designs::makeVta({4, 4, 16});
    }
}

const char *kDesignNames[] = {"sr2", "sr3", "lr2", "btc", "mc", "vta"};

} // namespace

using SweepParam = std::tuple<int, uint32_t, uint32_t, uint64_t>;

class PartitionSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(PartitionSweep, AllInvariantsHold)
{
    auto [which, tiles, chips, seed] = GetParam();
    rtl::Netlist nl = designByIndex(which);
    FiberSet fs(nl);

    PartitionOptions opt;
    opt.chips = chips;
    opt.tilesPerChip = tiles;
    opt.merge.seed = seed;
    MergeStats stats;
    Partitioning p = partitionDesign(fs, opt, &stats);

    // Completeness (panics internally on violation).
    p.checkComplete(fs);

    // Tile budget per chip.
    std::vector<size_t> per_chip(chips, 0);
    for (const Process &proc : p.processes) {
        ASSERT_GE(proc.chip, 0);
        ASSERT_LT(static_cast<uint32_t>(proc.chip), chips);
        ++per_chip[proc.chip];
    }
    for (size_t n : per_chip)
        EXPECT_LE(n, tiles);

    // Memory budget and cached-cost consistency.
    for (const Process &proc : p.processes) {
        EXPECT_LE(proc.memBytes(fs), opt.merge.tileMemoryBytes);
        Process rebuilt = Process::fromFiber(fs, proc.fibers[0]);
        for (size_t i = 1; i < proc.fibers.size(); ++i)
            rebuilt = Process::merged(
                fs, rebuilt, Process::fromFiber(fs, proc.fibers[i]));
        EXPECT_EQ(rebuilt.ipuCost, proc.ipuCost);
        EXPECT_EQ(rebuilt.dataBytes, proc.dataBytes);
    }

    // The makespan can never be below the straggler fiber.
    EXPECT_GE(p.makespanIpu(), stats.stragglerIpu);
    // ... and the merge stats agree with the result.
    EXPECT_EQ(stats.afterStage4, p.processes.size());
    EXPECT_EQ(stats.finalMakespanIpu, p.makespanIpu());
}

namespace {

std::string
sweepName(const ::testing::TestParamInfo<SweepParam> &info)
{
    auto [which, tiles, chips, seed] = info.param;
    return std::string(kDesignNames[which]) + "_t" +
        std::to_string(tiles) + "_c" + std::to_string(chips) + "_s" +
        std::to_string(seed);
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Matrix, PartitionSweep,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(8u, 64u),
                       ::testing::Values(1u, 4u),
                       ::testing::Values(1ull, 77ull)),
    sweepName);

TEST(PartitionSweep, SeedChangesPartitionNotCorrectness)
{
    rtl::Netlist nl = designs::makeSr(3);
    FiberSet fs(nl);
    PartitionOptions a, b;
    a.chips = b.chips = 2;
    a.tilesPerChip = b.tilesPerChip = 48;
    a.merge.seed = 1;
    b.merge.seed = 999;
    Partitioning pa = partitionDesign(fs, a);
    Partitioning pb = partitionDesign(fs, b);
    pa.checkComplete(fs);
    pb.checkComplete(fs);
    // Different seeds may produce different cuts, but both stay in
    // the same cost ballpark (within 3x of each other).
    uint64_t ca = offChipCutBytes(fs, pa.processes);
    uint64_t cb = offChipCutBytes(fs, pb.processes);
    if (ca && cb) {
        EXPECT_LT(ca, 3 * cb + 1024);
        EXPECT_LT(cb, 3 * ca + 1024);
    }
}

TEST(PartitionSweep, StragglerBoundRespectedInStage3Regime)
{
    // When fibers fit comfortably (mean << straggler), stage 3 must
    // deliver exactly the straggler as the makespan.
    rtl::Netlist nl = designs::makeSr(4);
    FiberSet fs(nl);
    Partitioning p = bottomUpPartition(fs, 1, 512);
    EXPECT_EQ(p.makespanIpu(), fs.maxFiberIpu());
}

TEST(PartitionSweep, DeterministicForFixedSeed)
{
    rtl::Netlist nl = designs::makeLr(2);
    FiberSet fs(nl);
    PartitionOptions opt;
    opt.chips = 2;
    opt.tilesPerChip = 32;
    Partitioning a = partitionDesign(fs, opt);
    Partitioning b = partitionDesign(fs, opt);
    ASSERT_EQ(a.processes.size(), b.processes.size());
    for (size_t i = 0; i < a.processes.size(); ++i) {
        EXPECT_EQ(a.processes[i].fibers, b.processes[i].fibers);
        EXPECT_EQ(a.processes[i].chip, b.processes[i].chip);
    }
}
