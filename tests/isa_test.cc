/**
 * @file
 * Tests for the P16 ISA encoder and golden instruction simulator.
 */

#include <gtest/gtest.h>

#include "designs/isa.hh"
#include "util/logging.hh"

using namespace parendi::designs;

TEST(Isa, EncodeFields)
{
    uint32_t w = encode(Isa::Add, 3, 5, 9, -2);
    EXPECT_EQ(w & 0xf, static_cast<uint32_t>(Isa::Add));
    EXPECT_EQ((w >> 4) & 0xf, 3u);
    EXPECT_EQ((w >> 8) & 0xf, 5u);
    EXPECT_EQ((w >> 12) & 0xf, 9u);
    EXPECT_EQ(static_cast<int16_t>(w >> 16), -2);
    EXPECT_THROW(encode(Isa::Add, 16, 0, 0, 0), parendi::FatalError);
}

TEST(Isa, SumProgram)
{
    IsaSim sim(programSum(10), 64);
    sim.run(1000);
    EXPECT_TRUE(sim.halted());
    EXPECT_EQ(sim.ram(0), 55u);
}

TEST(Isa, MemoryProgram)
{
    IsaSim sim(programMemory(), 64);
    sim.run(10000);
    EXPECT_TRUE(sim.halted());
    uint32_t sum = 0;
    for (uint32_t i = 0; i < 16; ++i) {
        EXPECT_EQ(sim.ram(i), i * i + 7) << "i=" << i;
        sum += i * i + 7;
    }
    EXPECT_EQ(sim.ram(16), sum);
}

TEST(Isa, ChurnNeverHalts)
{
    IsaSim sim(programChurn(), 64);
    uint64_t n = sim.run(5000);
    EXPECT_EQ(n, 5000u);
    EXPECT_FALSE(sim.halted());
}

TEST(Isa, ArithSemantics)
{
    std::vector<uint32_t> prog = {
        asmAddi(1, 0, 100),      // r1 = 100
        asmAddi(2, 0, -3),       // r2 = -3
        asmAdd(3, 1, 2),         // r3 = 97
        asmSub(4, 1, 2),         // r4 = 103
        asmXor(5, 1, 2),
        asmAnd(6, 1, 2),
        asmOr(7, 1, 2),
        asmAddi(8, 0, 33),       // shift amount 33 -> 1 (mod 32)
        asmSll(9, 1, 8),
        asmSrl(10, 2, 8),
        asmLui(11, 0x7fff),
        asmHalt(),
    };
    IsaSim sim(prog, 64);
    sim.run(100);
    EXPECT_TRUE(sim.halted());
    EXPECT_EQ(sim.reg(3), 97u);
    EXPECT_EQ(sim.reg(4), 103u);
    EXPECT_EQ(sim.reg(5), 100u ^ 0xfffffffdu);
    EXPECT_EQ(sim.reg(6), 100u & 0xfffffffdu);
    EXPECT_EQ(sim.reg(7), 100u | 0xfffffffdu);
    EXPECT_EQ(sim.reg(9), 100u << 1);
    EXPECT_EQ(sim.reg(10), 0xfffffffdu >> 1);
    EXPECT_EQ(sim.reg(11), 0x7fffu << 16);
}

TEST(Isa, JalLinksAndJumps)
{
    std::vector<uint32_t> prog = {
        asmJal(1, 3),   // pc 0 -> 3, r1 = 1
        asmAddi(2, 0, 99),  // skipped
        asmHalt(),          // skipped
        asmAddi(3, 0, 5),   // executed
        asmHalt(),
    };
    IsaSim sim(prog, 64);
    sim.run(100);
    EXPECT_TRUE(sim.halted());
    EXPECT_EQ(sim.reg(1), 1u);
    EXPECT_EQ(sim.reg(2), 0u);
    EXPECT_EQ(sim.reg(3), 5u);
    EXPECT_EQ(sim.pc(), 4u);
}

TEST(Isa, RandomProgramsTerminate)
{
    for (uint64_t seed = 1; seed <= 30; ++seed) {
        IsaSim sim(programRandom(seed, 40), 64);
        sim.run(100000);
        EXPECT_TRUE(sim.halted()) << "seed=" << seed;
    }
}
