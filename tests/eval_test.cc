/**
 * @file
 * Property tests for the evaluation kernel: every operator is checked
 * against native uint64 arithmetic for widths up to 64, and against
 * algebraic identities plus known vectors for multiword widths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "rtl/dsl.hh"
#include "rtl/interp.hh"
#include "util/rng.hh"

using namespace parendi;
using namespace parendi::rtl;

namespace {

uint64_t
maskFor(uint32_t width)
{
    return width >= 64 ? ~0ull : (1ull << width) - 1;
}

/** A 2-input test harness around one operator-producing lambda. */
template <typename BuildFn>
class BinHarness
{
  public:
    BinHarness(uint32_t width, BuildFn build) : width_(width)
    {
        Design d("t");
        Wire a = d.input("a", static_cast<uint16_t>(width));
        Wire b = d.input("b", static_cast<uint16_t>(width));
        d.output("y", build(d, a, b));
        nl_ = std::make_unique<Netlist>(d.finish());
        interp_ = std::make_unique<Interpreter>(*nl_);
    }

    BitVec
    eval(const BitVec &a, const BitVec &b)
    {
        interp_->poke("a", a);
        interp_->poke("b", b);
        return interp_->peek("y");
    }

    uint64_t
    eval64(uint64_t a, uint64_t b)
    {
        uint64_t m = maskFor(width_);
        return eval(BitVec(width_, a & m), BitVec(width_, b & m))
            .toUint64();
    }

  private:
    uint32_t width_;
    std::unique_ptr<Netlist> nl_;
    std::unique_ptr<Interpreter> interp_;
};

BitVec
randomBits(Rng &rng, uint32_t width)
{
    std::vector<uint64_t> words(wordsFor(width));
    for (auto &w : words)
        w = rng.next();
    return BitVec(width, std::move(words));
}

} // namespace

class EvalOpParam : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(EvalOpParam, ArithMatchesNative)
{
    uint32_t w = GetParam();
    ASSERT_LE(w, 64u);
    uint64_t m = maskFor(w);
    Rng rng(w * 7919 + 3);

    BinHarness add(w, [](Design &, Wire a, Wire b) { return a + b; });
    BinHarness sub(w, [](Design &, Wire a, Wire b) { return a - b; });
    BinHarness mul(w, [](Design &, Wire a, Wire b) { return a * b; });
    BinHarness band(w, [](Design &, Wire a, Wire b) { return a & b; });
    BinHarness bor(w, [](Design &, Wire a, Wire b) { return a | b; });
    BinHarness bxor(w, [](Design &, Wire a, Wire b) { return a ^ b; });

    for (int i = 0; i < 50; ++i) {
        uint64_t a = rng.next() & m, b = rng.next() & m;
        EXPECT_EQ(add.eval64(a, b), (a + b) & m);
        EXPECT_EQ(sub.eval64(a, b), (a - b) & m);
        EXPECT_EQ(mul.eval64(a, b), (a * b) & m);
        EXPECT_EQ(band.eval64(a, b), a & b);
        EXPECT_EQ(bor.eval64(a, b), a | b);
        EXPECT_EQ(bxor.eval64(a, b), a ^ b);
    }
}

TEST_P(EvalOpParam, CompareMatchesNative)
{
    uint32_t w = GetParam();
    uint64_t m = maskFor(w);
    Rng rng(w * 104729 + 11);

    BinHarness eq(w, [](Design &, Wire a, Wire b) { return a == b; });
    BinHarness ne(w, [](Design &, Wire a, Wire b) { return a != b; });
    BinHarness ult(w, [](Design &, Wire a, Wire b) { return a.ult(b); });
    BinHarness ule(w, [](Design &, Wire a, Wire b) { return a.ule(b); });
    BinHarness slt(w, [](Design &, Wire a, Wire b) { return a.slt(b); });
    BinHarness sle(w, [](Design &, Wire a, Wire b) { return a.sle(b); });

    auto sext = [&](uint64_t v) -> int64_t {
        if (w == 64)
            return static_cast<int64_t>(v);
        uint64_t sign = 1ull << (w - 1);
        return static_cast<int64_t>((v ^ sign)) -
            static_cast<int64_t>(sign);
    };

    for (int i = 0; i < 50; ++i) {
        uint64_t a = rng.next() & m, b = rng.next() & m;
        if (i == 0)
            b = a; // force the equal case
        EXPECT_EQ(eq.eval64(a, b), static_cast<uint64_t>(a == b));
        EXPECT_EQ(ne.eval64(a, b), static_cast<uint64_t>(a != b));
        EXPECT_EQ(ult.eval64(a, b), static_cast<uint64_t>(a < b));
        EXPECT_EQ(ule.eval64(a, b), static_cast<uint64_t>(a <= b));
        EXPECT_EQ(slt.eval64(a, b),
                  static_cast<uint64_t>(sext(a) < sext(b)));
        EXPECT_EQ(sle.eval64(a, b),
                  static_cast<uint64_t>(sext(a) <= sext(b)));
    }
}

TEST_P(EvalOpParam, ShiftsMatchNative)
{
    uint32_t w = GetParam();
    uint64_t m = maskFor(w);
    Rng rng(w * 31337 + 5);

    BinHarness shl(w, [](Design &, Wire a, Wire b) { return a << b; });
    BinHarness shr(w, [](Design &, Wire a, Wire b) { return a >> b; });
    BinHarness sra(w, [](Design &, Wire a, Wire b) { return a.sra(b); });

    for (int i = 0; i < 60; ++i) {
        uint64_t a = rng.next() & m;
        uint64_t sh = rng.below(w + 8); // include out-of-range shifts
        uint64_t expect_shl = sh >= w ? 0 : (a << sh) & m;
        uint64_t expect_shr = sh >= w ? 0 : a >> sh;
        bool neg = (a >> (w - 1)) & 1;
        uint64_t expect_sra;
        if (sh >= w) {
            expect_sra = neg ? m : 0;
        } else {
            expect_sra = a >> sh;
            if (neg && sh > 0)
                expect_sra |= (m & ~(m >> sh));
        }
        // eval64 masks its operands, so only exercise shift amounts
        // representable in w bits.
        if (sh <= m) {
            EXPECT_EQ(shl.eval64(a, sh), expect_shl);
            EXPECT_EQ(shr.eval64(a, sh), expect_shr);
            EXPECT_EQ(sra.eval64(a, sh), expect_sra);
        }
    }
}

TEST_P(EvalOpParam, UnaryMatchesNative)
{
    uint32_t w = GetParam();
    uint64_t m = maskFor(w);
    Rng rng(w * 7 + 123);

    BinHarness bnot(w, [](Design &, Wire a, Wire) { return ~a; });
    BinHarness bneg(w, [](Design &, Wire a, Wire) { return a.neg(); });
    BinHarness rand_(w,
                     [](Design &, Wire a, Wire) { return a.redAnd(); });
    BinHarness ror_(w, [](Design &, Wire a, Wire) { return a.redOr(); });
    BinHarness rxor_(w,
                     [](Design &, Wire a, Wire) { return a.redXor(); });

    for (int i = 0; i < 40; ++i) {
        uint64_t a = rng.next() & m;
        if (i == 0)
            a = m; // all ones
        if (i == 1)
            a = 0;
        EXPECT_EQ(bnot.eval64(a, 0), ~a & m);
        EXPECT_EQ(bneg.eval64(a, 0), (~a + 1) & m);
        EXPECT_EQ(rand_.eval64(a, 0), static_cast<uint64_t>(a == m));
        EXPECT_EQ(ror_.eval64(a, 0), static_cast<uint64_t>(a != 0));
        EXPECT_EQ(rxor_.eval64(a, 0),
                  static_cast<uint64_t>(__builtin_popcountll(a) & 1));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, EvalOpParam,
                         ::testing::Values(1u, 3u, 8u, 13u, 16u, 31u,
                                           32u, 33u, 48u, 63u, 64u));

class EvalWideParam : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(EvalWideParam, MultiwordIdentities)
{
    uint32_t w = GetParam();
    Rng rng(w * 65537 + 17);

    BinHarness add(w, [](Design &, Wire a, Wire b) { return a + b; });
    BinHarness sub(w, [](Design &, Wire a, Wire b) { return a - b; });
    BinHarness bxor(w, [](Design &, Wire a, Wire b) { return a ^ b; });
    BinHarness mul(w, [](Design &, Wire a, Wire b) { return a * b; });
    BinHarness shl(w, [](Design &, Wire a, Wire b) { return a << b; });
    BinHarness shr(w, [](Design &, Wire a, Wire b) { return a >> b; });

    for (int i = 0; i < 20; ++i) {
        BitVec a = randomBits(rng, w);
        BitVec b = randomBits(rng, w);
        // (a + b) - b == a
        EXPECT_EQ(sub.eval(add.eval(a, b), b), a);
        // (a ^ b) ^ b == a
        EXPECT_EQ(bxor.eval(bxor.eval(a, b), b), a);
        // a * 2 == a + a
        EXPECT_EQ(mul.eval(a, BitVec(w, 2)), add.eval(a, a));
        // a * 1 == a; a * 0 == 0
        EXPECT_EQ(mul.eval(a, BitVec(w, 1)), a);
        EXPECT_TRUE(mul.eval(a, BitVec(w, 0)).isZero());
        // (a << k) >> k keeps the low w-k bits
        uint32_t k = 1 + static_cast<uint32_t>(rng.below(w - 1));
        BitVec kv(w, k);
        BitVec low = shr.eval(shl.eval(a, kv), kv);
        for (uint32_t bit = 0; bit < w - k; ++bit)
            EXPECT_EQ(low.bit(bit), a.bit(bit));
        for (uint32_t bit = w - k; bit < w; ++bit)
            EXPECT_FALSE(low.bit(bit));
    }
}

TEST_P(EvalWideParam, ShiftCrossesWordBoundary)
{
    uint32_t w = GetParam();
    BinHarness shl(w, [](Design &, Wire a, Wire b) { return a << b; });
    BitVec one(w, 1);
    for (uint32_t k : {63u, 64u, 65u, w - 1}) {
        if (k >= w)
            continue;
        BitVec r = shl.eval(one, BitVec(w, k));
        for (uint32_t bit = 0; bit < w; ++bit)
            EXPECT_EQ(r.bit(bit), bit == k) << "k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(WideWidths, EvalWideParam,
                         ::testing::Values(65u, 96u, 128u, 200u, 256u));

TEST(EvalStructure, ConcatSliceExtend)
{
    Design d("t");
    Wire a = d.input("a", 24);
    Wire b = d.input("b", 40);
    d.output("cat", a.concat(b));
    d.output("lo", a.concat(b).slice(0, 40));
    d.output("hi", a.concat(b).slice(40, 24));
    d.output("zx", a.zext(100));
    d.output("sx", a.sext(100));
    d.output("mid", a.concat(b).slice(33, 14));
    Netlist nl = d.finish();
    Interpreter in(nl);

    in.poke("a", BitVec(24, 0xabcdef));
    in.poke("b", BitVec(40, 0x1234567890ull));
    EXPECT_EQ(in.peek("cat"),
              BitVec(64, (0xabcdefull << 40) | 0x1234567890ull));
    EXPECT_EQ(in.peek("lo"), BitVec(40, 0x1234567890ull));
    EXPECT_EQ(in.peek("hi"), BitVec(24, 0xabcdef));
    uint64_t cat = (0xabcdefull << 40) | 0x1234567890ull;
    EXPECT_EQ(in.peek("mid"), BitVec(14, (cat >> 33) & 0x3fff));
    EXPECT_EQ(in.peek("zx").toUint64(), 0xabcdefull);
    EXPECT_TRUE(in.peek("zx").words()[1] == 0);
    // 0xabcdef has bit 23 set -> sign extension fills above.
    BitVec sx = in.peek("sx");
    EXPECT_EQ(sx.toUint64() & 0xffffff, 0xabcdefull);
    for (uint32_t bit = 24; bit < 100; ++bit)
        EXPECT_TRUE(sx.bit(bit));
}

namespace {

BitVec
allOnesBits(uint32_t width)
{
    std::vector<uint64_t> words(wordsFor(width), ~0ull);
    if (width % 64)
        words.back() &= ~0ull >> (64 - width % 64);
    return BitVec(width, std::move(words));
}

bool
programHasOp(const Interpreter &in, EvalOp op)
{
    for (const EvalInstr &i : in.program().instrs)
        if (i.op == op)
            return true;
    return false;
}

/**
 * Directed fused-vs-generic harness: build a 4-input design, compile
 * it once with full lowering and once fully generic, drive both with
 * identical stimulus (random plus corner values), and require
 * bit-identical outputs. When @p expect is not NumEvalOps, also
 * require that the fused program really contains that superinstruction
 * so the test provably exercises the fused kernel.
 */
template <typename BuildFn>
void
checkFusedDirected(uint32_t w, BuildFn build,
                   EvalOp expect = EvalOp::NumEvalOps)
{
    Design d("fuse" + std::to_string(w));
    Wire a = d.input("a", static_cast<uint16_t>(w));
    Wire b = d.input("b", static_cast<uint16_t>(w));
    Wire x = d.input("x", static_cast<uint16_t>(w));
    Wire y = d.input("y", static_cast<uint16_t>(w));
    d.output("out", build(d, a, b, x, y));
    Netlist nl = d.finish();
    Interpreter fused(nl);
    Interpreter generic(nl, LowerOptions::none());
    if (expect != EvalOp::NumEvalOps) {
        EXPECT_TRUE(programHasOp(fused, expect))
            << "w=" << w << ": program lacks "
            << evalOpName(expect);
    }

    Rng rng(w * 1699 + 29);
    const char *ports[] = {"a", "b", "x", "y"};
    for (int i = 0; i < 40; ++i) {
        for (const char *p : ports) {
            BitVec v = randomBits(rng, w);
            if (i == 0)
                v = BitVec(w, 0);                 // all zero
            if (i == 1)
                v = allOnesBits(w);
            fused.poke(p, v);
            generic.poke(p, v);
        }
        if (i == 2) { // equal operands hit the Eq/Ne boundary
            BitVec v = randomBits(rng, w);
            fused.poke("a", v);
            generic.poke("a", v);
            fused.poke("b", v);
            generic.poke("b", v);
        }
        ASSERT_EQ(fused.peek("out"), generic.peek("out"))
            << "w=" << w << " iter=" << i;
    }
}

} // namespace

TEST(EvalStructure, MuxSelectsAndPropagates)
{
    Design d("t");
    Wire s = d.input("s", 1);
    Wire a = d.input("a", 128);
    Wire b = d.input("b", 128);
    d.output("y", d.mux(s, a, b));
    Netlist nl = d.finish();
    Interpreter in(nl);
    Rng rng(99);
    BitVec av = randomBits(rng, 128), bv = randomBits(rng, 128);
    in.poke("a", av);
    in.poke("b", bv);
    in.poke("s", BitVec(1, 1));
    EXPECT_EQ(in.peek("y"), av);
    in.poke("s", BitVec(1, 0));
    EXPECT_EQ(in.peek("y"), bv);
}

/**
 * Directed coverage for every superinstruction the lowering pass can
 * emit, at the width boundaries that matter for the single-word fast
 * path: 1, 63, 64 (fusable) and 65, 128 (multi-word operands, where
 * either no fusion happens or only a truncating form applies).
 */
class FusionDirected : public ::testing::TestWithParam<uint32_t>
{
  protected:
    bool
    fits()
    {
        return GetParam() <= 64;
    }

    EvalOp
    expectIf(EvalOp op)
    {
        return fits() ? op : EvalOp::NumEvalOps;
    }
};

TEST_P(FusionDirected, CmpMux)
{
    uint32_t w = GetParam();
    checkFusedDirected(w, [](Design &d, Wire a, Wire b, Wire x, Wire y) {
        return d.mux(a == b, x, y);
    }, expectIf(EvalOp::EqMuxW));
    checkFusedDirected(w, [](Design &d, Wire a, Wire b, Wire x, Wire y) {
        return d.mux(a != b, x, y);
    }, expectIf(EvalOp::NeMuxW));
    checkFusedDirected(w, [](Design &d, Wire a, Wire b, Wire x, Wire y) {
        return d.mux(a.ult(b), x, y);
    }, expectIf(EvalOp::UltMuxW));
    checkFusedDirected(w, [](Design &d, Wire a, Wire b, Wire x, Wire y) {
        return d.mux(a.ule(b), x, y);
    }, expectIf(EvalOp::UleMuxW));
    checkFusedDirected(w, [](Design &d, Wire a, Wire b, Wire x, Wire y) {
        return d.mux(a.slt(b), x, y);
    }, expectIf(EvalOp::SltMuxW));
    checkFusedDirected(w, [](Design &d, Wire a, Wire b, Wire x, Wire y) {
        return d.mux(a.sle(b), x, y);
    }, expectIf(EvalOp::SleMuxW));
}

TEST_P(FusionDirected, OpWithInvertedOperand)
{
    uint32_t w = GetParam();
    checkFusedDirected(w, [](Design &, Wire a, Wire b, Wire, Wire) {
        return a & ~b;
    }, expectIf(EvalOp::AndNotW));
    checkFusedDirected(w, [](Design &, Wire a, Wire b, Wire, Wire) {
        return ~a & b; // commuted: inversion on the left operand
    }, expectIf(EvalOp::AndNotW));
    checkFusedDirected(w, [](Design &, Wire a, Wire b, Wire, Wire) {
        return a | ~b;
    }, expectIf(EvalOp::OrNotW));
    checkFusedDirected(w, [](Design &, Wire a, Wire b, Wire, Wire) {
        return a ^ ~b;
    }, expectIf(EvalOp::XorNotW));
}

TEST_P(FusionDirected, InvertedMuxSelect)
{
    // mux(~s, a, b) lowers to mux(s, b, a): no new opcode, but the Not
    // disappears, so the fused program must be strictly shorter.
    uint32_t w = GetParam();
    Design d("nm" + std::to_string(w));
    Wire s = d.input("s", 1);
    Wire a = d.input("a", static_cast<uint16_t>(w));
    Wire b = d.input("b", static_cast<uint16_t>(w));
    d.output("out", d.mux(~s, a, b));
    Netlist nl = d.finish();
    Interpreter fused(nl);
    Interpreter generic(nl, LowerOptions::none());
    EXPECT_LT(fused.program().instrs.size(),
              generic.program().instrs.size());
    Rng rng(w * 271 + 3);
    for (int i = 0; i < 20; ++i) {
        BitVec av = randomBits(rng, w), bv = randomBits(rng, w);
        BitVec sv(1, i & 1);
        for (Interpreter *in : {&fused, &generic}) {
            in->poke("a", av);
            in->poke("b", bv);
            in->poke("s", sv);
        }
        ASSERT_EQ(fused.peek("out"), generic.peek("out"))
            << "w=" << w << " s=" << (i & 1);
        ASSERT_EQ(fused.peek("out"), (i & 1) ? bv : av);
    }
}

TEST_P(FusionDirected, OpThenTruncate)
{
    // (a op b).slice(0, w2): truncation-stable producers are narrowed
    // into a single-word op at the slice width, even when the inputs
    // themselves are wider than 64 bits.
    uint32_t w = GetParam();
    uint32_t w2 = std::min(w, 64u) - (w > 1 ? 1 : 0);
    if (w2 == 0)
        w2 = 1;
    auto slice_of = [w2](Wire v) { return v.slice(0, static_cast<uint16_t>(w2)); };
    checkFusedDirected(w, [&](Design &, Wire a, Wire b, Wire, Wire) {
        return slice_of(a + b);
    }, EvalOp::AddW);
    checkFusedDirected(w, [&](Design &, Wire a, Wire b, Wire, Wire) {
        return slice_of(a - b);
    }, EvalOp::SubW);
    checkFusedDirected(w, [&](Design &, Wire a, Wire b, Wire, Wire) {
        return slice_of(a & b);
    }, EvalOp::AndW);
    checkFusedDirected(w, [&](Design &, Wire a, Wire, Wire, Wire) {
        return slice_of(~a);
    }, EvalOp::NotW);
    checkFusedDirected(w, [&](Design &, Wire a, Wire b, Wire, Wire) {
        return slice_of(a * b); // low bits of a product never depend
                                // on the discarded high bits
    }, EvalOp::MulW);
}

INSTANTIATE_TEST_SUITE_P(WidthBoundaries, FusionDirected,
                         ::testing::Values(1u, 63u, 64u, 65u, 128u));

TEST(EvalMemory, WritePortOrderOnCollision)
{
    // Two ports writing the same address in the same cycle: ports
    // commit in creation order (netlist.hh), so the last *enabled*
    // port wins. Checked fused and generic.
    Design d("wports");
    MemId m = d.memory("m", 32, 8);
    Wire addr = d.input("addr", 3);
    Wire d0 = d.input("d0", 32);
    Wire d1 = d.input("d1", 32);
    Wire e0 = d.input("e0", 1);
    Wire e1 = d.input("e1", 1);
    d.memWrite(m, addr, d0, e0);
    d.memWrite(m, addr, d1, e1);
    d.output("probe", d.memRead(m, addr));
    Netlist nl = d.finish();

    for (bool lowered : {true, false}) {
        Interpreter in(nl, lowered ? LowerOptions{}
                                   : LowerOptions::none());
        auto cycle = [&](uint64_t a, uint32_t v0, uint32_t v1,
                         bool en0, bool en1) {
            in.poke("addr", BitVec(3, a));
            in.poke("d0", BitVec(32, v0));
            in.poke("d1", BitVec(32, v1));
            in.poke("e0", BitVec(1, en0));
            in.poke("e1", BitVec(1, en1));
            in.step();
        };
        // Both enabled: port 1 (created last) must win.
        cycle(3, 0x11111111, 0x22222222, true, true);
        EXPECT_EQ(in.peekMemory("m", 3), BitVec(32, 0x22222222))
            << (lowered ? "fused" : "generic");
        // Only port 0 enabled: its data lands even though port 1
        // carries different data.
        cycle(4, 0x33333333, 0x44444444, true, false);
        EXPECT_EQ(in.peekMemory("m", 4), BitVec(32, 0x33333333));
        // Only port 1 enabled.
        cycle(5, 0x55555555, 0x66666666, false, true);
        EXPECT_EQ(in.peekMemory("m", 5), BitVec(32, 0x66666666));
        // Neither enabled: entry keeps its previous value.
        cycle(3, 0x77777777, 0x88888888, false, false);
        EXPECT_EQ(in.peekMemory("m", 3), BitVec(32, 0x22222222));
    }
}
