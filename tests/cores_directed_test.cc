/**
 * @file
 * Directed micro-programs hammering specific corners of the pico and
 * rocket cores: branch chains, shift-amount masking, load/store
 * aliasing, register-zero behaviour, halt-at-the-edge, and back-to-
 * back writes to one register — each checked against the golden ISA
 * model on both cores.
 */

#include <gtest/gtest.h>

#include "designs/cores.hh"
#include "designs/isa.hh"
#include "rtl/interp.hh"

using namespace parendi;
using namespace parendi::designs;
using rtl::Interpreter;
using rtl::Netlist;

namespace {

constexpr uint32_t kRom = 64, kRam = 64;

struct Program
{
    const char *name;
    std::vector<uint32_t> code;
};

std::vector<Program>
directedPrograms()
{
    std::vector<Program> ps;
    // Branch ladder: alternating taken/not-taken conditionals.
    ps.push_back({"branch_ladder", {
        asmAddi(1, 0, 5),
        asmAddi(2, 0, 5),
        asmBeq(1, 2, 2),      // taken
        asmAddi(3, 0, 99),    // skipped
        asmBne(1, 2, 2),      // not taken
        asmAddi(4, 0, 7),     // executed
        asmBne(1, 0, 2),      // taken (r1 != r0)
        asmAddi(4, 4, 100),   // skipped
        asmAdd(5, 4, 1),
        asmHalt(),
    }});
    // Shift amounts at and beyond the 5-bit mask.
    ps.push_back({"shift_masking", {
        asmLui(1, 0x8000),    // r1 = 0x80000000
        asmAddi(2, 0, 31),
        asmSrl(3, 1, 2),      // >> 31 -> 1
        asmAddi(2, 0, 32),    // 32 & 31 == 0
        asmSrl(4, 1, 2),      // >> 0 -> unchanged
        asmAddi(2, 0, 33),    // 33 & 31 == 1
        asmSll(5, 1, 2),      // << 1 -> wraps to 0
        asmHalt(),
    }});
    // Store then load through the same address (memory aliasing).
    ps.push_back({"store_load_alias", {
        asmAddi(1, 0, 9),     // address
        asmAddi(2, 0, 1234),
        asmSw(1, 2, 0),       // ram[9] = 1234
        asmLw(3, 1, 0),       // r3 = ram[9]
        asmAddi(2, 0, 4321),
        asmSw(1, 2, 0),       // overwrite
        asmLw(4, 1, 0),       // r4 = 4321
        asmAdd(5, 3, 4),
        asmHalt(),
    }});
    // Repeated writes to one register in close succession.
    ps.push_back({"waw_chain", {
        asmAddi(7, 0, 1),
        asmAddi(7, 7, 1),
        asmAddi(7, 7, 1),
        asmAddi(7, 7, 1),
        asmAddi(7, 7, 1),
        asmSll(7, 7, 7),      // r7 <<= (5 & 31)
        asmHalt(),
    }});
    // Negative immediates and wraparound arithmetic.
    ps.push_back({"negatives", {
        asmAddi(1, 0, -1),    // 0xffffffff
        asmAddi(2, 1, 1),     // 0
        asmSub(3, 2, 1),      // 1
        asmAddi(4, 0, -32768),
        asmSub(5, 0, 4),      // +32768
        asmHalt(),
    }});
    // JAL chain computing a call-like pattern.
    ps.push_back({"jal_chain", {
        asmJal(1, 2),         // -> 2, r1 = 1
        asmHalt(),            // final landing
        asmJal(2, 2),         // -> 4, r2 = 3
        asmHalt(),
        asmJal(3, -3),        // -> 1 (halt), r3 = 5
    }});
    return ps;
}

void
runBoth(const Program &p)
{
    // Golden model.
    std::vector<uint32_t> rom = p.code;
    while (rom.size() < kRom)
        rom.push_back(asmHalt());
    IsaSim gold(rom, kRam);
    gold.run(100000);
    ASSERT_TRUE(gold.halted()) << p.name;

    for (int core = 0; core < 2; ++core) {
        CoreConfig cfg;
        cfg.romDepth = kRom;
        cfg.ramDepth = kRam;
        cfg.program = p.code;
        Netlist nl = core ? makeRocket(cfg) : makePico(cfg);
        Interpreter sim(std::move(nl));
        uint64_t guard = 0;
        while (sim.peek("halted").isZero() && guard++ < 100000)
            sim.step();
        ASSERT_LT(guard, 100000u) << p.name;
        sim.step(8); // drain
        for (unsigned i = 0; i < 16; ++i)
            EXPECT_EQ(sim.peekRegister("x" + std::to_string(i))
                          .toUint64(),
                      gold.reg(i))
                << p.name << (core ? " rocket" : " pico") << " x" << i;
        for (uint32_t i = 0; i < kRam; ++i)
            EXPECT_EQ(sim.peekMemory("ram", i).toUint64(),
                      gold.ram(i))
                << p.name << " ram[" << i << "]";
        EXPECT_EQ(sim.peek("pc").toUint64(), gold.pc()) << p.name;
    }
}

} // namespace

class DirectedPrograms : public ::testing::TestWithParam<size_t>
{
};

TEST_P(DirectedPrograms, BothCoresMatchGolden)
{
    runBoth(directedPrograms()[GetParam()]);
}

INSTANTIATE_TEST_SUITE_P(
    All, DirectedPrograms, ::testing::Range<size_t>(0, 6),
    [](const ::testing::TestParamInfo<size_t> &info) {
        return directedPrograms()[info.param].name;
    });

TEST(DirectedPrograms, PerfCountersCount)
{
    // instret must equal the golden instruction count; the branch
    // monitor must have seen every conditional branch.
    auto prog = programSum(20);
    std::vector<uint32_t> rom = prog;
    while (rom.size() < kRom)
        rom.push_back(asmHalt());
    IsaSim gold(rom, kRam);
    uint64_t instrs = gold.run(100000);

    CoreConfig cfg;
    cfg.romDepth = kRom;
    cfg.ramDepth = kRam;
    cfg.program = prog;
    Interpreter sim(makePico(cfg));
    while (sim.peek("halted").isZero())
        sim.step();
    // pico retires one instruction per 4 cycles; instret counts
    // retired instructions including the halt.
    EXPECT_EQ(sim.peekRegister("csr_instret").toUint64(), instrs);
    uint64_t hits = sim.peekRegister("bp_hits").toUint64();
    uint64_t miss = sim.peekRegister("bp_miss").toUint64();
    // programSum(20) executes its bne 20 times.
    EXPECT_EQ(hits + miss, 20u);
    // 4 cycles per instruction exactly (the halt latches at its WB).
    EXPECT_EQ(sim.peekRegister("csr_cycle").toUint64(), 4 * instrs);
}
