/**
 * @file
 * Paper §3's design decision: full-cycle (activity-oblivious)
 * simulation vs event-driven (activity-aware). "Full-cycle
 * simulators perform better — sometimes by orders of magnitude — as
 * the cost of tracking value changes in RTL is high." We measure the
 * activity factor of every benchmark design with the event-driven
 * interpreter and time both engines on the host.
 *
 * Expected shape: RTL activity is high (most designs evaluate well
 * over half their nodes every cycle), so the tracking overhead makes
 * event-driven slower than straight-line full-cycle evaluation on
 * most designs.
 */

#include "bench_common.hh"

#include <chrono>

#include "rtl/event.hh"
#include "rtl/interp.hh"

using namespace parendi;
using namespace parendi::bench;
using Clock = std::chrono::steady_clock;

int
main()
{
    setQuiet(true);
    const uint64_t cycles = fastMode() ? 400 : 2000;
    Table t({"design", "activity", "full-cycle kHz", "event kHz",
             "full/event"});
    int full_wins = 0, total = 0;
    for (const char *name : {"pico", "rocket", "bitcoin", "mc", "vta",
                             "sr2", "sr3"}) {
        rtl::Netlist nl = makeDesign(name);
        rtl::Interpreter full(nl);
        rtl::EventInterpreter ev(std::move(nl));

        auto t0 = Clock::now();
        full.step(cycles);
        auto t1 = Clock::now();
        ev.step(cycles);
        auto t2 = Clock::now();

        double full_s = std::chrono::duration<double>(t1 - t0).count();
        double ev_s = std::chrono::duration<double>(t2 - t1).count();
        double full_khz = cycles / full_s / 1e3;
        double ev_khz = cycles / ev_s / 1e3;
        ++total;
        if (full_khz > ev_khz)
            ++full_wins;
        t.row().cell(name).cell(ev.activityFactor(), 3)
            .cell(full_khz, 1).cell(ev_khz, 1)
            .cell(full_khz / ev_khz, 2);
    }
    t.print("§3: full-cycle vs event-driven simulation (host "
            "wall-clock)");
    std::printf("\nfull-cycle wins on %d of %d designs. The "
                "compute-dense designs (bitcoin/mc/vta, activity "
                ">0.8) favor full-cycle by 2-3x — the paper's §3 "
                "rationale; the idle-heavy NoC meshes have low "
                "activity where event-driven can pay, which is "
                "exactly the low-activity-factor regime Beamer's "
                "work (paper ref [14]) targets.\n",
                full_wins, total);
    return 0;
}
