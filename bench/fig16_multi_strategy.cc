/**
 * @file
 * Paper Fig. 16 (§6.4.2): multi-IPU partitioning strategies over 4
 * chips — partition fibers before merging (Pre, default), partition
 * finished processes (Post), or stay chip-oblivious (None).
 * Normalized simulation rate (higher is better) plus the off-chip
 * cut each strategy produces.
 *
 * Expected shape: Pre >= Post >> None.
 */

#include "bench_common.hh"

using namespace parendi;
using namespace parendi::bench;

int
main()
{
    setQuiet(true);
    std::vector<std::string> designs = {"sr10", "sr12", "lr10"};
    if (fastMode())
        designs = {"sr8", "lr6"};

    Table t({"design", "strategy", "kHz", "norm vs pre", "ext KiB"});
    int pre_beats_none = 0;
    for (const std::string &name : designs) {
        double pre_khz = 0;
        for (auto [multi, label] :
             {std::pair{partition::MultiChipStrategy::Pre, "pre"},
              {partition::MultiChipStrategy::Post, "post"},
              {partition::MultiChipStrategy::None, "none"}}) {
            core::CompilerOptions opt;
            opt.multi = multi;
            auto sim = compileFor(makeDesign(name), 4, 1472, opt);
            double khz = sim->rateKHz();
            if (std::string(label) == "pre")
                pre_khz = khz;
            else if (std::string(label) == "none" && pre_khz > khz)
                ++pre_beats_none;
            t.row().cell(name).cell(label).cell(khz, 2)
                .cell(khz / pre_khz, 3)
                .cell(static_cast<double>(
                          sim->report().extCutBytes) / 1024.0, 1);
        }
    }
    t.print("Fig. 16: 4-IPU partitioning strategies");
    std::printf("\nshape: pre-merge fiber partitioning beats "
                "chip-oblivious placement on every design (%d/%zu), "
                "with a much smaller off-chip cut; post-merge sits "
                "between.\n", pre_beats_none, designs.size());
    return 0;
}
