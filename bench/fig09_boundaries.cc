/**
 * @file
 * Paper Fig. 9: non-uniform communication. For large designs the
 * Verilator model keeps scaling, but the speedup curve kinks at the
 * ae4 chiplet boundary (8 cores) and drops past the ix3 socket
 * boundary (28 cores).
 */

#include "bench_common.hh"

#include "fiber/fiber.hh"

using namespace parendi;
using namespace parendi::bench;

int
main()
{
    setQuiet(true);
    const char *designs[] = {"sr8", "lr6"};
    for (const char *name : designs) {
        rtl::Netlist nl = makeOptimized(name);
        fiber::FiberSet fs(nl);
        x86::DesignProfile prof = x86::profileDesign(fs);
        x86::X86Arch ix3 = x86::X86Arch::ix3();
        x86::X86Arch ae4 = x86::X86Arch::ae4();
        double base_ix = x86::modelVerilator(ix3, prof, 1).totalNs();
        double base_ae = x86::modelVerilator(ae4, prof, 1).totalNs();
        Table t({"threads", "ix3 speedup", "ae4 speedup",
                 "ix3 comm ns", "ae4 comm ns"});
        for (uint32_t thr : {2u, 4u, 6u, 8u, 10u, 12u, 16u, 20u, 24u,
                             26u, 28u, 30u, 32u}) {
            auto pix = x86::modelVerilator(ix3, prof, thr);
            auto pae = x86::modelVerilator(ae4, prof, thr);
            t.row().cell(uint64_t{thr})
                .cell(base_ix / pix.totalNs(), 2)
                .cell(base_ae / pae.totalNs(), 2)
                .cell(pix.tCommNs, 1)
                .cell(pae.tCommNs, 1);
        }
        t.print(std::string("Fig. 9: ") + name +
                " thread sweep (watch 8 on ae4, 28 on ix3)");
    }
    std::printf("\nshape: ae4 per-thread efficiency kinks after 8 "
                "threads (chiplet); ix3 comm cost jumps past 28 "
                "threads (socket).\n");
    return 0;
}
