/**
 * @file
 * Closed-loop multi-client throughput of the serving layer (the
 * simulation-as-a-service path, DESIGN.md "Serving layer"): a
 * TPC-C-style driver with M clients, each holding one session on an
 * in-process `parendi --serve` host and looping
 * step(batch) -> think -> step(batch) until a fixed per-session cycle
 * budget is spent. Reports
 *
 *  - aggregate cycles/sec across all sessions on the ONE shared
 *    BspPool, vs a single-session baseline on the same host (the
 *    acceptance ratio: multi-session aggregate must hold >= 0.5x the
 *    single-session rate — scheduling overhead, not slowdown);
 *  - session creates/sec (the artifact store makes creates after the
 *    first warm starts: one compile, M-1 hits);
 *  - p50/p99 step round-trip latency across all clients;
 *  - fairness: max/min per-session completed cycles sampled the
 *    moment the first client finishes — under equal budgets the DRR
 *    scheduler must keep this ratio <= 2.
 *
 * Flags: --clients M (default 8), --design NAME (default prng16),
 * --cycles N per session, --batch N cycles per step request,
 * --think-ms T, --port P (drive an external host instead of the
 * in-process one; fairness sampling is then skipped), --no-cgen,
 * --replicas R (every session is a gang of R replica lanes; the
 * report then adds aggregate lane-cycles/sec = cycles/sec x R,
 * cross-checked against the host's serve_lane_cycles_executed
 * counter), --json FILE (BENCH_*.json trajectory rows: engine
 * "serve-c1" is the baseline, "serve-cM" the M-client aggregate).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "serve/session.hh"

using namespace parendi;
using Clock = std::chrono::steady_clock;

namespace {

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

double
percentile(std::vector<double> &v, double p)
{
    if (v.empty())
        return 0;
    std::sort(v.begin(), v.end());
    size_t i = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
    return v[i];
}

struct ClientResult
{
    uint64_t sessionId = 0;
    double seconds = 0;             ///< create-to-budget wall time
    std::vector<double> stepMs;     ///< per-step round-trip latency
    bool ok = false;
};

/** One closed-loop client: create a session, spend the cycle budget
 *  in step(batch) requests with a fixed think time between them. */
void
runClient(uint16_t port, const std::string &design, bool cgen,
          uint32_t replicas, uint64_t budget, uint64_t batch,
          uint64_t thinkMs, ClientResult &out)
{
    serve::Client client;
    if (!client.connect(port)) {
        warn("bench client: %s", client.lastError().c_str());
        return;
    }
    Clock::time_point t0 = Clock::now();
    uint64_t id =
        client.createSession(design, "par", 0, cgen, 0, replicas);
    if (!id) {
        warn("bench client: %s", client.lastError().c_str());
        return;
    }
    out.sessionId = id;
    uint64_t done = 0;
    while (done < budget) {
        uint64_t n = std::min(batch, budget - done);
        Clock::time_point s0 = Clock::now();
        if (!client.step(id, n)) {
            warn("bench client: %s", client.lastError().c_str());
            return;
        }
        out.stepMs.push_back(secondsSince(s0) * 1e3);
        done += n;
        if (thinkMs)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(thinkMs));
    }
    out.seconds = secondsSince(t0);
    client.destroySession(id);
    out.ok = true;
}

uint64_t
statValue(serve::Client &client, const std::string &name)
{
    std::vector<std::pair<std::string, uint64_t>> stats;
    if (!client.stats(&stats))
        return 0;
    for (const auto &[n, v] : stats)
        if (n == name)
            return v;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath = bench::extractJsonFlag(argc, argv);
    bool noCgen = bench::extractBoolFlag(argc, argv, "--no-cgen");
    uint32_t clients = 8;
    std::string design = "prng16";
    uint64_t cycles = bench::fastMode() ? 40000 : 400000;
    uint64_t batch = 2048;
    uint64_t thinkMs = 0;
    uint32_t replicas = 1;
    uint16_t externalPort = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            return i + 1 < argc ? argv[++i] : std::string();
        };
        if (arg == "--clients")
            clients = static_cast<uint32_t>(std::stoul(value()));
        else if (arg == "--design")
            design = value();
        else if (arg == "--cycles")
            cycles = std::stoull(value());
        else if (arg == "--batch")
            batch = std::stoull(value());
        else if (arg == "--think-ms")
            thinkMs = std::stoull(value());
        else if (arg == "--replicas")
            replicas = static_cast<uint32_t>(std::stoul(value()));
        else if (arg == "--port")
            externalPort = static_cast<uint16_t>(std::stoul(value()));
        else
            fatal("unknown flag %s", arg.c_str());
    }
    const bool cgen = !noCgen;

    // The host: in-process on an ephemeral port unless --port points
    // at an external `parendi --serve`.
    std::unique_ptr<serve::SessionManager> manager;
    std::unique_ptr<serve::Server> server;
    uint16_t port = externalPort;
    if (!externalPort) {
        serve::ManagerOptions mopt;
        mopt.maxSessions = clients + 8;
        mopt.resolveDesign = [](const std::string &spec) {
            return bench::makeOptimized(spec);
        };
        manager = std::make_unique<serve::SessionManager>(
            std::move(mopt));
        server = std::make_unique<serve::Server>(*manager, 0);
        server->start();
        port = server->port();
    }

    // Phase 1 — single-session baseline on the same host (warm run:
    // a throwaway session first so the artifact compile is not billed
    // to the measured session).
    if (cgen) {
        ClientResult warm;
        runClient(port, design, cgen, replicas,
                  std::min<uint64_t>(cycles, 1024), batch, 0, warm);
    }
    ClientResult base;
    runClient(port, design, cgen, replicas, cycles, batch, thinkMs,
              base);
    if (!base.ok)
        fatal("baseline client failed");
    double baseCps = static_cast<double>(cycles) / base.seconds;

    // Phase 2 — M concurrent closed-loop clients. A sampler thread
    // watches per-session progress (in-process host only) and keeps
    // the last snapshot taken while every session was still running:
    // that is where starvation would show.
    std::vector<ClientResult> results(clients);
    std::vector<std::thread> threads;
    std::atomic<bool> anyDone{false};
    double fairness = 0;
    Clock::time_point t0 = Clock::now();
    for (uint32_t c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            runClient(port, design, cgen, replicas, cycles, batch,
                      thinkMs, results[c]);
            anyDone.store(true);
        });
    std::thread sampler([&] {
        if (!manager)
            return;
        while (!anyDone.load()) {
            uint64_t lo = ~0ull, hi = 0;
            uint32_t seen = 0;
            for (const ClientResult &r : results) {
                if (!r.sessionId)
                    continue;
                uint64_t done =
                    manager->completedCycles(r.sessionId);
                if (!done)
                    continue;
                lo = std::min(lo, done);
                hi = std::max(hi, done);
                ++seen;
            }
            if (seen == clients && lo)
                fairness = static_cast<double>(hi) /
                    static_cast<double>(lo);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
    });
    for (auto &t : threads)
        t.join();
    sampler.join();
    double wall = secondsSince(t0);
    uint32_t okClients = 0;
    for (const ClientResult &r : results)
        okClients += r.ok;
    if (okClients != clients)
        fatal("%u of %u bench clients failed", clients - okClients,
              clients);
    double aggregateCps =
        static_cast<double>(cycles) * clients / wall;
    double createsPerSec = 0;
    {
        // Creates/sec: the artifact store makes session creation
        // after the first a warm start, so time M fresh creates.
        serve::Client c;
        if (c.connect(port)) {
            std::vector<uint64_t> ids;
            Clock::time_point c0 = Clock::now();
            for (uint32_t i = 0; i < clients; ++i)
                if (uint64_t id =
                        c.createSession(design, "par", 0, cgen))
                    ids.push_back(id);
            createsPerSec =
                static_cast<double>(ids.size()) / secondsSince(c0);
            for (uint64_t id : ids)
                c.destroySession(id);
        }
    }

    std::vector<double> allMs;
    for (ClientResult &r : results)
        allMs.insert(allMs.end(), r.stepMs.begin(), r.stepMs.end());
    double p50 = percentile(allMs, 0.50);
    double p99 = percentile(allMs, 0.99);

    Table t({"metric", "value"});
    t.row().cell("design").cell(design);
    t.row().cell("clients").cell(static_cast<uint64_t>(clients));
    t.row().cell("cycles/session").cell(cycles);
    t.row().cell("step batch").cell(batch);
    t.row().cell("think ms").cell(thinkMs);
    t.row().cell("base cycles/sec (1 session)").cell(baseCps, 0);
    t.row().cell("aggregate cycles/sec").cell(aggregateCps, 0);
    t.row().cell("aggregate / base").cell(aggregateCps / baseCps, 3);
    if (replicas > 1) {
        // Gang sessions: R design instances advance per scheduled
        // cycle, so lane throughput is the honest aggregate metric.
        t.row()
            .cell("replica lanes / session")
            .cell(static_cast<uint64_t>(replicas));
        t.row()
            .cell("aggregate lane-cycles/sec")
            .cell(aggregateCps * replicas, 0);
    }
    t.row().cell("session creates/sec").cell(createsPerSec, 1);
    t.row().cell("step p50 ms").cell(p50, 3);
    t.row().cell("step p99 ms").cell(p99, 3);
    t.row()
        .cell("fairness max/min cycles")
        .cell(fairness > 0 ? fairness : 1.0, 3);
    {
        serve::Client c;
        if (c.connect(port)) {
            t.row()
                .cell("artifact hits")
                .cell(statValue(c, serve::kArtifactHits));
            t.row()
                .cell("artifact misses")
                .cell(statValue(c, serve::kArtifactMisses));
            t.row()
                .cell("artifact warm starts")
                .cell(statValue(c, serve::kArtifactWarmStarts));
            if (replicas > 1)
                t.row()
                    .cell("host lane-cycles executed")
                    .cell(statValue(c, "serve_lane_cycles_executed"));
        }
    }
    t.print("Serve throughput (closed-loop, shared BspPool)");

    if (aggregateCps < 0.5 * baseCps)
        warn("aggregate %.0f cycles/sec is below 0.5x the "
             "single-session rate %.0f",
             aggregateCps, baseCps);
    if (fairness > 2.0)
        warn("fairness ratio %.2f exceeds 2.0 — a session is being "
             "starved", fairness);

    if (!jsonPath.empty()) {
        std::vector<bench::PerfRecord> records;
        uint32_t poolThreads =
            manager && manager->pool() ? manager->pool()->threads() : 0;
        bench::PerfRecord one;
        one.design = design;
        one.engine = "serve-c1";
        one.threads = poolThreads;
        one.cyclesPerSec = baseCps;
        one.replicas = replicas;
        records.push_back(one);
        bench::PerfRecord many;
        many.design = design;
        many.engine = "serve-c" + std::to_string(clients);
        many.threads = poolThreads;
        many.cyclesPerSec = aggregateCps;
        many.replicas = replicas;
        records.push_back(many);
        bench::writePerfJson(jsonPath, records);
        std::printf("wrote %s\n", jsonPath.c_str());
    }

    if (server)
        server->stop();
    return 0;
}
