/**
 * @file
 * Paper Fig. 12: scaling across IPU chips. Crossing the chip
 * boundary costs off-chip exchange and a slower global barrier, so
 * gains are smaller than on-chip scaling and maximum parallelism is
 * not always fastest.
 */

#include "bench_common.hh"

using namespace parendi;
using namespace parendi::bench;

int
main()
{
    setQuiet(true);
    // Multi-chip gains need designs big enough that one chip's 1472
    // tiles are oversubscribed (t_comp above the straggler floor).
    std::vector<std::string> designs = {"sr10", "sr12", "lr8"};
    if (!fastMode()) {
        designs.push_back("sr14");
        designs.push_back("lr10");
    }

    for (const std::string &name : designs) {
        Table t({"chips", "tiles used", "kHz", "norm", "t_comp",
                 "t_comm_on", "t_comm_off", "t_sync"});
        double base = 0;
        double best = 0;
        uint32_t best_chips = 1;
        for (uint32_t chips : {1u, 2u, 3u, 4u}) {
            auto sim = compileFor(makeDesign(name), chips, 1472);
            const ipu::CycleCosts &c = sim->cycleCosts();
            double khz = sim->rateKHz();
            if (chips == 1)
                base = khz;
            if (khz > best) {
                best = khz;
                best_chips = chips;
            }
            t.row().cell(uint64_t{chips})
                .cell(uint64_t{sim->machine().tilesUsed()})
                .cell(khz, 2).cell(khz / base, 2)
                .cell(c.tComp, 0).cell(c.tCommOn, 0)
                .cell(c.tCommOff, 0).cell(c.tSync, 0);
        }
        t.print(std::string("Fig. 12: ") + name + " across IPUs");
        std::printf("  %s: best at %u chip(s), %.2fx over one chip\n",
                    name.c_str(), best_chips, best / base);
    }
    std::printf("\nshape: multi-chip gains are far smaller than "
                "on-chip gains (off-chip exchange + slower barrier); "
                "for some designs fewer chips win.\n");
    return 0;
}
