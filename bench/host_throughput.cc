/**
 * @file
 * Host wall-clock microbenchmarks (google-benchmark): how fast this
 * repository's own engines run on the host CPU — the reference
 * interpreter, the partitioned BSP machine's functional execution,
 * and the compiler itself. These are engineering benchmarks for the
 * simulator (not paper figures): they track regressions in the
 * evaluation kernel and compile pipeline.
 */

#include <benchmark/benchmark.h>

#include "core/compiler.hh"
#include "designs/designs.hh"
#include "rtl/interp.hh"
#include "util/logging.hh"

using namespace parendi;

namespace {

void
BM_InterpPico(benchmark::State &state)
{
    rtl::Interpreter sim(
        designs::makePico(designs::defaultCoreConfig()));
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpPico);

void
BM_InterpPicoUnfused(benchmark::State &state)
{
    rtl::Interpreter sim(
        designs::makePico(designs::defaultCoreConfig()),
        rtl::LowerOptions::none());
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpPicoUnfused);

void
BM_InterpBitcoin(benchmark::State &state)
{
    rtl::Interpreter sim(designs::makeBitcoin({2, 16}));
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpBitcoin);

void
BM_InterpBitcoinUnfused(benchmark::State &state)
{
    rtl::Interpreter sim(designs::makeBitcoin({2, 16}),
                         rtl::LowerOptions::none());
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpBitcoinUnfused);

void
BM_InterpBitcoinSpecializedOnly(benchmark::State &state)
{
    rtl::LowerOptions lower;
    lower.fuse = false;
    rtl::Interpreter sim(designs::makeBitcoin({2, 16}), lower);
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpBitcoinSpecializedOnly);

void
BM_InterpMesh(benchmark::State &state)
{
    rtl::Interpreter sim(
        designs::makeSr(static_cast<uint32_t>(state.range(0))));
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpMesh)->Arg(2)->Arg(3)->Arg(4);

void
BM_MachineStepMesh(benchmark::State &state)
{
    setQuiet(true);
    core::CompilerOptions opt;
    opt.tilesPerChip = 256;
    auto sim = core::compile(
        designs::makeSr(static_cast<uint32_t>(state.range(0))), opt);
    for (auto _ : state)
        sim->step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MachineStepMesh)->Arg(2)->Arg(3);

void
BM_CompileMesh(benchmark::State &state)
{
    setQuiet(true);
    for (auto _ : state) {
        core::CompilerOptions opt;
        opt.chips = 4;
        auto sim = core::compile(
            designs::makeSr(static_cast<uint32_t>(state.range(0))),
            opt);
        benchmark::DoNotOptimize(sim->report().processes);
    }
}
BENCHMARK(BM_CompileMesh)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_FiberExtraction(benchmark::State &state)
{
    rtl::Netlist nl =
        designs::makeSr(static_cast<uint32_t>(state.range(0)));
    for (auto _ : state) {
        fiber::FiberSet fs(nl);
        benchmark::DoNotOptimize(fs.size());
    }
}
BENCHMARK(BM_FiberExtraction)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
