/**
 * @file
 * Host wall-clock microbenchmarks (google-benchmark): how fast this
 * repository's own engines run on the host CPU — the reference
 * interpreter, the partitioned BSP machine's functional execution,
 * and the compiler itself. These are engineering benchmarks for the
 * simulator (not paper figures): they track regressions in the
 * evaluation kernel and compile pipeline.
 *
 * `--json FILE` additionally runs a fixed engine matrix (reference
 * interpreter, the JIT-compiled cgen engine, IpuMachine with the
 * persistent pool and with the legacy per-cycle thread spawn,
 * ParallelInterpreter with and without native kernels at several
 * thread counts) on pico and bitcoin and writes the measured cycles/s
 * as a JSON object: git SHA + ISO timestamp metadata plus
 * {design, engine, threads, cycles_per_sec} records (the BENCH_*.json
 * trajectory format — see scripts/bench_baseline.sh). Combine with
 * --benchmark_filter=NONE to skip the google-benchmark suite and only
 * emit the matrix. PARENDI_BENCH_FAST=1 trims the measured cycle
 * counts.
 *
 * `--threads-sweep` widens the par and par-cgen rows to thread counts
 * 1/2/4/8 (the scaling curve for the fused-superstep engine). The
 * matrix always includes a `par-phased` row at 8 requested threads
 * with the hardware-concurrency worker clamp overridden: the PR4
 * four-barrier configuration, kept as the reference point the CI
 * scaling guard compares the fused engine against.
 *
 * `--replicas-sweep` appends gang-simulation rows: the cgen engine and
 * par-cgen (4 threads) at R = 1/4/8/16 replica lanes on pico and
 * bitcoin. cycles_per_sec stays per lane; the rows additionally carry
 * replicas and agg_lane_cycles_per_sec = R * cycles_per_sec (the
 * batched-throughput figure the CI gang guard checks).
 *
 * `--activity-sweep` appends activity A/B rows: cgen and par-cgen
 * (4 threads) with activity-guarded evaluation on vs the always-eval
 * baseline, on the clock-gated design and on bitcoin; the rows carry
 * an `activity` 0/1 column.
 *
 * `--repeat N` takes the best of N full measurements per row (min
 * wall time for the same work) — the defence against scheduler noise
 * on shared hosts.
 *
 * Each design's interp row additionally carries checkpoint columns
 * (snapshot_bytes, raw_blob_bytes, snapshot_ratio, save_ms,
 * restore_ms): the v2 compressed snapshot against the raw v1 engine
 * blob, and the save/restore wall latency.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include <fstream>
#include <sstream>

#include "bench_common.hh"
#include "core/compiler.hh"
#include "core/engine.hh"
#include "core/session.hh"
#include "designs/designs.hh"
#include "obs/report.hh"
#include "rtl/cgen.hh"
#include "rtl/interp.hh"
#include "rtl/vcd.hh"
#include "util/logging.hh"
#include "x86/parallel.hh"

using namespace parendi;

namespace {

void
BM_InterpPico(benchmark::State &state)
{
    rtl::Interpreter sim(
        designs::makePico(designs::defaultCoreConfig()));
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpPico);

void
BM_InterpPicoUnfused(benchmark::State &state)
{
    rtl::Interpreter sim(
        designs::makePico(designs::defaultCoreConfig()),
        rtl::LowerOptions::none());
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpPicoUnfused);

void
BM_InterpBitcoin(benchmark::State &state)
{
    rtl::Interpreter sim(designs::makeBitcoin({2, 16}));
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpBitcoin);

void
BM_InterpBitcoinUnfused(benchmark::State &state)
{
    rtl::Interpreter sim(designs::makeBitcoin({2, 16}),
                         rtl::LowerOptions::none());
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpBitcoinUnfused);

void
BM_InterpBitcoinSpecializedOnly(benchmark::State &state)
{
    rtl::LowerOptions lower;
    lower.fuse = false;
    rtl::Interpreter sim(designs::makeBitcoin({2, 16}), lower);
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpBitcoinSpecializedOnly);

void
BM_CgenPico(benchmark::State &state)
{
    rtl::CgenInterpreter sim(
        designs::makePico(designs::defaultCoreConfig()));
    if (!sim.native())
        state.SkipWithError("cgen toolchain unavailable");
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CgenPico);

void
BM_CgenBitcoin(benchmark::State &state)
{
    rtl::CgenInterpreter sim(designs::makeBitcoin({2, 16}));
    if (!sim.native())
        state.SkipWithError("cgen toolchain unavailable");
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CgenBitcoin);

void
BM_TracedInterpBitcoin(benchmark::State &state)
{
    // Steady-state VCD sampling is allocation-free: EngineTracer keeps
    // one scratch BitVec per traced signal and refills it in place via
    // peekInto(), so the per-cycle delta over BM_InterpBitcoin is pure
    // compare-and-format — no malloc on this path.
    rtl::Interpreter sim(designs::makeBitcoin({2, 16}));
    std::ofstream null("/dev/null");
    rtl::EngineTracer tracer(sim, null);
    for (auto _ : state)
        tracer.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracedInterpBitcoin);

void
BM_InterpMesh(benchmark::State &state)
{
    rtl::Interpreter sim(
        designs::makeSr(static_cast<uint32_t>(state.range(0))));
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpMesh)->Arg(2)->Arg(3)->Arg(4);

void
BM_MachineStepMesh(benchmark::State &state)
{
    setQuiet(true);
    core::CompilerOptions opt;
    opt.tilesPerChip = 256;
    auto sim = core::compile(
        designs::makeSr(static_cast<uint32_t>(state.range(0))), opt);
    for (auto _ : state)
        sim->step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MachineStepMesh)->Arg(2)->Arg(3);

std::unique_ptr<core::Simulation>
compileDesign(const std::string &design, uint32_t host_threads,
              bool persistent_pool, uint32_t max_host_workers = 0)
{
    setQuiet(true);
    core::CompilerOptions opt;
    opt.tilesPerChip = 256;
    opt.machine.hostThreads = host_threads;
    opt.machine.persistentPool = persistent_pool;
    opt.machine.maxHostWorkers = max_host_workers;
    return core::compile(bench::makeDesign(design), opt);
}

std::unique_ptr<core::Simulation>
compileBitcoin(uint32_t host_threads, bool persistent_pool)
{
    return compileDesign("bitcoin", host_threads, persistent_pool);
}

void
BM_MachineStepBitcoinPool(benchmark::State &state)
{
    auto sim = compileBitcoin(
        static_cast<uint32_t>(state.range(0)), true);
    for (auto _ : state)
        sim->step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MachineStepBitcoinPool)->Arg(1)->Arg(8);

void
BM_MachineStepBitcoinSpawn(benchmark::State &state)
{
    // The seed's host execution: threads spawned per compute phase,
    // sequential exchange — the baseline the persistent pool replaces.
    auto sim = compileBitcoin(
        static_cast<uint32_t>(state.range(0)), false);
    for (auto _ : state)
        sim->step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MachineStepBitcoinSpawn)->Arg(8);

void
BM_ParInterpBitcoin(benchmark::State &state)
{
    rtl::ParallelInterpreter sim(
        designs::makeBitcoin({2, 16}),
        static_cast<uint32_t>(state.range(0)));
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParInterpBitcoin)->Arg(1)->Arg(2)->Arg(8);

void
BM_CompileMesh(benchmark::State &state)
{
    setQuiet(true);
    for (auto _ : state) {
        core::CompilerOptions opt;
        opt.chips = 4;
        auto sim = core::compile(
            designs::makeSr(static_cast<uint32_t>(state.range(0))),
            opt);
        benchmark::DoNotOptimize(sim->report().processes);
    }
}
BENCHMARK(BM_CompileMesh)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_FiberExtraction(benchmark::State &state)
{
    rtl::Netlist nl =
        designs::makeSr(static_cast<uint32_t>(state.range(0)));
    for (auto _ : state) {
        fiber::FiberSet fs(nl);
        benchmark::DoNotOptimize(fs.size());
    }
}
BENCHMARK(BM_FiberExtraction)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// -- --json engine matrix ------------------------------------------------

/** `--repeat N`: take the best of N full measurements (min wall time
 *  for the same work), the standard defence against scheduler noise
 *  and frequency ramps on shared CI hosts. 1 = single measurement. */
long g_repeat = 1;

double
measureCyclesPerSec(core::SimEngine &engine, size_t cycles)
{
    // Repeat the measured block until enough wall time has elapsed:
    // the fast engines run `cycles` in well under a millisecond, where
    // a single timing is dominated by clock granularity and scheduler
    // noise.
    using clock = std::chrono::steady_clock;
    const double min_secs = bench::fastMode() ? 0.05 : 0.25;
    engine.step(std::max<size_t>(cycles / 10, 8)); // warm up
    double best = 0;
    for (long rep = 0; rep < std::max(1L, g_repeat); ++rep) {
        size_t done = 0;
        double secs = 0;
        auto t0 = clock::now();
        do {
            engine.step(cycles);
            done += cycles;
            secs = std::chrono::duration<double>(clock::now() - t0)
                       .count();
        } while (secs < min_secs);
        double rate =
            secs > 0 ? static_cast<double>(done) / secs : 0;
        best = std::max(best, rate);
    }
    return best;
}

/**
 * Measure the engine's r_cycle decomposition (after the throughput
 * measurement, so profiling overhead cannot contaminate it) and store
 * it on the record as shares of the sampled wall time. No-op for
 * engines without instrumentation.
 */
void
attachMeasuredSplit(core::SimEngine &engine, bench::PerfRecord &rec)
{
    obs::ProfileOptions popt;
    popt.sampleEvery = 4;
    if (!engine.enableProfiling(popt))
        return;
    engine.step(bench::fastMode() ? 256 : 1024);
    obs::ProfileReport rep = obs::buildReport(*engine.profiler());
    if (rep.sampledWallSec <= 0)
        return;
    rec.hasSplit = true;
    rec.tCompFrac = rep.tCompSec / rep.sampledWallSec;
    rec.tCommFrac = rep.tCommSec / rep.sampledWallSec;
    rec.tSyncFrac = rep.tSyncSec / rep.sampledWallSec;
}

/**
 * Checkpoint columns for the design's interp row: the v2 compressed
 * snapshot size against the raw v1 engine blob, plus the save and
 * restore wall latency (src/ckpt; see DESIGN.md "Checkpoint &
 * replay"). The CI perf smoke asserts snapshot_ratio <= 0.5.
 */
void
attachCkptColumns(core::SimEngine &engine, bench::PerfRecord &rec)
{
    using clock = std::chrono::steady_clock;
    std::stringstream v2, v1;
    auto t0 = clock::now();
    core::saveCheckpoint(engine, v2);
    auto t1 = clock::now();
    core::saveCheckpointV1(engine, v1);
    rec.snapshotBytes = v2.str().size();
    rec.rawBlobBytes = v1.str().size();
    rec.saveMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::stringstream in(v2.str());
    auto t2 = clock::now();
    core::restoreCheckpoint(engine, in);
    rec.restoreMs =
        std::chrono::duration<double, std::milli>(clock::now() - t2)
            .count();
}

void
runEngineMatrixFor(const std::string &design, size_t cycles,
                   bool threads_sweep,
                   std::vector<bench::PerfRecord> &recs)
{
    auto record = [&](const std::string &engine_name, uint32_t threads,
                      core::SimEngine &engine) {
        bench::PerfRecord rec{design, engine_name, threads,
                              measureCyclesPerSec(engine, cycles)};
        attachMeasuredSplit(engine, rec);
        recs.push_back(rec);
    };

    {
        rtl::Interpreter sim(bench::makeOptimized(design));
        record("interp", 1, sim);
        attachCkptColumns(sim, recs.back());
    }
    {
        rtl::CgenInterpreter sim(bench::makeOptimized(design));
        if (sim.native())
            record("cgen", 1, sim);
        else
            warn("cgen toolchain unavailable; omitting cgen rows "
                 "for %s", design.c_str());
    }
    for (uint32_t threads : {1u, 8u}) {
        auto sim = compileDesign(design, threads, true);
        record("ipu", threads, sim->machine());
    }
    {
        // The seed's per-cycle-spawn baseline at the same thread
        // count, with the worker clamp overridden so the row keeps
        // spawning eight real threads on any host.
        auto sim = compileDesign(design, 8, false, 8);
        record("ipu-spawn", 8, sim->machine());
    }
    const std::vector<uint32_t> par_threads = threads_sweep
        ? std::vector<uint32_t>{1, 2, 4, 8}
        : std::vector<uint32_t>{1, 2, 8};
    const std::vector<uint32_t> cgen_threads = threads_sweep
        ? std::vector<uint32_t>{1, 2, 4, 8}
        : std::vector<uint32_t>{1, 8};
    for (uint32_t threads : par_threads) {
        rtl::ParallelInterpreter sim(bench::makeOptimized(design),
                                     threads);
        record("par", threads, sim);
    }
    {
        // The PR4 configuration as a guard row: four-barrier phased
        // supersteps with the worker clamp overridden, so all eight
        // workers are real even when the host has fewer cores. The CI
        // scaling guard asserts the fused par row beats this one.
        rtl::ParConfig pcfg;
        pcfg.fused = false;
        pcfg.maxWorkers = 8;
        rtl::ParallelInterpreter sim(bench::makeOptimized(design), 8,
                                     rtl::LowerOptions{}, pcfg);
        record("par-phased", 8, sim);
    }
    for (uint32_t threads : cgen_threads) {
        // Same BSP supersteps, native evaluate phase (--engine par
        // --cgen on the CLI).
        rtl::ParallelInterpreter sim(bench::makeOptimized(design),
                                     threads);
        if (sim.enableNativeKernels() == sim.numShards())
            record("par-cgen", threads, sim);
    }
}

/**
 * Gang-simulation rows: one instruction stream stepping R replica
 * lanes (rtl::GangState SoA layout + lane-vectorized cgen kernels).
 * cyclesPerSec is measured per lane as usual — step(n) advances all
 * lanes n cycles — and the record's replicas field lets readers form
 * the aggregate R * cyclesPerSec.
 */
void
runReplicasSweepFor(const std::string &design, size_t cycles,
                    std::vector<bench::PerfRecord> &recs)
{
    for (uint32_t r : {1u, 4u, 8u, 16u}) {
        rtl::CgenOptions copt;
        copt.lanes = r;
        rtl::CgenInterpreter sim(bench::makeOptimized(design),
                                 rtl::LowerOptions{}, copt);
        if (!sim.native()) {
            warn("cgen toolchain unavailable; omitting gang rows "
                 "for %s", design.c_str());
            return;
        }
        bench::PerfRecord rec{design, "cgen", 1,
                              measureCyclesPerSec(sim, cycles)};
        rec.replicas = r;
        recs.push_back(rec);
    }
    for (uint32_t r : {1u, 4u, 8u, 16u}) {
        rtl::ParConfig pcfg;
        pcfg.replicas = r;
        rtl::ParallelInterpreter sim(bench::makeOptimized(design), 4,
                                     rtl::LowerOptions{}, pcfg);
        if (sim.enableNativeKernels() != sim.numShards())
            return;
        bench::PerfRecord rec{design, "par-cgen", 4,
                              measureCyclesPerSec(sim, cycles)};
        rec.replicas = r;
        recs.push_back(rec);
    }
}

/**
 * Activity A/B rows (--activity-sweep): the cgen engine and par-cgen
 * (4 requested threads) with activity-guarded evaluation on vs the
 * always-eval baseline, on the clock-gated design (where guards skip
 * the idle heavy cones) and on bitcoin (always active — the guard
 * overhead floor the CI perf smoke bounds at 5%).
 */
void
runActivitySweepFor(const std::string &design, size_t cycles,
                    std::vector<bench::PerfRecord> &recs)
{
    for (int act : {1, 0}) {
        rtl::CgenInterpreter sim(bench::makeOptimized(design));
        if (!sim.native()) {
            warn("cgen toolchain unavailable; omitting activity rows "
                 "for %s", design.c_str());
            return;
        }
        sim.setActivity(act != 0);
        bench::PerfRecord rec{design, "cgen", 1,
                              measureCyclesPerSec(sim, cycles)};
        rec.activity = act;
        recs.push_back(rec);
    }
    for (int act : {1, 0}) {
        rtl::ParallelInterpreter sim(bench::makeOptimized(design), 4);
        if (sim.enableNativeKernels() != sim.numShards())
            return;
        sim.setActivity(act != 0);
        bench::PerfRecord rec{design, "par-cgen", 4,
                              measureCyclesPerSec(sim, cycles)};
        rec.activity = act;
        recs.push_back(rec);
    }
}

std::vector<bench::PerfRecord>
runEngineMatrix(bool threads_sweep, bool replicas_sweep,
                bool activity_sweep)
{
    const size_t cycles = bench::fastMode() ? 200 : 2000;
    std::vector<bench::PerfRecord> recs;
    for (const char *design : {"pico", "bitcoin"})
        runEngineMatrixFor(design, cycles, threads_sweep, recs);
    if (replicas_sweep)
        for (const char *design : {"pico", "bitcoin"})
            runReplicasSweepFor(design, cycles, recs);
    if (activity_sweep)
        for (const char *design : {"gated", "bitcoin"})
            runActivitySweepFor(design, cycles, recs);
    return recs;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = bench::extractJsonFlag(argc, argv);
    bool threads_sweep =
        bench::extractBoolFlag(argc, argv, "--threads-sweep");
    bool replicas_sweep =
        bench::extractBoolFlag(argc, argv, "--replicas-sweep");
    bool activity_sweep =
        bench::extractBoolFlag(argc, argv, "--activity-sweep");
    g_repeat = bench::extractIntFlag(argc, argv, "--repeat", 1);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!json_path.empty())
        bench::writePerfJson(
            json_path, runEngineMatrix(threads_sweep, replicas_sweep,
                                       activity_sweep));
    return 0;
}
