/**
 * @file
 * Paper Table 3 + Fig. 7: the headline evaluation. For every
 * benchmark design: single- and multi-threaded Verilator-model rates
 * on ix3 and ae4, the best Parendi configuration over 1-4 IPUs, the
 * speedups (the Fig. 7 series), and the size columns (#I, #N, #F,
 * Int./Ext. cut).
 *
 * Expected shape: small designs (sr2/lr2) favor x86 (speedup < 1);
 * speedup grows with design size, crossing 1 around sr3-sr4 and
 * reaching its maximum for the largest meshes; the final gmean is
 * the paper's headline ~2.8x (ours differs in absolute value since
 * every design is scaled down, but the ordering and crossover hold).
 */

#include "bench_common.hh"

#include "fiber/fiber.hh"

using namespace parendi;
using namespace parendi::bench;

int
main()
{
    setQuiet(true);
    std::vector<std::string> designs = {"vta", "mc"};
    uint32_t sr_max = fastMode() ? 6 : 14;
    uint32_t lr_max = fastMode() ? 5 : 10;
    for (uint32_t n = 2; n <= sr_max; ++n)
        designs.push_back("sr" + std::to_string(n));
    for (uint32_t n = 2; n <= lr_max; ++n)
        designs.push_back("lr" + std::to_string(n));

    x86::X86Arch ix3 = x86::X86Arch::ix3();
    x86::X86Arch ae4 = x86::X86Arch::ae4();

    Table t({"bench", "ix3 st", "ix3 mt", "#T", "gain", "ae4 st",
             "ae4 mt", "#T", "gain", "IPU kHz", "#tiles", "chips",
             "sp ix3", "sp ae4", "gmean", "#I(K)", "#N(K)", "#F",
             "Int KiB", "Ext KiB"});
    std::vector<double> sp_ix3_all, sp_ae4_all, sp_all;
    Table fig7({"bench", "speedup ix3", "speedup ae4"});

    for (const std::string &name : designs) {
        rtl::Netlist nl = makeOptimized(name);
        fiber::FiberSet fs(nl);
        x86::DesignProfile prof = x86::profileDesign(fs);

        X86Result rix = runX86(ix3, fs);
        X86Result rae = runX86(ae4, fs);

        IpuBest best = bestParendi(name);
        const core::CompileReport &rep = best.sim->report();

        double sp_ix = best.kHz / std::max(rix.mtKHz, rix.stKHz);
        double sp_ae = best.kHz / std::max(rae.mtKHz, rae.stKHz);
        double g = std::sqrt(sp_ix * sp_ae);
        sp_ix3_all.push_back(sp_ix);
        sp_ae4_all.push_back(sp_ae);
        sp_all.push_back(g);

        t.row().cell(name)
            .cell(rix.stKHz, 2).cell(rix.mtKHz, 2)
            .cell(uint64_t{rix.threads})
            .cell(rix.mtKHz / rix.stKHz, 1)
            .cell(rae.stKHz, 2).cell(rae.mtKHz, 2)
            .cell(uint64_t{rae.threads})
            .cell(rae.mtKHz / rae.stKHz, 1)
            .cell(best.kHz, 2)
            .cell(uint64_t{best.sim->machine().tilesUsed()})
            .cell(uint64_t{best.chips})
            .cell(sp_ix, 2).cell(sp_ae, 2).cell(g, 2)
            .cell(static_cast<double>(prof.totalInstrs) / 1e3, 1)
            .cell(static_cast<double>(rep.metrics.nodes) / 1e3, 1)
            .cell(rep.fibers)
            .cell(static_cast<double>(rep.intCutBytes) / 1024.0, 1)
            .cell(static_cast<double>(rep.extCutBytes) / 1024.0, 1);

        fig7.row().cell(name).cell(sp_ix, 2).cell(sp_ae, 2);
    }
    t.print("Table 3: Parendi vs Verilator-model");
    fig7.print("Fig. 7: IPU speedup vs multithreaded Verilator-model");

    std::printf("\ngmean speedup: vs ix3 %.2f, vs ae4 %.2f, overall "
                "%.2f (paper: 2.81 / 2.75 / 2.78)\n",
                gmean(sp_ix3_all), gmean(sp_ae4_all), gmean(sp_all));
    std::printf("shape: speedup < 1 for sr2/lr2, rises with N "
                "(crossover around sr3-sr4), largest for the biggest "
                "meshes.\n");
    return 0;
}
