/**
 * @file
 * Paper Fig. 4: synchronization latency study. Banks of independent
 * xorshift32 PRNGs are spread with a fixed number of fibers per tile
 * (IPU) or per thread (x86); with zero communication, any rate drop
 * as parallelism grows is pure synchronization overhead.
 *
 * Expected shape: on the IPU the 7-fibers/tile line loses roughly
 * half its rate at 5888 tiles while 448 fibers/tile stays near 1.0;
 * on x86 even 736 fibers/thread collapses by more than 75%.
 */

#include "bench_common.hh"

#include "fiber/fiber.hh"
#include "ipu/arch.hh"

using namespace parendi;
using namespace parendi::bench;

namespace {

/** Per-fiber cost of one xorshift32 generator, measured from a real
 *  fiber decomposition. */
struct PrngFiberCost
{
    double ipuCycles;
    double x86Instrs;
    double dataBytes;
};

PrngFiberCost
measureFiber()
{
    rtl::Netlist nl = designs::makePrngBank(16);
    fiber::FiberSet fs(nl);
    // Use the register fibers only (skip the sample output fiber).
    double cyc = 0, instr = 0, n = 0;
    for (size_t i = 0; i < fs.size(); ++i) {
        if (fs[i].kind != fiber::SinkKind::Register)
            continue;
        cyc += static_cast<double>(fs[i].totalIpu);
        instr += static_cast<double>(fs[i].totalX86);
        n += 1;
    }
    return {cyc / n, instr / n, 64.0};
}

} // namespace

int
main()
{
    setQuiet(true);
    PrngFiberCost fiber = measureFiber();

    // ---- IPU ------------------------------------------------------------
    ipu::IpuArch arch;
    const uint32_t fibers_per_tile[] = {7, 56, 448};
    Table ipu_table({"tiles", "chips", "f=7", "f=56", "f=448"});
    std::vector<double> base(3, 0);
    for (uint32_t tiles = 64; tiles <= 5888; tiles += 448) {
        uint32_t chips = (tiles + 1471) / 1472;
        ipu_table.row().cell(uint64_t{tiles}).cell(uint64_t{chips});
        for (int i = 0; i < 3; ++i) {
            double t_comp = fibers_per_tile[i] * fiber.ipuCycles +
                arch.tileLoopOverhead;
            double t_sync = 2.0 * arch.barrierCycles(tiles, chips);
            double rate = arch.rateKHz(t_comp + t_sync);
            if (tiles == 64)
                base[i] = rate;
            ipu_table.cell(rate / base[i], 3);
        }
        if (tiles == 64)
            tiles -= 64; // continue on the 448 grid after the first
    }
    ipu_table.print("Fig. 4 (left): IPU PRNG rate, normalized to 64 "
                    "tiles");

    // ---- x86 ------------------------------------------------------------
    x86::X86Arch ix3 = x86::X86Arch::ix3();
    const uint32_t fibers_per_thread[] = {736, 5888, 47104};
    Table x86_table({"threads", "f=736", "f=5888", "f=47104"});
    std::vector<double> xbase(3, 0);
    for (uint32_t threads = 1; threads <= 56;
         threads += (threads == 1 ? 3 : 4)) {
        x86_table.row().cell(uint64_t{threads});
        for (int i = 0; i < 3; ++i) {
            // Independent fibers: no producer-consumer traffic.
            x86::DesignProfile prof;
            uint64_t n = uint64_t{fibers_per_thread[i]} * threads;
            prof.totalInstrs = static_cast<uint64_t>(
                n * fiber.x86Instrs);
            prof.maxFiberInstrs =
                static_cast<uint64_t>(fiber.x86Instrs);
            prof.dataBytes = static_cast<uint64_t>(
                n * fiber.dataBytes);
            prof.codeBytes = prof.totalInstrs * 8;
            prof.commBytes = 0;
            double t = x86::modelVerilator(ix3, prof, threads)
                .totalNs();
            double rate = 1e6 / t;
            if (threads == 1)
                xbase[i] = rate;
            x86_table.cell(rate / xbase[i], 3);
        }
    }
    x86_table.print("Fig. 4 (right): x86 PRNG rate, normalized to 1 "
                    "thread");

    // Headline checks mirrored from the paper's discussion.
    std::printf("\nshape: IPU f=7 line ends well below 1.0; "
                "x86 f=736 line loses >75%% of its rate.\n");
    return 0;
}
