/**
 * @file
 * Paper Fig. 6: straggler fibers. For pico, bitcoin and rocket:
 *  (b) the distribution of fiber computation cycles, and
 *  (c) scheduled t_comp as tiles double, against perfect scaling,
 * plus m_crit — the tile count where t_comp first reaches the
 * straggler bound max_i t_i.
 *
 * Expected shape: pico (most imbalanced) leaves the linear region
 * almost immediately; bitcoin (balanced fibers) tracks perfect
 * scaling the longest.
 */

#include "bench_common.hh"

#include <algorithm>

#include "fiber/fiber.hh"
#include "partition/merge.hh"

using namespace parendi;
using namespace parendi::bench;

int
main()
{
    setQuiet(true);
    const char *names[] = {"pico", "bitcoin", "rocket"};

    Table dist({"design", "fibers", "min", "p50", "p90", "max",
                "max/p50"});
    for (const char *name : names) {
        rtl::Netlist nl = makeDesign(name);
        fiber::FiberSet fs(nl);
        std::vector<uint64_t> costs;
        for (size_t i = 0; i < fs.size(); ++i)
            costs.push_back(fs[i].totalIpu);
        std::sort(costs.begin(), costs.end());
        auto pct = [&](double p) {
            return costs[static_cast<size_t>(p * (costs.size() - 1))];
        };
        dist.row().cell(name).cell(costs.size()).cell(costs.front())
            .cell(pct(0.5)).cell(pct(0.9)).cell(costs.back())
            .cell(static_cast<double>(costs.back()) /
                  static_cast<double>(std::max<uint64_t>(pct(0.5), 1)),
                  1);
    }
    dist.print("Fig. 6b: fiber computation cycles (IPU)");

    Table scale({"design", "tiles", "t_comp", "perfect", "ratio",
                 "at straggler?"});
    Table crit({"design", "fibers", "straggler", "m_crit"});
    for (const char *name : names) {
        rtl::Netlist nl = makeDesign(name);
        fiber::FiberSet fs(nl);
        uint64_t straggler = fs.maxFiberIpu();
        uint64_t total = fs.sumTotalIpu();
        uint32_t m_crit = 0;
        for (uint32_t tiles = 1; tiles <= fs.size(); tiles *= 2) {
            partition::Partitioning p =
                partition::bottomUpPartition(fs, 1, tiles);
            uint64_t t_comp = p.makespanIpu();
            double perfect =
                static_cast<double>(total) / tiles;
            scale.row().cell(name).cell(uint64_t{tiles}).cell(t_comp)
                .cell(perfect, 0)
                .cell(static_cast<double>(t_comp) /
                      std::max(perfect,
                               static_cast<double>(straggler)), 2)
                .cell(t_comp <= straggler ? "yes" : "no");
            if (!m_crit && t_comp <= straggler)
                m_crit = tiles;
        }
        if (!m_crit)
            m_crit = static_cast<uint32_t>(fs.size());
        crit.row().cell(name).cell(fs.size()).cell(straggler)
            .cell(uint64_t{m_crit});
    }
    scale.print("Fig. 6c: t_comp vs tiles (perfect = total/tiles)");
    crit.print("Fig. 6a: m_crit per design (tiles needed to reach the "
               "straggler bound)");

    std::printf("\nshape: bitcoin stays closest to perfect scaling; "
                "pico hits its straggler with the fewest tiles.\n");
    return 0;
}
