/**
 * @file
 * Paper Fig. 10: the two x86 machines have different scaling
 * profiles — ae4 (big chiplet L3, more cores) can be superlinear at
 * low thread counts, ix3 holds up better near its socket limit; no
 * machine wins everywhere.
 */

#include "bench_common.hh"

#include "fiber/fiber.hh"

using namespace parendi;
using namespace parendi::bench;

int
main()
{
    setQuiet(true);
    Table t({"design", "machine", "t=4", "t=8", "t=16", "t=28",
             "t=32", "superlinear@"});
    for (const char *name : {"sr4", "sr6", "sr8", "lr6"}) {
        rtl::Netlist nl = makeOptimized(name);
        fiber::FiberSet fs(nl);
        x86::DesignProfile prof = x86::profileDesign(fs);
        for (auto arch : {x86::X86Arch::ix3(), x86::X86Arch::ae4()}) {
            double base =
                x86::modelVerilator(arch, prof, 1).totalNs();
            t.row().cell(name).cell(arch.name);
            std::string super = "-";
            for (uint32_t thr : {4u, 8u, 16u, 28u, 32u}) {
                double sp = base /
                    x86::modelVerilator(arch, prof, thr).totalNs();
                t.cell(sp, 2);
                if (sp > thr && super == "-")
                    super = std::to_string(thr);
            }
            // Scan densely for any superlinear point.
            for (uint32_t thr = 2; thr <= 16 && super == "-";
                 thr += 2) {
                double sp = base /
                    x86::modelVerilator(arch, prof, thr).totalNs();
                if (sp > thr)
                    super = std::to_string(thr);
            }
            t.cell(super);
        }
    }
    t.print("Fig. 10: speedup profiles, ix3 vs ae4 (superlinear@ = "
            "first thread count whose speedup exceeds it)");
    std::printf("\nshape: larger designs show superlinear points "
                "(cache-capacity relief); neither machine dominates "
                "across all designs and thread counts.\n");
    return 0;
}
