/**
 * @file
 * Paper Table 1: simulation rate of the three small designs on the
 * IPU (one tile vs. one-fiber-per-tile) and on x86 (one thread vs.
 * the best multithreaded configuration).
 *
 * Expected shape: none of the small designs speeds up on x86 (sync
 * cost dominates); on the IPU all three gain from parallelism, with
 * bitcoin gaining the most (balanced fibers); single-tile IPU rates
 * are 1-2 orders of magnitude below single-thread x86.
 */

#include "bench_common.hh"

#include "fiber/fiber.hh"

using namespace parendi;
using namespace parendi::bench;

int
main()
{
    setQuiet(true);
    Table t({"bench", "ipu par", "ipu kHz", "x86 par", "x86 kHz",
             "ipu gain", "x86 gain", "1tile/1thr"});

    for (const char *name : {"pico", "bitcoin", "rocket"}) {
        rtl::Netlist nl = makeOptimized(name);
        fiber::FiberSet fs(nl);

        // IPU single tile (forced by a 1-tile budget)...
        auto one = compileFor(makeDesign(name), 1, 1);
        // ...vs one fiber per tile (no merging).
        auto par = compileFor(makeDesign(name), 1, 1472);
        double one_khz = one->rateKHz();
        double par_khz = par->rateKHz();

        x86::X86Arch ix3 = x86::X86Arch::ix3();
        X86Result xr = runX86(ix3, fs);

        t.row().cell(name)
            .cell(uint64_t{par->machine().tilesUsed()})
            .cell(par_khz, 1)
            .cell(uint64_t{xr.threads})
            .cell(std::max(xr.mtKHz, xr.stKHz), 1)
            .cell(par_khz / one_khz, 2)
            .cell(xr.mtKHz / xr.stKHz, 2)
            .cell(xr.stKHz / one_khz, 1);

        Table detail({"config", "kHz"});
        detail.row().cell("ipu 1 tile").cell(one_khz, 1);
        detail.row().cell("ipu max par").cell(par_khz, 1);
        detail.row().cell("x86 1 thread").cell(xr.stKHz, 1);
        detail.row().cell(strprintf("x86 %u threads", xr.threads))
            .cell(xr.mtKHz, 1);
        detail.print(std::string("Table 1 detail: ") + name);
    }
    t.print("Table 1: small-design rates (par = tiles/threads used)");

    std::printf("\nshape: x86 gain ~<= 1 for all three (no profit "
                "from threads); ipu gain > 1 for all, largest for "
                "bitcoin; the last column is the paper's ~37-84x "
                "single-core gap.\n");
    return 0;
}
