/**
 * @file
 * Paper Table 2 (compile time and memory): compilation statistics of
 * the Parendi compiler across the benchmark suite — wall-clock
 * seconds, peak RSS, fibers, processes, and the partitioner stage
 * counts. (The paper contrasts with Verilator's multithreaded
 * compile blow-up — up to 8 hours / 1 TiB; our substitute baseline
 * is a performance model, so this table reports the Parendi side and
 * the min/max summary the paper gives.)
 */

#include "bench_common.hh"

using namespace parendi;
using namespace parendi::bench;

int
main()
{
    setQuiet(true);
    std::vector<std::string> designs = {"pico", "rocket", "bitcoin",
                                        "mc", "vta", "sr2", "sr4",
                                        "sr6", "lr2", "lr4"};
    if (!fastMode()) {
        designs.push_back("sr8");
        designs.push_back("sr10");
        designs.push_back("lr6");
        designs.push_back("lr8");
    }

    Table t({"design", "nodes", "fibers", "procs", "chips",
             "compile s", "RSS MiB", "dup ratio"});
    double min_s = 1e30, max_s = 0;
    uint64_t max_rss = 0;
    for (const std::string &name : designs) {
        auto sim = compileFor(makeDesign(name), 4, 1472);
        const core::CompileReport &r = sim->report();
        t.row().cell(name).cell(r.metrics.nodes).cell(r.fibers)
            .cell(r.processes).cell(uint64_t{r.chips})
            .cell(r.compileSeconds, 3)
            .cell(static_cast<double>(r.compileRssBytes) / 1048576.0,
                  1)
            .cell(r.duplicationRatio, 3);
        min_s = std::min(min_s, r.compileSeconds);
        max_s = std::max(max_s, r.compileSeconds);
        max_rss = std::max(max_rss, r.compileRssBytes);
    }
    t.print("Table 2: Parendi compile time and memory (4-chip "
            "target)");
    std::printf("\nsummary: compile time %.3fs min / %.3fs max, peak "
                "RSS %.0f MiB.\n(paper: Parendi 26s-40m vs Verilator "
                "3s-8h and up to 1043 GiB; our compiler shows the "
                "same flat scaling with design size that the paper "
                "credits Parendi with)\n",
                min_s, max_s,
                static_cast<double>(max_rss) / 1048576.0);
    return 0;
}
