/**
 * @file
 * Paper Fig. 8: Verilator's speedup collapses quickly for small
 * designs because per-cycle synchronization dominates. Thread sweep
 * of the Verilator model for sr2/sr3/lr2/lr3 on both machines.
 *
 * Expected shape: self-relative speedup peaks at a low thread count
 * (<= ~8) and then *declines* as threads are added.
 */

#include "bench_common.hh"

#include "fiber/fiber.hh"

using namespace parendi;
using namespace parendi::bench;

int
main()
{
    setQuiet(true);
    for (const char *name : {"sr2", "sr3", "lr2", "lr3"}) {
        rtl::Netlist nl = makeOptimized(name);
        fiber::FiberSet fs(nl);
        x86::DesignProfile prof = x86::profileDesign(fs);
        Table t({"threads", "ix3 speedup", "ae4 speedup"});
        x86::X86Arch ix3 = x86::X86Arch::ix3();
        x86::X86Arch ae4 = x86::X86Arch::ae4();
        double base_ix = x86::modelVerilator(ix3, prof, 1).totalNs();
        double base_ae = x86::modelVerilator(ae4, prof, 1).totalNs();
        uint32_t peak_ix = 1;
        double best_ix = 1.0;
        for (uint32_t thr = 2; thr <= 32; thr += 2) {
            double sp_ix = base_ix /
                x86::modelVerilator(ix3, prof, thr).totalNs();
            double sp_ae = base_ae /
                x86::modelVerilator(ae4, prof, thr).totalNs();
            t.row().cell(uint64_t{thr}).cell(sp_ix, 2).cell(sp_ae, 2);
            if (sp_ix > best_ix) {
                best_ix = sp_ix;
                peak_ix = thr;
            }
        }
        t.print(std::string("Fig. 8: ") + name +
                " self-relative Verilator speedup");
        std::printf("  %s peaks at %u threads (%.2fx) then falls\n",
                    name, peak_ix, best_ix);
    }
    return 0;
}
