/**
 * @file
 * Shared helpers for the benchmark harnesses. Every bench binary
 * regenerates one table or figure of the paper (see DESIGN.md's
 * per-experiment index) and prints it via util/table.hh.
 */

#ifndef PARENDI_BENCH_COMMON_HH
#define PARENDI_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/compiler.hh"
#include "rtl/opt.hh"
#include "designs/designs.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "x86/model.hh"

namespace parendi::bench {

/** Benchmarks honor PARENDI_BENCH_FAST=1 to trim sweep sizes. */
inline bool
fastMode()
{
    const char *v = std::getenv("PARENDI_BENCH_FAST");
    return v && v[0] == '1';
}

/** Build a named benchmark design ("pico", "bitcoin", "mc", "vta",
 *  "srN", "lrN" with N a number, "prngN"). */
inline rtl::Netlist
makeDesign(const std::string &name)
{
    using namespace designs;
    if (name == "pico")
        return makePico(defaultCoreConfig());
    if (name == "rocket")
        return makeRocket(defaultCoreConfig());
    if (name == "bitcoin")
        return makeBitcoin({4, 16});
    if (name == "mc")
        return makeMc(McConfig{});
    if (name == "vta")
        return makeVta(VtaConfig{});
    if (name.rfind("sr", 0) == 0)
        return makeSr(static_cast<uint32_t>(std::stoul(name.substr(2))));
    if (name.rfind("lr", 0) == 0)
        return makeLr(static_cast<uint32_t>(std::stoul(name.substr(2))));
    if (name.rfind("prng", 0) == 0)
        return makePrngBank(
            static_cast<uint32_t>(std::stoul(name.substr(4))));
    if (name == "gated")
        return makeGated(GatedConfig{});
    fatal("unknown design %s", name.c_str());
}

/** The design as the compiler would see it (optimizer applied) —
 *  used when profiling the x86 baseline so both sides of a
 *  comparison run the same optimized netlist (Verilator is -O3). */
inline rtl::Netlist
makeOptimized(const std::string &name)
{
    return rtl::optimize(makeDesign(name));
}

/** Compile for a given machine shape. */
inline std::unique_ptr<core::Simulation>
compileFor(rtl::Netlist nl, uint32_t chips, uint32_t tiles_per_chip,
           core::CompilerOptions base = core::CompilerOptions{})
{
    base.chips = chips;
    base.tilesPerChip = tiles_per_chip;
    return core::compile(std::move(nl), base);
}

/** Best Parendi configuration over 1..4 chips (paper methodology:
 *  only whole-IPU counts are considered). */
struct IpuBest
{
    uint32_t chips = 1;
    double kHz = 0;
    std::unique_ptr<core::Simulation> sim;
};

inline IpuBest
bestParendi(const std::string &design,
            const std::vector<uint32_t> &chip_counts = {1, 2, 3, 4},
            core::CompilerOptions base = core::CompilerOptions{})
{
    IpuBest best;
    for (uint32_t chips : chip_counts) {
        auto sim = compileFor(makeDesign(design), chips, 1472, base);
        double rate = sim->rateKHz();
        if (rate > best.kHz) {
            best.kHz = rate;
            best.chips = chips;
            best.sim = std::move(sim);
        }
    }
    return best;
}

/** x86 (Verilator-model) results for one design on one machine. */
struct X86Result
{
    double stKHz = 0;
    double mtKHz = 0;
    uint32_t threads = 1;
};

inline X86Result
runX86(const x86::X86Arch &arch, const fiber::FiberSet &fs,
       uint32_t max_threads = 32)
{
    x86::DesignProfile prof = x86::profileDesign(fs);
    X86Result r;
    r.stKHz = x86::modelVerilator(arch, prof, 1).rateKHz();
    x86::BestThreads best = x86::bestVerilator(arch, prof, max_threads);
    r.mtKHz = best.perf.rateKHz();
    r.threads = best.threads;
    return r;
}

/** Geometric mean. */
inline double
gmean(const std::vector<double> &v)
{
    if (v.empty())
        return 0;
    double acc = 0;
    for (double x : v)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(v.size()));
}

// -- Machine-readable results (--json FILE) ------------------------------

/** One measured host-throughput data point. */
struct PerfRecord
{
    std::string design;
    std::string engine;     ///< "interp", "ipu", "ipu-spawn", "par", ...
    uint32_t threads = 0;
    double cyclesPerSec = 0;

    /** Measured r_cycle decomposition (obs::SuperstepProfiler), as
     *  shares of the sampled cycle wall time; present only for
     *  engines with runtime instrumentation. The JSON fields are
     *  optional, so older BENCH_*.json readers keep working. */
    bool hasSplit = false;
    double tCompFrac = 0;
    double tCommFrac = 0;
    double tSyncFrac = 0;

    /** Gang rows (--replicas-sweep): replica lanes stepped per cycle.
     *  cyclesPerSec is per lane; the JSON additionally carries the
     *  aggregate replicas * cyclesPerSec as agg_lane_cycles_per_sec.
     *  Both fields are emitted only when replicas > 1, so older
     *  readers keep working. */
    uint32_t replicas = 1;

    /** Activity A/B rows (--activity-sweep): 1 = activity-guarded
     *  evaluation, 0 = always-eval baseline. -1 (the default) marks
     *  rows outside the sweep; the JSON field is emitted only when
     *  >= 0, so older readers keep working. */
    int activity = -1;

    /** Checkpoint columns (attached to the interp row of each
     *  design): v2 compressed snapshot bytes vs the raw v1 engine
     *  blob, plus save/restore wall latency. Emitted only when
     *  snapshotBytes > 0, so older readers keep working. */
    uint64_t snapshotBytes = 0;
    uint64_t rawBlobBytes = 0;
    double saveMs = 0;
    double restoreMs = 0;
};

/**
 * Pull `--json FILE` out of argv (so the remaining arguments can go
 * to google-benchmark untouched); returns the FILE, or "" if the
 * flag is absent.
 */
inline std::string
extractJsonFlag(int &argc, char **argv)
{
    std::string path;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            path = argv[++i];
            continue;
        }
        if (arg.rfind("--json=", 0) == 0) {
            path = arg.substr(7);
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    return path;
}

/**
 * Pull a `--name N` (or `--name=N`) integer flag out of argv the same
 * way extractJsonFlag does; returns @p dflt when absent.
 */
inline long
extractIntFlag(int &argc, char **argv, const std::string &name,
               long dflt)
{
    long v = dflt;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == name && i + 1 < argc) {
            v = std::atol(argv[++i]);
            continue;
        }
        if (arg.rfind(name + "=", 0) == 0) {
            v = std::atol(arg.c_str() + name.size() + 1);
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    return v;
}

/**
 * Pull a boolean flag (e.g. `--threads-sweep`) out of argv the same
 * way extractJsonFlag does; returns whether it was present.
 */
inline bool
extractBoolFlag(int &argc, char **argv, const std::string &name)
{
    bool found = false;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (name == argv[i]) {
            found = true;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    return found;
}

/** Commit the results belong to: PARENDI_GIT_SHA (CI sets it from the
 *  checkout), else `git rev-parse HEAD`, else "unknown". */
inline std::string
benchGitSha()
{
    const char *env = std::getenv("PARENDI_GIT_SHA");
    if (env && *env)
        return env;
    std::string sha;
    if (FILE *p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buf[128];
        if (std::fgets(buf, sizeof buf, p))
            sha = buf;
        pclose(p);
    }
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    if (sha.size() != 40 ||
        sha.find_first_not_of("0123456789abcdef") != std::string::npos)
        return "unknown";
    return sha;
}

/** UTC wall-clock in ISO-8601 (e.g. "2025-07-01T12:34:56Z"). */
inline std::string
benchTimestampIso()
{
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

/**
 * Write the measurements as one JSON object: provenance metadata
 * (git SHA, UTC timestamp) plus a "records" array of
 * {design, engine, threads, cycles_per_sec} with optional
 * t_comp_frac/t_comm_frac/t_sync_frac fields on instrumented rows.
 * This is the BENCH_*.json trajectory format; fatal() on I/O error.
 */
inline void
writePerfJson(const std::string &path,
              const std::vector<PerfRecord> &records)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write %s", path.c_str());
    out << "{\n"
        << "  \"git_sha\": \"" << benchGitSha() << "\",\n"
        << "  \"timestamp\": \"" << benchTimestampIso() << "\",\n"
        << "  \"records\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const PerfRecord &r = records[i];
        out << "    {\"design\": \"" << r.design << "\", "
            << "\"engine\": \"" << r.engine << "\", "
            << "\"threads\": " << r.threads << ", "
            << "\"cycles_per_sec\": " << r.cyclesPerSec;
        if (r.hasSplit)
            out << ", \"t_comp_frac\": " << r.tCompFrac
                << ", \"t_comm_frac\": " << r.tCommFrac
                << ", \"t_sync_frac\": " << r.tSyncFrac;
        if (r.replicas > 1)
            out << ", \"replicas\": " << r.replicas
                << ", \"agg_lane_cycles_per_sec\": "
                << r.cyclesPerSec * r.replicas;
        if (r.activity >= 0)
            out << ", \"activity\": " << r.activity;
        if (r.snapshotBytes > 0)
            out << ", \"snapshot_bytes\": " << r.snapshotBytes
                << ", \"raw_blob_bytes\": " << r.rawBlobBytes
                << ", \"snapshot_ratio\": "
                << (r.rawBlobBytes
                        ? static_cast<double>(r.snapshotBytes) /
                            static_cast<double>(r.rawBlobBytes)
                        : 0.0)
                << ", \"save_ms\": " << r.saveMs
                << ", \"restore_ms\": " << r.restoreMs;
        out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out)
        fatal("error writing %s", path.c_str());
}

} // namespace parendi::bench

#endif // PARENDI_BENCH_COMMON_HH
