/**
 * @file
 * Paper Fig. 11: single-IPU scaling. (a) simulation rate grows
 * monotonically from 1/8 of an IPU (184 tiles) to a full IPU (1472);
 * (b) the time breakdown shows t_comp falling with tiles while
 * t_sync and t_comm stay roughly constant.
 */

#include "bench_common.hh"

using namespace parendi;
using namespace parendi::bench;

int
main()
{
    setQuiet(true);
    const char *designs[] = {"sr6", "sr8", "lr6"};
    const uint32_t tiles[] = {184, 368, 736, 1104, 1472};

    for (const char *name : designs) {
        Table t({"tiles", "kHz", "norm rate", "t_comp", "t_comm",
                 "t_sync", "norm time"});
        double base_khz = 0, base_time = 0;
        double prev = 0;
        bool monotone = true;
        for (uint32_t m : tiles) {
            auto sim = compileFor(makeDesign(name), 1, m);
            const ipu::CycleCosts &c = sim->cycleCosts();
            double khz = sim->rateKHz();
            if (base_khz == 0) {
                base_khz = khz;
                base_time = c.total();
            }
            t.row().cell(uint64_t{m}).cell(khz, 2)
                .cell(khz / base_khz, 2)
                .cell(c.tComp, 0).cell(c.tComm(), 0).cell(c.tSync, 0)
                .cell(c.total() / base_time, 2);
            if (khz < prev * 0.98) // >2% regression = non-monotone
                monotone = false;
            prev = khz;
        }
        t.print(std::string("Fig. 11: ") + name +
                " within one IPU (184 -> 1472 tiles)");
        std::printf("  %s: rate is %smonotone in tile count\n", name,
                    monotone ? "" : "NOT ");
    }
    std::printf("\nshape: rate never decreases with more tiles on "
                "one IPU (within noise); t_comp shrinks with tiles "
                "until the straggler fiber caps it, while t_sync and "
                "t_comm hold roughly steady.\n");
    return 0;
}
