/**
 * @file
 * Paper Fig. 15 (§6.4.1): the default bottom-up merge (B) versus the
 * RepCut-style hypergraph strategy (H) on a single IPU. The metric
 * is IPU machine cycles per simulated RTL cycle, normalized to B
 * (lower is better).
 *
 * Expected shape: neither strategy is uniformly better — B tends to
 * win on srN, H wins on some lrN points.
 */

#include "bench_common.hh"

using namespace parendi;
using namespace parendi::bench;

int
main()
{
    setQuiet(true);
    // Use meshes big enough that 1472-way partitioning requires
    // real merging; below that both strategies sit at the straggler
    // floor and tie.
    std::vector<std::string> designs = {"sr6", "sr8", "lr6"};
    if (!fastMode()) {
        designs.push_back("sr10");
        designs.push_back("sr12");
        designs.push_back("lr8");
        designs.push_back("lr10");
    }

    Table t({"design", "B cyc/RTL", "H cyc/RTL", "H/B", "B dup", "H dup"});
    int b_wins = 0, h_wins = 0;
    for (const std::string &name : designs) {
        core::CompilerOptions bopt;
        bopt.single = partition::SingleChipStrategy::BottomUp;
        auto b = compileFor(makeDesign(name), 1, 1472, bopt);
        core::CompilerOptions hopt;
        hopt.single = partition::SingleChipStrategy::Hypergraph;
        auto h = compileFor(makeDesign(name), 1, 1472, hopt);
        double bc = b->cycleCosts().total();
        double hc = h->cycleCosts().total();
        (hc < bc ? h_wins : b_wins) += 1;
        t.row().cell(name).cell(bc, 0).cell(hc, 0).cell(hc / bc, 3)
            .cell(b->report().duplicationRatio, 3)
            .cell(h->report().duplicationRatio, 3);
    }
    t.print("Fig. 15: bottom-up (B) vs hypergraph (H), 1472-way");
    std::printf("\nB wins %d design(s), H wins %d — neither strategy "
                "dominates (paper's finding).\n", b_wins, h_wins);
    return 0;
}
