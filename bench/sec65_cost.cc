/**
 * @file
 * Paper §6.5 ("Fastest simulation is cheapest"): hours and dollars
 * to simulate one billion RTL cycles on the IPU versus the x86
 * machines, at the paper's cloud prices (IPU-POD4 classic $2.13/h;
 * comparable many-core VMs $1.54-$3.36/h).
 *
 * In the paper's full-size regime (lr10: 38.2 kHz on the IPU vs 9.3
 * kHz on ae4) the IPU's 4x rate advantage more than offsets its
 * hourly price ($17 vs >= $69 per 1e9 cycles). Our designs are
 * scaled down, so the measured rates sit near parity at the top of
 * the sweep; the bench prints our measured economics plus the
 * paper's reported ones, and the break-even price both ways.
 */

#include "bench_common.hh"

#include "fiber/fiber.hh"

using namespace parendi;
using namespace parendi::bench;

int
main()
{
    setQuiet(true);
    std::string name = fastMode() ? "sr6" : "sr14";
    rtl::Netlist nl = makeOptimized(name);
    fiber::FiberSet fs(nl);

    IpuBest best = bestParendi(name);
    X86Result rae = runX86(x86::X86Arch::ae4(), fs);
    X86Result rix = runX86(x86::X86Arch::ix3(), fs);

    const double cycles = 1e9;
    const double ipu_price = 2.13;   // IPU-POD4 classic, $/h
    const double x86_price = 1.536;  // 32-core Dav4-class VM, $/h

    auto hours = [&](double khz) {
        return cycles / (khz * 1e3) / 3600.0;
    };
    Table t({"platform", "kHz", "hours/1e9 cyc", "$/h", "cost $"});
    double h_ipu = hours(best.kHz);
    double h_ae4 = hours(std::max(rae.mtKHz, rae.stKHz));
    double h_ix3 = hours(std::max(rix.mtKHz, rix.stKHz));
    t.row().cell("Parendi (IPU)").cell(best.kHz, 2).cell(h_ipu, 2)
        .cell(ipu_price, 2).cell(h_ipu * ipu_price, 2);
    t.row().cell("Verilator ae4")
        .cell(std::max(rae.mtKHz, rae.stKHz), 2)
        .cell(h_ae4, 2).cell(x86_price, 2).cell(h_ae4 * x86_price, 2);
    t.row().cell("Verilator ix3")
        .cell(std::max(rix.mtKHz, rix.stKHz), 2)
        .cell(h_ix3, 2).cell(x86_price, 2).cell(h_ix3 * x86_price, 2);
    // The paper's own measured lr10 data points for reference.
    double ph_ipu = hours(38.24), ph_ae4 = hours(6.27);
    t.row().cell("(paper) IPU lr10").cell(38.24, 2).cell(ph_ipu, 2)
        .cell(ipu_price, 2).cell(ph_ipu * ipu_price, 2);
    t.row().cell("(paper) ae4 lr10").cell(6.27, 2).cell(ph_ae4, 2)
        .cell(x86_price, 2).cell(ph_ae4 * x86_price, 2);
    t.print("§6.5: cost of simulating 1e9 cycles of " + name +
            " (plus the paper's lr10 economics)");

    double breakeven_price = ipu_price * h_ipu / h_ae4;
    std::printf("\nmeasured (%s): an x86 VM breaks even with the IPU "
                "at $%.2f/h.\npaper (lr10): the VM must cost ~6x less "
                "than the IPU ($%.2f vs $%.2f per 1e9 cycles) — that "
                "regime needs the full-size designs' 4x speedup, "
                "which our scaled-down designs approach but do not "
                "reach (see EXPERIMENTS.md).\n",
                name.c_str(), breakeven_price, ph_ipu * ipu_price,
                ph_ae4 * x86_price);
    return 0;
}
