/**
 * @file
 * Paper Fig. 5: communication latency heatmaps. m tile pairs exchange
 * b bytes each way; on-chip the cost grows with b and is nearly
 * independent of m, off-chip it grows with the total volume m x b.
 * A third table shows the differential-array-exchange ablation (§5.2):
 * bytes to propagate one write to a replica vs. shipping the array.
 */

#include "bench_common.hh"

#include "ipu/exchange.hh"

using namespace parendi;
using namespace parendi::bench;

int
main()
{
    setQuiet(true);
    ipu::IpuArch arch;
    const uint32_t ms[] = {64, 184, 368, 736};
    const uint32_t bs[] = {4, 16, 64, 256, 1024, 2048};

    for (bool off_chip : {false, true}) {
        std::vector<std::string> hdr = {"m \\ b"};
        for (uint32_t b : bs)
            hdr.push_back(std::to_string(b) + "B");
        Table t(hdr);
        for (uint32_t m : ms) {
            t.row().cell(uint64_t{m});
            for (uint32_t b : bs)
                t.cell(ipu::pairwiseExchangeCycles(arch, m, b,
                                                   off_chip), 0);
        }
        t.print(off_chip
                ? "Fig. 5 (right): off-chip exchange cycles (grows "
                  "with m x b)"
                : "Fig. 5 (left): on-chip exchange cycles (grows "
                  "with b only)");
    }

    // Ablation rows: modeled bytes per cycle to keep one remote
    // replica of an array coherent.
    Table abl({"array", "entries", "width", "diff B/cycle",
               "full-copy B/cycle"});
    struct Arr { const char *name; uint32_t depth, width, ports; };
    for (Arr a : {Arr{"regfile", 32, 64, 1}, Arr{"dcache", 512, 64, 1},
                  Arr{"sram2p", 1024, 32, 2}}) {
        uint64_t diff = a.ports *
            (((32 + 1 + 31) / 32) * 4 + ((a.width + 31) / 32) * 4);
        uint64_t full =
            uint64_t{(a.width + 63) / 64} * 8 * a.depth;
        abl.row().cell(a.name).cell(uint64_t{a.depth})
            .cell(uint64_t{a.width}).cell(diff).cell(full);
    }
    abl.print("§5.2 ablation: differential vs full array exchange");

    std::printf("\nshape: left table columns grow ~16x from 4B to "
                "2048B while rows stay flat; right table grows along "
                "both axes.\n");
    return 0;
}
