/**
 * @file
 * Paper Fig. 13: performance resilience (weak scaling). Best
 * simulation rate as the mesh grows, Parendi vs the Verilator model,
 * plus the per-size speedup (the dashed gmean lines of the figure).
 *
 * Expected shape: both rates fall with design size, but Parendi's
 * falls more slowly (a long flat segment), so the speedup grows
 * with N.
 */

#include "bench_common.hh"

#include "fiber/fiber.hh"

using namespace parendi;
using namespace parendi::bench;

namespace {

void
sweep(const std::string &prefix, uint32_t n_max)
{
    x86::X86Arch ix3 = x86::X86Arch::ix3();
    x86::X86Arch ae4 = x86::X86Arch::ae4();
    Table t({"N", "IPU kHz", "chips", "ix3 kHz", "ae4 kHz",
             "speedup(gmean)"});
    double first_ipu = 0, last_ipu = 0;
    double first_x86 = 0, last_x86 = 0;
    for (uint32_t n = 2; n <= n_max; ++n) {
        std::string name = prefix + std::to_string(n);
        rtl::Netlist nl = makeOptimized(name);
        fiber::FiberSet fs(nl);
        X86Result rix = runX86(ix3, fs);
        X86Result rae = runX86(ae4, fs);
        IpuBest best = bestParendi(name);
        double bix = std::max(rix.mtKHz, rix.stKHz);
        double bae = std::max(rae.mtKHz, rae.stKHz);
        double sp = std::sqrt((best.kHz / bix) * (best.kHz / bae));
        t.row().cell(uint64_t{n}).cell(best.kHz, 2)
            .cell(uint64_t{best.chips}).cell(bix, 2).cell(bae, 2)
            .cell(sp, 2);
        if (n == 2) {
            first_ipu = best.kHz;
            first_x86 = bix;
        }
        last_ipu = best.kHz;
        last_x86 = bix;
    }
    t.print("Fig. 13: " + prefix + "N weak scaling");
    std::printf("  %sN=2 -> N=%u: IPU keeps %.0f%% of its rate, ix3 "
                "keeps %.0f%%\n",
                prefix.c_str(), n_max, 100 * last_ipu / first_ipu,
                100 * last_x86 / first_x86);
}

} // namespace

int
main()
{
    setQuiet(true);
    sweep("sr", fastMode() ? 6 : 14);
    sweep("lr", fastMode() ? 5 : 10);
    std::printf("\nshape: Parendi's rate decays far more slowly with "
                "design size than the x86 baseline, so the speedup "
                "(last column) rises with N.\n");
    return 0;
}
