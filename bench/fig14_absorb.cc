/**
 * @file
 * Paper Fig. 14: fiber imbalance *enables* weak scaling — growing
 * the SoC adds small fibers that fit into the straggler-bounded
 * slack of existing tiles without raising t_comp. We partition srN
 * onto a fixed 1472-tile chip and report how total work grows while
 * the makespan (and thus the rate) stays pinned to the straggler.
 */

#include "bench_common.hh"

#include <algorithm>

#include "fiber/fiber.hh"
#include "partition/merge.hh"
#include "rtl/opt.hh"

using namespace parendi;
using namespace parendi::bench;

int
main()
{
    setQuiet(true);
    Table t({"N", "fibers", "total work", "straggler", "makespan",
             "mean load", "load/straggler", "kHz"});
    uint32_t n_max = fastMode() ? 8 : 14;
    double base_khz = 0;
    for (uint32_t n = 2; n <= n_max; n += 2) {
        std::string name = "sr" + std::to_string(n);
        // Optimize first so the load columns describe the same
        // netlist the compiled rate column runs.
        rtl::Netlist nl = rtl::optimize(makeDesign(name));
        fiber::FiberSet fs(nl);
        partition::Partitioning p =
            partition::bottomUpPartition(fs, 1, 1472);
        uint64_t total = p.totalIpu();
        uint64_t makespan = p.makespanIpu();
        double mean = static_cast<double>(total) /
            static_cast<double>(p.processes.size());
        auto sim = compileFor(makeDesign(name), 1, 1472);
        double khz = sim->rateKHz();
        if (!base_khz)
            base_khz = khz;
        t.row().cell(uint64_t{n}).cell(fs.size()).cell(total)
            .cell(fs.maxFiberIpu()).cell(makespan).cell(mean, 0)
            .cell(mean / static_cast<double>(fs.maxFiberIpu()), 3)
            .cell(khz, 2);
    }
    t.print("Fig. 14: absorbing design growth into straggler slack "
            "(one IPU, 1472 tiles)");
    std::printf("\nshape: total work grows ~N^2 while the makespan "
                "stays at the straggler, so the rate holds; once "
                "mean load approaches the straggler "
                "(load/straggler -> 1) the rate must start "
                "dropping.\n");
    return 0;
}
