#include "rtl/opt.hh"

#include <map>
#include <tuple>
#include <vector>

#include "rtl/eval.hh"
#include "util/logging.hh"

namespace parendi::rtl {

BitVec
foldConstant(Op op, uint16_t width, uint32_t aux,
             const std::vector<BitVec> &operands)
{
    // Build a one-instruction program: operand values live in the
    // initial slot image, the instruction computes into a fresh slot.
    EvalProgram prog;
    EvalInstr in;
    in.op = toEvalOp(op);
    in.width = width;
    in.aux = aux;
    in.wa = in.wb = 0;
    in.a = in.b = in.c = 0;
    uint32_t offsets[3] = {0, 0, 0};
    for (size_t i = 0; i < operands.size() && i < 3; ++i) {
        offsets[i] = static_cast<uint32_t>(prog.initSlots.size());
        for (uint32_t w = 0; w < operands[i].numWords(); ++w)
            prog.initSlots.push_back(operands[i].word(w));
    }
    if (!operands.empty()) {
        in.a = offsets[0];
        in.wa = static_cast<uint16_t>(operands[0].width());
    }
    if (operands.size() > 1) {
        in.b = offsets[1];
        in.wb = static_cast<uint16_t>(operands[1].width());
    }
    if (operands.size() > 2)
        in.c = offsets[2];
    in.dst = static_cast<uint32_t>(prog.initSlots.size());
    prog.initSlots.resize(in.dst + wordsFor(width), 0);
    prog.instrs.push_back(in);

    EvalState state(prog);
    state.evalComb();
    return state.readSlot(in.dst, width);
}

namespace {

/** Is this op pure (foldable when all operands are constant)? */
bool
isPure(Op op)
{
    switch (op) {
      case Op::Const:
      case Op::Input:
      case Op::RegRead:
      case Op::MemRead:
      case Op::RegNext:
      case Op::MemWrite:
      case Op::Output:
        return false;
      default:
        return true;
    }
}

struct Rebuilder
{
    const Netlist &src;
    Netlist out;
    OptStats stats;

    std::vector<NodeId> map;           ///< old -> new node id
    std::vector<bool> live;
    // CSE table: (op, width, aux, operands) -> new id.
    std::map<std::tuple<Op, uint16_t, uint32_t, NodeId, NodeId,
                        NodeId>, NodeId> cse;
    // Constant pool dedup in the output: (width, hex) -> new id.
    std::map<std::pair<uint16_t, std::string>, NodeId> constCse;

    explicit Rebuilder(const Netlist &nl)
        : src(nl), out(nl.name()), map(nl.numNodes(), kNoNode)
    {}

    void
    markLive()
    {
        live.assign(src.numNodes(), false);
        std::vector<NodeId> stack(src.sinks().begin(),
                                  src.sinks().end());
        for (NodeId id : stack)
            live[id] = true;
        while (!stack.empty()) {
            NodeId id = stack.back();
            stack.pop_back();
            const Node &n = src.node(id);
            for (int i = 0; i < opArity(n.op); ++i) {
                NodeId o = n.operands[i];
                if (!live[o]) {
                    live[o] = true;
                    stack.push_back(o);
                }
            }
        }
        for (NodeId id = 0; id < src.numNodes(); ++id)
            if (!live[id])
                ++stats.dead;
    }

    /** Emit (or find) a constant in the output netlist. */
    NodeId
    emitConst(const BitVec &v)
    {
        auto key = std::make_pair(static_cast<uint16_t>(v.width()),
                                  v.toHex());
        auto it = constCse.find(key);
        if (it != constCse.end())
            return it->second;
        NodeId id = out.addConst(v);
        constCse[key] = id;
        return id;
    }

    bool
    isConst(NodeId new_id, BitVec *value = nullptr) const
    {
        const Node &n = out.node(new_id);
        if (n.op != Op::Const)
            return false;
        if (value)
            *value = out.constValue(n.aux);
        return true;
    }

    bool
    isAllOnes(const BitVec &v) const
    {
        for (uint32_t i = 0; i < v.width(); ++i)
            if (!v.bit(i))
                return false;
        return v.width() > 0;
    }

    /** Try algebraic identities on a remapped node; returns the
     *  replacement id or kNoNode. */
    NodeId
    identity(const Node &n, NodeId a, NodeId b, NodeId c)
    {
        BitVec va, vb;
        bool ca = a != kNoNode && isConst(a, &va);
        bool cb = b != kNoNode && isConst(b, &vb);
        switch (n.op) {
          case Op::Add:
          case Op::Or:
          case Op::Xor:
            if (cb && vb.isZero())
                return a;
            if (ca && va.isZero())
                return b;
            break;
          case Op::Sub:
          case Op::Shl:
          case Op::Shr:
          case Op::Sra:
            if (cb && vb.isZero())
                return a;
            break;
          case Op::And:
            if ((cb && vb.isZero()) || (ca && va.isZero()))
                return emitConst(BitVec(n.width, uint64_t{0}));
            if (cb && isAllOnes(vb))
                return a;
            if (ca && isAllOnes(va))
                return b;
            break;
          case Op::Mul:
            if ((cb && vb.isZero()) || (ca && va.isZero()))
                return emitConst(BitVec(n.width, uint64_t{0}));
            if (cb && vb == BitVec(vb.width(), 1))
                return a;
            if (ca && va == BitVec(va.width(), 1))
                return b;
            break;
          case Op::Mux: {
            BitVec vs;
            if (isConst(a, &vs))
                return vs.isZero() ? c : b;
            if (b == c)
                return b;
            break;
          }
          case Op::Slice:
            // Full-width slice of the operand.
            if (n.aux == 0 && n.width == out.widthOf(a))
                return a;
            break;
          case Op::Eq:
            if (a == b)
                return emitConst(BitVec(1, 1));
            break;
          case Op::Ne:
          case Op::Ult:
            if (a == b)
                return emitConst(BitVec(1, uint64_t{0}));
            break;
          default:
            break;
        }
        // x ^ x == 0; x & x == x; x | x == x
        if (a == b && a != kNoNode) {
            if (n.op == Op::Xor)
                return emitConst(BitVec(n.width, uint64_t{0}));
            if (n.op == Op::And || n.op == Op::Or)
                return a;
        }
        return kNoNode;
    }

    NodeId
    rebuildNode(NodeId id)
    {
        const Node &n = src.node(id);
        NodeId a = opArity(n.op) > 0 ? map[n.operands[0]] : kNoNode;
        NodeId b = opArity(n.op) > 1 ? map[n.operands[1]] : kNoNode;
        NodeId c = opArity(n.op) > 2 ? map[n.operands[2]] : kNoNode;

        switch (n.op) {
          case Op::Const:
            return emitConst(src.constValue(n.aux));
          case Op::Input:
            return out.addInput(src.input(n.aux).name, n.width);
          case Op::RegRead:
            return out.readRegister(n.aux);
          case Op::RegNext:
            return out.setRegisterNext(n.aux, a);
          case Op::MemRead:
            return out.readMemory(n.aux, a);
          case Op::MemWrite:
            return out.writeMemory(n.aux, a, b, c);
          case Op::Output:
            return out.addOutput(src.output(n.aux).name, a);
          default:
            break;
        }

        // Constant folding: all operands constant.
        bool all_const = true;
        std::vector<BitVec> vals;
        for (NodeId o : {a, b, c}) {
            if (o == kNoNode)
                break;
            BitVec v;
            if (!isConst(o, &v)) {
                all_const = false;
                break;
            }
            vals.push_back(v);
        }
        if (all_const && isPure(n.op)) {
            ++stats.folded;
            return emitConst(foldConstant(n.op, n.width, n.aux, vals));
        }

        NodeId simplified = identity(n, a, b, c);
        if (simplified != kNoNode) {
            ++stats.identities;
            return simplified;
        }

        auto key = std::make_tuple(n.op, n.width, n.aux, a, b, c);
        auto it = cse.find(key);
        if (it != cse.end()) {
            ++stats.csed;
            return it->second;
        }

        NodeId nid;
        switch (opArity(n.op)) {
          case 1:
            nid = n.op == Op::Slice
                      ? out.addSlice(a, n.aux, n.width)
                  : (n.op == Op::ZExt || n.op == Op::SExt)
                      ? out.addExtend(n.op, a, n.width)
                      : out.addUnary(n.op, a);
            break;
          case 2:
            nid = n.op == Op::Concat ? out.addConcat(a, b)
                                     : out.addBinary(n.op, a, b);
            break;
          default:
            nid = out.addMux(a, b, c);
            break;
        }
        cse[key] = nid;
        return nid;
    }

    Netlist
    run()
    {
        stats.nodesBefore = src.numNodes();
        markLive();
        // Pre-create registers and memories so ids are preserved.
        for (RegId r = 0; r < src.numRegisters(); ++r) {
            const Register &reg = src.reg(r);
            out.addRegister(reg.name, reg.width, reg.init);
        }
        for (MemId mm = 0; mm < src.numMemories(); ++mm) {
            const Memory &mem = src.mem(mm);
            MemId nm = out.addMemory(mem.name, mem.width, mem.depth);
            if (!mem.init.empty())
                out.initMemory(nm, mem.init);
        }
        for (NodeId id = 0; id < src.numNodes(); ++id) {
            if (!live[id])
                continue;
            map[id] = rebuildNode(id);
        }
        stats.nodesAfter = out.numNodes();
        out.check();
        return std::move(out);
    }
};

} // namespace

Netlist
optimize(const Netlist &nl, OptStats *stats)
{
    Rebuilder rb(nl);
    Netlist result = rb.run();
    if (stats)
        *stats = rb.stats;
    return result;
}

} // namespace parendi::rtl
