#include "rtl/netlist.hh"

#include "util/logging.hh"

namespace parendi::rtl {

bool
isSink(Op op)
{
    return op == Op::RegNext || op == Op::MemWrite || op == Op::Output;
}

bool
isSource(Op op)
{
    return op == Op::Const || op == Op::Input || op == Op::RegRead;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Const: return "const";
      case Op::Input: return "input";
      case Op::RegRead: return "regread";
      case Op::MemRead: return "memread";
      case Op::Not: return "not";
      case Op::Neg: return "neg";
      case Op::RedAnd: return "redand";
      case Op::RedOr: return "redor";
      case Op::RedXor: return "redxor";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::Sra: return "sra";
      case Op::Eq: return "eq";
      case Op::Ne: return "ne";
      case Op::Ult: return "ult";
      case Op::Ule: return "ule";
      case Op::Slt: return "slt";
      case Op::Sle: return "sle";
      case Op::Mux: return "mux";
      case Op::Concat: return "concat";
      case Op::Slice: return "slice";
      case Op::ZExt: return "zext";
      case Op::SExt: return "sext";
      case Op::RegNext: return "regnext";
      case Op::MemWrite: return "memwrite";
      case Op::Output: return "output";
      default: return "?";
    }
}

int
opArity(Op op)
{
    switch (op) {
      case Op::Const:
      case Op::Input:
      case Op::RegRead:
        return 0;
      case Op::MemRead:
      case Op::Not:
      case Op::Neg:
      case Op::RedAnd:
      case Op::RedOr:
      case Op::RedXor:
      case Op::Slice:
      case Op::ZExt:
      case Op::SExt:
      case Op::RegNext:
      case Op::Output:
        return 1;
      case Op::Mux:
      case Op::MemWrite:
        return 3;
      default:
        return 2;
    }
}

NodeId
Netlist::pushNode(Node n)
{
    NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(n);
    if (isSink(n.op))
        sinks_.push_back(id);
    return id;
}

NodeId
Netlist::addConst(const BitVec &value)
{
    uint32_t pool = static_cast<uint32_t>(consts_.size());
    consts_.push_back(value);
    Node n;
    n.op = Op::Const;
    n.width = static_cast<uint16_t>(value.width());
    n.aux = pool;
    return pushNode(n);
}

NodeId
Netlist::addConst(uint32_t width, uint64_t value)
{
    return addConst(BitVec(width, value));
}

NodeId
Netlist::addInput(const std::string &name, uint16_t width)
{
    Node n;
    n.op = Op::Input;
    n.width = width;
    n.aux = static_cast<uint32_t>(inputs_.size());
    NodeId id = pushNode(n);
    inputs_.push_back({name, width, id});
    return id;
}

RegId
Netlist::addRegister(const std::string &name, uint16_t width,
                     const BitVec &init)
{
    if (init.width() != width)
        fatal("register %s: init width %u != register width %u",
              name.c_str(), init.width(), width);
    RegId id = static_cast<RegId>(regs_.size());
    regs_.push_back({name, width, init, kNoNode, kNoNode});
    return id;
}

RegId
Netlist::addRegister(const std::string &name, uint16_t width, uint64_t init)
{
    return addRegister(name, width, BitVec(width, init));
}

NodeId
Netlist::readRegister(RegId reg)
{
    Register &r = regs_.at(reg);
    if (r.read == kNoNode) {
        Node n;
        n.op = Op::RegRead;
        n.width = r.width;
        n.aux = reg;
        r.read = pushNode(n);
    }
    return r.read;
}

NodeId
Netlist::setRegisterNext(RegId reg, NodeId value)
{
    Register &r = regs_.at(reg);
    if (r.next != kNoNode)
        fatal("register %s driven twice", r.name.c_str());
    if (widthOf(value) != r.width)
        fatal("register %s: next width %u != register width %u",
              r.name.c_str(), widthOf(value), r.width);
    Node n;
    n.op = Op::RegNext;
    n.width = r.width;
    n.aux = reg;
    n.operands[0] = value;
    r.next = pushNode(n);
    return r.next;
}

MemId
Netlist::addMemory(const std::string &name, uint16_t width, uint32_t depth)
{
    if (depth == 0)
        fatal("memory %s has zero depth", name.c_str());
    MemId id = static_cast<MemId>(mems_.size());
    Memory m;
    m.name = name;
    m.width = width;
    m.depth = depth;
    mems_.push_back(std::move(m));
    return id;
}

void
Netlist::initMemory(MemId mem, std::vector<BitVec> image)
{
    Memory &m = mems_.at(mem);
    if (image.size() > m.depth)
        fatal("memory %s: init image larger than depth", m.name.c_str());
    for (const auto &v : image)
        if (v.width() != m.width)
            fatal("memory %s: init entry width mismatch", m.name.c_str());
    m.init = std::move(image);
}

NodeId
Netlist::readMemory(MemId mem, NodeId addr)
{
    Memory &m = mems_.at(mem);
    Node n;
    n.op = Op::MemRead;
    n.width = m.width;
    n.aux = mem;
    n.operands[0] = addr;
    NodeId id = pushNode(n);
    m.readPorts.push_back(id);
    return id;
}

NodeId
Netlist::writeMemory(MemId mem, NodeId addr, NodeId data, NodeId enable)
{
    Memory &m = mems_.at(mem);
    if (widthOf(data) != m.width)
        fatal("memory %s: write data width %u != entry width %u",
              m.name.c_str(), widthOf(data), m.width);
    if (widthOf(enable) != 1)
        fatal("memory %s: write enable must be 1 bit", m.name.c_str());
    Node n;
    n.op = Op::MemWrite;
    n.width = m.width;
    n.aux = mem;
    n.operands = {addr, data, enable};
    NodeId id = pushNode(n);
    m.writePorts.push_back(id);
    return id;
}

NodeId
Netlist::addOutput(const std::string &name, NodeId value)
{
    Node n;
    n.op = Op::Output;
    n.width = widthOf(value);
    n.aux = static_cast<uint32_t>(outputs_.size());
    n.operands[0] = value;
    NodeId id = pushNode(n);
    outputs_.push_back({name, n.width, id});
    return id;
}

NodeId
Netlist::addUnary(Op op, NodeId a)
{
    Node n;
    n.op = op;
    n.operands[0] = a;
    switch (op) {
      case Op::Not:
      case Op::Neg:
        n.width = widthOf(a);
        break;
      case Op::RedAnd:
      case Op::RedOr:
      case Op::RedXor:
        n.width = 1;
        break;
      default:
        fatal("addUnary: %s is not unary", opName(op));
    }
    return pushNode(n);
}

NodeId
Netlist::addBinary(Op op, NodeId a, NodeId b)
{
    uint16_t wa = widthOf(a), wb = widthOf(b);
    Node n;
    n.op = op;
    n.operands[0] = a;
    n.operands[1] = b;
    switch (op) {
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
        if (wa != wb)
            fatal("%s: operand widths differ (%u vs %u)",
                  opName(op), wa, wb);
        n.width = wa;
        break;
      case Op::Shl:
      case Op::Shr:
      case Op::Sra:
        n.width = wa; // b is the shift amount, any width
        break;
      case Op::Eq:
      case Op::Ne:
      case Op::Ult:
      case Op::Ule:
      case Op::Slt:
      case Op::Sle:
        if (wa != wb)
            fatal("%s: operand widths differ (%u vs %u)",
                  opName(op), wa, wb);
        n.width = 1;
        break;
      default:
        fatal("addBinary: %s is not binary", opName(op));
    }
    return pushNode(n);
}

NodeId
Netlist::addMux(NodeId sel, NodeId then_v, NodeId else_v)
{
    if (widthOf(sel) != 1)
        fatal("mux: select must be 1 bit, got %u", widthOf(sel));
    if (widthOf(then_v) != widthOf(else_v))
        fatal("mux: arm widths differ (%u vs %u)",
              widthOf(then_v), widthOf(else_v));
    Node n;
    n.op = Op::Mux;
    n.width = widthOf(then_v);
    n.operands = {sel, then_v, else_v};
    return pushNode(n);
}

NodeId
Netlist::addConcat(NodeId hi, NodeId lo)
{
    uint32_t w = uint32_t{widthOf(hi)} + widthOf(lo);
    if (w > kMaxWidth)
        fatal("concat result width %u exceeds maximum", w);
    Node n;
    n.op = Op::Concat;
    n.width = static_cast<uint16_t>(w);
    n.operands = {hi, lo};
    return pushNode(n);
}

NodeId
Netlist::addSlice(NodeId a, uint32_t lsb, uint16_t width)
{
    if (lsb + width > widthOf(a))
        fatal("slice [%u +: %u] out of range for %u-bit value",
              lsb, width, widthOf(a));
    Node n;
    n.op = Op::Slice;
    n.width = width;
    n.aux = lsb;
    n.operands[0] = a;
    return pushNode(n);
}

NodeId
Netlist::addExtend(Op op, NodeId a, uint16_t width)
{
    if (op != Op::ZExt && op != Op::SExt)
        fatal("addExtend: %s is not an extension", opName(op));
    if (width < widthOf(a))
        fatal("extend to %u bits narrower than source %u bits",
              width, widthOf(a));
    Node n;
    n.op = op;
    n.width = width;
    n.operands[0] = a;
    return pushNode(n);
}

RegId
Netlist::findRegister(const std::string &name) const
{
    for (RegId i = 0; i < regs_.size(); ++i)
        if (regs_[i].name == name)
            return i;
    return static_cast<RegId>(regs_.size());
}

PortId
Netlist::findInput(const std::string &name) const
{
    for (PortId i = 0; i < inputs_.size(); ++i)
        if (inputs_[i].name == name)
            return i;
    return static_cast<PortId>(inputs_.size());
}

PortId
Netlist::findOutput(const std::string &name) const
{
    for (PortId i = 0; i < outputs_.size(); ++i)
        if (outputs_[i].name == name)
            return i;
    return static_cast<PortId>(outputs_.size());
}

MemId
Netlist::findMemory(const std::string &name) const
{
    for (MemId i = 0; i < mems_.size(); ++i)
        if (mems_[i].name == name)
            return i;
    return static_cast<MemId>(mems_.size());
}

void
Netlist::check() const
{
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node &n = nodes_[id];
        int arity = opArity(n.op);
        for (int i = 0; i < arity; ++i) {
            NodeId opnd = n.operands[i];
            if (opnd == kNoNode || opnd >= nodes_.size())
                fatal("node %u (%s): operand %d dangling",
                      id, opName(n.op), i);
            if (opnd >= id)
                fatal("node %u (%s): operand %d does not precede its "
                      "user (construction order must be topological)",
                      id, opName(n.op), i);
            if (isSink(nodes_[opnd].op))
                fatal("node %u (%s): operand %d is a sink",
                      id, opName(n.op), i);
        }
    }
    for (RegId r = 0; r < regs_.size(); ++r)
        if (regs_[r].next == kNoNode)
            fatal("register %s never driven", regs_[r].name.c_str());
}

namespace {

struct Fnv
{
    uint64_t h = 0xcbf29ce484222325ull;

    void
    bytes(const void *p, size_t n)
    {
        const unsigned char *c = static_cast<const unsigned char *>(p);
        for (size_t i = 0; i < n; ++i) {
            h ^= c[i];
            h *= 0x100000001b3ull;
        }
    }

    void u64(uint64_t v) { bytes(&v, sizeof(v)); }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    void
    vec(const BitVec &v)
    {
        u64(v.width());
        for (uint32_t w = 0; w < v.numWords(); ++w)
            u64(v.word(w));
    }
};

} // namespace

uint64_t
netlistHash(const Netlist &nl)
{
    Fnv f;
    f.u64(nl.numNodes());
    for (NodeId id = 0; id < nl.numNodes(); ++id) {
        const Node &n = nl.node(id);
        f.u64(static_cast<uint64_t>(n.op));
        f.u64(n.width);
        f.u64(n.aux);
        for (NodeId opnd : n.operands)
            f.u64(opnd);
        if (n.op == Op::Const)
            f.vec(nl.constValue(n.aux));
    }
    f.u64(nl.numRegisters());
    for (RegId r = 0; r < nl.numRegisters(); ++r) {
        const Register &reg = nl.reg(r);
        f.str(reg.name);
        f.u64(reg.width);
        f.vec(reg.init);
    }
    f.u64(nl.numMemories());
    for (MemId m = 0; m < nl.numMemories(); ++m) {
        const Memory &mem = nl.mem(m);
        f.str(mem.name);
        f.u64(mem.width);
        f.u64(mem.depth);
        f.u64(mem.init.size());
        for (const BitVec &v : mem.init)
            f.vec(v);
    }
    f.u64(nl.numInputs());
    for (PortId p = 0; p < nl.numInputs(); ++p) {
        f.str(nl.input(p).name);
        f.u64(nl.input(p).width);
    }
    f.u64(nl.numOutputs());
    for (PortId p = 0; p < nl.numOutputs(); ++p) {
        f.str(nl.output(p).name);
        f.u64(nl.output(p).width);
    }
    return f.h;
}

} // namespace parendi::rtl
