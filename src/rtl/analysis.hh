/**
 * @file
 * Structural analyses over the RTL data dependence graph: topological
 * ordering, combinational loop detection (a compile error, paper §5.3),
 * backward cone extraction (the basis of fiber construction), and basic
 * size metrics.
 */

#ifndef PARENDI_RTL_ANALYSIS_HH
#define PARENDI_RTL_ANALYSIS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/netlist.hh"

namespace parendi::rtl {

/**
 * Topologically order all nodes so every operand precedes its user.
 * RegRead/Input/Const are sources; RegNext/MemWrite/Output are sinks.
 * Calls fatal() if the combinational graph has a cycle.
 */
std::vector<NodeId> topoOrder(const Netlist &nl);

/** True iff the combinational graph contains a cycle. */
bool hasCombinationalLoop(const Netlist &nl);

/**
 * The set of nodes transitively feeding @p sink (inclusive), i.e. the
 * cone of logic that a fiber executes. Source nodes (Const/Input/
 * RegRead) are included; nodes behind a RegRead are not traversed.
 * Result is in increasing NodeId order.
 */
std::vector<NodeId> backwardCone(const Netlist &nl, NodeId sink);

/** Per-node user counts (combinational fanout). */
std::vector<uint32_t> fanoutCounts(const Netlist &nl);

/** Aggregate size metrics used in reports (Table 3 columns). */
struct NetlistMetrics
{
    size_t nodes = 0;           ///< total DDG nodes
    size_t combNodes = 0;       ///< nodes excluding sources/sinks
    size_t registers = 0;
    size_t memories = 0;
    size_t sinks = 0;
    uint64_t regBits = 0;       ///< total architectural register bits
    uint64_t memBytes = 0;      ///< total array bytes
};

NetlistMetrics computeMetrics(const Netlist &nl);

/** One-line human-readable summary of a netlist. */
std::string describe(const Netlist &nl);

} // namespace parendi::rtl

#endif // PARENDI_RTL_ANALYSIS_HH
