/**
 * @file
 * An event-driven (activity-aware) interpreter: per cycle, only the
 * combinational nodes whose inputs changed are re-evaluated. The
 * paper (§3, citing Beamer's work) argues full-cycle simulation
 * usually beats event-driven because the cost of tracking value
 * changes exceeds the savings at typical RTL activity factors; this
 * implementation exists to measure that trade-off on the benchmark
 * designs (bench/sec3_activity) and as a second, independently
 * derived functional model for differential testing.
 */

#ifndef PARENDI_RTL_EVENT_HH
#define PARENDI_RTL_EVENT_HH

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "rtl/eval.hh"
#include "rtl/netlist.hh"

namespace parendi::rtl {

class EventInterpreter : public core::SimEngine
{
  public:
    /** Defaults to the generic (unlowered) program form so it remains
     *  an independently derived witness for differential testing of
     *  the specialized/fused kernels; pass other LowerOptions to run
     *  the event engine on a lowered program. */
    explicit EventInterpreter(Netlist nl,
                              const LowerOptions &lower =
                                  LowerOptions::none());

    const char *engineName() const override { return "event"; }

    /** Simulate @p n cycles with selective evaluation. */
    void step(size_t n = 1) override;

    /** Restore initial state (activity counters included). */
    void reset() override;

    uint64_t cycles() const override { return cycleCount; }

    /** Drive an input port. The write triggers a full re-evaluation
     *  (pokes are host-rate, not cycle-rate, so selective propagation
     *  is not worth the bookkeeping here). */
    void poke(const std::string &input, const BitVec &value) override;
    void poke(const std::string &input, uint64_t value) override;

    BitVec peek(const std::string &output) const override;
    BitVec peekRegister(const std::string &reg) const override;
    BitVec peekMemory(const std::string &mem,
                      uint64_t index) const override;

    /** Nodes evaluated since construction (the "work done"). */
    uint64_t evaluatedNodes() const { return evaluated; }
    /** Nodes that would have been evaluated full-cycle. */
    uint64_t
    fullCycleNodes() const
    {
        return cycleCount * prog.instrs.size();
    }
    /** Fraction of node evaluations actually performed. */
    double
    activityFactor() const
    {
        return fullCycleNodes()
                   ? static_cast<double>(evaluated) /
                         static_cast<double>(fullCycleNodes())
                   : 0.0;
    }

    const Netlist &netlist() const override { return nl; }

  private:
    /** Sync the change-detection shadow with a fully evaluated state
     *  and clear all pending dirty flags. */
    void settle();

    Netlist nl;
    EvalProgram prog;
    std::unique_ptr<EvalState> state;

    /// instruction index -> indices of dependent instructions
    std::vector<std::vector<uint32_t>> users;
    /// per-register: instructions reading its current-value slot
    std::vector<std::vector<uint32_t>> regUsers;
    /// per-memory(program index): instructions reading it
    std::vector<std::vector<uint32_t>> memUsers;
    std::vector<uint8_t> dirty;
    std::vector<uint64_t> shadow;   ///< previous dst values

    uint64_t cycleCount = 0;
    uint64_t evaluated = 0;
};

} // namespace parendi::rtl

#endif // PARENDI_RTL_EVENT_HH
