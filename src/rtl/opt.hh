/**
 * @file
 * Netlist optimization passes, in the spirit of the Verilator
 * optimizations the real Parendi inherits ("-O3", paper §6): constant
 * folding (using the same evaluation kernel that executes the
 * simulation, so folds are exact by construction), algebraic identity
 * simplification, common-subexpression elimination, and dead code
 * elimination. Architectural state (registers, memories, ports, and
 * memory write-port order) is always preserved.
 */

#ifndef PARENDI_RTL_OPT_HH
#define PARENDI_RTL_OPT_HH

#include <cstddef>

#include "rtl/netlist.hh"

namespace parendi::rtl {

struct OptStats
{
    size_t nodesBefore = 0;
    size_t nodesAfter = 0;
    size_t folded = 0;      ///< constant-folded nodes
    size_t identities = 0;  ///< x+0, x&x, mux(1,a,b), ...
    size_t csed = 0;        ///< common subexpressions merged
    size_t dead = 0;        ///< nodes unreachable from any sink
};

/** Evaluate one pure combinational operator on constant operands
 *  (exactly the simulation kernel's semantics). */
BitVec foldConstant(Op op, uint16_t width, uint32_t aux,
                    const std::vector<BitVec> &operands);

/** Run all passes; returns the optimized netlist. */
Netlist optimize(const Netlist &nl, OptStats *stats = nullptr);

} // namespace parendi::rtl

#endif // PARENDI_RTL_OPT_HH
