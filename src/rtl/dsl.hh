/**
 * @file
 * A tiny hardware-construction DSL over Netlist, in the spirit of Chisel:
 * value-semantic Wire handles with overloaded operators, so the design
 * generators in src/designs/ read like HDL rather than graph plumbing.
 */

#ifndef PARENDI_RTL_DSL_HH
#define PARENDI_RTL_DSL_HH

#include <string>

#include "rtl/netlist.hh"

namespace parendi::rtl {

/** A handle to a node in a specific netlist. */
class Wire
{
  public:
    Wire() : nl_(nullptr), id_(kNoNode) {}
    Wire(Netlist *nl, NodeId id) : nl_(nl), id_(id) {}

    NodeId id() const { return id_; }
    uint16_t width() const { return nl_->widthOf(id_); }
    Netlist *netlist() const { return nl_; }
    bool valid() const { return nl_ != nullptr && id_ != kNoNode; }

    Wire
    make(NodeId id) const
    {
        return Wire(nl_, id);
    }

    // Bitwise / arithmetic
    Wire operator&(Wire o) const
    {
        return make(nl_->addBinary(Op::And, id_, o.id_));
    }
    Wire operator|(Wire o) const
    {
        return make(nl_->addBinary(Op::Or, id_, o.id_));
    }
    Wire operator^(Wire o) const
    {
        return make(nl_->addBinary(Op::Xor, id_, o.id_));
    }
    Wire operator+(Wire o) const
    {
        return make(nl_->addBinary(Op::Add, id_, o.id_));
    }
    Wire operator-(Wire o) const
    {
        return make(nl_->addBinary(Op::Sub, id_, o.id_));
    }
    Wire operator*(Wire o) const
    {
        return make(nl_->addBinary(Op::Mul, id_, o.id_));
    }
    Wire operator~() const { return make(nl_->addUnary(Op::Not, id_)); }
    Wire neg() const { return make(nl_->addUnary(Op::Neg, id_)); }

    // Shifts by a wire or by a constant amount
    Wire operator<<(Wire o) const
    {
        return make(nl_->addBinary(Op::Shl, id_, o.id_));
    }
    Wire operator>>(Wire o) const
    {
        return make(nl_->addBinary(Op::Shr, id_, o.id_));
    }
    Wire shl(uint32_t amount) const;
    Wire shr(uint32_t amount) const;
    Wire sra(Wire o) const
    {
        return make(nl_->addBinary(Op::Sra, id_, o.id_));
    }

    // Comparisons
    Wire operator==(Wire o) const
    {
        return make(nl_->addBinary(Op::Eq, id_, o.id_));
    }
    Wire operator!=(Wire o) const
    {
        return make(nl_->addBinary(Op::Ne, id_, o.id_));
    }
    Wire ult(Wire o) const
    {
        return make(nl_->addBinary(Op::Ult, id_, o.id_));
    }
    Wire ule(Wire o) const
    {
        return make(nl_->addBinary(Op::Ule, id_, o.id_));
    }
    Wire slt(Wire o) const
    {
        return make(nl_->addBinary(Op::Slt, id_, o.id_));
    }
    Wire sle(Wire o) const
    {
        return make(nl_->addBinary(Op::Sle, id_, o.id_));
    }

    // Reductions
    Wire redAnd() const { return make(nl_->addUnary(Op::RedAnd, id_)); }
    Wire redOr() const { return make(nl_->addUnary(Op::RedOr, id_)); }
    Wire redXor() const { return make(nl_->addUnary(Op::RedXor, id_)); }

    // Structure
    Wire
    slice(uint32_t lsb, uint16_t w) const
    {
        return make(nl_->addSlice(id_, lsb, w));
    }
    Wire bit(uint32_t i) const { return slice(i, 1); }
    Wire
    concat(Wire lo) const
    {
        return make(nl_->addConcat(id_, lo.id_));
    }
    Wire
    zext(uint16_t w) const
    {
        return w == width() ? *this : make(nl_->addExtend(Op::ZExt, id_, w));
    }
    Wire
    sext(uint16_t w) const
    {
        return w == width() ? *this : make(nl_->addExtend(Op::SExt, id_, w));
    }
    /** Truncate or zero-extend to @p w bits. */
    Wire
    resize(uint16_t w) const
    {
        if (w == width())
            return *this;
        return w < width() ? slice(0, w) : zext(w);
    }

  private:
    Netlist *nl_;
    NodeId id_;
};

/**
 * A design under construction: wraps a Netlist and hands out Wires.
 * Typical use in a generator:
 *
 *   Design d("counter");
 *   auto en = d.input("en", 1);
 *   auto cnt = d.reg("cnt", 32);
 *   d.next(cnt, d.mux(en, d.read(cnt) + d.lit(32, 1), d.read(cnt)));
 *   d.output("value", d.read(cnt));
 */
class Design
{
  public:
    explicit Design(std::string name) : nl_(std::move(name)) {}

    Netlist &netlist() { return nl_; }
    const Netlist &netlist() const { return nl_; }

    /** Move the completed netlist out (runs check()). */
    Netlist
    finish()
    {
        nl_.check();
        return std::move(nl_);
    }

    Wire
    lit(uint16_t width, uint64_t value)
    {
        return Wire(&nl_, nl_.addConst(width, value));
    }
    Wire
    lit(const BitVec &v)
    {
        return Wire(&nl_, nl_.addConst(v));
    }
    Wire
    input(const std::string &name, uint16_t width)
    {
        return Wire(&nl_, nl_.addInput(name, width));
    }
    RegId
    reg(const std::string &name, uint16_t width, uint64_t init = 0)
    {
        return nl_.addRegister(name, width, init);
    }
    RegId
    reg(const std::string &name, const BitVec &init)
    {
        return nl_.addRegister(name, static_cast<uint16_t>(init.width()),
                               init);
    }
    Wire read(RegId r) { return Wire(&nl_, nl_.readRegister(r)); }
    void next(RegId r, Wire value) { nl_.setRegisterNext(r, value.id()); }
    Wire
    mux(Wire sel, Wire t, Wire e)
    {
        return Wire(&nl_, nl_.addMux(sel.id(), t.id(), e.id()));
    }
    MemId
    memory(const std::string &name, uint16_t width, uint32_t depth)
    {
        return nl_.addMemory(name, width, depth);
    }
    Wire
    memRead(MemId m, Wire addr)
    {
        return Wire(&nl_, nl_.readMemory(m, addr.id()));
    }
    void
    memWrite(MemId m, Wire addr, Wire data, Wire en)
    {
        nl_.writeMemory(m, addr.id(), data.id(), en.id());
    }
    void
    output(const std::string &name, Wire value)
    {
        nl_.addOutput(name, value.id());
    }

  private:
    Netlist nl_;
};

inline Wire
Wire::shl(uint32_t amount) const
{
    Wire amt(nl_, nl_->addConst(32, amount));
    return *this << amt;
}

inline Wire
Wire::shr(uint32_t amount) const
{
    Wire amt(nl_, nl_->addConst(32, amount));
    return *this >> amt;
}

} // namespace parendi::rtl

#endif // PARENDI_RTL_DSL_HH
