#include "rtl/eval.hh"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

#include "rtl/analysis.hh"
#include "util/logging.hh"

namespace parendi::rtl {

namespace {

constexpr uint32_t
nw(uint32_t width)
{
    return (width + 63) / 64;
}

inline uint64_t
topMask(uint16_t width)
{
    uint32_t r = width & 63;
    return r ? (uint64_t{1} << r) - 1 : ~uint64_t{0};
}

inline void
normalize(uint64_t *d, uint16_t width)
{
    d[nw(width) - 1] &= topMask(width);
}

inline void
copyVal(uint64_t *d, const uint64_t *a, uint32_t words)
{
    std::memcpy(d, a, words * sizeof(uint64_t));
}

inline void
zeroVal(uint64_t *d, uint32_t words)
{
    std::memset(d, 0, words * sizeof(uint64_t));
}

void
addVal(uint64_t *d, const uint64_t *a, const uint64_t *b, uint16_t width)
{
    uint32_t n = nw(width);
    unsigned __int128 carry = 0;
    for (uint32_t i = 0; i < n; ++i) {
        unsigned __int128 s = carry + a[i] + b[i];
        d[i] = static_cast<uint64_t>(s);
        carry = s >> 64;
    }
    normalize(d, width);
}

void
subVal(uint64_t *d, const uint64_t *a, const uint64_t *b, uint16_t width)
{
    uint32_t n = nw(width);
    unsigned __int128 borrow = 0;
    for (uint32_t i = 0; i < n; ++i) {
        unsigned __int128 s = static_cast<unsigned __int128>(a[i]) - b[i]
            - borrow;
        d[i] = static_cast<uint64_t>(s);
        borrow = (s >> 64) ? 1 : 0;
    }
    normalize(d, width);
}

void
mulVal(uint64_t *d, const uint64_t *a, const uint64_t *b, uint16_t width)
{
    uint32_t n = nw(width);
    // Truncating schoolbook multiply on 64-bit limbs.
    uint64_t tmp[nw(kMaxWidth)] = {0};
    for (uint32_t i = 0; i < n; ++i) {
        if (a[i] == 0)
            continue;
        unsigned __int128 carry = 0;
        for (uint32_t j = 0; i + j < n; ++j) {
            unsigned __int128 cur = tmp[i + j] + carry +
                static_cast<unsigned __int128>(a[i]) * b[j];
            tmp[i + j] = static_cast<uint64_t>(cur);
            carry = cur >> 64;
        }
    }
    copyVal(d, tmp, n);
    normalize(d, width);
}

/** Shift amount as a saturating uint64 (any nonzero high word = huge). */
uint64_t
shiftAmount(const uint64_t *b, uint16_t wb)
{
    return saturatingWideReadBits(b, wb);
}

void
shlVal(uint64_t *d, const uint64_t *a, uint64_t amount, uint16_t width)
{
    uint32_t n = nw(width);
    if (amount >= width) {
        zeroVal(d, n);
        return;
    }
    uint32_t word_shift = static_cast<uint32_t>(amount >> 6);
    uint32_t bit_shift = static_cast<uint32_t>(amount & 63);
    for (uint32_t i = n; i-- > 0;) {
        uint64_t hi = i >= word_shift ? a[i - word_shift] : 0;
        uint64_t lo = (bit_shift && i > word_shift)
            ? a[i - word_shift - 1] : 0;
        d[i] = bit_shift ? (hi << bit_shift) | (lo >> (64 - bit_shift)) : hi;
    }
    normalize(d, width);
}

void
shrVal(uint64_t *d, const uint64_t *a, uint64_t amount, uint16_t width)
{
    uint32_t n = nw(width);
    if (amount >= width) {
        zeroVal(d, n);
        return;
    }
    uint32_t word_shift = static_cast<uint32_t>(amount >> 6);
    uint32_t bit_shift = static_cast<uint32_t>(amount & 63);
    for (uint32_t i = 0; i < n; ++i) {
        uint64_t lo = i + word_shift < n ? a[i + word_shift] : 0;
        uint64_t hi = (bit_shift && i + word_shift + 1 < n)
            ? a[i + word_shift + 1] : 0;
        d[i] = bit_shift ? (lo >> bit_shift) | (hi << (64 - bit_shift)) : lo;
    }
}

void
sraVal(uint64_t *d, const uint64_t *a, uint64_t amount, uint16_t width)
{
    bool sign = (a[(width - 1) >> 6] >> ((width - 1) & 63)) & 1;
    if (amount >= width) {
        uint32_t n = nw(width);
        for (uint32_t i = 0; i < n; ++i)
            d[i] = sign ? ~uint64_t{0} : 0;
        normalize(d, width);
        return;
    }
    shrVal(d, a, amount, width);
    if (sign && amount > 0) {
        // Fill the vacated top `amount` bits with ones.
        for (uint32_t bit = width - static_cast<uint32_t>(amount);
             bit < width; ++bit)
            d[bit >> 6] |= uint64_t{1} << (bit & 63);
    }
}

/** Unsigned compare: -1, 0, +1. */
int
ucmp(const uint64_t *a, const uint64_t *b, uint16_t width)
{
    for (uint32_t i = nw(width); i-- > 0;) {
        if (a[i] < b[i])
            return -1;
        if (a[i] > b[i])
            return 1;
    }
    return 0;
}

/** Signed compare of width-bit two's-complement values. */
int
scmp(const uint64_t *a, const uint64_t *b, uint16_t width)
{
    uint32_t sbit = (width - 1);
    bool sa = (a[sbit >> 6] >> (sbit & 63)) & 1;
    bool sb = (b[sbit >> 6] >> (sbit & 63)) & 1;
    if (sa != sb)
        return sa ? -1 : 1;
    return ucmp(a, b, width);
}

bool
isZeroVal(const uint64_t *a, uint16_t width)
{
    for (uint32_t i = 0; i < nw(width); ++i)
        if (a[i])
            return false;
    return true;
}

// -- Single-word (W tier) kernels ---------------------------------------
//
// Invariant: every slot value is normalized (bits above its width are
// zero), maintained by all kernels, writeSlot(), and the init images.
// Kernels whose operands may be wider than the result (the truncating
// fused forms) mask the result explicitly.

/** Sign-extend the low @p w bits of @p v to 64 bits (1 <= w <= 64). */
inline int64_t
sextWord(uint64_t v, uint16_t w)
{
    unsigned sh = 64u - w;
    return static_cast<int64_t>(v << sh) >> sh;
}

inline void
kNotW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = ~s[in.a] & topMask(in.width);
}

inline void
kNegW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = (0 - s[in.a]) & topMask(in.width);
}

inline void
kRedAndW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = s[in.a] == topMask(in.wa);
}

inline void
kRedOrW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = s[in.a] != 0;
}

inline void
kRedXorW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = static_cast<uint64_t>(std::popcount(s[in.a])) & 1;
}

inline void
kAndW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = (s[in.a] & s[in.b]) & topMask(in.width);
}

inline void
kOrW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = (s[in.a] | s[in.b]) & topMask(in.width);
}

inline void
kXorW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = (s[in.a] ^ s[in.b]) & topMask(in.width);
}

inline void
kAddW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = (s[in.a] + s[in.b]) & topMask(in.width);
}

inline void
kSubW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = (s[in.a] - s[in.b]) & topMask(in.width);
}

inline void
kMulW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = (s[in.a] * s[in.b]) & topMask(in.width);
}

inline void
kShlW(const EvalInstr &in, uint64_t *s)
{
    uint64_t amt = s[in.b];
    s[in.dst] = amt >= in.width
        ? 0 : (s[in.a] << amt) & topMask(in.width);
}

inline void
kShrW(const EvalInstr &in, uint64_t *s)
{
    uint64_t amt = s[in.b];
    s[in.dst] = amt >= in.width ? 0 : s[in.a] >> amt;
}

inline void
kSraW(const EvalInstr &in, uint64_t *s)
{
    uint64_t amt = s[in.b];
    int64_t v = sextWord(s[in.a], in.width);
    if (amt >= in.width)
        amt = in.width - 1u;
    s[in.dst] = static_cast<uint64_t>(v >> amt) & topMask(in.width);
}

inline void
kEqW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = s[in.a] == s[in.b];
}

inline void
kNeW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = s[in.a] != s[in.b];
}

inline void
kUltW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = s[in.a] < s[in.b];
}

inline void
kUleW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = s[in.a] <= s[in.b];
}

inline void
kSltW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = sextWord(s[in.a], in.wa) < sextWord(s[in.b], in.wa);
}

inline void
kSleW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = sextWord(s[in.a], in.wa) <= sextWord(s[in.b], in.wa);
}

inline void
kMuxW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = (s[in.a] & 1) ? s[in.b] : s[in.c];
}

inline void
kConcatW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = (s[in.a] << in.wb) | s[in.b];
}

inline void
kSliceW(const EvalInstr &in, uint64_t *s)
{
    uint32_t ws = in.aux >> 6;
    uint32_t bs = in.aux & 63;
    uint32_t na = nw(in.wa);
    const uint64_t *a = s + in.a;
    uint64_t lo = a[ws];
    uint64_t hi = (bs && ws + 1 < na) ? a[ws + 1] : 0;
    uint64_t v = bs ? (lo >> bs) | (hi << (64 - bs)) : lo;
    s[in.dst] = v & topMask(in.width);
}

inline void
kZExtW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = s[in.a];
}

inline void
kSExtW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = static_cast<uint64_t>(sextWord(s[in.a], in.wa)) &
        topMask(in.width);
}

inline void
kAndNotW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = (s[in.a] & ~s[in.b]) & topMask(in.width);
}

inline void
kOrNotW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = (s[in.a] | ~s[in.b]) & topMask(in.width);
}

inline void
kXorNotW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = (s[in.a] ^ ~s[in.b]) & topMask(in.width);
}

inline void
kEqMuxW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = s[in.a] == s[in.b] ? s[in.c] : s[in.aux];
}

inline void
kNeMuxW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = s[in.a] != s[in.b] ? s[in.c] : s[in.aux];
}

inline void
kUltMuxW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = s[in.a] < s[in.b] ? s[in.c] : s[in.aux];
}

inline void
kUleMuxW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = s[in.a] <= s[in.b] ? s[in.c] : s[in.aux];
}

inline void
kSltMuxW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = sextWord(s[in.a], in.wa) < sextWord(s[in.b], in.wa)
        ? s[in.c] : s[in.aux];
}

inline void
kSleMuxW(const EvalInstr &in, uint64_t *s)
{
    s[in.dst] = sextWord(s[in.a], in.wa) <= sextWord(s[in.b], in.wa)
        ? s[in.c] : s[in.aux];
}

} // namespace

const char *
evalOpName(EvalOp op)
{
    if (isGenericEvalOp(op))
        return opName(static_cast<Op>(op));
    switch (op) {
      case EvalOp::NotW: return "not.w";
      case EvalOp::NegW: return "neg.w";
      case EvalOp::RedAndW: return "redand.w";
      case EvalOp::RedOrW: return "redor.w";
      case EvalOp::RedXorW: return "redxor.w";
      case EvalOp::AndW: return "and.w";
      case EvalOp::OrW: return "or.w";
      case EvalOp::XorW: return "xor.w";
      case EvalOp::AddW: return "add.w";
      case EvalOp::SubW: return "sub.w";
      case EvalOp::MulW: return "mul.w";
      case EvalOp::ShlW: return "shl.w";
      case EvalOp::ShrW: return "shr.w";
      case EvalOp::SraW: return "sra.w";
      case EvalOp::EqW: return "eq.w";
      case EvalOp::NeW: return "ne.w";
      case EvalOp::UltW: return "ult.w";
      case EvalOp::UleW: return "ule.w";
      case EvalOp::SltW: return "slt.w";
      case EvalOp::SleW: return "sle.w";
      case EvalOp::MuxW: return "mux.w";
      case EvalOp::ConcatW: return "concat.w";
      case EvalOp::SliceW: return "slice.w";
      case EvalOp::ZExtW: return "zext.w";
      case EvalOp::SExtW: return "sext.w";
      case EvalOp::MemReadW: return "memread.w";
      case EvalOp::AndNotW: return "andnot.w";
      case EvalOp::OrNotW: return "ornot.w";
      case EvalOp::XorNotW: return "xornot.w";
      case EvalOp::EqMuxW: return "eqmux.w";
      case EvalOp::NeMuxW: return "nemux.w";
      case EvalOp::UltMuxW: return "ultmux.w";
      case EvalOp::UleMuxW: return "ulemux.w";
      case EvalOp::SltMuxW: return "sltmux.w";
      case EvalOp::SleMuxW: return "slemux.w";
      default: return "?";
    }
}

int
evalInstrOperands(const EvalInstr &in, uint32_t ops[4])
{
    if (isGenericEvalOp(in.op)) {
        int arity = opArity(static_cast<Op>(in.op));
        if (arity >= 1)
            ops[0] = in.a;
        if (arity >= 2)
            ops[1] = in.b;
        if (arity >= 3)
            ops[2] = in.c;
        return arity;
    }
    switch (in.op) {
      case EvalOp::NotW:
      case EvalOp::NegW:
      case EvalOp::RedAndW:
      case EvalOp::RedOrW:
      case EvalOp::RedXorW:
      case EvalOp::SliceW:
      case EvalOp::ZExtW:
      case EvalOp::SExtW:
      case EvalOp::MemReadW:
        ops[0] = in.a;
        return 1;
      case EvalOp::MuxW:
        ops[0] = in.a;
        ops[1] = in.b;
        ops[2] = in.c;
        return 3;
      case EvalOp::EqMuxW:
      case EvalOp::NeMuxW:
      case EvalOp::UltMuxW:
      case EvalOp::UleMuxW:
      case EvalOp::SltMuxW:
      case EvalOp::SleMuxW:
        ops[0] = in.a;
        ops[1] = in.b;
        ops[2] = in.c;
        ops[3] = in.aux;
        return 4;
      default: // remaining W forms are binary
        ops[0] = in.a;
        ops[1] = in.b;
        return 2;
    }
}

bool
evalReadsMemory(EvalOp op)
{
    return op == EvalOp::MemRead || op == EvalOp::MemReadW;
}

uint64_t
EvalProgram::dataBytes() const
{
    uint64_t bytes = initSlots.size() * 8;
    for (const auto &img : memInit)
        bytes += img.size() * 8;
    return bytes;
}

ProgramBuilder::ProgramBuilder(const Netlist &nl) : nl_(nl) {}

uint32_t
ProgramBuilder::allocSlots(uint16_t width)
{
    uint32_t off = static_cast<uint32_t>(prog_.initSlots.size());
    prog_.initSlots.resize(off + nw(width), 0);
    return off;
}

uint32_t
ProgramBuilder::slotFor(NodeId id) const
{
    auto it = prog_.slotOf.find(id);
    if (it == prog_.slotOf.end())
        panic("node %u used before being added to program", id);
    return it->second;
}

void
ProgramBuilder::addNode(NodeId id)
{
    if (prog_.slotOf.count(id))
        return;
    const Node &n = nl_.node(id);
    switch (n.op) {
      case Op::Const: {
        uint32_t slot = allocSlots(n.width);
        const BitVec &v = nl_.constValue(n.aux);
        for (uint32_t i = 0; i < v.numWords(); ++i)
            prog_.initSlots[slot + i] = v.word(i);
        prog_.slotOf[id] = slot;
        return;
      }
      case Op::Input: {
        uint32_t slot = allocSlots(n.width);
        prog_.slotOf[id] = slot;
        prog_.inputs.push_back({n.aux, n.width, slot});
        return;
      }
      case Op::RegRead: {
        RegId reg = n.aux;
        auto it = regIndex_.find(reg);
        uint32_t idx;
        if (it == regIndex_.end()) {
            uint32_t slot = allocSlots(n.width);
            const BitVec &init = nl_.reg(reg).init;
            for (uint32_t i = 0; i < init.numWords(); ++i)
                prog_.initSlots[slot + i] = init.word(i);
            idx = static_cast<uint32_t>(prog_.regs.size());
            prog_.regs.push_back({reg, n.width, slot, kNoSlot, false});
            regIndex_[reg] = idx;
        } else {
            idx = it->second;
        }
        prog_.slotOf[id] = prog_.regs[idx].cur;
        return;
      }
      case Op::RegNext: {
        RegId reg = n.aux;
        uint32_t value_slot = slotFor(n.operands[0]);
        auto it = regIndex_.find(reg);
        if (it == regIndex_.end()) {
            // Register written but never read locally: no cur slot
            // needed for evaluation, but allocate one anyway so the
            // host can latch/peek uniformly.
            uint32_t slot = allocSlots(n.width);
            const BitVec &init = nl_.reg(reg).init;
            for (uint32_t i = 0; i < init.numWords(); ++i)
                prog_.initSlots[slot + i] = init.word(i);
            regIndex_[reg] = static_cast<uint32_t>(prog_.regs.size());
            prog_.regs.push_back({reg, n.width, slot, value_slot, true});
        } else {
            ProgReg &pr = prog_.regs[it->second];
            pr.next = value_slot;
            pr.owned = true;
        }
        prog_.slotOf[id] = value_slot;
        return;
      }
      case Op::Output: {
        prog_.slotOf[id] = slotFor(n.operands[0]);
        prog_.outputs.push_back({n.aux, n.width, slotFor(n.operands[0])});
        return;
      }
      case Op::MemWrite: {
        MemId mem = n.aux;
        auto it = memIndex_.find(mem);
        uint32_t idx;
        if (it == memIndex_.end()) {
            idx = static_cast<uint32_t>(prog_.mems.size());
            const Memory &m = nl_.mem(mem);
            prog_.mems.push_back({mem, nw(m.width), m.depth, true});
            memIndex_[mem] = idx;
        } else {
            idx = it->second;
            prog_.mems[idx].owned = true;
        }
        prog_.writes.push_back({idx, slotFor(n.operands[0]),
                                nl_.widthOf(n.operands[0]),
                                slotFor(n.operands[1]),
                                slotFor(n.operands[2])});
        prog_.slotOf[id] = slotFor(n.operands[1]);
        return;
      }
      default:
        break;
    }

    // Pure combinational operator: emit a generic-tier instruction.
    EvalInstr in;
    in.op = toEvalOp(n.op);
    in.width = n.width;
    in.aux = n.aux;
    in.wa = 0;
    in.wb = 0;
    in.a = in.b = in.c = 0;
    int arity = opArity(n.op);
    if (arity >= 1) {
        in.a = slotFor(n.operands[0]);
        in.wa = nl_.widthOf(n.operands[0]);
    }
    if (arity >= 2) {
        in.b = slotFor(n.operands[1]);
        in.wb = nl_.widthOf(n.operands[1]);
    }
    if (arity >= 3)
        in.c = slotFor(n.operands[2]);

    if (n.op == Op::MemRead) {
        MemId mem = n.aux;
        auto it = memIndex_.find(mem);
        uint32_t idx;
        if (it == memIndex_.end()) {
            idx = static_cast<uint32_t>(prog_.mems.size());
            const Memory &m = nl_.mem(mem);
            prog_.mems.push_back({mem, nw(m.width), m.depth, false});
            memIndex_[mem] = idx;
        } else {
            idx = it->second;
        }
        in.aux = idx; // program-local memory index
    }

    uint32_t dst = allocSlots(n.width);
    in.dst = dst;
    prog_.slotOf[id] = dst;
    prog_.instrs.push_back(in);
}

void
ProgramBuilder::addAll()
{
    // Construction order is topological (the builder API cannot
    // reference a node before it exists), and ascending order also
    // preserves memory write-port order.
    for (NodeId id = 0; id < nl_.numNodes(); ++id)
        addNode(id);
}

EvalProgram
ProgramBuilder::build()
{
    // Populate memory init images.
    prog_.memInit.resize(prog_.mems.size());
    for (size_t i = 0; i < prog_.mems.size(); ++i) {
        const ProgMem &pm = prog_.mems[i];
        const Memory &m = nl_.mem(pm.mem);
        auto &img = prog_.memInit[i];
        img.assign(uint64_t{pm.entryWords} * pm.depth, 0);
        for (size_t e = 0; e < m.init.size(); ++e)
            for (uint32_t w = 0; w < m.init[e].numWords(); ++w)
                img[e * pm.entryWords + w] = m.init[e].word(w);
    }
    return std::move(prog_);
}

EvalState::EvalState(const EvalProgram &prog, uint32_t lanes)
    : prog_(prog), lanes_(lanes ? lanes : 1)
{
    reset();
}

void
EvalState::reset()
{
    // Broadcast the scalar init images across all lanes (lane-major:
    // word w of lane l at [w * L + l]). At L == 1 this is a plain copy.
    const uint32_t L = lanes_;
    slots_.resize(uint64_t(prog_.initSlots.size()) * L);
    for (size_t w = 0; w < prog_.initSlots.size(); ++w)
        for (uint32_t l = 0; l < L; ++l)
            slots_[w * L + l] = prog_.initSlots[w];
    mems_.resize(prog_.memInit.size());
    for (size_t m = 0; m < prog_.memInit.size(); ++m) {
        const auto &init = prog_.memInit[m];
        mems_[m].resize(uint64_t(init.size()) * L);
        for (size_t w = 0; w < init.size(); ++w)
            for (uint32_t l = 0; l < L; ++l)
                mems_[m][w * L + l] = init[w];
    }
    refreshMemPtrs();
    markAllDirty();
}

void
EvalState::refreshMemPtrs()
{
    memPtrs_.resize(mems_.size());
    for (size_t i = 0; i < mems_.size(); ++i)
        memPtrs_[i] = mems_[i].data();
}

void
EvalState::setNativeEval(NativeEvalFn fn, std::shared_ptr<void> code,
                         NativeEvalFn commit, NativeEvalFn latch,
                         NativeEvalActFn act, NativeLatchActFn latchAct)
{
    nativeFn_ = fn;
    nativeCommit_ = fn ? commit : nullptr;
    nativeLatch_ = fn ? latch : nullptr;
    nativeAct_ = fn ? act : nullptr;
    nativeLatchAct_ = fn ? latchAct : nullptr;
    nativeCode_ = std::move(code);
    refreshMemPtrs();
}

bool
EvalState::enableActivity(bool on)
{
    if (on && !prog_.activity.built) {
        activity_ = false;
        return false;
    }
    activity_ = on;
    if (on) {
        dirty_.assign(prog_.activity.numGroups(), 1);
        lastGroupsTotal_ = prog_.activity.numGroups();
    }
    return activity_;
}

void
EvalState::markAllDirty()
{
    if (activity_)
        std::memset(dirty_.data(), 1, dirty_.size());
}

void
EvalState::markRegReadersDirty(uint32_t progRegIndex)
{
    if (!activity_)
        return;
    for (uint32_t g : prog_.activity.regReaders[progRegIndex])
        dirty_[g] = 1;
}

void
EvalState::markMemReadersDirty(uint32_t memIndex)
{
    if (!activity_)
        return;
    for (uint32_t g : prog_.activity.memReaders[memIndex])
        dirty_[g] = 1;
}

BitVec
EvalState::readSlot(uint32_t slot, uint16_t width, uint32_t lane) const
{
    uint32_t n = nw(width);
    const uint64_t *p = &slots_[uint64_t(slot) * lanes_ + lane];
    std::vector<uint64_t> words(n);
    for (uint32_t i = 0; i < n; ++i)
        words[i] = p[i * lanes_];
    return BitVec(width, std::move(words));
}

void
EvalState::readSlotInto(uint32_t slot, uint16_t width, BitVec &out,
                        uint32_t lane) const
{
    uint32_t n = nw(width);
    const uint64_t *p = &slots_[uint64_t(slot) * lanes_ + lane];
    if (lanes_ == 1) {
        out.assign(width, p, n);
        return;
    }
    uint64_t tmp[nw(kMaxWidth)];
    for (uint32_t i = 0; i < n; ++i)
        tmp[i] = p[i * lanes_];
    out.assign(width, tmp, n);
}

void
EvalState::writeSlot(uint32_t slot, const BitVec &v)
{
    uint64_t *p = &slots_[uint64_t(slot) * lanes_];
    for (uint32_t i = 0; i < v.numWords(); ++i)
        for (uint32_t l = 0; l < lanes_; ++l)
            p[i * lanes_ + l] = v.word(i);
    // Host writes land on arbitrary slots (pokes, state import); the
    // conservative seed is a full re-eval.
    markAllDirty();
}

void
EvalState::writeSlotLane(uint32_t slot, const BitVec &v, uint32_t lane)
{
    uint64_t *p = &slots_[uint64_t(slot) * lanes_ + lane];
    for (uint32_t i = 0; i < v.numWords(); ++i)
        p[i * lanes_] = v.word(i);
    markAllDirty();
}

BitVec
EvalState::readMemEntry(uint32_t memIndex, uint64_t index, uint16_t width,
                        uint32_t lane) const
{
    const ProgMem &pm = prog_.mems[memIndex];
    std::vector<uint64_t> words(pm.entryWords, 0);
    if (index < pm.depth) {
        const uint64_t *p =
            &mems_[memIndex][(index * pm.entryWords) * lanes_ + lane];
        for (uint32_t i = 0; i < pm.entryWords; ++i)
            words[i] = p[i * lanes_];
    }
    return BitVec(width, std::move(words));
}

void
EvalState::writeMemEntry(uint32_t memIndex, uint64_t index,
                         const BitVec &v, uint32_t lane)
{
    const ProgMem &pm = prog_.mems[memIndex];
    if (index >= pm.depth)
        return;
    uint64_t *p = &mems_[memIndex][(index * pm.entryWords) * lanes_ + lane];
    for (uint32_t i = 0; i < pm.entryWords; ++i)
        p[i * lanes_] = i < v.numWords() ? v.word(i) : 0;
    markMemReadersDirty(memIndex);
}

// Computed-goto dispatch removes the per-instruction bounds check and
// branch mispredictions of a switch: each kernel jumps directly to the
// next instruction's kernel. Define PARENDI_SWITCH_DISPATCH to force
// the portable switch loop (also used by non-GNU compilers).
#if defined(__GNUC__) && !defined(PARENDI_SWITCH_DISPATCH)
#define PARENDI_COMPUTED_GOTO 1
#else
#define PARENDI_COMPUTED_GOTO 0
#endif

void
EvalState::evalComb()
{
    if (activity_) {
        evalActive();
        return;
    }
    lastInstrs_ = prog_.instrs.size();
    lastGroupsRun_ = lastGroupsTotal_ = prog_.activity.numGroups();
    if (nativeFn_) {
        nativeFn_(slots_.data(), memPtrs_.data());
        return;
    }
    if (lanes_ > 1) {
        evalCombGang();
        return;
    }
    execRange(prog_.instrs.data(),
              prog_.instrs.data() + prog_.instrs.size());
}

void
EvalState::execRange(const EvalInstr *ip, const EvalInstr *const end)
{
    if (ip == end)
        return;
#if PARENDI_COMPUTED_GOTO
    uint64_t *s = slots_.data();
    // One entry per EvalOp value, in enum order. Source/sink opcodes
    // never appear in instrs; they trap via op_bad.
    static const void *const jump[] = {
        // Generic tier (mirrors rtl::Op).
        &&op_bad, &&op_bad, &&op_bad, &&op_generic,      // Const..MemRead
        &&op_generic, &&op_generic, &&op_generic,        // Not..RedAnd
        &&op_generic, &&op_generic,                      // RedOr, RedXor
        &&op_generic, &&op_generic, &&op_generic,        // And, Or, Xor
        &&op_generic, &&op_generic, &&op_generic,        // Add, Sub, Mul
        &&op_generic, &&op_generic, &&op_generic,        // Shl, Shr, Sra
        &&op_generic, &&op_generic, &&op_generic,        // Eq, Ne, Ult
        &&op_generic, &&op_generic, &&op_generic,        // Ule, Slt, Sle
        &&op_generic, &&op_generic, &&op_generic,        // Mux..Slice
        &&op_generic, &&op_generic,                      // ZExt, SExt
        &&op_bad, &&op_bad, &&op_bad,                    // RegNext..Output
        // Specialized single-word tier.
        &&op_NotW, &&op_NegW, &&op_RedAndW, &&op_RedOrW, &&op_RedXorW,
        &&op_AndW, &&op_OrW, &&op_XorW, &&op_AddW, &&op_SubW, &&op_MulW,
        &&op_ShlW, &&op_ShrW, &&op_SraW,
        &&op_EqW, &&op_NeW, &&op_UltW, &&op_UleW, &&op_SltW, &&op_SleW,
        &&op_MuxW, &&op_ConcatW, &&op_SliceW, &&op_ZExtW, &&op_SExtW,
        &&op_MemReadW,
        // Fused superinstructions.
        &&op_AndNotW, &&op_OrNotW, &&op_XorNotW,
        &&op_EqMuxW, &&op_NeMuxW, &&op_UltMuxW, &&op_UleMuxW,
        &&op_SltMuxW, &&op_SleMuxW,
    };
    static_assert(sizeof(jump) / sizeof(jump[0]) ==
                      static_cast<size_t>(EvalOp::NumEvalOps),
                  "jump table must cover every EvalOp");

#define PARENDI_DISPATCH()                                              \
    do {                                                                \
        if (++ip == end)                                                \
            return;                                                     \
        goto *jump[static_cast<size_t>(ip->op)];                        \
    } while (0)

    goto *jump[static_cast<size_t>(ip->op)];

  op_generic:
    execGeneric(*ip, s);
    PARENDI_DISPATCH();
#define PARENDI_LABEL(name)                                             \
  op_##name:                                                            \
    k##name(*ip, s);                                                    \
    PARENDI_DISPATCH()
    PARENDI_LABEL(NotW);
    PARENDI_LABEL(NegW);
    PARENDI_LABEL(RedAndW);
    PARENDI_LABEL(RedOrW);
    PARENDI_LABEL(RedXorW);
    PARENDI_LABEL(AndW);
    PARENDI_LABEL(OrW);
    PARENDI_LABEL(XorW);
    PARENDI_LABEL(AddW);
    PARENDI_LABEL(SubW);
    PARENDI_LABEL(MulW);
    PARENDI_LABEL(ShlW);
    PARENDI_LABEL(ShrW);
    PARENDI_LABEL(SraW);
    PARENDI_LABEL(EqW);
    PARENDI_LABEL(NeW);
    PARENDI_LABEL(UltW);
    PARENDI_LABEL(UleW);
    PARENDI_LABEL(SltW);
    PARENDI_LABEL(SleW);
    PARENDI_LABEL(MuxW);
    PARENDI_LABEL(ConcatW);
    PARENDI_LABEL(SliceW);
    PARENDI_LABEL(ZExtW);
    PARENDI_LABEL(SExtW);
    PARENDI_LABEL(AndNotW);
    PARENDI_LABEL(OrNotW);
    PARENDI_LABEL(XorNotW);
    PARENDI_LABEL(EqMuxW);
    PARENDI_LABEL(NeMuxW);
    PARENDI_LABEL(UltMuxW);
    PARENDI_LABEL(UleMuxW);
    PARENDI_LABEL(SltMuxW);
    PARENDI_LABEL(SleMuxW);
#undef PARENDI_LABEL
  op_MemReadW:
    execMemReadW(*ip);
    PARENDI_DISPATCH();
  op_bad:
    panic("evalComb: non-executable opcode %s", evalOpName(ip->op));
#undef PARENDI_DISPATCH
#else
    for (; ip != end; ++ip)
        evalOne(*ip);
#endif
}

void
EvalState::evalActive()
{
    const ActivityPlan &ap = prog_.activity;
    lastGroupsTotal_ = ap.numGroups();
    if (nativeAct_) {
        uint64_t packed = nativeAct_(slots_.data(), memPtrs_.data(),
                                     dirty_.data());
        lastGroupsRun_ = static_cast<uint32_t>(packed >> 32);
        lastInstrs_ = static_cast<uint32_t>(packed);
        return;
    }
    // Forward over-approximating sweep: every successor edge points to
    // a later group (topological instruction order), so one pass in
    // group order both executes all dirty groups and propagates
    // dirtiness downstream. Skipped groups keep their previous outputs,
    // which are still correct — pure combinational logic over inputs
    // that did not change.
    const EvalInstr *base = prog_.instrs.data();
    uint64_t instrs = 0;
    uint32_t run = 0;
    const uint32_t ng = ap.numGroups();
    for (uint32_t g = 0; g < ng; ++g) {
        if (!dirty_[g])
            continue;
        dirty_[g] = 0;
        const ActivityGroup &grp = ap.groups[g];
        if (lanes_ > 1) {
            for (uint32_t i = grp.beginInstr; i < grp.endInstr; ++i)
                execGangInstr(base[i]);
        } else {
            execRange(base + grp.beginInstr, base + grp.endInstr);
        }
        for (uint32_t k = grp.succBegin; k < grp.succEnd; ++k)
            dirty_[ap.succs[k]] = 1;
        instrs += grp.endInstr - grp.beginInstr;
        ++run;
    }
    lastInstrs_ = instrs;
    lastGroupsRun_ = run;
}

void
EvalState::evalOne(const EvalInstr &in)
{
    if (lanes_ > 1) {
        execGangInstr(in);
        return;
    }
    if (isGenericEvalOp(in.op))
        execGeneric(in, slots_.data());
    else
        execSpecial(in, slots_.data());
}

void
EvalState::execSpecial(const EvalInstr &in, uint64_t *s)
{
    switch (in.op) {
      case EvalOp::NotW: kNotW(in, s); break;
      case EvalOp::NegW: kNegW(in, s); break;
      case EvalOp::RedAndW: kRedAndW(in, s); break;
      case EvalOp::RedOrW: kRedOrW(in, s); break;
      case EvalOp::RedXorW: kRedXorW(in, s); break;
      case EvalOp::AndW: kAndW(in, s); break;
      case EvalOp::OrW: kOrW(in, s); break;
      case EvalOp::XorW: kXorW(in, s); break;
      case EvalOp::AddW: kAddW(in, s); break;
      case EvalOp::SubW: kSubW(in, s); break;
      case EvalOp::MulW: kMulW(in, s); break;
      case EvalOp::ShlW: kShlW(in, s); break;
      case EvalOp::ShrW: kShrW(in, s); break;
      case EvalOp::SraW: kSraW(in, s); break;
      case EvalOp::EqW: kEqW(in, s); break;
      case EvalOp::NeW: kNeW(in, s); break;
      case EvalOp::UltW: kUltW(in, s); break;
      case EvalOp::UleW: kUleW(in, s); break;
      case EvalOp::SltW: kSltW(in, s); break;
      case EvalOp::SleW: kSleW(in, s); break;
      case EvalOp::MuxW: kMuxW(in, s); break;
      case EvalOp::ConcatW: kConcatW(in, s); break;
      case EvalOp::SliceW: kSliceW(in, s); break;
      case EvalOp::ZExtW: kZExtW(in, s); break;
      case EvalOp::SExtW: kSExtW(in, s); break;
      case EvalOp::MemReadW: execMemReadW(in); break;
      case EvalOp::AndNotW: kAndNotW(in, s); break;
      case EvalOp::OrNotW: kOrNotW(in, s); break;
      case EvalOp::XorNotW: kXorNotW(in, s); break;
      case EvalOp::EqMuxW: kEqMuxW(in, s); break;
      case EvalOp::NeMuxW: kNeMuxW(in, s); break;
      case EvalOp::UltMuxW: kUltMuxW(in, s); break;
      case EvalOp::UleMuxW: kUleMuxW(in, s); break;
      case EvalOp::SltMuxW: kSltMuxW(in, s); break;
      case EvalOp::SleMuxW: kSleMuxW(in, s); break;
      default:
        panic("execSpecial: unexpected op %s", evalOpName(in.op));
    }
}

void
EvalState::execMemReadW(const EvalInstr &in)
{
    const ProgMem &pm = prog_.mems[in.aux];
    uint64_t addr = slots_[in.a];
    slots_[in.dst] = addr < pm.depth ? mems_[in.aux][addr] : 0;
}

void
EvalState::execGeneric(const EvalInstr &in, uint64_t *s)
{
    {
        uint64_t *d = s + in.dst;
        const uint64_t *a = s + in.a;
        const uint64_t *b = s + in.b;
        uint32_t n = nw(in.width);
        switch (static_cast<Op>(in.op)) {
          case Op::Not:
            for (uint32_t i = 0; i < n; ++i)
                d[i] = ~a[i];
            normalize(d, in.width);
            break;
          case Op::Neg: {
            unsigned __int128 borrow = 0;
            for (uint32_t i = 0; i < n; ++i) {
                unsigned __int128 v = static_cast<unsigned __int128>(0)
                    - a[i] - borrow;
                d[i] = static_cast<uint64_t>(v);
                borrow = a[i] || borrow ? 1 : 0;
            }
            normalize(d, in.width);
            break;
          }
          case Op::RedAnd: {
            bool all = true;
            uint32_t na = nw(in.wa);
            for (uint32_t i = 0; i + 1 < na; ++i)
                all &= (a[i] == ~uint64_t{0});
            all &= (a[na - 1] == topMask(in.wa));
            d[0] = all;
            break;
          }
          case Op::RedOr:
            d[0] = !isZeroVal(a, in.wa);
            break;
          case Op::RedXor: {
            uint64_t acc = 0;
            for (uint32_t i = 0; i < nw(in.wa); ++i)
                acc ^= a[i];
            d[0] = static_cast<uint64_t>(std::popcount(acc)) & 1;
            break;
          }
          case Op::And:
            for (uint32_t i = 0; i < n; ++i)
                d[i] = a[i] & b[i];
            break;
          case Op::Or:
            for (uint32_t i = 0; i < n; ++i)
                d[i] = a[i] | b[i];
            break;
          case Op::Xor:
            for (uint32_t i = 0; i < n; ++i)
                d[i] = a[i] ^ b[i];
            break;
          case Op::Add:
            addVal(d, a, b, in.width);
            break;
          case Op::Sub:
            subVal(d, a, b, in.width);
            break;
          case Op::Mul:
            mulVal(d, a, b, in.width);
            break;
          case Op::Shl:
            shlVal(d, a, shiftAmount(b, in.wb), in.width);
            break;
          case Op::Shr:
            shrVal(d, a, shiftAmount(b, in.wb), in.width);
            break;
          case Op::Sra:
            sraVal(d, a, shiftAmount(b, in.wb), in.width);
            break;
          case Op::Eq:
            d[0] = ucmp(a, b, in.wa) == 0;
            break;
          case Op::Ne:
            d[0] = ucmp(a, b, in.wa) != 0;
            break;
          case Op::Ult:
            d[0] = ucmp(a, b, in.wa) < 0;
            break;
          case Op::Ule:
            d[0] = ucmp(a, b, in.wa) <= 0;
            break;
          case Op::Slt:
            d[0] = scmp(a, b, in.wa) < 0;
            break;
          case Op::Sle:
            d[0] = scmp(a, b, in.wa) <= 0;
            break;
          case Op::Mux: {
            const uint64_t *src = (a[0] & 1) ? b : s + in.c;
            copyVal(d, src, n);
            break;
          }
          case Op::Concat: {
            // d = (a << wb) | b
            uint32_t nb = nw(in.wb);
            copyVal(d, b, nb);
            for (uint32_t i = nb; i < n; ++i)
                d[i] = 0;
            // OR in the high part shifted left by wb bits.
            uint32_t word_shift = in.wb >> 6;
            uint32_t bit_shift = in.wb & 63;
            uint32_t na = nw(in.wa);
            for (uint32_t i = 0; i < na; ++i) {
                uint32_t lo_idx = i + word_shift;
                if (lo_idx < n)
                    d[lo_idx] |= bit_shift ? (a[i] << bit_shift) : a[i];
                if (bit_shift && lo_idx + 1 < n)
                    d[lo_idx + 1] |= a[i] >> (64 - bit_shift);
            }
            normalize(d, in.width);
            break;
          }
          case Op::Slice: {
            // Logical right shift of a by aux, truncated to width.
            uint32_t word_shift = in.aux >> 6;
            uint32_t bit_shift = in.aux & 63;
            uint32_t na = nw(in.wa);
            for (uint32_t i = 0; i < n; ++i) {
                uint64_t lo = i + word_shift < na ? a[i + word_shift] : 0;
                uint64_t hi = (bit_shift && i + word_shift + 1 < na)
                    ? a[i + word_shift + 1] : 0;
                d[i] = bit_shift
                    ? (lo >> bit_shift) | (hi << (64 - bit_shift)) : lo;
            }
            normalize(d, in.width);
            break;
          }
          case Op::ZExt: {
            uint32_t na = nw(in.wa);
            copyVal(d, a, na);
            for (uint32_t i = na; i < n; ++i)
                d[i] = 0;
            break;
          }
          case Op::SExt: {
            uint32_t na = nw(in.wa);
            copyVal(d, a, na);
            bool sign = (a[(in.wa - 1) >> 6] >> ((in.wa - 1) & 63)) & 1;
            for (uint32_t i = na; i < n; ++i)
                d[i] = sign ? ~uint64_t{0} : 0;
            if (sign) {
                for (uint32_t bit = in.wa; bit < (na << 6) && bit < in.width;
                     ++bit)
                    d[bit >> 6] |= uint64_t{1} << (bit & 63);
            }
            normalize(d, in.width);
            break;
          }
          case Op::MemRead: {
            const ProgMem &pm = prog_.mems[in.aux];
            const LaneWords &img = mems_[in.aux];
            uint64_t addr = shiftAmount(a, in.wa); // saturating read
            if (addr < pm.depth)
                copyVal(d, img.data() + addr * pm.entryWords,
                        pm.entryWords);
            else
                zeroVal(d, pm.entryWords);
            break;
          }
          default:
            panic("execGeneric: unexpected op %s", evalOpName(in.op));
        }
    }
}

// -- Gang (lanes > 1) interpreter tier -----------------------------------
//
// The correctness fallback when no cgen kernel is attached: each
// instruction is executed once per lane by gathering that lane's
// word-strided operands into a scalar-layout staging buffer, running
// the unmodified scalar kernel on it, and scattering the destination
// back. Memory reads are handled directly against the strided image
// (the staging remap cannot carry a memory index). Bit-identical to a
// scalar EvalState per lane by construction — it runs the same kernels.

void
EvalState::evalCombGang()
{
    for (const EvalInstr &in : prog_.instrs)
        execGangInstr(in);
}

namespace {

/** saturatingWideRead over a lane-strided value. */
inline uint64_t
stridedSatRead(const uint64_t *p, uint32_t numWords, uint32_t stride)
{
    for (uint32_t i = 1; i < numWords; ++i)
        if (p[i * stride])
            return UINT64_MAX;
    return p[0];
}

} // namespace

void
EvalState::execGangInstr(const EvalInstr &in)
{
    const uint32_t L = lanes_;
    uint64_t *s = slots_.data();

    if (in.op == EvalOp::MemReadW) {
        const ProgMem &pm = prog_.mems[in.aux];
        const uint64_t *img = mems_[in.aux].data();
        uint64_t *d = s + uint64_t(in.dst) * L;
        const uint64_t *a = s + uint64_t(in.a) * L;
        for (uint32_t l = 0; l < L; ++l) {
            uint64_t addr = a[l];
            d[l] = addr < pm.depth ? img[addr * L + l] : 0;
        }
        return;
    }
    if (in.op == EvalOp::MemRead) {
        const ProgMem &pm = prog_.mems[in.aux];
        const uint64_t *img = mems_[in.aux].data();
        uint32_t ew = pm.entryWords;
        uint32_t na = nw(in.wa);
        for (uint32_t l = 0; l < L; ++l) {
            const uint64_t *a = s + uint64_t(in.a) * L + l;
            uint64_t addr = stridedSatRead(a, na, L);
            uint64_t *d = s + uint64_t(in.dst) * L + l;
            if (addr < pm.depth) {
                const uint64_t *e = img + (addr * ew) * L + l;
                for (uint32_t i = 0; i < ew; ++i)
                    d[i * L] = e[i * L];
            } else {
                for (uint32_t i = 0; i < ew; ++i)
                    d[i * L] = 0;
            }
        }
        return;
    }

    // Staging buffer in scalar layout: [a | b | c | aux | dst], one
    // kMaxWidth-sized region each (2.5 KiB on the stack).
    constexpr uint32_t NW = nw(kMaxWidth);
    uint64_t buf[5 * NW];
    EvalInstr t = in;
    t.a = 0;
    t.b = NW;
    t.c = 2 * NW;
    t.dst = 4 * NW;
    uint32_t ops[4];
    int arity = evalInstrOperands(in, ops);
    bool generic = isGenericEvalOp(in.op);
    if (!generic && arity == 4)
        t.aux = 3 * NW; // CmpMux 4th operand; otherwise aux is immediate
    uint32_t na = nw(in.wa ? in.wa : 1);
    uint32_t nb = nw(in.wb ? in.wb : 1);
    uint32_t nc = nw(in.width ? in.width : 1);
    uint32_t nd = nw(in.width ? in.width : 1);
    for (uint32_t l = 0; l < L; ++l) {
        const uint64_t *pa = s + uint64_t(in.a) * L + l;
        for (uint32_t i = 0; i < na; ++i)
            buf[i] = pa[i * L];
        if (arity >= 2) {
            const uint64_t *pb = s + uint64_t(in.b) * L + l;
            for (uint32_t i = 0; i < nb; ++i)
                buf[NW + i] = pb[i * L];
        }
        if (arity >= 3) {
            const uint64_t *pc = s + uint64_t(in.c) * L + l;
            for (uint32_t i = 0; i < nc; ++i)
                buf[2 * NW + i] = pc[i * L];
        }
        if (!generic && arity == 4)
            buf[3 * NW] = s[uint64_t(in.aux) * L + l];
        if (generic)
            execGeneric(t, buf);
        else
            execSpecial(t, buf);
        uint64_t *pd = s + uint64_t(in.dst) * L + l;
        for (uint32_t i = 0; i < nd; ++i)
            pd[i * L] = buf[4 * NW + i];
    }
}

void
EvalState::commitWritesGang()
{
    const uint32_t L = lanes_;
    uint64_t *s = slots_.data();
    for (const ProgWrite &w : prog_.writes) {
        const ProgMem &pm = prog_.mems[w.memIndex];
        uint64_t *img = mems_[w.memIndex].data();
        uint32_t na = nw(w.addrWidth ? w.addrWidth : 1);
        for (uint32_t l = 0; l < L; ++l) {
            if (!(s[uint64_t(w.en) * L + l] & 1))
                continue;
            uint64_t addr =
                stridedSatRead(s + uint64_t(w.addr) * L + l, na, L);
            if (addr >= pm.depth)
                continue;
            const uint64_t *dp = s + uint64_t(w.data) * L + l;
            uint64_t *ep = img + (addr * pm.entryWords) * L + l;
            for (uint32_t i = 0; i < pm.entryWords; ++i)
                ep[i * L] = dp[i * L];
        }
    }
}

void
EvalState::commitWrites()
{
    if (activity_) {
        commitWritesActive();
        return;
    }
    if (nativeCommit_) {
        nativeCommit_(slots_.data(), memPtrs_.data());
        return;
    }
    if (lanes_ > 1) {
        commitWritesGang();
        return;
    }
    uint64_t *s = slots_.data();
    for (const ProgWrite &w : prog_.writes) {
        if (!(s[w.en] & 1))
            continue;
        const ProgMem &pm = prog_.mems[w.memIndex];
        uint64_t addr = shiftAmount(s + w.addr, w.addrWidth);
        if (addr >= pm.depth)
            continue;
        copyVal(mems_[w.memIndex].data() + addr * pm.entryWords,
                s + w.data, pm.entryWords);
    }
}

void
EvalState::commitWritesActive()
{
    // The interpreted commit, instrumented: any write that actually
    // lands marks the groups reading that memory dirty. Runs in place
    // of the native commit kernel when activity is on — write ports
    // are few, so the seeding accuracy is worth the interpreted loop.
    const uint32_t L = lanes_;
    uint64_t *s = slots_.data();
    for (const ProgWrite &w : prog_.writes) {
        const ProgMem &pm = prog_.mems[w.memIndex];
        uint64_t *img = mems_[w.memIndex].data();
        uint32_t na = nw(w.addrWidth ? w.addrWidth : 1);
        bool wrote = false;
        for (uint32_t l = 0; l < L; ++l) {
            if (!(s[uint64_t(w.en) * L + l] & 1))
                continue;
            uint64_t addr =
                stridedSatRead(s + uint64_t(w.addr) * L + l, na, L);
            if (addr >= pm.depth)
                continue;
            const uint64_t *dp = s + uint64_t(w.data) * L + l;
            uint64_t *ep = img + (addr * pm.entryWords) * L + l;
            for (uint32_t i = 0; i < pm.entryWords; ++i)
                ep[i * L] = dp[i * L];
            wrote = true;
        }
        if (wrote)
            markMemReadersDirty(w.memIndex);
    }
}

void
EvalState::latchRegisters()
{
    if (activity_) {
        latchRegistersActive();
        return;
    }
    if (nativeLatch_) {
        nativeLatch_(slots_.data(), memPtrs_.data());
        return;
    }
    // Two phases (double buffering): a register's next-value slot may
    // alias another register's current-value slot (e.g. a swap), so
    // all next values are staged before any current value is written.
    // Lane-major layout keeps each register's words-across-lanes block
    // contiguous, so the gang case only scales the word counts by L.
    uint64_t *s = slots_.data();
    const uint64_t L = lanes_;
    scratch_.clear();
    for (const ProgReg &r : prog_.regs) {
        if (!r.owned || r.next == kNoSlot)
            continue;
        const uint64_t *p = s + uint64_t(r.next) * L;
        scratch_.insert(scratch_.end(), p, p + nw(r.width) * L);
    }
    size_t at = 0;
    for (const ProgReg &r : prog_.regs) {
        if (!r.owned || r.next == kNoSlot)
            continue;
        uint64_t n = nw(r.width) * L;
        std::memcpy(s + uint64_t(r.cur) * L, scratch_.data() + at,
                    n * sizeof(uint64_t));
        at += n;
    }
}

void
EvalState::latchRegistersActive()
{
    // The comb/seq split's sequential half: the latch itself stays
    // unconditional (every owned register is staged and written every
    // cycle), but each register's staged value is compared against its
    // current one, and only a real change marks the register's reader
    // groups dirty. The lane-major block covers all lanes at once, so
    // a gang group is live if any lane's register changed.
    if (nativeLatchAct_) {
        nativeLatchAct_(slots_.data(), dirty_.data());
        return;
    }
    uint64_t *s = slots_.data();
    const uint64_t L = lanes_;
    scratch_.clear();
    for (const ProgReg &r : prog_.regs) {
        if (!r.owned || r.next == kNoSlot)
            continue;
        const uint64_t *p = s + uint64_t(r.next) * L;
        scratch_.insert(scratch_.end(), p, p + nw(r.width) * L);
    }
    size_t at = 0;
    const uint32_t nregs = static_cast<uint32_t>(prog_.regs.size());
    for (uint32_t ri = 0; ri < nregs; ++ri) {
        const ProgReg &r = prog_.regs[ri];
        if (!r.owned || r.next == kNoSlot)
            continue;
        uint64_t n = nw(r.width) * L;
        uint64_t *cur = s + uint64_t(r.cur) * L;
        if (std::memcmp(cur, scratch_.data() + at,
                        n * sizeof(uint64_t)) != 0) {
            std::memcpy(cur, scratch_.data() + at,
                        n * sizeof(uint64_t));
            markRegReadersDirty(ri);
        }
        at += n;
    }
}

void
EvalState::step()
{
    evalComb();
    commitWrites();
    latchRegisters();
}

void
EvalState::save(std::ostream &out) const
{
    auto write_vec = [&](const uint64_t *p, uint64_t n) {
        out.write(reinterpret_cast<const char *>(&n), sizeof(n));
        out.write(reinterpret_cast<const char *>(p),
                  static_cast<std::streamsize>(n * 8));
    };
    write_vec(slots_.data(), slots_.size());
    uint64_t nmems = mems_.size();
    out.write(reinterpret_cast<const char *>(&nmems), sizeof(nmems));
    for (const auto &m : mems_)
        write_vec(m.data(), m.size());
}

void
EvalState::restore(std::istream &in)
{
    auto read_vec = [&](uint64_t *p, uint64_t size) {
        uint64_t n = 0;
        in.read(reinterpret_cast<char *>(&n), sizeof(n));
        if (!in || n != size)
            fatal("checkpoint mismatch: expected %llu words, got %llu",
                  static_cast<unsigned long long>(size),
                  static_cast<unsigned long long>(n));
        in.read(reinterpret_cast<char *>(p),
                static_cast<std::streamsize>(n * 8));
        if (!in)
            fatal("checkpoint truncated");
    };
    read_vec(slots_.data(), slots_.size());
    uint64_t nmems = 0;
    in.read(reinterpret_cast<char *>(&nmems), sizeof(nmems));
    if (!in || nmems != mems_.size())
        fatal("checkpoint mismatch: memory count");
    for (auto &m : mems_)
        read_vec(m.data(), m.size());
    refreshMemPtrs();
    markAllDirty();
}

} // namespace parendi::rtl
