#include "rtl/interp.hh"

#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace parendi::rtl {

Interpreter::Interpreter(Netlist netlist, const LowerOptions &lower,
                         uint32_t replicas)
    : nl(std::move(netlist))
{
    ProgramBuilder builder(nl);
    builder.addAll();
    prog = builder.build();
    lowerProgram(prog, lower);
    state = std::make_unique<EvalState>(prog, replicas);
    // Evaluate combinational logic once so outputs are observable
    // before the first clock edge.
    state->evalComb();
}

void
Interpreter::step(size_t n)
{
    if (profiler_) {
        stepProfiled(n);
        return;
    }
    for (size_t i = 0; i < n; ++i) {
        state->commitWrites();
        state->latchRegisters();
        state->evalComb();
        ++cycleCount;
    }
}

void
Interpreter::stepProfiled(size_t n)
{
    obs::SuperstepProfiler &prof = *profiler_;
    uint64_t instrs = prog.instrs.size();
    bool native = state->hasNativeEval();
    for (size_t i = 0; i < n; ++i) {
        prof.beginCycle();
        if (prof.sampling()) {
            uint64_t t0 = obs::tick();
            state->commitWrites();
            uint64_t t1 = obs::tick();
            prof.record(0, obs::Phase::Commit, t0, t1);
            state->latchRegisters();
            uint64_t t2 = obs::tick();
            prof.record(0, obs::Phase::Latch, t1, t2);
            state->evalComb();
            uint64_t t3 = obs::tick();
            prof.record(0, obs::Phase::Eval, t2, t3);
            // There is no exchange in a single-program engine; record
            // a zero-width interval so aggregation sees all four
            // superstep phases for this cycle.
            prof.record(0, obs::Phase::Exchange, t2, t2);
            prof.recordShardEval(0, t3 - t2);
        } else {
            state->commitWrites();
            state->latchRegisters();
            state->evalComb();
        }
        ctrInstrs_->add(instrs);
        if (native)
            ctrNative_->add(1);
        prof.endCycle();
        ++cycleCount;
    }
}

bool
Interpreter::enableProfiling(const obs::ProfileOptions &opt)
{
    if (profiler_)
        return true;
    profiler_ = std::make_unique<obs::SuperstepProfiler>(1, 1, opt);
    obs::Counters &c = profiler_->counters();
    ctrInstrs_ = &c.get(obs::kInstrsRetired);
    ctrNative_ = &c.get(obs::kNativeKernelInvocations);
    return true;
}

void
Interpreter::reset()
{
    state->reset();
    state->evalComb();
    cycleCount = 0;
}

void
Interpreter::poke(const std::string &input, const BitVec &value)
{
    PortId id = nl.findInput(input);
    if (id == nl.numInputs())
        fatal("no input port named %s", input.c_str());
    for (const ProgPort &p : prog.inputs) {
        if (p.port == id) {
            if (value.width() != p.width)
                fatal("poke %s: width %u != port width %u",
                      input.c_str(), value.width(), p.width);
            state->writeSlot(p.slot, value);
            // Re-evaluate so pokes are visible combinationally.
            state->evalComb();
            return;
        }
    }
    fatal("input port %s not in program", input.c_str());
}

void
Interpreter::poke(const std::string &input, uint64_t value)
{
    PortId id = nl.findInput(input);
    if (id == nl.numInputs())
        fatal("no input port named %s", input.c_str());
    poke(input, BitVec(nl.input(id).width, value));
}

void
Interpreter::save(std::ostream &out) const
{
    out.write(reinterpret_cast<const char *>(&cycleCount),
              sizeof(cycleCount));
    state->save(out);
}

void
Interpreter::restore(std::istream &in)
{
    in.read(reinterpret_cast<char *>(&cycleCount),
            sizeof(cycleCount));
    if (!in)
        fatal("checkpoint truncated");
    state->restore(in);
}

BitVec
Interpreter::peek(const std::string &output) const
{
    PortId id = nl.findOutput(output);
    if (id == nl.numOutputs())
        fatal("no output port named %s", output.c_str());
    for (const ProgPort &p : prog.outputs)
        if (p.port == id)
            return state->readSlot(p.slot, p.width);
    fatal("output port %s not in program", output.c_str());
}

BitVec
Interpreter::peekRegister(const std::string &reg) const
{
    RegId id = nl.findRegister(reg);
    if (id == nl.numRegisters())
        fatal("no register named %s", reg.c_str());
    for (const ProgReg &r : prog.regs)
        if (r.reg == id)
            return state->readSlot(r.cur, r.width);
    fatal("register %s not in program", reg.c_str());
}

void
Interpreter::peekInto(const std::string &output, BitVec &out) const
{
    PortId id = nl.findOutput(output);
    if (id == nl.numOutputs())
        fatal("no output port named %s", output.c_str());
    for (const ProgPort &p : prog.outputs) {
        if (p.port == id) {
            state->readSlotInto(p.slot, p.width, out);
            return;
        }
    }
    fatal("output port %s not in program", output.c_str());
}

void
Interpreter::peekRegisterInto(const std::string &reg, BitVec &out) const
{
    RegId id = nl.findRegister(reg);
    if (id == nl.numRegisters())
        fatal("no register named %s", reg.c_str());
    for (const ProgReg &r : prog.regs) {
        if (r.reg == id) {
            state->readSlotInto(r.cur, r.width, out);
            return;
        }
    }
    fatal("register %s not in program", reg.c_str());
}

BitVec
Interpreter::peekMemory(const std::string &mem, uint64_t index) const
{
    return peekMemoryLane(mem, index, 0);
}

void
Interpreter::pokeLane(const std::string &input, const BitVec &value,
                      uint32_t lane)
{
    if (lane >= state->lanes())
        fatal("pokeLane: lane %u out of range (replicas=%u)", lane,
              state->lanes());
    PortId id = nl.findInput(input);
    if (id == nl.numInputs())
        fatal("no input port named %s", input.c_str());
    for (const ProgPort &p : prog.inputs) {
        if (p.port == id) {
            if (value.width() != p.width)
                fatal("poke %s: width %u != port width %u",
                      input.c_str(), value.width(), p.width);
            state->writeSlotLane(p.slot, value, lane);
            state->evalComb();
            return;
        }
    }
    fatal("input port %s not in program", input.c_str());
}

void
Interpreter::pokeLane(const std::string &input, uint64_t value,
                      uint32_t lane)
{
    PortId id = nl.findInput(input);
    if (id == nl.numInputs())
        fatal("no input port named %s", input.c_str());
    pokeLane(input, BitVec(nl.input(id).width, value), lane);
}

BitVec
Interpreter::peekLane(const std::string &output, uint32_t lane) const
{
    if (lane >= state->lanes())
        fatal("peekLane: lane %u out of range (replicas=%u)", lane,
              state->lanes());
    PortId id = nl.findOutput(output);
    if (id == nl.numOutputs())
        fatal("no output port named %s", output.c_str());
    for (const ProgPort &p : prog.outputs)
        if (p.port == id)
            return state->readSlot(p.slot, p.width, lane);
    fatal("output port %s not in program", output.c_str());
}

BitVec
Interpreter::peekRegisterLane(const std::string &reg, uint32_t lane) const
{
    if (lane >= state->lanes())
        fatal("peekRegisterLane: lane %u out of range (replicas=%u)",
              lane, state->lanes());
    RegId id = nl.findRegister(reg);
    if (id == nl.numRegisters())
        fatal("no register named %s", reg.c_str());
    for (const ProgReg &r : prog.regs)
        if (r.reg == id)
            return state->readSlot(r.cur, r.width, lane);
    fatal("register %s not in program", reg.c_str());
}

BitVec
Interpreter::peekMemoryLane(const std::string &mem, uint64_t index,
                            uint32_t lane) const
{
    if (lane >= state->lanes())
        fatal("peekMemoryLane: lane %u out of range (replicas=%u)", lane,
              state->lanes());
    MemId id = nl.findMemory(mem);
    if (id == nl.numMemories())
        fatal("no memory named %s", mem.c_str());
    for (size_t i = 0; i < prog.mems.size(); ++i) {
        const ProgMem &pm = prog.mems[i];
        if (pm.mem != id)
            continue;
        if (index >= pm.depth)
            fatal("memory %s index %llu out of range", mem.c_str(),
                  static_cast<unsigned long long>(index));
        return state->readMemEntry(static_cast<uint32_t>(i), index,
                                   nl.mem(id).width, lane);
    }
    fatal("memory %s not in program", mem.c_str());
}

} // namespace parendi::rtl
