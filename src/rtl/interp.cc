#include "rtl/interp.hh"

#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace parendi::rtl {

Interpreter::Interpreter(Netlist netlist, const LowerOptions &lower,
                         uint32_t replicas)
    : nl(std::move(netlist))
{
    ProgramBuilder builder(nl);
    builder.addAll();
    prog = builder.build();
    lowerProgram(prog, lower);
    state = std::make_unique<EvalState>(prog, replicas);
    // Evaluate combinational logic once so outputs are observable
    // before the first clock edge.
    state->evalComb();
}

void
Interpreter::step(size_t n)
{
    if (profiler_) {
        stepProfiled(n);
        return;
    }
    for (size_t i = 0; i < n; ++i) {
        state->commitWrites();
        state->latchRegisters();
        state->evalComb();
        ++cycleCount;
    }
}

void
Interpreter::stepProfiled(size_t n)
{
    obs::SuperstepProfiler &prof = *profiler_;
    bool native = state->hasNativeEval();
    for (size_t i = 0; i < n; ++i) {
        prof.beginCycle();
        if (prof.sampling()) {
            uint64_t t0 = obs::tick();
            state->commitWrites();
            uint64_t t1 = obs::tick();
            prof.record(0, obs::Phase::Commit, t0, t1);
            state->latchRegisters();
            uint64_t t2 = obs::tick();
            prof.record(0, obs::Phase::Latch, t1, t2);
            state->evalComb();
            uint64_t t3 = obs::tick();
            prof.record(0, obs::Phase::Eval, t2, t3);
            // There is no exchange in a single-program engine; record
            // a zero-width interval so aggregation sees all four
            // superstep phases for this cycle.
            prof.record(0, obs::Phase::Exchange, t2, t2);
            prof.recordShardEval(0, t3 - t2);
        } else {
            state->commitWrites();
            state->latchRegisters();
            state->evalComb();
        }
        // Attribute only the work the eval actually did: with activity
        // guards on, skipped groups' instructions don't count.
        ctrInstrs_->add(state->lastEvalInstrs());
        if (uint32_t total = state->lastGroupsTotal()) {
            ctrGroupsTotal_->add(total);
            uint32_t run = state->lastGroupsRun();
            if (total > run)
                ctrGroupsSkipped_->add(total - run);
        }
        if (native)
            ctrNative_->add(1);
        prof.endCycle();
        ++cycleCount;
    }
}

bool
Interpreter::enableProfiling(const obs::ProfileOptions &opt)
{
    if (profiler_)
        return true;
    profiler_ = std::make_unique<obs::SuperstepProfiler>(1, 1, opt);
    obs::Counters &c = profiler_->counters();
    ctrInstrs_ = &c.get(obs::kInstrsRetired);
    ctrNative_ = &c.get(obs::kNativeKernelInvocations);
    ctrGroupsSkipped_ = &c.get(obs::kEvalGroupsSkipped);
    ctrGroupsTotal_ = &c.get(obs::kEvalGroupsTotal);
    return true;
}

void
Interpreter::reset()
{
    state->reset();
    state->evalComb();
    cycleCount = 0;
}

void
Interpreter::poke(const std::string &input, const BitVec &value)
{
    PortId id = nl.findInput(input);
    if (id == nl.numInputs())
        fatal("no input port named %s", input.c_str());
    for (const ProgPort &p : prog.inputs) {
        if (p.port == id) {
            if (value.width() != p.width)
                fatal("poke %s: width %u != port width %u",
                      input.c_str(), value.width(), p.width);
            state->writeSlot(p.slot, value);
            // Re-evaluate so pokes are visible combinationally.
            state->evalComb();
            return;
        }
    }
    fatal("input port %s not in program", input.c_str());
}

void
Interpreter::poke(const std::string &input, uint64_t value)
{
    PortId id = nl.findInput(input);
    if (id == nl.numInputs())
        fatal("no input port named %s", input.c_str());
    poke(input, BitVec(nl.input(id).width, value));
}

void
Interpreter::save(std::ostream &out) const
{
    out.write(reinterpret_cast<const char *>(&cycleCount),
              sizeof(cycleCount));
    state->save(out);
}

void
Interpreter::restore(std::istream &in)
{
    in.read(reinterpret_cast<char *>(&cycleCount),
            sizeof(cycleCount));
    if (!in)
        fatal("checkpoint truncated");
    state->restore(in);
}

bool
Interpreter::exportArch(core::ArchState &out) const
{
    uint32_t lanes = state->lanes();
    out.cycles = cycleCount;
    out.lanes = lanes;
    out.regs.assign(nl.numRegisters(), {});
    for (RegId r = 0; r < nl.numRegisters(); ++r)
        out.regs[r].assign(lanes, nl.reg(r).init);
    for (const ProgReg &pr : prog.regs)
        for (uint32_t l = 0; l < lanes; ++l)
            out.regs[pr.reg][l] = state->readSlot(pr.cur, pr.width, l);
    out.mems.assign(nl.numMemories(), {});
    for (MemId m = 0; m < nl.numMemories(); ++m)
        out.mems[m].assign(uint64_t(nl.mem(m).depth) * lanes,
                           BitVec(nl.mem(m).width));
    for (size_t i = 0; i < prog.mems.size(); ++i) {
        const ProgMem &pm = prog.mems[i];
        for (uint64_t e = 0; e < pm.depth; ++e)
            for (uint32_t l = 0; l < lanes; ++l)
                out.mems[pm.mem][e * lanes + l] = state->readMemEntry(
                    static_cast<uint32_t>(i), e, nl.mem(pm.mem).width,
                    l);
    }
    out.inputs.assign(nl.numInputs(), {});
    for (PortId p = 0; p < nl.numInputs(); ++p)
        out.inputs[p].assign(lanes, BitVec(nl.input(p).width));
    for (const ProgPort &pp : prog.inputs)
        for (uint32_t l = 0; l < lanes; ++l)
            out.inputs[pp.port][l] =
                state->readSlot(pp.slot, pp.width, l);
    return true;
}

bool
Interpreter::importArch(const core::ArchState &st)
{
    uint32_t lanes = state->lanes();
    if (st.lanes != lanes)
        fatal("importArch: state holds %u lanes, this engine runs %u",
              st.lanes, lanes);
    if (st.regs.size() != nl.numRegisters() ||
        st.mems.size() != nl.numMemories() ||
        st.inputs.size() != nl.numInputs())
        fatal("importArch: state shape does not match the design");
    for (const ProgReg &pr : prog.regs) {
        const auto &perLane = st.regs[pr.reg];
        if (perLane.size() != lanes)
            fatal("importArch: register %s lane count mismatch",
                  nl.reg(pr.reg).name.c_str());
        for (uint32_t l = 0; l < lanes; ++l) {
            if (perLane[l].width() != pr.width)
                fatal("importArch: register %s width mismatch",
                      nl.reg(pr.reg).name.c_str());
            state->writeSlotLane(pr.cur, perLane[l], l);
        }
    }
    for (size_t i = 0; i < prog.mems.size(); ++i) {
        const ProgMem &pm = prog.mems[i];
        const Memory &mem = nl.mem(pm.mem);
        const auto &entries = st.mems[pm.mem];
        if (entries.size() != uint64_t(mem.depth) * lanes)
            fatal("importArch: memory %s entry count mismatch",
                  mem.name.c_str());
        for (uint64_t e = 0; e < pm.depth; ++e) {
            for (uint32_t l = 0; l < lanes; ++l) {
                const BitVec &v = entries[e * lanes + l];
                if (v.width() != mem.width)
                    fatal("importArch: memory %s width mismatch",
                          mem.name.c_str());
                state->writeMemEntry(static_cast<uint32_t>(i), e, v, l);
            }
        }
    }
    for (const ProgPort &pp : prog.inputs) {
        const auto &perLane = st.inputs[pp.port];
        if (perLane.size() != lanes)
            fatal("importArch: input %s lane count mismatch",
                  nl.input(pp.port).name.c_str());
        for (uint32_t l = 0; l < lanes; ++l) {
            if (perLane[l].width() != pp.width)
                fatal("importArch: input %s width mismatch",
                      nl.input(pp.port).name.c_str());
            state->writeSlotLane(pp.slot, perLane[l], l);
        }
    }
    cycleCount = st.cycles;
    // Rebuild every combinational slot from the imported architectural
    // values; pending deferred writes and next-values are recomputed
    // exactly as in the exporting engine (the cycle order is
    // commit -> latch -> eval, so at-rest comb state is a pure function
    // of regs + mems + inputs).
    state->evalComb();
    return true;
}

BitVec
Interpreter::peek(const std::string &output) const
{
    PortId id = nl.findOutput(output);
    if (id == nl.numOutputs())
        fatal("no output port named %s", output.c_str());
    for (const ProgPort &p : prog.outputs)
        if (p.port == id)
            return state->readSlot(p.slot, p.width);
    fatal("output port %s not in program", output.c_str());
}

BitVec
Interpreter::peekRegister(const std::string &reg) const
{
    RegId id = nl.findRegister(reg);
    if (id == nl.numRegisters())
        fatal("no register named %s", reg.c_str());
    for (const ProgReg &r : prog.regs)
        if (r.reg == id)
            return state->readSlot(r.cur, r.width);
    fatal("register %s not in program", reg.c_str());
}

void
Interpreter::peekInto(const std::string &output, BitVec &out) const
{
    PortId id = nl.findOutput(output);
    if (id == nl.numOutputs())
        fatal("no output port named %s", output.c_str());
    for (const ProgPort &p : prog.outputs) {
        if (p.port == id) {
            state->readSlotInto(p.slot, p.width, out);
            return;
        }
    }
    fatal("output port %s not in program", output.c_str());
}

void
Interpreter::peekRegisterInto(const std::string &reg, BitVec &out) const
{
    RegId id = nl.findRegister(reg);
    if (id == nl.numRegisters())
        fatal("no register named %s", reg.c_str());
    for (const ProgReg &r : prog.regs) {
        if (r.reg == id) {
            state->readSlotInto(r.cur, r.width, out);
            return;
        }
    }
    fatal("register %s not in program", reg.c_str());
}

BitVec
Interpreter::peekMemory(const std::string &mem, uint64_t index) const
{
    return peekMemoryLane(mem, index, 0);
}

void
Interpreter::pokeLane(const std::string &input, const BitVec &value,
                      uint32_t lane)
{
    if (lane >= state->lanes())
        fatal("pokeLane: lane %u out of range (replicas=%u)", lane,
              state->lanes());
    PortId id = nl.findInput(input);
    if (id == nl.numInputs())
        fatal("no input port named %s", input.c_str());
    for (const ProgPort &p : prog.inputs) {
        if (p.port == id) {
            if (value.width() != p.width)
                fatal("poke %s: width %u != port width %u",
                      input.c_str(), value.width(), p.width);
            state->writeSlotLane(p.slot, value, lane);
            state->evalComb();
            return;
        }
    }
    fatal("input port %s not in program", input.c_str());
}

void
Interpreter::pokeLane(const std::string &input, uint64_t value,
                      uint32_t lane)
{
    PortId id = nl.findInput(input);
    if (id == nl.numInputs())
        fatal("no input port named %s", input.c_str());
    pokeLane(input, BitVec(nl.input(id).width, value), lane);
}

BitVec
Interpreter::peekLane(const std::string &output, uint32_t lane) const
{
    if (lane >= state->lanes())
        fatal("peekLane: lane %u out of range (replicas=%u)", lane,
              state->lanes());
    PortId id = nl.findOutput(output);
    if (id == nl.numOutputs())
        fatal("no output port named %s", output.c_str());
    for (const ProgPort &p : prog.outputs)
        if (p.port == id)
            return state->readSlot(p.slot, p.width, lane);
    fatal("output port %s not in program", output.c_str());
}

BitVec
Interpreter::peekRegisterLane(const std::string &reg, uint32_t lane) const
{
    if (lane >= state->lanes())
        fatal("peekRegisterLane: lane %u out of range (replicas=%u)",
              lane, state->lanes());
    RegId id = nl.findRegister(reg);
    if (id == nl.numRegisters())
        fatal("no register named %s", reg.c_str());
    for (const ProgReg &r : prog.regs)
        if (r.reg == id)
            return state->readSlot(r.cur, r.width, lane);
    fatal("register %s not in program", reg.c_str());
}

BitVec
Interpreter::peekMemoryLane(const std::string &mem, uint64_t index,
                            uint32_t lane) const
{
    if (lane >= state->lanes())
        fatal("peekMemoryLane: lane %u out of range (replicas=%u)", lane,
              state->lanes());
    MemId id = nl.findMemory(mem);
    if (id == nl.numMemories())
        fatal("no memory named %s", mem.c_str());
    for (size_t i = 0; i < prog.mems.size(); ++i) {
        const ProgMem &pm = prog.mems[i];
        if (pm.mem != id)
            continue;
        if (index >= pm.depth)
            fatal("memory %s index %llu out of range", mem.c_str(),
                  static_cast<unsigned long long>(index));
        return state->readMemEntry(static_cast<uint32_t>(i), index,
                                   nl.mem(id).width, lane);
    }
    fatal("memory %s not in program", mem.c_str());
}

} // namespace parendi::rtl
