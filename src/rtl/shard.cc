#include "rtl/shard.hh"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "util/bsp_pool.hh"
#include "util/logging.hh"

namespace parendi::rtl {

namespace {

/** saturatingWideReadBits over one lane of a lane-major value: word w
 *  of the value lives at p[w * stride]. */
uint64_t
stridedSatReadBits(const uint64_t *p, uint16_t widthBits,
                   uint64_t stride)
{
    const uint32_t numWords = wordsFor(widthBits);
    for (uint32_t w = 1; w < numWords; ++w)
        if (p[w * stride])
            return UINT64_MAX;
    return p[0];
}

} // namespace

ShardSet::ShardSet(const Netlist &nl,
                   const std::vector<std::vector<NodeId>> &nodeSets,
                   const LowerOptions &lower, uint32_t lanes)
    : nl_(&nl), lanes_(lanes ? lanes : 1)
{
    programs_.reserve(nodeSets.size());
    for (const std::vector<NodeId> &nodes : nodeSets) {
        ProgramBuilder builder(nl);
        for (NodeId id : nodes)
            builder.addNode(id);
        programs_.push_back(builder.build());
        lowerProgram(programs_.back(), lower);
    }
    // States are created only after programs_ stops growing: each
    // EvalState references its program at the final heap address.
    states_.reserve(programs_.size());
    for (const EvalProgram &prog : programs_)
        states_.push_back(std::make_unique<EvalState>(prog, lanes_));
    buildExchange();
}

void
ShardSet::buildExchange()
{
    const Netlist &nl = *nl_;
    uint32_t nshards = static_cast<uint32_t>(programs_.size());

    // Register homes: the shard whose program owns each register.
    regHome_.assign(nl.numRegisters(), {UINT32_MAX, 0});
    for (uint32_t si = 0; si < nshards; ++si)
        for (const ProgReg &r : programs_[si].regs)
            if (r.owned)
                regHome_[r.reg] = {si, r.cur};

    // Register messages: owner -> every shard holding a non-owned
    // copy. Iterating shards in ascending order groups the list by
    // reader shard, which is exactly the sharding the parallel
    // exchange phase needs.
    readerRanges_.assign(nshards, {0, 0});
    for (uint32_t si = 0; si < nshards; ++si) {
        readerRanges_[si].first =
            static_cast<uint32_t>(regMessages_.size());
        const std::vector<ProgReg> &regs = programs_[si].regs;
        for (uint32_t ri = 0; ri < regs.size(); ++ri) {
            const ProgReg &r = regs[ri];
            if (r.owned)
                continue;
            auto [owner, owner_slot] = regHome_[r.reg];
            if (owner == UINT32_MAX)
                panic("register %s has readers but no owner shard",
                      nl.reg(r.reg).name.c_str());
            RegMessage m;
            m.ownerShard = owner;
            m.ownerSlot = owner_slot;
            m.readerShard = si;
            m.readerSlot = r.cur;
            m.readerReg = ri;
            m.words = static_cast<uint16_t>(wordsFor(r.width));
            m.bytes = ((r.width + 31) / 32) * 4;
            regMessages_.push_back(m);
        }
        readerRanges_[si].second =
            static_cast<uint32_t>(regMessages_.size());
    }

    // Array write-port broadcasts, in netlist port order per memory.
    // First index the replicas of each memory.
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> replicas(
        nl.numMemories());
    for (uint32_t si = 0; si < nshards; ++si)
        for (uint32_t mi = 0; mi < programs_[si].mems.size(); ++mi)
            replicas[programs_[si].mems[mi].mem].emplace_back(si, mi);

    for (MemId m = 0; m < nl.numMemories(); ++m) {
        const Memory &mem = nl.mem(m);
        for (NodeId port : mem.writePorts) {
            // The shard owning this MemWrite sink: the one whose
            // program contains the sink node.
            uint32_t owner = UINT32_MAX;
            for (uint32_t si = 0; si < nshards; ++si) {
                if (programs_[si].slotOf.count(port)) {
                    owner = si;
                    break;
                }
            }
            if (owner == UINT32_MAX)
                panic("write port of %s not placed", mem.name.c_str());
            const Node &n = nl.node(port);
            PortBroadcast b;
            b.ownerShard = owner;
            b.addrSlot = programs_[owner].slotOf.at(n.operands[0]);
            b.addrWidth = nl.widthOf(n.operands[0]);
            b.dataSlot = programs_[owner].slotOf.at(n.operands[1]);
            b.enSlot = programs_[owner].slotOf.at(n.operands[2]);
            b.mem = m;
            b.entryWords = wordsFor(mem.width);
            b.depth = mem.depth;
            b.replicas = replicas[m];
            broadcasts_.push_back(std::move(b));
        }
    }

    // The commit phase's per-shard schedule: every (broadcast,
    // replica-on-this-shard) pair, in ascending broadcast (= global
    // port) order, so colliding ports commit deterministically no
    // matter how shards are distributed over workers.
    replicaPlan_.assign(nshards, {});
    for (uint32_t bi = 0; bi < broadcasts_.size(); ++bi)
        for (auto [shard, mi] : broadcasts_[bi].replicas)
            replicaPlan_[shard].emplace_back(bi, mi);

    // Publish-buffer layout for the fused superstep. Grouped by owner
    // shard (publishing is owner-computes); each shard's region is
    // padded to a cache line so concurrent publishers never share a
    // line. Register values are deduplicated per owner slot — N
    // readers of one register share one published copy.
    std::vector<std::vector<uint32_t>> msgsByOwner(nshards);
    for (uint32_t i = 0; i < regMessages_.size(); ++i)
        msgsByOwner[regMessages_[i].ownerShard].push_back(i);
    std::vector<std::vector<uint32_t>> portsByOwner(nshards);
    for (uint32_t bi = 0; bi < broadcasts_.size(); ++bi)
        portsByOwner[broadcasts_[bi].ownerShard].push_back(bi);

    constexpr uint32_t kLineWords = 8;  // 64B false-sharing pad
    uint32_t off = 0;
    pubRegRanges_.assign(nshards, {0, 0});
    pubPortsByShard_.assign(nshards, {});
    for (uint32_t si = 0; si < nshards; ++si) {
        off = (off + kLineWords - 1) / kLineWords * kLineWords;
        // cur slot -> (next slot, words) of this shard's owned regs.
        std::unordered_map<uint32_t, std::pair<uint32_t, uint16_t>>
            curToNext;
        for (const ProgReg &r : programs_[si].regs)
            if (r.owned)
                curToNext[r.cur] = {
                    r.next,
                    static_cast<uint16_t>(wordsFor(r.width))};
        std::unordered_map<uint32_t, uint32_t> pubOfOwnerSlot;
        pubRegRanges_[si].first =
            static_cast<uint32_t>(pubRegs_.size());
        for (uint32_t i : msgsByOwner[si]) {
            RegMessage &m = regMessages_[i];
            auto it = pubOfOwnerSlot.find(m.ownerSlot);
            if (it == pubOfOwnerSlot.end()) {
                auto [next, words] = curToNext.at(m.ownerSlot);
                if (next == kNoSlot)
                    panic("owned register without a next slot");
                PubReg pr;
                pr.nextSlot = next;
                pr.words = words;
                pr.offset = off;
                off += uint32_t(words) * lanes_;
                it = pubOfOwnerSlot.emplace(m.ownerSlot, pr.offset)
                         .first;
                pubRegs_.push_back(pr);
            }
            m.pubOffset = it->second;
        }
        pubRegRanges_[si].second =
            static_cast<uint32_t>(pubRegs_.size());
        for (uint32_t bi : portsByOwner[si]) {
            broadcasts_[bi].pubOffset = off;
            // Per-port record: lanes_ resolved addresses (one per
            // lane, kPubSkip where disabled/OOR) followed by the data
            // value's lane-major block, copied verbatim.
            off += (1 + broadcasts_[bi].entryWords) * lanes_;
        }
        pubPortsByShard_[si] = std::move(portsByOwner[si]);
    }
    pub_[0].assign(off, 0);
    pub_[1].assign(off, 0);

    // Port bindings.
    inputSlots_.assign(nl.numInputs(), {});
    for (uint32_t si = 0; si < nshards; ++si)
        for (const ProgPort &p : programs_[si].inputs)
            inputSlots_[p.port].emplace_back(si, p.slot);
    outputSlots_.assign(nl.numOutputs(), {UINT32_MAX, 0});
    for (uint32_t si = 0; si < nshards; ++si)
        for (const ProgPort &p : programs_[si].outputs)
            outputSlots_[p.port] = {si, p.slot};
}

// -- Telemetry -----------------------------------------------------------

void
ShardSet::setProfiler(obs::SuperstepProfiler *prof)
{
    prof_ = prof;
    if (!prof) {
        ctrInstrs_ = ctrExchWords_ = ctrNative_ = nullptr;
        ctrGroupsSkipped_ = ctrGroupsTotal_ = nullptr;
        return;
    }
    obs::Counters &c = prof->counters();
    ctrInstrs_ = &c.get(obs::kInstrsRetired);
    ctrExchWords_ = &c.get(obs::kExchangeWordsMoved);
    ctrNative_ = &c.get(obs::kNativeKernelInvocations);
    ctrGroupsSkipped_ = &c.get(obs::kEvalGroupsSkipped);
    ctrGroupsTotal_ = &c.get(obs::kEvalGroupsTotal);
}

bool
ShardSet::setActivity(bool on)
{
    if (on) {
        for (const EvalProgram &p : programs_) {
            if (!p.activity.built)
                return false;
        }
    }
    for (auto &st : states_)
        st->enableActivity(on);
    activity_ = on;
    return true;
}

void
ShardSet::profileCycleBegin()
{
    if (prof_)
        prof_->beginCycle();
}

void
ShardSet::profileCycleEnd()
{
    if (prof_)
        prof_->endCycle();
}

// -- BSP phases ----------------------------------------------------------

void
ShardSet::commitRange(size_t begin, size_t end)
{
    const uint64_t L = lanes_;
    uint64_t words = 0;
    for (size_t si = begin; si < end; ++si) {
        EvalState &mine = *states_[si];
        for (auto [bi, mi] : replicaPlan_[si]) {
            const PortBroadcast &b = broadcasts_[bi];
            const EvalState &owner = *states_[b.ownerShard];
            const uint64_t *en = owner.slotPtr(b.enSlot);
            const uint64_t *ap = owner.slotPtr(b.addrSlot);
            const uint64_t *dp = owner.slotPtr(b.dataSlot);
            uint64_t *img = mine.memImage(mi).data();
            bool wrote = false;
            for (uint64_t l = 0; l < L; ++l) {
                if (!(en[l] & 1))
                    continue;
                uint64_t addr =
                    stridedSatReadBits(ap + l, b.addrWidth, L);
                if (addr >= b.depth)
                    continue;
                for (uint32_t w = 0; w < b.entryWords; ++w)
                    img[(addr * b.entryWords + w) * L + l] =
                        dp[w * L + l];
                words += b.entryWords;
                wrote = true;
            }
            if (wrote)
                mine.markMemReadersDirty(mi);
        }
    }
    if (ctrExchWords_ && words)
        ctrExchWords_->add(words);
}

void
ShardSet::latchRange(size_t begin, size_t end)
{
    for (size_t si = begin; si < end; ++si)
        states_[si]->latchRegisters();
}

void
ShardSet::exchangeRange(size_t begin, size_t end)
{
    uint64_t words = 0;
    for (size_t si = begin; si < end; ++si) {
        auto [mb, me] = readerRanges_[si];
        for (uint32_t i = mb; i < me; ++i) {
            const RegMessage &m = regMessages_[i];
            // A value's words are one contiguous lane-major block, so
            // moving all lanes is the scalar memcpy scaled by lanes_.
            EvalState &reader = *states_[m.readerShard];
            uint64_t *dst = reader.slotPtr(m.readerSlot);
            const uint64_t *src =
                states_[m.ownerShard]->slotPtr(m.ownerSlot);
            const uint64_t bytes =
                uint64_t(m.words) * lanes_ * sizeof(uint64_t);
            if (activity_) {
                // Seed the reader's guards only on a real change (any
                // lane), and skip the copy when nothing moved.
                if (std::memcmp(dst, src, bytes) != 0) {
                    std::memcpy(dst, src, bytes);
                    reader.markRegReadersDirty(m.readerReg);
                }
            } else {
                std::memcpy(dst, src, bytes);
            }
            words += uint64_t(m.words) * lanes_;
        }
    }
    if (ctrExchWords_ && words)
        ctrExchWords_->add(words);
}

void
ShardSet::evalRange(size_t begin, size_t end)
{
    evalRangeImpl(begin, end, prof_ && prof_->sampling());
}

void
ShardSet::evalRangeImpl(size_t begin, size_t end, bool sampled)
{
    if (!prof_) {
        for (size_t si = begin; si < end; ++si)
            states_[si]->evalComb();
        return;
    }
    // Profiled: bump the work counters every cycle; on sampled cycles
    // additionally time each shard individually — that per-shard
    // distribution is the measured straggler histogram. Work is what
    // the eval actually executed (lastEvalInstrs), so activity-skipped
    // groups never inflate t_comp or leave a phantom residual.
    uint64_t instrs = 0;
    uint64_t native = 0;
    uint64_t groupsRun = 0;
    uint64_t groupsTotal = 0;
    for (size_t si = begin; si < end; ++si) {
        EvalState &st = *states_[si];
        if (sampled) {
            uint64_t t0 = obs::tick();
            st.evalComb();
            prof_->recordShardEval(si, obs::tick() - t0);
        } else {
            st.evalComb();
        }
        instrs += st.lastEvalInstrs();
        groupsRun += st.lastGroupsRun();
        groupsTotal += st.lastGroupsTotal();
        if (st.hasNativeEval())
            ++native;
    }
    if (instrs)
        ctrInstrs_->add(instrs);
    if (native)
        ctrNative_->add(native);
    if (ctrGroupsTotal_ && groupsTotal) {
        ctrGroupsTotal_->add(groupsTotal);
        if (groupsTotal > groupsRun)
            ctrGroupsSkipped_->add(groupsTotal - groupsRun);
    }
}

// -- Fused single-barrier superstep --------------------------------------

void
ShardSet::commitRangeFrom(size_t begin, size_t end, const uint64_t *rd)
{
    const uint64_t L = lanes_;
    uint64_t words = 0;
    for (size_t si = begin; si < end; ++si) {
        EvalState &mine = *states_[si];
        for (auto [bi, mi] : replicaPlan_[si]) {
            const PortBroadcast &b = broadcasts_[bi];
            const uint64_t *rec = rd + b.pubOffset;
            const uint64_t *data = rec + L;
            uint64_t *img = mine.memImage(mi).data();
            bool wrote = false;
            for (uint64_t l = 0; l < L; ++l) {
                uint64_t addr = rec[l];
                if (addr == kPubSkip)
                    continue;
                // The data block keeps the state's lane-major layout,
                // so the per-lane copy has the same stride both sides.
                for (uint32_t w = 0; w < b.entryWords; ++w)
                    img[(addr * b.entryWords + w) * L + l] =
                        data[w * L + l];
                words += b.entryWords;
                wrote = true;
            }
            if (wrote)
                mine.markMemReadersDirty(mi);
        }
    }
    if (ctrExchWords_ && words)
        ctrExchWords_->add(words);
}

void
ShardSet::exchangeRangeFrom(size_t begin, size_t end,
                            const uint64_t *rd)
{
    uint64_t words = 0;
    for (size_t si = begin; si < end; ++si) {
        auto [mb, me] = readerRanges_[si];
        for (uint32_t i = mb; i < me; ++i) {
            const RegMessage &m = regMessages_[i];
            EvalState &reader = *states_[m.readerShard];
            uint64_t *dst = reader.slotPtr(m.readerSlot);
            const uint64_t *src = rd + m.pubOffset;
            const uint64_t bytes =
                uint64_t(m.words) * lanes_ * sizeof(uint64_t);
            if (activity_) {
                if (std::memcmp(dst, src, bytes) != 0) {
                    std::memcpy(dst, src, bytes);
                    reader.markRegReadersDirty(m.readerReg);
                }
            } else {
                std::memcpy(dst, src, bytes);
            }
            words += uint64_t(m.words) * lanes_;
        }
    }
    if (ctrExchWords_ && words)
        ctrExchWords_->add(words);
}

void
ShardSet::publishRange(size_t begin, size_t end, uint64_t *wr)
{
    const uint64_t L = lanes_;
    for (size_t si = begin; si < end; ++si) {
        const EvalState &st = *states_[si];
        auto [rb, re] = pubRegRanges_[si];
        for (uint32_t i = rb; i < re; ++i) {
            const PubReg &pr = pubRegs_[i];
            std::memcpy(wr + pr.offset, st.slotPtr(pr.nextSlot),
                        uint64_t(pr.words) * L * sizeof(uint64_t));
        }
        for (uint32_t bi : pubPortsByShard_[si]) {
            const PortBroadcast &b = broadcasts_[bi];
            uint64_t *rec = wr + b.pubOffset;
            const uint64_t *en = st.slotPtr(b.enSlot);
            const uint64_t *ap = st.slotPtr(b.addrSlot);
            bool any = false;
            for (uint64_t l = 0; l < L; ++l) {
                if (!(en[l] & 1)) {
                    rec[l] = kPubSkip;
                    continue;
                }
                uint64_t addr =
                    stridedSatReadBits(ap + l, b.addrWidth, L);
                if (addr >= b.depth) {
                    rec[l] = kPubSkip;
                    continue;
                }
                rec[l] = addr;
                any = true;
            }
            if (any)
                std::memcpy(rec + L, st.slotPtr(b.dataSlot),
                            b.entryWords * L * sizeof(uint64_t));
        }
    }
}

void
ShardSet::publishAll()
{
    publishRange(0, size(), pub_[pubRead_].data());
}

void
ShardSet::fusedCycleRange(size_t begin, size_t end, uint32_t worker,
                          bool sampled, uint64_t cycle,
                          uint32_t parity)
{
    const uint64_t *rd = pub_[parity].data();
    uint64_t *wr = pub_[parity ^ 1].data();
    if (!sampled) {
        commitRangeFrom(begin, end, rd);
        latchRange(begin, end);
        exchangeRangeFrom(begin, end, rd);
        evalRangeImpl(begin, end, false);
        publishRange(begin, end, wr);
        return;
    }
    // Sampled cycle: timestamp each sub-phase so the fused path still
    // yields the full t_comp/t_comm/t_sync decomposition. The cycle
    // number is passed explicitly — inside a batch, workers other
    // than 0 must not read the profiler's cycle state.
    uint64_t t0 = obs::tick(), t1;
    commitRangeFrom(begin, end, rd);
    t1 = obs::tick();
    prof_->record(worker, obs::Phase::Commit, t0, t1, cycle);
    t0 = t1;
    latchRange(begin, end);
    t1 = obs::tick();
    prof_->record(worker, obs::Phase::Latch, t0, t1, cycle);
    t0 = t1;
    exchangeRangeFrom(begin, end, rd);
    t1 = obs::tick();
    prof_->record(worker, obs::Phase::Exchange, t0, t1, cycle);
    t0 = t1;
    evalRangeImpl(begin, end, true);
    t1 = obs::tick();
    prof_->record(worker, obs::Phase::Eval, t0, t1, cycle);
    t0 = t1;
    publishRange(begin, end, wr);
    t1 = obs::tick();
    prof_->record(worker, obs::Phase::Publish, t0, t1, cycle);
}

void
ShardSet::setFused(bool on)
{
    if (fused_ != on)
        pubValid_ = false;
    fused_ = on;
}

void
ShardSet::stepCycles(util::BspPool *pool, uint64_t n)
{
    if (!fused_) {
        for (uint64_t i = 0; i < n; ++i)
            stepCycle(pool);
        return;
    }
    if (n == 0)
        return;
    const uint32_t nw =
        pool && size() > 1 ? pool->threads() : 1;
    if (nw <= 1) {
        // Single worker: fusion only removes barriers, and there are
        // none — the phased in-place cycle (direct owner-slot
        // exchange, no publish copy-out) is strictly cheaper than the
        // fused bodies, so use it. stepCycle invalidates pubValid_,
        // keeping a later multi-worker fused batch coherent.
        for (uint64_t i = 0; i < n; ++i)
            stepCycle(pool);
        return;
    }
    if (!pubValid_) {
        publishAll();
        pubValid_ = true;
    }
    if (!inner_ || inner_->parties() != nw)
        inner_ = std::make_unique<util::SpinBarrier>(nw);

    // One pool dispatch for the whole batch: each worker runs its
    // statically assigned shard range through all n cycles, with the
    // in-dispatch SpinBarrier as the single synchronization point per
    // cycle. The barrier both orders the publish-buffer flip (cycle
    // c+1 writes the buffer cycle c read) and separates cycles, so
    // no other fence is needed.
    const uint64_t baseCycle = prof_ ? prof_->cyclesSeen() : 0;
    const uint64_t every = prof_ ? prof_->options().sampleEvery : 0;
    const size_t nshards = size();
    const size_t chunk = (nshards + nw - 1) / nw;
    const uint32_t basePar = pubRead_;
    obs::SuperstepProfiler *prof = prof_;
    util::SpinBarrier *bar = inner_.get();
    pool->run([=, this](uint32_t w) {
        const size_t b = std::min(nshards, w * chunk);
        const size_t e = std::min(nshards, b + chunk);
        for (uint64_t c = 0; c < n; ++c) {
            // Workers decide "is this cycle sampled" locally from the
            // batch base — the profiler's own cycle counter is worker
            // 0's to mutate.
            const uint64_t cyc = baseCycle + c;
            const bool sampled =
                prof && (every <= 1 || cyc % every == 0);
            if (w == 0)
                profileCycleBegin();
            if (b < e)
                fusedCycleRange(b, e, w, sampled, cyc,
                                (basePar + static_cast<uint32_t>(c)) &
                                    1u);
            const uint64_t t0 = sampled ? obs::tick() : 0;
            bar->arriveAndWait();
            if (sampled) {
                const uint64_t t1 = obs::tick();
                prof->recordBarrierWait(w, t0, t1, cyc);
                // Close the adaptive loop: measured inter-arrival
                // times retune the barrier's spin budget.
                bar->observeWaitNs(static_cast<uint64_t>(
                    obs::ticksToSeconds(t1 - t0) * 1e9));
            }
            if (w == 0)
                profileCycleEnd();
        }
    });
    pubRead_ = (pubRead_ + static_cast<uint32_t>(n & 1)) & 1u;
}

void
ShardSet::runPhase(util::BspPool *pool, obs::Phase phase,
                   void (ShardSet::*body)(size_t, size_t))
{
    const bool sampled = prof_ && prof_->sampling();
    if (!pool) {
        if (sampled) {
            uint64_t t0 = obs::tick();
            (this->*body)(0, size());
            prof_->record(0, phase, t0, obs::tick());
        } else {
            (this->*body)(0, size());
        }
        return;
    }
    if (sampled) {
        pool->forEach(
            size(),
            [this, phase, body](uint32_t w, size_t b, size_t e) {
                uint64_t t0 = obs::tick();
                (this->*body)(b, e);
                prof_->record(w, phase, t0, obs::tick());
            });
    } else {
        pool->forEach(size(), [this, body](size_t b, size_t e) {
            (this->*body)(b, e);
        });
    }
}

void
ShardSet::commitBroadcasts(util::BspPool *pool)
{
    runPhase(pool, obs::Phase::Commit, &ShardSet::commitRange);
}

void
ShardSet::latchRegisters(util::BspPool *pool)
{
    runPhase(pool, obs::Phase::Latch, &ShardSet::latchRange);
}

void
ShardSet::exchangeRegisters(util::BspPool *pool)
{
    runPhase(pool, obs::Phase::Exchange, &ShardSet::exchangeRange);
}

void
ShardSet::evalAll(util::BspPool *pool)
{
    runPhase(pool, obs::Phase::Eval, &ShardSet::evalRange);
}

void
ShardSet::stepCycle(util::BspPool *pool)
{
    // Four supersteps realize the two BSP barriers of the machine
    // model on the host: commit must finish before the latch may
    // overwrite cur slots a write port reads from (a port's data
    // operand can be a RegRead), the exchange reads owner cur slots
    // the latch writes, and evaluation reads exchanged values.
    profileCycleBegin();
    commitBroadcasts(pool);
    latchRegisters(pool);
    exchangeRegisters(pool);
    evalAll(pool);
    profileCycleEnd();
    // Phased stepping advances state without publishing; a later
    // fused batch must republish from live slots.
    pubValid_ = false;
}

void
ShardSet::reset(util::BspPool *pool)
{
    for (auto &st : states_)
        st->reset();
    evalAll(pool);
    pubValid_ = false;
}

// -- Name-based host access ----------------------------------------------

void
ShardSet::poke(const std::string &input, const BitVec &value)
{
    PortId id = nl_->findInput(input);
    if (id == nl_->numInputs())
        fatal("no input port named %s", input.c_str());
    if (value.width() != nl_->input(id).width)
        fatal("poke %s: width mismatch", input.c_str());
    for (auto [shard, slot] : inputSlots_[id]) {
        states_[shard]->writeSlot(slot, value);
        states_[shard]->evalComb();
    }
    pubValid_ = false;
}

void
ShardSet::poke(const std::string &input, uint64_t value)
{
    PortId id = nl_->findInput(input);
    if (id == nl_->numInputs())
        fatal("no input port named %s", input.c_str());
    poke(input, BitVec(nl_->input(id).width, value));
}

BitVec
ShardSet::peek(const std::string &output) const
{
    PortId id = nl_->findOutput(output);
    if (id == nl_->numOutputs())
        fatal("no output port named %s", output.c_str());
    auto [shard, slot] = outputSlots_[id];
    if (shard == UINT32_MAX)
        fatal("output %s not placed", output.c_str());
    return states_[shard]->readSlot(slot, nl_->output(id).width);
}

BitVec
ShardSet::peekRegister(const std::string &reg) const
{
    RegId id = nl_->findRegister(reg);
    if (id == nl_->numRegisters())
        fatal("no register named %s", reg.c_str());
    auto [shard, slot] = regHome_[id];
    if (shard == UINT32_MAX)
        fatal("register %s not placed", reg.c_str());
    return states_[shard]->readSlot(slot, nl_->reg(id).width);
}

void
ShardSet::peekInto(const std::string &output, BitVec &out) const
{
    PortId id = nl_->findOutput(output);
    if (id == nl_->numOutputs())
        fatal("no output port named %s", output.c_str());
    auto [shard, slot] = outputSlots_[id];
    if (shard == UINT32_MAX)
        fatal("output %s not placed", output.c_str());
    states_[shard]->readSlotInto(slot, nl_->output(id).width, out);
}

void
ShardSet::peekRegisterInto(const std::string &reg, BitVec &out) const
{
    RegId id = nl_->findRegister(reg);
    if (id == nl_->numRegisters())
        fatal("no register named %s", reg.c_str());
    auto [shard, slot] = regHome_[id];
    if (shard == UINT32_MAX)
        fatal("register %s not placed", reg.c_str());
    states_[shard]->readSlotInto(slot, nl_->reg(id).width, out);
}

BitVec
ShardSet::peekMemory(const std::string &mem, uint64_t index) const
{
    return peekMemoryLane(mem, index, 0);
}

void
ShardSet::pokeLane(const std::string &input, const BitVec &value,
                   uint32_t lane)
{
    if (lane >= lanes_)
        fatal("pokeLane: lane %u out of range (replicas=%u)", lane,
              lanes_);
    PortId id = nl_->findInput(input);
    if (id == nl_->numInputs())
        fatal("no input port named %s", input.c_str());
    if (value.width() != nl_->input(id).width)
        fatal("poke %s: width mismatch", input.c_str());
    for (auto [shard, slot] : inputSlots_[id]) {
        states_[shard]->writeSlotLane(slot, value, lane);
        states_[shard]->evalComb();
    }
    pubValid_ = false;
}

BitVec
ShardSet::peekLane(const std::string &output, uint32_t lane) const
{
    if (lane >= lanes_)
        fatal("peekLane: lane %u out of range (replicas=%u)", lane,
              lanes_);
    PortId id = nl_->findOutput(output);
    if (id == nl_->numOutputs())
        fatal("no output port named %s", output.c_str());
    auto [shard, slot] = outputSlots_[id];
    if (shard == UINT32_MAX)
        fatal("output %s not placed", output.c_str());
    return states_[shard]->readSlot(slot, nl_->output(id).width, lane);
}

BitVec
ShardSet::peekRegisterLane(const std::string &reg, uint32_t lane) const
{
    if (lane >= lanes_)
        fatal("peekRegisterLane: lane %u out of range (replicas=%u)",
              lane, lanes_);
    RegId id = nl_->findRegister(reg);
    if (id == nl_->numRegisters())
        fatal("no register named %s", reg.c_str());
    auto [shard, slot] = regHome_[id];
    if (shard == UINT32_MAX)
        fatal("register %s not placed", reg.c_str());
    return states_[shard]->readSlot(slot, nl_->reg(id).width, lane);
}

BitVec
ShardSet::peekMemoryLane(const std::string &mem, uint64_t index,
                         uint32_t lane) const
{
    if (lane >= lanes_)
        fatal("peekMemoryLane: lane %u out of range (replicas=%u)",
              lane, lanes_);
    MemId id = nl_->findMemory(mem);
    if (id == nl_->numMemories())
        fatal("no memory named %s", mem.c_str());
    for (size_t si = 0; si < programs_.size(); ++si) {
        const EvalProgram &prog = programs_[si];
        for (uint32_t mi = 0; mi < prog.mems.size(); ++mi) {
            const ProgMem &pm = prog.mems[mi];
            if (pm.mem != id)
                continue;
            if (index >= pm.depth)
                fatal("memory %s index %llu out of range", mem.c_str(),
                      static_cast<unsigned long long>(index));
            return states_[si]->readMemEntry(mi, index,
                                             nl_->mem(id).width, lane);
        }
    }
    fatal("memory %s not placed on any shard", mem.c_str());
}

void
ShardSet::save(std::ostream &out) const
{
    uint64_t nshards = states_.size();
    out.write(reinterpret_cast<const char *>(&nshards),
              sizeof(nshards));
    for (const auto &st : states_)
        st->save(out);
}

void
ShardSet::restore(std::istream &in)
{
    uint64_t nshards = 0;
    in.read(reinterpret_cast<char *>(&nshards), sizeof(nshards));
    if (!in || nshards != states_.size())
        fatal("checkpoint mismatch: shard count");
    for (auto &st : states_)
        st->restore(in);
    pubValid_ = false;
}

void
ShardSet::exportArch(core::ArchState &st) const
{
    st.lanes = lanes_;
    st.regs.assign(nl_->numRegisters(), {});
    for (RegId r = 0; r < nl_->numRegisters(); ++r) {
        auto [shard, slot] = regHome_[r];
        auto &perLane = st.regs[r];
        perLane.resize(lanes_);
        for (uint32_t l = 0; l < lanes_; ++l)
            perLane[l] = shard == UINT32_MAX
                ? nl_->reg(r).init
                : states_[shard]->readSlot(slot, nl_->reg(r).width, l);
    }
    st.mems.assign(nl_->numMemories(), {});
    for (MemId m = 0; m < nl_->numMemories(); ++m) {
        const Memory &mem = nl_->mem(m);
        auto &entries = st.mems[m];
        entries.assign(uint64_t(mem.depth) * lanes_, BitVec(mem.width));
        // A placed memory: read any replica (the exchange keeps them
        // identical). Unplaced: the initial image is the live value.
        bool placed = false;
        for (size_t si = 0; si < programs_.size() && !placed; ++si) {
            for (uint32_t mi = 0; mi < programs_[si].mems.size(); ++mi) {
                if (programs_[si].mems[mi].mem != m)
                    continue;
                for (uint64_t e = 0; e < mem.depth; ++e)
                    for (uint32_t l = 0; l < lanes_; ++l)
                        entries[e * lanes_ + l] =
                            states_[si]->readMemEntry(
                                static_cast<uint32_t>(mi), e,
                                mem.width, l);
                placed = true;
                break;
            }
        }
        if (!placed)
            for (uint64_t e = 0;
                 e < mem.init.size() && e < mem.depth; ++e)
                for (uint32_t l = 0; l < lanes_; ++l)
                    entries[e * lanes_ + l] = mem.init[e];
    }
    st.inputs.assign(nl_->numInputs(), {});
    for (PortId p = 0; p < nl_->numInputs(); ++p) {
        auto &perLane = st.inputs[p];
        perLane.resize(lanes_);
        for (uint32_t l = 0; l < lanes_; ++l)
            perLane[l] = inputSlots_[p].empty()
                ? BitVec(nl_->input(p).width)
                : states_[inputSlots_[p][0].first]->readSlot(
                      inputSlots_[p][0].second, nl_->input(p).width,
                      l);
    }
}

void
ShardSet::importArch(const core::ArchState &st)
{
    if (st.lanes != lanes_)
        fatal("importArch: state holds %u lanes, this engine runs %u",
              st.lanes, lanes_);
    if (st.regs.size() != nl_->numRegisters() ||
        st.mems.size() != nl_->numMemories() ||
        st.inputs.size() != nl_->numInputs())
        fatal("importArch: state shape does not match the design");

    for (RegId r = 0; r < nl_->numRegisters(); ++r) {
        auto [shard, slot] = regHome_[r];
        const auto &perLane = st.regs[r];
        if (perLane.size() != lanes_)
            fatal("importArch: register %s lane count mismatch",
                  nl_->reg(r).name.c_str());
        if (shard == UINT32_MAX)
            continue;
        for (uint32_t l = 0; l < lanes_; ++l) {
            if (perLane[l].width() != nl_->reg(r).width)
                fatal("importArch: register %s width mismatch",
                      nl_->reg(r).name.c_str());
            states_[shard]->writeSlotLane(slot, perLane[l], l);
        }
    }

    for (size_t si = 0; si < programs_.size(); ++si) {
        for (uint32_t mi = 0; mi < programs_[si].mems.size(); ++mi) {
            const ProgMem &pm = programs_[si].mems[mi];
            const Memory &mem = nl_->mem(pm.mem);
            const auto &entries = st.mems[pm.mem];
            if (entries.size() != uint64_t(mem.depth) * lanes_)
                fatal("importArch: memory %s entry count mismatch",
                      mem.name.c_str());
            for (uint64_t e = 0; e < pm.depth; ++e) {
                for (uint32_t l = 0; l < lanes_; ++l) {
                    const BitVec &v = entries[e * lanes_ + l];
                    if (v.width() != mem.width)
                        fatal("importArch: memory %s width mismatch",
                              mem.name.c_str());
                    states_[si]->writeMemEntry(mi, e, v, l);
                }
            }
        }
    }

    for (PortId p = 0; p < nl_->numInputs(); ++p) {
        const auto &perLane = st.inputs[p];
        if (perLane.size() != lanes_)
            fatal("importArch: input %s lane count mismatch",
                  nl_->input(p).name.c_str());
        for (auto [shard, slot] : inputSlots_[p]) {
            for (uint32_t l = 0; l < lanes_; ++l) {
                if (perLane[l].width() != nl_->input(p).width)
                    fatal("importArch: input %s width mismatch",
                          nl_->input(p).name.c_str());
                states_[shard]->writeSlotLane(slot, perLane[l], l);
            }
        }
    }

    // Propagate owner register values into reader copies and rebuild
    // every combinational slot from the imported architectural state;
    // the next cycle's commit/latch then recompute deferred writes and
    // next values exactly as the exporting engine would have.
    exchangeRegisters(nullptr);
    evalAll(nullptr);
    pubValid_ = false;
}

} // namespace parendi::rtl
