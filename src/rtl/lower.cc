/**
 * @file
 * The EvalProgram lowering stage: width-class specialization (generic
 * multi-word instructions whose result fits one 64-bit word are
 * rewritten into the W tier) and a peephole pass that fuses common
 * producer/consumer pairs into superinstructions:
 *
 *  - compare -> mux select        => CmpMuxW (4-operand select)
 *  - 1-bit not -> mux select      => mux with swapped arms
 *  - not -> and/or/xor operand    => AndNotW / OrNotW / XorNotW
 *  - op -> slice(lsb=0)           => the op recomputed at the slice
 *    width (legal for truncation-stable ops: add, sub, mul, bitwise,
 *    not, neg — the low bits never depend on the discarded high bits)
 *
 * Fusion only fires when the producer's destination slot has exactly
 * one consumer and is not externally observable (register slots,
 * memory write-port operands, port bindings). The slot layout is left
 * untouched, so a lowered program remains interchangeable with the
 * generic one for checkpointing and host cross-referencing.
 */

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "rtl/eval.hh"
#include "util/logging.hh"

namespace parendi::rtl {

namespace {

/** CmpMuxW opcode for a generic comparison feeding a mux select. */
EvalOp
cmpMuxFor(EvalOp cmp)
{
    switch (cmp) {
      case EvalOp::Eq: return EvalOp::EqMuxW;
      case EvalOp::Ne: return EvalOp::NeMuxW;
      case EvalOp::Ult: return EvalOp::UltMuxW;
      case EvalOp::Ule: return EvalOp::UleMuxW;
      case EvalOp::Slt: return EvalOp::SltMuxW;
      case EvalOp::Sle: return EvalOp::SleMuxW;
      default: return EvalOp::NumEvalOps;
    }
}

/** OpNotW opcode for a generic bitwise op with an inverted operand. */
EvalOp
opNotFor(EvalOp op)
{
    switch (op) {
      case EvalOp::And: return EvalOp::AndNotW;
      case EvalOp::Or: return EvalOp::OrNotW;
      case EvalOp::Xor: return EvalOp::XorNotW;
      default: return EvalOp::NumEvalOps;
    }
}

/** W-tier opcode for a truncation-stable op feeding a slice(lsb=0). */
EvalOp
truncWFor(EvalOp op)
{
    switch (op) {
      case EvalOp::Add: return EvalOp::AddW;
      case EvalOp::Sub: return EvalOp::SubW;
      case EvalOp::Mul: return EvalOp::MulW;
      case EvalOp::And: return EvalOp::AndW;
      case EvalOp::Or: return EvalOp::OrW;
      case EvalOp::Xor: return EvalOp::XorW;
      case EvalOp::Not: return EvalOp::NotW;
      case EvalOp::Neg: return EvalOp::NegW;
      default: return EvalOp::NumEvalOps;
    }
}

/** Specialized opcode for a generic instruction, or NumEvalOps if the
 *  instruction must stay on the multi-word path. */
EvalOp
specializedFor(const EvalProgram &prog, const EvalInstr &in)
{
    bool w64 = in.width <= 64;
    bool a64 = in.wa <= 64;
    bool b64 = in.wb <= 64;
    switch (in.op) {
      case EvalOp::Not: return w64 ? EvalOp::NotW : EvalOp::NumEvalOps;
      case EvalOp::Neg: return w64 ? EvalOp::NegW : EvalOp::NumEvalOps;
      case EvalOp::RedAnd:
        return a64 ? EvalOp::RedAndW : EvalOp::NumEvalOps;
      case EvalOp::RedOr:
        return a64 ? EvalOp::RedOrW : EvalOp::NumEvalOps;
      case EvalOp::RedXor:
        return a64 ? EvalOp::RedXorW : EvalOp::NumEvalOps;
      case EvalOp::And: return w64 ? EvalOp::AndW : EvalOp::NumEvalOps;
      case EvalOp::Or: return w64 ? EvalOp::OrW : EvalOp::NumEvalOps;
      case EvalOp::Xor: return w64 ? EvalOp::XorW : EvalOp::NumEvalOps;
      case EvalOp::Add: return w64 ? EvalOp::AddW : EvalOp::NumEvalOps;
      case EvalOp::Sub: return w64 ? EvalOp::SubW : EvalOp::NumEvalOps;
      case EvalOp::Mul: return w64 ? EvalOp::MulW : EvalOp::NumEvalOps;
      case EvalOp::Shl:
        return w64 && b64 ? EvalOp::ShlW : EvalOp::NumEvalOps;
      case EvalOp::Shr:
        return w64 && b64 ? EvalOp::ShrW : EvalOp::NumEvalOps;
      case EvalOp::Sra:
        return w64 && b64 ? EvalOp::SraW : EvalOp::NumEvalOps;
      case EvalOp::Eq:
        return a64 ? EvalOp::EqW : EvalOp::NumEvalOps;
      case EvalOp::Ne:
        return a64 ? EvalOp::NeW : EvalOp::NumEvalOps;
      case EvalOp::Ult:
        return a64 ? EvalOp::UltW : EvalOp::NumEvalOps;
      case EvalOp::Ule:
        return a64 ? EvalOp::UleW : EvalOp::NumEvalOps;
      case EvalOp::Slt:
        return a64 ? EvalOp::SltW : EvalOp::NumEvalOps;
      case EvalOp::Sle:
        return a64 ? EvalOp::SleW : EvalOp::NumEvalOps;
      case EvalOp::Mux: return w64 ? EvalOp::MuxW : EvalOp::NumEvalOps;
      case EvalOp::Concat:
        return w64 ? EvalOp::ConcatW : EvalOp::NumEvalOps;
      case EvalOp::Slice:
        return w64 ? EvalOp::SliceW : EvalOp::NumEvalOps;
      case EvalOp::ZExt: return w64 ? EvalOp::ZExtW : EvalOp::NumEvalOps;
      case EvalOp::SExt: return w64 ? EvalOp::SExtW : EvalOp::NumEvalOps;
      case EvalOp::MemRead:
        return a64 && prog.mems[in.aux].entryWords == 1
            ? EvalOp::MemReadW : EvalOp::NumEvalOps;
      default:
        return EvalOp::NumEvalOps;
    }
}

} // namespace

void
lowerProgram(EvalProgram &prog, const LowerOptions &opt,
             LowerStats *stats_out)
{
    LowerStats stats;
    uint32_t num_slots = prog.numSlots();

    // Per-slot consumer counts and the externally observable slots
    // that fusion must never eliminate the producer of.
    std::vector<uint32_t> uses(num_slots, 0);
    std::vector<bool> pinned(num_slots, false);
    for (const EvalInstr &in : prog.instrs) {
        uint32_t ops[4];
        int n = evalInstrOperands(in, ops);
        for (int i = 0; i < n; ++i)
            ++uses[ops[i]];
    }
    for (const ProgReg &r : prog.regs) {
        pinned[r.cur] = true;
        if (r.next != kNoSlot)
            pinned[r.next] = true;
    }
    for (const ProgWrite &w : prog.writes) {
        pinned[w.addr] = true;
        pinned[w.data] = true;
        pinned[w.en] = true;
    }
    for (const ProgPort &p : prog.inputs)
        pinned[p.slot] = true;
    for (const ProgPort &p : prog.outputs)
        pinned[p.slot] = true;

    std::vector<EvalInstr> &instrs = prog.instrs;
    std::vector<bool> dead(instrs.size(), false);

    if (opt.fuse) {
        // dst slot -> producing instruction index.
        std::unordered_map<uint32_t, uint32_t> producer;
        producer.reserve(instrs.size());
        for (uint32_t i = 0; i < instrs.size(); ++i)
            producer[instrs[i].dst] = i;

        // A producer is fusable into its (sole) consumer if its result
        // is consumed exactly once and observable nowhere else.
        auto fusable = [&](uint32_t slot, uint32_t *idx) {
            auto it = producer.find(slot);
            if (it == producer.end() || dead[it->second])
                return false;
            if (uses[slot] != 1 || pinned[slot])
                return false;
            *idx = it->second;
            return true;
        };
        auto kill = [&](uint32_t idx) {
            dead[idx] = true;
            ++stats.fusedPairs;
            ++stats.removedInstrs;
        };

        for (uint32_t j = 0; j < instrs.size(); ++j) {
            if (dead[j])
                continue;
            EvalInstr &mj = instrs[j];
            if (!isGenericEvalOp(mj.op))
                continue;
            uint32_t pi;
            switch (mj.op) {
              case EvalOp::Mux: {
                // 1-bit inversion of the select: swap the arms.
                if (fusable(mj.a, &pi) &&
                    instrs[pi].op == EvalOp::Not &&
                    instrs[pi].width == 1) {
                    mj.a = instrs[pi].a;
                    std::swap(mj.b, mj.c);
                    kill(pi);
                }
                // Comparison feeding the select: 4-operand select.
                if (mj.width <= 64 && fusable(mj.a, &pi)) {
                    const EvalInstr &p = instrs[pi];
                    EvalOp fop = cmpMuxFor(p.op);
                    if (fop != EvalOp::NumEvalOps && p.wa <= 64) {
                        mj.aux = mj.c;
                        mj.c = mj.b;
                        mj.a = p.a;
                        mj.b = p.b;
                        mj.wa = p.wa;
                        mj.wb = p.wb;
                        mj.op = fop;
                        kill(pi);
                    }
                }
                break;
              }
              case EvalOp::And:
              case EvalOp::Or:
              case EvalOp::Xor: {
                if (mj.width > 64)
                    break;
                auto inverted = [&](uint32_t slot, uint32_t *idx) {
                    return fusable(slot, idx) &&
                        instrs[*idx].op == EvalOp::Not &&
                        instrs[*idx].width == mj.width;
                };
                if (inverted(mj.b, &pi)) {
                    mj.b = instrs[pi].a;
                    mj.op = opNotFor(mj.op);
                    kill(pi);
                } else if (inverted(mj.a, &pi)) {
                    // Commutative: move the inverted operand to b.
                    mj.a = mj.b;
                    mj.b = instrs[pi].a;
                    mj.op = opNotFor(mj.op);
                    kill(pi);
                }
                break;
              }
              case EvalOp::Slice: {
                // Truncation of a truncation-stable op: recompute the
                // op directly at the slice width (word 0 of the inputs
                // fully determines word 0 of the result).
                if (mj.aux != 0 || mj.width > 64)
                    break;
                if (!fusable(mj.a, &pi))
                    break;
                const EvalInstr &p = instrs[pi];
                EvalOp fop = truncWFor(p.op);
                if (fop == EvalOp::NumEvalOps)
                    break;
                mj.a = p.a;
                mj.wa = p.wa;
                if (fop != EvalOp::NotW && fop != EvalOp::NegW) {
                    mj.b = p.b;
                    mj.wb = p.wb;
                }
                mj.op = fop;
                mj.aux = 0;
                kill(pi);
                break;
              }
              default:
                break;
            }
        }
    }

    if (opt.specialize) {
        for (uint32_t i = 0; i < instrs.size(); ++i) {
            if (dead[i] || !isGenericEvalOp(instrs[i].op))
                continue;
            EvalOp sop = specializedFor(prog, instrs[i]);
            if (sop != EvalOp::NumEvalOps) {
                instrs[i].op = sop;
                ++stats.specialized;
            }
        }
    }

    if (stats.removedInstrs) {
        std::vector<EvalInstr> live;
        live.reserve(instrs.size() - stats.removedInstrs);
        for (uint32_t i = 0; i < instrs.size(); ++i)
            if (!dead[i])
                live.push_back(instrs[i]);
        instrs = std::move(live);
    }

    // A no-op invocation (both passes disabled) leaves the program
    // marked generic so A/B baselines are distinguishable.
    prog.lowered = prog.lowered || opt.specialize || opt.fuse;
    prog.lowerStats.specialized += stats.specialized;
    prog.lowerStats.fusedPairs += stats.fusedPairs;
    prog.lowerStats.removedInstrs += stats.removedInstrs;
    if (stats_out)
        *stats_out = stats;

    // The activity plan must see the final instruction stream, so it
    // is (re)built after compaction.
    if (opt.activityPlan)
        buildActivityPlan(prog, opt.activityGroupSize);
}

void
buildActivityPlan(EvalProgram &prog, uint32_t groupSize)
{
    prog.activity = ActivityPlan{};
    ActivityPlan ap;
    const std::vector<EvalInstr> &instrs = prog.instrs;
    const uint32_t n = static_cast<uint32_t>(instrs.size());
    if (groupSize == 0)
        groupSize = 32;
    const uint32_t ngroups = (n + groupSize - 1) / groupSize;

    ap.groups.resize(ngroups);
    // Group of the instruction producing each slot. Each slot is
    // written by at most one instruction, so a plain map suffices.
    std::unordered_map<uint32_t, uint32_t> groupOfSlot;
    groupOfSlot.reserve(n);
    for (uint32_t g = 0; g < ngroups; ++g) {
        ap.groups[g].beginInstr = g * groupSize;
        ap.groups[g].endInstr = std::min(n, (g + 1) * groupSize);
        for (uint32_t i = ap.groups[g].beginInstr;
             i < ap.groups[g].endInstr; ++i)
            groupOfSlot[instrs[i].dst] = g;
    }

    // Reader groups per slot, successor edges between groups, and
    // memory readers. The instruction stream is topologically ordered
    // (operands precede users), so every cross-group edge points
    // forward; a backward edge means the invariant broke and the plan
    // cannot drive a single-sweep guard, so leave it unbuilt.
    std::unordered_map<uint32_t, std::vector<uint32_t>> readersOfSlot;
    std::vector<std::vector<uint32_t>> succsOf(ngroups);
    ap.memReaders.assign(prog.mems.size(), {});
    for (uint32_t g = 0; g < ngroups; ++g) {
        for (uint32_t i = ap.groups[g].beginInstr;
             i < ap.groups[g].endInstr; ++i) {
            const EvalInstr &in = instrs[i];
            uint32_t ops[4];
            int arity = evalInstrOperands(in, ops);
            for (int k = 0; k < arity; ++k) {
                std::vector<uint32_t> &rd = readersOfSlot[ops[k]];
                if (rd.empty() || rd.back() != g)
                    rd.push_back(g);
                auto it = groupOfSlot.find(ops[k]);
                if (it == groupOfSlot.end() || it->second == g)
                    continue;
                if (it->second > g)
                    return; // not topological: no plan
                std::vector<uint32_t> &sc = succsOf[it->second];
                if (sc.empty() || sc.back() != g)
                    sc.push_back(g);
            }
            if (evalReadsMemory(in.op)) {
                std::vector<uint32_t> &mr = ap.memReaders[in.aux];
                if (mr.empty() || mr.back() != g)
                    mr.push_back(g);
            }
        }
    }
    for (uint32_t g = 0; g < ngroups; ++g) {
        ap.groups[g].succBegin = static_cast<uint32_t>(ap.succs.size());
        ap.succs.insert(ap.succs.end(), succsOf[g].begin(),
                        succsOf[g].end());
        ap.groups[g].succEnd = static_cast<uint32_t>(ap.succs.size());
    }

    // Seed maps: which groups consume each register's cur slot and
    // each input port slot. A slot read by instructions in several
    // groups appears once per group (readersOfSlot is deduplicated by
    // construction: reads are visited in group order).
    ap.regReaders.assign(prog.regs.size(), {});
    for (size_t ri = 0; ri < prog.regs.size(); ++ri) {
        auto it = readersOfSlot.find(prog.regs[ri].cur);
        if (it != readersOfSlot.end())
            ap.regReaders[ri] = it->second;
    }
    ap.inputReaders.assign(prog.inputs.size(), {});
    for (size_t pi = 0; pi < prog.inputs.size(); ++pi) {
        auto it = readersOfSlot.find(prog.inputs[pi].slot);
        if (it != readersOfSlot.end())
            ap.inputReaders[pi] = it->second;
    }

    ap.built = true;
    prog.activity = std::move(ap);
}

} // namespace parendi::rtl
