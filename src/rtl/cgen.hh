/**
 * @file
 * Native codegen backend (tier 4 of the evaluation pipeline): a
 * lowered rtl::EvalProgram is emitted as a self-contained C++
 * translation unit of straight-line uint64 slot operations — the W
 * and fused tiers become single expressions, the multi-word generic
 * tier becomes calls to inline word-loop helpers specialized by
 * constant widths — then compiled with the system C++ compiler into a
 * shared object and dlopen()ed. Each program yields three entry
 * points — evaluate (the combinational program), commit (the deferred
 * memory write ports) and latch (the two-phase next→cur register
 * copy) — installed on an EvalState (EvalState::setNativeEval), so
 * every engine built on EvalPrograms — the reference interpreter, and
 * the ShardSet behind the par and ipu engines — can execute native
 * code between the same deterministic BSP supersteps. (The ShardSet
 * keeps its own cross-shard broadcast commit; it picks up the native
 * evaluate and latch phases.)
 *
 * This is the same "compiled simulation" move Verilator and the
 * paper's Poplar codelet generation make: per-tile straight-line
 * native code is what the r_cycle analysis assumes t_comp is made of.
 *
 * Robustness contract: everything here degrades gracefully. If the
 * toolchain is missing, the compile fails, or dlopen is unavailable
 * on the platform, the caller gets a warning and the engine keeps
 * running on the (bit-identical) fused interpreter.
 *
 * Compiled objects are cached by a hash of the generated source plus
 * the compiler command under a build directory, so repeated runs of
 * the same design skip the compiler entirely.
 */

#ifndef PARENDI_RTL_CGEN_HH
#define PARENDI_RTL_CGEN_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rtl/eval.hh"
#include "rtl/interp.hh"
#include "rtl/shard.hh"

namespace parendi::rtl {

/**
 * Where compiled artifacts live. CgenModule::compile never touches the
 * filesystem cache directly — it hashes the generated source plus the
 * compiler command into a content key and asks an ArtifactCache to
 * resolve it, invoking the supplied builder only on a miss. The
 * default implementation is a plain directory cache (one `.so` per
 * key, hit iff the file exists); serve::ArtifactStore layers LRU
 * eviction, single-flight compilation and hit/miss counters on the
 * same interface so every session shares one store.
 */
class ArtifactCache
{
  public:
    virtual ~ArtifactCache() = default;

    /**
     * Resolve @p key to the path of a compiled shared object. On a
     * miss the cache calls @p build with the destination path; build
     * returns false if compilation failed (after its own warn()).
     * Returns "" when the artifact is unavailable.
     */
    virtual std::string
    acquire(uint64_t key,
            const std::function<bool(const std::string &objectPath)>
                &build) = 0;
};

/** Knobs of the native codegen backend. */
struct CgenOptions
{
    /** Compiler command. Empty selects $PARENDI_CXX, then $CXX, then
     *  "c++". The value is used as a shell command prefix, so it may
     *  carry flags ("g++ -march=native"). */
    std::string cxx;

    /** Flags appended after the base "-O2 -fPIC -shared -std=c++17". */
    std::string extraFlags;

    /** Cache directory for generated sources and shared objects.
     *  Empty selects $PARENDI_CGEN_DIR, then "<tmpdir>/parendi-cgen". */
    std::string buildDir;

    /** Reuse a cached shared object whose hash matches. */
    bool cache = true;

    /**
     * Replica lanes the emitted kernels step in lock-step (gang
     * simulation). 1 emits the scalar kernels; R > 1 emits every
     * statement as an auto-vectorizable `for (lane = 0..R)` loop over
     * the lane-major EvalState layout (compiled with -fopenmp-simd so
     * -O2 turns the lane loops into SIMD). The attach helpers
     * (cgenAttach / cgenAttachShards) override this with the target
     * state's actual lane count; it only needs to be set when calling
     * CgenModule::compile directly. Always part of the cache key, so
     * gang and scalar builds of one design never collide.
     */
    uint32_t lanes = 1;

    /** Artifact cache to resolve compiled objects through. Null (the
     *  default) selects the plain directory cache under buildDir;
     *  hosts that share artifacts across sessions pass their
     *  serve::ArtifactStore. The store must outlive every module
     *  compiled through it. */
    ArtifactCache *store = nullptr;
};

/** The native entry points generated for one EvalProgram. */
struct CgenEntry
{
    NativeEvalFn eval = nullptr;    ///< combinational evaluate
    NativeEvalFn commit = nullptr;  ///< deferred memory write ports
    NativeEvalFn latch = nullptr;   ///< two-phase register latch

    /** Activity-guarded evaluate: runs only the groups whose dirty
     *  byte is set (see EvalState::enableActivity). Emitted only when
     *  the program carries a built ActivityPlan; null otherwise, and
     *  the guarded path falls back to the interpreted sweep. */
    NativeEvalActFn evalAct = nullptr;
    /** Activity-aware latch: next -> cur with per-register change
     *  detection seeding the dirty bytes. Emitted alongside evalAct. */
    NativeLatchActFn latchAct = nullptr;
};

/**
 * A dlopen()ed shared object holding one native kernel triple per
 * emitted EvalProgram. Engines share ownership via shared_ptr so the
 * code outlives every EvalState using it.
 */
class CgenModule
{
  public:
    ~CgenModule();
    CgenModule(const CgenModule &) = delete;
    CgenModule &operator=(const CgenModule &) = delete;

    size_t numEntries() const { return entries_.size(); }
    const CgenEntry &entry(size_t i) const { return entries_[i]; }
    const std::string &objectPath() const { return objectPath_; }

    /**
     * Emit, compile and load kernels for @p progs (one entry per
     * program, in order). Returns nullptr — after a warn() describing
     * the failure — when no toolchain is available, the compile
     * fails, or the platform has no dlopen; callers fall back to the
     * interpreter.
     */
    static std::shared_ptr<CgenModule>
    compile(const std::vector<const EvalProgram *> &progs,
            const CgenOptions &opt = CgenOptions{});

  private:
    CgenModule() = default;

    void *handle_ = nullptr;
    std::vector<CgenEntry> entries_;
    std::string objectPath_;
};

/**
 * The emitter alone: the C++ source of a translation unit with
 * `extern "C" void parendi_{eval,commit,latch}_<i>(uint64_t *slots,
 * uint64_t *const *mems)` entries per program. Deterministic
 * (hashable) for identical programs. @p lanes > 1 emits gang
 * (lane-vectorized) kernels over the lane-major SoA layout; 1 emits
 * the scalar kernels, byte-identical to what this emitted before gang
 * simulation existed.
 */
std::string cgenEmitSource(const std::vector<const EvalProgram *> &progs,
                           uint32_t lanes = 1);

/** 64-bit FNV-1a of a byte string (the compile-cache key). */
uint64_t cgenHash(const std::string &bytes);

/** Canonical file name of the compiled object for @p key
 *  ("parendi_<key>.so") — shared by every ArtifactCache
 *  implementation so stores and the directory cache interoperate. */
std::string cgenObjectName(uint64_t key);

/** Compile @p prog and install the kernel on @p state; false (with a
 *  warning) if native execution is unavailable. */
bool cgenAttach(EvalState &state, const EvalProgram &prog,
                const CgenOptions &opt = CgenOptions{});

/**
 * Compile every shard program of @p shards into ONE translation unit
 * (one compiler invocation however many shards) and install a kernel
 * per shard state. Returns the number of shards now running natively:
 * all of them, or 0 on fallback.
 */
size_t cgenAttachShards(ShardSet &shards,
                        const CgenOptions &opt = CgenOptions{});

/**
 * The `cgen` engine: the reference interpreter with its whole-design
 * program compiled to native code. Construction never fails on a
 * missing toolchain — it warns and keeps the interpreter loop, so the
 * engine is always functional (native() reports which path runs).
 * copt.lanes > 1 builds a gang engine: the state holds that many
 * replica lanes and the compiled kernels step them all per cycle (the
 * interpreter fallback steps them via gather/scatter).
 */
class CgenInterpreter : public Interpreter
{
  public:
    explicit CgenInterpreter(Netlist nl,
                             const LowerOptions &lower = LowerOptions{},
                             const CgenOptions &copt = CgenOptions{});

    const char *engineName() const override { return "cgen"; }

    /** True when the native kernel is installed (false = fell back). */
    bool native() const { return native_; }

  private:
    bool native_ = false;
};

} // namespace parendi::rtl

#endif // PARENDI_RTL_CGEN_HH
