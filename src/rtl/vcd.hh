/**
 * @file
 * VCD (Value Change Dump) waveform tracing — the standard debug
 * output every RTL simulator provides (Verilator's --trace). The
 * writer emits IEEE-1364 VCD: a header declaring the traced signals,
 * then per-timestep deltas (only signals whose value changed).
 */

#ifndef PARENDI_RTL_VCD_HH
#define PARENDI_RTL_VCD_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "rtl/bitvec.hh"
#include "rtl/interp.hh"

namespace parendi::rtl {

/** Low-level VCD emitter over an arbitrary signal list. */
class VcdWriter
{
  public:
    /** Writes to @p out (not owned; must outlive the writer). */
    explicit VcdWriter(std::ostream &out);

    /** Declare a signal before writeHeader(); returns its index. */
    size_t addSignal(const std::string &name, uint16_t width);

    /** Emit the VCD header ($timescale, $var declarations, ...). */
    void writeHeader(const std::string &design);

    /**
     * Record one timestep. @p values must be aligned with the
     * declared signals; only changed values are dumped (all of them
     * at time 0).
     */
    void sample(uint64_t time, const std::vector<BitVec> &values);

    size_t numSignals() const { return signals.size(); }

  private:
    struct Signal
    {
        std::string name;
        uint16_t width;
        std::string id;     ///< short VCD identifier
        BitVec last;
        bool dumped = false;
    };

    std::string idFor(size_t index) const;
    void dumpValue(const Signal &s, const BitVec &v);

    std::ostream &out;
    std::vector<Signal> signals;
    bool headerDone = false;
};

/**
 * Convenience tracer around any SimEngine: traces all registers and
 * output ports each cycle. Works identically for the reference
 * interpreter, the event-driven interpreter, the IPU machine, and the
 * parallel host interpreter (they are bit-identical, so so are their
 * waveforms).
 */
class EngineTracer
{
  public:
    EngineTracer(core::SimEngine &sim, std::ostream &out);

    /** Step the engine and dump one VCD timestep. */
    void step(size_t n = 1);

  private:
    void sampleNow();

    core::SimEngine &sim;
    VcdWriter writer;
    std::vector<std::string> regNames;
    std::vector<std::string> outNames;
    /// Sampling scratch, sized once: peekInto() refills the BitVecs in
    /// place, so steady-state tracing does not touch the heap.
    std::vector<BitVec> values;
};

/// Historical name, from when only the reference interpreter traced.
using InterpreterTracer = EngineTracer;

} // namespace parendi::rtl

#endif // PARENDI_RTL_VCD_HH
