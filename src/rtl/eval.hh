/**
 * @file
 * Compiled evaluation programs: a netlist (or any subset of one, e.g.
 * the fibers merged onto one IPU tile) is lowered to a flat list of
 * word-offset instructions over a dense uint64 slot array. The same
 * kernel executes the reference interpreter and every simulated IPU
 * tile, so functional equivalence between the two is exact by
 * construction of the inputs, not by luck.
 *
 * Lowering rules:
 *  - Const nodes become pre-initialized slots (no instruction).
 *  - Input/RegRead nodes are slots written by the caller (poke /
 *    register latch / exchange).
 *  - RegNext and Output are aliases to their operand's slot.
 *  - MemWrite becomes a deferred write-port record, applied in port
 *    order by EvalState::commit() after combinational evaluation.
 */

#ifndef PARENDI_RTL_EVAL_HH
#define PARENDI_RTL_EVAL_HH

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "rtl/netlist.hh"

namespace parendi::rtl {

/** One lowered combinational operation on slot storage. */
struct EvalInstr
{
    Op op;
    uint16_t width;     ///< result width (bits)
    uint16_t wa;        ///< width of operand a (bits)
    uint16_t wb;        ///< width of operand b (bits)
    uint32_t dst;       ///< destination word offset
    uint32_t a;         ///< operand word offsets
    uint32_t b;
    uint32_t c;
    uint32_t aux;       ///< slice LSB or program-local memory index
};

/** A register's slot bindings within one program. */
struct ProgReg
{
    RegId reg;              ///< netlist register id
    uint16_t width;
    uint32_t cur;           ///< slot of the current-cycle value
    uint32_t next;          ///< slot holding the next value (kNoSlot if
                            ///< this program does not compute it)
    bool owned = false;     ///< this program computes the next value
};

/** A memory replica held by one program. */
struct ProgMem
{
    MemId mem;              ///< netlist memory id
    uint32_t entryWords;
    uint32_t depth;
    bool owned = false;     ///< this program applies the write ports
};

/** A deferred memory write port. */
struct ProgWrite
{
    uint32_t memIndex;      ///< index into EvalProgram::mems
    uint32_t addr;          ///< slot of address value
    uint16_t addrWidth;
    uint32_t data;          ///< slot of data value
    uint32_t en;            ///< slot of 1-bit enable
};

/** An input or output port binding. */
struct ProgPort
{
    PortId port;
    uint16_t width;
    uint32_t slot;
};

constexpr uint32_t kNoSlot = UINT32_MAX;

/**
 * An immutable compiled program: instructions, slot layout, and initial
 * images. Instantiate with EvalState to run.
 */
struct EvalProgram
{
    std::vector<EvalInstr> instrs;
    std::vector<uint64_t> initSlots;    ///< initial slot image
    std::vector<ProgReg> regs;
    std::vector<ProgMem> mems;
    std::vector<std::vector<uint64_t>> memInit;
    std::vector<ProgWrite> writes;
    std::vector<ProgPort> inputs;
    std::vector<ProgPort> outputs;

    /** node id -> slot word offset, for cross-referencing by the host. */
    std::unordered_map<NodeId, uint32_t> slotOf;

    uint32_t numSlots() const { return static_cast<uint32_t>(
        initSlots.size()); }

    /** Approximate data bytes this program needs on a tile. */
    uint64_t dataBytes() const;
};

/**
 * Incrementally lowers a subset of a netlist into an EvalProgram.
 * Nodes must be added in an order where operands precede users
 * (callers pass nodes in topological order).
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(const Netlist &nl);

    /** Add one node. Idempotent: re-adding a node is a no-op. */
    void addNode(NodeId id);

    /** Add every node of the netlist (reference interpreter). */
    void addAll();

    /** Finalize. Ownership flags are set for regs/mems whose sinks
     *  were added. */
    EvalProgram build();

  private:
    uint32_t allocSlots(uint16_t width);
    uint32_t slotFor(NodeId id) const;

    const Netlist &nl_;
    EvalProgram prog_;
    std::unordered_map<MemId, uint32_t> memIndex_;
    std::unordered_map<RegId, uint32_t> regIndex_;
};

/**
 * Mutable run state for an EvalProgram: the slot array and memory
 * images. One EvalState per simulated tile (or one for the whole
 * design in the reference interpreter).
 */
class EvalState
{
  public:
    explicit EvalState(const EvalProgram &prog);

    /** Restore initial slot and memory images. */
    void reset();

    /** Evaluate all combinational instructions (the BSP compute phase). */
    void evalComb();

    /** Evaluate a single instruction (used by the event-driven
     *  interpreter for selective re-evaluation). */
    void evalOne(const EvalInstr &in);

    /** Apply deferred memory writes in port order. */
    void commitWrites();

    /** Copy next -> cur for registers owned by this program. */
    void latchRegisters();

    /** Full local cycle: evalComb + commitWrites + latchRegisters. */
    void step();

    // Slot access (word granularity).
    uint64_t *slotPtr(uint32_t slot) { return &slots_[slot]; }
    const uint64_t *slotPtr(uint32_t slot) const { return &slots_[slot]; }

    /** Read a value of @p width bits at @p slot into a BitVec. */
    BitVec readSlot(uint32_t slot, uint16_t width) const;

    /** Write a BitVec into @p slot (value is normalized to @p width). */
    void writeSlot(uint32_t slot, const BitVec &v);

    const EvalProgram &program() const { return prog_; }

    std::vector<uint64_t> &memImage(uint32_t mem_index)
    {
        return mems_[mem_index];
    }

    const std::vector<uint64_t> &
    memImage(uint32_t mem_index) const
    {
        return mems_[mem_index];
    }

    /** Serialize all mutable state (slots + memory images). */
    void save(std::ostream &out) const;
    /** Restore state saved by save(); the program must be identical.
     *  Calls fatal() on a size mismatch. */
    void restore(std::istream &in);

  private:
    const EvalProgram &prog_;
    std::vector<uint64_t> slots_;
    std::vector<std::vector<uint64_t>> mems_;
    std::vector<uint64_t> scratch_;   ///< latch staging (double buffer)
};

} // namespace parendi::rtl

#endif // PARENDI_RTL_EVAL_HH
