/**
 * @file
 * Compiled evaluation programs: a netlist (or any subset of one, e.g.
 * the fibers merged onto one IPU tile) is lowered to a flat list of
 * word-offset instructions over a dense uint64 slot array. The same
 * kernel executes the reference interpreter and every simulated IPU
 * tile, so functional equivalence between the two is exact by
 * construction of the inputs, not by luck.
 *
 * Lowering rules:
 *  - Const nodes become pre-initialized slots (no instruction).
 *  - Input/RegRead nodes are slots written by the caller (poke /
 *    register latch / exchange).
 *  - RegNext and Output are aliases to their operand's slot.
 *  - MemWrite becomes a deferred write-port record, applied in port
 *    order by EvalState::commitWrites() after combinational
 *    evaluation.
 */

#ifndef PARENDI_RTL_EVAL_HH
#define PARENDI_RTL_EVAL_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <new>
#include <unordered_map>
#include <vector>

#include "rtl/netlist.hh"

namespace parendi::rtl {

/**
 * 64-byte-aligned allocator for lane storage: gang (SoA) slot and
 * memory arrays start on a cache-line boundary so an R-lane vector of
 * any slot word never straddles lines and auto-vectorized lane loops
 * can use aligned accesses.
 */
template <class T>
struct LaneAlloc
{
    using value_type = T;
    static constexpr std::align_val_t kAlign{64};

    LaneAlloc() = default;
    template <class U>
    LaneAlloc(const LaneAlloc<U> &)
    {
    }

    T *
    allocate(size_t n)
    {
        return static_cast<T *>(::operator new(n * sizeof(T), kAlign));
    }
    void
    deallocate(T *p, size_t)
    {
        ::operator delete(p, kAlign);
    }
    template <class U>
    bool
    operator==(const LaneAlloc<U> &) const
    {
        return true;
    }
    template <class U>
    bool
    operator!=(const LaneAlloc<U> &) const
    {
        return false;
    }
};

/** Lane-major storage word array (slots and memory images). */
using LaneWords = std::vector<uint64_t, LaneAlloc<uint64_t>>;

/**
 * Opcodes of the lowered instruction stream. Three tiers:
 *
 *  - Generic: numerically identical to rtl::Op, operates on
 *    arbitrary-width multi-word values. ProgramBuilder emits only this
 *    tier, so an unlowered program is the straightforward translation
 *    of the netlist.
 *  - Specialized (suffix W): produced by lowerProgram() for
 *    instructions whose result fits one 64-bit slot word; the kernels
 *    are branch-light straight-line word operations.
 *  - Fused superinstructions: common adjacent pairs collapsed by the
 *    lowerProgram() peephole (compare feeding a mux select, a bitwise
 *    op with an inverted operand, an op truncated by a zero-LSB
 *    slice). CmpMux forms carry a fourth operand slot in `aux`.
 */
enum class EvalOp : uint8_t {
    // -- Generic tier (must mirror rtl::Op exactly) --
    Const, Input, RegRead, MemRead,
    Not, Neg, RedAnd, RedOr, RedXor,
    And, Or, Xor, Add, Sub, Mul, Shl, Shr, Sra,
    Eq, Ne, Ult, Ule, Slt, Sle,
    Mux, Concat, Slice, ZExt, SExt,
    RegNext, MemWrite, Output,

    // -- Specialized single-word tier --
    NotW, NegW, RedAndW, RedOrW, RedXorW,
    AndW, OrW, XorW, AddW, SubW, MulW, ShlW, ShrW, SraW,
    EqW, NeW, UltW, UleW, SltW, SleW,
    MuxW, ConcatW, SliceW, ZExtW, SExtW, MemReadW,

    // -- Fused superinstructions (single-word results) --
    AndNotW,    ///< d = a & ~b
    OrNotW,     ///< d = (a | ~b) masked to width
    XorNotW,    ///< d = (a ^ ~b) masked to width
    EqMuxW,     ///< d = (a == b) ? s[c] : s[aux]
    NeMuxW, UltMuxW, UleMuxW, SltMuxW, SleMuxW,

    NumEvalOps,
};

/** Lift a netlist op into the generic tier (same encoding). */
constexpr EvalOp
toEvalOp(Op op)
{
    return static_cast<EvalOp>(op);
}

static_assert(static_cast<unsigned>(EvalOp::Output) ==
                  static_cast<unsigned>(Op::Output),
              "generic EvalOp tier must mirror rtl::Op");

/** True for opcodes in the generic (netlist-mirroring) tier. */
constexpr bool
isGenericEvalOp(EvalOp op)
{
    return static_cast<unsigned>(op) < static_cast<unsigned>(Op::NumOps);
}

/** Printable mnemonic for any tier. */
const char *evalOpName(EvalOp op);

/** One lowered combinational operation on slot storage. */
struct EvalInstr
{
    EvalOp op;
    uint16_t width;     ///< result width (bits)
    uint16_t wa;        ///< width of operand a (bits)
    uint16_t wb;        ///< width of operand b (bits)
    uint32_t dst;       ///< destination word offset
    uint32_t a;         ///< operand word offsets
    uint32_t b;
    uint32_t c;
    uint32_t aux;       ///< slice LSB, memory index, or 4th operand
};

/** Source slot offsets read by @p in (fused CmpMux forms read a 4th
 *  operand from aux); returns the operand count (0 to 4). */
int evalInstrOperands(const EvalInstr &in, uint32_t ops[4]);

/** True for instructions reading a memory image (aux = memory index). */
bool evalReadsMemory(EvalOp op);

/**
 * Saturating read of a multi-word value as a uint64: any set bit in the
 * words above the first collapses the result to UINT64_MAX. This is the
 * one semantics every consumer of a wide address or shift amount uses —
 * memory read/write addressing (out-of-range reads return 0, writes are
 * dropped), shift amounts (≥ width shifts out everything), and the
 * exchange-side write-port broadcast — so "too big" only has to be
 * detected, never represented.
 */
inline uint64_t
saturatingWideRead(const uint64_t *words, uint32_t numWords)
{
    for (uint32_t i = 1; i < numWords; ++i)
        if (words[i])
            return UINT64_MAX;
    return words[0];
}

/** saturatingWideRead() of a value @p widthBits wide. */
inline uint64_t
saturatingWideReadBits(const uint64_t *words, uint16_t widthBits)
{
    return saturatingWideRead(words, wordsFor(widthBits));
}

/** A register's slot bindings within one program. */
struct ProgReg
{
    RegId reg;              ///< netlist register id
    uint16_t width;
    uint32_t cur;           ///< slot of the current-cycle value
    uint32_t next;          ///< slot holding the next value (kNoSlot if
                            ///< this program does not compute it)
    bool owned = false;     ///< this program computes the next value
};

/** A memory replica held by one program. */
struct ProgMem
{
    MemId mem;              ///< netlist memory id
    uint32_t entryWords;
    uint32_t depth;
    bool owned = false;     ///< this program applies the write ports
};

/** A deferred memory write port. */
struct ProgWrite
{
    uint32_t memIndex;      ///< index into EvalProgram::mems
    uint32_t addr;          ///< slot of address value
    uint16_t addrWidth;
    uint32_t data;          ///< slot of data value
    uint32_t en;            ///< slot of 1-bit enable
};

/** An input or output port binding. */
struct ProgPort
{
    PortId port;
    uint16_t width;
    uint32_t slot;
};

constexpr uint32_t kNoSlot = UINT32_MAX;

/**
 * One activity group: a contiguous range of lowered instructions that
 * the activity-guarded eval path runs or skips as a unit. Groups
 * partition the instruction stream in order, so intra-group data flow
 * needs no edges; inter-group flow is recorded as forward successor
 * edges (producer group -> consumer group, always increasing indices
 * because the instruction stream is topologically ordered).
 */
struct ActivityGroup
{
    uint32_t beginInstr;    ///< first instruction of the group
    uint32_t endInstr;      ///< one past the last instruction
    uint32_t succBegin;     ///< range into ActivityPlan::succs
    uint32_t succEnd;
};

/**
 * The activity plan of a lowered program: the group partition, the
 * forward dataflow edges between groups, and the seed maps that tell
 * the sequential phases (latch / commit / exchange / poke) which
 * groups consume each register, input port, and memory — the
 * comb/seq split. Built by buildActivityPlan() (called from
 * lowerProgram); consumed by EvalState::enableActivity().
 */
struct ActivityPlan
{
    std::vector<ActivityGroup> groups;
    std::vector<uint32_t> succs;    ///< flattened successor group ids

    /** Groups reading each register's cur slot (index: EvalProgram::regs). */
    std::vector<std::vector<uint32_t>> regReaders;
    /** Groups reading each input port slot (index: EvalProgram::inputs). */
    std::vector<std::vector<uint32_t>> inputReaders;
    /** Groups reading each memory image (index: EvalProgram::mems). */
    std::vector<std::vector<uint32_t>> memReaders;

    bool built = false;

    uint32_t
    numGroups() const
    {
        return static_cast<uint32_t>(groups.size());
    }
};

/** Knobs of the post-build lowering stage (lowerProgram). */
struct LowerOptions
{
    /** Rewrite eligible instructions into the single-word W tier. */
    bool specialize = true;
    /** Run the peephole pass that fuses adjacent pairs into
     *  superinstructions (implies rewriting the pair into the W tier). */
    bool fuse = true;

    /** Partition the instruction stream into activity groups and
     *  record the dataflow edges/seed maps (buildActivityPlan). The
     *  plan is passive until EvalState::enableActivity(true). */
    bool activityPlan = true;
    /** Target instructions per activity group. Smaller groups skip at
     *  finer grain but pay more guard overhead. */
    uint32_t activityGroupSize = 32;

    /** Fully generic program (the A side of A/B comparisons). */
    static LowerOptions
    none()
    {
        return {false, false};
    }
};

/** What lowerProgram did, for reporting and modeling. */
struct LowerStats
{
    uint32_t specialized = 0;   ///< instructions moved to the W tier
    uint32_t fusedPairs = 0;    ///< peephole fusions performed
    uint32_t removedInstrs = 0; ///< instructions eliminated by fusion
};

/**
 * An immutable compiled program: instructions, slot layout, and initial
 * images. Instantiate with EvalState to run.
 */
struct EvalProgram
{
    std::vector<EvalInstr> instrs;
    std::vector<uint64_t> initSlots;    ///< initial slot image
    std::vector<ProgReg> regs;
    std::vector<ProgMem> mems;
    std::vector<std::vector<uint64_t>> memInit;
    std::vector<ProgWrite> writes;
    std::vector<ProgPort> inputs;
    std::vector<ProgPort> outputs;

    bool lowered = false;       ///< lowerProgram() has run
    LowerStats lowerStats;

    /** Activity-group partition (see ActivityPlan). */
    ActivityPlan activity;

    /** node id -> slot word offset, for cross-referencing by the host. */
    std::unordered_map<NodeId, uint32_t> slotOf;

    uint32_t numSlots() const { return static_cast<uint32_t>(
        initSlots.size()); }

    /** Approximate data bytes this program needs on a tile. */
    uint64_t dataBytes() const;
};

/**
 * Lower @p prog in place: width-class specialization into the W tier
 * and peephole fusion of adjacent pairs into superinstructions.
 *
 * The slot layout is never changed — fused-away intermediate slots
 * simply stop being written — so checkpoints, port/register/memory
 * bindings, and slotOf cross-references remain valid, and a lowered
 * program is bit-for-bit functionally equivalent to the generic one.
 * Slots that are externally observable (register current/next values,
 * write-port operands, ports) are never fused away. Idempotent.
 */
void lowerProgram(EvalProgram &prog,
                  const LowerOptions &opt = LowerOptions{},
                  LowerStats *stats = nullptr);

/**
 * (Re)build @p prog's activity plan: partition the instruction stream
 * into groups of roughly @p groupSize instructions, record forward
 * inter-group dataflow edges, and index which groups consume each
 * register, input, and memory. Must run after any pass that reorders
 * or removes instructions (lowerProgram calls it last). If the
 * instruction stream is not topologically ordered the plan is left
 * unbuilt and activity-guarded execution stays disabled.
 */
void buildActivityPlan(EvalProgram &prog, uint32_t groupSize = 32);

/**
 * Incrementally lowers a subset of a netlist into an EvalProgram.
 * Nodes must be added in an order where operands precede users
 * (callers pass nodes in topological order).
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(const Netlist &nl);

    /** Add one node. Idempotent: re-adding a node is a no-op. */
    void addNode(NodeId id);

    /** Add every node of the netlist (reference interpreter). */
    void addAll();

    /** Finalize. Ownership flags are set for regs/mems whose sinks
     *  were added. */
    EvalProgram build();

  private:
    uint32_t allocSlots(uint16_t width);
    uint32_t slotFor(NodeId id) const;

    const Netlist &nl_;
    EvalProgram prog_;
    std::unordered_map<MemId, uint32_t> memIndex_;
    std::unordered_map<RegId, uint32_t> regIndex_;
};

/**
 * Signature of a natively compiled combinational kernel (rtl/cgen):
 * evaluates every instruction of one EvalProgram over the slot array.
 * @p mems holds one pointer per program memory image, in program
 * memory-index order.
 */
using NativeEvalFn = void (*)(uint64_t *slots, uint64_t *const *mems);

/**
 * Signature of a natively compiled activity-guarded eval kernel:
 * executes only the groups whose dirty byte is set (clearing it and
 * setting every successor's), in group order. Returns the work done,
 * packed as (groupsRun << 32) | instructionsExecuted, feeding the
 * telemetry counters.
 */
using NativeEvalActFn = uint64_t (*)(uint64_t *slots,
                                     uint64_t *const *mems,
                                     uint8_t *dirty);

/**
 * Signature of a natively compiled activity-aware latch kernel:
 * next -> cur for every owned register, marking the reader groups of
 * each register whose value actually changed (the seeding half of the
 * comb/seq split, at native latch speed).
 */
using NativeLatchActFn = void (*)(uint64_t *slots, uint8_t *dirty);

/**
 * Mutable run state for an EvalProgram: the slot array and memory
 * images. One EvalState per simulated tile (or one for the whole
 * design in the reference interpreter).
 *
 * Gang simulation: constructed with @p lanes = R > 1 the state holds R
 * independent replicas of the design laid out structure-of-arrays,
 * lane-major — word w of slot s for lane l lives at
 * slots_[(s + w) * R + l], and word w of memory entry e at
 * mems_[m][(e * entryWords + w) * R + l]. Consequences the rest of the
 * system builds on:
 *
 *  - at R = 1 the layout is word-for-word identical to the scalar
 *    layout, so every existing consumer is unaffected;
 *  - the R lane words of any slot word are contiguous (and 64-byte
 *    aligned), so per-instruction lane loops auto-vectorize;
 *  - a multi-word value's words are contiguous *as a block across all
 *    lanes*: slotPtr(s) points at words*R consecutive u64s, so
 *    whole-value copies (register latch, shard exchange) are the
 *    scalar memcpys with word counts scaled by R.
 *
 * The interpreter tier executes gangs by per-lane gather/scatter
 * around the scalar kernels (the correctness fallback); the cgen tier
 * emits lane-vectorized kernels over this layout (rtl/cgen).
 */
class EvalState
{
  public:
    explicit EvalState(const EvalProgram &prog, uint32_t lanes = 1);

    /** Replica lanes held by this state (1 = scalar layout). */
    uint32_t lanes() const { return lanes_; }

    /** Restore initial slot and memory images. */
    void reset();

    /** Evaluate all combinational instructions (the BSP compute phase). */
    void evalComb();

    /**
     * Install cgen-compiled kernels that evalComb() — and, when
     * non-null, commitWrites() / latchRegisters() — run in place of
     * the interpreter loops (a null @p fn uninstalls everything).
     * @p code keeps the backing shared object alive for the lifetime
     * of this state. Bit-identical by construction: the kernels are
     * emitted from the same lowered program the interpreter executes.
     */
    void setNativeEval(NativeEvalFn fn, std::shared_ptr<void> code,
                       NativeEvalFn commit = nullptr,
                       NativeEvalFn latch = nullptr,
                       NativeEvalActFn act = nullptr,
                       NativeLatchActFn latchAct = nullptr);
    bool hasNativeEval() const { return nativeFn_ != nullptr; }

    /**
     * Activity-guarded execution: evalComb() runs only the groups of
     * the program's ActivityPlan whose dirty bit is set, seeded by the
     * sequential phases (latch compares each register's new value
     * against the old one; commit marks memory readers; pokes and
     * restores mark everything). Skipped groups are provably
     * unchanged — pure combinational logic over unchanged inputs — so
     * the guarded path is bit-identical to always-eval.
     *
     * Returns false (and stays disabled) if the program has no built
     * plan. Enabling marks every group dirty, so the first eval is a
     * full one.
     */
    bool enableActivity(bool on);
    bool activityEnabled() const { return activity_; }

    /** Mark every activity group dirty (full re-eval next evalComb). */
    void markAllDirty();
    /** Mark the reader groups of register @p progRegIndex dirty (the
     *  shard exchange calls this when a received value changed). */
    void markRegReadersDirty(uint32_t progRegIndex);
    /** Mark the reader groups of memory @p memIndex dirty (the shard
     *  commit calls this when a broadcast write landed). */
    void markMemReadersDirty(uint32_t memIndex);

    /** Work done by the most recent evalComb(): instructions actually
     *  executed, and activity groups run / total. With activity off
     *  (or no plan) every instruction counts and run == total. */
    uint64_t lastEvalInstrs() const { return lastInstrs_; }
    uint32_t lastGroupsRun() const { return lastGroupsRun_; }
    uint32_t lastGroupsTotal() const { return lastGroupsTotal_; }

    /** Evaluate a single instruction (used by the event-driven
     *  interpreter for selective re-evaluation). */
    void evalOne(const EvalInstr &in);

    /** Execute the scalar instruction range [ip, end) on the
     *  computed-goto dispatch loop — the one hot path shared by the
     *  full sweep (evalComb) and the activity-guarded per-group sweep
     *  (evalActive), so skipping groups never trades away
     *  per-instruction dispatch speed. */
    void execRange(const EvalInstr *ip, const EvalInstr *end);

    /** Apply deferred memory writes in port order. */
    void commitWrites();

    /** Copy next -> cur for registers owned by this program. */
    void latchRegisters();

    /** Full local cycle: evalComb + commitWrites + latchRegisters. */
    void step();

    // Slot access (word granularity). With lanes > 1 the returned
    // pointer addresses the lane-major block: word w of lane l is at
    // ptr[w * lanes() + l].
    uint64_t *
    slotPtr(uint32_t slot)
    {
        return &slots_[uint64_t(slot) * lanes_];
    }
    const uint64_t *
    slotPtr(uint32_t slot) const
    {
        return &slots_[uint64_t(slot) * lanes_];
    }

    /** Read a value of @p width bits at @p slot into a BitVec. */
    BitVec readSlot(uint32_t slot, uint16_t width,
                    uint32_t lane = 0) const;

    /** readSlot() into an existing BitVec, reusing its buffer (the
     *  allocation-free peek path used by the VCD tracer). */
    void readSlotInto(uint32_t slot, uint16_t width, BitVec &out,
                      uint32_t lane = 0) const;

    /** Write a BitVec into @p slot (value is normalized to @p width).
     *  With lanes > 1 the value is broadcast to every lane. */
    void writeSlot(uint32_t slot, const BitVec &v);

    /** Write a BitVec into @p slot of a single lane. */
    void writeSlotLane(uint32_t slot, const BitVec &v, uint32_t lane);

    /** Read one entry of a memory image (per-lane). */
    BitVec readMemEntry(uint32_t memIndex, uint64_t index, uint16_t width,
                        uint32_t lane = 0) const;

    /** Write one entry of a memory image in one lane (out-of-range
     *  indices are dropped, matching write-port semantics). */
    void writeMemEntry(uint32_t memIndex, uint64_t index, const BitVec &v,
                       uint32_t lane = 0);

    const EvalProgram &program() const { return prog_; }

    LaneWords &memImage(uint32_t mem_index) { return mems_[mem_index]; }

    const LaneWords &
    memImage(uint32_t mem_index) const
    {
        return mems_[mem_index];
    }

    /** Serialize all mutable state (slots + memory images). */
    void save(std::ostream &out) const;
    /** Restore state saved by save(); the program must be identical.
     *  Calls fatal() on a size mismatch. */
    void restore(std::istream &in);

  private:
    /** Generic-tier kernels (the original multi-word switch), over the
     *  scalar-layout base pointer @p s. */
    void execGeneric(const EvalInstr &in, uint64_t *s);
    /** Specialized/fused-tier kernels (switch fallback path). */
    void execSpecial(const EvalInstr &in, uint64_t *s);
    /** Single-word memory read (needs the memory images). */
    void execMemReadW(const EvalInstr &in);

    /** Gang (lanes > 1) interpreter: full program, all lanes. */
    void evalCombGang();
    /** One instruction across all lanes via gather/scatter remap. */
    void execGangInstr(const EvalInstr &in);
    /** Gang commit/latch fallbacks (per-lane strided). */
    void commitWritesGang();

    /** Activity-guarded evalComb: forward sweep over dirty groups. */
    void evalActive();
    /** Latch with value comparison: copies next -> cur only when the
     *  value changed, marking the register's reader groups dirty. */
    void latchRegistersActive();
    /** Commit that marks memory-reader groups on applied writes. */
    void commitWritesActive();

    /** Re-derive memPtrs_ after mems_ may have reallocated. */
    void refreshMemPtrs();

    const EvalProgram &prog_;
    uint32_t lanes_ = 1;
    LaneWords slots_;
    std::vector<LaneWords> mems_;
    std::vector<uint64_t> scratch_;   ///< latch staging (double buffer)

    NativeEvalFn nativeFn_ = nullptr;     ///< cgen kernel (null -> interpret)
    NativeEvalFn nativeCommit_ = nullptr; ///< cgen commit phase
    NativeEvalFn nativeLatch_ = nullptr;  ///< cgen latch phase
    NativeEvalActFn nativeAct_ = nullptr; ///< cgen activity-guarded eval
    NativeLatchActFn nativeLatchAct_ = nullptr; ///< cgen compare-latch
    std::shared_ptr<void> nativeCode_;  ///< keeps the dlopened object alive
    std::vector<uint64_t *> memPtrs_;   ///< memory images, kernel ABI form

    bool activity_ = false;           ///< activity-guarded eval enabled
    std::vector<uint8_t> dirty_;      ///< per-group dirty byte
    uint64_t lastInstrs_ = 0;         ///< instrs executed by last eval
    uint32_t lastGroupsRun_ = 0;
    uint32_t lastGroupsTotal_ = 0;
};

/**
 * An EvalState constructed for R replica lanes — the storage layer of
 * gang simulation. A distinct type only for call-site clarity; all
 * behavior lives in EvalState, which is fully lane-aware.
 */
class GangState : public EvalState
{
  public:
    GangState(const EvalProgram &prog, uint32_t lanes)
        : EvalState(prog, lanes)
    {
    }
};

} // namespace parendi::rtl

#endif // PARENDI_RTL_EVAL_HH
