#include "rtl/event.hh"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "util/logging.hh"

namespace parendi::rtl {

EventInterpreter::EventInterpreter(Netlist netlist,
                                   const LowerOptions &lower)
    : nl(std::move(netlist))
{
    ProgramBuilder builder(nl);
    builder.addAll();
    prog = builder.build();
    lowerProgram(prog, lower);
    state = std::make_unique<EvalState>(prog);

    // Producer (dst slot) -> instruction index.
    std::unordered_map<uint32_t, uint32_t> producer;
    for (uint32_t i = 0; i < prog.instrs.size(); ++i)
        producer[prog.instrs[i].dst] = i;
    // Consumers per slot.
    std::unordered_map<uint32_t, std::vector<uint32_t>> consumers;
    users.assign(prog.instrs.size(), {});
    for (uint32_t i = 0; i < prog.instrs.size(); ++i) {
        uint32_t ops[4];
        int arity = evalInstrOperands(prog.instrs[i], ops);
        for (int k = 0; k < arity; ++k) {
            consumers[ops[k]].push_back(i);
            auto it = producer.find(ops[k]);
            if (it != producer.end())
                users[it->second].push_back(i);
        }
    }
    // Register/memory fanout.
    regUsers.assign(prog.regs.size(), {});
    for (size_t r = 0; r < prog.regs.size(); ++r) {
        auto it = consumers.find(prog.regs[r].cur);
        if (it != consumers.end())
            regUsers[r] = it->second;
    }
    memUsers.assign(prog.mems.size(), {});
    for (uint32_t i = 0; i < prog.instrs.size(); ++i)
        if (evalReadsMemory(prog.instrs[i].op))
            memUsers[prog.instrs[i].aux].push_back(i);

    dirty.assign(prog.instrs.size(), 0);
    // Initial full evaluation (like power-on in a full-cycle sim).
    state->evalComb();
    shadow.assign(state->slotPtr(0),
                  state->slotPtr(0) + prog.numSlots());
}

void
EventInterpreter::settle()
{
    const uint64_t *s = state->slotPtr(0);
    shadow.assign(s, s + prog.numSlots());
    std::fill(dirty.begin(), dirty.end(), 0);
}

void
EventInterpreter::reset()
{
    state->reset();
    state->evalComb();
    settle();
    cycleCount = 0;
    evaluated = 0;
}

void
EventInterpreter::poke(const std::string &input, const BitVec &value)
{
    PortId id = nl.findInput(input);
    if (id == nl.numInputs())
        fatal("no input port named %s", input.c_str());
    for (const ProgPort &p : prog.inputs) {
        if (p.port != id)
            continue;
        if (value.width() != p.width)
            fatal("poke %s: width %u != port width %u", input.c_str(),
                  value.width(), p.width);
        state->writeSlot(p.slot, value);
        // A full re-evaluation leaves nothing pending, so the next
        // step()'s selective propagation starts from a settled state.
        state->evalComb();
        settle();
        return;
    }
    fatal("input port %s not in program", input.c_str());
}

void
EventInterpreter::poke(const std::string &input, uint64_t value)
{
    PortId id = nl.findInput(input);
    if (id == nl.numInputs())
        fatal("no input port named %s", input.c_str());
    poke(input, BitVec(nl.input(id).width, value));
}

void
EventInterpreter::step(size_t n)
{
    for (size_t c = 0; c < n; ++c) {
        uint64_t *s = state->slotPtr(0);

        // 1. Commit memory writes with change detection.
        for (const ProgWrite &w : prog.writes) {
            if (!(s[w.en] & 1))
                continue;
            const ProgMem &pm = prog.mems[w.memIndex];
            uint64_t addr = saturatingWideReadBits(s + w.addr, w.addrWidth);
            if (addr >= pm.depth)
                continue;
            uint64_t *entry = state->memImage(w.memIndex).data() +
                addr * pm.entryWords;
            if (std::memcmp(entry, s + w.data,
                            pm.entryWords * 8) != 0) {
                std::memcpy(entry, s + w.data, pm.entryWords * 8);
                for (uint32_t u : memUsers[w.memIndex])
                    dirty[u] = 1;
            }
        }

        // 2. Latch registers (staged, change-detected).
        std::vector<uint64_t> staged;
        for (const ProgReg &r : prog.regs) {
            if (!r.owned || r.next == kNoSlot)
                continue;
            for (uint32_t i = 0; i < wordsFor(r.width); ++i)
                staged.push_back(s[r.next + i]);
        }
        size_t at = 0;
        for (size_t ri = 0; ri < prog.regs.size(); ++ri) {
            const ProgReg &r = prog.regs[ri];
            if (!r.owned || r.next == kNoSlot)
                continue;
            uint32_t words = wordsFor(r.width);
            bool changed = std::memcmp(s + r.cur, staged.data() + at,
                                       words * 8) != 0;
            if (changed) {
                std::memcpy(s + r.cur, staged.data() + at, words * 8);
                for (uint32_t u : regUsers[ri])
                    dirty[u] = 1;
            }
            at += words;
        }

        // 3. Selective propagation in topological (ascending) order.
        for (uint32_t i = 0; i < prog.instrs.size(); ++i) {
            if (!dirty[i])
                continue;
            dirty[i] = 0;
            const EvalInstr &in = prog.instrs[i];
            state->evalOne(in);
            ++evaluated;
            uint32_t words = wordsFor(in.width);
            if (std::memcmp(s + in.dst, shadow.data() + in.dst,
                            words * 8) != 0) {
                std::memcpy(shadow.data() + in.dst, s + in.dst,
                            words * 8);
                for (uint32_t u : users[i])
                    dirty[u] = 1;
            }
        }
        ++cycleCount;
    }
}

BitVec
EventInterpreter::peek(const std::string &output) const
{
    PortId id = nl.findOutput(output);
    if (id == nl.numOutputs())
        fatal("no output port named %s", output.c_str());
    for (const ProgPort &p : prog.outputs)
        if (p.port == id)
            return state->readSlot(p.slot, p.width);
    fatal("output %s not in program", output.c_str());
}

BitVec
EventInterpreter::peekRegister(const std::string &reg) const
{
    RegId id = nl.findRegister(reg);
    if (id == nl.numRegisters())
        fatal("no register named %s", reg.c_str());
    for (const ProgReg &r : prog.regs)
        if (r.reg == id)
            return state->readSlot(r.cur, r.width);
    fatal("register %s not in program", reg.c_str());
}

BitVec
EventInterpreter::peekMemory(const std::string &mem,
                             uint64_t index) const
{
    MemId id = nl.findMemory(mem);
    if (id == nl.numMemories())
        fatal("no memory named %s", mem.c_str());
    for (size_t i = 0; i < prog.mems.size(); ++i) {
        const ProgMem &pm = prog.mems[i];
        if (pm.mem != id)
            continue;
        if (index >= pm.depth)
            fatal("memory %s index %llu out of range", mem.c_str(),
                  static_cast<unsigned long long>(index));
        const auto &img = state->memImage(static_cast<uint32_t>(i));
        std::vector<uint64_t> words(
            img.begin() + index * pm.entryWords,
            img.begin() + (index + 1) * pm.entryWords);
        return BitVec(nl.mem(id).width, std::move(words));
    }
    fatal("memory %s not in program", mem.c_str());
}

} // namespace parendi::rtl
