/**
 * @file
 * Reference single-threaded RTL interpreter (the golden model). It is
 * also the functional stand-in for "Verilator single-thread" in the
 * evaluation harness: a straight-line, full-cycle evaluation of the
 * whole design with no partitioning.
 */

#ifndef PARENDI_RTL_INTERP_HH
#define PARENDI_RTL_INTERP_HH

#include <iosfwd>
#include <memory>
#include <string>

#include "core/engine.hh"
#include "rtl/eval.hh"
#include "rtl/netlist.hh"

namespace parendi::rtl {

/**
 * Owns a compiled whole-design EvalProgram and its state, and exposes
 * cycle stepping plus name-based port/register/memory access.
 */
class Interpreter : public core::SimEngine
{
  public:
    /** Takes the netlist by value (copy or move) so the interpreter
     *  owns its design and temporaries are safe to pass. The compiled
     *  program is lowered (specialized + fused) by default; pass
     *  LowerOptions::none() for the fully generic A/B baseline.
     *  @p replicas > 1 builds a gang: R independent instances in one
     *  lane-major EvalState, stepped together. */
    explicit Interpreter(Netlist nl,
                         const LowerOptions &lower = LowerOptions{},
                         uint32_t replicas = 1);

    // The state holds a reference to the program member; the object
    // must stay put.
    Interpreter(const Interpreter &) = delete;
    Interpreter &operator=(const Interpreter &) = delete;

    const char *engineName() const override { return "interp"; }

    /** Simulate @p n full RTL cycles. */
    void step(size_t n = 1) override;

    /** Enable/disable activity-guarded evaluation (see
     *  EvalState::enableActivity). Returns false if the program has no
     *  activity plan; the always-eval path then stays in effect. */
    bool
    setActivity(bool on) override
    {
        return state->enableActivity(on);
    }
    bool
    activityEnabled() const override
    {
        return state->activityEnabled();
    }

    /** Cycles simulated since construction/reset. */
    uint64_t cycles() const override { return cycleCount; }

    /** Reset all state to initial values. */
    void reset() override;

    /** Drive an input port (takes effect from the next evaluation). */
    void poke(const std::string &input, const BitVec &value) override;
    void poke(const std::string &input, uint64_t value) override;

    /** Sample an output port as of the last completed cycle's
     *  combinational evaluation. */
    BitVec peek(const std::string &output) const override;

    /** Read a register's current value by name. */
    BitVec peekRegister(const std::string &reg) const override;

    /** Read one memory entry by memory name. */
    BitVec peekMemory(const std::string &mem,
                      uint64_t index) const override;

    // Gang lane access (see SimEngine). Scalar poke broadcasts to all
    // lanes; scalar peeks read lane 0.
    uint32_t replicas() const override { return state->lanes(); }
    void pokeLane(const std::string &input, const BitVec &value,
                  uint32_t lane) override;
    void pokeLane(const std::string &input, uint64_t value,
                  uint32_t lane) override;
    BitVec peekLane(const std::string &output,
                    uint32_t lane) const override;
    BitVec peekRegisterLane(const std::string &reg,
                            uint32_t lane) const override;
    BitVec peekMemoryLane(const std::string &mem, uint64_t index,
                          uint32_t lane) const override;

    /** Checkpoint all simulation state (including the cycle count). */
    void save(std::ostream &out) const;
    /** Restore a checkpoint written by save() for the same design. */
    void restore(std::istream &in);

    /** Engine-agnostic checkpointing (see SimEngine). */
    bool
    saveState(std::ostream &out) const override
    {
        save(out);
        return true;
    }
    bool
    restoreState(std::istream &in) override
    {
        restore(in);
        return true;
    }

    /** Canonical architectural state (see SimEngine / src/ckpt). */
    bool exportArch(core::ArchState &out) const override;
    bool importArch(const core::ArchState &st) override;

    const Netlist &netlist() const override { return nl; }
    const EvalProgram &program() const { return prog; }

    /** Allocation-free peeks (see SimEngine): read straight out of the
     *  slot array into a caller-owned BitVec. */
    void peekInto(const std::string &output, BitVec &out) const override;
    void peekRegisterInto(const std::string &reg,
                          BitVec &out) const override;

    /** Attach an obs::SuperstepProfiler (one worker, one shard; the
     *  whole design is a single straight-line program here, so the
     *  commit/latch/eval phases are timed on worker 0 and the eval
     *  duration doubles as the single shard's straggler stat). Also
     *  covers CgenInterpreter — the native kernel runs inside
     *  evalComb(). Always succeeds. */
    bool enableProfiling(const obs::ProfileOptions &opt =
                             obs::ProfileOptions{}) override;
    obs::SuperstepProfiler *profiler() override
    {
        return profiler_.get();
    }
    const obs::SuperstepProfiler *
    profiler() const override
    {
        return profiler_.get();
    }

  protected:
    /** Mutable run state, for subclasses that install native kernels
     *  (rtl::CgenInterpreter). */
    EvalState &mutableState() { return *state; }

  private:
    void stepProfiled(size_t n);

    Netlist nl;
    EvalProgram prog;
    std::unique_ptr<EvalState> state;
    uint64_t cycleCount = 0;

    std::unique_ptr<obs::SuperstepProfiler> profiler_;
    obs::Counter *ctrInstrs_ = nullptr;
    obs::Counter *ctrNative_ = nullptr;
    obs::Counter *ctrGroupsSkipped_ = nullptr;
    obs::Counter *ctrGroupsTotal_ = nullptr;
};

} // namespace parendi::rtl

#endif // PARENDI_RTL_INTERP_HH
