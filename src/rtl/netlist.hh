/**
 * @file
 * The Parendi RTL intermediate representation: a data dependence graph of
 * combinational operators between clocked registers and memories
 * (paper Fig. 3). A Netlist is what design generators and the PNL
 * frontend produce and what the compiler pipeline consumes.
 *
 * Semantics: cycle-accurate, full-cycle evaluation with a single
 * top-level clock (the paper's supported clocking model, §5.3).
 *  - RegRead yields the register value at the beginning of the cycle.
 *  - RegNext supplies the register value for the next cycle.
 *  - MemRead is a combinational (asynchronous) array read.
 *  - MemWrite commits at the end of the cycle, ports applied in
 *    creation order.
 */

#ifndef PARENDI_RTL_NETLIST_HH
#define PARENDI_RTL_NETLIST_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "rtl/bitvec.hh"

namespace parendi::rtl {

using NodeId = uint32_t;
constexpr NodeId kNoNode = UINT32_MAX;

using RegId = uint32_t;
using MemId = uint32_t;
using PortId = uint32_t;

/** Combinational and sink operators of the data dependence graph. */
enum class Op : uint8_t {
    // Sources
    Const,      ///< aux = constant pool index
    Input,      ///< aux = input port id
    RegRead,    ///< aux = register id
    MemRead,    ///< aux = memory id; a = address

    // Unary
    Not,
    Neg,
    RedAnd,     ///< 1-bit reduction AND
    RedOr,
    RedXor,

    // Binary (operand widths equal result width unless noted)
    And,
    Or,
    Xor,
    Add,
    Sub,
    Mul,
    Shl,        ///< b is the (unsigned) shift amount, any width
    Shr,        ///< logical right shift
    Sra,        ///< arithmetic right shift

    // Comparisons (1-bit result; operands equal width)
    Eq,
    Ne,
    Ult,
    Ule,
    Slt,
    Sle,

    // Structural
    Mux,        ///< a = 1-bit select, b = then, c = else
    Concat,     ///< a = high part, b = low part
    Slice,      ///< a = value, aux = LSB offset, node width = slice width
    ZExt,       ///< zero extend a to node width
    SExt,       ///< sign extend a to node width

    // Sinks
    RegNext,    ///< aux = register id; a = next value
    MemWrite,   ///< aux = memory id; a = addr, b = data, c = 1-bit enable
    Output,     ///< aux = output port id; a = value

    NumOps,
};

/** True for ops that terminate a fiber (clocked/externally visible). */
bool isSink(Op op);
/** True for ops with no combinational operands. */
bool isSource(Op op);
/** Printable mnemonic. */
const char *opName(Op op);
/** Number of operands used by @p op (0 to 3). */
int opArity(Op op);

/** One vertex of the data dependence graph. */
struct Node
{
    Op op;
    uint16_t width;             ///< result width in bits
    uint32_t aux = 0;           ///< op-specific: const/reg/mem/port index
    std::array<NodeId, 3> operands = {kNoNode, kNoNode, kNoNode};
};

/** A clocked register (one per HDL register bit-vector). */
struct Register
{
    std::string name;
    uint16_t width;
    BitVec init;
    NodeId next = kNoNode;      ///< the RegNext sink driving it
    NodeId read = kNoNode;      ///< the unique RegRead source (or kNoNode)
};

/** An RTL array (register file, SRAM bank, ...). */
struct Memory
{
    std::string name;
    uint16_t width;             ///< bits per entry
    uint32_t depth;             ///< number of entries
    std::vector<NodeId> writePorts;
    std::vector<NodeId> readPorts;
    std::vector<BitVec> init;   ///< optional initial image (readmemh-like)

    /** Bytes occupied by one full copy of this array. */
    uint64_t
    sizeBytes() const
    {
        return uint64_t{wordsFor(width)} * 8 * depth;
    }
};

struct InputPort
{
    std::string name;
    uint16_t width;
    NodeId node = kNoNode;
};

struct OutputPort
{
    std::string name;
    uint16_t width;
    NodeId node = kNoNode;      ///< the Output sink
};

/**
 * The RTL data dependence graph plus its state elements. Node ids are
 * dense and creation-ordered; builders may create nodes in any order
 * (analysis passes topologically sort as needed).
 */
class Netlist
{
  public:
    explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    // -- Construction -----------------------------------------------------

    /** Add a constant node. */
    NodeId addConst(const BitVec &value);
    NodeId addConst(uint32_t width, uint64_t value);

    /** Declare an input port and return its source node. */
    NodeId addInput(const std::string &name, uint16_t width);

    /** Declare a register; its RegRead node is created lazily. */
    RegId addRegister(const std::string &name, uint16_t width,
                      const BitVec &init);
    RegId addRegister(const std::string &name, uint16_t width,
                      uint64_t init = 0);

    /** The (unique) RegRead node of @p reg. */
    NodeId readRegister(RegId reg);

    /** Connect the next-cycle value of @p reg; returns the RegNext sink. */
    NodeId setRegisterNext(RegId reg, NodeId value);

    /** Declare a memory of @p depth entries of @p width bits. */
    MemId addMemory(const std::string &name, uint16_t width, uint32_t depth);

    /** Set the initial contents of a memory. */
    void initMemory(MemId mem, std::vector<BitVec> image);

    /** Combinational read port. */
    NodeId readMemory(MemId mem, NodeId addr);

    /** Clocked write port; returns the MemWrite sink. */
    NodeId writeMemory(MemId mem, NodeId addr, NodeId data, NodeId enable);

    /** Declare an output port driven by @p value; returns Output sink. */
    NodeId addOutput(const std::string &name, NodeId value);

    /** Generic operator constructors (width rules checked). */
    NodeId addUnary(Op op, NodeId a);
    NodeId addBinary(Op op, NodeId a, NodeId b);
    NodeId addMux(NodeId sel, NodeId then_v, NodeId else_v);
    NodeId addConcat(NodeId hi, NodeId lo);
    NodeId addSlice(NodeId a, uint32_t lsb, uint16_t width);
    NodeId addExtend(Op op, NodeId a, uint16_t width);

    // -- Access -----------------------------------------------------------

    size_t numNodes() const { return nodes_.size(); }
    const Node &node(NodeId id) const { return nodes_[id]; }
    uint16_t widthOf(NodeId id) const { return nodes_[id].width; }

    size_t numRegisters() const { return regs_.size(); }
    const Register &reg(RegId id) const { return regs_[id]; }

    size_t numMemories() const { return mems_.size(); }
    const Memory &mem(MemId id) const { return mems_[id]; }

    size_t numInputs() const { return inputs_.size(); }
    const InputPort &input(PortId id) const { return inputs_[id]; }

    size_t numOutputs() const { return outputs_.size(); }
    const OutputPort &output(PortId id) const { return outputs_[id]; }

    const BitVec &constValue(uint32_t pool_index) const
    {
        return consts_[pool_index];
    }

    /** All sink nodes (RegNext, MemWrite, Output), creation-ordered. */
    const std::vector<NodeId> &sinks() const { return sinks_; }

    /** Look up a register by name; returns numRegisters() if absent. */
    RegId findRegister(const std::string &name) const;
    /** Look up ports by name; returns num{In,Out}puts() if absent. */
    PortId findInput(const std::string &name) const;
    PortId findOutput(const std::string &name) const;
    /** Look up a memory by name; returns numMemories() if absent. */
    MemId findMemory(const std::string &name) const;

    /**
     * Validate structural invariants: every register driven, operand
     * widths legal, no dangling operands. Calls fatal() on violation.
     */
    void check() const;

  private:
    NodeId pushNode(Node n);

    std::string name_;
    std::vector<Node> nodes_;
    std::vector<Register> regs_;
    std::vector<Memory> mems_;
    std::vector<InputPort> inputs_;
    std::vector<OutputPort> outputs_;
    std::vector<BitVec> consts_;
    std::vector<NodeId> sinks_;
};

/**
 * 64-bit FNV-1a content hash of a netlist: every node (op, width, aux,
 * operands), constant value, register (name, width, initial value),
 * memory (name, shape, initial image) and port (name, width), in
 * creation order. Two netlists hash equal iff they describe the same
 * design down to the names the host pokes and peeks by — the key of
 * the content-addressed artifact store and the design-identity field
 * of the checkpoint header.
 */
uint64_t netlistHash(const Netlist &nl);

} // namespace parendi::rtl

#endif // PARENDI_RTL_NETLIST_HH
