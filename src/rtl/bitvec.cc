#include "rtl/bitvec.hh"

#include "util/logging.hh"

namespace parendi::rtl {

BitVec::BitVec(uint32_t width, uint64_t value) : width_(width)
{
    if (width > kMaxWidth)
        fatal("BitVec width %u exceeds maximum %u", width, kMaxWidth);
    words_.assign(wordsFor(width), 0);
    if (!words_.empty())
        words_[0] = value;
    normalize();
}

BitVec::BitVec(uint32_t width, std::vector<uint64_t> words)
    : width_(width), words_(std::move(words))
{
    if (width > kMaxWidth)
        fatal("BitVec width %u exceeds maximum %u", width, kMaxWidth);
    words_.resize(wordsFor(width), 0);
    normalize();
}

void
BitVec::assign(uint32_t width, const uint64_t *words, uint32_t n)
{
    if (width > kMaxWidth)
        fatal("BitVec width %u exceeds maximum %u", width, kMaxWidth);
    width_ = width;
    words_.assign(words, words + n);
    words_.resize(wordsFor(width), 0);
    normalize();
}

void
BitVec::setBit(uint32_t i, bool v)
{
    uint64_t mask = uint64_t{1} << (i & 63);
    if (v)
        words_[i >> 6] |= mask;
    else
        words_[i >> 6] &= ~mask;
}

bool
BitVec::isZero() const
{
    for (uint64_t w : words_)
        if (w)
            return false;
    return true;
}

bool
BitVec::operator==(const BitVec &o) const
{
    return width_ == o.width_ && words_ == o.words_;
}

void
BitVec::normalize()
{
    if (words_.empty())
        return;
    uint32_t top_bits = width_ & 63;
    if (top_bits)
        words_.back() &= (uint64_t{1} << top_bits) - 1;
}

std::string
BitVec::toHex() const
{
    if (width_ == 0)
        return "0";
    std::string out;
    uint32_t nibbles = (width_ + 3) / 4;
    for (uint32_t i = 0; i < nibbles; ++i) {
        uint32_t nib = nibbles - 1 - i;
        uint32_t bit = nib * 4;
        uint64_t w = words_[bit >> 6];
        out.push_back("0123456789abcdef"[(w >> (bit & 63)) & 0xf]);
    }
    // Strip leading zeros but keep at least one digit.
    size_t first = out.find_first_not_of('0');
    return first == std::string::npos ? "0" : out.substr(first);
}

BitVec
BitVec::fromHex(uint32_t width, const std::string &hex)
{
    BitVec v(width, uint64_t{0});
    uint32_t bit = 0;
    for (auto it = hex.rbegin(); it != hex.rend() && bit < width; ++it) {
        char c = *it;
        uint64_t nib;
        if (c >= '0' && c <= '9')
            nib = static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            nib = static_cast<uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            nib = static_cast<uint64_t>(c - 'A' + 10);
        else
            fatal("bad hex digit '%c' in \"%s\"", c, hex.c_str());
        v.words_[bit >> 6] |= nib << (bit & 63);
        if ((bit & 63) > 60 && (bit >> 6) + 1 < v.words_.size())
            v.words_[(bit >> 6) + 1] |= nib >> (64 - (bit & 63));
        bit += 4;
    }
    v.normalize();
    return v;
}

} // namespace parendi::rtl
