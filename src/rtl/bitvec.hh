/**
 * @file
 * BitVec: an arbitrary-width bit vector value used for constants, register
 * initial values, and port I/O at the public API boundary. The simulation
 * inner loops do not use BitVec; they operate on flat uint64 word arrays
 * (see rtl/eval.hh) for speed.
 */

#ifndef PARENDI_RTL_BITVEC_HH
#define PARENDI_RTL_BITVEC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace parendi::rtl {

/** Number of 64-bit words needed to hold @p width bits. */
constexpr uint32_t
wordsFor(uint32_t width)
{
    return (width + 63) / 64;
}

/** Maximum supported signal width in bits. */
constexpr uint32_t kMaxWidth = 4096;

/**
 * A value of a fixed bit width. All operations keep the value normalized:
 * bits above `width` are always zero.
 */
class BitVec
{
  public:
    BitVec() : width_(0) {}

    /** A @p width bit value initialized from a uint64 (truncated). */
    explicit BitVec(uint32_t width, uint64_t value = 0);

    /** A @p width bit value from little-endian 64-bit words. */
    BitVec(uint32_t width, std::vector<uint64_t> words);

    /** Re-initialize in place from @p n little-endian words, reusing
     *  the existing buffer (no allocation once capacity suffices);
     *  the value is normalized to @p width. */
    void assign(uint32_t width, const uint64_t *words, uint32_t n);

    uint32_t width() const { return width_; }
    uint32_t numWords() const { return wordsFor(width_); }

    /** Low 64 bits of the value. */
    uint64_t toUint64() const { return words_.empty() ? 0 : words_[0]; }

    uint64_t word(uint32_t i) const { return words_[i]; }
    const std::vector<uint64_t> &words() const { return words_; }

    bool bit(uint32_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }
    void setBit(uint32_t i, bool v);

    bool isZero() const;

    bool operator==(const BitVec &o) const;
    bool operator!=(const BitVec &o) const { return !(*this == o); }

    /** Hex string, e.g. "8'hff" style without the width prefix. */
    std::string toHex() const;

    /** Parse a hex string (no prefix) into a value of @p width bits. */
    static BitVec fromHex(uint32_t width, const std::string &hex);

    /** Mask the top word so bits above width are zero. */
    void normalize();

  private:
    uint32_t width_;
    std::vector<uint64_t> words_;
};

} // namespace parendi::rtl

#endif // PARENDI_RTL_BITVEC_HH
