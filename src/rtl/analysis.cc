#include "rtl/analysis.hh"

#include <algorithm>

#include "util/logging.hh"

namespace parendi::rtl {

std::vector<NodeId>
topoOrder(const Netlist &nl)
{
    size_t n = nl.numNodes();
    std::vector<uint32_t> indegree(n, 0);
    // Users adjacency built on the fly from operand lists.
    std::vector<std::vector<NodeId>> users(n);
    for (NodeId id = 0; id < n; ++id) {
        const Node &node = nl.node(id);
        int arity = opArity(node.op);
        for (int i = 0; i < arity; ++i) {
            users[node.operands[i]].push_back(id);
            ++indegree[id];
        }
    }
    std::vector<NodeId> order;
    order.reserve(n);
    std::vector<NodeId> ready;
    for (NodeId id = 0; id < n; ++id)
        if (indegree[id] == 0)
            ready.push_back(id);
    while (!ready.empty()) {
        NodeId id = ready.back();
        ready.pop_back();
        order.push_back(id);
        for (NodeId user : users[id])
            if (--indegree[user] == 0)
                ready.push_back(user);
    }
    if (order.size() != n)
        fatal("netlist %s has a combinational loop (%zu of %zu nodes "
              "orderable)", nl.name().c_str(), order.size(), n);
    return order;
}

bool
hasCombinationalLoop(const Netlist &nl)
{
    try {
        topoOrder(nl);
        return false;
    } catch (const FatalError &) {
        return true;
    }
}

std::vector<NodeId>
backwardCone(const Netlist &nl, NodeId sink)
{
    std::vector<NodeId> cone;
    std::vector<NodeId> stack{sink};
    std::vector<bool> seen(nl.numNodes(), false);
    seen[sink] = true;
    while (!stack.empty()) {
        NodeId id = stack.back();
        stack.pop_back();
        cone.push_back(id);
        const Node &node = nl.node(id);
        int arity = opArity(node.op);
        for (int i = 0; i < arity; ++i) {
            NodeId opnd = node.operands[i];
            if (!seen[opnd]) {
                seen[opnd] = true;
                stack.push_back(opnd);
            }
        }
    }
    std::sort(cone.begin(), cone.end());
    return cone;
}

std::vector<uint32_t>
fanoutCounts(const Netlist &nl)
{
    std::vector<uint32_t> fanout(nl.numNodes(), 0);
    for (NodeId id = 0; id < nl.numNodes(); ++id) {
        const Node &node = nl.node(id);
        int arity = opArity(node.op);
        for (int i = 0; i < arity; ++i)
            ++fanout[node.operands[i]];
    }
    return fanout;
}

NetlistMetrics
computeMetrics(const Netlist &nl)
{
    NetlistMetrics m;
    m.nodes = nl.numNodes();
    m.registers = nl.numRegisters();
    m.memories = nl.numMemories();
    m.sinks = nl.sinks().size();
    for (NodeId id = 0; id < nl.numNodes(); ++id) {
        Op op = nl.node(id).op;
        if (!isSource(op) && !isSink(op))
            ++m.combNodes;
    }
    for (RegId r = 0; r < nl.numRegisters(); ++r)
        m.regBits += nl.reg(r).width;
    for (MemId mm = 0; mm < nl.numMemories(); ++mm)
        m.memBytes += nl.mem(mm).sizeBytes();
    return m;
}

std::string
describe(const Netlist &nl)
{
    NetlistMetrics m = computeMetrics(nl);
    return strprintf("%s: %zu nodes (%zu comb), %zu regs (%llu bits), "
                     "%zu mems (%llu bytes), %zu sinks",
                     nl.name().c_str(), m.nodes, m.combNodes, m.registers,
                     static_cast<unsigned long long>(m.regBits), m.memories,
                     static_cast<unsigned long long>(m.memBytes), m.sinks);
}

} // namespace parendi::rtl
