/**
 * @file
 * ShardSet: the functional core of every partitioned BSP host
 * execution. A netlist is split into shards (per-IPU-tile processes in
 * IpuMachine, per-host-thread partitions in ParallelInterpreter); each
 * shard's node set is lowered to a private EvalProgram + EvalState, and
 * the ShardSet derives the exchange schedule that keeps replicated
 * state coherent across shards:
 *
 *  - register messages: the owner shard (the one computing RegNext)
 *    sends the latched value to every shard holding a read-only copy;
 *  - write-port broadcasts: each array write port, in global netlist
 *    port order, is re-applied to every replica of the array
 *    (differential exchange — address + data, not the whole array).
 *
 * One simulated cycle (stepCycle) is the BSP sequence
 *
 *    commit broadcasts -> latch registers -> exchange registers ->
 *    evaluate combinational programs
 *
 * and every phase only writes state private to one shard, so each
 * phase parallelizes over shards on a util::BspPool with a barrier
 * between phases. The phase partitioning is chosen so the result is
 * bit-identical at any worker count:
 *
 *  - commit: each shard applies, in ascending global port order, the
 *    broadcasts that have a replica on it. A memory image is owned by
 *    exactly one shard, so colliding ports hit each image in port
 *    order; the owner's address/data/enable slots are read-only during
 *    the phase.
 *  - latch: copies next -> cur of locally owned registers only.
 *  - exchange: sharded by *reader*: each shard copies in every foreign
 *    register it reads. Destination slots are unique per message and
 *    the owner's cur slots are stable after the latch barrier.
 *  - evaluate: purely shard-private.
 *
 * The 4-barrier sequence is the reference semantics; the default
 * execution mode is the *fused* owner-computes superstep (stepCycles),
 * which needs one barrier per cycle. The trick is a double-buffered
 * publish area: at the end of cycle c every shard copies out, for each
 * owned register with foreign readers, the post-eval NEXT value (which
 * is exactly the post-latch value the phased exchange of cycle c+1
 * would deliver) and, for each owned write port, a pre-resolved
 * broadcast record [addr-or-skip, data words] (exactly the values the
 * phased commit of cycle c+1 would read, since nothing runs between
 * eval(c) and commit(c+1)). Cycle c+1 then serves commit and exchange
 * entirely from the stable cycle-c buffer while publishing into the
 * other one, so commit/latch/exchange/eval/publish all run
 * back-to-back per shard with no intervening barrier; a single
 * end-of-cycle barrier flips the buffers. Collision order is
 * preserved because replica application still walks ascending global
 * port order against identical records. Any out-of-band state
 * mutation (poke/reset/restore, or running phased steps in between)
 * invalidates the buffers; the next fused batch republishes from live
 * state.
 */

#ifndef PARENDI_RTL_SHARD_HH
#define PARENDI_RTL_SHARD_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hh"
#include "obs/profiler.hh"
#include "rtl/eval.hh"
#include "rtl/netlist.hh"

namespace parendi::util {
class BspPool;
}

namespace parendi::rtl {

class ShardSet
{
  public:
    /** One register value flowing owner -> reader each cycle. */
    struct RegMessage
    {
        uint32_t ownerShard;
        uint32_t ownerSlot;     ///< cur slot in owner (post-latch value)
        uint32_t readerShard;
        uint32_t readerSlot;
        uint32_t readerReg;     ///< reader program's ProgReg index
        uint16_t words;
        uint32_t bytes;         ///< exchange payload (4B granules)
        uint32_t pubOffset;     ///< value's offset in the publish buffer
    };

    /** One array write port fanned out to every replica. */
    struct PortBroadcast
    {
        uint32_t ownerShard;
        uint32_t addrSlot;
        uint16_t addrWidth;
        uint32_t dataSlot;
        uint32_t enSlot;
        MemId mem;
        uint32_t entryWords;
        uint32_t depth;
        /// Publish-buffer offset of this port's resolved record:
        /// [lanes addrs (each addr or kPubSkip), entryWords * lanes
        /// data words in the state's lane-major order].
        uint32_t pubOffset;
        /// (shard, program-local memory index) of every replica.
        std::vector<std::pair<uint32_t, uint32_t>> replicas;
    };

    /** Publish-record address marker: port disabled or out of range
     *  this cycle — replicas skip the record. */
    static constexpr uint64_t kPubSkip = UINT64_MAX;

    ShardSet() = default;

    /**
     * Build one shard per entry of @p nodeSets (each a topologically
     * ascending node-id list, e.g. a sorted union of fiber cones) and
     * derive the exchange schedule. Every register/memory-write/output
     * sink of @p nl must be covered by some shard. @p lanes > 1 builds
     * a gang: every shard state holds that many replica lanes
     * (lane-major SoA, see EvalState), and the exchange schedule moves
     * all lanes of every message — publish offsets, broadcast records
     * and memcpy extents scale by the lane count while the schedule
     * itself (who talks to whom) is lane-invariant.
     */
    ShardSet(const Netlist &nl,
             const std::vector<std::vector<NodeId>> &nodeSets,
             const LowerOptions &lower, uint32_t lanes = 1);

    // EvalStates hold references into programs_; both live in vectors
    // whose heap buffers are stable, so the set is movable but not
    // copyable.
    ShardSet(ShardSet &&) = default;
    ShardSet &operator=(ShardSet &&) = default;

    size_t size() const { return programs_.size(); }
    const EvalProgram &program(size_t i) const { return programs_[i]; }
    EvalState &state(size_t i) { return *states_[i]; }
    const EvalState &state(size_t i) const { return *states_[i]; }
    /** Replica lanes every shard state steps per cycle (1 = scalar). */
    uint32_t lanes() const { return lanes_; }

    // -- BSP execution (pool == nullptr -> sequential) -------------------

    /** Full cycle: commit -> latch -> exchange -> evaluate. Always
     *  runs the phased (4-barrier) sequence regardless of setFused —
     *  the reference semantics, and the phased A/B path. */
    void stepCycle(util::BspPool *pool);

    /**
     * Run @p n cycles. In fused mode (the default) the whole batch is
     * one pool dispatch: every worker executes its shards'
     * commit/latch/exchange/eval/publish back-to-back each cycle and
     * cycles are separated by a single in-dispatch SpinBarrier — one
     * barrier per cycle instead of four arrival+release pairs, and
     * one pool epoch per *batch* instead of four per cycle. In phased
     * mode — or with a single effective worker, where fusion has no
     * barriers to remove and the in-place phased cycle is cheaper
     * than publishing — this is just n calls to stepCycle.
     * Bit-identical to the phased path at any worker count and batch
     * size.
     */
    void stepCycles(util::BspPool *pool, uint64_t n);

    /** Select fused (single-barrier, default) vs phased execution for
     *  stepCycles. */
    void setFused(bool on);
    bool fused() const { return fused_; }

    /**
     * Enable activity-guarded evaluation on every shard state: eval
     * skips groups whose input cone is unchanged, seeded locally by
     * each shard's latch/commit and across shards by the exchange
     * (received register values are compared before being copied) and
     * commit broadcasts. Returns false — and leaves the always-eval
     * path in place — if any shard program lacks an activity plan.
     * Bit-identical to always-eval in both phased and fused modes.
     */
    bool setActivity(bool on);
    bool activityEnabled() const { return activity_; }

    /** The individual phases, for hosts with bespoke compute phases. */
    void commitBroadcasts(util::BspPool *pool);
    void latchRegisters(util::BspPool *pool);
    void exchangeRegisters(util::BspPool *pool);
    void evalAll(util::BspPool *pool);

    /** Restore initial images and re-evaluate all shards. */
    void reset(util::BspPool *pool);

    // -- Telemetry (obs) -------------------------------------------------

    /**
     * Attach (or detach, with nullptr) a superstep profiler. Every
     * stepCycle() then counts into it and, on sampled cycles,
     * timestamps the four supersteps per worker and the eval duration
     * per shard. The profiler must be sized for at least as many
     * workers as the pool passed to the step calls and for size()
     * shards, and must outlive this attachment.
     */
    void setProfiler(obs::SuperstepProfiler *prof);
    obs::SuperstepProfiler *profiler() const { return prof_; }

    /** Open/close one profiled cycle around individually driven
     *  phases (stepCycle does this itself; hosts with bespoke phase
     *  sequences — the legacy spawn path — call these around theirs). */
    void profileCycleBegin();
    void profileCycleEnd();

    // -- Name-based host access ------------------------------------------

    /** Drive an input on every shard holding it (and re-evaluate those
     *  shards so the poke is combinationally visible). */
    void poke(const std::string &input, const BitVec &value);
    void poke(const std::string &input, uint64_t value);
    BitVec peek(const std::string &output) const;
    BitVec peekRegister(const std::string &reg) const;
    /** Allocation-free peeks into a caller-owned BitVec (the VCD
     *  tracer's per-cycle sampling path). */
    void peekInto(const std::string &output, BitVec &out) const;
    void peekRegisterInto(const std::string &reg, BitVec &out) const;
    /** Read one entry of a memory (from any replica; the exchange
     *  keeps them identical). */
    BitVec peekMemory(const std::string &mem, uint64_t index) const;

    // -- Gang lane access (scalar poke broadcasts; scalar peeks read
    //    lane 0; see core::SimEngine) ------------------------------------
    void pokeLane(const std::string &input, const BitVec &value,
                  uint32_t lane);
    BitVec peekLane(const std::string &output, uint32_t lane) const;
    BitVec peekRegisterLane(const std::string &reg, uint32_t lane) const;
    BitVec peekMemoryLane(const std::string &mem, uint64_t index,
                          uint32_t lane) const;

    /** Serialize every shard's mutable state (count-prefixed). */
    void save(std::ostream &out) const;
    /** Restore a checkpoint from the same compiled configuration. */
    void restore(std::istream &in);

    /**
     * Read the canonical architectural state (netlist-id order, all
     * lanes) out of the shards: owner cur slots for registers, any
     * replica for memories (the exchange keeps them identical), the
     * first replica slot for inputs. Values the partition never placed
     * fall back to their netlist initial value.
     */
    void exportArch(core::ArchState &st) const;

    /**
     * Write an architectural state into the shards: owner register
     * slots, every memory replica and every input replica slot, then
     * one exchange + combinational re-evaluation so reader copies and
     * comb slots match the exporter's at-rest state exactly. Runs
     * sequentially (see the shared-pool contract). fatal() on a shape
     * or width mismatch.
     */
    void importArch(const core::ArchState &st);

    // -- Exchange schedule, for cost accounting --------------------------

    const std::vector<RegMessage> &regMessages() const
    {
        return regMessages_;
    }
    const std::vector<PortBroadcast> &broadcasts() const
    {
        return broadcasts_;
    }
    /** (shard, cur slot) of a register's owner. */
    std::pair<uint32_t, uint32_t> regHome(RegId r) const
    {
        return regHome_[r];
    }

    const Netlist &netlist() const { return *nl_; }

  private:
    /** One owner-side publish entry: a register with foreign readers. */
    struct PubReg
    {
        uint32_t nextSlot;  ///< owner's NEXT slot (post-eval value)
        uint16_t words;
        uint32_t offset;    ///< into the publish buffer
    };

    void buildExchange();
    void commitRange(size_t begin, size_t end);
    void latchRange(size_t begin, size_t end);
    void exchangeRange(size_t begin, size_t end);
    void evalRange(size_t begin, size_t end);
    void evalRangeImpl(size_t begin, size_t end, bool sampled);
    /** Dispatch one superstep over the pool (or sequentially),
     *  timestamping per worker when the profiler samples this cycle. */
    void runPhase(util::BspPool *pool, obs::Phase phase,
                  void (ShardSet::*body)(size_t, size_t));

    // Fused-path bodies. @p parity selects the read buffer; the
    // complementary buffer is written.
    void commitRangeFrom(size_t begin, size_t end,
                         const uint64_t *rd);
    void exchangeRangeFrom(size_t begin, size_t end,
                           const uint64_t *rd);
    void publishRange(size_t begin, size_t end, uint64_t *wr);
    void fusedCycleRange(size_t begin, size_t end, uint32_t worker,
                         bool sampled, uint64_t cycle,
                         uint32_t parity);
    /** (Re)publish every shard's state into the buffer the next fused
     *  cycle reads — the out-of-band path after construction, poke,
     *  reset, restore, or any phased stepping. */
    void publishAll();

    obs::SuperstepProfiler *prof_ = nullptr;
    obs::Counter *ctrInstrs_ = nullptr;
    obs::Counter *ctrExchWords_ = nullptr;
    obs::Counter *ctrNative_ = nullptr;
    obs::Counter *ctrGroupsSkipped_ = nullptr;
    obs::Counter *ctrGroupsTotal_ = nullptr;

    const Netlist *nl_ = nullptr;
    uint32_t lanes_ = 1;
    bool activity_ = false;     ///< activity-guarded eval on all shards
    std::vector<EvalProgram> programs_;
    std::vector<std::unique_ptr<EvalState>> states_;

    /// grouped by reader shard; readerRanges_[s] = [begin, end)
    std::vector<RegMessage> regMessages_;
    std::vector<std::pair<uint32_t, uint32_t>> readerRanges_;
    std::vector<PortBroadcast> broadcasts_;
    /// per shard: (broadcast index ascending, program-local mem index)
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> replicaPlan_;

    // -- Fused-superstep publish schedule --------------------------------
    /// grouped by owner shard; pubRegRanges_[s] = [begin, end)
    std::vector<PubReg> pubRegs_;
    std::vector<std::pair<uint32_t, uint32_t>> pubRegRanges_;
    /// per shard: indices of broadcasts_ it owns (publish order)
    std::vector<std::vector<uint32_t>> pubPortsByShard_;
    /// double-buffered publish area; cycle c reads parity (pubRead_+c)&1
    std::vector<uint64_t> pub_[2];
    uint32_t pubRead_ = 0;
    bool pubValid_ = false;
    bool fused_ = true;
    /// in-dispatch barrier for batched fused cycles (sized lazily to
    /// the pool's worker count)
    std::unique_ptr<util::SpinBarrier> inner_;

    /// input port -> [(shard, slot)] replicas
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> inputSlots_;
    /// output port -> (shard, slot)
    std::vector<std::pair<uint32_t, uint32_t>> outputSlots_;
    /// register -> (shard, cur slot) of its owner
    std::vector<std::pair<uint32_t, uint32_t>> regHome_;
};

} // namespace parendi::rtl

#endif // PARENDI_RTL_SHARD_HH
