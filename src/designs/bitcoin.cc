/**
 * @file
 * SHA-256d miner engines (stand-in for the open-source FPGA bitcoin
 * miner of paper §4.3). Each engine performs one SHA-256 compression
 * round per cycle over a single 512-bit header block whose word 3 is
 * the nonce, then feeds the 256-bit digest through a second
 * compression (SHA-256d), checks the difficulty target, increments the
 * nonce and repeats. The round constants K live in a shared read-only
 * array. All engine registers are similar 32-bit fibers, making the
 * design's fiber population well balanced (paper Fig. 6b).
 */

#include "designs/designs.hh"

#include <array>

#include "designs/common.hh"

namespace parendi::designs {

using namespace rtl;

namespace {

const std::array<uint32_t, 64> kSha256K = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

const std::array<uint32_t, 8> kSha256Iv = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

/** The fixed header block; word 3 is replaced by the nonce. */
const std::array<uint32_t, 16> kHeader = {
    0x02000000, 0x17975b97, 0xc18ed1f7, 0x00000000 /* nonce */,
    0x8a97295a, 0x2247e5a0, 0xb3c4f126, 0xe9d4a713,
    0x80000000, 0x00000000, 0x00000000, 0x00000000,
    0x00000000, 0x00000000, 0x00000000, 0x00000200};

Wire
ror32(Design &d, Wire x, uint32_t n)
{
    (void)d;
    return x.shr(n) | x.shl(32 - n);
}

} // namespace

Netlist
makeBitcoin(const BitcoinConfig &cfg)
{
    if (cfg.engines == 0 || cfg.zeroBits == 0 || cfg.zeroBits > 32)
        fatal("makeBitcoin: bad configuration");
    Design d("bitcoin" + std::to_string(cfg.engines));

    // Shared round-constant ROM.
    MemId krom = d.memory("k_rom", 32, 64);
    {
        std::vector<BitVec> img;
        for (uint32_t k : kSha256K)
            img.emplace_back(32, k);
        d.netlist().initMemory(krom, img);
    }

    std::vector<Wire> founds;
    for (uint32_t e = 0; e < cfg.engines; ++e) {
        std::string px = "e" + std::to_string(e) + "_";
        // State registers: working vars, schedule window, midstate.
        std::array<RegId, 8> hv;  // a..h
        for (int i = 0; i < 8; ++i)
            hv[i] = d.reg(px + std::string(1, static_cast<char>('a' + i)),
                          32, kSha256Iv[i]);
        std::array<RegId, 16> w;
        for (int i = 0; i < 16; ++i)
            w[i] = d.reg(px + "w" + std::to_string(i), 32,
                         i == 3 ? e : kHeader[i]);
        std::array<RegId, 8> mid;
        for (int i = 0; i < 8; ++i)
            mid[i] = d.reg(px + "h" + std::to_string(i), 32,
                           kSha256Iv[i]);
        RegId round = d.reg(px + "round", 7, 0);
        RegId phase = d.reg(px + "phase", 1, 0);
        RegId nonce = d.reg(px + "nonce", 32, e);
        RegId found = d.reg(px + "found", 1, 0);
        RegId dig0 = d.reg(px + "dig0", 32, 0);

        std::array<Wire, 8> v;
        for (int i = 0; i < 8; ++i)
            v[i] = d.read(hv[i]);
        std::array<Wire, 16> wv;
        for (int i = 0; i < 16; ++i)
            wv[i] = d.read(w[i]);
        std::array<Wire, 8> mv;
        for (int i = 0; i < 8; ++i)
            mv[i] = d.read(mid[i]);
        Wire rv = d.read(round);
        Wire pv = d.read(phase);
        Wire nv = d.read(nonce);

        // One compression round.
        Wire kw = d.memRead(krom, rv.slice(0, 6));
        Wire s1 = ror32(d, v[4], 6) ^ ror32(d, v[4], 11) ^
            ror32(d, v[4], 25);
        Wire ch = (v[4] & v[5]) ^ (~v[4] & v[6]);
        Wire temp1 = v[7] + s1 + ch + kw + wv[0];
        Wire s0 = ror32(d, v[0], 2) ^ ror32(d, v[0], 13) ^
            ror32(d, v[0], 22);
        Wire maj = (v[0] & v[1]) ^ (v[0] & v[2]) ^ (v[1] & v[2]);
        Wire temp2 = s0 + maj;

        // Schedule extension: W[t+16].
        Wire sg0 = ror32(d, wv[1], 7) ^ ror32(d, wv[1], 18) ^
            wv[1].shr(3);
        Wire sg1 = ror32(d, wv[14], 17) ^ ror32(d, wv[14], 19) ^
            wv[14].shr(10);
        Wire wnew = sg1 + wv[9] + sg0 + wv[0];

        Wire in_final = eqConst(d, rv, 64);
        Wire next_round = d.mux(in_final, d.lit(7, 0),
                                rv + d.lit(7, 1));
        d.next(round, next_round);

        // Digest at FINAL.
        std::array<Wire, 8> digest;
        for (int i = 0; i < 8; ++i)
            digest[i] = mv[i] + v[i];

        Wire second = pv;   // phase 1 = the second compression
        d.next(phase, d.mux(in_final, ~pv, pv));

        // found / dig0 latched when the second hash completes.
        Wire done2 = in_final & second;
        Wire target_ok =
            eqConst(d, digest[0].shr(32 - cfg.zeroBits), 0);
        d.next(found, d.mux(done2, target_ok, d.read(found)));
        d.next(dig0, d.mux(done2, digest[0], d.read(dig0)));
        Wire next_nonce = d.mux(done2, nv + d.lit(32, 1), nv);
        d.next(nonce, next_nonce);

        // Working variables.
        std::array<Wire, 8> iv_w;
        for (int i = 0; i < 8; ++i)
            iv_w[i] = d.lit(32, kSha256Iv[i]);
        std::array<Wire, 8> round_next = {
            temp1 + temp2, v[0], v[1], v[2],
            v[3] + temp1, v[4], v[5], v[6]};
        for (int i = 0; i < 8; ++i)
            d.next(hv[i], d.mux(in_final, iv_w[i], round_next[i]));

        // Midstate: at FINAL of phase 0 it becomes the first digest's
        // IV for... no: the second hash starts from the standard IV;
        // the first digest becomes the *message*. At FINAL of phase 1
        // everything restarts from the header.
        for (int i = 0; i < 8; ++i)
            d.next(mid[i], d.mux(in_final, iv_w[i], mv[i]));

        // Message schedule window.
        for (int i = 0; i < 16; ++i) {
            Wire shifted = i < 15 ? wv[i + 1] : wnew;
            Wire reload;
            if (i < 8) {
                // phase0 FINAL: digest becomes the 256-bit message.
                Wire hdr = i == 3 ? next_nonce
                                  : d.lit(32, kHeader[i]);
                reload = d.mux(second, hdr, digest[i]);
            } else if (i == 8) {
                reload = d.mux(second, d.lit(32, kHeader[i]),
                               d.lit(32, 0x80000000));
            } else if (i == 15) {
                reload = d.mux(second, d.lit(32, kHeader[i]),
                               d.lit(32, 256));
            } else {
                reload = d.lit(32, kHeader[i]);
            }
            d.next(w[i], d.mux(in_final, reload, shifted));
        }

        founds.push_back(d.read(found));
        if (e == 0) {
            d.output("dig0", d.read(dig0));
            d.output("nonce0", nv);
        }
    }
    Wire any = reduceTree(founds, [](Wire a, Wire b) { return a | b; });
    d.output("found", any);
    return d.finish();
}

} // namespace parendi::designs
