/**
 * @file
 * The "P16" ISA shared by the pico (multicycle) and rocket (pipelined)
 * core generators: a compact 16-register RISC ISA standing in for the
 * RV32I subset the paper's picorv32/rocket benchmarks execute. The
 * module provides an encoder (assembler helpers), a golden
 * instruction-level simulator used to property-test the RTL cores, and
 * a few canned programs.
 *
 * Encoding (32-bit):
 *   [3:0]   opcode      [7:4]   rd
 *   [11:8]  rs1         [15:12] rs2
 *   [31:16] imm16 (sign-extended where used)
 *
 * Semantics:
 *   pc is word-granular. Branches/JAL are pc-relative in words:
 *   pc' = pc + imm. JAL writes rd = pc + 1. HALT spins (pc' = pc).
 *   LW/SW address = (rs1 + imm) mod ramDepth (word addressed).
 *   Shifts use rs2[4:0]. LUI writes imm << 16. r0 is a normal register.
 */

#ifndef PARENDI_DESIGNS_ISA_HH
#define PARENDI_DESIGNS_ISA_HH

#include <cstdint>
#include <vector>

namespace parendi::designs {

enum class Isa : uint8_t {
    Nop = 0,
    Addi,
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Lw,
    Sw,
    Beq,
    Bne,
    Lui,
    Jal,
    Halt,
};

/** Encode one instruction. */
uint32_t encode(Isa op, unsigned rd, unsigned rs1, unsigned rs2,
                int32_t imm16);

// Assembler conveniences.
inline uint32_t asmNop() { return encode(Isa::Nop, 0, 0, 0, 0); }
inline uint32_t
asmAddi(unsigned rd, unsigned rs1, int32_t imm)
{
    return encode(Isa::Addi, rd, rs1, 0, imm);
}
inline uint32_t
asmAdd(unsigned rd, unsigned rs1, unsigned rs2)
{
    return encode(Isa::Add, rd, rs1, rs2, 0);
}
inline uint32_t
asmSub(unsigned rd, unsigned rs1, unsigned rs2)
{
    return encode(Isa::Sub, rd, rs1, rs2, 0);
}
inline uint32_t
asmAnd(unsigned rd, unsigned rs1, unsigned rs2)
{
    return encode(Isa::And, rd, rs1, rs2, 0);
}
inline uint32_t
asmOr(unsigned rd, unsigned rs1, unsigned rs2)
{
    return encode(Isa::Or, rd, rs1, rs2, 0);
}
inline uint32_t
asmXor(unsigned rd, unsigned rs1, unsigned rs2)
{
    return encode(Isa::Xor, rd, rs1, rs2, 0);
}
inline uint32_t
asmSll(unsigned rd, unsigned rs1, unsigned rs2)
{
    return encode(Isa::Sll, rd, rs1, rs2, 0);
}
inline uint32_t
asmSrl(unsigned rd, unsigned rs1, unsigned rs2)
{
    return encode(Isa::Srl, rd, rs1, rs2, 0);
}
inline uint32_t
asmLw(unsigned rd, unsigned rs1, int32_t imm)
{
    return encode(Isa::Lw, rd, rs1, 0, imm);
}
inline uint32_t
asmSw(unsigned rs1, unsigned rs2, int32_t imm)
{
    return encode(Isa::Sw, 0, rs1, rs2, imm);
}
inline uint32_t
asmBeq(unsigned rs1, unsigned rs2, int32_t imm)
{
    return encode(Isa::Beq, 0, rs1, rs2, imm);
}
inline uint32_t
asmBne(unsigned rs1, unsigned rs2, int32_t imm)
{
    return encode(Isa::Bne, 0, rs1, rs2, imm);
}
inline uint32_t
asmLui(unsigned rd, int32_t imm)
{
    return encode(Isa::Lui, rd, 0, 0, imm);
}
inline uint32_t
asmJal(unsigned rd, int32_t imm)
{
    return encode(Isa::Jal, rd, 0, 0, imm);
}
inline uint32_t asmHalt() { return encode(Isa::Halt, 0, 0, 0, 0); }

/** Instruction-level golden model. */
class IsaSim
{
  public:
    IsaSim(std::vector<uint32_t> rom, uint32_t ram_depth);

    /** Execute one instruction (no-op once halted). */
    void step();

    /** Run until halted or @p max_instrs executed. Returns the number
     *  of instructions executed. */
    uint64_t run(uint64_t max_instrs);

    bool halted() const { return halted_; }
    uint32_t pc() const { return pc_; }
    uint32_t reg(unsigned i) const { return regs_[i]; }
    uint32_t ram(uint32_t i) const { return ram_[i % ram_.size()]; }
    const std::vector<uint32_t> &ramImage() const { return ram_; }

  private:
    std::vector<uint32_t> rom_;
    std::vector<uint32_t> ram_;
    uint32_t regs_[16] = {};
    uint32_t pc_ = 0;
    bool halted_ = false;
};

/** Canned test programs (all expect ramDepth >= 64, romDepth >= 64). */

/** Sum 1..n into r1, store to ram[0], halt. */
std::vector<uint32_t> programSum(uint32_t n);

/** Endless mixing loop: LCG-ish hash repeatedly stored to ram
 *  (never halts) — the benchmark workload. */
std::vector<uint32_t> programChurn();

/** Memory-stride test touching ram[0..15], then halt. */
std::vector<uint32_t> programMemory();

/** Deterministic random program of @p n instructions (register ops,
 *  memory ops, and short forward branches), ending in HALT. Always
 *  terminates within a bounded instruction count. */
std::vector<uint32_t> programRandom(uint64_t seed, uint32_t n);

} // namespace parendi::designs

#endif // PARENDI_DESIGNS_ISA_HH
