/**
 * @file
 * Bank of independent xorshift32 PRNGs — the synchronization-latency
 * microbenchmark of paper §4.1 (3 XORs and 3 shifts per generator,
 * one fiber each, zero inter-fiber communication).
 */

#include "designs/designs.hh"

#include "designs/common.hh"
#include "util/rng.hh"

namespace parendi::designs {

using namespace rtl;

Netlist
makePrngBank(uint32_t n)
{
    if (n == 0)
        fatal("makePrngBank: need at least one generator");
    Design d("prng" + std::to_string(n));
    for (uint32_t i = 0; i < n; ++i) {
        RegId s = d.reg("s" + std::to_string(i), 32,
                        0x9e3779b9u ^ (i * 0x85ebca6bu + 1));
        Wire x = d.read(s);
        x = x ^ x.shl(13);
        x = x ^ x.shr(17);
        x = x ^ x.shl(5);
        d.next(s, x);
    }
    // A single observable so tests can sample generator 0; this adds
    // one tiny extra fiber and no inter-generator communication.
    d.output("sample", d.read(0));
    return d.finish();
}

} // namespace parendi::designs
