/**
 * @file
 * Small structural helpers shared by the design generators.
 */

#ifndef PARENDI_DESIGNS_COMMON_HH
#define PARENDI_DESIGNS_COMMON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rtl/dsl.hh"
#include "util/logging.hh"

namespace parendi::designs {

using rtl::Design;
using rtl::Wire;

/** sel-indexed mux tree over items (items.size() must be a power of
 *  two and sel wide enough to index it). */
inline Wire
muxTree(Design &d, Wire sel, const std::vector<Wire> &items)
{
    if (items.empty())
        fatal("muxTree: no items");
    std::vector<Wire> level = items;
    unsigned bit = 0;
    while (level.size() > 1) {
        if (level.size() % 2)
            level.push_back(level.back());
        std::vector<Wire> next;
        Wire s = sel.bit(bit);
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(d.mux(s, level[i + 1], level[i]));
        level = std::move(next);
        ++bit;
    }
    return level[0];
}

/** w == constant. */
inline Wire
eqConst(Design &d, Wire w, uint64_t value)
{
    return w == d.lit(w.width(), value);
}

/** Priority select: first matching (key == case) wins, else dflt. */
inline Wire
matchCase(Design &d, Wire key,
          const std::vector<std::pair<uint64_t, Wire>> &cases, Wire dflt)
{
    Wire out = dflt;
    for (auto it = cases.rbegin(); it != cases.rend(); ++it)
        out = d.mux(eqConst(d, key, it->first), it->second, out);
    return out;
}

/** Binary reduction (e.g. wide adder tree) over a vector of wires. */
template <typename Fn>
Wire
reduceTree(std::vector<Wire> items, Fn &&combine)
{
    if (items.empty())
        fatal("reduceTree: no items");
    while (items.size() > 1) {
        std::vector<Wire> next;
        for (size_t i = 0; i + 1 < items.size(); i += 2)
            next.push_back(combine(items[i], items[i + 1]));
        if (items.size() % 2)
            next.push_back(items.back());
        items = std::move(next);
    }
    return items[0];
}

/** log2 of a power of two. */
inline uint32_t
log2Exact(uint32_t v)
{
    if (v == 0 || (v & (v - 1)))
        fatal("log2Exact: %u is not a power of two", v);
    uint32_t b = 0;
    while ((1u << b) != v)
        ++b;
    return b;
}

} // namespace parendi::designs

#endif // PARENDI_DESIGNS_COMMON_HH
