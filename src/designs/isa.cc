#include "designs/isa.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace parendi::designs {

uint32_t
encode(Isa op, unsigned rd, unsigned rs1, unsigned rs2, int32_t imm16)
{
    if (rd > 15 || rs1 > 15 || rs2 > 15)
        fatal("encode: register out of range");
    uint32_t imm = static_cast<uint32_t>(imm16) & 0xffff;
    return (static_cast<uint32_t>(op) & 0xf) | ((rd & 0xf) << 4) |
        ((rs1 & 0xf) << 8) | ((rs2 & 0xf) << 12) | (imm << 16);
}

IsaSim::IsaSim(std::vector<uint32_t> rom, uint32_t ram_depth)
    : rom_(std::move(rom)), ram_(ram_depth, 0)
{
    if (ram_depth == 0 || (ram_depth & (ram_depth - 1)))
        fatal("IsaSim: ram depth must be a nonzero power of two");
}

void
IsaSim::step()
{
    if (halted_)
        return;
    uint32_t ir = rom_.empty() ? 0 : rom_[pc_ % rom_.size()];
    Isa op = static_cast<Isa>(ir & 0xf);
    unsigned rd = (ir >> 4) & 0xf;
    unsigned rs1 = (ir >> 8) & 0xf;
    unsigned rs2 = (ir >> 12) & 0xf;
    int32_t imm = static_cast<int16_t>(ir >> 16);
    uint32_t a = regs_[rs1];
    uint32_t b = regs_[rs2];
    uint32_t next_pc = pc_ + 1;
    switch (op) {
      case Isa::Nop:
        break;
      case Isa::Addi:
        regs_[rd] = a + static_cast<uint32_t>(imm);
        break;
      case Isa::Add:
        regs_[rd] = a + b;
        break;
      case Isa::Sub:
        regs_[rd] = a - b;
        break;
      case Isa::And:
        regs_[rd] = a & b;
        break;
      case Isa::Or:
        regs_[rd] = a | b;
        break;
      case Isa::Xor:
        regs_[rd] = a ^ b;
        break;
      case Isa::Sll:
        regs_[rd] = a << (b & 31);
        break;
      case Isa::Srl:
        regs_[rd] = a >> (b & 31);
        break;
      case Isa::Lw:
        regs_[rd] =
            ram_[(a + static_cast<uint32_t>(imm)) % ram_.size()];
        break;
      case Isa::Sw:
        ram_[(a + static_cast<uint32_t>(imm)) % ram_.size()] = b;
        break;
      case Isa::Beq:
        if (a == b)
            next_pc = pc_ + static_cast<uint32_t>(imm);
        break;
      case Isa::Bne:
        if (a != b)
            next_pc = pc_ + static_cast<uint32_t>(imm);
        break;
      case Isa::Lui:
        regs_[rd] = static_cast<uint32_t>(imm) << 16;
        break;
      case Isa::Jal:
        regs_[rd] = pc_ + 1;
        next_pc = pc_ + static_cast<uint32_t>(imm);
        break;
      case Isa::Halt:
        halted_ = true;
        next_pc = pc_;
        break;
    }
    pc_ = next_pc;
}

uint64_t
IsaSim::run(uint64_t max_instrs)
{
    uint64_t n = 0;
    while (!halted_ && n < max_instrs) {
        step();
        ++n;
    }
    return n;
}

std::vector<uint32_t>
programSum(uint32_t n)
{
    // r1 = 0; r2 = n; r3 = 0 (i)
    // loop: r3 += 1; r1 += r3; bne r3, r2, loop; sw ram[0] = r1; halt
    std::vector<uint32_t> p;
    p.push_back(asmAddi(1, 0, 0));
    p.push_back(asmXor(1, 1, 1));                     // r1 = 0
    p.push_back(asmXor(3, 3, 3));                     // r3 = 0
    p.push_back(asmXor(2, 2, 2));
    p.push_back(asmAddi(2, 2, static_cast<int32_t>(n))); // r2 = n
    p.push_back(asmAddi(3, 3, 1));                    // loop:
    p.push_back(asmAdd(1, 1, 3));
    p.push_back(asmBne(3, 2, -2));
    p.push_back(asmXor(4, 4, 4));
    p.push_back(asmSw(4, 1, 0));                      // ram[0] = r1
    p.push_back(asmHalt());
    return p;
}

std::vector<uint32_t>
programChurn()
{
    // r1: state, r2: constant multiplier-ish mixer, r4: address.
    std::vector<uint32_t> p;
    p.push_back(asmLui(1, 0x1234));
    p.push_back(asmAddi(1, 1, 0x0567));
    p.push_back(asmLui(2, 0x0019));
    p.push_back(asmAddi(2, 2, 0x0660));
    p.push_back(asmXor(4, 4, 4));
    p.push_back(asmAddi(5, 0, 5));
    // loop:
    p.push_back(asmXor(1, 1, 2));     // mix
    p.push_back(asmSll(3, 1, 5));     // r3 = r1 << 5
    p.push_back(asmAdd(1, 1, 3));
    p.push_back(asmSrl(3, 1, 5));
    p.push_back(asmXor(1, 1, 3));
    p.push_back(asmSw(4, 1, 0));      // ram[r4] = r1
    p.push_back(asmAddi(4, 4, 1));
    p.push_back(asmLw(6, 4, -1));
    p.push_back(asmAdd(2, 2, 6));
    p.push_back(asmJal(7, -9));       // loop forever
    return p;
}

std::vector<uint32_t>
programMemory()
{
    // Write i*i+7 to ram[i] for i in 0..15, then read back the sum
    // into r5, store it at ram[16], halt.
    std::vector<uint32_t> p;
    p.push_back(asmXor(1, 1, 1));     // i
    p.push_back(asmXor(2, 2, 2));     // scratch
    p.push_back(asmAddi(6, 0, 16));
    // wloop:
    p.push_back(asmAdd(2, 1, 0));
    p.push_back(asmSll(3, 1, 10));    // r10 == 0 -> shift 0; use mul-free i*i
    p.push_back(asmXor(3, 3, 3));
    p.push_back(asmXor(7, 7, 7));     // r7 = 0 counter
    // inner multiply by repeated add: r3 += i, i times
    p.push_back(asmBeq(7, 1, 4));     // skip past the jal when r7 == i
    p.push_back(asmAdd(3, 3, 1));
    p.push_back(asmAddi(7, 7, 1));
    p.push_back(asmJal(8, -3));
    p.push_back(asmAddi(3, 3, 7));    // r3 = i*i + 7
    p.push_back(asmSw(1, 3, 0));      // ram[i] = r3
    p.push_back(asmAddi(1, 1, 1));
    p.push_back(asmBne(1, 6, -11));
    // read back
    p.push_back(asmXor(5, 5, 5));
    p.push_back(asmXor(1, 1, 1));
    // rloop:
    p.push_back(asmLw(2, 1, 0));
    p.push_back(asmAdd(5, 5, 2));
    p.push_back(asmAddi(1, 1, 1));
    p.push_back(asmBne(1, 6, -3));
    p.push_back(asmSw(0, 5, 16));     // ram[16] = r5 (r0 assumed 0)
    p.push_back(asmHalt());
    return p;
}

std::vector<uint32_t>
programRandom(uint64_t seed, uint32_t n)
{
    Rng rng(seed ^ 0xabcdef12345ull);
    std::vector<uint32_t> p;
    p.reserve(n + 1);
    for (uint32_t i = 0; i < n; ++i) {
        unsigned rd = 1 + static_cast<unsigned>(rng.below(15));
        unsigned rs1 = static_cast<unsigned>(rng.below(16));
        unsigned rs2 = static_cast<unsigned>(rng.below(16));
        int32_t imm = static_cast<int32_t>(rng.below(64)) - 16;
        switch (rng.below(12)) {
          case 0:
            p.push_back(asmAddi(rd, rs1, imm));
            break;
          case 1:
            p.push_back(asmAdd(rd, rs1, rs2));
            break;
          case 2:
            p.push_back(asmSub(rd, rs1, rs2));
            break;
          case 3:
            p.push_back(asmAnd(rd, rs1, rs2));
            break;
          case 4:
            p.push_back(asmOr(rd, rs1, rs2));
            break;
          case 5:
            p.push_back(asmXor(rd, rs1, rs2));
            break;
          case 6:
            p.push_back(asmSll(rd, rs1, rs2));
            break;
          case 7:
            p.push_back(asmSrl(rd, rs1, rs2));
            break;
          case 8:
            p.push_back(asmLw(rd, rs1, imm));
            break;
          case 9:
            p.push_back(asmSw(rs1, rs2, imm));
            break;
          case 10:
            p.push_back(asmLui(rd, static_cast<int32_t>(
                rng.below(0x10000))));
            break;
          default: {
            // Forward-only branches guarantee termination.
            int32_t fwd = 2 + static_cast<int32_t>(rng.below(4));
            if (rng.below(2))
                p.push_back(asmBeq(rs1, rs2, fwd));
            else
                p.push_back(asmBne(rs1, rs2, fwd));
            break;
          }
        }
    }
    p.push_back(asmHalt());
    // Pad so forward branches beyond the end land on HALTs.
    for (int i = 0; i < 8; ++i)
        p.push_back(asmHalt());
    return p;
}

} // namespace parendi::designs
