/**
 * @file
 * Clock-gated compute bank — the activity-guard A/B benchmark design.
 * A small free-running modulo counter raises `en` one cycle in
 * `period`; each of `units` state registers feeds a heavy
 * combinational pipeline (`rounds` of xorshift-multiply) whose result
 * is latched only while `en` is high. The unit states therefore
 * change on one cycle per period, and on every other cycle the heavy
 * cones are combinationally idle: an activity-guarded engine skips
 * them, an always-eval engine grinds through them for an unchanged
 * answer. The control counter itself stays tiny so the guarded
 * residue is a few instructions per cycle.
 */

#include "designs/designs.hh"

#include "designs/common.hh"

namespace parendi::designs {

using namespace rtl;

Netlist
makeGated(const GatedConfig &cfg)
{
    if (cfg.units == 0)
        fatal("makeGated: need at least one unit");
    if (cfg.period < 2)
        fatal("makeGated: period must be at least 2 cycles");
    Design d("gated" + std::to_string(cfg.units));

    // Control: the counter is the only state that changes every
    // cycle. The enable is REGISTERED (as a real clock gate's enable
    // is): the activity sweep's value-precise cut points are the
    // latched registers, so a registered enable re-dirties the unit
    // muxes only on the two toggle cycles per period, where a
    // combinational `ctr == K-1` would re-mark them every cycle
    // (the producer group executes every cycle and successor marking
    // is unconditional; see DESIGN.md "Activity-aware execution").
    RegId ctr = d.reg("ctr", 8, 0);
    Wire c = d.read(ctr);
    Wire wrap = eqConst(d, c, cfg.period - 1);
    d.next(ctr, d.mux(wrap, d.lit(8, 0), c + d.lit(8, 1)));
    RegId enReg = d.reg("en", 1, 0);
    d.next(enReg, wrap);
    Wire en = d.read(enReg);

    std::vector<Wire> states;
    states.reserve(cfg.units);
    for (uint32_t i = 0; i < cfg.units; ++i) {
        RegId s = d.reg("u" + std::to_string(i), 32,
                        0x2545f491u ^ (i * 0x9e3779b9u + 1));
        Wire cur = d.read(s);
        Wire x = cur;
        for (uint32_t r = 0; r < cfg.rounds; ++r) {
            x = x ^ x.shl(13);
            x = x ^ x.shr(17);
            x = x ^ x.shl(5);
            x = x * d.lit(32, 0x2545f491u + 2 * r);
        }
        d.next(s, d.mux(en, x, cur));
        states.push_back(cur);
    }
    // One observable digest over all unit states; its xor tree only
    // re-evaluates on the cycle after an enable pulse.
    d.output("digest",
             reduceTree(states, [](Wire a, Wire b) { return a ^ b; }));
    d.output("en", en);
    return d.finish();
}

} // namespace parendi::designs
