/**
 * @file
 * Processor core generators: "pico", a multicycle P16 core standing in
 * for picorv32 (paper §4.3), and "rocket", a 5-stage pipelined P16
 * core with forwarding and hazard stalls standing in for the small
 * Rocket configuration. Both are buildable as standalone netlists or
 * embedded into larger SoCs (the srN/lrN meshes).
 */

#ifndef PARENDI_DESIGNS_CORES_HH
#define PARENDI_DESIGNS_CORES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/dsl.hh"

namespace parendi::designs {

struct CoreConfig
{
    std::string prefix;                 ///< register/memory name prefix
    uint32_t romDepth = 64;             ///< power of two
    uint32_t ramDepth = 64;             ///< power of two
    std::vector<uint32_t> program;      ///< ROM image (P16 encoding)
};

/** Observable wires of an embedded core. */
struct CoreIo
{
    rtl::Wire halted;   ///< 1 bit, sticky
    rtl::Wire pc;       ///< 32 bits
    rtl::Wire probe;    ///< 32 bits: architectural r1 (payload source)
    rtl::MemId ram;     ///< the data RAM (for test inspection)
};

/** Build a multicycle core into @p d; returns its observables. */
CoreIo buildPicoCore(rtl::Design &d, const CoreConfig &cfg);

/** Build a 5-stage pipelined core into @p d. When @p with_mul is true
 *  a multiplier datapath is added (the "large" core flavour). */
CoreIo buildRocketCore(rtl::Design &d, const CoreConfig &cfg,
                       bool with_mul = false);

/** Standalone wrappers: the paper's pico / rocket benchmarks with a
 *  Verilog-style driver (outputs: halted, pc, probe). */
rtl::Netlist makePico(const CoreConfig &cfg);
rtl::Netlist makeRocket(const CoreConfig &cfg, bool with_mul = false);

/** Default benchmark configuration running the endless churn loop. */
CoreConfig defaultCoreConfig(const std::string &prefix = "");

} // namespace parendi::designs

#endif // PARENDI_DESIGNS_CORES_HH
