/**
 * @file
 * The srN / lrN mesh-NoC SoCs (paper §6): an N x N mesh of XY-routed
 * wormhole-free (single-flit) routers. Every node hosts either a
 * processor core with a network interface (NI) that injects
 * round-robin traffic, or (three corner nodes) an "uncore" responder
 * that bounces packets back to their source. srN uses the multicycle
 * pico core; lrN uses the pipelined rocket core with the multiplier
 * datapath, larger memories and a wider flit payload.
 *
 * Router microarchitecture: five two-deep input FIFOs (N/E/S/W/L),
 * dimension-ordered (XY) routing on the FIFO heads, *rotating*-
 * priority arbitration per output (a shared rotation counter walks the
 * five ports), credit-free conservative flow control (a hop fires only
 * when the downstream FIFO's tail slot was free at the start of the
 * cycle; ejection always accepts), and per-port arrival counters.
 * Flits are never dropped in the network; the test suite checks
 * conservation (tx == rx + in-flight).
 */

#include "designs/designs.hh"

#include <array>

#include "designs/common.hh"
#include "designs/isa.hh"

namespace parendi::designs {

using namespace rtl;

namespace {

constexpr int kN = 0, kE = 1, kS = 2, kW = 3, kL = 4;
constexpr uint32_t kCoordBits = 4;

/** Direction of the facing port on the neighbor. */
int
opposite(int dir)
{
    switch (dir) {
      case kN: return kS;
      case kE: return kW;
      case kS: return kN;
      case kW: return kE;
      default: return kL;
    }
}

struct FlitFields
{
    Wire valid, dx, dy, sx, sy, payload;
};

} // namespace

Netlist
makeMesh(const MeshConfig &cfg)
{
    uint32_t n = cfg.n;
    if (n < 2 || n > 15)
        fatal("makeMesh: mesh size %u outside [2,15]", n);
    if (cfg.injectPeriod == 0 || cfg.injectPeriod > 255)
        fatal("makeMesh: inject period %u outside [1,255]",
              cfg.injectPeriod);
    bool large = cfg.core == MeshCore::Large;
    uint32_t pw = large ? 64 : 16;                 // payload bits
    uint32_t fw = 1 + 4 * kCoordBits + pw;         // flit width

    Design d((large ? "lr" : "sr") + std::to_string(n));

    auto flit_fields = [&](Wire f) {
        FlitFields ff;
        ff.valid = f.bit(0);
        ff.dx = f.slice(1, kCoordBits);
        ff.dy = f.slice(1 + kCoordBits, kCoordBits);
        ff.sx = f.slice(1 + 2 * kCoordBits, kCoordBits);
        ff.sy = f.slice(1 + 3 * kCoordBits, kCoordBits);
        ff.payload = f.slice(1 + 4 * kCoordBits, pw);
        return ff;
    };
    auto make_flit = [&](Wire valid, Wire dx, Wire dy, Wire sx, Wire sy,
                         Wire payload) {
        // payload ++ sy ++ sx ++ dy ++ dx ++ valid
        return payload.concat(sy).concat(sx).concat(dy).concat(dx)
            .concat(valid);
    };
    Wire zero_flit = d.lit(BitVec(fw, uint64_t{0}));

    struct Node
    {
        // Two-deep FIFO per input port: e0 = head, e1 = tail.
        std::array<RegId, 5> e0Reg, e1Reg;
        std::array<Wire, 5> e0, e1;
        std::array<Wire, 5> headValid, tailValid;
        std::array<std::array<Wire, 5>, 5> req;    // req[p][o]
        std::array<std::array<Wire, 5>, 5> grant;  // grant[p][o]
        std::array<Wire, 5> outReq;                // any grant for o
        std::array<Wire, 5> outFlit;
        std::array<Wire, 5> win;                   // head p drains
        bool uncore = false;
        CoreIo core;
        RegId rr;                                  // rotation counter
        RegId txCount, rxCount, rxAcc, pending, injCnt, destX, destY;
        std::array<RegId, 5> arrCount;             // per-port arrivals
    };
    std::vector<Node> nodes(n * n);
    auto at = [&](uint32_t x, uint32_t y) -> Node & {
        return nodes[y * n + x];
    };
    auto is_uncore = [&](uint32_t x, uint32_t y) {
        return (x == 0 && y == 0) || (x == 1 && y == 0) ||
            (x == 0 && y == 1);
    };
    static const char *kPortName[5] = {"bn", "be", "bs", "bw", "bl"};

    // ---- Pass 1: state elements and cores ------------------------------
    for (uint32_t y = 0; y < n; ++y) {
        for (uint32_t x = 0; x < n; ++x) {
            Node &nd = at(x, y);
            std::string px =
                "n" + std::to_string(x) + "_" + std::to_string(y) + "_";
            for (int p = 0; p < 5; ++p) {
                nd.e0Reg[p] = d.reg(px + kPortName[p] + "0",
                                    static_cast<uint16_t>(fw), 0);
                nd.e1Reg[p] = d.reg(px + kPortName[p] + "1",
                                    static_cast<uint16_t>(fw), 0);
                nd.e0[p] = d.read(nd.e0Reg[p]);
                nd.e1[p] = d.read(nd.e1Reg[p]);
                nd.headValid[p] = nd.e0[p].bit(0);
                nd.tailValid[p] = nd.e1[p].bit(0);
                nd.arrCount[p] = d.reg(
                    px + "arr_" + kPortName[p], 16, 0);
            }
            nd.rr = d.reg(px + "rr", 3, (x + 2 * y) % 5);
            nd.txCount = d.reg(px + "tx", 32, 0);
            nd.rxCount = d.reg(px + "rx", 32, 0);
            nd.rxAcc = d.reg(px + "rxacc", static_cast<uint16_t>(pw), 0);
            nd.uncore = is_uncore(x, y);
            if (nd.uncore) {
                nd.pending = d.reg(px + "pending",
                                   static_cast<uint16_t>(fw), 0);
            } else {
                CoreConfig cc;
                cc.prefix = px + "c_";
                cc.romDepth = large ? 128 : 64;
                cc.ramDepth = large ? 256 : 64;
                cc.program = programChurn();
                nd.core = large ? buildRocketCore(d, cc, true)
                                : buildPicoCore(d, cc);
                nd.injCnt = d.reg(px + "injcnt", 8, (x + y) %
                                  cfg.injectPeriod);
                nd.destX = d.reg(px + "destx", kCoordBits, (x + 1) % n);
                nd.destY = d.reg(px + "desty", kCoordBits, y);
            }
        }
    }

    // ---- Pass 2: routing and rotating-priority arbitration --------------
    for (uint32_t y = 0; y < n; ++y) {
        for (uint32_t x = 0; x < n; ++x) {
            Node &nd = at(x, y);
            Wire myx = d.lit(kCoordBits, x);
            Wire myy = d.lit(kCoordBits, y);
            for (int p = 0; p < 5; ++p) {
                FlitFields f = flit_fields(nd.e0[p]);
                Wire eqx = f.dx == myx;
                Wire eqy = f.dy == myy;
                Wire v = nd.headValid[p];
                nd.req[p][kE] = v & myx.ult(f.dx);
                nd.req[p][kW] = v & f.dx.ult(myx);
                nd.req[p][kS] = v & eqx & myy.ult(f.dy);
                nd.req[p][kN] = v & eqx & f.dy.ult(myy);
                nd.req[p][kL] = v & eqx & eqy;
            }
            // Rotation predicate per possible offset.
            Wire rr_v = d.read(nd.rr);
            std::array<Wire, 5> rr_is;
            for (int r = 0; r < 5; ++r)
                rr_is[r] = eqConst(d, rr_v, r);
            d.next(nd.rr, d.mux(eqConst(d, rr_v, 4), d.lit(3, 0),
                                rr_v + d.lit(3, 1)));

            for (int o = 0; o < 5; ++o) {
                // Grant chains for each of the 5 rotations, then
                // select by the rotation counter.
                std::array<std::array<Wire, 5>, 5> gr; // gr[r][p]
                for (int r = 0; r < 5; ++r) {
                    Wire blocked = d.lit(1, 0);
                    for (int i = 0; i < 5; ++i) {
                        int p = (r + i) % 5;
                        gr[r][p] = nd.req[p][o] & ~blocked;
                        blocked = blocked | nd.req[p][o];
                    }
                }
                for (int p = 0; p < 5; ++p) {
                    Wire g = d.lit(1, 0);
                    for (int r = 0; r < 5; ++r)
                        g = g | (rr_is[r] & gr[r][p]);
                    nd.grant[p][o] = g;
                }
                Wire any = d.lit(1, 0);
                Wire flit = zero_flit;
                for (int p = 0; p < 5; ++p) {
                    any = any | nd.grant[p][o];
                    flit = d.mux(nd.grant[p][o], nd.e0[p], flit);
                }
                nd.outReq[o] = any;
                nd.outFlit[o] = flit;
            }
        }
    }

    // ---- Pass 3: transfers, FIFO updates, NIs ---------------------------
    auto neighbor = [&](uint32_t x, uint32_t y, int o, uint32_t &nx,
                        uint32_t &ny) -> bool {
        int64_t tx = x, ty = y;
        switch (o) {
          case kN: ty -= 1; break;
          case kS: ty += 1; break;
          case kE: tx += 1; break;
          case kW: tx -= 1; break;
          default: return false;
        }
        if (tx < 0 || ty < 0 || tx >= static_cast<int64_t>(n) ||
            ty >= static_cast<int64_t>(n))
            return false;
        nx = static_cast<uint32_t>(tx);
        ny = static_cast<uint32_t>(ty);
        return true;
    };

    std::vector<Wire> tx_reads, rx_reads;
    for (uint32_t y = 0; y < n; ++y) {
        for (uint32_t x = 0; x < n; ++x) {
            Node &nd = at(x, y);
            // transferOk[o]: downstream tail slot free (ejection
            // always accepts).
            std::array<Wire, 5> transfer_ok;
            for (int o = 0; o < 5; ++o) {
                if (o == kL) {
                    transfer_ok[o] = d.lit(1, 1);
                    continue;
                }
                uint32_t nx2, ny2;
                if (neighbor(x, y, o, nx2, ny2)) {
                    Node &nb = at(nx2, ny2);
                    transfer_ok[o] = ~nb.tailValid[opposite(o)];
                } else {
                    transfer_ok[o] = d.lit(1, 0);
                }
            }
            for (int p = 0; p < 5; ++p) {
                Wire w = d.lit(1, 0);
                for (int o = 0; o < 5; ++o)
                    w = w | (nd.grant[p][o] & transfer_ok[o]);
                nd.win[p] = w;
            }

            // Ejection (output L).
            Wire eject_v = nd.outReq[kL];
            FlitFields ef = flit_fields(nd.outFlit[kL]);
            d.next(nd.rxCount,
                   d.read(nd.rxCount) +
                       d.mux(eject_v, d.lit(32, 1), d.lit(32, 0)));
            d.next(nd.rxAcc, d.read(nd.rxAcc) ^
                   d.mux(eject_v, ef.payload,
                         d.lit(BitVec(pw, uint64_t{0}))));
            rx_reads.push_back(d.read(nd.rxCount));

            // FIFO updates for the four mesh ports.
            auto fifo_update = [&](int p, Wire enq, Wire inc_flit) {
                Wire deq = nd.headValid[p] & nd.win[p];
                Wire inc = d.mux(enq, inc_flit, zero_flit);
                Wire e0n = d.mux(
                    deq, d.mux(nd.tailValid[p], nd.e1[p], inc),
                    d.mux(nd.headValid[p], nd.e0[p], inc));
                Wire e1n = d.mux(
                    deq, zero_flit,
                    d.mux(nd.headValid[p] & ~nd.tailValid[p], inc,
                          d.mux(nd.tailValid[p], nd.e1[p],
                                zero_flit)));
                d.next(nd.e0Reg[p], e0n);
                d.next(nd.e1Reg[p], e1n);
                d.next(nd.arrCount[p],
                       d.read(nd.arrCount[p]) +
                           d.mux(enq, d.lit(16, 1), d.lit(16, 0)));
            };

            for (int p = 0; p < 5; ++p) {
                if (p == kL)
                    continue;
                Wire enq = d.lit(1, 0);
                Wire inc = zero_flit;
                uint32_t nx2, ny2;
                if (neighbor(x, y, p, nx2, ny2)) {
                    Node &nb = at(nx2, ny2);
                    int o = opposite(p); // their output facing us
                    enq = nb.outReq[o] & ~nd.tailValid[p];
                    inc = nb.outFlit[o];
                }
                fifo_update(p, enq, inc);
            }

            // Local port: injection from the NI. Only the tail-free
            // condition gates injection (same rule as the links).
            Wire slot_free = ~nd.tailValid[kL];
            Wire inj_flit = zero_flit;
            Wire do_inject = d.lit(1, 0);
            if (nd.uncore) {
                Wire pend = d.read(nd.pending);
                Wire pend_v = pend.bit(0);
                do_inject = pend_v & slot_free;
                inj_flit = pend;
                // Reply to the source of an ejected flit; if a new
                // ejection races a still-pending reply, the newer one
                // replaces it (the old rx was already counted).
                Wire reply = make_flit(
                    d.lit(1, 1), ef.sx, ef.sy, d.lit(kCoordBits, x),
                    d.lit(kCoordBits, y),
                    ef.payload + d.lit(static_cast<uint16_t>(pw), 1));
                d.next(nd.pending,
                       d.mux(eject_v, reply,
                             d.mux(do_inject, zero_flit, pend)));
            } else {
                Wire cnt = d.read(nd.injCnt);
                Wire fire = eqConst(d, cnt, 0);
                do_inject = fire & slot_free;
                d.next(nd.injCnt,
                       d.mux(do_inject,
                             d.lit(8, cfg.injectPeriod - 1),
                             d.mux(fire, cnt, cnt - d.lit(8, 1))));
                Wire dx = d.read(nd.destX);
                Wire dy = d.read(nd.destY);
                Wire payload = nd.core.probe.resize(
                    static_cast<uint16_t>(pw));
                inj_flit = make_flit(d.lit(1, 1), dx, dy,
                                     d.lit(kCoordBits, x),
                                     d.lit(kCoordBits, y), payload);
                // Round-robin destination walk.
                Wire x_wrap = eqConst(d, dx, n - 1);
                Wire dx_next = d.mux(x_wrap, d.lit(kCoordBits, 0),
                                     dx + d.lit(kCoordBits, 1));
                Wire y_wrap = eqConst(d, dy, n - 1);
                Wire dy_next =
                    d.mux(y_wrap, d.lit(kCoordBits, 0),
                          dy + d.lit(kCoordBits, 1));
                d.next(nd.destX, d.mux(do_inject, dx_next, dx));
                d.next(nd.destY, d.mux(do_inject & x_wrap, dy_next, dy));
            }
            fifo_update(kL, do_inject, inj_flit);
            d.next(nd.txCount,
                   d.read(nd.txCount) +
                       d.mux(do_inject, d.lit(32, 1), d.lit(32, 0)));
            tx_reads.push_back(d.read(nd.txCount));
        }
    }

    Wire tx_total =
        reduceTree(tx_reads, [](Wire a, Wire b) { return a + b; });
    Wire rx_total =
        reduceTree(rx_reads, [](Wire a, Wire b) { return a + b; });
    d.output("tx_total", tx_total);
    d.output("rx_total", rx_total);
    return d.finish();
}

Netlist
makeSr(uint32_t n)
{
    MeshConfig cfg;
    cfg.n = n;
    cfg.core = MeshCore::Small;
    return makeMesh(cfg);
}

Netlist
makeLr(uint32_t n)
{
    MeshConfig cfg;
    cfg.n = n;
    cfg.core = MeshCore::Large;
    return makeMesh(cfg);
}

} // namespace parendi::designs
