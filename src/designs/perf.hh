/**
 * @file
 * A performance-monitoring unit attached to both processor cores:
 * 64-bit cycle and instret CSRs, a 16-entry x 2-bit branch history
 * table with saturating counters (predict at resolve-index, compare
 * with the actual outcome), predictor hit/miss counters, and one
 * client-supplied event counter. Real RISC cores carry exactly this
 * kind of uncore state, and each BHT entry's fiber drags the decode
 * and branch-resolution cone with it — fattening the core's fiber
 * population the way picorv32/rocket's control bits do in the paper.
 */

#ifndef PARENDI_DESIGNS_PERF_HH
#define PARENDI_DESIGNS_PERF_HH

#include <string>

#include "designs/common.hh"

namespace parendi::designs {

/**
 * Attach the monitoring unit.
 * @param retire       1-bit: an instruction retires this cycle
 * @param resolve      1-bit: a conditional branch resolves this cycle
 * @param taken        1-bit: its outcome (valid when resolve)
 * @param index        4-bit: BHT index (e.g. low PC bits)
 * @param event        1-bit: client event to count (e.g. stall)
 */
inline void
buildPerfUnit(Design &d, const std::string &px, Wire retire,
              Wire resolve, Wire taken, Wire index, Wire event)
{
    using rtl::RegId;

    RegId cyc = d.reg(px + "csr_cycle", 64, 0);
    d.next(cyc, d.read(cyc) + d.lit(64, 1));
    RegId ret = d.reg(px + "csr_instret", 64, 0);
    d.next(ret, d.read(ret) +
           d.mux(retire, d.lit(64, 1), d.lit(64, 0)));
    RegId evc = d.reg(px + "csr_event", 32, 0);
    d.next(evc, d.read(evc) +
           d.mux(event, d.lit(32, 1), d.lit(32, 0)));

    // 16-entry, 2-bit saturating-counter branch history table.
    std::vector<Wire> entries;
    for (unsigned i = 0; i < 16; ++i) {
        RegId e = d.reg(px + "bht" + std::to_string(i), 2, 1);
        Wire v = d.read(e);
        Wire sel = resolve & eqConst(d, index, i);
        Wire inc = d.mux(eqConst(d, v, 3), v, v + d.lit(2, 1));
        Wire dec = d.mux(eqConst(d, v, 0), v, v - d.lit(2, 1));
        d.next(e, d.mux(sel, d.mux(taken, inc, dec), v));
        entries.push_back(v);
    }

    // Prediction = counter MSB at the resolving index.
    Wire pred = muxTree(d, index, entries).bit(1);
    Wire correct = resolve & (pred == taken);
    Wire wrong = resolve & (pred != taken);
    RegId hits = d.reg(px + "bp_hits", 32, 0);
    d.next(hits, d.read(hits) +
           d.mux(correct, d.lit(32, 1), d.lit(32, 0)));
    RegId miss = d.reg(px + "bp_miss", 32, 0);
    d.next(miss, d.read(miss) +
           d.mux(wrong, d.lit(32, 1), d.lit(32, 0)));
}

} // namespace parendi::designs

#endif // PARENDI_DESIGNS_PERF_HH
