/**
 * @file
 * The "rocket" core: a 5-stage in-order pipeline (IF/ID/EX/MEM/WB)
 * over the P16 ISA with ID-time forwarding from EX/MEM and MEM/WB,
 * hazard stalls (ALU-use: 1 bubble, load-use: up to 2), and EX-resolved
 * branches with a 2-cycle flush. The optional multiplier datapath
 * models the "large" core flavour of the lrN meshes.
 */

#include "designs/cores.hh"

#include "designs/common.hh"
#include "designs/isa.hh"
#include "designs/perf.hh"

namespace parendi::designs {

using namespace rtl;

namespace {

std::vector<BitVec>
romImage(const CoreConfig &cfg)
{
    if (cfg.program.size() > cfg.romDepth)
        fatal("core %s: program (%zu words) exceeds ROM depth %u",
              cfg.prefix.c_str(), cfg.program.size(), cfg.romDepth);
    std::vector<BitVec> img;
    img.reserve(cfg.romDepth);
    for (uint32_t w : cfg.program)
        img.emplace_back(32, w);
    while (img.size() < cfg.romDepth)
        img.emplace_back(32, asmHalt());
    return img;
}

struct Decode
{
    Wire op, rd, rs1, rs2, imm;
    Wire writesRd, isLoad, isStore;
};

Decode
decode(Design &d, Wire ir)
{
    Decode dec;
    dec.op = ir.slice(0, 4);
    dec.rd = ir.slice(4, 4);
    dec.rs1 = ir.slice(8, 4);
    dec.rs2 = ir.slice(12, 4);
    dec.imm = ir.slice(16, 16).sext(32);
    auto is = [&](Isa k) {
        return eqConst(d, dec.op, static_cast<uint64_t>(k));
    };
    dec.writesRd = is(Isa::Addi) | is(Isa::Add) | is(Isa::Sub) |
        is(Isa::And) | is(Isa::Or) | is(Isa::Xor) | is(Isa::Sll) |
        is(Isa::Srl) | is(Isa::Lw) | is(Isa::Lui) | is(Isa::Jal);
    dec.isLoad = is(Isa::Lw);
    dec.isStore = is(Isa::Sw);
    return dec;
}

} // namespace

CoreIo
buildRocketCore(Design &d, const CoreConfig &cfg, bool with_mul)
{
    const std::string &px = cfg.prefix;
    uint32_t rom_bits = log2Exact(cfg.romDepth);
    uint32_t ram_bits = log2Exact(cfg.ramDepth);

    MemId rom = d.memory(px + "rom", 32, cfg.romDepth);
    d.netlist().initMemory(rom, romImage(cfg));
    MemId ram = d.memory(px + "ram", 32, cfg.ramDepth);

    // Pipeline state.
    RegId pc = d.reg(px + "pc", 32);
    RegId fd_v = d.reg(px + "fd_v", 1);
    RegId fd_ir = d.reg(px + "fd_ir", 32);
    RegId fd_pc = d.reg(px + "fd_pc", 32);
    RegId dx_v = d.reg(px + "dx_v", 1);
    RegId dx_ir = d.reg(px + "dx_ir", 32);
    RegId dx_pc = d.reg(px + "dx_pc", 32);
    RegId dx_a = d.reg(px + "dx_a", 32);
    RegId dx_b = d.reg(px + "dx_b", 32);
    RegId xm_v = d.reg(px + "xm_v", 1);
    RegId xm_ir = d.reg(px + "xm_ir", 32);
    RegId xm_alu = d.reg(px + "xm_alu", 32);
    RegId xm_store = d.reg(px + "xm_store", 32);
    RegId mw_v = d.reg(px + "mw_v", 1);
    RegId mw_ir = d.reg(px + "mw_ir", 32);
    RegId mw_val = d.reg(px + "mw_val", 32);
    RegId halted_r = d.reg(px + "halted", 1);
    std::vector<RegId> xr;
    for (int i = 0; i < 16; ++i)
        xr.push_back(d.reg(px + "x" + std::to_string(i), 32));

    Wire pc_v = d.read(pc);
    Wire fdv = d.read(fd_v), fdi = d.read(fd_ir), fdp = d.read(fd_pc);
    Wire dxv = d.read(dx_v), dxi = d.read(dx_ir), dxp = d.read(dx_pc);
    Wire dxa = d.read(dx_a), dxb = d.read(dx_b);
    Wire xmv = d.read(xm_v), xmi = d.read(xm_ir), xma = d.read(xm_alu);
    Wire xms = d.read(xm_store);
    Wire mwv = d.read(mw_v), mwi = d.read(mw_ir), mwl = d.read(mw_val);
    Wire halt_v = d.read(halted_r);
    std::vector<Wire> x;
    for (int i = 0; i < 16; ++i)
        x.push_back(d.read(xr[i]));

    Decode id = decode(d, fdi);   // instruction in ID
    Decode ex = decode(d, dxi);   // instruction in EX
    Decode mm = decode(d, xmi);   // instruction in MEM
    Decode wb = decode(d, mwi);   // instruction in WB

    Wire one = d.lit(32, 1);
    auto ex_is = [&](Isa k) {
        return eqConst(d, ex.op, static_cast<uint64_t>(k));
    };

    // ---- ID: register read with forwarding ---------------------------
    auto forwarded = [&](Wire rs) {
        Wire raw = muxTree(d, rs, x);
        Wire from_mw = mwv & wb.writesRd & (wb.rd == rs);
        Wire v = d.mux(from_mw, mwl, raw);
        Wire from_xm = xmv & mm.writesRd & ~mm.isLoad & (mm.rd == rs);
        return d.mux(from_xm, xma, v);
    };
    Wire id_a = forwarded(id.rs1);
    Wire id_b = forwarded(id.rs2);

    // Hazards: producer in EX (any), or load in MEM.
    Wire dep_dx = dxv & ex.writesRd &
        ((ex.rd == id.rs1) | (ex.rd == id.rs2));
    Wire dep_xm_load = xmv & mm.isLoad &
        ((mm.rd == id.rs1) | (mm.rd == id.rs2));
    Wire stall = fdv & (dep_dx | dep_xm_load);

    // ---- EX: ALU, branch resolution, halt -----------------------------
    Wire shamt = dxb.slice(0, 5);
    Wire add_ai = dxa + ex.imm;
    Wire alu = matchCase(
        d, ex.op,
        {
            {static_cast<uint64_t>(Isa::Addi), add_ai},
            {static_cast<uint64_t>(Isa::Add), dxa + dxb},
            {static_cast<uint64_t>(Isa::Sub), dxa - dxb},
            {static_cast<uint64_t>(Isa::And), dxa & dxb},
            {static_cast<uint64_t>(Isa::Or), dxa | dxb},
            {static_cast<uint64_t>(Isa::Xor), dxa ^ dxb},
            {static_cast<uint64_t>(Isa::Sll), dxa << shamt},
            {static_cast<uint64_t>(Isa::Srl), dxa >> shamt},
            {static_cast<uint64_t>(Isa::Lw), add_ai},
            {static_cast<uint64_t>(Isa::Sw), add_ai},
            {static_cast<uint64_t>(Isa::Lui), ex.imm.shl(16)},
            {static_cast<uint64_t>(Isa::Jal), dxp + one},
        },
        d.lit(32, 0));

    Wire taken = dxv &
        ((ex_is(Isa::Beq) & (dxa == dxb)) |
         (ex_is(Isa::Bne) & (dxa != dxb)) | ex_is(Isa::Jal));
    Wire target = dxp + ex.imm;
    Wire halt_now = dxv & ex_is(Isa::Halt);
    Wire redirect = taken | halt_now;

    // ---- Next-state: front end ----------------------------------------
    // Priority: already halted > halting now (snap pc to the halt
    // instruction, matching the ISA model) > taken branch > stall.
    Wire frozen = halt_v | halt_now;
    d.next(pc,
           d.mux(halt_v, pc_v,
                 d.mux(halt_now, dxp,
                       d.mux(taken, target,
                             d.mux(stall, pc_v, pc_v + one)))));

    Wire rom_data = d.memRead(rom, pc_v.slice(0, rom_bits));
    Wire fetch_v = ~frozen & ~redirect;
    d.next(fd_v, d.mux(stall & ~redirect & ~frozen, fdv, fetch_v));
    d.next(fd_ir, d.mux(stall | redirect | frozen, fdi, rom_data));
    d.next(fd_pc, d.mux(stall | redirect | frozen, fdp, pc_v));

    // ---- Next-state: ID/EX ---------------------------------------------
    Wire issue = fdv & ~stall & ~redirect;
    d.next(dx_v, issue);
    d.next(dx_ir, d.mux(issue, fdi, dxi));
    d.next(dx_pc, d.mux(issue, fdp, dxp));
    d.next(dx_a, d.mux(issue, id_a, dxa));
    d.next(dx_b, d.mux(issue, id_b, dxb));

    // ---- Next-state: EX/MEM ----------------------------------------------
    d.next(xm_v, dxv & ~halt_now);
    d.next(xm_ir, d.mux(dxv, dxi, xmi));
    d.next(xm_alu, d.mux(dxv, alu, xma));
    d.next(xm_store, d.mux(dxv, dxb, xms));

    // ---- MEM --------------------------------------------------------------
    Wire ram_addr = xma.slice(0, ram_bits);
    Wire ram_data = d.memRead(ram, ram_addr);
    d.memWrite(ram, ram_addr, xms, xmv & mm.isStore);
    d.next(mw_v, xmv);
    d.next(mw_ir, d.mux(xmv, xmi, mwi));
    d.next(mw_val, d.mux(xmv, d.mux(mm.isLoad, ram_data, xma), mwl));

    // ---- WB -----------------------------------------------------------------
    for (unsigned i = 0; i < 16; ++i) {
        Wire en = mwv & wb.writesRd & eqConst(d, wb.rd, i);
        d.next(xr[i], d.mux(en, mwl, x[i]));
    }

    d.next(halted_r, halt_v | halt_now);

    // Performance-monitoring unit: retire at WB, branches resolve in
    // EX, stalls counted as the event.
    Wire retire = mwv;
    Wire is_branch = ex_is(Isa::Beq) | ex_is(Isa::Bne);
    Wire resolve = dxv & is_branch;
    Wire br_taken = (ex_is(Isa::Beq) & (dxa == dxb)) |
        (ex_is(Isa::Bne) & (dxa != dxb));
    buildPerfUnit(d, px, retire, resolve, br_taken, dxp.slice(0, 4),
                  stall);

    // ---- Optional multiplier datapath (the "large" flavour) -----------
    if (with_mul) {
        RegId m1 = d.reg(px + "mul_s1", 64);
        RegId m2 = d.reg(px + "mul_s2", 64);
        RegId m3 = d.reg(px + "mul_s3", 64);
        RegId macc = d.reg(px + "mul_acc", 64);
        Wire prod = dxa.zext(64) * dxb.zext(64);
        d.next(m1, prod);
        d.next(m2, d.read(m1) + d.lit(64, 0x9e3779b9));
        d.next(m3, d.read(m2) ^ (d.read(m2) >> d.lit(64, 29)));
        d.next(macc, d.read(macc) + d.read(m3));
    }

    CoreIo io;
    io.halted = halt_v;
    io.pc = pc_v;
    io.probe = x[1];
    io.ram = ram;
    return io;
}

Netlist
makeRocket(const CoreConfig &cfg, bool with_mul)
{
    Design d(with_mul ? "rocket_mul" : "rocket");
    CoreIo io = buildRocketCore(d, cfg, with_mul);
    d.output("halted", io.halted);
    d.output("pc", io.pc);
    d.output("probe", io.probe);
    return d.finish();
}

} // namespace parendi::designs
