/**
 * @file
 * Monte Carlo option-price engine (stand-in for the FPGA Monte-Carlo
 * financial engine of paper §6, "mc"). `lanes` independent price paths
 * evolve in Q16.16 fixed point under a xorshift-driven random walk;
 * each path runs `stepsPerPath` steps, contributes its call payoff
 * max(S-K, 0) to a per-lane accumulator, and restarts. A global adder
 * tree exposes the running payoff sum.
 */

#include "designs/designs.hh"

#include "designs/common.hh"

namespace parendi::designs {

using namespace rtl;

Netlist
makeMc(const McConfig &cfg)
{
    if (cfg.lanes == 0 || cfg.stepsPerPath == 0)
        fatal("makeMc: bad configuration");
    Design d("mc" + std::to_string(cfg.lanes));

    // Global step counter shared by all lanes.
    uint32_t cnt_w = 16;
    RegId step = d.reg("step", cnt_w, 0);
    Wire step_v = d.read(step);
    Wire path_done = eqConst(d, step_v, cfg.stepsPerPath - 1);
    d.next(step, d.mux(path_done, d.lit(cnt_w, 0),
                       step_v + d.lit(cnt_w, 1)));

    RegId paths = d.reg("paths", 32, 0);
    d.next(paths, d.mux(path_done, d.read(paths) + d.lit(32, 1),
                        d.read(paths)));

    std::vector<Wire> accs;
    Wire strike = d.lit(32, cfg.strike);
    for (uint32_t lane = 0; lane < cfg.lanes; ++lane) {
        std::string px = "l" + std::to_string(lane) + "_";
        RegId rng = d.reg(px + "rng", 32,
                          0x2545f491u ^ (lane * 0x9e3779b9u + 7));
        RegId price = d.reg(px + "price", 32, cfg.spot);
        RegId acc = d.reg(px + "acc", 32, 0);

        // xorshift32 step.
        Wire r = d.read(rng);
        r = r ^ r.shl(13);
        r = r ^ r.shr(17);
        r = r ^ r.shl(5);
        d.next(rng, r);

        // Random walk: S' = S + (S * noise) >> 12 where noise is a
        // small signed value from the RNG low byte with upward drift.
        Wire s = d.read(price);
        Wire noise = r.slice(0, 8).sext(32) + d.lit(32, 2);
        Wire delta = (s * noise).sra(d.lit(32, 12));
        Wire stepped = s + delta;
        d.next(price, d.mux(path_done, d.lit(32, cfg.spot), stepped));

        // Payoff at path end: max(S - K, 0).
        Wire itm = strike.ult(stepped);
        Wire payoff = d.mux(itm, stepped - strike, d.lit(32, 0));
        Wire a = d.read(acc);
        d.next(acc, d.mux(path_done, a + payoff, a));
        accs.push_back(d.read(acc));
    }

    Wire total = reduceTree(accs, [](Wire a, Wire b) { return a + b; });
    d.output("payoff_sum", total);
    d.output("paths", d.read(paths));
    return d.finish();
}

} // namespace parendi::designs
