/**
 * @file
 * The multicycle "pico" core: 4 states per instruction
 * (FETCH/EXEC/MEM/WB), a flip-flop register file (16 x 32, like
 * picorv32), asynchronous-read instruction ROM and data RAM. Its fiber
 * population is deliberately imbalanced: each architectural register's
 * fiber drags the whole decode+ALU cone with it (paper Fig. 6b).
 */

#include "designs/cores.hh"

#include "designs/common.hh"
#include "designs/isa.hh"
#include "designs/perf.hh"

namespace parendi::designs {

using namespace rtl;

namespace {

/** Convert a program image to BitVec entries, padded with HALT. */
std::vector<BitVec>
romImage(const CoreConfig &cfg)
{
    if (cfg.program.size() > cfg.romDepth)
        fatal("core %s: program (%zu words) exceeds ROM depth %u",
              cfg.prefix.c_str(), cfg.program.size(), cfg.romDepth);
    std::vector<BitVec> img;
    img.reserve(cfg.romDepth);
    for (uint32_t w : cfg.program)
        img.emplace_back(32, w);
    while (img.size() < cfg.romDepth)
        img.emplace_back(32, asmHalt());
    return img;
}

} // namespace

CoreIo
buildPicoCore(Design &d, const CoreConfig &cfg)
{
    const std::string &px = cfg.prefix;
    uint32_t rom_bits = log2Exact(cfg.romDepth);
    uint32_t ram_bits = log2Exact(cfg.ramDepth);

    MemId rom = d.memory(px + "rom", 32, cfg.romDepth);
    d.netlist().initMemory(rom, romImage(cfg));
    MemId ram = d.memory(px + "ram", 32, cfg.ramDepth);

    RegId pc = d.reg(px + "pc", 32);
    RegId state = d.reg(px + "state", 2);
    RegId ir = d.reg(px + "ir", 32);
    RegId alu_out = d.reg(px + "alu_out", 32);
    RegId mem_data = d.reg(px + "mem_data", 32);
    RegId halted_r = d.reg(px + "halted", 1);
    std::vector<RegId> xr;
    for (int i = 0; i < 16; ++i)
        xr.push_back(d.reg(px + "x" + std::to_string(i), 32));

    Wire pc_v = d.read(pc);
    Wire st = d.read(state);
    Wire ir_v = d.read(ir);
    Wire alu_v = d.read(alu_out);
    Wire md_v = d.read(mem_data);
    Wire halt_v = d.read(halted_r);
    std::vector<Wire> x;
    for (int i = 0; i < 16; ++i)
        x.push_back(d.read(xr[i]));

    // Decode.
    Wire op = ir_v.slice(0, 4);
    Wire rd = ir_v.slice(4, 4);
    Wire rs1 = ir_v.slice(8, 4);
    Wire rs2 = ir_v.slice(12, 4);
    Wire imm = ir_v.slice(16, 16).sext(32);
    auto op_is = [&](Isa k) {
        return eqConst(d, op, static_cast<uint64_t>(k));
    };

    Wire a = muxTree(d, rs1, x);
    Wire b = muxTree(d, rs2, x);

    Wire in_fetch = eqConst(d, st, 0);
    Wire in_exec = eqConst(d, st, 1);
    Wire in_mem = eqConst(d, st, 2);
    Wire in_wb = eqConst(d, st, 3);

    // FETCH: latch the instruction.
    Wire rom_data = d.memRead(rom, pc_v.slice(0, rom_bits));
    d.next(ir, d.mux(in_fetch, rom_data, ir_v));

    // EXEC: latch the ALU result (also the memory address / link /
    // LUI immediate, depending on the op).
    Wire shamt = b.slice(0, 5);
    Wire add_ai = a + imm;
    Wire one = d.lit(32, 1);
    Wire alu = matchCase(
        d, op,
        {
            {static_cast<uint64_t>(Isa::Addi), add_ai},
            {static_cast<uint64_t>(Isa::Add), a + b},
            {static_cast<uint64_t>(Isa::Sub), a - b},
            {static_cast<uint64_t>(Isa::And), a & b},
            {static_cast<uint64_t>(Isa::Or), a | b},
            {static_cast<uint64_t>(Isa::Xor), a ^ b},
            {static_cast<uint64_t>(Isa::Sll), a << shamt},
            {static_cast<uint64_t>(Isa::Srl), a >> shamt},
            {static_cast<uint64_t>(Isa::Lw), add_ai},
            {static_cast<uint64_t>(Isa::Sw), add_ai},
            {static_cast<uint64_t>(Isa::Lui), imm.shl(16)},
            {static_cast<uint64_t>(Isa::Jal), pc_v + one},
        },
        d.lit(32, 0));
    d.next(alu_out, d.mux(in_exec, alu, alu_v));

    // MEM: load data / store.
    Wire ram_addr = alu_v.slice(0, ram_bits);
    Wire ram_data = d.memRead(ram, ram_addr);
    d.next(mem_data, d.mux(in_mem & op_is(Isa::Lw), ram_data, md_v));
    d.memWrite(ram, ram_addr, b, in_mem & op_is(Isa::Sw));

    // WB: register file write.
    Wire writes_rd = op_is(Isa::Addi) | op_is(Isa::Add) |
        op_is(Isa::Sub) | op_is(Isa::And) | op_is(Isa::Or) |
        op_is(Isa::Xor) | op_is(Isa::Sll) | op_is(Isa::Srl) |
        op_is(Isa::Lw) | op_is(Isa::Lui) | op_is(Isa::Jal);
    Wire wb_val = d.mux(op_is(Isa::Lw), md_v, alu_v);
    for (unsigned i = 0; i < 16; ++i) {
        Wire en = in_wb & writes_rd & eqConst(d, rd, i);
        d.next(xr[i], d.mux(en, wb_val, x[i]));
    }

    // WB: program counter update.
    Wire taken = (op_is(Isa::Beq) & (a == b)) |
        (op_is(Isa::Bne) & (a != b)) | op_is(Isa::Jal);
    Wire pc_next = d.mux(op_is(Isa::Halt), pc_v,
                         d.mux(taken, pc_v + imm, pc_v + one));
    d.next(pc, d.mux(in_wb & ~halt_v, pc_next, pc_v));
    d.next(halted_r, halt_v | (in_wb & op_is(Isa::Halt)));

    // FSM always advances (wraps 3 -> 0).
    d.next(state, st + d.lit(2, 1));

    // Performance-monitoring unit (CSRs + BHT, see perf.hh).
    Wire retire = in_wb & ~halt_v;
    Wire is_branch = op_is(Isa::Beq) | op_is(Isa::Bne);
    Wire resolve = retire & is_branch;
    Wire br_taken = (op_is(Isa::Beq) & (a == b)) |
        (op_is(Isa::Bne) & (a != b));
    Wire mem_op = retire & (op_is(Isa::Lw) | op_is(Isa::Sw));
    buildPerfUnit(d, px, retire, resolve, br_taken,
                  pc_v.slice(0, 4), mem_op);

    CoreIo io;
    io.halted = halt_v;
    io.pc = pc_v;
    io.probe = x[1];
    io.ram = ram;
    return io;
}

Netlist
makePico(const CoreConfig &cfg)
{
    Design d("pico");
    CoreIo io = buildPicoCore(d, cfg);
    d.output("halted", io.halted);
    d.output("pc", io.pc);
    d.output("probe", io.probe);
    return d.finish();
}

CoreConfig
defaultCoreConfig(const std::string &prefix)
{
    CoreConfig cfg;
    cfg.prefix = prefix;
    cfg.romDepth = 64;
    cfg.ramDepth = 64;
    cfg.program = programChurn();
    return cfg;
}

} // namespace parendi::designs
