/**
 * @file
 * Output-stationary GEMM accelerator (stand-in for the VTA ML
 * accelerator of paper §6). A rows x cols grid of MAC processing
 * elements holds a weight tile in registers; activations stream from
 * an SRAM down each row; every PE accumulates a[r] * w[r][c] per
 * cycle. A control FSM cycles the activation address and periodically
 * drains the accumulators into a result SRAM (exercising the
 * differential array exchange path).
 */

#include "designs/designs.hh"

#include "designs/common.hh"
#include "util/rng.hh"

namespace parendi::designs {

using namespace rtl;

Netlist
makeVta(const VtaConfig &cfg)
{
    if (cfg.rows == 0 || cfg.cols == 0 || cfg.bufDepth < 2 ||
        (cfg.bufDepth & (cfg.bufDepth - 1)))
        fatal("makeVta: bad configuration");
    Design d("vta" + std::to_string(cfg.rows) + "x" +
             std::to_string(cfg.cols));
    uint32_t abits = log2Exact(cfg.bufDepth);
    Rng rng(0x7a7a5eed);

    // Activation SRAM, one per row, with a deterministic image.
    std::vector<MemId> abuf(cfg.rows);
    for (uint32_t r = 0; r < cfg.rows; ++r) {
        abuf[r] = d.memory("abuf" + std::to_string(r), 16,
                           cfg.bufDepth);
        std::vector<BitVec> img;
        for (uint32_t i = 0; i < cfg.bufDepth; ++i)
            img.emplace_back(16, rng.below(1 << 16));
        d.netlist().initMemory(abuf[r], img);
    }
    // Result SRAM: drained accumulator tiles.
    MemId rbuf = d.memory("rbuf", 32, cfg.bufDepth);

    // Control FSM: address counter + drain column pointer.
    RegId addr = d.reg("addr", abits, 0);
    Wire addr_v = d.read(addr);
    Wire wrap = eqConst(d, addr_v, cfg.bufDepth - 1);
    d.next(addr, addr_v + d.lit(abits, 1));

    RegId dcol = d.reg("drain_col", 16, 0);
    Wire dcol_v = d.read(dcol);
    d.next(dcol, d.mux(wrap,
                       d.mux(eqConst(d, dcol_v, cfg.cols - 1),
                             d.lit(16, 0), dcol_v + d.lit(16, 1)),
                       dcol_v));

    // Row activation registers (streamed from SRAM).
    std::vector<Wire> act;
    for (uint32_t r = 0; r < cfg.rows; ++r) {
        RegId a = d.reg("act" + std::to_string(r), 16, 0);
        d.next(a, d.memRead(abuf[r], addr_v));
        act.push_back(d.read(a));
    }

    // The PE grid.
    std::vector<std::vector<Wire>> acc(cfg.rows);
    for (uint32_t r = 0; r < cfg.rows; ++r) {
        for (uint32_t c = 0; c < cfg.cols; ++c) {
            std::string px =
                "pe" + std::to_string(r) + "_" + std::to_string(c);
            // Weight-stationary register (fixed pseudo-random tile).
            RegId w = d.reg(px + "_w", 16, rng.below(1 << 16));
            d.next(w, d.read(w));
            RegId a = d.reg(px + "_acc", 32, 0);
            Wire prod = act[r].zext(32) * d.read(w).zext(32);
            // Clear on tile wrap, else accumulate.
            Wire summed = d.read(a) + prod;
            d.next(a, d.mux(wrap, d.lit(32, 0), summed));
            acc[r].push_back(d.read(a));
        }
    }

    // Drain: on wrap, one column's accumulator tree is stored.
    std::vector<Wire> col_sums;
    for (uint32_t c = 0; c < cfg.cols; ++c) {
        std::vector<Wire> col;
        for (uint32_t r = 0; r < cfg.rows; ++r)
            col.push_back(acc[r][c]);
        col_sums.push_back(
            reduceTree(col, [](Wire a, Wire b) { return a + b; }));
    }
    // Select the drain column (pad to a power of two for the tree).
    std::vector<Wire> padded = col_sums;
    while (padded.size() & (padded.size() - 1))
        padded.push_back(padded.back());
    Wire drain_val = muxTree(d, dcol_v, padded);
    d.memWrite(rbuf, dcol_v.slice(0, abits), drain_val, wrap);

    d.output("drain", drain_val);
    d.output("addr", addr_v.zext(32));
    return d.finish();
}

} // namespace parendi::designs
