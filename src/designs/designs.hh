/**
 * @file
 * The benchmark designs of the paper's evaluation (§4.1, §4.3, §6),
 * regenerated as functional netlists:
 *
 *  - prng    : bank of independent xorshift32 generators (§4.1)
 *  - pico    : multicycle P16 core (stand-in for picorv32)
 *  - bitcoin : iterative SHA-256d miner engines
 *  - rocket  : 5-stage pipelined P16 core
 *  - mc      : fixed-point Monte Carlo option-price engine
 *  - vta     : output-stationary GEMM accelerator
 *  - srN/lrN : N x N mesh-NoC SoCs of small/large cores with three
 *              uncore (responder) nodes, generated like the paper's
 *              Constellation/Chipyard meshes
 */

#ifndef PARENDI_DESIGNS_DESIGNS_HH
#define PARENDI_DESIGNS_DESIGNS_HH

#include <cstdint>

#include "designs/cores.hh"
#include "rtl/netlist.hh"

namespace parendi::designs {

/** @{ PRNG bank: @p n independent xorshift32 fibers, no cross-fiber
 *  communication (the §4.1 synchronization microbenchmark). */
rtl::Netlist makePrngBank(uint32_t n);
/** @} */

struct BitcoinConfig
{
    uint32_t engines = 4;     ///< parallel miner engines
    uint32_t zeroBits = 16;   ///< difficulty: leading zero bits target
};

/** SHA-256d miner: each engine performs one SHA-256 round per cycle. */
rtl::Netlist makeBitcoin(const BitcoinConfig &cfg = BitcoinConfig{});

struct McConfig
{
    uint32_t lanes = 64;       ///< parallel price paths
    uint32_t stepsPerPath = 64;
    uint32_t spot = 100 << 16; ///< Q16.16 initial price
    uint32_t strike = 105 << 16;
};

/** Monte Carlo option pricer (stand-in for the FPGA mc engine). */
rtl::Netlist makeMc(const McConfig &cfg = McConfig{});

struct VtaConfig
{
    uint32_t rows = 16;        ///< PE grid (BlockIn)
    uint32_t cols = 16;        ///< PE grid (BlockOut)
    uint32_t bufDepth = 128;   ///< activation/weight SRAM entries
};

/** GEMM accelerator core (stand-in for VTA). */
rtl::Netlist makeVta(const VtaConfig &cfg = VtaConfig{});

struct GatedConfig
{
    uint32_t units = 64;    ///< independent gated compute pipelines
    uint32_t rounds = 8;    ///< xorshift-multiply rounds per pipeline
    uint32_t period = 16;   ///< cycles between enable pulses
};

/** Clock-gated compute bank: a tiny free-running control counter
 *  enables the heavy per-unit combinational pipelines one cycle in
 *  `period`, so activity-guarded engines skip the heavy cones on the
 *  other period-1 cycles (the --activity A/B benchmark design). */
rtl::Netlist makeGated(const GatedConfig &cfg = GatedConfig{});

enum class MeshCore : uint8_t { Small, Large };

struct MeshConfig
{
    uint32_t n = 2;            ///< mesh is n x n
    MeshCore core = MeshCore::Small;
    uint32_t injectPeriod = 8; ///< cycles between NI injections
};

/** srN / lrN: the mesh-NoC SoC. Three corner nodes are uncore
 *  responders; every other node hosts a core + network interface. */
rtl::Netlist makeMesh(const MeshConfig &cfg);

/** Convenience: srN. */
rtl::Netlist makeSr(uint32_t n);
/** Convenience: lrN. */
rtl::Netlist makeLr(uint32_t n);

} // namespace parendi::designs

#endif // PARENDI_DESIGNS_DESIGNS_HH
