#include "serve/client.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace parendi::serve {

bool
Client::connect(uint16_t port)
{
    disconnect();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error_ = std::strerror(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        error_ = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
}

void
Client::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::roundTrip(const WireWriter &request, std::string &response)
{
    if (fd_ < 0) {
        error_ = "not connected";
        return false;
    }
    if (!sendFrame(fd_, request.data()) ||
        !recvFrame(fd_, response)) {
        error_ = "connection lost";
        disconnect();
        return false;
    }
    WireReader r(response);
    const auto status = static_cast<Status>(r.u8());
    if (!r.ok()) {
        error_ = "malformed response";
        return false;
    }
    if (status != Status::Ok) {
        error_ = r.str();
        return false;
    }
    // Strip the status byte so callers parse result fields only.
    response.erase(0, 1);
    return true;
}

uint64_t
Client::createSession(const std::string &design,
                      const std::string &engine, uint32_t threads,
                      bool cgen, uint64_t batch, uint32_t replicas,
                      bool *native)
{
    WireWriter w;
    w.u8(static_cast<uint8_t>(Op::Create));
    w.str(design);
    w.str(engine);
    w.u32(threads);
    w.u8(cgen ? 1 : 0);
    w.u64(batch);
    w.u32(replicas);
    std::string resp;
    if (!roundTrip(w, resp))
        return 0;
    WireReader r(resp);
    uint64_t id = r.u64();
    uint8_t nat = r.u8();
    if (!r.ok() || !id) {
        error_ = "malformed Create response";
        return 0;
    }
    if (native)
        *native = nat != 0;
    return id;
}

bool
Client::step(uint64_t id, uint64_t n, uint64_t *cyclesAfter)
{
    WireWriter w;
    w.u8(static_cast<uint8_t>(Op::Step));
    w.u64(id);
    w.u64(n);
    std::string resp;
    if (!roundTrip(w, resp))
        return false;
    WireReader r(resp);
    uint64_t cycles = r.u64();
    if (!r.ok()) {
        error_ = "malformed Step response";
        return false;
    }
    if (cyclesAfter)
        *cyclesAfter = cycles;
    return true;
}

bool
Client::poke(uint64_t id, const std::string &input,
             const rtl::BitVec &value)
{
    WireWriter w;
    w.u8(static_cast<uint8_t>(Op::Poke));
    w.u64(id);
    w.str(input);
    w.bitvec(value);
    std::string resp;
    return roundTrip(w, resp);
}

bool
Client::peek(uint64_t id, const std::string &output, rtl::BitVec *out)
{
    WireWriter w;
    w.u8(static_cast<uint8_t>(Op::Peek));
    w.u64(id);
    w.str(output);
    std::string resp;
    if (!roundTrip(w, resp))
        return false;
    WireReader r(resp);
    *out = r.bitvec();
    if (!r.ok()) {
        error_ = "malformed Peek response";
        return false;
    }
    return true;
}

bool
Client::peekRegister(uint64_t id, const std::string &reg,
                     rtl::BitVec *out)
{
    WireWriter w;
    w.u8(static_cast<uint8_t>(Op::PeekRegister));
    w.u64(id);
    w.str(reg);
    std::string resp;
    if (!roundTrip(w, resp))
        return false;
    WireReader r(resp);
    *out = r.bitvec();
    if (!r.ok()) {
        error_ = "malformed PeekRegister response";
        return false;
    }
    return true;
}

bool
Client::checkpoint(uint64_t id, std::string *blob)
{
    WireWriter w;
    w.u8(static_cast<uint8_t>(Op::Checkpoint));
    w.u64(id);
    std::string resp;
    if (!roundTrip(w, resp))
        return false;
    WireReader r(resp);
    *blob = r.str();
    if (!r.ok()) {
        error_ = "malformed Checkpoint response";
        return false;
    }
    return true;
}

bool
Client::restore(uint64_t id, const std::string &blob)
{
    WireWriter w;
    w.u8(static_cast<uint8_t>(Op::Restore));
    w.u64(id);
    w.str(blob);
    std::string resp;
    return roundTrip(w, resp);
}

bool
Client::destroySession(uint64_t id)
{
    WireWriter w;
    w.u8(static_cast<uint8_t>(Op::Destroy));
    w.u64(id);
    std::string resp;
    return roundTrip(w, resp);
}

bool
Client::stats(std::vector<std::pair<std::string, uint64_t>> *out)
{
    WireWriter w;
    w.u8(static_cast<uint8_t>(Op::Stats));
    std::string resp;
    if (!roundTrip(w, resp))
        return false;
    WireReader r(resp);
    uint32_t n = r.u32();
    out->clear();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
        std::string name = r.str();
        uint64_t value = r.u64();
        out->emplace_back(std::move(name), value);
    }
    if (!r.ok()) {
        error_ = "malformed Stats response";
        return false;
    }
    return true;
}

bool
Client::shutdownServer()
{
    WireWriter w;
    w.u8(static_cast<uint8_t>(Op::Shutdown));
    std::string resp;
    return roundTrip(w, resp);
}

} // namespace parendi::serve
