/**
 * @file
 * serve::Client — the C++ client of the simulation host. One blocking
 * request/response connection; every method sends a frame and waits
 * for the reply, returning false (with lastError() set) on a protocol
 * error, an Error status from the server, or a dropped connection.
 * Not thread-safe: one Client per client thread (the server copes
 * with any number of concurrent connections).
 */

#ifndef PARENDI_SERVE_CLIENT_HH
#define PARENDI_SERVE_CLIENT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rtl/bitvec.hh"
#include "serve/protocol.hh"

namespace parendi::serve {

class Client
{
  public:
    Client() = default;
    ~Client() { disconnect(); }

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to a host on 127.0.0.1:@p port. */
    bool connect(uint16_t port);
    void disconnect();
    bool connected() const { return fd_ >= 0; }

    /** The failure message of the last method that returned false. */
    const std::string &lastError() const { return error_; }

    /**
     * Create a session; returns the id (> 0) or 0 on failure. The
     * fields mirror serve::SessionOptions. @p native (if non-null)
     * reports whether the session runs cgen kernels.
     */
    uint64_t createSession(const std::string &design,
                           const std::string &engine = "par",
                           uint32_t threads = 0, bool cgen = false,
                           uint64_t batch = 0,
                           uint32_t replicas = 1,
                           bool *native = nullptr);

    /** Run @p n cycles; @p cyclesAfter (if non-null) receives the
     *  session's cycle count after the step. */
    bool step(uint64_t id, uint64_t n, uint64_t *cyclesAfter = nullptr);

    bool poke(uint64_t id, const std::string &input,
              const rtl::BitVec &value);
    bool peek(uint64_t id, const std::string &output, rtl::BitVec *out);
    bool peekRegister(uint64_t id, const std::string &reg,
                      rtl::BitVec *out);

    /** Fetch the session's checkpoint blob (headered; opaque). */
    bool checkpoint(uint64_t id, std::string *blob);
    bool restore(uint64_t id, const std::string &blob);

    bool destroySession(uint64_t id);

    /** Snapshot of the host's obs::Counters. */
    bool stats(std::vector<std::pair<std::string, uint64_t>> *out);

    /** Ask the host to exit serveForever(). */
    bool shutdownServer();

  private:
    /** Send @p request, receive into @p response, check the status
     *  byte; on Error status the message is parsed into error_. The
     *  returned reader is positioned after the status byte. */
    bool roundTrip(const WireWriter &request, std::string &response);

    int fd_ = -1;
    std::string error_;
};

} // namespace parendi::serve

#endif // PARENDI_SERVE_CLIENT_HH
