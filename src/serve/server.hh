/**
 * @file
 * serve::Server — the socket front end of a SessionManager. Binds a
 * TCP listener on 127.0.0.1 (port 0 = ephemeral, query port()),
 * accepts any number of clients and runs one thread per connection;
 * each connection is a sequence of request/response frames (see
 * protocol.hh) dispatched into the shared SessionManager, so
 * concurrency across clients comes from the manager's scheduler, not
 * from the transport. A Shutdown request releases serveForever().
 */

#ifndef PARENDI_SERVE_SERVER_HH
#define PARENDI_SERVE_SERVER_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/session.hh"

namespace parendi::serve {

class Server
{
  public:
    /** Bind and listen on 127.0.0.1:@p port (0 = pick an ephemeral
     *  port). fatal() if the socket cannot be bound. */
    Server(SessionManager &manager, uint16_t port);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** The bound port (the actual one when constructed with 0). */
    uint16_t port() const { return port_; }

    /** Start the accept thread; returns immediately. */
    void start();

    /** start() + block until a client sends Shutdown, then stop(). */
    void serveForever();

    /** Close the listener and every live connection; join threads.
     *  Idempotent. */
    void stop();

    bool shutdownRequested() const;

  private:
    void acceptLoop();
    void handleConnection(int fd);
    /** Decode one request, run it against the manager, encode the
     *  response. Never throws. A Shutdown request sets
     *  @p shutdownAfter instead of signalling directly, so the
     *  connection loop can send the response BEFORE stop() closes the
     *  socket out from under it. */
    std::string handleRequest(const std::string &request,
                              bool *shutdownAfter);

    SessionManager &manager_;
    int listenFd_ = -1;
    uint16_t port_ = 0;

    mutable std::mutex mutex_;
    std::condition_variable shutdownCv_;
    bool shutdownRequested_ = false;
    bool stopped_ = false;
    std::vector<int> connFds_;
    std::vector<std::thread> connThreads_;
    std::thread acceptThread_;
};

} // namespace parendi::serve

#endif // PARENDI_SERVE_SERVER_HH
