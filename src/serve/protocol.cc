#include "serve/protocol.hh"

#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>

namespace parendi::serve {

namespace {

bool
writeAll(int fd, const char *data, size_t n)
{
    while (n) {
        // MSG_NOSIGNAL: a peer that closed mid-frame surfaces as an
        // EPIPE error return, not a process-killing SIGPIPE.
        ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

bool
readAll(int fd, char *data, size_t n)
{
    while (n) {
        ssize_t r = ::read(fd, data, n);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (r == 0)
            return false;   // EOF mid-frame (or before one: clean close)
        data += r;
        n -= static_cast<size_t>(r);
    }
    return true;
}

} // namespace

bool
sendFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    char len[4];
    uint32_t n = static_cast<uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        len[i] = static_cast<char>((n >> (8 * i)) & 0xff);
    return writeAll(fd, len, 4) &&
           writeAll(fd, payload.data(), payload.size());
}

bool
recvFrame(int fd, std::string &payload)
{
    char len[4];
    if (!readAll(fd, len, 4))
        return false;
    uint32_t n = 0;
    for (int i = 0; i < 4; ++i)
        n |= static_cast<uint32_t>(static_cast<unsigned char>(len[i]))
            << (8 * i);
    if (n > kMaxFrameBytes)
        return false;
    payload.resize(n);
    return n == 0 || readAll(fd, payload.data(), n);
}

} // namespace parendi::serve
