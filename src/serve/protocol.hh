/**
 * @file
 * Wire protocol of the simulation host: length-prefixed binary frames
 * over a local stream socket. Every message is
 *
 *    [u32 payload length] [payload]
 *
 * with all integers little-endian. A request payload is one opcode
 * byte followed by opcode-specific fields; a response payload is one
 * status byte (Ok/Error) followed by result fields (Ok) or a
 * human-readable message string (Error). Strings and byte blobs are
 * u32-length-prefixed; a BitVec is [u32 width][wordsFor(width) u64s].
 *
 * Request layouts (after the opcode byte):
 *   Create        str designSpec, str engine, u32 threads, u8 cgen,
 *                 u64 batch, u32 replicas
 *                                    -> u64 sessionId, u8 native
 *   Step          u64 id, u64 n      -> u64 cycles (after the step)
 *   Poke          u64 id, str input, bitvec
 *   Peek          u64 id, str output -> bitvec
 *   PeekRegister  u64 id, str reg    -> bitvec
 *   Checkpoint    u64 id             -> str blob (headered, see
 *                                       core/session.hh)
 *   Restore       u64 id, str blob
 *   Destroy       u64 id
 *   Stats         -                  -> u32 n, n x (str name, u64 val)
 *   Shutdown      -                  (server exits serveForever)
 *
 * The protocol is deliberately host-local (no endianness negotiation,
 * no authentication): the server binds 127.0.0.1 only.
 */

#ifndef PARENDI_SERVE_PROTOCOL_HH
#define PARENDI_SERVE_PROTOCOL_HH

#include <cstdint>
#include <cstring>
#include <string>

#include "rtl/bitvec.hh"

namespace parendi::serve {

/** Refuse frames beyond this size (corrupt length prefix guard). */
inline constexpr uint32_t kMaxFrameBytes = 256u << 20;

enum class Op : uint8_t {
    Create = 1,
    Step,
    Poke,
    Peek,
    PeekRegister,
    Checkpoint,
    Restore,
    Destroy,
    Stats,
    Shutdown,
};

enum class Status : uint8_t { Ok = 0, Error = 1 };

/** Append-only little-endian serializer for one frame payload. */
class WireWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    /** Length-prefixed string / byte blob. */
    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        buf_.append(s);
    }

    void
    bitvec(const rtl::BitVec &v)
    {
        u32(v.width());
        for (uint32_t w = 0; w < v.numWords(); ++w)
            u64(v.word(w));
    }

    const std::string &data() const { return buf_; }

  private:
    std::string buf_;
};

/**
 * Bounds-checked deserializer. Any over-read latches ok() to false and
 * yields zero values, so callers can parse a whole message and check
 * validity once at the end.
 */
class WireReader
{
  public:
    explicit WireReader(const std::string &frame)
        : p_(frame.data()), end_(frame.data() + frame.size())
    {
    }

    bool ok() const { return ok_; }
    size_t remaining() const { return static_cast<size_t>(end_ - p_); }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return static_cast<uint8_t>(*p_++);
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(
                     static_cast<unsigned char>(p_[i]))
                << (8 * i);
        p_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(
                     static_cast<unsigned char>(p_[i]))
                << (8 * i);
        p_ += 8;
        return v;
    }

    std::string
    str()
    {
        uint32_t n = u32();
        if (!need(n))
            return std::string();
        std::string s(p_, n);
        p_ += n;
        return s;
    }

    rtl::BitVec
    bitvec()
    {
        uint32_t width = u32();
        uint32_t nwords = rtl::wordsFor(width);
        std::vector<uint64_t> words(nwords);
        for (uint32_t w = 0; w < nwords; ++w)
            words[w] = u64();
        if (!ok_)
            return rtl::BitVec(1, uint64_t{0});
        return rtl::BitVec(width, std::move(words));
    }

  private:
    bool
    need(size_t n)
    {
        if (!ok_ || static_cast<size_t>(end_ - p_) < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const char *p_;
    const char *end_;
    bool ok_ = true;
};

/** Write one frame (length prefix + payload) to @p fd; full-write
 *  loop. False on any I/O error. */
bool sendFrame(int fd, const std::string &payload);

/** Read one frame from @p fd into @p payload; full-read loop. False
 *  on EOF, I/O error, or an over-limit length prefix. */
bool recvFrame(int fd, std::string &payload);

} // namespace parendi::serve

#endif // PARENDI_SERVE_PROTOCOL_HH
