/**
 * @file
 * serve::SessionManager — the multi-session simulation host. Each
 * session wraps one core::SessionHandle (engine + design identity);
 * all sessions share
 *
 *  - ONE util::BspPool: par engines are built with
 *    EngineOptions::pool, so N concurrent sessions cost one pool's
 *    worth of worker threads instead of N, and
 *  - ONE serve::ArtifactStore: native-kernel compiles are
 *    content-addressed and deduplicated across sessions.
 *
 * Cycle work is executed by a dedicated scheduler thread running
 * deficit round-robin (DRR): each runnable session (pending cycles
 * > 0) is visited in cyclic id order; a visit grants the session
 * `quantumCycles` of credit, and the session runs
 * min(credit, pending) cycles as one engine step (which is one fused
 * batched pool dispatch for par engines — the PR 5 path). The credit
 * carried by a session that had less pending work than its grant is
 * kept until the session goes idle, so light interactive sessions
 * (poke/step-100/peek loops) accumulate the right to burst and are
 * never starved by 1M-cycle bulk sessions: per scheduler round every
 * runnable session advances ~one quantum, regardless of how much work
 * the others have queued.
 *
 * Threading: the public API is fully thread-safe (one server
 * connection thread per client calls into it concurrently). step()
 * enqueues cycles and blocks until the scheduler has executed them.
 * Control ops (poke/peek/checkpoint/restore/destroy) wait until the
 * session is not mid-step, then mark it busy so the scheduler skips
 * it while the op runs outside the manager lock. Only the scheduler
 * thread ever dispatches on the shared pool, which is exactly the
 * BspPool sharing contract (see rtl::ParConfig::pool).
 */

#ifndef PARENDI_SERVE_SESSION_HH
#define PARENDI_SERVE_SESSION_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/session.hh"
#include "obs/counters.hh"
#include "serve/artifact.hh"
#include "util/bsp_pool.hh"

namespace parendi::serve {

/** Per-session creation knobs (the Create request's fields). */
struct SessionOptions
{
    std::string engine = "par";
    uint32_t threads = 0;   ///< 0 = the shared pool's width
    bool cgen = false;      ///< native kernels via the artifact store
    size_t batch = 0;       ///< fused cycles per pool dispatch
    /** Gang simulation: replica lanes stepped per cycle (see
     *  EngineOptions::replicas). A session created with R > 1 runs R
     *  design instances per scheduler slice; the host bills its work
     *  to the serve_lane_cycles_executed counter at R lane-cycles per
     *  cycle, so aggregate lane-cycles/sec is reportable per host. */
    uint32_t replicas = 1;
};

struct ManagerOptions
{
    /** Hard cap on concurrent sessions. */
    uint32_t maxSessions = 64;

    /** Shared BSP pool width; 0 = hardware concurrency. */
    uint32_t poolThreads = 0;

    /** DRR grant per scheduler visit, in cycles. */
    uint64_t quantumCycles = 1024;

    ArtifactStore::Options store;

    /**
     * Resolve a Create request's design spec into a netlist, ready to
     * simulate (optimized). Reports failure by throwing
     * util::FatalError (i.e. calling fatal()); the manager turns that
     * into a create error. Supplied by the host binary so this
     * library does not depend on the built-in design zoo.
     */
    std::function<rtl::Netlist(const std::string &spec)> resolveDesign;
};

class SessionManager
{
  public:
    explicit SessionManager(ManagerOptions opt);
    ~SessionManager();

    SessionManager(const SessionManager &) = delete;
    SessionManager &operator=(const SessionManager &) = delete;

    /**
     * Create a session of @p designSpec. Returns the session id (> 0),
     * or 0 with @p err set. @p native reports whether cgen kernels
     * are installed (when non-null).
     */
    uint64_t createSession(const std::string &designSpec,
                           const SessionOptions &sopt, std::string *err,
                           bool *native = nullptr);

    /** Enqueue @p n cycles and block until the scheduler has run
     *  them. @p cyclesAfter (if non-null) receives the session's
     *  cycle count after this request's work completed. */
    bool step(uint64_t id, uint64_t n, uint64_t *cyclesAfter,
              std::string *err);

    bool poke(uint64_t id, const std::string &input,
              const rtl::BitVec &value, std::string *err);
    bool peek(uint64_t id, const std::string &output, rtl::BitVec *out,
              std::string *err);
    bool peekRegister(uint64_t id, const std::string &reg,
                      rtl::BitVec *out, std::string *err);

    /** Headered checkpoint blob (core::saveCheckpoint). */
    bool checkpoint(uint64_t id, std::string *blob, std::string *err);
    bool restore(uint64_t id, const std::string &blob, std::string *err);

    bool destroySession(uint64_t id, std::string *err);

    size_t numSessions() const;

    /** Lifetime cycles the scheduler has executed for @p id (0 for an
     *  unknown session) — the fairness metric of the bench driver. */
    uint64_t completedCycles(uint64_t id) const;

    obs::Counters &counters() { return counters_; }
    ArtifactStore &store() { return *store_; }
    util::BspPool *pool() { return pool_.get(); }

  private:
    struct Session
    {
        uint64_t id = 0;
        std::unique_ptr<core::SessionHandle> handle;
        uint64_t pending = 0;   ///< cycles enqueued, not yet run
        uint64_t requested = 0; ///< lifetime cycles enqueued
        uint64_t done = 0;      ///< lifetime cycles executed
        uint64_t deficit = 0;   ///< DRR credit carried between visits
        /** Engine cycle count, refreshed under the manager lock after
         *  every scheduler slice and restore — what step() reports,
         *  so clients never read the engine while it may be mid-step. */
        uint64_t cyclesSnapshot = 0;
        /** Replica lanes the engine actually runs (the engine may have
         *  forced 1, e.g. for event/ipu) — the lane-cycle multiplier. */
        uint32_t replicas = 1;
        bool busy = false;      ///< scheduler or a control op owns it
        bool dead = false;      ///< destroyed; waiters must bail out
    };

    void schedulerLoop();

    /** Find @p id and wait until it is not busy, then mark it busy and
     *  return it (the caller runs its op unlocked and must call
     *  release()). Null with @p err set if the session is unknown or
     *  destroyed while waiting. Caller holds @p lk. */
    std::shared_ptr<Session> acquireIdle(
        std::unique_lock<std::mutex> &lk, uint64_t id, std::string *err);
    void release(const std::shared_ptr<Session> &s);

    // Declared before sessions_ so it is destroyed after them: every
    // par engine holds a shared_ptr to it anyway, but keep the order
    // honest.
    std::shared_ptr<util::BspPool> pool_;
    obs::Counters counters_;
    std::unique_ptr<ArtifactStore> store_;
    ManagerOptions opt_;

    mutable std::mutex mutex_;
    std::condition_variable workCv_;    ///< scheduler: work arrived
    std::condition_variable doneCv_;    ///< clients: state advanced
    std::map<uint64_t, std::shared_ptr<Session>> sessions_;
    uint64_t nextId_ = 1;
    uint64_t lastScheduledId_ = 0;  ///< round-robin cursor
    bool stop_ = false;

    obs::Counter &ctrSessionsCreated_;
    obs::Counter &ctrSessionsDestroyed_;
    obs::Counter &ctrCyclesExecuted_;
    /** Cycles x replica lanes: equals serve_cycles_executed on a host
     *  with only scalar sessions; gang sessions add R per cycle. */
    obs::Counter &ctrLaneCyclesExecuted_;
    obs::Counter &ctrSchedulerTurns_;

    std::thread scheduler_;
};

} // namespace parendi::serve

#endif // PARENDI_SERVE_SESSION_HH
