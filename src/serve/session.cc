#include "serve/session.hh"

#include <algorithm>
#include <sstream>
#include <thread>
#include <utility>

#include "core/engine.hh"
#include "rtl/cgen.hh"
#include "util/logging.hh"
#include "x86/parallel.hh"

namespace parendi::serve {

SessionManager::SessionManager(ManagerOptions opt)
    : opt_(std::move(opt)),
      ctrSessionsCreated_(counters_.get("sessions_created")),
      ctrSessionsDestroyed_(counters_.get("sessions_destroyed")),
      ctrCyclesExecuted_(counters_.get("serve_cycles_executed")),
      ctrLaneCyclesExecuted_(
          counters_.get("serve_lane_cycles_executed")),
      ctrSchedulerTurns_(counters_.get("scheduler_turns"))
{
    uint32_t threads = opt_.poolThreads
        ? opt_.poolThreads
        : std::max(1u, std::thread::hardware_concurrency());
    if (threads >= 2)
        pool_ = std::make_shared<util::BspPool>(threads);
    store_ = std::make_unique<ArtifactStore>(opt_.store, counters_);
    scheduler_ = std::thread([this] { schedulerLoop(); });
}

SessionManager::~SessionManager()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    doneCv_.notify_all();
    scheduler_.join();
}

uint64_t
SessionManager::createSession(const std::string &designSpec,
                              const SessionOptions &sopt,
                              std::string *err, bool *native)
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (sessions_.size() >= opt_.maxSessions) {
            if (err)
                *err = strprintf("session limit reached (%u)",
                                 opt_.maxSessions);
            return 0;
        }
    }

    core::EngineKind kind;
    if (!core::tryParseEngineKind(sopt.engine, kind)) {
        if (err)
            *err = strprintf(
                "unknown engine '%s' (expected interp|event|ipu|par|"
                "cgen)", sopt.engine.c_str());
        return 0;
    }

    // The expensive part — design resolution and engine construction
    // (which may JIT through the artifact store) — runs outside the
    // manager lock so it never stalls the scheduler or other clients.
    // A shared-pool engine constructs without touching the pool (see
    // ParConfig::pool), so this is safe against a concurrent step.
    std::unique_ptr<core::SimEngine> engine;
    try {
        if (!opt_.resolveDesign)
            fatal("this host has no design resolver");
        rtl::Netlist nl = opt_.resolveDesign(designSpec);
        core::EngineOptions eopt;
        eopt.kind = kind;
        eopt.threads = sopt.threads;
        eopt.cgen = sopt.cgen;
        eopt.batch = sopt.batch;
        eopt.replicas = sopt.replicas;
        eopt.pool = kind == core::EngineKind::Par ? pool_ : nullptr;
        eopt.artifacts = store_.get();
        engine = core::makeEngine(std::move(nl), eopt);
    } catch (const FatalError &e) {
        if (err)
            *err = e.what();
        return 0;
    }

    bool isNative = false;
    if (auto *par = dynamic_cast<rtl::ParallelInterpreter *>(engine.get()))
        isNative = par->native();
    else if (auto *cg = dynamic_cast<rtl::CgenInterpreter *>(engine.get()))
        isNative = cg->native();
    if (native)
        *native = isNative;

    auto session = std::make_shared<Session>();
    session->handle = std::make_unique<core::SessionHandle>(
        std::move(engine), designSpec);
    // Ask the engine, not the request: event/ipu force replicas to 1,
    // and lane-cycle accounting must bill what actually runs.
    session->replicas = session->handle->engine().replicas();

    std::lock_guard<std::mutex> lk(mutex_);
    if (sessions_.size() >= opt_.maxSessions) {
        if (err)
            *err = strprintf("session limit reached (%u)",
                             opt_.maxSessions);
        return 0;
    }
    session->id = nextId_++;
    session->cyclesSnapshot = session->handle->cycles();
    sessions_[session->id] = session;
    ctrSessionsCreated_.add();
    return session->id;
}

void
SessionManager::schedulerLoop()
{
    auto runnable = [](const Session &s) {
        return s.pending > 0 && !s.busy && !s.dead;
    };
    std::unique_lock<std::mutex> lk(mutex_);
    while (!stop_) {
        // Next runnable session in cyclic id order after the cursor.
        std::shared_ptr<Session> next;
        for (auto it = sessions_.upper_bound(lastScheduledId_);
             it != sessions_.end() && !next; ++it)
            if (runnable(*it->second))
                next = it->second;
        for (auto it = sessions_.begin();
             !next && it != sessions_.end() &&
             it->first <= lastScheduledId_;
             ++it)
            if (runnable(*it->second))
                next = it->second;
        if (!next) {
            workCv_.wait(lk);
            continue;
        }

        // DRR: this visit grants one quantum of credit; the session
        // runs as much of its credit as it has work for and carries
        // the rest (reset when it goes idle, so credit cannot be
        // hoarded across idle periods).
        lastScheduledId_ = next->id;
        next->deficit += opt_.quantumCycles;
        uint64_t slice = std::min(next->deficit, next->pending);
        next->busy = true;
        lk.unlock();

        // The only place the shared pool is ever dispatched on.
        next->handle->engine().step(slice);
        uint64_t cyc = next->handle->cycles();

        lk.lock();
        next->pending -= slice;
        next->done += slice;
        next->deficit -= slice;
        if (next->pending == 0)
            next->deficit = 0;
        next->cyclesSnapshot = cyc;
        next->busy = false;
        ctrCyclesExecuted_.add(slice);
        ctrLaneCyclesExecuted_.add(slice * next->replicas);
        ctrSchedulerTurns_.add();
        doneCv_.notify_all();
        workCv_.notify_all();
    }
}

bool
SessionManager::step(uint64_t id, uint64_t n, uint64_t *cyclesAfter,
                     std::string *err)
{
    std::unique_lock<std::mutex> lk(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
        if (err)
            *err = strprintf("no such session %llu",
                             static_cast<unsigned long long>(id));
        return false;
    }
    auto s = it->second;
    s->pending += n;
    s->requested += n;
    const uint64_t target = s->requested;
    workCv_.notify_all();
    doneCv_.wait(lk, [&] {
        return s->done >= target || s->dead || stop_;
    });
    if (s->dead || (s->done < target && stop_)) {
        if (err)
            *err = s->dead ? "session destroyed while stepping"
                           : "host shutting down";
        return false;
    }
    if (cyclesAfter)
        *cyclesAfter = s->cyclesSnapshot;
    return true;
}

std::shared_ptr<SessionManager::Session>
SessionManager::acquireIdle(std::unique_lock<std::mutex> &lk,
                            uint64_t id, std::string *err)
{
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
        if (err)
            *err = strprintf("no such session %llu",
                             static_cast<unsigned long long>(id));
        return nullptr;
    }
    auto s = it->second;
    doneCv_.wait(lk, [&] { return !s->busy || s->dead || stop_; });
    if (s->dead || stop_) {
        if (err)
            *err = s->dead ? "session destroyed" : "host shutting down";
        return nullptr;
    }
    s->busy = true;
    return s;
}

void
SessionManager::release(const std::shared_ptr<Session> &s)
{
    std::lock_guard<std::mutex> lk(mutex_);
    s->busy = false;
    doneCv_.notify_all();
    workCv_.notify_all();
}

bool
SessionManager::poke(uint64_t id, const std::string &input,
                     const rtl::BitVec &value, std::string *err)
{
    std::unique_lock<std::mutex> lk(mutex_);
    auto s = acquireIdle(lk, id, err);
    if (!s)
        return false;
    lk.unlock();
    bool ok = true;
    try {
        s->handle->engine().poke(input, value);
    } catch (const FatalError &e) {
        ok = false;
        if (err)
            *err = e.what();
    }
    release(s);
    return ok;
}

bool
SessionManager::peek(uint64_t id, const std::string &output,
                     rtl::BitVec *out, std::string *err)
{
    std::unique_lock<std::mutex> lk(mutex_);
    auto s = acquireIdle(lk, id, err);
    if (!s)
        return false;
    lk.unlock();
    bool ok = true;
    try {
        *out = s->handle->engine().peek(output);
    } catch (const FatalError &e) {
        ok = false;
        if (err)
            *err = e.what();
    }
    release(s);
    return ok;
}

bool
SessionManager::peekRegister(uint64_t id, const std::string &reg,
                             rtl::BitVec *out, std::string *err)
{
    std::unique_lock<std::mutex> lk(mutex_);
    auto s = acquireIdle(lk, id, err);
    if (!s)
        return false;
    lk.unlock();
    bool ok = true;
    try {
        *out = s->handle->engine().peekRegister(reg);
    } catch (const FatalError &e) {
        ok = false;
        if (err)
            *err = e.what();
    }
    release(s);
    return ok;
}

bool
SessionManager::checkpoint(uint64_t id, std::string *blob,
                           std::string *err)
{
    std::unique_lock<std::mutex> lk(mutex_);
    auto s = acquireIdle(lk, id, err);
    if (!s)
        return false;
    lk.unlock();
    bool ok = true;
    try {
        std::ostringstream os;
        s->handle->checkpoint(os);
        *blob = os.str();
    } catch (const FatalError &e) {
        ok = false;
        if (err)
            *err = e.what();
    }
    release(s);
    return ok;
}

bool
SessionManager::restore(uint64_t id, const std::string &blob,
                        std::string *err)
{
    std::unique_lock<std::mutex> lk(mutex_);
    auto s = acquireIdle(lk, id, err);
    if (!s)
        return false;
    lk.unlock();
    bool ok = true;
    uint64_t cyc = 0;
    try {
        std::istringstream is(blob);
        s->handle->restore(is);
        cyc = s->handle->cycles();
    } catch (const FatalError &e) {
        ok = false;
        if (err)
            *err = e.what();
    }
    {
        std::lock_guard<std::mutex> relk(mutex_);
        if (ok)
            s->cyclesSnapshot = cyc;
        s->busy = false;
    }
    doneCv_.notify_all();
    workCv_.notify_all();
    return ok;
}

bool
SessionManager::destroySession(uint64_t id, std::string *err)
{
    std::unique_lock<std::mutex> lk(mutex_);
    auto s = acquireIdle(lk, id, err);
    if (!s)
        return false;
    s->dead = true;
    s->busy = false;
    sessions_.erase(id);
    ctrSessionsDestroyed_.add();
    doneCv_.notify_all();
    workCv_.notify_all();
    return true;
}

size_t
SessionManager::numSessions() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return sessions_.size();
}

uint64_t
SessionManager::completedCycles(uint64_t id) const
{
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = sessions_.find(id);
    return it == sessions_.end() ? 0 : it->second->done;
}

} // namespace parendi::serve
