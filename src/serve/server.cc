#include "serve/server.hh"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/protocol.hh"
#include "util/logging.hh"

namespace parendi::serve {

Server::Server(SessionManager &manager, uint16_t port)
    : manager_(manager)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("serve: socket(): %s", std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        fatal("serve: cannot bind 127.0.0.1:%u: %s",
              static_cast<unsigned>(port), std::strerror(errno));
    if (::listen(listenFd_, 64) < 0)
        fatal("serve: listen(): %s", std::strerror(errno));

    socklen_t alen = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &alen) == 0)
        port_ = ntohs(addr.sin_port);
    else
        port_ = port;
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
Server::serveForever()
{
    start();
    {
        std::unique_lock<std::mutex> lk(mutex_);
        shutdownCv_.wait(lk, [this] {
            return shutdownRequested_ || stopped_;
        });
    }
    stop();
}

void
Server::stop()
{
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (stopped_)
            return;
        stopped_ = true;
        // Closing the listener unblocks accept(); shutting down the
        // connection fds unblocks any recvFrame mid-read.
        if (listenFd_ >= 0) {
            ::shutdown(listenFd_, SHUT_RDWR);
            ::close(listenFd_);
            listenFd_ = -1;
        }
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
        threads.swap(connThreads_);
    }
    shutdownCv_.notify_all();
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (auto &t : threads)
        t.join();
}

bool
Server::shutdownRequested() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return shutdownRequested_;
}

void
Server::acceptLoop()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;     // listener closed by stop()
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        std::lock_guard<std::mutex> lk(mutex_);
        if (stopped_) {
            ::close(fd);
            return;
        }
        connFds_.push_back(fd);
        connThreads_.emplace_back(
            [this, fd] { handleConnection(fd); });
    }
}

void
Server::handleConnection(int fd)
{
    std::string request;
    while (recvFrame(fd, request)) {
        bool shutdownAfter = false;
        std::string response = handleRequest(request, &shutdownAfter);
        bool sent = sendFrame(fd, response);
        if (shutdownAfter) {
            {
                std::lock_guard<std::mutex> lk(mutex_);
                shutdownRequested_ = true;
            }
            shutdownCv_.notify_all();
        }
        if (!sent || shutdownAfter)
            break;
    }
    // Deregister before closing so stop() never shutdown()s a
    // descriptor number the OS may have already reused.
    {
        std::lock_guard<std::mutex> lk(mutex_);
        connFds_.erase(
            std::remove(connFds_.begin(), connFds_.end(), fd),
            connFds_.end());
    }
    ::close(fd);
}

namespace {

std::string
errorResponse(const std::string &message)
{
    WireWriter w;
    w.u8(static_cast<uint8_t>(Status::Error));
    w.str(message);
    return w.data();
}

} // namespace

std::string
Server::handleRequest(const std::string &request, bool *shutdownAfter)
{
    WireReader r(request);
    const Op op = static_cast<Op>(r.u8());
    WireWriter w;
    w.u8(static_cast<uint8_t>(Status::Ok));
    std::string err;

    switch (op) {
      case Op::Create: {
        SessionOptions sopt;
        std::string design = r.str();
        sopt.engine = r.str();
        sopt.threads = r.u32();
        sopt.cgen = r.u8() != 0;
        sopt.batch = r.u64();
        sopt.replicas = r.u32();
        if (!r.ok())
            return errorResponse("malformed Create request");
        bool native = false;
        uint64_t id =
            manager_.createSession(design, sopt, &err, &native);
        if (!id)
            return errorResponse(err);
        w.u64(id);
        w.u8(native ? 1 : 0);
        return w.data();
      }
      case Op::Step: {
        uint64_t id = r.u64();
        uint64_t n = r.u64();
        if (!r.ok())
            return errorResponse("malformed Step request");
        uint64_t cycles = 0;
        if (!manager_.step(id, n, &cycles, &err))
            return errorResponse(err);
        w.u64(cycles);
        return w.data();
      }
      case Op::Poke: {
        uint64_t id = r.u64();
        std::string input = r.str();
        rtl::BitVec value = r.bitvec();
        if (!r.ok())
            return errorResponse("malformed Poke request");
        if (!manager_.poke(id, input, value, &err))
            return errorResponse(err);
        return w.data();
      }
      case Op::Peek:
      case Op::PeekRegister: {
        uint64_t id = r.u64();
        std::string name = r.str();
        if (!r.ok())
            return errorResponse("malformed Peek request");
        rtl::BitVec out;
        bool ok = op == Op::Peek
            ? manager_.peek(id, name, &out, &err)
            : manager_.peekRegister(id, name, &out, &err);
        if (!ok)
            return errorResponse(err);
        w.bitvec(out);
        return w.data();
      }
      case Op::Checkpoint: {
        uint64_t id = r.u64();
        if (!r.ok())
            return errorResponse("malformed Checkpoint request");
        std::string blob;
        if (!manager_.checkpoint(id, &blob, &err))
            return errorResponse(err);
        w.str(blob);
        return w.data();
      }
      case Op::Restore: {
        uint64_t id = r.u64();
        std::string blob = r.str();
        if (!r.ok())
            return errorResponse("malformed Restore request");
        if (!manager_.restore(id, blob, &err))
            return errorResponse(err);
        return w.data();
      }
      case Op::Destroy: {
        uint64_t id = r.u64();
        if (!r.ok())
            return errorResponse("malformed Destroy request");
        if (!manager_.destroySession(id, &err))
            return errorResponse(err);
        return w.data();
      }
      case Op::Stats: {
        auto snap = manager_.counters().snapshot();
        w.u32(static_cast<uint32_t>(snap.size()));
        for (const auto &[name, value] : snap) {
            w.str(name);
            w.u64(value);
        }
        return w.data();
      }
      case Op::Shutdown:
        *shutdownAfter = true;
        return w.data();
    }
    return errorResponse(
        strprintf("unknown opcode %u",
                  static_cast<unsigned>(static_cast<uint8_t>(op))));
}

} // namespace parendi::serve
