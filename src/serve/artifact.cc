#include "serve/artifact.hh"

#include <cstdlib>
#include <filesystem>

#include "util/logging.hh"

namespace fs = std::filesystem;

namespace parendi::serve {

namespace {

std::string
resolveDir(const std::string &configured)
{
    if (!configured.empty())
        return configured;
    if (const char *dir = std::getenv("PARENDI_ARTIFACT_DIR"))
        return dir;
    if (const char *dir = std::getenv("PARENDI_CGEN_DIR"))
        return dir;
    std::error_code ec;
    fs::path tmp = fs::temp_directory_path(ec);
    if (ec)
        tmp = ".";
    return (tmp / "parendi-cgen").string();
}

uint64_t
resolveBudget(uint64_t configured)
{
    if (configured)
        return configured;
    if (const char *bytes = std::getenv("PARENDI_ARTIFACT_BYTES"))
        return std::strtoull(bytes, nullptr, 0);
    return 0;
}

uint64_t
fileBytes(const std::string &path)
{
    std::error_code ec;
    uint64_t sz = fs::file_size(path, ec);
    return ec ? 0 : sz;
}

} // namespace

ArtifactStore::ArtifactStore(const Options &opt, obs::Counters &counters)
    : dir_(resolveDir(opt.dir)), budget_(resolveBudget(opt.byteBudget)),
      hits_(counters.get(kArtifactHits)),
      misses_(counters.get(kArtifactMisses)),
      warmStarts_(counters.get(kArtifactWarmStarts)),
      evictions_(counters.get(kArtifactEvictions)),
      compileWaits_(counters.get(kArtifactCompileWaits))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        warn("artifact store: cannot create %s: %s", dir_.c_str(),
             ec.message().c_str());
}

std::string
ArtifactStore::acquire(
    uint64_t key,
    const std::function<bool(const std::string &objectPath)> &build)
{
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        auto it = entries_.find(key);
        if (it == entries_.end())
            break;
        if (it->second.inFlight) {
            // Someone else is compiling this key right now; wait for
            // their flight to land and re-resolve (it may have failed
            // and erased the entry, in which case we take over).
            compileWaits_.add();
            cv_.wait(lk);
            continue;
        }
        it->second.lastUse = ++useClock_;
        hits_.add();
        return it->second.path;
    }

    std::string path = dir_ + "/" + rtl::cgenObjectName(key);
    if (uint64_t sz = fileBytes(path)) {
        // On disk but unknown to this store: compiled by an earlier
        // process (or an evicted entry another store re-made). Adopt
        // it — that is the warm start the store exists for.
        warmStarts_.add();
        Entry &e = entries_[key];
        e.path = path;
        e.bytes = sz;
        e.lastUse = ++useClock_;
        bytes_ += sz;
        evictOver(key);
        return path;
    }

    // Miss: this caller compiles; the in-flight marker holds back
    // every other requester of the same key.
    misses_.add();
    Entry &placeholder = entries_[key];
    placeholder.path = path;
    placeholder.inFlight = true;
    lk.unlock();

    bool ok = build(path);

    lk.lock();
    if (!ok) {
        entries_.erase(key);
        cv_.notify_all();
        return std::string();
    }
    Entry &e = entries_[key];
    e.inFlight = false;
    e.bytes = fileBytes(path);
    e.lastUse = ++useClock_;
    bytes_ += e.bytes;
    evictOver(key);
    cv_.notify_all();
    return path;
}

void
ArtifactStore::evictOver(uint64_t keep)
{
    if (!budget_)
        return;
    while (bytes_ > budget_) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->first == keep || it->second.inFlight)
                continue;
            if (victim == entries_.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim == entries_.end())
            return;     // nothing evictable (all in flight or `keep`)
        std::error_code ec;
        fs::remove(victim->second.path, ec);
        bytes_ -= victim->second.bytes;
        entries_.erase(victim);
        evictions_.add();
    }
}

uint64_t
ArtifactStore::bytesResident() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return bytes_;
}

size_t
ArtifactStore::entries() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return entries_.size();
}

bool
ArtifactStore::contains(uint64_t key) const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return entries_.count(key) != 0;
}

} // namespace parendi::serve
