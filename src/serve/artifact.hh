/**
 * @file
 * serve::ArtifactStore — the content-addressed store of compiled cgen
 * objects shared by every session of the simulation host. It
 * implements rtl::ArtifactCache, so engine construction resolves its
 * native kernels through the store instead of the per-process
 * directory cache (rtl/cgen.cc), and layers on top of the same
 * key → "parendi_<hex>.so" file layout:
 *
 *  - sharing: sessions of the same design (same netlistHash, same
 *    compiler command) hit the same entry — the second session of a
 *    design warm-starts without invoking the compiler;
 *  - single-flight: concurrent misses on one key run ONE compile;
 *    the other requesters block until it publishes (or fails);
 *  - LRU eviction by byte budget: the store tracks resident object
 *    sizes and evicts least-recently-acquired entries (deleting the
 *    .so from disk) once the budget is exceeded. Linux keeps
 *    dlopen()ed objects mapped after unlink, so evicting an artifact
 *    a live session still executes is safe — it just forces a
 *    recompile for the next session;
 *  - telemetry: hit / miss / warm-start / eviction counts are
 *    obs::Counters the Stats protocol op reports.
 */

#ifndef PARENDI_SERVE_ARTIFACT_HH
#define PARENDI_SERVE_ARTIFACT_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/counters.hh"
#include "rtl/cgen.hh"

namespace parendi::serve {

// Counter names the store registers (see DESIGN.md "Serving layer").
inline constexpr const char *kArtifactHits = "artifact_hits";
inline constexpr const char *kArtifactMisses = "artifact_misses";
inline constexpr const char *kArtifactWarmStarts = "artifact_warm_starts";
inline constexpr const char *kArtifactEvictions = "artifact_evictions";
inline constexpr const char *kArtifactCompileWaits =
    "artifact_compile_waits";

class ArtifactStore final : public rtl::ArtifactCache
{
  public:
    struct Options
    {
        /** Store directory. Empty selects $PARENDI_ARTIFACT_DIR, then
         *  $PARENDI_CGEN_DIR, then "<tmpdir>/parendi-cgen" — the same
         *  default as the directory cache, so a store warm-starts from
         *  artifacts earlier CLI runs compiled. */
        std::string dir;

        /** Resident-byte budget; 0 selects $PARENDI_ARTIFACT_BYTES,
         *  and unlimited when that is unset too. */
        uint64_t byteBudget = 0;
    };

    /** @p counters must outlive the store (the SessionManager owns
     *  both). Creates the store directory. */
    ArtifactStore(const Options &opt, obs::Counters &counters);

    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    /** rtl::ArtifactCache: resolve @p key, compiling at most once per
     *  key however many sessions ask concurrently. */
    std::string
    acquire(uint64_t key,
            const std::function<bool(const std::string &objectPath)>
                &build) override;

    const std::string &dir() const { return dir_; }
    uint64_t byteBudget() const { return budget_; }

    // Introspection (tests).
    uint64_t bytesResident() const;
    size_t entries() const;
    bool contains(uint64_t key) const;

  private:
    /** Evict LRU completed entries (never @p keep) until the resident
     *  bytes fit the budget. Caller holds mutex_. */
    void evictOver(uint64_t keep);

    struct Entry
    {
        std::string path;
        uint64_t bytes = 0;
        uint64_t lastUse = 0;   ///< acquire clock, for LRU order
        bool inFlight = false;  ///< a compile is running for this key
    };

    std::string dir_;
    uint64_t budget_ = 0;   ///< 0 = unlimited

    mutable std::mutex mutex_;
    std::condition_variable cv_;    ///< signalled when a flight lands
    std::unordered_map<uint64_t, Entry> entries_;
    uint64_t useClock_ = 0;
    uint64_t bytes_ = 0;    ///< resident (non-in-flight) total

    obs::Counter &hits_;
    obs::Counter &misses_;
    obs::Counter &warmStarts_;
    obs::Counter &evictions_;
    obs::Counter &compileWaits_;
};

} // namespace parendi::serve

#endif // PARENDI_SERVE_ARTIFACT_HH
