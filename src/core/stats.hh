/**
 * @file
 * Human-readable reporting over a compiled simulation: tile-load
 * distribution (the straggler picture of paper Fig. 6a/14), exchange
 * traffic summary, per-chip breakdown, and the compile report — what
 * a user reads to understand why their design simulates at the rate
 * it does.
 */

#ifndef PARENDI_CORE_STATS_HH
#define PARENDI_CORE_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/compiler.hh"
#include "obs/report.hh"

namespace parendi::core {

/** Distribution summary of per-tile compute loads. */
struct LoadStats
{
    uint64_t minLoad = 0;
    uint64_t p50 = 0;
    uint64_t p90 = 0;
    uint64_t maxLoad = 0;       ///< the straggler tile
    double mean = 0;
    double imbalance = 0;       ///< max / mean
    size_t tiles = 0;
};

/** Per-tile compute cycles of a partitioning. */
std::vector<uint64_t> tileLoads(const Simulation &sim);

/** Summarize the tile-load distribution. */
LoadStats computeLoadStats(const Simulation &sim);

/**
 * A multi-section plain-text report: design metrics, partitioning,
 * tile loads (with a small ASCII histogram), exchange traffic, and
 * the modeled cycle budget.
 */
std::string describeSimulation(const Simulation &sim);

/** The analytically modeled t_comp/t_comm/t_sync split of a compiled
 *  simulation (IPU cycles, paper Eq. 1), in the generic form
 *  obs::formatModeledVsMeasured() consumes next to a measured
 *  ProfileReport. */
obs::ModeledSplit modeledSplit(const Simulation &sim);

} // namespace parendi::core

#endif // PARENDI_CORE_STATS_HH
