#include "core/stats.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace parendi::core {

std::vector<uint64_t>
tileLoads(const Simulation &sim)
{
    std::vector<uint64_t> loads;
    loads.reserve(sim.partitioning().processes.size());
    for (const partition::Process &p : sim.partitioning().processes)
        loads.push_back(p.ipuCost);
    return loads;
}

LoadStats
computeLoadStats(const Simulation &sim)
{
    std::vector<uint64_t> loads = tileLoads(sim);
    LoadStats s;
    s.tiles = loads.size();
    if (loads.empty())
        return s;
    std::sort(loads.begin(), loads.end());
    s.minLoad = loads.front();
    s.maxLoad = loads.back();
    s.p50 = loads[loads.size() / 2];
    s.p90 = loads[static_cast<size_t>(
        static_cast<double>(loads.size() - 1) * 0.9)];
    uint64_t total = 0;
    for (uint64_t l : loads)
        total += l;
    s.mean = static_cast<double>(total) /
        static_cast<double>(loads.size());
    s.imbalance = s.mean > 0
        ? static_cast<double>(s.maxLoad) / s.mean : 0.0;
    return s;
}

std::string
describeSimulation(const Simulation &sim)
{
    std::ostringstream out;
    const CompileReport &r = sim.report();
    const ipu::CycleCosts &c = sim.cycleCosts();
    const ipu::ExchangeTraffic &t = sim.machine().traffic();

    out << "== design ==\n";
    out << "  " << rtl::describe(sim.netlist()) << "\n";
    out << strprintf("  optimizer: %zu -> %zu nodes (%zu folded, "
                     "%zu identities, %zu CSE, %zu dead)\n",
                     r.optStats.nodesBefore, r.optStats.nodesAfter,
                     r.optStats.folded, r.optStats.identities,
                     r.optStats.csed, r.optStats.dead);

    out << "== partitioning ==\n";
    out << strprintf("  %zu fibers -> %zu processes on %u chip(s); "
                     "duplication ratio %.3f\n",
                     r.fibers, r.processes, r.chips,
                     r.duplicationRatio);
    out << strprintf("  compile %.3f s, peak RSS %.1f MiB\n",
                     r.compileSeconds,
                     static_cast<double>(r.compileRssBytes) /
                         1048576.0);

    LoadStats ls = computeLoadStats(sim);
    out << "== tile loads (IPU cycles per RTL cycle) ==\n";
    out << strprintf("  min %llu / p50 %llu / p90 %llu / max %llu "
                     "(straggler), imbalance %.2fx\n",
                     static_cast<unsigned long long>(ls.minLoad),
                     static_cast<unsigned long long>(ls.p50),
                     static_cast<unsigned long long>(ls.p90),
                     static_cast<unsigned long long>(ls.maxLoad),
                     ls.imbalance);
    // A 10-bucket ASCII histogram.
    std::vector<uint64_t> loads = tileLoads(sim);
    if (!loads.empty() && ls.maxLoad > 0) {
        const int buckets = 10;
        std::vector<size_t> hist(buckets, 0);
        for (uint64_t l : loads) {
            size_t b = static_cast<size_t>(
                static_cast<double>(l) /
                static_cast<double>(ls.maxLoad + 1) * buckets);
            ++hist[std::min<size_t>(b, buckets - 1)];
        }
        size_t top = *std::max_element(hist.begin(), hist.end());
        for (int b = 0; b < buckets; ++b) {
            size_t bar = top ? hist[b] * 40 / top : 0;
            out << strprintf("  [%3d%%-%3d%%] %-40s %zu\n",
                             b * 10, (b + 1) * 10,
                             std::string(bar, '#').c_str(), hist[b]);
        }
    }

    out << "== exchange ==\n";
    out << strprintf("  on-chip %llu B/cycle (max tile %llu B), "
                     "off-chip %llu B/cycle\n",
                     static_cast<unsigned long long>(
                         t.totalOnChipBytes),
                     static_cast<unsigned long long>(
                         t.maxTileOnChipBytes),
                     static_cast<unsigned long long>(
                         t.totalOffChipBytes));

    out << "== modeled cycle budget ==\n";
    out << strprintf("  t_comp %.0f + t_comm %.0f + t_sync %.0f = "
                     "%.0f IPU cycles -> %.2f kHz\n",
                     c.tComp, c.tComm(), c.tSync, c.total(),
                     sim.rateKHz());
    return out.str();
}

obs::ModeledSplit
modeledSplit(const Simulation &sim)
{
    const ipu::CycleCosts &c = sim.cycleCosts();
    obs::ModeledSplit m;
    m.source = "ipu model";
    m.unit = "IPU cyc";
    m.comp = c.tComp;
    m.comm = c.tComm();
    m.sync = c.tSync;
    m.rateKHz = sim.rateKHz();
    return m;
}

} // namespace parendi::core
