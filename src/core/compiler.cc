#include "core/compiler.hh"

#include <chrono>

#include <sys/resource.h>

#include "util/logging.hh"

namespace parendi::core {

uint64_t
peakRssBytes()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
}

Simulation::Simulation(rtl::Netlist nl, const CompilerOptions &opt)
    : nl_(std::move(nl))
{
    auto start = std::chrono::steady_clock::now();

    nl_.check();
    if (rtl::hasCombinationalLoop(nl_))
        fatal("design %s has a combinational loop; Parendi cannot "
              "compile it (paper §5.3)", nl_.name().c_str());

    if (opt.optimize)
        nl_ = rtl::optimize(nl_, &report_.optStats);

    fibers_ = std::make_unique<fiber::FiberSet>(nl_, opt.cost);

    partition::PartitionOptions popt;
    popt.chips = opt.chips;
    popt.tilesPerChip = opt.tilesPerChip;
    popt.single = opt.single;
    popt.multi = opt.multi;
    popt.merge = opt.merge;
    popt.merge.tileMemoryBytes = std::min<uint64_t>(
        popt.merge.tileMemoryBytes, opt.arch.tileMemoryBytes);
    parts_ = partition::partitionDesign(*fibers_, popt,
                                        &report_.mergeStats);

    ipu::IpuArch arch = opt.arch;
    ipu::MachineOptions mopt = opt.machine;
    mopt.lower = opt.lower;
    machine_ = std::make_unique<ipu::IpuMachine>(*fibers_, parts_, arch,
                                                 mopt);

    auto end = std::chrono::steady_clock::now();
    report_.metrics = rtl::computeMetrics(nl_);
    report_.fibers = fibers_->size();
    report_.processes = parts_.processes.size();
    report_.chips = opt.chips;
    report_.compileSeconds =
        std::chrono::duration<double>(end - start).count();
    report_.compileRssBytes = peakRssBytes();
    report_.intCutBytes = machine_->traffic().totalOnChipBytes;
    report_.extCutBytes = machine_->traffic().totalOffChipBytes;
    report_.maxTileMemBytes = machine_->maxTileMemBytes();
    report_.duplicationRatio = parts_.duplicationRatio(*fibers_);
}

std::unique_ptr<Simulation>
compile(rtl::Netlist nl, const CompilerOptions &opt)
{
    return std::make_unique<Simulation>(std::move(nl), opt);
}

} // namespace parendi::core
