#include "core/engine.hh"

#include <unistd.h>

#include <utility>

#include "core/compiler.hh"
#include "obs/costprofile.hh"
#include "rtl/cgen.hh"
#include "rtl/event.hh"
#include "rtl/interp.hh"
#include "util/logging.hh"
#include "x86/parallel.hh"

namespace parendi::core {

bool
tryParseEngineKind(const std::string &name, EngineKind &kind)
{
    if (name == "interp")
        kind = EngineKind::Interp;
    else if (name == "event")
        kind = EngineKind::Event;
    else if (name == "ipu")
        kind = EngineKind::Ipu;
    else if (name == "par")
        kind = EngineKind::Par;
    else if (name == "cgen")
        kind = EngineKind::Cgen;
    else
        return false;
    return true;
}

EngineKind
parseEngineKind(const std::string &name)
{
    EngineKind kind;
    if (!tryParseEngineKind(name, kind))
        fatal("unknown engine '%s' (expected interp|event|ipu|par|cgen)",
              name.c_str());
    return kind;
}

namespace {

/**
 * The ipu engine owns a whole compiled Simulation (fibers +
 * partitioning + machine); the machine is itself the SimEngine.
 */
class CompiledIpuEngine : public SimEngine
{
  public:
    explicit CompiledIpuEngine(std::unique_ptr<Simulation> sim)
        : sim_(std::move(sim))
    {
    }

    const char *engineName() const override { return "ipu"; }
    const rtl::Netlist &
    netlist() const override
    {
        return sim_->netlist();
    }
    void step(size_t n = 1) override { sim_->machine().step(n); }
    void reset() override { sim_->machine().reset(); }
    uint64_t cycles() const override { return sim_->machine().cycles(); }
    void
    poke(const std::string &input, const rtl::BitVec &value) override
    {
        sim_->machine().poke(input, value);
    }
    void
    poke(const std::string &input, uint64_t value) override
    {
        sim_->machine().poke(input, value);
    }
    rtl::BitVec
    peek(const std::string &output) const override
    {
        return sim_->machine().peek(output);
    }
    rtl::BitVec
    peekRegister(const std::string &reg) const override
    {
        return sim_->machine().peekRegister(reg);
    }
    rtl::BitVec
    peekMemory(const std::string &mem, uint64_t index) const override
    {
        return sim_->machine().peekMemory(mem, index);
    }
    void
    peekInto(const std::string &output, rtl::BitVec &out) const override
    {
        sim_->machine().peekInto(output, out);
    }
    void
    peekRegisterInto(const std::string &reg,
                     rtl::BitVec &out) const override
    {
        sim_->machine().peekRegisterInto(reg, out);
    }
    bool
    saveState(std::ostream &out) const override
    {
        return sim_->machine().saveState(out);
    }
    bool
    restoreState(std::istream &in) override
    {
        return sim_->machine().restoreState(in);
    }
    bool
    exportArch(ArchState &out) const override
    {
        return sim_->machine().exportArch(out);
    }
    bool
    importArch(const ArchState &st) override
    {
        return sim_->machine().importArch(st);
    }
    bool
    enableProfiling(const obs::ProfileOptions &opt) override
    {
        return sim_->machine().enableProfiling(opt);
    }
    obs::SuperstepProfiler *
    profiler() override
    {
        return sim_->machine().profiler();
    }
    const obs::SuperstepProfiler *
    profiler() const override
    {
        return sim_->machine().profiler();
    }

  private:
    std::unique_ptr<Simulation> sim_;
};

/** Bytes one replica of @p nl needs live per lane: every node's slot
 *  words plus every memory image. The gang multiplies this by R. */
uint64_t
estimateReplicaBytes(const rtl::Netlist &nl)
{
    uint64_t bytes = 0;
    for (rtl::NodeId n = 0; n < nl.numNodes(); ++n)
        bytes += uint64_t(rtl::wordsFor(nl.widthOf(n))) * 8;
    for (rtl::MemId m = 0; m < nl.numMemories(); ++m)
        bytes += nl.mem(m).sizeBytes();
    return bytes;
}

/** Last-level cache size, or a 32 MiB guess when sysconf can't say. */
uint64_t
llcBytes()
{
#ifdef _SC_LEVEL3_CACHE_SIZE
    long sz = sysconf(_SC_LEVEL3_CACHE_SIZE);
    if (sz > 0)
        return static_cast<uint64_t>(sz);
#endif
    return uint64_t{32} << 20;
}

/**
 * Gang throughput falls off a cliff once R replicas of the design no
 * longer fit the last-level cache (the documented R=16 knee in
 * BENCH_PR8.json): every slot access then streams from DRAM. Warn once
 * per process with the largest R that still fits.
 */
void
maybeWarnGangCacheCliff(const rtl::Netlist &nl, uint32_t replicas)
{
    static bool warned = false;
    if (warned || replicas <= 1)
        return;
    uint64_t per = estimateReplicaBytes(nl);
    uint64_t total = per * replicas;
    uint64_t llc = llcBytes();
    if (total <= llc)
        return;
    warned = true;
    uint64_t fit = per ? llc / per : replicas;
    if (fit < 1)
        fit = 1;
    warn("gang state for --replicas %u is ~%llu KiB, past the ~%llu "
         "MiB last-level cache — throughput drops off this cliff "
         "(see BENCH_PR8.json at R=16); consider --replicas %llu or "
         "fewer",
         replicas, static_cast<unsigned long long>(total >> 10),
         static_cast<unsigned long long>(llc >> 20),
         static_cast<unsigned long long>(fit));
}

} // namespace

std::unique_ptr<SimEngine>
makeEngine(rtl::Netlist nl, const EngineOptions &opt)
{
    if (opt.cgen && opt.kind != EngineKind::Par &&
        opt.kind != EngineKind::Cgen)
        warn("native kernels (--cgen) only apply to the par and cgen "
             "engines; ignoring");
    uint32_t replicas = opt.replicas ? opt.replicas : 1;
    if (replicas > 1 &&
        (opt.kind == EngineKind::Event || opt.kind == EngineKind::Ipu)) {
        warn("gang simulation (--replicas) is not supported by the "
             "event and ipu engines; running a single replica");
        replicas = 1;
    }
    maybeWarnGangCacheCliff(nl, replicas);
    std::unique_ptr<SimEngine> engine;
    switch (opt.kind) {
      case EngineKind::Interp:
        engine = std::make_unique<rtl::Interpreter>(std::move(nl),
                                                    opt.lower, replicas);
        break;
      case EngineKind::Event:
        engine = std::make_unique<rtl::EventInterpreter>(std::move(nl),
                                                         opt.lower);
        break;
      case EngineKind::Cgen: {
        rtl::CgenOptions ccfg;
        ccfg.store = opt.artifacts;
        ccfg.lanes = replicas;
        engine = std::make_unique<rtl::CgenInterpreter>(std::move(nl),
                                                        opt.lower, ccfg);
        break;
      }
      case EngineKind::Par: {
        rtl::ParConfig pcfg;
        pcfg.fused = opt.fused;
        pcfg.batch = opt.batch;
        pcfg.pool = opt.pool;
        pcfg.replicas = replicas;
        pcfg.rebalance = opt.rebalance;
        obs::CostProfile measured;
        if (!opt.costProfileIn.empty() &&
            measured.load(opt.costProfileIn) && !measured.empty()) {
            inform("par: partitioning on %zu measured fiber costs "
                   "from %s", measured.size(),
                   opt.costProfileIn.c_str());
            pcfg.costIn = &measured;
        }
        auto par = std::make_unique<rtl::ParallelInterpreter>(
            std::move(nl), opt.threads, opt.lower, pcfg);
        if (opt.cgen) {
            rtl::CgenOptions ccfg;
            ccfg.store = opt.artifacts;
            par->enableNativeKernels(ccfg);
        }
        engine = std::move(par);
        break;
      }
      case EngineKind::Ipu: {
        CompilerOptions copt;
        copt.lower = opt.lower;
        copt.machine.lower = opt.lower;
        copt.machine.hostThreads = opt.threads;
        copt.machine.fused = opt.fused;
        copt.machine.batch = opt.batch;
        engine = std::make_unique<CompiledIpuEngine>(
            compile(std::move(nl), copt));
        break;
      }
    }
    if (!engine)
        panic("unhandled engine kind");
    // Activity-guarded eval (default on; --activity 0 is the
    // always-eval A/B baseline). Engines without a guarded path —
    // event, ipu, or a program whose activity plan could not be
    // built — return false and keep running always-eval.
    if (opt.activity)
        engine->setActivity(true);
    // Telemetry-directed repartitioning reads the profiler's
    // per-shard straggler stats, so --rebalance implies --profile.
    const bool needProfile = opt.profile || opt.rebalance > 0;
    if (needProfile && !engine->enableProfiling(opt.profileOpt)) {
        if (opt.profile)
            warn("engine %s has no runtime instrumentation; --profile "
                 "ignored", engine->engineName());
        else
            warn("engine %s has no runtime instrumentation; "
                 "--rebalance ignored", engine->engineName());
    }
    return engine;
}

} // namespace parendi::core
