/**
 * @file
 * SessionHandle: the host-facing facade of one simulation session — a
 * SimEngine plus its design identity (name and content hash) and a
 * versioned checkpoint envelope. The serving layer (src/serve) wraps
 * every session in one of these; embedders that want checkpoint
 * headers without a server use the free functions directly.
 *
 * Checkpoint format: engines serialize raw, headerless state blobs
 * (SimEngine::saveState). saveCheckpoint() prepends an envelope
 *
 *    [8B magic "PRNDCKPT"] [u32 version] [u64 design hash]
 *
 * so a blob restored into the wrong design — or a blob from a future
 * format — fails with a clear error instead of a word-count fatal()
 * deep inside EvalState. restoreCheckpoint() accepts envelope-less
 * blobs as version 0 (the pre-header format): if the first 8 bytes are
 * not the magic, the stream is rewound and handed to the engine as-is,
 * so old checkpoints keep restoring (with only the legacy size
 * checks).
 */

#ifndef PARENDI_CORE_SESSION_HH
#define PARENDI_CORE_SESSION_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>

#include "core/engine.hh"

namespace parendi::core {

/** First 8 bytes of a headered checkpoint ("PRNDCKPT", little-endian
 *  u64). A v0 blob starts with a cycle count instead, which can only
 *  collide with the magic after ~5.8e18 simulated cycles. */
inline constexpr uint64_t kCheckpointMagic = 0x54504b43444e5250ull;

/** Current envelope version. v0 is the reserved "headerless" value. */
inline constexpr uint32_t kCheckpointVersion = 1;

/** Write @p engine's state with the versioned envelope. fatal() when
 *  the engine has no checkpoint support (the event engine). */
void saveCheckpoint(const SimEngine &engine, std::ostream &out);

/**
 * Restore @p engine from a checkpoint stream: verify the envelope
 * (magic, version, design hash against netlistHash(engine.netlist()))
 * and hand the body to the engine; envelope-less streams restore as
 * v0. fatal() with a descriptive message on any mismatch — callers
 * that must not die (the server) catch FatalError.
 */
void restoreCheckpoint(SimEngine &engine, std::istream &in);

/**
 * One simulation session: an engine, the design name it was created
 * from, and the design's content hash (computed once at construction).
 * Movable, not copyable; the engine is owned.
 */
class SessionHandle
{
  public:
    /** @p engine must be non-null; @p designName is the creation spec
     *  (a builtin design name, a file path — whatever the host used),
     *  kept for listings and error messages. */
    SessionHandle(std::unique_ptr<SimEngine> engine,
                  std::string designName);

    SessionHandle(SessionHandle &&) = default;
    SessionHandle &operator=(SessionHandle &&) = default;

    SimEngine &engine() { return *engine_; }
    const SimEngine &engine() const { return *engine_; }

    const std::string &designName() const { return designName_; }
    /** rtl::netlistHash of the engine's design. */
    uint64_t designHash() const { return designHash_; }

    // Convenience forwards.
    void step(size_t n = 1) { engine_->step(n); }
    uint64_t cycles() const { return engine_->cycles(); }

    /** Headered checkpoint of this session (see saveCheckpoint). */
    void checkpoint(std::ostream &out) const;
    /** Restore a (headered or v0) checkpoint into this session. */
    void restore(std::istream &in);

  private:
    std::unique_ptr<SimEngine> engine_;
    std::string designName_;
    uint64_t designHash_ = 0;
};

} // namespace parendi::core

#endif // PARENDI_CORE_SESSION_HH
