/**
 * @file
 * SessionHandle: the host-facing facade of one simulation session — a
 * SimEngine plus its design identity (name and content hash) and a
 * versioned checkpoint envelope. The serving layer (src/serve) wraps
 * every session in one of these; embedders that want checkpoint
 * headers without a server use the free functions directly.
 *
 * Checkpoint format: every stream carries the envelope
 *
 *    [8B magic "PRNDCKPT"] [u32 version] [u64 design hash]
 *
 * so a blob restored into the wrong design — or a blob from a future
 * format — fails with a clear error instead of a word-count fatal()
 * deep inside EvalState. Three versions restore:
 *
 *  - v0: envelope-less (the pre-header format). If the first 8 bytes
 *    are not the magic, the stream is rewound and handed to the
 *    engine's raw restoreState as-is.
 *  - v1: envelope + the engine's raw, headerless state blob
 *    (SimEngine::saveState) — engine-layout-specific, so it only
 *    restores into the same engine kind at the same shard/thread
 *    configuration.
 *  - v2 (current): envelope + a bit-packed, delta-coded snapshot chain
 *    of the canonical architectural state (src/ckpt/snapshot.hh) —
 *    engine-portable (save from par@8, restore into interp) and
 *    typically a fraction of the v1 blob size.
 *
 * saveCheckpoint() writes v2 when the engine exports architectural
 * state and falls back to v1 otherwise (saveCheckpointV1 forces the
 * raw-blob format, e.g. for the cross-version compatibility tests).
 */

#ifndef PARENDI_CORE_SESSION_HH
#define PARENDI_CORE_SESSION_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>

#include "core/engine.hh"

namespace parendi::ckpt {
class JournalWriter;
}

namespace parendi::core {

/** First 8 bytes of a headered checkpoint ("PRNDCKPT", little-endian
 *  u64). A v0 blob starts with a cycle count instead, which can only
 *  collide with the magic after ~5.8e18 simulated cycles. */
inline constexpr uint64_t kCheckpointMagic = 0x54504b43444e5250ull;

/** Current envelope version. v0 is the reserved "headerless" value. */
inline constexpr uint32_t kCheckpointVersion = 2;

/** Write @p engine's state with the versioned envelope: v2 (compact
 *  architectural snapshot) when the engine supports it, v1 (raw
 *  blob) otherwise. fatal() when the engine has no checkpoint support
 *  at all (the event engine). */
void saveCheckpoint(const SimEngine &engine, std::ostream &out);

/** Force the v1 raw-blob format (engine-layout-specific). */
void saveCheckpointV1(const SimEngine &engine, std::ostream &out);

/**
 * Restore @p engine from a checkpoint stream: verify the envelope
 * (magic, version, design hash against netlistHash(engine.netlist()))
 * and hand the body to the engine; envelope-less streams restore as
 * v0. fatal() with a descriptive message on any mismatch — callers
 * that must not die (the server) catch FatalError.
 */
void restoreCheckpoint(SimEngine &engine, std::istream &in);

/**
 * One simulation session: an engine, the design name it was created
 * from, and the design's content hash (computed once at construction).
 * Movable, not copyable; the engine is owned.
 */
class SessionHandle
{
  public:
    /** @p engine must be non-null; @p designName is the creation spec
     *  (a builtin design name, a file path — whatever the host used),
     *  kept for listings and error messages. */
    SessionHandle(std::unique_ptr<SimEngine> engine,
                  std::string designName);

    SessionHandle(SessionHandle &&) = default;
    SessionHandle &operator=(SessionHandle &&) = default;

    SimEngine &engine() { return *engine_; }
    const SimEngine &engine() const { return *engine_; }

    const std::string &designName() const { return designName_; }
    /** rtl::netlistHash of the engine's design. */
    uint64_t designHash() const { return designHash_; }

    // Convenience forwards. Routing stimulus through these (rather
    // than engine() directly) records it in the attached journal, so
    // the session's runs are replayable (ckpt::replayJournal).
    void step(size_t n = 1);
    void poke(const std::string &input, const rtl::BitVec &value);
    void pokeLane(const std::string &input, const rtl::BitVec &value,
                  uint32_t lane);
    void reset();
    uint64_t cycles() const { return engine_->cycles(); }

    /**
     * Attach (or detach, with nullptr) a deterministic input journal:
     * every step/poke/reset routed through this handle is recorded,
     * and checkpoint() marks its snapshot point. The writer is not
     * owned and must outlive the attachment.
     */
    void attachJournal(ckpt::JournalWriter *journal)
    {
        journal_ = journal;
    }
    ckpt::JournalWriter *journal() const { return journal_; }

    /** Headered checkpoint of this session (see saveCheckpoint).
     *  With a journal attached, also records the snapshot marker
     *  replayJournal() resumes from. */
    void checkpoint(std::ostream &out);
    /** Restore a (headered v1/v2 or headerless v0) checkpoint into
     *  this session. */
    void restore(std::istream &in);

  private:
    std::unique_ptr<SimEngine> engine_;
    std::string designName_;
    uint64_t designHash_ = 0;
    ckpt::JournalWriter *journal_ = nullptr;
    uint32_t checkpoints_ = 0;  ///< snapshot markers recorded so far
};

} // namespace parendi::core

#endif // PARENDI_CORE_SESSION_HH
