/**
 * @file
 * The Parendi compiler: the public entry point that lowers an RTL
 * netlist to a partitioned BSP simulation on the (simulated) IPU
 * system (paper §5). The pipeline is:
 *
 *   netlist -> fiber extraction -> 4-stage partitioning -> tile
 *   placement & exchange schedule -> executable IpuMachine
 *
 * The user selects the number of chips/tiles, the partitioning
 * strategy, and IPU-specific optimizations (differential array
 * exchange). A CompileReport captures the statistics the paper
 * reports per design (Table 2 and Table 3 columns).
 */

#ifndef PARENDI_CORE_COMPILER_HH
#define PARENDI_CORE_COMPILER_HH

#include <memory>

#include "fiber/fiber.hh"
#include "ipu/machine.hh"
#include "partition/strategy.hh"
#include "rtl/analysis.hh"
#include "rtl/netlist.hh"
#include "rtl/opt.hh"

namespace parendi::core {

struct CompilerOptions
{
    uint32_t chips = 1;
    uint32_t tilesPerChip = 1472;
    /** Run the netlist optimizer (constant folding, CSE, identities,
     *  DCE — the Verilator "-O3" heritage) before partitioning. */
    bool optimize = true;
    /** Evaluation-program lowering applied to every engine consuming
     *  the compiled EvalProgram form (tile programs). Disable fusion
     *  or specialization here for A/B comparisons; functional
     *  behaviour is identical either way. */
    rtl::LowerOptions lower;
    partition::SingleChipStrategy single =
        partition::SingleChipStrategy::BottomUp;
    partition::MultiChipStrategy multi =
        partition::MultiChipStrategy::Pre;
    partition::MergeOptions merge;
    ipu::MachineOptions machine;
    ipu::IpuArch arch;
    fiber::CostModel cost;
};

/** Per-compile statistics (Table 2 / Table 3 bookkeeping). */
struct CompileReport
{
    rtl::OptStats optStats;
    rtl::NetlistMetrics metrics;
    size_t fibers = 0;
    size_t processes = 0;
    uint32_t chips = 1;
    partition::MergeStats mergeStats;
    double compileSeconds = 0;
    uint64_t compileRssBytes = 0;   ///< peak RSS observed at compile end
    uint64_t intCutBytes = 0;       ///< on-chip exchange bytes/cycle
    uint64_t extCutBytes = 0;       ///< off-chip exchange bytes/cycle
    uint64_t maxTileMemBytes = 0;
    double duplicationRatio = 1.0;
};

/**
 * A compiled, runnable simulation. Owns the netlist, the fiber
 * decomposition, the partitioning, and the machine.
 */
class Simulation
{
  public:
    Simulation(rtl::Netlist nl, const CompilerOptions &opt);

    ipu::IpuMachine &machine() { return *machine_; }
    const ipu::IpuMachine &machine() const { return *machine_; }

    const rtl::Netlist &netlist() const { return nl_; }
    const fiber::FiberSet &fibers() const { return *fibers_; }
    const partition::Partitioning &partitioning() const { return parts_; }
    const CompileReport &report() const { return report_; }

    // Convenience forwards.
    void step(size_t n = 1) { machine_->step(n); }
    double rateKHz() const { return machine_->rateKHz(); }
    const ipu::CycleCosts &cycleCosts() const
    {
        return machine_->cycleCosts();
    }

  private:
    rtl::Netlist nl_;
    std::unique_ptr<fiber::FiberSet> fibers_;
    partition::Partitioning parts_;
    std::unique_ptr<ipu::IpuMachine> machine_;
    CompileReport report_;
};

/**
 * Compile @p nl for the configured IPU system. The netlist is taken by
 * value (move it in). Calls fatal() if the design has combinational
 * loops or does not fit the machine.
 */
std::unique_ptr<Simulation> compile(rtl::Netlist nl,
                                    const CompilerOptions &opt =
                                        CompilerOptions{});

/** Current process peak RSS in bytes (compile memory reporting). */
uint64_t peakRssBytes();

} // namespace parendi::core

#endif // PARENDI_CORE_COMPILER_HH
