#include "core/session.hh"

#include <istream>
#include <ostream>

#include "ckpt/journal.hh"
#include "ckpt/snapshot.hh"
#include "util/logging.hh"

namespace parendi::core {

void
saveCheckpointV1(const SimEngine &engine, std::ostream &out)
{
    uint64_t magic = kCheckpointMagic;
    uint32_t version = 1;
    uint64_t hash = rtl::netlistHash(engine.netlist());
    out.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char *>(&version),
              sizeof(version));
    out.write(reinterpret_cast<const char *>(&hash), sizeof(hash));
    if (!engine.saveState(out))
        fatal("engine %s has no checkpoint support",
              engine.engineName());
}

void
saveCheckpoint(const SimEngine &engine, std::ostream &out)
{
    // v2 when the engine has an architectural view (compact,
    // engine-portable); the raw-blob v1 envelope otherwise.
    ArchState st;
    if (engine.exportArch(st)) {
        ckpt::SnapshotWriter writer(out, engine.netlist());
        writer.write(st);
        return;
    }
    saveCheckpointV1(engine, out);
}

void
restoreCheckpoint(SimEngine &engine, std::istream &in)
{
    std::streampos start = in.tellg();
    uint64_t magic = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    if (!in || magic != kCheckpointMagic) {
        // v0: a headerless blob (or one too short to even hold the
        // magic — the engine's own size checks reject that). Rewind
        // and hand the whole stream to the engine.
        in.clear();
        in.seekg(start);
        if (!in)
            fatal("checkpoint stream is not seekable; cannot fall "
                  "back to headerless (v0) restore");
        if (!engine.restoreState(in))
            fatal("engine %s has no checkpoint support",
                  engine.engineName());
        return;
    }
    uint32_t version = 0;
    uint64_t hash = 0;
    in.read(reinterpret_cast<char *>(&version), sizeof(version));
    in.read(reinterpret_cast<char *>(&hash), sizeof(hash));
    if (!in)
        fatal("checkpoint header truncated");
    if (version == 0 || version > kCheckpointVersion)
        fatal("checkpoint format version %u not supported (this build "
              "reads versions 0-%u)", version, kCheckpointVersion);
    uint64_t want = rtl::netlistHash(engine.netlist());
    if (hash != want)
        fatal("checkpoint is for a different design: blob design hash "
              "%016llx, this session's design hashes %016llx — "
              "restore it into a session created from the same design",
              static_cast<unsigned long long>(hash),
              static_cast<unsigned long long>(want));
    if (version == 2) {
        // The snapshot reader consumes the envelope itself; rewind to
        // the stream start and hand it the whole chain (restoring the
        // last record).
        in.clear();
        in.seekg(start);
        if (!in)
            fatal("checkpoint stream is not seekable; cannot restore "
                  "a v2 snapshot chain");
        ckpt::restoreSnapshotChain(in, engine);
        return;
    }
    if (!engine.restoreState(in))
        fatal("engine %s has no checkpoint support",
              engine.engineName());
}

SessionHandle::SessionHandle(std::unique_ptr<SimEngine> engine,
                             std::string designName)
    : engine_(std::move(engine)), designName_(std::move(designName))
{
    if (!engine_)
        panic("SessionHandle requires an engine");
    designHash_ = rtl::netlistHash(engine_->netlist());
}

void
SessionHandle::step(size_t n)
{
    engine_->step(n);
    if (journal_)
        journal_->recordStep(n);
}

void
SessionHandle::poke(const std::string &input, const rtl::BitVec &value)
{
    engine_->poke(input, value);
    if (journal_)
        journal_->recordPoke(input, value);
}

void
SessionHandle::pokeLane(const std::string &input,
                        const rtl::BitVec &value, uint32_t lane)
{
    engine_->pokeLane(input, value, lane);
    if (journal_)
        journal_->recordPoke(input, value, lane);
}

void
SessionHandle::reset()
{
    engine_->reset();
    if (journal_)
        journal_->recordReset();
}

void
SessionHandle::checkpoint(std::ostream &out)
{
    saveCheckpoint(*engine_, out);
    if (journal_)
        journal_->recordSnapshot(checkpoints_, engine_->cycles());
    ++checkpoints_;
}

void
SessionHandle::restore(std::istream &in)
{
    restoreCheckpoint(*engine_, in);
}

} // namespace parendi::core
