/**
 * @file
 * SimEngine: the uniform host-facing surface of every functional RTL
 * engine in the tree — the reference interpreter, the event-driven
 * interpreter, the simulated IPU machine, and the parallel host
 * interpreter. Test harnesses, the VCD tracer, and the CLI driver
 * operate on this interface so any engine can be swapped in; the
 * engines are bit-identical by construction (they all execute lowered
 * EvalPrograms of the same netlist), so "same stimulus in, same values
 * out" holds across the whole matrix.
 *
 * This header is intentionally free of any core-library dependency
 * (everything is inline) so the rtl/ipu/x86 libraries can implement
 * the interface without linking parendi_core. The makeEngine factory,
 * which needs the whole compiler, lives in engine.cc inside
 * parendi_core.
 */

#ifndef PARENDI_CORE_ENGINE_HH
#define PARENDI_CORE_ENGINE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/profiler.hh"
#include "rtl/eval.hh"
#include "rtl/netlist.hh"

namespace parendi::util {
class BspPool;
}

namespace parendi::rtl {
class ArtifactCache;
}

namespace parendi::obs {
struct CostProfile;
}

namespace parendi::core {

/**
 * Canonical architectural state of one simulation session, in netlist
 * identity order — the engine-independent currency of the v2
 * checkpoint format (src/ckpt). Registers, memory entries and input
 * port values are indexed by their netlist ids; gang engines carry
 * every replica lane. Because every engine is bit-identical by
 * construction, a state exported from one engine imports into any
 * other engine of the same design (par@8 -> interp, cgen -> gang par)
 * and the continuation stays bit-identical — shard layout, slot
 * numbering and lane-major padding never leak into the format.
 */
struct ArchState
{
    uint64_t cycles = 0;
    uint32_t lanes = 1;
    /** [RegId][lane] current register values. */
    std::vector<std::vector<rtl::BitVec>> regs;
    /** [MemId][entry * lanes + lane] memory images. */
    std::vector<std::vector<rtl::BitVec>> mems;
    /** [PortId][lane] last poked input port values. */
    std::vector<std::vector<rtl::BitVec>> inputs;
};

class SimEngine
{
  public:
    virtual ~SimEngine() = default;

    /** Stable identifier ("interp", "event", "ipu", "par", "cgen"). */
    virtual const char *engineName() const = 0;

    /** The design this engine simulates. */
    virtual const rtl::Netlist &netlist() const = 0;

    /** Simulate @p n full RTL cycles. */
    virtual void step(size_t n = 1) = 0;

    /** Restore initial state (cycle count returns to 0). */
    virtual void reset() = 0;

    /** Cycles simulated since construction/reset. */
    virtual uint64_t cycles() const = 0;

    /** Drive an input port; combinationally visible immediately. */
    virtual void poke(const std::string &input,
                      const rtl::BitVec &value) = 0;
    virtual void poke(const std::string &input, uint64_t value) = 0;

    /** Sample an output port. */
    virtual rtl::BitVec peek(const std::string &output) const = 0;

    /** Read a register's current value by name. */
    virtual rtl::BitVec peekRegister(const std::string &reg) const = 0;

    /** Read one memory entry by memory name. */
    virtual rtl::BitVec peekMemory(const std::string &mem,
                                   uint64_t index) const = 0;

    // -- Gang simulation (replica lanes) --------------------------------
    //
    // Engines built with EngineOptions::replicas = R > 1 step R
    // independent instances of the design in lock-step (one instruction
    // stream, R SoA lanes). The scalar poke/peek API keeps working on a
    // gang engine with broadcast/lane-0 semantics: poke drives every
    // lane (so identical stimuli reproduce the scalar run bit-for-bit
    // in all lanes), peek reads lane 0. The lane-indexed calls below
    // give each lane its own stimuli and observation; the defaults
    // forward to the scalar API so single-replica engines need no
    // changes.

    /** Number of replica lanes this engine steps per cycle (1 unless
     *  built as a gang). */
    virtual uint32_t replicas() const { return 1; }

    /** Drive an input port of one lane only. */
    virtual void
    pokeLane(const std::string &input, const rtl::BitVec &value,
             uint32_t lane)
    {
        (void)lane;
        poke(input, value);
    }
    virtual void
    pokeLane(const std::string &input, uint64_t value, uint32_t lane)
    {
        (void)lane;
        poke(input, value);
    }

    /** Sample an output port of one lane. */
    virtual rtl::BitVec
    peekLane(const std::string &output, uint32_t lane) const
    {
        (void)lane;
        return peek(output);
    }

    /** Read a register's current value in one lane. */
    virtual rtl::BitVec
    peekRegisterLane(const std::string &reg, uint32_t lane) const
    {
        (void)lane;
        return peekRegister(reg);
    }

    /** Read one memory entry in one lane. */
    virtual rtl::BitVec
    peekMemoryLane(const std::string &mem, uint64_t index,
                   uint32_t lane) const
    {
        (void)lane;
        return peekMemory(mem, index);
    }

    /**
     * peek()/peekRegister() into a caller-owned BitVec. Engines with
     * direct slot access override these to reuse @p out's buffer (the
     * allocation-free sampling path of the VCD tracer); the default
     * just forwards to the allocating peek.
     */
    virtual void
    peekInto(const std::string &output, rtl::BitVec &out) const
    {
        out = peek(output);
    }

    virtual void
    peekRegisterInto(const std::string &reg, rtl::BitVec &out) const
    {
        out = peekRegister(reg);
    }

    /**
     * Attach a runtime telemetry profiler (obs::SuperstepProfiler) to
     * this engine: monotonic counters every cycle, per-worker
     * superstep timestamps plus the per-shard straggler distribution
     * every opt.sampleEvery-th cycle. Returns false if the engine has
     * no instrumentation (the default; the event engine). Idempotent:
     * a second call keeps the existing profiler.
     */
    virtual bool
    enableProfiling(const obs::ProfileOptions &opt = obs::ProfileOptions{})
    {
        (void)opt;
        return false;
    }

    /** The attached profiler, or nullptr when profiling is off. */
    virtual obs::SuperstepProfiler *profiler() { return nullptr; }
    virtual const obs::SuperstepProfiler *
    profiler() const
    {
        return nullptr;
    }

    /**
     * Activity-guarded evaluation: skip combinational groups whose
     * input cone is unchanged since the previous cycle (see
     * rtl::EvalState::enableActivity). Bit-identical to always-eval by
     * construction. Returns false when the engine has no guarded path
     * (the default; the event and ipu engines) — always-eval stays in
     * effect.
     */
    virtual bool
    setActivity(bool on)
    {
        (void)on;
        return false;
    }

    virtual bool activityEnabled() const { return false; }

    /**
     * Export measured per-fiber evaluation costs (obs::CostProfile),
     * attributing each shard's profiled eval ticks to the fibers
     * packed on it. Requires an attached profiler that has sampled at
     * least one cycle; returns false otherwise (and for engines
     * without a fiber partition — the default).
     */
    virtual bool
    collectCostProfile(obs::CostProfile &out) const
    {
        (void)out;
        return false;
    }

    /**
     * Serialize all mutable simulation state (including the cycle
     * count) as a raw, headerless blob; restoreState() reads it back
     * on an engine built from the same design. Returns false when the
     * engine has no checkpoint support (the default; the event
     * engine). Hosts should prefer core::saveCheckpoint /
     * core::restoreCheckpoint (core/session.hh), which wrap the blob
     * in a versioned, design-hash-stamped header.
     */
    virtual bool
    saveState(std::ostream &out) const
    {
        (void)out;
        return false;
    }

    virtual bool
    restoreState(std::istream &in)
    {
        (void)in;
        return false;
    }

    /**
     * Export the canonical architectural state (see ArchState) —
     * the engine-portable alternative to saveState's raw blob, and
     * what the v2 checkpoint format (src/ckpt) serializes. Returns
     * false when the engine has no architectural view (the default;
     * the event engine).
     */
    virtual bool
    exportArch(ArchState &out) const
    {
        (void)out;
        return false;
    }

    /**
     * Import an architectural state exported by any engine of the
     * same design (and, for gang engines, the same lane count):
     * restores registers, memories, inputs and the cycle count, then
     * re-evaluates combinational logic, so the continuation is
     * bit-identical to the exporting engine's. Returns false when
     * unsupported; fatal() on a shape mismatch.
     */
    virtual bool
    importArch(const ArchState &st)
    {
        (void)st;
        return false;
    }
};

/** Which engine makeEngine() instantiates. */
enum class EngineKind { Interp, Event, Ipu, Par, Cgen };

/** Parse "interp" / "event" / "ipu" / "par" / "cgen" into @p kind;
 *  false on an unknown name. The non-throwing form servers use to
 *  reject a bad create-session request without killing the process. */
bool tryParseEngineKind(const std::string &name, EngineKind &kind);

/** Parse "interp" / "event" / "ipu" / "par" / "cgen"; fatal()
 *  otherwise (the CLI path, where a bad name should end the run). */
EngineKind parseEngineKind(const std::string &name);

struct EngineOptions
{
    EngineKind kind = EngineKind::Ipu;
    /** Host worker threads for the ipu and par engines (0/1 =
     *  sequential). Ignored by interp and event. */
    uint32_t threads = 0;
    /** Program lowering applied to whichever engine is built. */
    rtl::LowerOptions lower;
    /** Attach native codegen kernels (rtl/cgen) to the par engine's
     *  shards. The cgen engine implies this; ipu/interp/event ignore
     *  it. No-op (with a warning) when no toolchain is available. */
    bool cgen = false;
    /** Enable runtime telemetry (SimEngine::enableProfiling) on the
     *  built engine; profileOpt.sampleEvery is the --profile-every
     *  CLI knob. Engines without instrumentation warn and run
     *  unprofiled. */
    bool profile = false;
    obs::ProfileOptions profileOpt;
    /** Fused single-barrier supersteps for the par and ipu engines
     *  (the default; `--fused 0` selects the 4-barrier phased path).
     *  Bit-identical either way. */
    bool fused = true;
    /** Fused path: cycles per pool dispatch (`--batch N`; 0 = each
     *  step(n) call is one batch). */
    size_t batch = 0;
    /** Externally owned BSP worker pool for the par engine, shared
     *  across engines (the serving layer's fair-share scheduler steps
     *  many sessions on one pool). Null = the engine owns a private
     *  pool. See ParConfig::pool for the sharing contract. */
    std::shared_ptr<util::BspPool> pool;
    /** Artifact cache that cgen compiles resolve through (par --cgen
     *  and the cgen engine). Null = the per-process directory cache.
     *  Must outlive the engine. See rtl::ArtifactCache. */
    rtl::ArtifactCache *artifacts = nullptr;
    /** Gang simulation: replica lanes stepped in lock-step per cycle
     *  (`--replicas N`). Supported by the interp, cgen and par engines
     *  (lanes compose with par threads); event and ipu warn and run a
     *  single replica. 1 = scalar. */
    uint32_t replicas = 1;
    /** Activity-guarded evaluation (`--activity`; default on): skip
     *  combinational groups whose inputs are unchanged. `--activity 0`
     *  is the always-eval A/B baseline. Engines without a guarded path
     *  (event, ipu) silently run always-eval. */
    bool activity = true;
    /** Load measured per-fiber costs from this file (see
     *  obs::CostProfile) and let the par engine's LPT partition use
     *  them in place of the static x86 cost model (`--cost-profile`).
     *  Missing or unreadable file: static costs with a warning. */
    std::string costProfileIn;
    /** Telemetry-directed repartitioning (`--rebalance R`, par engine
     *  only): between stepped batches, when the profiled per-shard
     *  eval-tick skew max/mean exceeds R, re-run LPT on the measured
     *  costs and migrate state onto the new packing. 0 = off. Implies
     *  profiling. */
    double rebalance = 0.0;
};

/**
 * Build an engine over @p nl (taken by value; move it in). The ipu
 * engine runs the full compiler pipeline with default CompilerOptions
 * (hostThreads/lower overridden from @p opt).
 */
std::unique_ptr<SimEngine> makeEngine(rtl::Netlist nl,
                                      const EngineOptions &opt);

} // namespace parendi::core

#endif // PARENDI_CORE_ENGINE_HH
