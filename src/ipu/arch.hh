/**
 * @file
 * Architectural parameters of the simulated Graphcore IPU system (an
 * M2000: 4 IPUs x 1472 tiles, paper §2), plus the synchronization cost
 * model measured in §4.1. Communication cost lives in ipu/exchange.hh.
 *
 * Calibration sources (paper):
 *  - 1472 tiles/chip, 624 KiB/tile, ~200 KiB of it executable code.
 *  - native BSP barrier: "a few hundred IPU cycles"; crossing chips
 *    costs more (off-chip sync network).
 *  - on-chip exchange: 7.7 TiB/s measured aggregate; off-chip (board
 *    fabric): 107 GiB/s measured.
 *  - M2000 tile clock 1.325 GHz.
 */

#ifndef PARENDI_IPU_ARCH_HH
#define PARENDI_IPU_ARCH_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace parendi::ipu {

struct IpuArch
{
    uint32_t tilesPerChip = 1472;
    uint32_t maxChips = 4;
    double clockGHz = 1.325;

    uint64_t tileMemoryBytes = 624 * 1024;
    uint64_t tileCodeBytes = 200 * 1024;

    /// Exchange: bytes a tile can send (and receive) per clock on-chip.
    double onChipBytesPerCycleTile = 4.0;
    /// Fixed on-chip exchange setup latency (cycles).
    double onChipLatency = 64.0;
    /// Aggregate on-chip fabric capacity, bytes per clock (11 TiB/s
    /// peak at 1.325 GHz ~ 8900 B/cycle; we use the measured 7.7 TiB/s).
    double onChipFabricBytesPerCycle = 6200.0;

    /// Board fabric: total off-chip bytes per clock (107 GiB/s
    /// measured / 1.325 GHz ~ 87 B/cycle).
    double offChipBytesPerCycle = 87.0;
    /// Fixed off-chip exchange latency (cycles).
    double offChipLatency = 1100.0;

    /// Hardware barrier: base cost plus a slow growth with tile count.
    double syncBase = 120.0;
    double syncPerLog2Tile = 14.0;
    /// Extra cost when the barrier spans multiple chips (the
    /// dedicated sync network is fast; most of the multi-chip cost
    /// shows up in the exchange, not the barrier).
    double syncCrossChip = 90.0;

    /// Fixed per-tile control overhead added to t_comp each cycle
    /// (supervisor dispatch, loop bookkeeping).
    double tileLoopOverhead = 40.0;

    /** One global barrier across @p tiles tiles on @p chips chips. */
    double
    barrierCycles(uint32_t tiles, uint32_t chips) const
    {
        double c = syncBase +
            syncPerLog2Tile * std::log2(std::max<uint32_t>(tiles, 2));
        if (chips > 1)
            c += syncCrossChip * std::log2(static_cast<double>(chips) * 2);
        return c;
    }

    /** kHz for a given per-RTL-cycle cost in IPU clock cycles. */
    double
    rateKHz(double cycles_per_rtl_cycle) const
    {
        return clockGHz * 1e6 / cycles_per_rtl_cycle;
    }
};

} // namespace parendi::ipu

#endif // PARENDI_IPU_ARCH_HH
