#include "ipu/exchange.hh"

#include <algorithm>
#include <cmath>

namespace parendi::ipu {

double
onChipExchangeCycles(const IpuArch &arch, uint64_t max_tile_bytes,
                     uint64_t total_bytes_per_chip)
{
    if (max_tile_bytes == 0)
        return 0.0;
    // Serialization of the busiest tile's traffic.
    double cycles = arch.onChipLatency +
        static_cast<double>(max_tile_bytes) /
            arch.onChipBytesPerCycleTile;
    // Mild contention once the aggregate approaches fabric capacity.
    double util = static_cast<double>(total_bytes_per_chip) /
        (arch.onChipFabricBytesPerCycle * std::max(cycles, 1.0));
    if (util > 0.5)
        cycles *= 1.0 + (util - 0.5);
    return cycles;
}

double
offChipExchangeCycles(const IpuArch &arch, uint64_t total_off_chip_bytes)
{
    if (total_off_chip_bytes == 0)
        return 0.0;
    return arch.offChipLatency +
        static_cast<double>(total_off_chip_bytes) /
            arch.offChipBytesPerCycle;
}

double
exchangeCycles(const IpuArch &arch, const ExchangeTraffic &t)
{
    uint64_t per_chip = t.chips
        ? t.totalOnChipBytes / t.chips : t.totalOnChipBytes;
    return onChipExchangeCycles(arch, t.maxTileOnChipBytes, per_chip) +
        offChipExchangeCycles(arch, t.totalOffChipBytes);
}

double
pairwiseExchangeCycles(const IpuArch &arch, uint32_t m, uint32_t b,
                       bool off_chip)
{
    double sync = arch.barrierCycles(2 * m, off_chip ? 2 : 1);
    if (!off_chip) {
        // Each tile sends and receives b bytes: per-tile 2b bytes.
        ExchangeTraffic t;
        t.maxTileOnChipBytes = 2ull * b;
        t.totalOnChipBytes = 2ull * b * m;
        t.chips = 1;
        return exchangeCycles(arch, t) + sync;
    }
    ExchangeTraffic t;
    t.totalOffChipBytes = 2ull * b * m;
    t.chips = 2;
    return exchangeCycles(arch, t) + sync;
}

} // namespace parendi::ipu
