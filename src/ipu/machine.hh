/**
 * @file
 * The simulated IPU system executing a compiled BSP RTL simulation.
 *
 * Functionally, every process of a Partitioning becomes a tile: an
 * EvalProgram holding the union of its fibers' cones (duplicated nodes
 * and all, exactly like the generated poplar codelets of the real
 * Parendi). One simulated RTL cycle is:
 *
 *   compute   : every tile evaluates its combinational program
 *   barrier   : (modeled)
 *   exchange  : array write ports are broadcast to replicas
 *               (differential exchange, paper §5.2) and register values
 *               flow from owner tiles to reader tiles
 *   barrier   : (modeled)
 *
 * Performance is accounted analytically per RTL cycle from the
 * partitioning and the IpuArch cost model (t_sync + t_comm + t_comp,
 * paper Eq. 1); because the simulation is full-cycle, the per-cycle
 * cost is static.
 */

#ifndef PARENDI_IPU_MACHINE_HH
#define PARENDI_IPU_MACHINE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ipu/arch.hh"
#include "ipu/exchange.hh"
#include "partition/process.hh"
#include "rtl/eval.hh"

namespace parendi::ipu {

/** The three BSP cost components of one simulated RTL cycle. */
struct CycleCosts
{
    double tSync = 0;
    double tCommOn = 0;
    double tCommOff = 0;
    double tComp = 0;

    double
    total() const
    {
        return tSync + tCommOn + tCommOff + tComp;
    }

    double
    tComm() const
    {
        return tCommOn + tCommOff;
    }
};

struct MachineOptions
{
    /** Model differential array exchange (§5.2); when false, remote
     *  array replicas are modeled as receiving full copies each cycle
     *  (functional behaviour is unchanged — this is the ablation). */
    bool differentialExchange = true;

    /** Host worker threads for the functional compute phase (BSP
     *  makes this trivially safe: tiles only touch private state
     *  between barriers). 0 = sequential execution. */
    uint32_t hostThreads = 0;

    /** Lowering (specialization/fusion) applied to every tile
     *  program; functional behaviour is unchanged by construction. */
    rtl::LowerOptions lower;
};

/** One tile's compiled program and run state. */
struct Tile
{
    uint32_t id;                ///< global tile id
    uint32_t chip;
    rtl::EvalProgram prog;
    std::unique_ptr<rtl::EvalState> state;
    uint64_t computeCycles = 0; ///< modeled cycles per RTL cycle
};

class IpuMachine
{
  public:
    IpuMachine(const fiber::FiberSet &fs,
               const partition::Partitioning &parts,
               const IpuArch &arch = IpuArch{},
               const MachineOptions &opt = MachineOptions{});

    // -- Functional simulation -------------------------------------------

    /** Simulate @p n RTL cycles. */
    void step(size_t n = 1);

    void reset();
    uint64_t cycles() const { return cycleCount; }

    void poke(const std::string &input, const rtl::BitVec &value);
    void poke(const std::string &input, uint64_t value);
    rtl::BitVec peek(const std::string &output) const;
    rtl::BitVec peekRegister(const std::string &reg) const;
    /** Read one entry of a memory (from any replica; the
     *  differential exchange keeps them identical). */
    rtl::BitVec peekMemory(const std::string &mem,
                           uint64_t index) const;

    /** Checkpoint the state of every tile (plus the cycle count). */
    void save(std::ostream &out) const;
    /** Restore a checkpoint from the same compiled configuration. */
    void restore(std::istream &in);

    // -- Performance model -----------------------------------------------

    const CycleCosts &cycleCosts() const { return costs; }
    double rateKHz() const { return arch.rateKHz(costs.total()); }
    const ExchangeTraffic &traffic() const { return traffic_; }

    uint32_t tilesUsed() const { return static_cast<uint32_t>(
        tiles.size()); }
    uint32_t chipsUsed() const { return chipsUsed_; }

    /** Largest per-tile memory footprint (bytes). */
    uint64_t maxTileMemBytes() const { return maxTileMem; }
    /** Largest per-tile code footprint (bytes). */
    uint64_t maxTileCodeBytes() const { return maxTileCode; }

    const IpuArch &architecture() const { return arch; }

  private:
    struct RegMessage
    {
        uint32_t ownerTile;
        uint32_t ownerSlot;     ///< cur slot in owner (post-latch value)
        uint32_t readerTile;
        uint32_t readerSlot;
        uint16_t words;
        uint32_t bytes;         ///< exchange payload (4B granules)
    };

    struct PortBroadcast       ///< one array write port fanned out
    {
        uint32_t ownerTile;
        uint32_t addrSlot;
        uint16_t addrWidth;
        uint32_t dataSlot;
        uint32_t enSlot;
        rtl::MemId mem;
        uint32_t entryWords;
        uint32_t depth;
        /// (tile, program-local memory index) of every replica.
        std::vector<std::pair<uint32_t, uint32_t>> replicas;
    };

    void buildTiles(const fiber::FiberSet &fs,
                    const partition::Partitioning &parts);
    void buildExchange(const fiber::FiberSet &fs);
    void accountCosts(const fiber::FiberSet &fs,
                      const partition::Partitioning &parts);
    void evalAll();

    const rtl::Netlist &nl;
    IpuArch arch;
    MachineOptions opt;

    std::vector<Tile> tiles;
    uint32_t chipsUsed_ = 1;

    std::vector<RegMessage> regMessages;
    std::vector<PortBroadcast> broadcasts;

    /// input port -> [(tile, slot)] replicas
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> inputSlots;
    /// output port -> (tile, slot)
    std::vector<std::pair<uint32_t, uint32_t>> outputSlots;
    /// register -> (tile, cur slot) of its owner
    std::vector<std::pair<uint32_t, uint32_t>> regHome;

    CycleCosts costs;
    ExchangeTraffic traffic_;
    uint64_t maxTileMem = 0;
    uint64_t maxTileCode = 0;
    uint64_t cycleCount = 0;
};

} // namespace parendi::ipu

#endif // PARENDI_IPU_MACHINE_HH
