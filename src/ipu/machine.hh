/**
 * @file
 * The simulated IPU system executing a compiled BSP RTL simulation.
 *
 * Functionally, every process of a Partitioning becomes a tile: an
 * EvalProgram holding the union of its fibers' cones (duplicated nodes
 * and all, exactly like the generated poplar codelets of the real
 * Parendi). One simulated RTL cycle is:
 *
 *   compute   : every tile evaluates its combinational program
 *   barrier   : (modeled)
 *   exchange  : array write ports are broadcast to replicas
 *               (differential exchange, paper §5.2) and register values
 *               flow from owner tiles to reader tiles
 *   barrier   : (modeled)
 *
 * The functional execution is an rtl::ShardSet (one shard per tile);
 * with hostThreads >= 2 the whole cycle — exchange phases included —
 * runs on a persistent util::BspPool whose workers realize the BSP
 * barriers on the host.
 *
 * Performance is accounted analytically per RTL cycle from the
 * partitioning and the IpuArch cost model (t_sync + t_comm + t_comp,
 * paper Eq. 1); because the simulation is full-cycle, the per-cycle
 * cost is static.
 */

#ifndef PARENDI_IPU_MACHINE_HH
#define PARENDI_IPU_MACHINE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "ipu/arch.hh"
#include "ipu/exchange.hh"
#include "partition/process.hh"
#include "rtl/eval.hh"
#include "rtl/shard.hh"
#include "util/bsp_pool.hh"

namespace parendi::ipu {

/** The three BSP cost components of one simulated RTL cycle. */
struct CycleCosts
{
    double tSync = 0;
    double tCommOn = 0;
    double tCommOff = 0;
    double tComp = 0;

    double
    total() const
    {
        return tSync + tCommOn + tCommOff + tComp;
    }

    double
    tComm() const
    {
        return tCommOn + tCommOff;
    }
};

struct MachineOptions
{
    /** Model differential array exchange (§5.2); when false, remote
     *  array replicas are modeled as receiving full copies each cycle
     *  (functional behaviour is unchanged — this is the ablation). */
    bool differentialExchange = true;

    /** Host worker threads for the functional execution (BSP makes
     *  this trivially safe: tiles only touch private state between
     *  barriers). 0 = sequential execution. */
    uint32_t hostThreads = 0;

    /** Run hostThreads on a persistent BspPool spanning all four BSP
     *  phases of the cycle (the default). When false, the legacy
     *  host execution is used: threads are spawned per compute phase
     *  and the exchange phases run sequentially — kept as the A/B
     *  baseline for bench/host_throughput. */
    bool persistentPool = true;

    /** Pooled host path: fused single-barrier supersteps (default)
     *  vs the 4-barrier phased sequence. Bit-identical either way. */
    bool fused = true;

    /** Pooled fused path: cycles per pool dispatch (0 = each step(n)
     *  call is one batch). */
    size_t batch = 0;

    /** Cap on pooled host workers; 0 = the host's hardware
     *  concurrency (see rtl::ParConfig::maxWorkers). */
    uint32_t maxHostWorkers = 0;

    /** Lowering (specialization/fusion) applied to every tile
     *  program; functional behaviour is unchanged by construction. */
    rtl::LowerOptions lower;
};

/** One tile's placement and modeled cost (the functional program and
 *  state live in the ShardSet, indexed by the same position). */
struct Tile
{
    uint32_t id;                ///< global tile id
    uint32_t chip;
    uint64_t computeCycles = 0; ///< modeled cycles per RTL cycle
};

class IpuMachine : public core::SimEngine
{
  public:
    IpuMachine(const fiber::FiberSet &fs,
               const partition::Partitioning &parts,
               const IpuArch &arch = IpuArch{},
               const MachineOptions &opt = MachineOptions{});

    // -- Functional simulation -------------------------------------------

    const char *engineName() const override { return "ipu"; }
    const rtl::Netlist &netlist() const override { return nl; }

    /** Simulate @p n RTL cycles. */
    void step(size_t n = 1) override;

    void reset() override;
    uint64_t cycles() const override { return cycleCount; }

    void poke(const std::string &input,
              const rtl::BitVec &value) override;
    void poke(const std::string &input, uint64_t value) override;
    rtl::BitVec peek(const std::string &output) const override;
    rtl::BitVec peekRegister(const std::string &reg) const override;
    /** Read one entry of a memory (from any replica; the
     *  differential exchange keeps them identical). */
    rtl::BitVec peekMemory(const std::string &mem,
                           uint64_t index) const override;
    void peekInto(const std::string &output,
                  rtl::BitVec &out) const override;
    void peekRegisterInto(const std::string &reg,
                          rtl::BitVec &out) const override;

    /** Checkpoint the state of every tile (plus the cycle count). */
    void save(std::ostream &out) const;
    /** Restore a checkpoint from the same compiled configuration. */
    void restore(std::istream &in);

    /** Engine-agnostic checkpointing (see SimEngine). */
    bool
    saveState(std::ostream &out) const override
    {
        save(out);
        return true;
    }
    bool
    restoreState(std::istream &in) override
    {
        restore(in);
        return true;
    }

    /** Canonical architectural state (see SimEngine / src/ckpt). */
    bool
    exportArch(core::ArchState &out) const override
    {
        shards.exportArch(out);
        out.cycles = cycleCount;
        return true;
    }
    bool
    importArch(const core::ArchState &st) override
    {
        shards.importArch(st);
        cycleCount = st.cycles;
        return true;
    }

    /** Attach an obs::SuperstepProfiler to the functional execution
     *  (pool-driven or legacy spawn path) and register it as the
     *  pool's barrier-wait observer. Always succeeds. */
    bool enableProfiling(const obs::ProfileOptions &opt =
                             obs::ProfileOptions{}) override;
    obs::SuperstepProfiler *profiler() override
    {
        return profiler_.get();
    }
    const obs::SuperstepProfiler *
    profiler() const override
    {
        return profiler_.get();
    }

    // -- Performance model -----------------------------------------------

    const CycleCosts &cycleCosts() const { return costs; }
    double rateKHz() const { return arch.rateKHz(costs.total()); }
    const ExchangeTraffic &traffic() const { return traffic_; }

    uint32_t tilesUsed() const { return static_cast<uint32_t>(
        tiles.size()); }
    uint32_t chipsUsed() const { return chipsUsed_; }

    /** Largest per-tile memory footprint (bytes). */
    uint64_t maxTileMemBytes() const { return maxTileMem; }
    /** Largest per-tile code footprint (bytes). */
    uint64_t maxTileCodeBytes() const { return maxTileCode; }

    const IpuArch &architecture() const { return arch; }

  private:
    void buildTiles(const fiber::FiberSet &fs,
                    const partition::Partitioning &parts);
    void accountCosts(const fiber::FiberSet &fs,
                      const partition::Partitioning &parts);
    /** Legacy compute phase: spawn hostThreads workers for this phase
     *  only (the persistentPool=false baseline). */
    void evalAllSpawn();

    const rtl::Netlist &nl;
    IpuArch arch;
    MachineOptions opt;

    std::vector<Tile> tiles;
    uint32_t chipsUsed_ = 1;
    /** opt.hostThreads clamped to tiles and host concurrency (or the
     *  explicit maxHostWorkers cap); both host paths honor it. */
    uint32_t hostWorkers_ = 0;

    rtl::ShardSet shards;
    // Declared before pool: the pool holds a raw observer pointer to
    // the profiler, so the pool (destroyed first, in reverse member
    // order) must never outlive it.
    std::unique_ptr<obs::SuperstepProfiler> profiler_;
    std::unique_ptr<util::BspPool> pool;    ///< null -> sequential/legacy

    CycleCosts costs;
    ExchangeTraffic traffic_;
    uint64_t maxTileMem = 0;
    uint64_t maxTileCode = 0;
    uint64_t cycleCount = 0;
};

} // namespace parendi::ipu

#endif // PARENDI_IPU_MACHINE_HH
