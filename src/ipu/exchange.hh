/**
 * @file
 * BSP exchange-phase cost model (paper §4.2, Fig. 5). The key measured
 * asymmetry it reproduces:
 *
 *  - on-chip, latency grows with b (max bytes per tile) and is nearly
 *    independent of m (tile count) until the fabric nears saturation;
 *  - off-chip, latency grows with the *total* volume m x b because the
 *    board fabric is shared and runs near its bandwidth limit.
 */

#ifndef PARENDI_IPU_EXCHANGE_HH
#define PARENDI_IPU_EXCHANGE_HH

#include <cstdint>

#include "ipu/arch.hh"

namespace parendi::ipu {

/** Traffic summary of one BSP exchange phase. */
struct ExchangeTraffic
{
    /// Max over tiles of on-chip bytes a single tile sends+receives.
    uint64_t maxTileOnChipBytes = 0;
    /// Total bytes moved within chips (sum over messages).
    uint64_t totalOnChipBytes = 0;
    /// Total bytes crossing chip boundaries.
    uint64_t totalOffChipBytes = 0;
    /// Number of chips participating.
    uint32_t chips = 1;
};

/** Cycles for the on-chip part of an exchange phase. */
double onChipExchangeCycles(const IpuArch &arch,
                            uint64_t max_tile_bytes,
                            uint64_t total_bytes_per_chip);

/** Cycles for the off-chip part (0 if no off-chip traffic). */
double offChipExchangeCycles(const IpuArch &arch,
                             uint64_t total_off_chip_bytes);

/** Full exchange phase: on-chip and off-chip parts overlap poorly on
 *  the statically scheduled fabric, so they add. */
double exchangeCycles(const IpuArch &arch, const ExchangeTraffic &t);

/**
 * Microbenchmark model of the Fig. 5 experiment: m tile pairs exchange
 * b bytes in each direction; `off_chip` selects whether the pairs span
 * two chips. Returns modeled IPU cycles (including the closing sync).
 */
double pairwiseExchangeCycles(const IpuArch &arch, uint32_t m, uint32_t b,
                              bool off_chip);

} // namespace parendi::ipu

#endif // PARENDI_IPU_EXCHANGE_HH
