#include "ipu/machine.hh"

#include <algorithm>
#include <atomic>
#include <istream>
#include <ostream>
#include <map>
#include <thread>

#include "util/logging.hh"

namespace parendi::ipu {

using namespace rtl;
using fiber::FiberSet;
using partition::Partitioning;
using partition::Process;

IpuMachine::IpuMachine(const FiberSet &fs, const Partitioning &parts,
                       const IpuArch &arch_, const MachineOptions &opt_)
    : nl(fs.netlist()), arch(arch_), opt(opt_)
{
    parts.checkComplete(fs);
    buildTiles(fs, parts);
    accountCosts(fs, parts);
    shards.setFused(opt.fused);
    hostWorkers_ = std::min<uint32_t>(
        opt.hostThreads, static_cast<uint32_t>(tiles.size()));
    // Same worker cap as the par engine: tiles far outnumber cores
    // (thousands of shards), so host workers track the host's real
    // parallelism, not the tile count. The legacy spawn path honors
    // the same cap.
    const uint32_t maxw = opt.maxHostWorkers
        ? opt.maxHostWorkers
        : std::max(1u, std::thread::hardware_concurrency());
    hostWorkers_ = std::min(hostWorkers_, maxw);
    if (opt.persistentPool && hostWorkers_ >= 2)
        pool = std::make_unique<util::BspPool>(hostWorkers_);
    if (pool)
        shards.evalAll(pool.get());
    else
        evalAllSpawn();
}

void
IpuMachine::buildTiles(const FiberSet &fs, const Partitioning &parts)
{
    // Per-chip process counts and capacity check.
    uint32_t max_chip = 0;
    std::vector<uint32_t> per_chip(arch.maxChips, 0);
    for (const Process &p : parts.processes) {
        if (p.chip < 0 || p.chip >= static_cast<int>(arch.maxChips))
            fatal("process assigned to chip %d outside machine (max %u)",
                  p.chip, arch.maxChips);
        uint32_t chip = static_cast<uint32_t>(p.chip);
        max_chip = std::max(max_chip, chip);
        if (++per_chip[chip] > arch.tilesPerChip)
            fatal("chip %u needs more than %u tiles", chip,
                  arch.tilesPerChip);
    }
    chipsUsed_ = 0;
    for (uint32_t c = 0; c < arch.maxChips; ++c)
        if (per_chip[c])
            ++chipsUsed_;

    // Tile placement metadata plus one node set per tile: the union
    // of the process's fiber cones, in ascending node id
    // (construction order is topological by construction of the
    // Netlist API).
    tiles.reserve(parts.processes.size());
    std::vector<std::vector<NodeId>> nodeSets;
    nodeSets.reserve(parts.processes.size());
    std::vector<uint32_t> next_in_chip(arch.maxChips, 0);
    for (const Process &p : parts.processes) {
        uint32_t chip = static_cast<uint32_t>(p.chip);
        Tile t;
        t.chip = chip;
        t.id = chip * arch.tilesPerChip + next_in_chip[chip]++;
        t.computeCycles =
            p.ipuCost + static_cast<uint64_t>(arch.tileLoopOverhead);

        std::vector<NodeId> nodes;
        for (uint32_t fi : p.fibers)
            nodes = partition::sortedUnion(nodes, fs[fi].cone);
        nodeSets.push_back(std::move(nodes));

        uint64_t mem = p.memBytes(fs);
        maxTileMem = std::max(maxTileMem, mem);
        maxTileCode = std::max(maxTileCode, p.codeBytes);
        if (mem > arch.tileMemoryBytes)
            fatal("process on tile %u needs %llu bytes > tile memory "
                  "%llu", t.id, static_cast<unsigned long long>(mem),
                  static_cast<unsigned long long>(arch.tileMemoryBytes));
        tiles.push_back(t);
    }
    if (maxTileCode > arch.tileCodeBytes)
        warn("largest tile code footprint %llu exceeds the %llu-byte "
             "executable region",
             static_cast<unsigned long long>(maxTileCode),
             static_cast<unsigned long long>(arch.tileCodeBytes));

    // Lower every tile program and derive the exchange schedule.
    shards = ShardSet(nl, nodeSets, opt.lower);
}

void
IpuMachine::accountCosts(const FiberSet &fs, const Partitioning &parts)
{
    (void)fs;
    (void)parts;
    // t_comp: the straggler tile.
    uint64_t max_comp = 0;
    for (const Tile &t : tiles)
        max_comp = std::max(max_comp, t.computeCycles);
    costs.tComp = static_cast<double>(max_comp);

    // Exchange traffic. The IPU exchange can multicast: a sender
    // transmits a value once and any number of same-chip tiles
    // listen, so sender-side serialization is counted once per value
    // while each receiver pays for what it receives; the fabric
    // (congestion) term counts delivered copies.
    std::vector<uint64_t> tile_on_bytes(tiles.size(), 0);
    std::vector<uint64_t> chip_on_bytes(arch.maxChips, 0);
    uint64_t off_bytes = 0;
    auto account = [&](uint32_t from, uint32_t to, uint64_t bytes,
                       bool first_copy) {
        if (tiles[from].chip == tiles[to].chip) {
            if (first_copy)
                tile_on_bytes[from] += bytes;
            tile_on_bytes[to] += bytes;
            chip_on_bytes[tiles[from].chip] += bytes;
        } else {
            // One serialized copy per (value, remote chip).
            if (first_copy)
                off_bytes += bytes;
        }
    };
    {
        // Group per (owner tile, register value) to mark the first
        // same-chip copy and the first copy per remote chip.
        std::map<std::pair<uint32_t, uint32_t>, std::vector<bool>>
            seen; // (owner, slot) -> per-chip first-copy flags
        for (const ShardSet::RegMessage &m : shards.regMessages()) {
            auto key = std::make_pair(m.ownerShard, m.ownerSlot);
            auto &flags = seen[key];
            if (flags.empty())
                flags.assign(arch.maxChips, false);
            uint32_t chip = tiles[m.readerShard].chip;
            bool first = !flags[chip];
            flags[chip] = true;
            account(m.ownerShard, m.readerShard, m.bytes, first);
        }
    }
    for (const ShardSet::PortBroadcast &b : shards.broadcasts()) {
        uint64_t diff_bytes =
            uint64_t{(b.addrWidth + 1u + 31u) / 32u} * 4 +
            uint64_t{(nl.mem(b.mem).width + 31u) / 32u} * 4;
        uint64_t full_bytes = nl.mem(b.mem).sizeBytes();
        std::vector<bool> flags(arch.maxChips, false);
        for (auto [tile, mi] : b.replicas) {
            (void)mi;
            if (tile == b.ownerShard)
                continue;
            uint32_t chip = tiles[tile].chip;
            bool first = !flags[chip];
            flags[chip] = true;
            account(b.ownerShard, tile,
                    opt.differentialExchange ? diff_bytes : full_bytes,
                    first);
        }
    }

    traffic_ = ExchangeTraffic{};
    traffic_.chips = chipsUsed_;
    for (uint64_t b : tile_on_bytes)
        traffic_.maxTileOnChipBytes =
            std::max(traffic_.maxTileOnChipBytes, b);
    for (uint64_t b : chip_on_bytes)
        traffic_.totalOnChipBytes += b;
    traffic_.totalOffChipBytes = off_bytes;

    uint64_t max_chip_bytes = 0;
    for (uint64_t b : chip_on_bytes)
        max_chip_bytes = std::max(max_chip_bytes, b);
    costs.tCommOn = onChipExchangeCycles(
        arch, traffic_.maxTileOnChipBytes, max_chip_bytes);
    costs.tCommOff = offChipExchangeCycles(arch, off_bytes);
    costs.tSync =
        2.0 * arch.barrierCycles(tilesUsed(), chipsUsed_);
}

void
IpuMachine::evalAllSpawn()
{
    // The legacy compute phase: the BSP structure makes threading
    // trivially safe (tiles only touch private state), but spawning
    // fresh std::threads every phase is what the persistent pool
    // replaces — kept as the measurable baseline.
    if (hostWorkers_ < 2 ||
        shards.size() < 2 * size_t{hostWorkers_}) {
        shards.evalAll(nullptr);
        return;
    }
    // When profiling, the spawned workers bypass ShardSet's
    // per-range instrumentation, so attribute the whole phase
    // (spawn + compute + join) to worker 0 — that is the honest
    // accounting for this baseline anyway: spawn overhead is its cost.
    obs::SuperstepProfiler *prof = shards.profiler();
    bool sampled = prof && prof->sampling();
    uint64_t t0 = sampled ? obs::tick() : 0;
    uint32_t nthreads = hostWorkers_;
    std::vector<std::thread> workers;
    workers.reserve(nthreads);
    std::atomic<size_t> next{0};
    for (uint32_t w = 0; w < nthreads; ++w) {
        workers.emplace_back([&]() {
            for (;;) {
                size_t i = next.fetch_add(1);
                if (i >= shards.size())
                    return;
                shards.state(i).evalComb();
            }
        });
    }
    for (std::thread &t : workers)
        t.join();
    if (sampled)
        prof->record(0, obs::Phase::Eval, t0, obs::tick());
}

void
IpuMachine::step(size_t n)
{
    if (pool) {
        // Pooled path: fused batched dispatch (or phased cycles when
        // opt.fused is off — stepCycles falls back to stepCycle).
        size_t done = 0;
        while (done < n) {
            const size_t k =
                opt.batch ? std::min(opt.batch, n - done) : n - done;
            shards.stepCycles(pool.get(), k);
            done += k;
            cycleCount += k;
        }
        return;
    }
    for (size_t i = 0; i < n; ++i) {
        // Legacy host execution: sequential exchange phases, compute
        // phase optionally on freshly spawned threads.
        shards.profileCycleBegin();
        shards.commitBroadcasts(nullptr);
        shards.latchRegisters(nullptr);
        shards.exchangeRegisters(nullptr);
        evalAllSpawn();
        shards.profileCycleEnd();
        ++cycleCount;
    }
}

bool
IpuMachine::enableProfiling(const obs::ProfileOptions &popt)
{
    if (profiler_)
        return true;
    uint32_t workers = pool ? pool->threads() : 1;
    profiler_ = std::make_unique<obs::SuperstepProfiler>(
        workers, shards.size(), popt);
    shards.setProfiler(profiler_.get());
    if (pool)
        pool->setWaitObserver(profiler_.get());
    return true;
}

void
IpuMachine::reset()
{
    shards.reset(pool.get());
    cycleCount = 0;
}

void
IpuMachine::poke(const std::string &input, const BitVec &value)
{
    shards.poke(input, value);
}

void
IpuMachine::poke(const std::string &input, uint64_t value)
{
    shards.poke(input, value);
}

BitVec
IpuMachine::peek(const std::string &output) const
{
    return shards.peek(output);
}

BitVec
IpuMachine::peekRegister(const std::string &reg) const
{
    return shards.peekRegister(reg);
}

BitVec
IpuMachine::peekMemory(const std::string &mem, uint64_t index) const
{
    return shards.peekMemory(mem, index);
}

void
IpuMachine::peekInto(const std::string &output, BitVec &out) const
{
    shards.peekInto(output, out);
}

void
IpuMachine::peekRegisterInto(const std::string &reg, BitVec &out) const
{
    shards.peekRegisterInto(reg, out);
}

void
IpuMachine::save(std::ostream &out) const
{
    out.write(reinterpret_cast<const char *>(&cycleCount),
              sizeof(cycleCount));
    shards.save(out);
}

void
IpuMachine::restore(std::istream &in)
{
    in.read(reinterpret_cast<char *>(&cycleCount),
            sizeof(cycleCount));
    shards.restore(in);
}

} // namespace parendi::ipu
