#include "ipu/machine.hh"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <istream>
#include <ostream>
#include <map>
#include <thread>

#include "util/logging.hh"

namespace parendi::ipu {

using namespace rtl;
using fiber::FiberSet;
using partition::Partitioning;
using partition::Process;

IpuMachine::IpuMachine(const FiberSet &fs, const Partitioning &parts,
                       const IpuArch &arch_, const MachineOptions &opt_)
    : nl(fs.netlist()), arch(arch_), opt(opt_)
{
    parts.checkComplete(fs);
    buildTiles(fs, parts);
    buildExchange(fs);
    accountCosts(fs, parts);
    evalAll();
}

void
IpuMachine::buildTiles(const FiberSet &fs, const Partitioning &parts)
{
    // Per-chip process counts and capacity check.
    uint32_t max_chip = 0;
    std::vector<uint32_t> per_chip(arch.maxChips, 0);
    for (const Process &p : parts.processes) {
        if (p.chip < 0 || p.chip >= static_cast<int>(arch.maxChips))
            fatal("process assigned to chip %d outside machine (max %u)",
                  p.chip, arch.maxChips);
        uint32_t chip = static_cast<uint32_t>(p.chip);
        max_chip = std::max(max_chip, chip);
        if (++per_chip[chip] > arch.tilesPerChip)
            fatal("chip %u needs more than %u tiles", chip,
                  arch.tilesPerChip);
    }
    chipsUsed_ = 0;
    for (uint32_t c = 0; c < arch.maxChips; ++c)
        if (per_chip[c])
            ++chipsUsed_;

    tiles.reserve(parts.processes.size());
    std::vector<uint32_t> next_in_chip(arch.maxChips, 0);
    for (const Process &p : parts.processes) {
        uint32_t chip = static_cast<uint32_t>(p.chip);
        Tile t;
        t.chip = chip;
        t.id = chip * arch.tilesPerChip + next_in_chip[chip]++;

        // The tile program: union of the process's fiber cones,
        // lowered in ascending node id (construction order is
        // topological by construction of the Netlist API).
        std::vector<NodeId> nodes;
        for (uint32_t fi : p.fibers)
            nodes = partition::sortedUnion(nodes, fs[fi].cone);
        ProgramBuilder builder(nl);
        for (NodeId id : nodes)
            builder.addNode(id);
        t.prog = builder.build();
        lowerProgram(t.prog, opt.lower);
        t.computeCycles =
            p.ipuCost + static_cast<uint64_t>(arch.tileLoopOverhead);

        uint64_t mem = p.memBytes(fs);
        maxTileMem = std::max(maxTileMem, mem);
        maxTileCode = std::max(maxTileCode, p.codeBytes);
        if (mem > arch.tileMemoryBytes)
            fatal("process on tile %u needs %llu bytes > tile memory "
                  "%llu", t.id, static_cast<unsigned long long>(mem),
                  static_cast<unsigned long long>(arch.tileMemoryBytes));
        tiles.push_back(std::move(t));
        // The state must reference the program at its final address
        // (the vector was reserved above, so elements never move).
        tiles.back().state =
            std::make_unique<EvalState>(tiles.back().prog);
    }
    if (maxTileCode > arch.tileCodeBytes)
        warn("largest tile code footprint %llu exceeds the %llu-byte "
             "executable region",
             static_cast<unsigned long long>(maxTileCode),
             static_cast<unsigned long long>(arch.tileCodeBytes));
}

void
IpuMachine::buildExchange(const FiberSet &fs)
{
    (void)fs;
    // Register homes: the tile whose program owns each register.
    regHome.assign(nl.numRegisters(), {UINT32_MAX, 0});
    for (uint32_t ti = 0; ti < tiles.size(); ++ti)
        for (const ProgReg &r : tiles[ti].prog.regs)
            if (r.owned)
                regHome[r.reg] = {ti, r.cur};

    // Register messages: owner -> every tile holding a non-owned copy.
    for (uint32_t ti = 0; ti < tiles.size(); ++ti) {
        for (const ProgReg &r : tiles[ti].prog.regs) {
            if (r.owned)
                continue;
            auto [owner, owner_slot] = regHome[r.reg];
            if (owner == UINT32_MAX)
                panic("register %s has readers but no owner tile",
                      nl.reg(r.reg).name.c_str());
            RegMessage m;
            m.ownerTile = owner;
            m.ownerSlot = owner_slot;
            m.readerTile = ti;
            m.readerSlot = r.cur;
            m.words = static_cast<uint16_t>(wordsFor(r.width));
            m.bytes = ((r.width + 31) / 32) * 4;
            regMessages.push_back(m);
        }
    }

    // Array write-port broadcasts, in netlist port order per memory.
    // First index the replicas of each memory.
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> replicas(
        nl.numMemories());
    for (uint32_t ti = 0; ti < tiles.size(); ++ti)
        for (uint32_t mi = 0; mi < tiles[ti].prog.mems.size(); ++mi)
            replicas[tiles[ti].prog.mems[mi].mem].emplace_back(ti, mi);

    for (MemId m = 0; m < nl.numMemories(); ++m) {
        const Memory &mem = nl.mem(m);
        for (NodeId port : mem.writePorts) {
            // Find the tile owning this MemWrite sink: the one whose
            // program contains the sink node.
            uint32_t owner = UINT32_MAX;
            for (uint32_t ti = 0; ti < tiles.size(); ++ti) {
                if (tiles[ti].prog.slotOf.count(port)) {
                    owner = ti;
                    break;
                }
            }
            if (owner == UINT32_MAX)
                panic("write port of %s not placed", mem.name.c_str());
            const Node &n = nl.node(port);
            PortBroadcast b;
            b.ownerTile = owner;
            b.addrSlot = tiles[owner].prog.slotOf.at(n.operands[0]);
            b.addrWidth = nl.widthOf(n.operands[0]);
            b.dataSlot = tiles[owner].prog.slotOf.at(n.operands[1]);
            b.enSlot = tiles[owner].prog.slotOf.at(n.operands[2]);
            b.mem = m;
            b.entryWords = wordsFor(mem.width);
            b.depth = mem.depth;
            b.replicas = replicas[m];
            broadcasts.push_back(std::move(b));
        }
    }

    // Port bindings.
    inputSlots.assign(nl.numInputs(), {});
    for (uint32_t ti = 0; ti < tiles.size(); ++ti)
        for (const ProgPort &p : tiles[ti].prog.inputs)
            inputSlots[p.port].emplace_back(ti, p.slot);
    outputSlots.assign(nl.numOutputs(), {UINT32_MAX, 0});
    for (uint32_t ti = 0; ti < tiles.size(); ++ti)
        for (const ProgPort &p : tiles[ti].prog.outputs)
            outputSlots[p.port] = {ti, p.slot};
}

void
IpuMachine::accountCosts(const FiberSet &fs, const Partitioning &parts)
{
    (void)fs;
    (void)parts;
    // t_comp: the straggler tile.
    uint64_t max_comp = 0;
    for (const Tile &t : tiles)
        max_comp = std::max(max_comp, t.computeCycles);
    costs.tComp = static_cast<double>(max_comp);

    // Exchange traffic. The IPU exchange can multicast: a sender
    // transmits a value once and any number of same-chip tiles
    // listen, so sender-side serialization is counted once per value
    // while each receiver pays for what it receives; the fabric
    // (congestion) term counts delivered copies.
    std::vector<uint64_t> tile_on_bytes(tiles.size(), 0);
    std::vector<uint64_t> chip_on_bytes(arch.maxChips, 0);
    uint64_t off_bytes = 0;
    auto account = [&](uint32_t from, uint32_t to, uint64_t bytes,
                       bool first_copy) {
        if (tiles[from].chip == tiles[to].chip) {
            if (first_copy)
                tile_on_bytes[from] += bytes;
            tile_on_bytes[to] += bytes;
            chip_on_bytes[tiles[from].chip] += bytes;
        } else {
            // One serialized copy per (value, remote chip).
            if (first_copy)
                off_bytes += bytes;
        }
    };
    {
        // Group per (owner tile, register value) to mark the first
        // same-chip copy and the first copy per remote chip.
        std::map<std::pair<uint32_t, uint32_t>, std::vector<bool>>
            seen; // (owner, slot) -> per-chip first-copy flags
        for (const RegMessage &m : regMessages) {
            auto key = std::make_pair(m.ownerTile, m.ownerSlot);
            auto &flags = seen[key];
            if (flags.empty())
                flags.assign(arch.maxChips, false);
            uint32_t chip = tiles[m.readerTile].chip;
            bool first = !flags[chip];
            flags[chip] = true;
            account(m.ownerTile, m.readerTile, m.bytes, first);
        }
    }
    for (const PortBroadcast &b : broadcasts) {
        uint64_t diff_bytes =
            uint64_t{(b.addrWidth + 1u + 31u) / 32u} * 4 +
            uint64_t{(nl.mem(b.mem).width + 31u) / 32u} * 4;
        uint64_t full_bytes = nl.mem(b.mem).sizeBytes();
        std::vector<bool> flags(arch.maxChips, false);
        for (auto [tile, mi] : b.replicas) {
            (void)mi;
            if (tile == b.ownerTile)
                continue;
            uint32_t chip = tiles[tile].chip;
            bool first = !flags[chip];
            flags[chip] = true;
            account(b.ownerTile, tile,
                    opt.differentialExchange ? diff_bytes : full_bytes,
                    first);
        }
    }

    traffic_ = ExchangeTraffic{};
    traffic_.chips = chipsUsed_;
    for (uint64_t b : tile_on_bytes)
        traffic_.maxTileOnChipBytes =
            std::max(traffic_.maxTileOnChipBytes, b);
    for (uint64_t b : chip_on_bytes)
        traffic_.totalOnChipBytes += b;
    traffic_.totalOffChipBytes = off_bytes;

    uint64_t max_chip_bytes = 0;
    for (uint64_t b : chip_on_bytes)
        max_chip_bytes = std::max(max_chip_bytes, b);
    costs.tCommOn = onChipExchangeCycles(
        arch, traffic_.maxTileOnChipBytes, max_chip_bytes);
    costs.tCommOff = offChipExchangeCycles(arch, off_bytes);
    costs.tSync =
        2.0 * arch.barrierCycles(tilesUsed(), chipsUsed_);
}

void
IpuMachine::evalAll()
{
    // The BSP compute phase: every tile evaluates only its private
    // state, so tiles can run on host worker threads with no locking
    // — the join below is the (host-side) barrier.
    if (opt.hostThreads < 2 || tiles.size() < 2 * opt.hostThreads) {
        for (Tile &t : tiles)
            t.state->evalComb();
        return;
    }
    uint32_t nthreads = opt.hostThreads;
    std::vector<std::thread> workers;
    workers.reserve(nthreads);
    std::atomic<size_t> next{0};
    for (uint32_t w = 0; w < nthreads; ++w) {
        workers.emplace_back([&]() {
            for (;;) {
                size_t i = next.fetch_add(1);
                if (i >= tiles.size())
                    return;
                tiles[i].state->evalComb();
            }
        });
    }
    for (std::thread &t : workers)
        t.join();
}

void
IpuMachine::step(size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        // End of compute phase: commit array writes to all replicas,
        // in global port order (differential exchange).
        for (const PortBroadcast &b : broadcasts) {
            EvalState &owner = *tiles[b.ownerTile].state;
            if (!(owner.slotPtr(b.enSlot)[0] & 1))
                continue;
            // Saturating address read.
            uint64_t addr = owner.slotPtr(b.addrSlot)[0];
            for (uint32_t w = 1; w < wordsFor(b.addrWidth); ++w)
                if (owner.slotPtr(b.addrSlot)[w])
                    addr = UINT64_MAX;
            if (addr >= b.depth)
                continue;
            const uint64_t *data = owner.slotPtr(b.dataSlot);
            for (auto [tile, mi] : b.replicas) {
                uint64_t *img = tiles[tile].state->memImage(mi).data() +
                    addr * b.entryWords;
                std::memcpy(img, data, b.entryWords * sizeof(uint64_t));
            }
        }
        // Latch locally owned registers.
        for (Tile &t : tiles)
            t.state->latchRegisters();
        // Exchange register values to reader tiles.
        for (const RegMessage &m : regMessages) {
            const uint64_t *src =
                tiles[m.ownerTile].state->slotPtr(m.ownerSlot);
            uint64_t *dst =
                tiles[m.readerTile].state->slotPtr(m.readerSlot);
            std::memcpy(dst, src, m.words * sizeof(uint64_t));
        }
        // Next compute phase.
        evalAll();
        ++cycleCount;
    }
}

void
IpuMachine::reset()
{
    for (Tile &t : tiles)
        t.state->reset();
    evalAll();
    cycleCount = 0;
}

void
IpuMachine::poke(const std::string &input, const BitVec &value)
{
    PortId id = nl.findInput(input);
    if (id == nl.numInputs())
        fatal("no input port named %s", input.c_str());
    if (value.width() != nl.input(id).width)
        fatal("poke %s: width mismatch", input.c_str());
    for (auto [tile, slot] : inputSlots[id]) {
        tiles[tile].state->writeSlot(slot, value);
        tiles[tile].state->evalComb();
    }
}

void
IpuMachine::poke(const std::string &input, uint64_t value)
{
    PortId id = nl.findInput(input);
    if (id == nl.numInputs())
        fatal("no input port named %s", input.c_str());
    poke(input, BitVec(nl.input(id).width, value));
}

BitVec
IpuMachine::peek(const std::string &output) const
{
    PortId id = nl.findOutput(output);
    if (id == nl.numOutputs())
        fatal("no output port named %s", output.c_str());
    auto [tile, slot] = outputSlots[id];
    if (tile == UINT32_MAX)
        fatal("output %s not placed", output.c_str());
    return tiles[tile].state->readSlot(slot, nl.output(id).width);
}

void
IpuMachine::save(std::ostream &out) const
{
    out.write(reinterpret_cast<const char *>(&cycleCount),
              sizeof(cycleCount));
    uint64_t ntiles = tiles.size();
    out.write(reinterpret_cast<const char *>(&ntiles),
              sizeof(ntiles));
    for (const Tile &t : tiles)
        t.state->save(out);
}

void
IpuMachine::restore(std::istream &in)
{
    in.read(reinterpret_cast<char *>(&cycleCount),
            sizeof(cycleCount));
    uint64_t ntiles = 0;
    in.read(reinterpret_cast<char *>(&ntiles), sizeof(ntiles));
    if (!in || ntiles != tiles.size())
        fatal("checkpoint mismatch: tile count");
    for (Tile &t : tiles)
        t.state->restore(in);
}

BitVec
IpuMachine::peekMemory(const std::string &mem, uint64_t index) const
{
    MemId id = nl.findMemory(mem);
    if (id == nl.numMemories())
        fatal("no memory named %s", mem.c_str());
    for (const Tile &t : tiles) {
        for (uint32_t mi = 0; mi < t.prog.mems.size(); ++mi) {
            const ProgMem &pm = t.prog.mems[mi];
            if (pm.mem != id)
                continue;
            if (index >= pm.depth)
                fatal("memory %s index %llu out of range",
                      mem.c_str(),
                      static_cast<unsigned long long>(index));
            const auto &img = t.state->memImage(mi);
            std::vector<uint64_t> words(
                img.begin() + index * pm.entryWords,
                img.begin() + (index + 1) * pm.entryWords);
            return BitVec(nl.mem(id).width, std::move(words));
        }
    }
    fatal("memory %s not placed on any tile", mem.c_str());
}

BitVec
IpuMachine::peekRegister(const std::string &reg) const
{
    RegId id = nl.findRegister(reg);
    if (id == nl.numRegisters())
        fatal("no register named %s", reg.c_str());
    auto [tile, slot] = regHome[id];
    if (tile == UINT32_MAX)
        fatal("register %s not placed", reg.c_str());
    return tiles[tile].state->readSlot(slot, nl.reg(id).width);
}

} // namespace parendi::ipu
