#include "x86/model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace parendi::x86 {

X86Arch
X86Arch::ix3()
{
    X86Arch a;
    a.name = "ix3";
    a.coresPerSocket = 28;
    a.sockets = 2;
    a.coresPerChiplet = 28;     // monolithic die
    a.clockGHz = 3.5;
    a.ipc = 3.0;
    a.l2PerCoreBytes = 1280ull * 1024;            // 1.25 MiB
    a.l3PerChipletBytes = 42ull * 1024 * 1024;    // 42 MiB per socket
    return a;
}

X86Arch
X86Arch::ae4()
{
    X86Arch a;
    a.name = "ae4";
    a.coresPerSocket = 64;
    a.sockets = 2;
    a.coresPerChiplet = 8;      // Zen 4 CCD
    a.clockGHz = 3.75;
    a.ipc = 3.2;
    a.l2PerCoreBytes = 1024ull * 1024;            // 1 MiB
    a.l3PerChipletBytes = 32ull * 1024 * 1024;    // 32 MiB per CCD
    return a;
}

DesignProfile
profileDesign(const fiber::FiberSet &fs)
{
    DesignProfile p;
    const rtl::Netlist &nl = fs.netlist();
    const fiber::CostModel &cm = fs.costModel();
    // Verilator computes each node exactly once (no duplication):
    // total is the dedup'd sum, not the sum over fibers.
    for (rtl::NodeId id = 0; id < nl.numNodes(); ++id) {
        fiber::NodeCost c = cm.nodeCost(nl, id);
        p.totalInstrs += c.x86Instrs;
        p.codeBytes += c.codeBytes;
        p.dataBytes += uint64_t{rtl::wordsFor(nl.widthOf(id))} * 8;
    }
    for (size_t i = 0; i < fs.size(); ++i)
        p.maxFiberInstrs = std::max(p.maxFiberInstrs, fs[i].totalX86);
    for (rtl::MemId m = 0; m < nl.numMemories(); ++m)
        p.dataBytes += nl.mem(m).sizeBytes();
    // Producer-consumer traffic: every register is written once and
    // read by its consumers. Fine-grained mtask scheduling spreads
    // consumers over threads, so the cacheline moves roughly once per
    // reading task (fanout-weighted), not once per register.
    std::vector<uint32_t> readers(nl.numRegisters(), 0);
    for (size_t i = 0; i < fs.size(); ++i)
        for (rtl::RegId r : fs[i].regsRead)
            ++readers[r];
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r)
        p.commBytes += uint64_t{fs.regBytes(r)} * readers[r];
    return p;
}

DesignProfile
profileDesign(const fiber::FiberSet &fs, const rtl::LowerOptions &lower)
{
    DesignProfile p = profileDesign(fs);
    rtl::ProgramBuilder builder(fs.netlist());
    builder.addAll();
    rtl::EvalProgram prog = builder.build();
    p.evalInstrs = prog.instrs.size();
    rtl::lowerProgram(prog, lower);
    p.loweredInstrs = prog.instrs.size();
    if (p.evalInstrs && p.loweredInstrs < p.evalInstrs) {
        // Fusion shrinks the straight-line kernel; specialization
        // changes per-instruction cost, already captured by the cost
        // model's word-count terms.
        double r = static_cast<double>(p.loweredInstrs) /
            static_cast<double>(p.evalInstrs);
        p.totalInstrs = static_cast<uint64_t>(
            static_cast<double>(p.totalInstrs) * r + 0.5);
        p.maxFiberInstrs = static_cast<uint64_t>(
            static_cast<double>(p.maxFiberInstrs) * r + 0.5);
        p.codeBytes = static_cast<uint64_t>(
            static_cast<double>(p.codeBytes) * r + 0.5);
    }
    return p;
}

namespace {

/** Execution-time multiplier for a per-thread working set. */
double
cacheFactor(const X86Arch &arch, uint64_t ws_per_thread,
            uint32_t threads)
{
    // Aggregate L3 available to the threads in use.
    uint32_t chiplets_used =
        (threads + arch.coresPerChiplet - 1) / arch.coresPerChiplet;
    uint64_t l3_share =
        (uint64_t{arch.l3PerChipletBytes} * chiplets_used) /
        std::max(threads, 1u);
    // Capacity model: with a working set of ws bytes streamed once
    // per RTL cycle, roughly l2/ws of the accesses hit the private
    // L2, the next l3_share/ws hit the chiplet L3, and the remainder
    // goes to DRAM; the factor is the access-weighted blend.
    double ws = static_cast<double>(ws_per_thread);
    double l2 = static_cast<double>(arch.l2PerCoreBytes);
    double l3 = static_cast<double>(l3_share);
    if (ws <= l2)
        return arch.l2Factor;
    double f_l2 = l2 / ws;
    double f_l3 = std::min(1.0 - f_l2, l3 / ws);
    double f_dram = std::max(0.0, 1.0 - f_l2 - f_l3);
    return f_l2 * arch.l2Factor + f_l3 * arch.l3Factor +
        f_dram * arch.dramFactor;
}

/** Fraction of inter-task traffic crossing chiplet/socket boundaries
 *  under a balanced random placement of tasks on cores. */
void
boundaryFractions(const X86Arch &arch, uint32_t threads,
                  double &same_chiplet, double &cross_chiplet,
                  double &cross_socket)
{
    uint32_t per_socket = arch.coresPerSocket;
    uint32_t sockets_used = (threads + per_socket - 1) / per_socket;
    uint32_t chiplets_used =
        (threads + arch.coresPerChiplet - 1) / arch.coresPerChiplet;
    // Uniform traffic between thread pairs.
    cross_socket = sockets_used > 1
        ? 1.0 - 1.0 / static_cast<double>(sockets_used) : 0.0;
    double cross_chiplet_total = chiplets_used > 1
        ? 1.0 - 1.0 / static_cast<double>(chiplets_used) : 0.0;
    cross_chiplet = std::max(0.0, cross_chiplet_total - cross_socket);
    same_chiplet = 1.0 - cross_chiplet - cross_socket;
}

} // namespace

X86Perf
modelVerilator(const X86Arch &arch, const DesignProfile &prof,
               uint32_t threads)
{
    if (threads == 0 || threads > arch.totalCores())
        fatal("modelVerilator: %u threads outside machine (max %u)",
              threads, arch.totalCores());
    X86Perf perf;

    // t_comp: Verilator slices at mtask granularity, finer than
    // fibers, so the makespan approaches total/threads with a small
    // packing overhead; the largest fiber is not a hard bound but
    // large tasks still resist balancing slightly.
    double instrs = static_cast<double>(prof.totalInstrs) / threads;
    if (threads > 1) {
        instrs *= 1.05; // scheduling/packing overhead
        instrs = std::max(
            instrs, static_cast<double>(prof.maxFiberInstrs) * 0.5);
    }
    uint64_t ws = (prof.codeBytes + prof.dataBytes) / threads;
    perf.cacheFactor = cacheFactor(arch, ws, threads);
    perf.tCompNs = instrs / (arch.ipc * arch.clockGHz) *
        perf.cacheFactor;

    if (threads == 1)
        return perf;

    // t_sync: several contended barriers per simulated cycle.
    perf.tSyncNs = arch.syncRoundsPerCycle *
        (arch.barrierBaseNs + arch.barrierPerThreadNs * threads);

    // t_comm: producer-consumer cachelines crossing boundaries. With
    // more threads, a larger share of edges is cut.
    double cut_share = 1.0 - 1.0 / static_cast<double>(threads);
    double lines = cut_share *
        static_cast<double>(prof.commBytes) / 64.0;
    double same, chiplet, socket;
    boundaryFractions(arch, threads, same, chiplet, socket);
    double ns_per_line = same * arch.sameChipletNsPerLine +
        chiplet * arch.crossChipletNsPerLine +
        socket * arch.crossSocketNsPerLine;
    // Transfers are spread over the participating threads.
    perf.tCommNs = lines * ns_per_line / threads;
    return perf;
}

BestThreads
bestVerilator(const X86Arch &arch, const DesignProfile &prof,
              uint32_t max_threads)
{
    BestThreads best;
    best.threads = 1;
    best.perf = modelVerilator(arch, prof, 1);
    for (uint32_t t = 2;
         t <= std::min(max_threads, arch.totalCores()); t += 2) {
        X86Perf p = modelVerilator(arch, prof, t);
        if (p.totalNs() < best.perf.totalNs()) {
            best.threads = t;
            best.perf = p;
        }
    }
    return best;
}

} // namespace parendi::x86
