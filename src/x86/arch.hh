/**
 * @file
 * Architectural parameters of the two x86 evaluation machines
 * (paper Table 2): "ix3" (dual-socket Intel Xeon 6348) and "ae4"
 * (dual-socket AMD EPYC 9554, chiplet-based). These drive the
 * Verilator-on-x86 performance model in x86/model.hh.
 */

#ifndef PARENDI_X86_ARCH_HH
#define PARENDI_X86_ARCH_HH

#include <cstdint>
#include <string>

namespace parendi::x86 {

struct X86Arch
{
    std::string name;
    uint32_t coresPerSocket;
    uint32_t sockets;
    /** Cores per chiplet (CCX/CCD); equals coresPerSocket when the
     *  part is monolithic. */
    uint32_t coresPerChiplet;
    double clockGHz;
    /** Sustained instructions per cycle when cache-resident. */
    double ipc;

    uint64_t l2PerCoreBytes;
    /** L3 slice shared within one chiplet (whole socket if
     *  monolithic). */
    uint64_t l3PerChipletBytes;

    /// Barrier: atomic fetch-and-add user-space barrier, contention
    /// grows with participating threads (paper §4.1: "a few thousand
    /// cycles with all 56 threads").
    double barrierBaseNs = 80.0;
    double barrierPerThreadNs = 28.0;
    /// Verilator synchronizes more than twice per cycle (mtask
    /// dependency levels); effective barrier rounds per RTL cycle.
    double syncRoundsPerCycle = 3.0;

    /// Per-cacheline transfer costs for producer-consumer sharing.
    double sameChipletNsPerLine = 1.2;
    double crossChipletNsPerLine = 6.0;
    double crossSocketNsPerLine = 14.0;

    /// Execution-time multipliers by where the working set lives.
    double l2Factor = 1.0;
    double l3Factor = 1.7;
    double dramFactor = 3.4;

    uint32_t
    totalCores() const
    {
        return coresPerSocket * sockets;
    }

    static X86Arch ix3();
    static X86Arch ae4();
};

} // namespace parendi::x86

#endif // PARENDI_X86_ARCH_HH
