/**
 * @file
 * ParallelInterpreter: a functional multi-threaded host engine (the
 * "thousand-way parallel" execution model run at host scale). The
 * design is decomposed into fibers (paper §3.1) which are packed onto
 * one shard per worker thread by LPT over the x86 cost model; the
 * shards execute as an rtl::ShardSet on a persistent util::BspPool,
 * i.e. the exact BSP cycle the simulated IPU machine runs, so the
 * engine is bit-identical to the reference rtl::Interpreter at any
 * thread count by construction.
 *
 * Declared in namespace parendi::rtl (it is an RTL engine), built in
 * parendi_x86 because the fiber decomposition lives above parendi_rtl
 * in the library stack.
 */

#ifndef PARENDI_X86_PARALLEL_HH
#define PARENDI_X86_PARALLEL_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "core/engine.hh"
#include "rtl/cgen.hh"
#include "rtl/netlist.hh"
#include "rtl/shard.hh"
#include "util/bsp_pool.hh"

namespace parendi::rtl {

/** Execution knobs of the parallel host engine. */
struct ParConfig
{
    /** Fused single-barrier supersteps (default) vs the 4-barrier
     *  phased reference sequence. Bit-identical either way. */
    bool fused = true;
    /** Cycles per pool dispatch in fused mode: step(n) is split into
     *  batches of this many cycles, each one pool epoch with the
     *  in-dispatch barrier between cycles. 0 = the whole step(n) call
     *  is one batch. */
    size_t batch = 0;
    /**
     * Cap on shards and pool workers. 0 (default) caps at the host's
     * hardware concurrency — shards beyond the physical cores buy no
     * concurrency and only add cross-shard exchange traffic and
     * barrier parties, and any shard/worker count computes
     * bit-identical results, so oversubscribing buys nothing. Tests
     * and A/B benches that *want* a specific partition width or real
     * thread contention pass an explicit cap.
     */
    uint32_t maxWorkers = 0;
    /**
     * Externally owned worker pool, shared across engines — the
     * serving layer's fair-share scheduler steps many sessions on one
     * pool instead of paying N pools' worth of idle worker threads.
     * When set, the engine never creates its own pool and the shard
     * count adapts to the pool's width. Sharing contract: a BspPool
     * dispatch has exactly one caller, so hosts must serialize step()
     * calls across every engine on the pool (the scheduler thread);
     * to keep the pool free for whichever engine is stepping, all
     * *other* entry points of a shared-pool engine (construction,
     * reset(), restore()) run their re-evaluations sequentially, and
     * enableProfiling() does not install a pool wait observer.
     */
    std::shared_ptr<util::BspPool> pool;
    /** Gang simulation: replica lanes per shard state, stepped in
     *  lock-step (threads × lanes total instances). 1 = scalar. */
    uint32_t replicas = 1;
    /**
     * Measured per-fiber costs (see obs::CostProfile) driving the
     * initial LPT packing in place of the static x86 model. Keys
     * missing from the profile fall back to their static cost, scaled
     * into the profile's unit by the fibers both sides know. Null or
     * empty = static costs. Only read during construction.
     */
    const obs::CostProfile *costIn = nullptr;
    /**
     * Telemetry-directed repartitioning threshold: after each stepped
     * batch, when the profiled per-shard eval-tick skew (max/mean over
     * the window since the last check) exceeds this ratio, re-run LPT
     * on the measured costs and migrate the architectural state onto
     * the new packing. Needs an attached profiler and batched fused
     * stepping to fire. 0 = off.
     */
    double rebalance = 0.0;
};

class ParallelInterpreter : public core::SimEngine
{
  public:
    /** Takes the netlist by value (copy or move). @p threads host
     *  workers (0/1 = one shard, sequential); the shard count is
     *  min(threads, number of fibers). */
    explicit ParallelInterpreter(Netlist nl, uint32_t threads = 0,
                                 const LowerOptions &lower =
                                     LowerOptions{},
                                 const ParConfig &cfg = ParConfig{});

    // The shard set points at the netlist member; the object must
    // stay put.
    ParallelInterpreter(const ParallelInterpreter &) = delete;
    ParallelInterpreter &operator=(const ParallelInterpreter &) = delete;

    const char *engineName() const override { return "par"; }
    const Netlist &netlist() const override { return nl_; }

    void step(size_t n = 1) override;
    void reset() override;
    uint64_t cycles() const override { return cycleCount_; }

    void poke(const std::string &input, const BitVec &value) override;
    void poke(const std::string &input, uint64_t value) override;
    BitVec peek(const std::string &output) const override;
    BitVec peekRegister(const std::string &reg) const override;
    BitVec peekMemory(const std::string &mem,
                      uint64_t index) const override;
    void peekInto(const std::string &output, BitVec &out) const override;
    void peekRegisterInto(const std::string &reg,
                          BitVec &out) const override;

    // Gang lane access (see SimEngine); forwards to the shard set.
    uint32_t replicas() const override { return shards_.lanes(); }
    void pokeLane(const std::string &input, const BitVec &value,
                  uint32_t lane) override;
    void pokeLane(const std::string &input, uint64_t value,
                  uint32_t lane) override;
    BitVec peekLane(const std::string &output,
                    uint32_t lane) const override;
    BitVec peekRegisterLane(const std::string &reg,
                            uint32_t lane) const override;
    BitVec peekMemoryLane(const std::string &mem, uint64_t index,
                          uint32_t lane) const override;

    /**
     * Compile every shard program to a native kernel (one TU, one
     * compiler invocation; see rtl/cgen) and install them on the shard
     * states, so the BSP evaluate phase runs emitted code while
     * commit/latch/exchange stay on the deterministic host paths.
     * Returns the number of shards running natively: all, or 0 after a
     * warning when no toolchain is available (the engine keeps working
     * on the fused interpreter).
     */
    size_t enableNativeKernels(const CgenOptions &opt = CgenOptions{});

    /** True once enableNativeKernels() has succeeded. */
    bool native() const { return native_; }

    /** Activity-guarded evaluation on every shard (see
     *  ShardSet::setActivity). */
    bool setActivity(bool on) override;
    bool
    activityEnabled() const override
    {
        return shards_.activityEnabled();
    }

    /**
     * Attribute each shard's profiled eval ticks to the fibers packed
     * on it (proportional to their static cost within the shard) and
     * export the result keyed by stable fiber names. Requires an
     * attached profiler that has sampled at least one cycle.
     */
    bool collectCostProfile(obs::CostProfile &out) const override;

    /**
     * Repartition now from the measured per-shard eval ticks
     * accumulated since the last rebalance window: re-run LPT on the
     * measured fiber costs, and if the packing changes, migrate the
     * architectural state onto it (same shard count; native kernels,
     * profiler and activity guards are re-attached). Returns true iff
     * the packing changed. Needs profiled samples; false otherwise.
     */
    bool rebalanceNow();

    /** Repartitions performed so far (rebalanceNow + automatic). */
    uint64_t rebalances() const { return rebalances_; }

    /** Attach an obs::SuperstepProfiler sized for this engine's pool
     *  (one slot per shard worker, or one when sequential) and register
     *  it as the pool's barrier-wait observer. Always succeeds. */
    bool enableProfiling(const obs::ProfileOptions &opt =
                             obs::ProfileOptions{}) override;
    obs::SuperstepProfiler *profiler() override
    {
        return profiler_.get();
    }
    const obs::SuperstepProfiler *
    profiler() const override
    {
        return profiler_.get();
    }

    /** Checkpoint all simulation state (including the cycle count);
     *  compatible only with the same design at the same shard count. */
    void save(std::ostream &out) const;
    void restore(std::istream &in);

    /** Engine-agnostic checkpointing (see SimEngine). */
    bool
    saveState(std::ostream &out) const override
    {
        save(out);
        return true;
    }
    bool
    restoreState(std::istream &in) override
    {
        restore(in);
        return true;
    }

    /** Canonical architectural state (see SimEngine / src/ckpt).
     *  Import runs sequentially (shared-pool contract). */
    bool
    exportArch(core::ArchState &out) const override
    {
        shards_.exportArch(out);
        out.cycles = cycleCount_;
        return true;
    }
    bool
    importArch(const core::ArchState &st) override
    {
        shards_.importArch(st);
        cycleCount_ = st.cycles;
        return true;
    }

    /** Shards actually built (<= requested threads). */
    size_t numShards() const { return shards_.size(); }

    /** Pool workers actually running (1 when sequential; can be fewer
     *  than numShards() under the hardware-concurrency cap). */
    uint32_t
    numWorkers() const
    {
        return pool_ ? pool_->threads() : 1;
    }

    bool fused() const { return shards_.fused(); }

  private:
    /** One fiber's partitioning summary, kept after construction so
     *  measured-cost repartitioning can re-pack without re-running
     *  fiber extraction. */
    struct FiberCost
    {
        std::vector<NodeId> cone;   ///< cone nodes, ascending
        double staticCost;          ///< x86 cost-model weight
        std::string key;            ///< stable CostProfile key
    };

    /** LPT: heaviest fiber first onto the least-loaded of
     *  @p nshards shards; ties break on ascending fiber index. */
    static std::vector<std::vector<uint32_t>>
    lptAssign(const std::vector<double> &weights, size_t nshards);

    /** Tear down the shard set and rebuild it for @p assign (same
     *  shard count), migrating the architectural state and
     *  re-attaching native kernels, profiler and activity guards. */
    void rebuildShards(const std::vector<std::vector<uint32_t>> &assign);

    /** Per-fiber measured weights from per-shard eval-tick deltas. */
    std::vector<double>
    fiberWeightsFrom(const std::vector<uint64_t> &shardTicks) const;

    /** Eval ticks per shard accumulated since the last rebalance
     *  window reset; false when nothing was sampled. */
    bool ticksSinceBase(std::vector<uint64_t> &delta) const;

    /** The automatic between-batch check (ParConfig::rebalance). */
    void maybeRebalance();

    /** The pool step() dispatches on (null = sequential). */
    util::BspPool *stepPool() const { return pool_.get(); }
    /** The pool for non-step re-evaluations: null when the pool is
     *  shared, so control ops never race a sibling engine's step. */
    util::BspPool *
    controlPool() const
    {
        return poolShared_ ? nullptr : pool_.get();
    }

    Netlist nl_;
    ShardSet shards_;
    size_t batch_ = 0;

    // Repartitioning state (see rebuildShards).
    std::vector<FiberCost> fibers_;
    std::vector<std::vector<uint32_t>> assignment_;  ///< fibers per shard
    LowerOptions lower_;
    double rebalance_ = 0.0;
    bool fusedWanted_ = true;
    bool activityWanted_ = false;
    bool wantNative_ = false;       ///< re-attach kernels on rebuild
    CgenOptions cgenOpt_;
    std::vector<uint64_t> ticksBase_;   ///< shard ticks at window start
    uint64_t rebalances_ = 0;

    // Declared before pool_: the pool holds a raw observer pointer to
    // the profiler, so the pool (destroyed first, in reverse member
    // order) must never outlive it.
    std::unique_ptr<obs::SuperstepProfiler> profiler_;
    std::shared_ptr<util::BspPool> pool_;   ///< null -> sequential
    bool poolShared_ = false;               ///< pool_ came from ParConfig
    uint64_t cycleCount_ = 0;
    bool native_ = false;                   ///< cgen kernels installed
};

} // namespace parendi::rtl

#endif // PARENDI_X86_PARALLEL_HH
