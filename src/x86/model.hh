/**
 * @file
 * Analytic performance model of Verilator-style multithreaded RTL
 * simulation on x86 (the paper's baseline). Functional correctness of
 * the x86 path is provided by rtl::Interpreter (exact, single thread);
 * this model supplies the timing: computation with a cache-capacity
 * factor, fine-grained synchronization, and non-uniform communication
 * across chiplet and socket boundaries (paper §4, §6.2).
 */

#ifndef PARENDI_X86_MODEL_HH
#define PARENDI_X86_MODEL_HH

#include <cstdint>

#include "fiber/fiber.hh"
#include "rtl/eval.hh"
#include "x86/arch.hh"

namespace parendi::x86 {

/** Aggregate design features the model consumes. */
struct DesignProfile
{
    uint64_t totalInstrs = 0;    ///< x86 instructions per RTL cycle
    uint64_t maxFiberInstrs = 0; ///< largest single task
    uint64_t codeBytes = 0;      ///< generated code footprint
    uint64_t dataBytes = 0;      ///< signal + array state
    uint64_t commBytes = 0;      ///< register bytes crossing tasks
    uint64_t evalInstrs = 0;     ///< generic EvalProgram instructions
    uint64_t loweredInstrs = 0;  ///< after specialization + fusion
};

/** Extract a profile from the fiber decomposition. */
DesignProfile profileDesign(const fiber::FiberSet &fs);

/**
 * Like profileDesign, but model a simulator emitting the lowered
 * (specialized + fused) kernel form: the whole-design EvalProgram is
 * lowered with @p lower and the compute/code terms are scaled by the
 * resulting instruction-count ratio (Verilator's generated C++ fuses
 * expressions the same way; the generic interpreter does not).
 */
DesignProfile profileDesign(const fiber::FiberSet &fs,
                            const rtl::LowerOptions &lower);

/** Modeled per-RTL-cycle timing on x86. */
struct X86Perf
{
    double tCompNs = 0;
    double tSyncNs = 0;
    double tCommNs = 0;
    double cacheFactor = 1;      ///< working-set multiplier applied

    double
    totalNs() const
    {
        return tCompNs + tSyncNs + tCommNs;
    }

    double
    rateKHz() const
    {
        return 1e6 / totalNs();
    }
};

/**
 * Model Verilator with @p threads threads on @p arch. threads == 1
 * means the single-threaded simulator (no sync/comm cost).
 */
X86Perf modelVerilator(const X86Arch &arch, const DesignProfile &prof,
                       uint32_t threads);

/**
 * Sweep 1..max_threads (even counts beyond 1, like the paper's
 * methodology) and return the best-performing thread count.
 */
struct BestThreads
{
    uint32_t threads = 1;
    X86Perf perf;
};
BestThreads bestVerilator(const X86Arch &arch, const DesignProfile &prof,
                          uint32_t max_threads = 32);

} // namespace parendi::x86

#endif // PARENDI_X86_MODEL_HH
