#include "x86/parallel.hh"

#include <algorithm>
#include <istream>
#include <numeric>
#include <ostream>
#include <thread>
#include <vector>

#include "fiber/fiber.hh"
#include "partition/process.hh"
#include "util/logging.hh"

namespace parendi::rtl {

ParallelInterpreter::ParallelInterpreter(Netlist netlist,
                                         uint32_t threads,
                                         const LowerOptions &lower,
                                         const ParConfig &cfg)
    : nl_(std::move(netlist)), batch_(cfg.batch)
{
    fiber::FiberSet fs(nl_);
    // The shard count adapts to the host's real parallelism (unless
    // the config pins a worker count): shards beyond the core count
    // buy no concurrency and only add cross-shard exchange traffic
    // and barrier parties. The partition is bit-exact at any shard
    // count, so requesting 8 threads on a 2-core host simply yields
    // the 2-shard packing. A shared pool pins the width instead: the
    // pool's worker count is the parallelism actually available.
    const uint32_t maxw = cfg.pool ? cfg.pool->threads()
        : cfg.maxWorkers
        ? cfg.maxWorkers
        : std::max(1u, std::thread::hardware_concurrency());
    if (cfg.pool && threads == 0)
        threads = cfg.pool->threads();
    size_t nshards = std::max<size_t>(
        1, std::min<size_t>(std::min<uint32_t>(threads, maxw),
                            fs.size()));

    // LPT over the per-fiber x86 cost: heaviest fiber first onto the
    // least-loaded shard. Ties break on ascending fiber index so the
    // packing (and thus the shard programs) is deterministic.
    std::vector<uint32_t> order(fs.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&fs](uint32_t a, uint32_t b) {
                         return fs[a].totalX86 > fs[b].totalX86;
                     });
    std::vector<uint64_t> load(nshards, 0);
    std::vector<std::vector<NodeId>> nodeSets(nshards);
    for (uint32_t fi : order) {
        size_t best = 0;
        for (size_t s = 1; s < nshards; ++s)
            if (load[s] < load[best])
                best = s;
        load[best] += fs[fi].totalX86;
        nodeSets[best] =
            partition::sortedUnion(nodeSets[best], fs[fi].cone);
    }

    shards_ = ShardSet(nl_, nodeSets, lower, cfg.replicas);
    shards_.setFused(cfg.fused);
    if (cfg.pool) {
        pool_ = cfg.pool;
        poolShared_ = true;
    } else {
        const uint32_t workers = static_cast<uint32_t>(
            std::min<size_t>(shards_.size(), maxw));
        if (threads >= 2 && shards_.size() >= 2 && workers >= 2)
            pool_ = std::make_unique<util::BspPool>(workers);
    }
    // Evaluate combinational logic once so outputs are observable
    // before the first clock edge. (Sequentially under a shared pool
    // — a sibling engine may be mid-step on it.)
    shards_.evalAll(controlPool());
}

void
ParallelInterpreter::step(size_t n)
{
    size_t done = 0;
    while (done < n) {
        const size_t k =
            batch_ ? std::min(batch_, n - done) : n - done;
        shards_.stepCycles(stepPool(), k);
        done += k;
        cycleCount_ += k;
    }
}

void
ParallelInterpreter::reset()
{
    shards_.reset(controlPool());
    cycleCount_ = 0;
}

void
ParallelInterpreter::poke(const std::string &input, const BitVec &value)
{
    shards_.poke(input, value);
}

void
ParallelInterpreter::poke(const std::string &input, uint64_t value)
{
    shards_.poke(input, value);
}

BitVec
ParallelInterpreter::peek(const std::string &output) const
{
    return shards_.peek(output);
}

BitVec
ParallelInterpreter::peekRegister(const std::string &reg) const
{
    return shards_.peekRegister(reg);
}

BitVec
ParallelInterpreter::peekMemory(const std::string &mem,
                                uint64_t index) const
{
    return shards_.peekMemory(mem, index);
}

void
ParallelInterpreter::peekInto(const std::string &output,
                              BitVec &out) const
{
    shards_.peekInto(output, out);
}

void
ParallelInterpreter::peekRegisterInto(const std::string &reg,
                                      BitVec &out) const
{
    shards_.peekRegisterInto(reg, out);
}

void
ParallelInterpreter::pokeLane(const std::string &input,
                              const BitVec &value, uint32_t lane)
{
    shards_.pokeLane(input, value, lane);
}

void
ParallelInterpreter::pokeLane(const std::string &input, uint64_t value,
                              uint32_t lane)
{
    PortId id = nl_.findInput(input);
    if (id == nl_.numInputs())
        fatal("no input port named %s", input.c_str());
    shards_.pokeLane(input, BitVec(nl_.input(id).width, value), lane);
}

BitVec
ParallelInterpreter::peekLane(const std::string &output,
                              uint32_t lane) const
{
    return shards_.peekLane(output, lane);
}

BitVec
ParallelInterpreter::peekRegisterLane(const std::string &reg,
                                      uint32_t lane) const
{
    return shards_.peekRegisterLane(reg, lane);
}

BitVec
ParallelInterpreter::peekMemoryLane(const std::string &mem,
                                    uint64_t index, uint32_t lane) const
{
    return shards_.peekMemoryLane(mem, index, lane);
}

bool
ParallelInterpreter::enableProfiling(const obs::ProfileOptions &opt)
{
    if (profiler_)
        return true;
    uint32_t workers = pool_ ? pool_->threads() : 1;
    profiler_ = std::make_unique<obs::SuperstepProfiler>(
        workers, shards_.size(), opt);
    shards_.setProfiler(profiler_.get());
    // A shared pool serves many engines; its wait observer slot
    // cannot belong to any one of them.
    if (pool_ && !poolShared_)
        pool_->setWaitObserver(profiler_.get());
    return true;
}

size_t
ParallelInterpreter::enableNativeKernels(const CgenOptions &opt)
{
    size_t attached = cgenAttachShards(shards_, opt);
    native_ = attached == shards_.size() && attached > 0;
    return attached;
}

void
ParallelInterpreter::save(std::ostream &out) const
{
    out.write(reinterpret_cast<const char *>(&cycleCount_),
              sizeof(cycleCount_));
    shards_.save(out);
}

void
ParallelInterpreter::restore(std::istream &in)
{
    in.read(reinterpret_cast<char *>(&cycleCount_),
            sizeof(cycleCount_));
    shards_.restore(in);
}

} // namespace parendi::rtl
