#include "x86/parallel.hh"

#include <algorithm>
#include <istream>
#include <numeric>
#include <ostream>
#include <thread>
#include <vector>

#include "fiber/fiber.hh"
#include "obs/costprofile.hh"
#include "partition/process.hh"
#include "util/logging.hh"

namespace parendi::rtl {

namespace {

/** Stable CostProfile key of one fiber: named by what it computes, so
 *  a profile survives recompilation and node renumbering. */
std::string
fiberCostKey(const Netlist &nl, const fiber::Fiber &f)
{
    switch (f.kind) {
      case fiber::SinkKind::Register:
        return "reg:" + nl.reg(f.target).name;
      case fiber::SinkKind::MemoryWrite: {
        const Memory &m = nl.mem(f.target);
        for (size_t p = 0; p < m.writePorts.size(); ++p)
            if (m.writePorts[p] == f.sink)
                return "memw:" + m.name + ":" + std::to_string(p);
        return "memw:" + m.name + ":?";
      }
      case fiber::SinkKind::PortOutput:
        return "out:" + nl.output(f.target).name;
    }
    return "?";
}

} // namespace

std::vector<std::vector<uint32_t>>
ParallelInterpreter::lptAssign(const std::vector<double> &weights,
                               size_t nshards)
{
    // Heaviest fiber first onto the least-loaded shard. Ties break on
    // ascending fiber index so the packing (and thus the shard
    // programs) is deterministic; weights are floored at 1 so
    // zero-cost fibers still spread instead of piling on shard 0.
    std::vector<uint32_t> order(weights.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&weights](uint32_t a, uint32_t b) {
                         return weights[a] > weights[b];
                     });
    std::vector<double> load(nshards, 0);
    std::vector<std::vector<uint32_t>> assign(nshards);
    for (uint32_t fi : order) {
        size_t best = 0;
        for (size_t s = 1; s < nshards; ++s)
            if (load[s] < load[best])
                best = s;
        load[best] += std::max(1.0, weights[fi]);
        assign[best].push_back(fi);
    }
    return assign;
}

ParallelInterpreter::ParallelInterpreter(Netlist netlist,
                                         uint32_t threads,
                                         const LowerOptions &lower,
                                         const ParConfig &cfg)
    : nl_(std::move(netlist)), batch_(cfg.batch), lower_(lower),
      rebalance_(cfg.rebalance), fusedWanted_(cfg.fused)
{
    fiber::FiberSet fs(nl_);
    // The shard count adapts to the host's real parallelism (unless
    // the config pins a worker count): shards beyond the core count
    // buy no concurrency and only add cross-shard exchange traffic
    // and barrier parties. The partition is bit-exact at any shard
    // count, so requesting 8 threads on a 2-core host simply yields
    // the 2-shard packing. A shared pool pins the width instead: the
    // pool's worker count is the parallelism actually available.
    const uint32_t maxw = cfg.pool ? cfg.pool->threads()
        : cfg.maxWorkers
        ? cfg.maxWorkers
        : std::max(1u, std::thread::hardware_concurrency());
    if (cfg.pool && threads == 0)
        threads = cfg.pool->threads();
    size_t nshards = std::max<size_t>(
        1, std::min<size_t>(std::min<uint32_t>(threads, maxw),
                            fs.size()));

    // Keep each fiber's cone, static cost and stable name: the
    // telemetry-directed repartitioner re-packs these without
    // re-running fiber extraction.
    fibers_.resize(fs.size());
    for (size_t fi = 0; fi < fs.size(); ++fi) {
        fibers_[fi].cone = fs[fi].cone;
        fibers_[fi].staticCost = static_cast<double>(fs[fi].totalX86);
        fibers_[fi].key = fiberCostKey(nl_, fs[fi]);
    }

    // LPT weights: the static x86 cost, or — when a measured profile
    // is supplied — each fiber's recorded cost, with unseen fibers
    // falling back to their static cost rescaled into the profile's
    // unit (the ratio is taken over the fibers both sides know).
    std::vector<double> weights(fibers_.size());
    for (size_t fi = 0; fi < fibers_.size(); ++fi)
        weights[fi] = fibers_[fi].staticCost;
    if (cfg.costIn && !cfg.costIn->empty()) {
        double sumMeasured = 0, sumStatic = 0;
        for (const FiberCost &f : fibers_) {
            double m = cfg.costIn->lookup(f.key, -1.0);
            if (m >= 0) {
                sumMeasured += m;
                sumStatic += f.staticCost;
            }
        }
        const double scale = (sumMeasured > 0 && sumStatic > 0)
            ? sumMeasured / sumStatic
            : 1.0;
        for (size_t fi = 0; fi < fibers_.size(); ++fi) {
            double m = cfg.costIn->lookup(fibers_[fi].key, -1.0);
            weights[fi] = m >= 0 ? m : fibers_[fi].staticCost * scale;
        }
    }

    assignment_ = lptAssign(weights, nshards);
    std::vector<std::vector<NodeId>> nodeSets(nshards);
    for (size_t s = 0; s < nshards; ++s)
        for (uint32_t fi : assignment_[s])
            nodeSets[s] =
                partition::sortedUnion(nodeSets[s], fibers_[fi].cone);

    shards_ = ShardSet(nl_, nodeSets, lower, cfg.replicas);
    shards_.setFused(cfg.fused);
    if (cfg.pool) {
        pool_ = cfg.pool;
        poolShared_ = true;
    } else {
        const uint32_t workers = static_cast<uint32_t>(
            std::min<size_t>(shards_.size(), maxw));
        if (threads >= 2 && shards_.size() >= 2 && workers >= 2)
            pool_ = std::make_unique<util::BspPool>(workers);
    }
    // Evaluate combinational logic once so outputs are observable
    // before the first clock edge. (Sequentially under a shared pool
    // — a sibling engine may be mid-step on it.)
    shards_.evalAll(controlPool());
}

void
ParallelInterpreter::step(size_t n)
{
    size_t done = 0;
    while (done < n) {
        const size_t k =
            batch_ ? std::min(batch_, n - done) : n - done;
        shards_.stepCycles(stepPool(), k);
        done += k;
        cycleCount_ += k;
        // Telemetry-directed repartitioning fires between batches
        // (never inside one), so a migration lands on a cycle
        // boundary and the continuation stays bit-identical.
        if (rebalance_ > 0 && batch_)
            maybeRebalance();
    }
}

void
ParallelInterpreter::reset()
{
    shards_.reset(controlPool());
    cycleCount_ = 0;
}

void
ParallelInterpreter::poke(const std::string &input, const BitVec &value)
{
    shards_.poke(input, value);
}

void
ParallelInterpreter::poke(const std::string &input, uint64_t value)
{
    shards_.poke(input, value);
}

BitVec
ParallelInterpreter::peek(const std::string &output) const
{
    return shards_.peek(output);
}

BitVec
ParallelInterpreter::peekRegister(const std::string &reg) const
{
    return shards_.peekRegister(reg);
}

BitVec
ParallelInterpreter::peekMemory(const std::string &mem,
                                uint64_t index) const
{
    return shards_.peekMemory(mem, index);
}

void
ParallelInterpreter::peekInto(const std::string &output,
                              BitVec &out) const
{
    shards_.peekInto(output, out);
}

void
ParallelInterpreter::peekRegisterInto(const std::string &reg,
                                      BitVec &out) const
{
    shards_.peekRegisterInto(reg, out);
}

void
ParallelInterpreter::pokeLane(const std::string &input,
                              const BitVec &value, uint32_t lane)
{
    shards_.pokeLane(input, value, lane);
}

void
ParallelInterpreter::pokeLane(const std::string &input, uint64_t value,
                              uint32_t lane)
{
    PortId id = nl_.findInput(input);
    if (id == nl_.numInputs())
        fatal("no input port named %s", input.c_str());
    shards_.pokeLane(input, BitVec(nl_.input(id).width, value), lane);
}

BitVec
ParallelInterpreter::peekLane(const std::string &output,
                              uint32_t lane) const
{
    return shards_.peekLane(output, lane);
}

BitVec
ParallelInterpreter::peekRegisterLane(const std::string &reg,
                                      uint32_t lane) const
{
    return shards_.peekRegisterLane(reg, lane);
}

BitVec
ParallelInterpreter::peekMemoryLane(const std::string &mem,
                                    uint64_t index, uint32_t lane) const
{
    return shards_.peekMemoryLane(mem, index, lane);
}

bool
ParallelInterpreter::enableProfiling(const obs::ProfileOptions &opt)
{
    if (profiler_)
        return true;
    uint32_t workers = pool_ ? pool_->threads() : 1;
    profiler_ = std::make_unique<obs::SuperstepProfiler>(
        workers, shards_.size(), opt);
    shards_.setProfiler(profiler_.get());
    // A shared pool serves many engines; its wait observer slot
    // cannot belong to any one of them.
    if (pool_ && !poolShared_)
        pool_->setWaitObserver(profiler_.get());
    return true;
}

size_t
ParallelInterpreter::enableNativeKernels(const CgenOptions &opt)
{
    size_t attached = cgenAttachShards(shards_, opt);
    native_ = attached == shards_.size() && attached > 0;
    // Remember the request so a repartition re-attaches kernels to
    // the rebuilt shard programs (usually a compile-cache hit).
    wantNative_ = true;
    cgenOpt_ = opt;
    return attached;
}

bool
ParallelInterpreter::setActivity(bool on)
{
    if (!shards_.setActivity(on))
        return false;
    activityWanted_ = on;
    return true;
}

bool
ParallelInterpreter::ticksSinceBase(std::vector<uint64_t> &delta) const
{
    if (!profiler_)
        return false;
    const std::vector<obs::ShardEvalStat> &stats = profiler_->shardEval();
    delta.assign(stats.size(), 0);
    uint64_t sum = 0;
    for (size_t s = 0; s < stats.size(); ++s) {
        uint64_t base = s < ticksBase_.size() ? ticksBase_[s] : 0;
        delta[s] = stats[s].ticks > base ? stats[s].ticks - base : 0;
        sum += delta[s];
    }
    return sum > 0;
}

std::vector<double>
ParallelInterpreter::fiberWeightsFrom(
    const std::vector<uint64_t> &shardTicks) const
{
    // Each shard's measured eval ticks are attributed to its fibers
    // proportional to their static cost — the finest attribution the
    // per-shard straggler stat supports. Shards the profiler never
    // sampled keep their static weights (scaled consistently only by
    // LPT's relative comparisons, which is all that matters).
    std::vector<double> w(fibers_.size(), 1.0);
    for (size_t s = 0; s < assignment_.size(); ++s) {
        double staticSum = 0;
        for (uint32_t fi : assignment_[s])
            staticSum += fibers_[fi].staticCost;
        const uint64_t ticks =
            s < shardTicks.size() ? shardTicks[s] : 0;
        for (uint32_t fi : assignment_[s]) {
            double share = staticSum > 0
                ? fibers_[fi].staticCost / staticSum
                : 1.0 / static_cast<double>(assignment_[s].size());
            w[fi] = ticks > 0
                ? std::max(1.0, static_cast<double>(ticks) * share)
                : std::max(1.0, fibers_[fi].staticCost);
        }
    }
    return w;
}

bool
ParallelInterpreter::collectCostProfile(obs::CostProfile &out) const
{
    if (!profiler_)
        return false;
    const std::vector<obs::ShardEvalStat> &stats = profiler_->shardEval();
    std::vector<uint64_t> ticks(stats.size(), 0);
    uint64_t sum = 0;
    for (size_t s = 0; s < stats.size(); ++s) {
        ticks[s] = stats[s].ticks;
        sum += ticks[s];
    }
    if (sum == 0)
        return false;
    std::vector<double> w = fiberWeightsFrom(ticks);
    for (size_t fi = 0; fi < fibers_.size(); ++fi)
        out.set(fibers_[fi].key, w[fi]);
    return true;
}

void
ParallelInterpreter::rebuildShards(
    const std::vector<std::vector<uint32_t>> &assign)
{
    core::ArchState st;
    shards_.exportArch(st);

    std::vector<std::vector<NodeId>> nodeSets(assign.size());
    for (size_t s = 0; s < assign.size(); ++s)
        for (uint32_t fi : assign[s])
            nodeSets[s] =
                partition::sortedUnion(nodeSets[s], fibers_[fi].cone);

    shards_ = ShardSet(nl_, nodeSets, lower_, st.lanes);
    shards_.setFused(fusedWanted_);
    if (wantNative_) {
        size_t attached = cgenAttachShards(shards_, cgenOpt_);
        native_ = attached == shards_.size() && attached > 0;
    }
    if (profiler_)
        shards_.setProfiler(profiler_.get());
    if (activityWanted_)
        shards_.setActivity(true);
    // importArch re-runs exchange + eval sequentially, so the rebuilt
    // set continues bit-identically (and, with activity on, marks
    // everything dirty for the first guarded eval).
    shards_.importArch(st);
    assignment_ = assign;
    ++rebalances_;
}

bool
ParallelInterpreter::rebalanceNow()
{
    std::vector<uint64_t> delta;
    if (shards_.size() < 2 || !ticksSinceBase(delta))
        return false;
    std::vector<std::vector<uint32_t>> assign =
        lptAssign(fiberWeightsFrom(delta), assignment_.size());
    // Reset the skew window at every decision, taken or not.
    const std::vector<obs::ShardEvalStat> &stats = profiler_->shardEval();
    ticksBase_.resize(stats.size());
    for (size_t s = 0; s < stats.size(); ++s)
        ticksBase_[s] = stats[s].ticks;
    if (assign == assignment_)
        return false;
    rebuildShards(assign);
    return true;
}

void
ParallelInterpreter::maybeRebalance()
{
    std::vector<uint64_t> delta;
    if (shards_.size() < 2 || !ticksSinceBase(delta))
        return;
    uint64_t sum = 0, peak = 0;
    for (uint64_t d : delta) {
        sum += d;
        peak = std::max(peak, d);
    }
    const double mean =
        static_cast<double>(sum) / static_cast<double>(delta.size());
    if (mean <= 0 ||
        static_cast<double>(peak) <= rebalance_ * mean)
        return;
    if (rebalanceNow())
        inform("par: rebalanced shards (straggler skew max/mean "
               "%.2f > %.2f), repartition #%llu",
               static_cast<double>(peak) / mean, rebalance_,
               static_cast<unsigned long long>(rebalances_));
}

void
ParallelInterpreter::save(std::ostream &out) const
{
    out.write(reinterpret_cast<const char *>(&cycleCount_),
              sizeof(cycleCount_));
    shards_.save(out);
}

void
ParallelInterpreter::restore(std::istream &in)
{
    in.read(reinterpret_cast<char *>(&cycleCount_),
            sizeof(cycleCount_));
    shards_.restore(in);
}

} // namespace parendi::rtl
