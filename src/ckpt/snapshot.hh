/**
 * @file
 * The v2 checkpoint format: versioned, compact, engine-portable
 * snapshots of architectural simulation state.
 *
 * A v2 stream carries the same envelope as v1 —
 *
 *    [8B magic "PRNDCKPT"] [u32 version = 2] [u64 netlist hash]
 *
 * — followed by one or more snapshot *records*. Each record is a
 * fixed header (type, sequence number, cycle count, shape, FNV-1a
 * integrity checksums, payload length) plus a bitstream payload:
 *
 *  - The architectural state (registers, memories, inputs, all lanes)
 *    is bit-packed into one flat image holding only architectural
 *    width bits — a 33-bit register costs 33 bits per lane, not the
 *    64-bit slot word (and none of the lane-major SoA padding or
 *    combinational slots of the raw v1 engine blob).
 *  - Record 0 is a keyframe: the packed image itself, word-coded.
 *    Every later record is an XOR delta against the previous record's
 *    image, which is near-all-zero between nearby snapshots and
 *    collapses under the zero-run/Exp-Golomb word coder
 *    (ckpt/bitstream.hh).
 *  - Every record carries the FNV of the image it decodes to and of
 *    the image it deltas against, so corrupted, truncated, or
 *    out-of-order chains are rejected with a clear error instead of
 *    restoring garbage.
 *
 * Restoring replays the delta chain from the keyframe to the chosen
 * record (default: the last) and imports the resulting ArchState into
 * the target engine (SimEngine::importArch). Any engine of the same
 * design and lane count can import any record — snapshots written by
 * par@8 restore into interp, cgen, or a gang, bit-identically.
 */

#ifndef PARENDI_CKPT_SNAPSHOT_HH
#define PARENDI_CKPT_SNAPSHOT_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/engine.hh"
#include "rtl/netlist.hh"

namespace parendi::ckpt {

/** The envelope version this module reads and writes. */
inline constexpr uint32_t kSnapshotVersion = 2;

/** A bit-packed architectural image: only width bits per value, in
 *  netlist order (regs, then mems, then inputs; lane-minor). */
struct PackedImage
{
    std::vector<uint64_t> words;
    uint64_t bits = 0;

    /** FNV-1a over the packed words (the record integrity digest). */
    uint64_t fnv() const;
};

/** Size @p st for @p nl (lanes replicas), zero-valued. */
void shapeArchState(const rtl::Netlist &nl, uint32_t lanes,
                    core::ArchState &st);

/** Bit-pack @p st (shape must be consistent; widths from the values). */
PackedImage packArchState(const core::ArchState &st);

/** Unpack @p img into a pre-shaped @p st (see shapeArchState);
 *  fatal() if the bit counts disagree. */
void unpackArchState(const PackedImage &img, core::ArchState &st);

/** The golden digest of an engine's architectural state: FNV-1a of
 *  the packed image plus the cycle count. fatal() when the engine
 *  has no architectural export. */
uint64_t archStateFnv(const core::SimEngine &engine);

/**
 * Append snapshot records of one session to a stream. Writes the v2
 * envelope at construction; each write() emits the next record of the
 * delta chain (the first is the keyframe).
 */
class SnapshotWriter
{
  public:
    SnapshotWriter(std::ostream &out, const rtl::Netlist &nl);

    /** Snapshot @p engine (exportArch; fatal() when unsupported). */
    void write(const core::SimEngine &engine);

    /** Append one record holding @p st. */
    void write(const core::ArchState &st);

    uint32_t records() const { return seq_; }

  private:
    std::ostream &out_;
    PackedImage base_;      ///< previous record's image (delta base)
    uint32_t seq_ = 0;
};

/**
 * Read a v2 snapshot chain. Verifies the envelope (magic, version,
 * design hash) at construction; next() decodes one record, applies
 * the delta chain, and yields the architectural state. fatal() on any
 * corruption (bad checksum, truncation, out-of-order delta).
 */
class SnapshotReader
{
  public:
    SnapshotReader(std::istream &in, const rtl::Netlist &nl);

    /** Decode the next record into @p st; false at clean end of
     *  stream. */
    bool next(core::ArchState &st);

    uint32_t recordsRead() const { return seq_; }

  private:
    std::istream &in_;
    const rtl::Netlist &nl_;
    PackedImage base_;
    uint32_t seq_ = 0;
};

/**
 * Restore @p engine from a v2 snapshot stream positioned at the
 * envelope: walk the chain up to record @p upTo (0-based; -1 = the
 * last record) and import that state. Returns the number of records
 * applied; fatal() on corruption, design mismatch, an empty chain, or
 * an engine without architectural import.
 */
uint64_t restoreSnapshotChain(std::istream &in, core::SimEngine &engine,
                              int64_t upTo = -1);

} // namespace parendi::ckpt

#endif // PARENDI_CKPT_SNAPSHOT_HH
