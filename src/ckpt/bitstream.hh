/**
 * @file
 * Bit-granular stream coding for the checkpoint/waveform formats:
 * LSB-first bit packing, unsigned Exp-Golomb codes, and the shared
 * word-stream coder (zero-run gaps + flagged Exp-Golomb/raw literals)
 * that both the v2 snapshot payloads and the compressed waveform
 * value deltas use.
 *
 * Code layout:
 *  - writeBits(v, n): the low n bits of v, least significant first.
 *  - Exp-Golomb of v: k zero bits, a 1 bit, then the low k bits of
 *    (v + 1) where k = floor(log2(v + 1)). Small values are 1-9 bits;
 *    the coder is only used where v + 1 cannot overflow (the word
 *    coder escapes to a raw 64-bit literal first).
 *  - Word streams (codeWords): ascending 64-bit words, encoded as
 *    [UEG gap of zero words] then one nonzero word as a 1-bit escape
 *    flag (0 = UEG-coded, for words < 2^32; 1 = 64 raw bits),
 *    repeated; a final gap covers trailing zeros. XOR-delta images
 *    and value-change deltas are near-all-zero, so they collapse to
 *    a few bits per changed word; a dense random image pays only the
 *    1 flag bit per word over raw storage.
 */

#ifndef PARENDI_CKPT_BITSTREAM_HH
#define PARENDI_CKPT_BITSTREAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace parendi::ckpt {

/** Append-only bit stream (LSB-first within each byte). */
class BitWriter
{
  public:
    /** Append the low @p n bits of @p v (n <= 64). */
    void writeBits(uint64_t v, unsigned n);

    /** Append one bit. */
    void
    writeBit(bool b)
    {
        writeBits(b ? 1 : 0, 1);
    }

    /** Unsigned Exp-Golomb code of @p v (v must be < UINT64_MAX). */
    void writeUEG(uint64_t v);

    /** Pad with zero bits to the next byte boundary. */
    void alignByte();

    /** Bits written so far. */
    uint64_t bitSize() const { return bits_; }

    /** The coded bytes (the last byte is zero-padded). */
    const std::vector<uint8_t> &bytes() const { return bytes_; }

    /** Reset to an empty stream, keeping the buffer capacity. */
    void clear();

  private:
    std::vector<uint8_t> bytes_;
    uint64_t bits_ = 0;
};

/** Reader over a byte buffer written by BitWriter. Overruns never
 *  fault: reads past the end return zeros and set a sticky error flag
 *  the caller checks once per record (corrupt streams are rejected by
 *  the record checksum anyway). */
class BitReader
{
  public:
    BitReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
    }

    /** Read @p n bits (n <= 64), LSB-first. */
    uint64_t readBits(unsigned n);

    bool
    readBit()
    {
        return readBits(1) != 0;
    }

    /** Decode one unsigned Exp-Golomb code. */
    uint64_t readUEG();

    /** Skip to the next byte boundary. */
    void alignByte();

    /** True once any read ran past the end of the buffer. */
    bool overran() const { return overran_; }

    /** Bits consumed so far. */
    uint64_t bitPos() const { return pos_; }

  private:
    const uint8_t *data_;
    size_t size_;
    uint64_t pos_ = 0;
    bool overran_ = false;
};

/**
 * Encode @p n 64-bit words with the zero-run/flagged-literal scheme
 * described above. decodeWords() reads them back; the word count is
 * carried out of band (both sides know the image shape).
 */
void codeWords(BitWriter &w, const uint64_t *words, size_t n);
void decodeWords(BitReader &r, uint64_t *words, size_t n);

/** 64-bit FNV-1a, byte at a time. */
inline constexpr uint64_t kFnvOffset = 1469598103934665603ull;

uint64_t fnv1a(const void *data, size_t bytes,
               uint64_t seed = kFnvOffset);

} // namespace parendi::ckpt

#endif // PARENDI_CKPT_BITSTREAM_HH
