#include "ckpt/snapshot.hh"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#include "ckpt/bitstream.hh"
#include "core/session.hh"
#include "util/logging.hh"

namespace parendi::ckpt {

namespace {

// Snapshot record types.
constexpr uint8_t kRecKeyframe = 1;
constexpr uint8_t kRecDelta = 2;

// The fixed per-record header, serialized field by field (no struct
// padding on the wire).
struct RecordHeader
{
    uint8_t type = 0;
    uint32_t seq = 0;
    uint64_t cycles = 0;
    uint32_t lanes = 0;
    uint32_t numRegs = 0;
    uint32_t numMems = 0;
    uint32_t numInputs = 0;
    uint64_t imageBits = 0;
    uint64_t baseFnv = 0;  ///< FNV of the delta base (0 for keyframes)
    uint64_t imageFnv = 0; ///< FNV of the decoded image
    uint32_t payloadBytes = 0;
};

template <typename T>
void
put(std::ostream &out, T v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof v);
}

template <typename T>
bool
get(std::istream &in, T &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof v);
    return in.good();
}

void
putHeader(std::ostream &out, const RecordHeader &h)
{
    put(out, h.type);
    put(out, h.seq);
    put(out, h.cycles);
    put(out, h.lanes);
    put(out, h.numRegs);
    put(out, h.numMems);
    put(out, h.numInputs);
    put(out, h.imageBits);
    put(out, h.baseFnv);
    put(out, h.imageFnv);
    put(out, h.payloadBytes);
}

/** Read one record header. Returns false on clean EOF (no bytes of a
 *  new record present); fatal() on a torn header. */
bool
getHeader(std::istream &in, RecordHeader &h)
{
    in.read(reinterpret_cast<char *>(&h.type), sizeof h.type);
    if (in.eof() && in.gcount() == 0)
        return false;
    bool ok = in.good();
    ok = ok && get(in, h.seq);
    ok = ok && get(in, h.cycles);
    ok = ok && get(in, h.lanes);
    ok = ok && get(in, h.numRegs);
    ok = ok && get(in, h.numMems);
    ok = ok && get(in, h.numInputs);
    ok = ok && get(in, h.imageBits);
    ok = ok && get(in, h.baseFnv);
    ok = ok && get(in, h.imageFnv);
    ok = ok && get(in, h.payloadBytes);
    if (!ok)
        fatal("checkpoint: truncated snapshot record header");
    return true;
}

/** Append the low @p width bits of @p v to the packed image. */
void
packValue(BitWriter &w, const rtl::BitVec &v, uint32_t width)
{
    for (uint32_t b = 0; b < width; b += 64) {
        unsigned n = std::min<uint32_t>(64, width - b);
        w.writeBits(v.word(b / 64), n);
    }
}

void
unpackValue(BitReader &r, rtl::BitVec &v, uint32_t width)
{
    uint64_t words[rtl::wordsFor(rtl::kMaxWidth)];
    size_t n = rtl::wordsFor(width);
    for (uint32_t b = 0; b < width; b += 64)
        words[b / 64] = r.readBits(std::min<uint32_t>(64, width - b));
    v.assign(width, words, n);
}

} // namespace

uint64_t
PackedImage::fnv() const
{
    uint64_t h = fnv1a(words.data(), words.size() * sizeof(uint64_t));
    return fnv1a(&bits, sizeof bits, h);
}

void
shapeArchState(const rtl::Netlist &nl, uint32_t lanes,
               core::ArchState &st)
{
    st.cycles = 0;
    st.lanes = lanes;
    st.regs.assign(nl.numRegisters(), {});
    for (uint32_t r = 0; r < nl.numRegisters(); ++r)
        st.regs[r].assign(lanes, rtl::BitVec(nl.reg(r).width));
    st.mems.assign(nl.numMemories(), {});
    for (uint32_t m = 0; m < nl.numMemories(); ++m)
        st.mems[m].assign(nl.mem(m).depth * lanes,
                          rtl::BitVec(nl.mem(m).width));
    st.inputs.assign(nl.numInputs(), {});
    for (uint32_t p = 0; p < nl.numInputs(); ++p)
        st.inputs[p].assign(lanes, rtl::BitVec(nl.input(p).width));
}

PackedImage
packArchState(const core::ArchState &st)
{
    BitWriter w;
    for (const auto &perLane : st.regs)
        for (const auto &v : perLane)
            packValue(w, v, v.width());
    for (const auto &entries : st.mems)
        for (const auto &v : entries)
            packValue(w, v, v.width());
    for (const auto &perLane : st.inputs)
        for (const auto &v : perLane)
            packValue(w, v, v.width());
    PackedImage img;
    img.bits = w.bitSize();
    w.alignByte();
    img.words.assign((w.bytes().size() + 7) / 8, 0);
    if (!w.bytes().empty())
        std::memcpy(img.words.data(), w.bytes().data(),
                    w.bytes().size());
    return img;
}

void
unpackArchState(const PackedImage &img, core::ArchState &st)
{
    BitReader r(reinterpret_cast<const uint8_t *>(img.words.data()),
                img.words.size() * sizeof(uint64_t));
    for (auto &perLane : st.regs)
        for (auto &v : perLane)
            unpackValue(r, v, v.width());
    for (auto &entries : st.mems)
        for (auto &v : entries)
            unpackValue(r, v, v.width());
    for (auto &perLane : st.inputs)
        for (auto &v : perLane)
            unpackValue(r, v, v.width());
    if (r.overran() || r.bitPos() != img.bits)
        fatal("checkpoint: snapshot image does not match the "
              "design shape (%llu bits decoded, %llu in image)",
              static_cast<unsigned long long>(r.bitPos()),
              static_cast<unsigned long long>(img.bits));
}

uint64_t
archStateFnv(const core::SimEngine &engine)
{
    core::ArchState st;
    if (!engine.exportArch(st))
        fatal("engine %s has no architectural state export",
              engine.engineName());
    PackedImage img = packArchState(st);
    uint64_t h = img.fnv();
    return fnv1a(&st.cycles, sizeof st.cycles, h);
}

SnapshotWriter::SnapshotWriter(std::ostream &out, const rtl::Netlist &nl)
    : out_(out)
{
    put(out_, core::kCheckpointMagic);
    put(out_, kSnapshotVersion);
    put(out_, rtl::netlistHash(nl));
}

void
SnapshotWriter::write(const core::SimEngine &engine)
{
    core::ArchState st;
    if (!engine.exportArch(st))
        fatal("engine %s has no architectural state export; "
              "cannot write a v2 snapshot",
              engine.engineName());
    write(st);
}

void
SnapshotWriter::write(const core::ArchState &st)
{
    PackedImage img = packArchState(st);

    RecordHeader h;
    h.seq = seq_;
    h.cycles = st.cycles;
    h.lanes = st.lanes;
    h.numRegs = static_cast<uint32_t>(st.regs.size());
    h.numMems = static_cast<uint32_t>(st.mems.size());
    h.numInputs = static_cast<uint32_t>(st.inputs.size());
    h.imageBits = img.bits;
    h.imageFnv = img.fnv();

    BitWriter payload;
    if (seq_ == 0) {
        h.type = kRecKeyframe;
        codeWords(payload, img.words.data(), img.words.size());
    } else {
        if (img.words.size() != base_.words.size() ||
            img.bits != base_.bits)
            fatal("checkpoint: snapshot shape changed mid-chain");
        h.type = kRecDelta;
        h.baseFnv = base_.fnv();
        std::vector<uint64_t> xored(img.words.size());
        for (size_t i = 0; i < img.words.size(); ++i)
            xored[i] = img.words[i] ^ base_.words[i];
        codeWords(payload, xored.data(), xored.size());
    }
    payload.alignByte();
    h.payloadBytes = static_cast<uint32_t>(payload.bytes().size());

    putHeader(out_, h);
    out_.write(reinterpret_cast<const char *>(payload.bytes().data()),
               static_cast<std::streamsize>(payload.bytes().size()));

    base_ = std::move(img);
    ++seq_;
}

SnapshotReader::SnapshotReader(std::istream &in, const rtl::Netlist &nl)
    : in_(in), nl_(nl)
{
    uint64_t magic = 0;
    uint32_t version = 0;
    uint64_t hash = 0;
    if (!get(in_, magic) || magic != core::kCheckpointMagic)
        fatal("checkpoint: not a v2 snapshot stream (bad magic)");
    if (!get(in_, version) || version != kSnapshotVersion)
        fatal("checkpoint: unsupported snapshot version %u", version);
    if (!get(in_, hash))
        fatal("checkpoint: truncated snapshot envelope");
    if (hash != rtl::netlistHash(nl))
        fatal("checkpoint: snapshot was taken of a different "
                    "design (netlist hash mismatch)");
}

bool
SnapshotReader::next(core::ArchState &st)
{
    RecordHeader h;
    if (!getHeader(in_, h))
        return false;

    if (h.seq != seq_)
        fatal("checkpoint: snapshot chain out of order "
              "(record %u where %u expected)", h.seq, seq_);
    if (h.type != (seq_ == 0 ? kRecKeyframe : kRecDelta))
        fatal("checkpoint: unexpected snapshot record type %u",
              h.type);
    if (h.numRegs != nl_.numRegisters() ||
        h.numMems != nl_.numMemories() ||
        h.numInputs != nl_.numInputs())
        fatal("checkpoint: snapshot shape does not match the design");

    std::vector<uint8_t> payload(h.payloadBytes);
    in_.read(reinterpret_cast<char *>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
    if (!in_.good() && h.payloadBytes != 0)
        fatal("checkpoint: truncated snapshot payload (record %u)",
              h.seq);

    size_t numWords = (h.imageBits + 63) / 64;
    std::vector<uint64_t> words(numWords, 0);
    BitReader r(payload.data(), payload.size());
    decodeWords(r, words.data(), numWords);
    if (r.overran())
        fatal("checkpoint: corrupt snapshot payload (record %u)",
              h.seq);

    if (h.type == kRecDelta) {
        if (numWords != base_.words.size() || h.imageBits != base_.bits)
            fatal("checkpoint: snapshot shape changed mid-chain "
                  "(record %u)", h.seq);
        if (base_.fnv() != h.baseFnv)
            fatal("checkpoint: delta base checksum mismatch "
                  "(record %u)", h.seq);
        for (size_t i = 0; i < numWords; ++i)
            words[i] ^= base_.words[i];
    }

    PackedImage img;
    img.words = std::move(words);
    img.bits = h.imageBits;
    if (img.fnv() != h.imageFnv)
        fatal("checkpoint: snapshot image checksum mismatch "
              "(record %u)", h.seq);

    shapeArchState(nl_, h.lanes, st);
    st.cycles = h.cycles;
    unpackArchState(img, st);

    base_ = std::move(img);
    ++seq_;
    return true;
}

uint64_t
restoreSnapshotChain(std::istream &in, core::SimEngine &engine,
                     int64_t upTo)
{
    SnapshotReader reader(in, engine.netlist());
    core::ArchState st;
    uint64_t applied = 0;
    while (reader.next(st)) {
        ++applied;
        if (upTo >= 0 && applied == static_cast<uint64_t>(upTo) + 1)
            break;
    }
    if (applied == 0)
        fatal("checkpoint: snapshot stream holds no records");
    if (upTo >= 0 && applied != static_cast<uint64_t>(upTo) + 1)
        fatal("checkpoint: snapshot %lld requested but the chain "
              "holds only %llu records",
              static_cast<long long>(upTo),
              static_cast<unsigned long long>(applied));
    if (!engine.importArch(st))
        fatal("engine %s has no architectural state import; "
              "cannot restore a v2 snapshot",
              engine.engineName());
    return applied;
}

} // namespace parendi::ckpt
