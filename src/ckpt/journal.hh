/**
 * @file
 * The deterministic input journal: a recorded log of everything the
 * host did to a session (pokes, steps, resets, snapshot points), so
 * that restoring any snapshot and replaying the tail of the journal
 * reproduces the original run bit-identically — on any engine and any
 * thread count, because the engines are bit-identical by construction
 * and the journal captures the full external stimulus.
 *
 * Stream layout:
 *
 *    [8B magic "PRNDJRNL"] [u32 version = 1] [u64 netlist hash]
 *    record*
 *
 * Each record is one byte of opcode plus an op-specific payload:
 *
 *    Poke     u32 lane (kAllLanes = broadcast), u32 nameLen, name,
 *             u32 width, wordsFor(width) raw u64 words
 *    Step     u64 n
 *    Reset    (no payload)
 *    Snapshot u32 seq, u64 cycle — marks "snapshot #seq of the
 *             sibling snapshot stream was taken here"
 *
 * Snapshot markers make replay-from-snapshot-k exact: replay skips
 * every record up to and including marker k (whose state the snapshot
 * already holds), cross-checks the marker's cycle count against the
 * restored engine, and applies everything after. Resets need no
 * special casing — the marker pins the resume point positionally, not
 * by cycle arithmetic.
 */

#ifndef PARENDI_CKPT_JOURNAL_HH
#define PARENDI_CKPT_JOURNAL_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/engine.hh"
#include "rtl/bitvec.hh"
#include "rtl/netlist.hh"

namespace parendi::ckpt {

/** The journal stream version this module reads and writes. */
inline constexpr uint32_t kJournalVersion = 1;

/** Lane value recording a broadcast poke (SimEngine::poke). */
inline constexpr uint32_t kAllLanes = UINT32_MAX;

/** Append stimulus records to a stream (envelope written at
 *  construction). Hosts call record*() alongside the corresponding
 *  engine calls; see core::SessionHandle::attachJournal for the
 *  automatic wiring. */
class JournalWriter
{
  public:
    JournalWriter(std::ostream &out, const rtl::Netlist &nl);

    void recordPoke(const std::string &input, const rtl::BitVec &value,
                    uint32_t lane = kAllLanes);
    void recordStep(uint64_t n);
    void recordReset();

    /** Mark that snapshot @p seq was taken at @p cycle. */
    void recordSnapshot(uint32_t seq, uint64_t cycle);

    uint64_t records() const { return records_; }

  private:
    std::ostream &out_;
    uint64_t records_ = 0;
};

/**
 * Replay a journal against @p engine. With @p fromSnapshot < 0 the
 * engine must be freshly constructed (cycle 0): every record is
 * applied. Otherwise the engine must hold snapshot #fromSnapshot of
 * the sibling snapshot stream: records up to and including that
 * snapshot marker are skipped, the marker's cycle is cross-checked
 * against engine.cycles(), and the tail is applied. Returns the
 * number of stimulus records applied; fatal() on a design mismatch,
 * a missing snapshot marker, or a corrupt stream.
 */
uint64_t replayJournal(std::istream &in, core::SimEngine &engine,
                       int64_t fromSnapshot = -1);

} // namespace parendi::ckpt

#endif // PARENDI_CKPT_JOURNAL_HH
