#include "ckpt/wave.hh"

#include <istream>
#include <ostream>

#include "ckpt/bitstream.hh"
#include "rtl/netlist.hh"
#include "rtl/vcd.hh"
#include "util/logging.hh"

namespace parendi::ckpt {

namespace {

constexpr uint64_t kWaveMagic = 0x45564157444e5250ull; // "PRNDWAVE"

template <typename T>
void
put(std::ostream &out, T v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof v);
}

template <typename T>
bool
get(std::istream &in, T &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof v);
    return in.good();
}

/** LEB128: sample payloads are almost always < 128 bytes, so the
 *  per-sample length prefix costs one byte instead of four. */
void
putVarint(std::ostream &out, uint64_t v)
{
    while (v >= 0x80) {
        put(out, static_cast<uint8_t>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    put(out, static_cast<uint8_t>(v));
}

bool
getVarint(std::istream &in, uint64_t &v)
{
    v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        uint8_t b = 0;
        in.read(reinterpret_cast<char *>(&b), 1);
        if (!in.good())
            return false;
        v |= uint64_t(b & 0x7f) << shift;
        if (!(b & 0x80))
            return true;
    }
    return false; // over-long encoding
}

} // namespace

WaveWriter::WaveWriter(std::ostream &out) : out_(out) {}

size_t
WaveWriter::addSignal(const std::string &name, uint32_t width)
{
    if (headerDone_)
        fatal("WaveWriter: cannot add signals after the header");
    Signal s;
    s.name = name;
    s.width = width;
    s.last = rtl::BitVec(width, uint64_t{0});
    signals_.push_back(std::move(s));
    return signals_.size() - 1;
}

void
WaveWriter::writeHeader(const std::string &design, uint64_t designHash)
{
    put(out_, kWaveMagic);
    put(out_, kWaveVersion);
    put(out_, designHash);
    put(out_, static_cast<uint32_t>(design.size()));
    out_.write(design.data(),
               static_cast<std::streamsize>(design.size()));
    put(out_, static_cast<uint32_t>(signals_.size()));
    for (const Signal &s : signals_) {
        put(out_, s.width);
        put(out_, static_cast<uint32_t>(s.name.size()));
        out_.write(s.name.data(),
                   static_cast<std::streamsize>(s.name.size()));
    }
    headerDone_ = true;
}

void
WaveWriter::sample(uint64_t time, const std::vector<rtl::BitVec> &values)
{
    if (!headerDone_)
        fatal("WaveWriter: sample() before writeHeader()");
    if (values.size() != signals_.size())
        fatal("WaveWriter: %zu values for %zu signals", values.size(),
              signals_.size());

    std::vector<size_t> changed;
    for (size_t i = 0; i < signals_.size(); ++i)
        if (first_ || values[i] != signals_[i].last)
            changed.push_back(i);
    if (changed.empty())
        return;

    BitWriter w;
    w.writeUEG(first_ ? time : time - lastTime_);
    w.writeUEG(changed.size());
    size_t prev = 0;
    bool firstChange = true;
    uint64_t xorWords[rtl::wordsFor(rtl::kMaxWidth)];
    for (size_t i : changed) {
        w.writeUEG(firstChange ? i : i - prev - 1);
        firstChange = false;
        prev = i;
        Signal &s = signals_[i];
        uint32_t n = rtl::wordsFor(s.width);
        for (uint32_t j = 0; j < n; ++j)
            xorWords[j] = values[i].word(j) ^ s.last.word(j);
        codeWords(w, xorWords, n);
        s.last = values[i];
    }
    w.alignByte();

    putVarint(out_, w.bytes().size());
    out_.write(reinterpret_cast<const char *>(w.bytes().data()),
               static_cast<std::streamsize>(w.bytes().size()));
    lastTime_ = time;
    first_ = false;
}

WaveTracer::WaveTracer(core::SimEngine &sim, std::ostream &out)
    : sim_(sim), writer_(out)
{
    const rtl::Netlist &nl = sim_.netlist();
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r) {
        regNames_.push_back(nl.reg(r).name);
        writer_.addSignal(nl.reg(r).name, nl.reg(r).width);
    }
    for (rtl::PortId o = 0; o < nl.numOutputs(); ++o) {
        outNames_.push_back(nl.output(o).name);
        writer_.addSignal(nl.output(o).name, nl.output(o).width);
    }
    writer_.writeHeader(nl.name(), rtl::netlistHash(nl));
    values_.resize(regNames_.size() + outNames_.size());
    sampleNow(); // time 0: initial values
}

void
WaveTracer::sampleNow()
{
    size_t i = 0;
    for (const std::string &r : regNames_)
        sim_.peekRegisterInto(r, values_[i++]);
    for (const std::string &o : outNames_)
        sim_.peekInto(o, values_[i++]);
    writer_.sample(sim_.cycles(), values_);
}

void
WaveTracer::step(size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        sim_.step();
        sampleNow();
    }
}

uint64_t
waveToVcd(std::istream &in, std::ostream &out)
{
    uint64_t magic = 0, hash = 0;
    uint32_t version = 0, nameLen = 0, numSignals = 0;
    if (!get(in, magic) || magic != kWaveMagic)
        fatal("wave: not a parendi wave stream (bad magic)");
    if (!get(in, version) || version != kWaveVersion)
        fatal("wave: unsupported wave version %u", version);
    if (!get(in, hash) || !get(in, nameLen))
        fatal("wave: truncated wave header");
    std::string design(nameLen, '\0');
    in.read(design.data(), nameLen);
    if (!in.good() || !get(in, numSignals))
        fatal("wave: truncated wave header");

    rtl::VcdWriter vcd(out);
    std::vector<uint32_t> widths;
    std::vector<rtl::BitVec> values;
    for (uint32_t i = 0; i < numSignals; ++i) {
        uint32_t width = 0, len = 0;
        if (!get(in, width) || !get(in, len))
            fatal("wave: truncated signal table");
        std::string name(len, '\0');
        in.read(name.data(), len);
        if (!in.good())
            fatal("wave: truncated signal table");
        vcd.addSignal(name, static_cast<uint16_t>(width));
        widths.push_back(width);
        values.emplace_back(width, uint64_t{0});
    }
    vcd.writeHeader(design);

    uint64_t time = 0;
    uint64_t samples = 0;
    uint64_t words[rtl::wordsFor(rtl::kMaxWidth)];
    for (;;) {
        if (in.peek() == std::char_traits<char>::eof())
            break; // clean end of stream
        uint64_t payloadBytes = 0;
        if (!getVarint(in, payloadBytes))
            fatal("wave: truncated sample record");
        if (payloadBytes > (uint64_t{1} << 30))
            fatal("wave: corrupt sample record (absurd payload size)");
        std::vector<uint8_t> payload(payloadBytes);
        in.read(reinterpret_cast<char *>(payload.data()),
                static_cast<std::streamsize>(payload.size()));
        if (!in.good() && payloadBytes != 0)
            fatal("wave: truncated sample payload");

        BitReader r(payload.data(), payload.size());
        time = (samples == 0 ? r.readUEG() : time + r.readUEG());
        uint64_t numChanges = r.readUEG();
        size_t id = 0;
        for (uint64_t c = 0; c < numChanges; ++c) {
            uint64_t gap = r.readUEG();
            id = (c == 0 ? gap : id + gap + 1);
            if (id >= values.size() || r.overran())
                fatal("wave: corrupt sample record");
            uint32_t n = rtl::wordsFor(widths[id]);
            decodeWords(r, words, n);
            for (uint32_t j = 0; j < n; ++j)
                words[j] ^= values[id].word(j);
            values[id].assign(widths[id], words, n);
        }
        if (r.overran())
            fatal("wave: corrupt sample record");
        vcd.sample(time, values);
        ++samples;
    }
    return samples;
}

} // namespace parendi::ckpt
