/**
 * @file
 * The compressed waveform trace (`--wave FILE`): the same signal set
 * the VCD tracer dumps (every register, then every output port), but
 * stored as bit-coded value-change deltas instead of ASCII — on
 * typical designs a few percent of the raw VCD bytes. `parendi
 * wave2vcd` expands a trace back to a VCD that is byte-identical to
 * what `--vcd` would have produced on the same run, so existing
 * waveform tooling keeps working.
 *
 * Stream layout:
 *
 *    [8B magic "PRNDWAVE"] [u32 version = 1] [u64 netlist hash]
 *    [u32 designNameLen] [designName]
 *    [u32 numSignals] ([u32 width] [u32 nameLen] [name])*
 *    sample*
 *
 * Signals are declared in EngineTracer order: registers by RegId,
 * then outputs by PortId. Each sample is byte-aligned:
 *
 *    [LEB128 payloadBytes] [bitstream payload]
 *
 * whose payload codes, with the shared Exp-Golomb bitstream
 * (ckpt/bitstream.hh):
 *
 *    UEG timeDelta      (vs the previous sample; absolute for the
 *                        first sample)
 *    UEG numChanges
 *    numChanges x:
 *       UEG idGap       (signal index gap: first = index, later =
 *                        index - prevIndex - 1; ascending)
 *       codeWords(new XOR previous, wordsFor(width))
 *
 * The first sample reports every signal as changed (matching VCD's
 * dump-all at time 0); later samples carry only real changes, XORed
 * against the previous value so near-still signals cost almost
 * nothing. Samples with no changes are not recorded at all — VCD
 * emits nothing for them either.
 */

#ifndef PARENDI_CKPT_WAVE_HH
#define PARENDI_CKPT_WAVE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "rtl/bitvec.hh"

namespace parendi::ckpt {

/** The wave stream version this module reads and writes. */
inline constexpr uint32_t kWaveVersion = 1;

/** Low-level compressed-waveform emitter over an arbitrary signal
 *  list (the bit-coded sibling of rtl::VcdWriter). */
class WaveWriter
{
  public:
    explicit WaveWriter(std::ostream &out);

    /** Declare a signal before writeHeader(); returns its index. */
    size_t addSignal(const std::string &name, uint32_t width);

    /** Emit the stream header. @p designHash stamps the stream with
     *  rtl::netlistHash of the traced design. */
    void writeHeader(const std::string &design, uint64_t designHash);

    /** Record one timestep; @p values aligned with the declared
     *  signals. Only changes are coded (all signals at the first
     *  sample); a change-free sample writes nothing. */
    void sample(uint64_t time, const std::vector<rtl::BitVec> &values);

    size_t numSignals() const { return signals_.size(); }

  private:
    struct Signal
    {
        std::string name;
        uint32_t width;
        rtl::BitVec last;
    };

    std::ostream &out_;
    std::vector<Signal> signals_;
    uint64_t lastTime_ = 0;
    bool headerDone_ = false;
    bool first_ = true;
};

/** Trace all registers and outputs of @p sim each cycle into a
 *  compressed wave stream — the drop-in sibling of rtl::EngineTracer
 *  (same signals, same sample times, one sample at construction). */
class WaveTracer
{
  public:
    WaveTracer(core::SimEngine &sim, std::ostream &out);

    /** Step the engine and record one sample per cycle. */
    void step(size_t n = 1);

  private:
    void sampleNow();

    core::SimEngine &sim_;
    WaveWriter writer_;
    std::vector<std::string> regNames_;
    std::vector<std::string> outNames_;
    std::vector<rtl::BitVec> values_;
};

/**
 * Expand a compressed wave stream to VCD, byte-identical to the VCD
 * the EngineTracer would have written on the same run. fatal() on a
 * corrupt or truncated stream. Returns the number of samples
 * converted.
 */
uint64_t waveToVcd(std::istream &in, std::ostream &out);

} // namespace parendi::ckpt

#endif // PARENDI_CKPT_WAVE_HH
