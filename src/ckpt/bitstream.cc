#include "ckpt/bitstream.hh"

namespace parendi::ckpt {

void
BitWriter::writeBits(uint64_t v, unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        unsigned off = bits_ & 7;
        if (off == 0)
            bytes_.push_back(0);
        if ((v >> i) & 1)
            bytes_.back() |= static_cast<uint8_t>(1u << off);
        ++bits_;
    }
}

void
BitWriter::writeUEG(uint64_t v)
{
    uint64_t x = v + 1;
    unsigned k = 0;
    while ((x >> (k + 1)) != 0)
        ++k;
    writeBits(0, k);                 // k zero bits
    writeBit(true);                  // the leading 1 of x
    writeBits(x & ((uint64_t{1} << k) - 1), k); // low k bits of x
}

void
BitWriter::alignByte()
{
    if (bits_ & 7)
        writeBits(0, 8 - (bits_ & 7));
}

void
BitWriter::clear()
{
    bytes_.clear();
    bits_ = 0;
}

uint64_t
BitReader::readBits(unsigned n)
{
    uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (pos_ >= size_ * 8) {
            overran_ = true;
            return v;
        }
        if ((data_[pos_ >> 3] >> (pos_ & 7)) & 1)
            v |= uint64_t{1} << i;
        ++pos_;
    }
    return v;
}

uint64_t
BitReader::readUEG()
{
    unsigned k = 0;
    while (!readBit()) {
        if (overran_ || k >= 64) {
            overran_ = true;
            return 0;
        }
        ++k;
    }
    uint64_t low = readBits(k);
    return ((uint64_t{1} << k) | low) - 1;
}

void
BitReader::alignByte()
{
    if (pos_ & 7)
        readBits(8 - static_cast<unsigned>(pos_ & 7));
}

// A word is UEG-coded only when the code is no longer than the raw
// escape (flag + 64 bits); the threshold keeps v + 1 far from
// overflow too.
static constexpr uint64_t kUegLimit = uint64_t{1} << 32;

void
codeWords(BitWriter &w, const uint64_t *words, size_t n)
{
    size_t run = 0;
    for (size_t i = 0; i < n; ++i) {
        if (words[i] == 0) {
            ++run;
            continue;
        }
        w.writeUEG(run);
        run = 0;
        if (words[i] < kUegLimit) {
            w.writeBit(false);
            w.writeUEG(words[i]);
        } else {
            w.writeBit(true);
            w.writeBits(words[i], 64);
        }
    }
    if (run)
        w.writeUEG(run);
}

void
decodeWords(BitReader &r, uint64_t *words, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        words[i] = 0;
    size_t i = 0;
    while (i < n && !r.overran()) {
        i += r.readUEG();       // zero-word gap
        if (i >= n)
            break;
        words[i++] = r.readBit() ? r.readBits(64) : r.readUEG();
    }
}

uint64_t
fnv1a(const void *data, size_t bytes, uint64_t seed)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace parendi::ckpt
