#include "ckpt/journal.hh"

#include <istream>
#include <ostream>
#include <vector>

#include "util/logging.hh"

namespace parendi::ckpt {

namespace {

constexpr uint64_t kJournalMagic = 0x4c4e524a444e5250ull; // "PRNDJRNL"

constexpr uint8_t kOpPoke = 1;
constexpr uint8_t kOpStep = 2;
constexpr uint8_t kOpReset = 3;
constexpr uint8_t kOpSnapshot = 4;

template <typename T>
void
put(std::ostream &out, T v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof v);
}

template <typename T>
bool
get(std::istream &in, T &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof v);
    return in.good();
}

} // namespace

JournalWriter::JournalWriter(std::ostream &out, const rtl::Netlist &nl)
    : out_(out)
{
    put(out_, kJournalMagic);
    put(out_, kJournalVersion);
    put(out_, rtl::netlistHash(nl));
}

void
JournalWriter::recordPoke(const std::string &input,
                          const rtl::BitVec &value, uint32_t lane)
{
    put(out_, kOpPoke);
    put(out_, lane);
    put(out_, static_cast<uint32_t>(input.size()));
    out_.write(input.data(),
               static_cast<std::streamsize>(input.size()));
    put(out_, value.width());
    for (uint32_t w = 0; w < value.numWords(); ++w)
        put(out_, value.word(w));
    ++records_;
}

void
JournalWriter::recordStep(uint64_t n)
{
    put(out_, kOpStep);
    put(out_, n);
    ++records_;
}

void
JournalWriter::recordReset()
{
    put(out_, kOpReset);
    ++records_;
}

void
JournalWriter::recordSnapshot(uint32_t seq, uint64_t cycle)
{
    put(out_, kOpSnapshot);
    put(out_, seq);
    put(out_, cycle);
    ++records_;
}

uint64_t
replayJournal(std::istream &in, core::SimEngine &engine,
              int64_t fromSnapshot)
{
    uint64_t magic = 0;
    uint32_t version = 0;
    uint64_t hash = 0;
    if (!get(in, magic) || magic != kJournalMagic)
        fatal("journal: not a parendi input journal (bad magic)");
    if (!get(in, version) || version != kJournalVersion)
        fatal("journal: unsupported journal version %u", version);
    if (!get(in, hash))
        fatal("journal: truncated journal envelope");
    if (hash != rtl::netlistHash(engine.netlist()))
        fatal("journal: journal was recorded on a different "
                    "design (netlist hash mismatch)");

    bool skipping = fromSnapshot >= 0;
    uint64_t applied = 0;
    for (;;) {
        uint8_t op = 0;
        in.read(reinterpret_cast<char *>(&op), 1);
        if (in.eof() && in.gcount() == 0)
            break;
        if (!in.good())
            fatal("journal: truncated journal record");
        switch (op) {
        case kOpPoke: {
            uint32_t lane = 0, nameLen = 0, width = 0;
            bool ok = get(in, lane) && get(in, nameLen);
            std::string name(nameLen, '\0');
            if (ok) {
                in.read(name.data(), nameLen);
                ok = in.good();
            }
            ok = ok && get(in, width);
            std::vector<uint64_t> words(rtl::wordsFor(width), 0);
            for (uint64_t &w : words)
                ok = ok && get(in, w);
            if (!ok)
                fatal("journal: truncated poke record");
            if (skipping)
                break;
            rtl::BitVec v(width, std::move(words));
            if (lane == kAllLanes)
                engine.poke(name, v);
            else
                engine.pokeLane(name, v, lane);
            ++applied;
            break;
        }
        case kOpStep: {
            uint64_t n = 0;
            if (!get(in, n))
                fatal("journal: truncated step record");
            if (skipping)
                break;
            engine.step(n);
            ++applied;
            break;
        }
        case kOpReset:
            if (skipping)
                break;
            engine.reset();
            ++applied;
            break;
        case kOpSnapshot: {
            uint32_t seq = 0;
            uint64_t cycle = 0;
            if (!get(in, seq) || !get(in, cycle))
                fatal("journal: truncated snapshot marker");
            if (skipping &&
                seq == static_cast<uint64_t>(fromSnapshot)) {
                if (cycle != engine.cycles())
                    fatal(
                        "journal: snapshot marker %u is at cycle %llu "
                        "but the restored engine is at cycle %llu",
                        seq,
                        static_cast<unsigned long long>(cycle),
                        static_cast<unsigned long long>(
                            engine.cycles()));
                skipping = false;
            }
            break;
        }
        default:
            fatal("journal: unknown journal opcode %u", op);
        }
    }
    if (skipping)
        fatal("journal: snapshot marker %lld not found in journal",
              static_cast<long long>(fromSnapshot));
    return applied;
}

} // namespace parendi::ckpt
