/**
 * @file
 * Status and error reporting helpers, following the gem5 convention of
 * inform/warn for status messages and fatal/panic for errors.
 *
 * fatal() is for user errors (bad configuration, malformed input); it
 * throws a FatalError so library users and tests can recover. panic() is
 * for internal invariant violations (simulator bugs); it aborts.
 */

#ifndef PARENDI_UTIL_LOGGING_HH
#define PARENDI_UTIL_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace parendi {

/** Exception thrown by fatal() so callers (and tests) can catch it. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Print an informational message to stderr (prefixed "info:"). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr (prefixed "warn:"). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report a user error: print and throw FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal bug: print and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Globally silence inform() (used by benches to keep tables clean). */
void setQuiet(bool quiet);
bool isQuiet();

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace parendi

#endif // PARENDI_UTIL_LOGGING_HH
