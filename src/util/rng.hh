/**
 * @file
 * Deterministic pseudo-random number generators. xorshift32 is also the
 * microbenchmark circuit of paper §4.1, so the software version here
 * doubles as the golden model for the PRNG design generator.
 */

#ifndef PARENDI_UTIL_RNG_HH
#define PARENDI_UTIL_RNG_HH

#include <cstdint>

namespace parendi {

/** One step of Marsaglia's xorshift32 (3 XORs and 3 shifts). */
inline uint32_t
xorshift32(uint32_t x)
{
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    return x;
}

/** A small deterministic RNG (xorshift64*) for tests and partitioners. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    uint64_t
    next()
    {
        uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform in [0, bound). @p bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    uint64_t state;
};

} // namespace parendi

#endif // PARENDI_UTIL_RNG_HH
