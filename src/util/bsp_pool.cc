#include "util/bsp_pool.hh"

#include <algorithm>

namespace parendi::util {

namespace {

/** Spin iterations before falling back to a futex wait. Small on
 *  purpose: when workers outnumber cores the fast path never wins and
 *  the wait path must engage quickly. */
constexpr int kSpinIters = 256;

} // namespace

BspPool::BspPool(uint32_t threads)
    : nthreads_(std::max<uint32_t>(threads, 1))
{
    workers_.reserve(nthreads_ - 1);
    for (uint32_t w = 1; w < nthreads_; ++w)
        workers_.emplace_back([this, w]() { workerLoop(w); });
}

BspPool::~BspPool()
{
    if (workers_.empty())
        return;
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
BspPool::awaitEpoch(uint64_t seen, uint32_t worker)
{
    // The wait is bracketed by the observer hooks so barrier time is
    // attributable per worker instead of vanishing into the
    // spin-then-futex internals. Exactly one Begin/End pair fires per
    // epoch per worker, fast path included.
    BspWaitObserver *obs = observer_.load(std::memory_order_acquire);
    if (obs)
        obs->epochWaitBegin(worker);
    for (int i = 0; i < kSpinIters; ++i) {
        if (epoch_.load(std::memory_order_acquire) != seen) {
            if (obs)
                obs->epochWaitEnd(worker);
            return;
        }
    }
    while (epoch_.load(std::memory_order_acquire) == seen)
        epoch_.wait(seen, std::memory_order_acquire);
    if (obs)
        obs->epochWaitEnd(worker);
}

void
BspPool::setWaitObserver(BspWaitObserver *observer)
{
    observer_.store(observer, std::memory_order_release);
}

void
BspPool::workerLoop(uint32_t worker)
{
    uint64_t seen = 0;
    for (;;) {
        awaitEpoch(seen, worker);
        seen = epoch_.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_acquire))
            return;
        (*job_)(worker);
        arrived_.fetch_add(1, std::memory_order_release);
        arrived_.notify_one();
    }
}

void
BspPool::run(const std::function<void(uint32_t)> &job)
{
    if (workers_.empty()) {
        job(0);
        return;
    }
    job_ = &job;
    arrived_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    job(0);
    // The caller's barrier wait (worker 0): time spent here is the
    // stragglers' margin over the caller's own share of the work.
    BspWaitObserver *obs = observer_.load(std::memory_order_acquire);
    if (obs)
        obs->epochWaitBegin(0);
    const uint32_t target = nthreads_ - 1;
    for (int i = 0; i < kSpinIters; ++i) {
        if (arrived_.load(std::memory_order_acquire) == target) {
            if (obs)
                obs->epochWaitEnd(0);
            return;
        }
    }
    uint32_t got;
    while ((got = arrived_.load(std::memory_order_acquire)) != target)
        arrived_.wait(got, std::memory_order_acquire);
    if (obs)
        obs->epochWaitEnd(0);
}

void
BspPool::forEach(size_t n,
                 const std::function<void(size_t, size_t)> &body)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        body(0, n);
        return;
    }
    const size_t chunk = (n + nthreads_ - 1) / nthreads_;
    run([&](uint32_t w) {
        size_t begin = std::min(n, w * chunk);
        size_t end = std::min(n, begin + chunk);
        if (begin < end)
            body(begin, end);
    });
}

void
BspPool::forEach(size_t n,
                 const std::function<void(uint32_t, size_t, size_t)>
                     &body)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        body(0, 0, n);
        return;
    }
    const size_t chunk = (n + nthreads_ - 1) / nthreads_;
    run([&](uint32_t w) {
        size_t begin = std::min(n, w * chunk);
        size_t end = std::min(n, begin + chunk);
        if (begin < end)
            body(w, begin, end);
    });
}

} // namespace parendi::util
