#include "util/bsp_pool.hh"

#include <algorithm>

namespace parendi::util {

namespace {

/** Spin iterations before falling back to a futex wait. Small on
 *  purpose: when workers outnumber cores the fast path never wins and
 *  the wait path must engage quickly. */
constexpr int kSpinIters = 256;

} // namespace

// -- SpinBarrier ---------------------------------------------------------

namespace {

/// Adaptive spin-budget bounds: never below a cache-miss worth of
/// iterations, never above ~a futex round-trip worth of spinning.
constexpr uint32_t kMinSpin = 16;
constexpr uint32_t kMaxSpin = 4096;

/// Rough iterations-per-nanosecond for converting an observed wait
/// into a spin budget; precision is irrelevant, only the order of
/// magnitude matters (the budget is clamped anyway).
constexpr uint64_t kItersPerNs = 1;

} // namespace

SpinBarrier::SpinBarrier(uint32_t parties)
    : parties_(parties > 0 ? parties : 1), spinBudget_(kSpinIters)
{
}

void
SpinBarrier::arriveAndWait()
{
    const uint64_t g = gen_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        parties_) {
        // Last arriver: reset for the next generation, then release.
        // The release store of gen_ publishes every party's writes
        // (their fetch_add was acq_rel) to every waiter's acquire
        // load below.
        count_.store(0, std::memory_order_relaxed);
        // seq_cst pairs with the waiter's seq_cst sleepers_++ /
        // gen_ recheck: either the waiter's increment precedes this
        // load (we notify) or this store precedes its recheck (it
        // never sleeps) — no missed wakeup either way.
        gen_.store(g + 1, std::memory_order_seq_cst);
        if (sleepers_.load(std::memory_order_seq_cst) > 0)
            gen_.notify_all();
        return;
    }
    const uint32_t budget = spinBudget_.load(std::memory_order_relaxed);
    for (uint32_t i = 0; i < budget; ++i) {
        if (gen_.load(std::memory_order_acquire) != g) {
            // Satisfied comfortably inside the window: grow the
            // budget back toward the cap (cheap success signal).
            if (i < budget / 2 && budget < kMaxSpin)
                spinBudget_.store(budget + budget / 4 + 1,
                                  std::memory_order_relaxed);
            return;
        }
    }
    // Brief yield phase bridges "slightly over budget" before the
    // futex engages (a futex sleep+wake is ~microseconds).
    for (int i = 0; i < 4; ++i) {
        std::this_thread::yield();
        if (gen_.load(std::memory_order_acquire) != g)
            return;
    }
    // Futex path: once this engages, spinning was wasted — shrink the
    // budget so oversubscribed hosts stop burning their timeslice.
    spinBudget_.store(std::max(budget / 2, kMinSpin),
                      std::memory_order_relaxed);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    while (gen_.load(std::memory_order_seq_cst) == g)
        gen_.wait(g, std::memory_order_seq_cst);
    sleepers_.fetch_sub(1, std::memory_order_acq_rel);
}

void
SpinBarrier::observeWaitNs(uint64_t ns)
{
    // EMA (alpha = 1/8) over externally measured inter-arrival times;
    // re-seed the budget from it so workload phase changes retune the
    // barrier even when the internal signals are saturated.
    uint64_t ema = emaWaitNs_.load(std::memory_order_relaxed);
    ema = ema == 0 ? ns : ema - ema / 8 + ns / 8;
    emaWaitNs_.store(ema, std::memory_order_relaxed);
    uint64_t target = ema * kItersPerNs;
    uint32_t budget = static_cast<uint32_t>(
        std::min<uint64_t>(std::max<uint64_t>(target, kMinSpin),
                           kMaxSpin));
    spinBudget_.store(budget, std::memory_order_relaxed);
}

BspPool::BspPool(uint32_t threads)
    : nthreads_(std::max<uint32_t>(threads, 1))
{
    workers_.reserve(nthreads_ - 1);
    for (uint32_t w = 1; w < nthreads_; ++w)
        workers_.emplace_back([this, w]() { workerLoop(w); });
}

BspPool::~BspPool()
{
    if (workers_.empty())
        return;
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
BspPool::awaitEpoch(uint64_t seen, uint32_t worker)
{
    // The wait is bracketed by the observer hooks so barrier time is
    // attributable per worker instead of vanishing into the
    // spin-then-futex internals. Exactly one Begin/End pair fires per
    // epoch per worker, fast path included.
    BspWaitObserver *obs = observer_.load(std::memory_order_acquire);
    if (obs)
        obs->epochWaitBegin(worker);
    for (int i = 0; i < kSpinIters; ++i) {
        if (epoch_.load(std::memory_order_acquire) != seen) {
            if (obs)
                obs->epochWaitEnd(worker);
            return;
        }
    }
    while (epoch_.load(std::memory_order_acquire) == seen)
        epoch_.wait(seen, std::memory_order_acquire);
    if (obs)
        obs->epochWaitEnd(worker);
}

void
BspPool::setWaitObserver(BspWaitObserver *observer)
{
    observer_.store(observer, std::memory_order_release);
}

void
BspPool::workerLoop(uint32_t worker)
{
    uint64_t seen = 0;
    for (;;) {
        awaitEpoch(seen, worker);
        seen = epoch_.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_acquire))
            return;
        (*job_)(worker);
        arrived_.fetch_add(1, std::memory_order_release);
        arrived_.notify_one();
    }
}

void
BspPool::run(const std::function<void(uint32_t)> &job)
{
    if (workers_.empty()) {
        job(0);
        return;
    }
    job_ = &job;
    arrived_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    job(0);
    // The caller's barrier wait (worker 0): time spent here is the
    // stragglers' margin over the caller's own share of the work.
    BspWaitObserver *obs = observer_.load(std::memory_order_acquire);
    if (obs)
        obs->epochWaitBegin(0);
    const uint32_t target = nthreads_ - 1;
    for (int i = 0; i < kSpinIters; ++i) {
        if (arrived_.load(std::memory_order_acquire) == target) {
            if (obs)
                obs->epochWaitEnd(0);
            return;
        }
    }
    uint32_t got;
    while ((got = arrived_.load(std::memory_order_acquire)) != target)
        arrived_.wait(got, std::memory_order_acquire);
    if (obs)
        obs->epochWaitEnd(0);
}

void
BspPool::forEach(size_t n,
                 const std::function<void(size_t, size_t)> &body)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        body(0, n);
        return;
    }
    const size_t chunk = (n + nthreads_ - 1) / nthreads_;
    run([&](uint32_t w) {
        size_t begin = std::min(n, w * chunk);
        size_t end = std::min(n, begin + chunk);
        if (begin < end)
            body(begin, end);
    });
}

void
BspPool::forEach(size_t n,
                 const std::function<void(uint32_t, size_t, size_t)>
                     &body)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        body(0, 0, n);
        return;
    }
    const size_t chunk = (n + nthreads_ - 1) / nthreads_;
    run([&](uint32_t w) {
        size_t begin = std::min(n, w * chunk);
        size_t end = std::min(n, begin + chunk);
        if (begin < end)
            body(w, begin, end);
    });
}

} // namespace parendi::util
