#include "util/table.hh"

#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace parendi {

Table::Table(std::vector<std::string> hdr) : header(std::move(hdr)) {}

Table &
Table::row()
{
    rows.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &s)
{
    if (rows.empty())
        rows.emplace_back();
    rows.back().push_back(s);
    return *this;
}

Table &
Table::cell(const char *s)
{
    return cell(std::string(s));
}

Table &
Table::cell(double v, int precision)
{
    return cell(strprintf("%.*f", precision, v));
}

Table &
Table::cell(uint64_t v)
{
    return cell(strprintf("%llu", static_cast<unsigned long long>(v)));
}

Table &
Table::cell(int64_t v)
{
    return cell(strprintf("%lld", static_cast<long long>(v)));
}

Table &
Table::cell(int v)
{
    return cell(static_cast<int64_t>(v));
}

std::string
Table::str() const
{
    std::vector<size_t> width(header.size(), 0);
    for (size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &r : rows)
        for (size_t c = 0; c < r.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &r) {
        for (size_t c = 0; c < width.size(); ++c) {
            std::string cell = c < r.size() ? r[c] : "";
            out << cell << std::string(width[c] - cell.size() + 2, ' ');
        }
        out << '\n';
    };
    emit_row(header);
    size_t total = 0;
    for (size_t w : width)
        total += w + 2;
    out << std::string(total, '-') << '\n';
    for (const auto &r : rows)
        emit_row(r);
    return out.str();
}

void
Table::print(const std::string &title) const
{
    std::printf("\n== %s ==\n%s", title.c_str(), str().c_str());
    std::fflush(stdout);
}

} // namespace parendi
