/**
 * @file
 * A persistent BSP worker pool: N host workers (the calling thread is
 * worker 0) that execute one superstep at a time, separated by a
 * sense-reversing barrier. This is the host-side analogue of the IPU's
 * hardware barrier: the static shard/tile partition of a compiled BSP
 * simulation maps onto persistent workers with cheap barriers instead
 * of per-cycle thread spawns (which cost tens of microseconds each and
 * dominated the seed implementation's threaded step).
 *
 * The barrier is two-phase:
 *  - release: the caller publishes the job and advances the epoch
 *    counter (the generalized sense flag — workers wait for the epoch
 *    to differ from the one they last observed, so consecutive
 *    supersteps can never be confused);
 *  - arrival: each worker increments a completion counter; the caller
 *    waits until all have arrived.
 *
 * Waiters spin briefly, then fall back to C++20 atomic futex waits so
 * the pool behaves on oversubscribed hosts (e.g. 8 workers on 1 core)
 * instead of burning a timeslice per waiter per phase.
 */

#ifndef PARENDI_UTIL_BSP_POOL_HH
#define PARENDI_UTIL_BSP_POOL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace parendi::util {

/**
 * In-dispatch sense-reversing barrier for multi-cycle batch dispatch:
 * when a k-cycle batch runs inside a single BspPool::run, the workers
 * separate consecutive simulated cycles with this barrier instead of
 * returning to the pool's epoch machinery — no job republication, no
 * completion counter reset by the caller, and in the common case no
 * futex round-trip at all.
 *
 * The spin budget adapts on two signals:
 *  - internally: a waiter that had to sleep halves the budget (once
 *    the futex engages, inter-arrival is far beyond any useful spin —
 *    typically an oversubscribed host), while a wait satisfied early
 *    in the spin window nudges the budget back up;
 *  - externally: observeWaitNs() feeds measured inter-arrival times
 *    (the profiler's sampled barrier waits) into an EMA that re-seeds
 *    the budget, so a phase change in the workload retunes the
 *    barrier even when the internal signal is saturated.
 *
 * All parties must call arriveAndWait() the same number of times; the
 * last arrival of each generation releases the rest.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(uint32_t parties);

    SpinBarrier(const SpinBarrier &) = delete;
    SpinBarrier &operator=(const SpinBarrier &) = delete;

    /** Block until all parties have arrived at this generation. */
    void arriveAndWait();

    uint32_t parties() const { return parties_; }

    /** Completed generations (== inner barriers crossed). */
    uint64_t
    generations() const
    {
        return gen_.load(std::memory_order_relaxed);
    }

    /** Feed one measured barrier-wait duration (nanoseconds) into the
     *  adaptive spin budget. Thread-safe; call from any party. */
    void observeWaitNs(uint64_t ns);

    /** Current spin budget in iterations (tuning/test visibility). */
    uint32_t
    spinBudget() const
    {
        return spinBudget_.load(std::memory_order_relaxed);
    }

  private:
    const uint32_t parties_;
    std::atomic<uint32_t> count_{0};
    std::atomic<uint64_t> gen_{0};
    std::atomic<uint32_t> sleepers_{0};
    std::atomic<uint32_t> spinBudget_;
    std::atomic<uint64_t> emaWaitNs_{0};
};

/**
 * Observer of the pool's barrier waits, so wait time is attributable
 * per worker instead of being buried inside the spin-then-futex path.
 * For every epoch, every worker produces exactly one Begin/End pair:
 *
 *  - workers 1..N-1 around the wait for the next epoch release (the
 *    time between finishing their superstep and the caller publishing
 *    the next one);
 *  - worker 0 (the caller) around the arrival wait in run() (the time
 *    it spends waiting for stragglers after finishing its own share).
 *
 * The pair fires even when the wait is satisfied immediately (a
 * zero-duration interval), so observers can count epochs. Callbacks
 * run on the waiting worker's thread and must not block.
 */
class BspWaitObserver
{
  public:
    virtual ~BspWaitObserver() = default;
    virtual void epochWaitBegin(uint32_t worker) = 0;
    virtual void epochWaitEnd(uint32_t worker) = 0;
};

class BspPool
{
  public:
    /** A pool of @p threads workers total; @p threads - 1 host threads
     *  are spawned (the caller participates as worker 0). A count of
     *  0 or 1 spawns nothing and run() degenerates to a plain call. */
    explicit BspPool(uint32_t threads);
    ~BspPool();

    BspPool(const BspPool &) = delete;
    BspPool &operator=(const BspPool &) = delete;

    uint32_t threads() const { return nthreads_; }

    /** One superstep: run job(worker) on every worker concurrently and
     *  return once all are done (the barrier). The job must only write
     *  state private to its worker index — that is the BSP contract. */
    void run(const std::function<void(uint32_t worker)> &job);

    /**
     * Static parallel-for: split [0, n) into one contiguous range per
     * worker and run body(begin, end) on each. The static split keeps
     * the work assignment (and therefore any write interleaving within
     * a range) deterministic across runs and thread counts.
     */
    void forEach(size_t n,
                 const std::function<void(size_t begin, size_t end)> &body);

    /** forEach variant that also passes the executing worker's index
     *  (the instrumentation hook point: profilers attribute each range
     *  to the worker that ran it). */
    void forEach(size_t n,
                 const std::function<void(uint32_t worker, size_t begin,
                                          size_t end)> &body);

    /**
     * Install (or clear, with nullptr) the barrier-wait observer. Must
     * be called while the pool is idle (no run() in flight); the
     * observer must outlive the pool or be cleared before destruction.
     */
    void setWaitObserver(BspWaitObserver *observer);

  private:
    void workerLoop(uint32_t worker);
    void awaitEpoch(uint64_t seen, uint32_t worker);

    uint32_t nthreads_;
    std::vector<std::thread> workers_;

    std::atomic<uint64_t> epoch_{0};        ///< release barrier (sense)
    std::atomic<uint32_t> arrived_{0};      ///< arrival barrier
    std::atomic<bool> stop_{false};
    const std::function<void(uint32_t)> *job_ = nullptr;
    std::atomic<BspWaitObserver *> observer_{nullptr};
};

} // namespace parendi::util

#endif // PARENDI_UTIL_BSP_POOL_HH
