/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit the
 * rows/series of each paper table and figure.
 */

#ifndef PARENDI_UTIL_TABLE_HH
#define PARENDI_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace parendi {

/**
 * Accumulates rows of string cells and prints them with aligned columns.
 * Numeric helpers format with a fixed precision so bench output is
 * stable across runs.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Start a new row. Subsequent cell() calls append to it. */
    Table &row();

    Table &cell(const std::string &s);
    Table &cell(const char *s);
    Table &cell(double v, int precision = 2);
    Table &cell(uint64_t v);
    Table &cell(int64_t v);
    Table &cell(int v);

    /** Render to stdout with a title line. */
    void print(const std::string &title) const;

    /** Render to a string (used in tests). */
    std::string str() const;

    size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace parendi

#endif // PARENDI_UTIL_TABLE_HH
