/**
 * @file
 * Dense bitset used to represent node sharing between fibers and to
 * evaluate the submodular process cost (paper §5.1: "We use a dense
 * bitset data structure to represent duplication across fibers and
 * efficiently compute intersection and union in the submodular cost
 * function").
 */

#ifndef PARENDI_UTIL_BITSET_HH
#define PARENDI_UTIL_BITSET_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace parendi {

/**
 * A fixed-universe dense bitset with the set algebra needed by the
 * partitioner: union, intersection size, and weighted population count.
 */
class DenseBitset
{
  public:
    DenseBitset() = default;

    /** Create an empty set over a universe of @p universe elements. */
    explicit DenseBitset(size_t universe)
        : nbits(universe), words((universe + 63) / 64, 0)
    {}

    size_t universeSize() const { return nbits; }

    void
    set(size_t i)
    {
        words[i >> 6] |= (uint64_t{1} << (i & 63));
    }

    void
    reset(size_t i)
    {
        words[i >> 6] &= ~(uint64_t{1} << (i & 63));
    }

    bool
    test(size_t i) const
    {
        return (words[i >> 6] >> (i & 63)) & 1;
    }

    /** Number of set bits. */
    size_t
    count() const
    {
        size_t n = 0;
        for (uint64_t w : words)
            n += static_cast<size_t>(std::popcount(w));
        return n;
    }

    bool
    empty() const
    {
        for (uint64_t w : words)
            if (w)
                return false;
        return true;
    }

    /** In-place union. Both sets must share a universe. */
    DenseBitset &
    operator|=(const DenseBitset &o)
    {
        for (size_t i = 0; i < words.size(); ++i)
            words[i] |= o.words[i];
        return *this;
    }

    /** In-place intersection. */
    DenseBitset &
    operator&=(const DenseBitset &o)
    {
        for (size_t i = 0; i < words.size(); ++i)
            words[i] &= o.words[i];
        return *this;
    }

    /** |this ∩ o| without materializing the intersection. */
    size_t
    intersectCount(const DenseBitset &o) const
    {
        size_t n = 0;
        for (size_t i = 0; i < words.size(); ++i)
            n += static_cast<size_t>(std::popcount(words[i] & o.words[i]));
        return n;
    }

    /** |this ∪ o| without materializing the union. */
    size_t
    unionCount(const DenseBitset &o) const
    {
        size_t n = 0;
        for (size_t i = 0; i < words.size(); ++i)
            n += static_cast<size_t>(std::popcount(words[i] | o.words[i]));
        return n;
    }

    /**
     * Sum of @p weight[i] over elements i in this ∩ o. This is the
     * τ(f_i ∩ f_j) term of the submodular cost function.
     */
    template <typename W>
    W
    intersectWeight(const DenseBitset &o, const std::vector<W> &weight) const
    {
        W total{};
        for (size_t wi = 0; wi < words.size(); ++wi) {
            uint64_t bits = words[wi] & o.words[wi];
            while (bits) {
                unsigned b = static_cast<unsigned>(std::countr_zero(bits));
                total += weight[(wi << 6) + b];
                bits &= bits - 1;
            }
        }
        return total;
    }

    /** Sum of @p weight[i] over all elements in the set. */
    template <typename W>
    W
    totalWeight(const std::vector<W> &weight) const
    {
        W total{};
        for (size_t wi = 0; wi < words.size(); ++wi) {
            uint64_t bits = words[wi];
            while (bits) {
                unsigned b = static_cast<unsigned>(std::countr_zero(bits));
                total += weight[(wi << 6) + b];
                bits &= bits - 1;
            }
        }
        return total;
    }

    /** Call @p fn(index) for every set bit, in increasing order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t wi = 0; wi < words.size(); ++wi) {
            uint64_t bits = words[wi];
            while (bits) {
                unsigned b = static_cast<unsigned>(std::countr_zero(bits));
                fn((wi << 6) + b);
                bits &= bits - 1;
            }
        }
    }

    bool
    operator==(const DenseBitset &o) const
    {
        return nbits == o.nbits && words == o.words;
    }

  private:
    size_t nbits = 0;
    std::vector<uint64_t> words;
};

} // namespace parendi

#endif // PARENDI_UTIL_BITSET_HH
