#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace parendi {

namespace {

bool quietFlag = false;

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    return msg;
}

} // namespace parendi
