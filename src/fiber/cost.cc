#include "fiber/cost.hh"

namespace parendi::fiber {

using namespace rtl;

NodeCost
CostModel::nodeCost(const Netlist &nl, NodeId id) const
{
    const Node &n = nl.node(id);
    uint32_t words = wordsFor(n.width);
    NodeCost c;
    switch (n.op) {
      case Op::Const:
      case Op::Input:
      case Op::RegRead:
        // Pure slots: no evaluation cost.
        return c;
      case Op::RegNext:
      case Op::Output:
        // A register/output commit: one store per word.
        c.ipuCycles = 2 * words;
        c.x86Instrs = words;
        c.codeBytes = words * bytesPerInstr;
        return c;
      case Op::MemRead:
      case Op::MemWrite:
        c.ipuCycles = ipuNodeOverhead + ipuMemAccess + ipuPerWord * words;
        c.x86Instrs = x86NodeBase + 2 + x86PerWord * (words - 1);
        break;
      case Op::Mul:
        c.ipuCycles = ipuNodeOverhead +
            (ipuPerWord + ipuMulPerWord) * words;
        c.x86Instrs = x86NodeBase + 1 + (x86PerWord + 2) * (words - 1);
        break;
      case Op::Mux:
      case Op::Concat:
        c.ipuCycles = ipuNodeOverhead + ipuPerWord * words + 2;
        c.x86Instrs = x86NodeBase + x86PerWord * (words - 1) + 1;
        break;
      default:
        c.ipuCycles = ipuNodeOverhead + ipuPerWord * words;
        c.x86Instrs = x86NodeBase + x86PerWord * (words - 1);
        break;
    }
    c.codeBytes = (c.ipuCycles / 2) * bytesPerInstr;
    return c;
}

} // namespace parendi::fiber
