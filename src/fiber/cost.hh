/**
 * @file
 * Per-node execution cost model. Every data-dependence-graph node is
 * assigned a cost in IPU tile cycles and in x86 instructions; fibers and
 * processes aggregate these (paper §4.3: t_i per fiber, submodular τ for
 * processes).
 *
 * Calibration: an IPU tile is a simple single-issue core whose workers
 * time-share the pipeline, while a modern x86 core is wide and
 * superscalar. The constants below are chosen so the modeled
 * single-core performance gap between one IPU tile and one x86 thread
 * is in the ~40-90x range the paper measures in §4.3 (84x for pico,
 * 37x for bitcoin), with the exact value depending on the op mix.
 */

#ifndef PARENDI_FIBER_COST_HH
#define PARENDI_FIBER_COST_HH

#include <cstdint>

#include "rtl/netlist.hh"

namespace parendi::fiber {

/** Cost of evaluating one node once. */
struct NodeCost
{
    uint32_t ipuCycles = 0;   ///< IPU tile clock cycles (incl. load/store)
    uint32_t x86Instrs = 0;   ///< x86 instruction count
    uint32_t codeBytes = 0;   ///< generated code bytes on a tile
};

/** Tunable cost-model parameters. Defaults are the calibrated values. */
struct CostModel
{
    /// Fixed per-node overhead on a tile: operand loads + result store
    /// on a load/store-architecture, single-issue core.
    uint32_t ipuNodeOverhead = 10;
    /// Additional tile cycles per 64-bit word of the result.
    uint32_t ipuPerWord = 4;
    /// Extra tile cycles per word for multiplies.
    uint32_t ipuMulPerWord = 12;
    /// Extra tile cycles for an in-tile array access (address compute).
    uint32_t ipuMemAccess = 8;

    /// x86 instructions per node (fused compare/branch-free codegen).
    uint32_t x86NodeBase = 2;
    /// Additional x86 instructions per extra word.
    uint32_t x86PerWord = 2;

    /// Code bytes per generated instruction (x86/IPU averaged).
    uint32_t bytesPerInstr = 8;

    /** Cost of node @p id in netlist @p nl. Sources are free (they are
     *  slots, not code); sinks cost a store. */
    NodeCost nodeCost(const rtl::Netlist &nl, rtl::NodeId id) const;
};

} // namespace parendi::fiber

#endif // PARENDI_FIBER_COST_HH
