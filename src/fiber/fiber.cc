#include "fiber/fiber.hh"

#include <algorithm>
#include <unordered_map>

#include "rtl/analysis.hh"
#include "util/logging.hh"

namespace parendi::fiber {

using namespace rtl;

FiberSet::FiberSet(const Netlist &nl, const CostModel &cm)
    : nl_(&nl), cm_(cm)
{
    // One fiber per sink, in sink creation order.
    const std::vector<NodeId> &sinks = nl.sinks();
    fibers_.reserve(sinks.size());
    std::vector<uint32_t> uses(nl.numNodes(), 0);
    for (NodeId sink : sinks) {
        Fiber f;
        f.sink = sink;
        const Node &n = nl.node(sink);
        switch (n.op) {
          case Op::RegNext:
            f.kind = SinkKind::Register;
            break;
          case Op::MemWrite:
            f.kind = SinkKind::MemoryWrite;
            break;
          case Op::Output:
            f.kind = SinkKind::PortOutput;
            break;
          default:
            panic("sink node %u has non-sink op", sink);
        }
        f.target = n.aux;
        f.cone = backwardCone(nl, sink);
        for (NodeId id : f.cone)
            ++uses[id];
        fibers_.push_back(std::move(f));
    }

    // Shared universe: nodes with evaluation cost used by >= 2 fibers.
    std::vector<uint32_t> sharedIndex(nl.numNodes(), UINT32_MAX);
    for (NodeId id = 0; id < nl.numNodes(); ++id) {
        if (uses[id] < 2)
            continue;
        NodeCost c = cm.nodeCost(nl, id);
        uint64_t data = uint64_t{wordsFor(nl.widthOf(id))} * 8;
        if (c.ipuCycles == 0 && data == 0)
            continue;
        sharedIndex[id] = static_cast<uint32_t>(sharedNodes_.size());
        sharedNodes_.push_back(id);
        sharedIpu_.push_back(c.ipuCycles);
        sharedX86_.push_back(c.x86Instrs);
        sharedCode_.push_back(c.codeBytes);
        sharedData_.push_back(data);
    }

    // Fill per-fiber summaries.
    for (Fiber &f : fibers_) {
        f.shared = DenseBitset(sharedNodes_.size());
        for (NodeId id : f.cone) {
            const Node &n = nl.node(id);
            NodeCost c = cm.nodeCost(nl, id);
            uint64_t data = uint64_t{wordsFor(n.width)} * 8;
            f.totalIpu += c.ipuCycles;
            f.totalX86 += c.x86Instrs;
            if (sharedIndex[id] != UINT32_MAX) {
                f.shared.set(sharedIndex[id]);
            } else {
                f.exclIpu += c.ipuCycles;
                f.exclX86 += c.x86Instrs;
                f.exclCode += c.codeBytes;
                f.exclData += data;
            }
            switch (n.op) {
              case Op::RegRead:
                f.regsRead.push_back(n.aux);
                break;
              case Op::MemRead:
              case Op::MemWrite:
                f.memsUsed.push_back(n.aux);
                break;
              default:
                break;
            }
        }
        std::sort(f.regsRead.begin(), f.regsRead.end());
        f.regsRead.erase(
            std::unique(f.regsRead.begin(), f.regsRead.end()),
            f.regsRead.end());
        std::sort(f.memsUsed.begin(), f.memsUsed.end());
        f.memsUsed.erase(
            std::unique(f.memsUsed.begin(), f.memsUsed.end()),
            f.memsUsed.end());
    }

    // Register writer map.
    regWriter_.assign(nl.numRegisters(), UINT32_MAX);
    for (uint32_t i = 0; i < fibers_.size(); ++i)
        if (fibers_[i].kind == SinkKind::Register)
            regWriter_[fibers_[i].target] = i;
}

uint32_t
FiberSet::regBytes(RegId r) const
{
    uint32_t width = nl_->reg(r).width;
    return ((width + 31) / 32) * 4;
}

uint64_t
FiberSet::sumTotalIpu() const
{
    uint64_t total = 0;
    for (const Fiber &f : fibers_)
        total += f.totalIpu;
    return total;
}

uint64_t
FiberSet::maxFiberIpu() const
{
    uint64_t best = 0;
    for (const Fiber &f : fibers_)
        best = std::max(best, f.totalIpu);
    return best;
}

} // namespace parendi::fiber
