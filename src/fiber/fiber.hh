/**
 * @file
 * Fiber extraction. A fiber is "the smallest BSP process that uniquely
 * computes the new value of a single register" (paper §3.1): the sink
 * node plus its backward cone of combinational logic. Fibers may overlap
 * (nodes feeding several sinks); the overlap is represented with a dense
 * bitset over the universe of *shared* nodes so the submodular process
 * cost τ(f_i ∪ f_j) = t_i + t_j − τ(f_i ∩ f_j) is cheap to evaluate
 * during partitioning (paper §5.1).
 */

#ifndef PARENDI_FIBER_FIBER_HH
#define PARENDI_FIBER_FIBER_HH

#include <cstdint>
#include <vector>

#include "fiber/cost.hh"
#include "rtl/netlist.hh"
#include "util/bitset.hh"

namespace parendi::fiber {

/** What kind of sink a fiber computes. */
enum class SinkKind : uint8_t { Register, MemoryWrite, PortOutput };

/** One fiber: a sink and its cone, with cost/overlap summaries. */
struct Fiber
{
    rtl::NodeId sink;
    SinkKind kind;
    uint32_t target;            ///< RegId / MemId / PortId of the sink

    std::vector<rtl::NodeId> cone;  ///< all cone nodes, ascending

    uint64_t totalIpu = 0;      ///< IPU cycles to execute the whole cone
    uint64_t totalX86 = 0;      ///< x86 instructions for the whole cone

    uint64_t exclIpu = 0;       ///< cost over nodes used by only this fiber
    uint64_t exclX86 = 0;
    uint64_t exclCode = 0;      ///< code bytes of exclusive nodes
    uint64_t exclData = 0;      ///< slot bytes of exclusive nodes

    DenseBitset shared;         ///< membership in the shared-node universe

    std::vector<rtl::RegId> regsRead;   ///< registers the cone reads
    std::vector<rtl::MemId> memsUsed;   ///< arrays referenced (read/write)
};

/**
 * All fibers of a netlist plus the shared-node universe and its weight
 * vectors. Weight lookups are by shared-universe index.
 */
class FiberSet
{
  public:
    FiberSet(const rtl::Netlist &nl, const CostModel &cm = CostModel{});

    const rtl::Netlist &netlist() const { return *nl_; }
    const CostModel &costModel() const { return cm_; }

    size_t size() const { return fibers_.size(); }
    const Fiber &operator[](size_t i) const { return fibers_[i]; }
    const std::vector<Fiber> &fibers() const { return fibers_; }

    /** Number of nodes appearing in two or more fibers. */
    size_t numShared() const { return sharedNodes_.size(); }
    rtl::NodeId sharedNode(size_t i) const { return sharedNodes_[i]; }

    const std::vector<uint64_t> &sharedIpu() const { return sharedIpu_; }
    const std::vector<uint64_t> &sharedX86() const { return sharedX86_; }
    const std::vector<uint64_t> &sharedCode() const { return sharedCode_; }
    const std::vector<uint64_t> &sharedData() const { return sharedData_; }

    /** Fiber index computing register @p r (its RegNext fiber). */
    uint32_t writerOfReg(rtl::RegId r) const { return regWriter_[r]; }

    /** Exchange payload bytes of one register value (4-byte granules,
     *  matching the IPU exchange word size). */
    uint32_t regBytes(rtl::RegId r) const;

    /** Total IPU cycles if every fiber ran once with no dedup. */
    uint64_t sumTotalIpu() const;
    /** The straggler bound max_i t_i (paper Fig. 6a). */
    uint64_t maxFiberIpu() const;

  private:
    const rtl::Netlist *nl_;
    CostModel cm_;
    std::vector<Fiber> fibers_;
    std::vector<rtl::NodeId> sharedNodes_;
    std::vector<uint64_t> sharedIpu_;
    std::vector<uint64_t> sharedX86_;
    std::vector<uint64_t> sharedCode_;
    std::vector<uint64_t> sharedData_;
    std::vector<uint32_t> regWriter_;
};

} // namespace parendi::fiber

#endif // PARENDI_FIBER_FIBER_HH
