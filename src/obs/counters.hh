/**
 * @file
 * Named monotonic counters for the runtime telemetry layer: how much
 * work the engines actually did (cycles simulated, instructions
 * retired, exchange words moved, native-kernel invocations), as
 * opposed to how long it took (obs::SuperstepProfiler).
 *
 * Increments are lock-free (one relaxed fetch_add on a cache-line-
 * aligned atomic); only registration — a cold path, done once per
 * counter when an engine wires itself up — takes the registry mutex.
 * Counter addresses are stable for the registry's lifetime (the slots
 * live in a deque), so hot paths cache a `Counter &` and never touch
 * the registry again.
 */

#ifndef PARENDI_OBS_COUNTERS_HH
#define PARENDI_OBS_COUNTERS_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace parendi::obs {

/** One monotonic counter. Aligned to its own cache line so unrelated
 *  counters bumped from different workers don't false-share. */
class alignas(64) Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        value_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

// Counter names the engines agree on (see DESIGN.md "Observability").
inline constexpr const char *kCyclesSimulated = "cycles_simulated";
inline constexpr const char *kCyclesSampled = "cycles_sampled";
inline constexpr const char *kInstrsRetired = "instrs_retired";
inline constexpr const char *kExchangeWordsMoved = "exchange_words_moved";
inline constexpr const char *kNativeKernelInvocations =
    "native_kernel_invocations";
inline constexpr const char *kEvalGroupsSkipped = "eval_groups_skipped";
inline constexpr const char *kEvalGroupsTotal = "eval_groups_total";

/**
 * A registry of named counters. get() is get-or-create and returns a
 * reference that stays valid for the registry's lifetime; concurrent
 * get() calls for the same name return the same counter.
 */
class Counters
{
  public:
    Counters() = default;
    Counters(const Counters &) = delete;
    Counters &operator=(const Counters &) = delete;

    /** Find or create the counter named @p name. Thread-safe. */
    Counter &get(const std::string &name);

    /** (name, value) pairs in registration order. Thread-safe; values
     *  are each read atomically (the set is not a consistent cut). */
    std::vector<std::pair<std::string, uint64_t>> snapshot() const;

    size_t size() const;

  private:
    struct Entry
    {
        std::string name;
        Counter counter;
    };

    mutable std::mutex mutex_;
    std::deque<Entry> entries_;     ///< deque: stable element addresses
};

} // namespace parendi::obs

#endif // PARENDI_OBS_COUNTERS_HH
