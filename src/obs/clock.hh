/**
 * @file
 * The profiling clock: a raw, monotonic, per-call-cheap timestamp
 * counter (TSC on x86, the generic counter-timer on aarch64, a
 * steady_clock fallback elsewhere) plus a one-time calibration against
 * steady_clock so tick deltas can be reported in seconds.
 *
 * The instrumentation hot path (rtl::ShardSet supersteps, the BSP
 * pool's barrier waits) records raw ticks only — roughly the cost of
 * one `rdtsc` — and all unit conversion happens at report time.
 */

#ifndef PARENDI_OBS_CLOCK_HH
#define PARENDI_OBS_CLOCK_HH

#include <chrono>
#include <cstdint>

namespace parendi::obs {

/** Raw timestamp, monotonic per thread (and across threads on any
 *  host with synchronized TSCs — every machine we target). */
inline uint64_t
tick()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
    uint64_t v;
    asm volatile("mrs %0, cntvct_el0" : "=r"(v));
    return v;
#else
    return static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/** Calibrated tick rate (ticks per second). The first call spins for
 *  a couple of milliseconds against steady_clock; later calls return
 *  the cached value. */
double ticksPerSecond();

/** Convert a tick delta to seconds. */
inline double
ticksToSeconds(uint64_t ticks)
{
    return static_cast<double>(ticks) / ticksPerSecond();
}

/** Convert a tick delta to microseconds (Chrome trace units). */
inline double
ticksToMicros(uint64_t ticks)
{
    return static_cast<double>(ticks) * 1e6 / ticksPerSecond();
}

} // namespace parendi::obs

#endif // PARENDI_OBS_CLOCK_HH
