#include "obs/clock.hh"

namespace parendi::obs {

double
ticksPerSecond()
{
    static const double tps = [] {
        using clock = std::chrono::steady_clock;
        const auto span = std::chrono::milliseconds(2);
        auto c0 = clock::now();
        uint64_t t0 = tick();
        while (clock::now() - c0 < span) {
            // spin: sleeping would let the governor drop the clock and
            // skew the calibration on laptops/CI runners
        }
        uint64_t t1 = tick();
        double secs =
            std::chrono::duration<double>(clock::now() - c0).count();
        double rate = static_cast<double>(t1 - t0) / secs;
        return rate > 0 ? rate : 1e9;
    }();
    return tps;
}

} // namespace parendi::obs
