/**
 * @file
 * Aggregation of SuperstepProfiler samples into the measured
 * counterpart of the paper's r_cycle decomposition:
 *
 *  - a per-cycle t_comp / t_comm / t_sync split (seconds, over the
 *    sampled cycles) where each phase's wall contribution is the
 *    straggler worker's interval (max over workers) and t_sync is the
 *    residual of the cycle span — so the three terms sum to measured
 *    wall time by construction;
 *  - per-worker work vs barrier-wait totals;
 *  - a per-shard eval-time distribution (the measured straggler
 *    histogram, runtime analog of paper Fig. 6a/14);
 *  - the monotonic counters.
 *
 * formatReport() renders the same sections core::describeSimulation()
 * prints for the *modeled* machine; formatModeledVsMeasured() puts the
 * two decompositions side by side (each in its own units — IPU cycles
 * or modeled ns vs measured ns — compared by share of the cycle).
 */

#ifndef PARENDI_OBS_REPORT_HH
#define PARENDI_OBS_REPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/profiler.hh"

namespace parendi::obs {

struct ProfileReport
{
    uint64_t cyclesTotal = 0;
    uint64_t cyclesSampled = 0;     ///< cycles aggregated below
    uint32_t workers = 0;
    size_t shards = 0;

    /** Sum of sampled cycle spans, seconds. */
    double sampledWallSec = 0;

    /** Straggler (max-over-workers) wall per superstep, summed over
     *  sampled cycles. publishSec is the fused path's post-eval
     *  copy-out (zero on the phased path). */
    double commitSec = 0;
    double latchSec = 0;
    double exchangeSec = 0;
    double evalSec = 0;
    double publishSec = 0;

    /**
     * The r_cycle mapping: comp = eval + latch, comm = commit +
     * exchange + publish, sync = cycle-span residual (clamped at 0).
     * The residual is only *synchronization* when there is more than
     * one worker; with a single worker there is no barrier, so the
     * residual — profiler sampling overhead and step-loop time
     * between phase records — is attributed to overheadSec instead
     * of masquerading as t_sync. The four terms
     * tComp + tComm + tSync + overhead sum to sampledWallSec by
     * construction.
     */
    double tCompSec = 0;
    double tCommSec = 0;
    double tSyncSec = 0;
    double overheadSec = 0;

    /** Per-worker totals over sampled cycles, seconds. */
    std::vector<double> workerWorkSec;
    std::vector<double> workerBarrierSec;

    /** Per-shard mean eval nanoseconds per sampled cycle. */
    std::vector<double> shardEvalNs;

    std::vector<std::pair<std::string, uint64_t>> counters;

    /** Mean measured ns per sampled cycle (0 if nothing sampled). */
    double
    nsPerCycle() const
    {
        return cyclesSampled
            ? sampledWallSec * 1e9 / static_cast<double>(cyclesSampled)
            : 0;
    }

    /** Measured simulation rate over the sampled cycles, kHz. */
    double
    rateKHz() const
    {
        return sampledWallSec > 0
            ? static_cast<double>(cyclesSampled) / sampledWallSec / 1e3
            : 0;
    }
};

/** Aggregate a quiesced profiler's rings into a report. */
ProfileReport buildReport(const SuperstepProfiler &prof);

/** Render the measured decomposition, per-worker table, straggler
 *  histogram, and counters as plain text. */
std::string formatReport(const ProfileReport &rep);

/** One side of the modeled-vs-measured comparison: a modeled
 *  t_comp/t_comm/t_sync split in whatever unit the model uses. */
struct ModeledSplit
{
    std::string source;     ///< e.g. "ipu model" or "x86 model"
    std::string unit;       ///< e.g. "IPU cyc" or "ns"
    double comp = 0;
    double comm = 0;
    double sync = 0;
    double rateKHz = 0;

    double total() const { return comp + comm + sync; }
};

/** Side-by-side modeled vs measured table (shares of the cycle, plus
 *  each side's absolute numbers in its own units). */
std::string formatModeledVsMeasured(const ModeledSplit &modeled,
                                    const ProfileReport &measured);

} // namespace parendi::obs

#endif // PARENDI_OBS_REPORT_HH
