#include "obs/trace.hh"

#include <algorithm>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace parendi::obs {

namespace {

struct Event
{
    std::string name;
    char ph;            ///< 'B' or 'E'
    uint32_t tid;
    uint64_t ts;        ///< raw ticks
    uint64_t cycle;
    bool hasArgs;
};

void
writeEvent(std::ostream &out, const Event &e, uint64_t base,
           bool &first)
{
    if (!first)
        out << ",\n";
    first = false;
    out << strprintf("    {\"name\": \"%s\", \"ph\": \"%c\", "
                     "\"pid\": 0, \"tid\": %u, \"ts\": %.3f",
                     e.name.c_str(), e.ph, e.tid,
                     ticksToMicros(e.ts - base));
    if (e.hasArgs)
        out << strprintf(", \"args\": {\"cycle\": %llu}",
                         static_cast<unsigned long long>(e.cycle));
    out << "}";
}

void
pushPair(std::vector<Event> &events, const std::string &name,
         uint32_t tid, const Sample &s)
{
    events.push_back({name, 'B', tid, s.t0, s.cycle, true});
    events.push_back({name, 'E', tid, s.t1, s.cycle, false});
}

} // namespace

void
writeChromeTrace(const SuperstepProfiler &prof, std::ostream &out)
{
    // Per-tid event lists, each already in chronological order (rings
    // are chronological and worker-0 samples nest inside their cycle
    // spans by construction).
    std::vector<std::vector<Event>> perTid(prof.workers());

    // Worker 0: merge phase samples into the enclosing cycle spans.
    {
        const SampleRing &cycles = prof.cycleRing();
        const SampleRing &ring = prof.ring(0);
        size_t si = 0;
        auto flushBefore = [&](uint64_t limit) {
            // Emit samples that precede the next span (their own span
            // fell off the ring) standalone.
            while (si < ring.size() && ring.at(si).t0 < limit) {
                pushPair(perTid[0], phaseName(ring.at(si).phase), 0,
                         ring.at(si));
                ++si;
            }
        };
        for (size_t ci = 0; ci < cycles.size(); ++ci) {
            const Sample &c = cycles.at(ci);
            flushBefore(c.t0);
            perTid[0].push_back({"cycle", 'B', 0, c.t0, c.cycle, true});
            while (si < ring.size() && ring.at(si).t0 >= c.t0 &&
                   ring.at(si).t1 <= c.t1) {
                pushPair(perTid[0], phaseName(ring.at(si).phase), 0,
                         ring.at(si));
                ++si;
            }
            perTid[0].push_back({"cycle", 'E', 0, c.t1, c.cycle,
                                 false});
        }
        flushBefore(std::numeric_limits<uint64_t>::max());
    }

    for (uint32_t w = 1; w < prof.workers(); ++w) {
        const SampleRing &ring = prof.ring(w);
        for (size_t i = 0; i < ring.size(); ++i)
            pushPair(perTid[w], phaseName(ring.at(i).phase), w,
                     ring.at(i));
    }

    uint64_t base = std::numeric_limits<uint64_t>::max();
    for (const auto &events : perTid)
        if (!events.empty())
            base = std::min(base, events.front().ts);
    if (base == std::numeric_limits<uint64_t>::max())
        base = 0;

    out << "{\n\"traceEvents\": [\n";
    bool first = true;
    // Thread-name metadata so timelines are labeled.
    for (uint32_t w = 0; w < prof.workers(); ++w) {
        if (!first)
            out << ",\n";
        first = false;
        out << strprintf("    {\"name\": \"thread_name\", \"ph\": "
                         "\"M\", \"pid\": 0, \"tid\": %u, \"args\": "
                         "{\"name\": \"%s\"}}",
                         w,
                         w == 0 ? "bsp worker 0 (caller)"
                                : strprintf("bsp worker %u", w)
                                      .c_str());
    }
    for (const auto &events : perTid)
        for (const Event &e : events)
            writeEvent(out, e, base, first);

    // Run counters (instrs_retired, eval_groups_skipped/total, ...)
    // as Chrome counter tracks: one final cumulative value each, at
    // the end of the sampled window.
    uint64_t endTs = base;
    for (const auto &events : perTid)
        if (!events.empty())
            endTs = std::max(endTs, events.back().ts);
    for (const auto &[name, value] : prof.counters().snapshot()) {
        if (!first)
            out << ",\n";
        first = false;
        out << strprintf("    {\"name\": \"%s\", \"ph\": \"C\", "
                         "\"pid\": 0, \"ts\": %.3f, \"args\": "
                         "{\"value\": %llu}}",
                         name.c_str(), ticksToMicros(endTs - base),
                         static_cast<unsigned long long>(value));
    }
    out << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
}

} // namespace parendi::obs
