#include "obs/profiler.hh"

namespace parendi::obs {

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Commit:
        return "commit";
      case Phase::Latch:
        return "latch";
      case Phase::Exchange:
        return "exchange";
      case Phase::Eval:
        return "eval";
      case Phase::Publish:
        return "publish";
      case Phase::BarrierWait:
        return "barrier-wait";
      case Phase::NumPhases:
        break;
    }
    return "?";
}

SuperstepProfiler::SuperstepProfiler(uint32_t workers, size_t shards,
                                     const ProfileOptions &opt)
    : opt_(opt),
      cycles_(counters_.get(kCyclesSimulated)),
      sampled_(counters_.get(kCyclesSampled)),
      cycleRing_(opt.ringCapacity),
      waitBegin_(workers > 0 ? workers : 1),
      barrierWait_(workers > 0 ? workers : 1),
      waitEnds_(workers > 0 ? workers : 1)
{
    uint32_t w = workers > 0 ? workers : 1;
    rings_.reserve(w);
    for (uint32_t i = 0; i < w; ++i)
        rings_.emplace_back(opt.ringCapacity);
    shardEval_.assign(shards, ShardEvalStat{});
    // Force clock calibration now, outside any measured interval.
    (void)ticksPerSecond();
}

void
SuperstepProfiler::epochWaitBegin(uint32_t worker)
{
    if (worker >= waitBegin_.size())
        return;
    waitBegin_[worker].begin = tick();
}

void
SuperstepProfiler::epochWaitEnd(uint32_t worker)
{
    if (worker >= waitBegin_.size())
        return;
    waitEnds_[worker].fetch_add(1, std::memory_order_relaxed);
    if (!measuring_.load(std::memory_order_acquire))
        return;
    uint64_t t1 = tick();
    uint64_t t0 = waitBegin_[worker].begin;
    // A worker's wait can span the start of the measured window (it
    // began waiting while the previous, unsampled cycle was still
    // wrapping up); clip so only in-window wait is attributed.
    uint64_t start = windowStart_.load(std::memory_order_relaxed);
    if (t0 < start)
        t0 = start;
    if (t1 <= t0)
        return;
    barrierWait_[worker].fetch_add(t1 - t0,
                                   std::memory_order_relaxed);
    Sample s;
    s.t0 = t0;
    s.t1 = t1;
    s.cycle = cycleIndex_ > 0 ? cycleIndex_ - 1 : 0;
    s.phase = Phase::BarrierWait;
    rings_[worker].push(s);
    rings_[worker].notePushed();
}

} // namespace parendi::obs
