/**
 * @file
 * CostProfile: measured per-fiber evaluation costs, persisted across
 * runs. The static x86 cost model drives the initial LPT packing of
 * fibers onto shards; a profiled run attributes each shard's measured
 * eval ticks back to its fibers and saves them here, so the next run
 * (or an in-run rebalance) partitions on what the fibers actually
 * cost — the telemetry-directed repartitioning loop. Keys are stable
 * design names, not node ids, so a profile survives recompilation:
 *
 *     reg:<register name>         RegNext fiber
 *     memw:<memory name>:<port>   MemWrite fiber (write-port index)
 *     out:<output name>           Output fiber
 *
 * The on-disk format is one "<key> <cost>" pair per line ('#' starts
 * a comment), diff-friendly and hand-editable.
 */

#ifndef PARENDI_OBS_COSTPROFILE_HH
#define PARENDI_OBS_COSTPROFILE_HH

#include <map>
#include <string>

namespace parendi::obs {

/** A named map of measured fiber costs (arbitrary but consistent
 *  units; only ratios matter to the partitioner). */
struct CostProfile
{
    std::map<std::string, double> cost;

    bool empty() const { return cost.empty(); }
    size_t size() const { return cost.size(); }

    void
    set(const std::string &key, double value)
    {
        cost[key] = value;
    }

    /** The measured cost of @p key, or @p fallback when the profile
     *  has never seen it (new or renamed fiber). */
    double lookup(const std::string &key, double fallback) const;

    /** Sum of every recorded cost (normalization denominator). */
    double total() const;

    /** Parse @p path; false (with a warning) when the file cannot be
     *  read or a line is malformed. Merges into the current map. */
    bool load(const std::string &path);

    /** Write every entry to @p path (atomically enough: truncate and
     *  rewrite); false (with a warning) on I/O failure. */
    bool save(const std::string &path) const;
};

} // namespace parendi::obs

#endif // PARENDI_OBS_COSTPROFILE_HH
