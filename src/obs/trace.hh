/**
 * @file
 * Chrome trace-event export of the profiler's sampled supersteps
 * (`--profile-trace out.json`): load the file in chrome://tracing or
 * Perfetto to see, per worker, the commit/latch/exchange/eval work
 * intervals and barrier waits of every sampled cycle on a timeline.
 *
 * Events are duration Begin/End pairs (ph "B"/"E") on pid 0 with one
 * tid per BSP worker; worker 0 additionally carries an enclosing
 * "cycle" span per sampled cycle (its own phase intervals nest inside
 * it — they run on the caller thread, so the ordering is guaranteed).
 * Timestamps are microseconds relative to the earliest retained
 * sample. Per tid, events are emitted in chronological order with
 * strict B/E nesting, which is what the trace tests verify.
 */

#ifndef PARENDI_OBS_TRACE_HH
#define PARENDI_OBS_TRACE_HH

#include <iosfwd>

#include "obs/profiler.hh"

namespace parendi::obs {

/** Write the retained samples of @p prof as Chrome trace-event JSON.
 *  The profiler must be quiesced (no engine stepping concurrently). */
void writeChromeTrace(const SuperstepProfiler &prof, std::ostream &out);

} // namespace parendi::obs

#endif // PARENDI_OBS_TRACE_HH
