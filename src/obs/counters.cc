#include "obs/counters.hh"

namespace parendi::obs {

Counter &
Counters::get(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Entry &e : entries_)
        if (e.name == name)
            return e.counter;
    entries_.emplace_back();
    entries_.back().name = name;
    return entries_.back().counter;
}

std::vector<std::pair<std::string, uint64_t>>
Counters::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.emplace_back(e.name, e.counter.value());
    return out;
}

size_t
Counters::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace parendi::obs
